GO ?= go

.PHONY: build test race bench bench-json fmt vet ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: print the full benchmark suite with allocation stats.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## bench-json: snapshot the benchmark suite into BENCH_1.json so future
## PRs can diff the perf trajectory (see PERFORMANCE.md).
bench-json:
	scripts/bench.sh BENCH_1.json

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build race

clean:
	rm -rf .bench-baseline
