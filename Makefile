GO ?= go

.PHONY: build build-cmds test race bench bench-json bench-smoke trend trend-gate dist-e2e load-smoke fleet-smoke recal-e2e fmt vet ci clean

build:
	$(GO) build ./...

## build-cmds: link every cmd/ entry point into bin/ (the binaries the
## SERVING.md quickstart runs; CI builds them to keep the mains linking).
build-cmds:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

## bench: print the full benchmark suite with allocation stats.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## bench-json: snapshot the benchmark suite into the next numbered
## BENCH_<n>.json so future PRs can diff the perf trajectory (see
## PERFORMANCE.md).
bench-json:
	scripts/bench.sh

## bench-smoke: run every benchmark exactly once — keeps the bench suite
## compiling and executing without paying for real measurements (CI).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

## trend: print ns/op and allocs/op deltas across all BENCH_<n>.json.
trend:
	$(GO) run scripts/bench_trend.go

## trend-gate: fail when the latest committed snapshot regressed ns/op by
## more than 30% vs the previous one (CI; see bench_trend.go -allow for
## the intentional-slowdown escape hatch).
trend-gate:
	$(GO) run scripts/bench_trend.go -gate

## dist-e2e: full distributed-evaluation check — 3 actord workers +
## actorctl under fault injection (incl. a mid-run worker kill); fails
## unless the merged output is byte-identical to the single-process run.
dist-e2e:
	scripts/dist_e2e.sh

## load-smoke: fire a short seeded actorload trace at a real actord —
## twice, memo off then on — asserting zero errors, sane throughput/p99
## and byte-identical responses on replay (CI).
load-smoke:
	scripts/load_smoke.sh

## fleet-smoke: seeded 100-job/16-machine fleet scheduling run on both
## scorers — asserts the pinned deterministic schedule digest and zero
## QoS-bound violations (CI; see docs/FLEET.md).
fleet-smoke:
	scripts/fleet_smoke.sh

## recal-e2e: end-to-end online recalibration — a real actord -recal under
## drifted actorload traffic must promote a new bank generation with
## provenance on /v1/bank, and rolling back must restore the original
## generation's body byte-identically (CI; see docs/SERVING.md).
recal-e2e:
	scripts/recal_e2e.sh

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build build-cmds race

clean:
	rm -rf .bench-baseline bin
