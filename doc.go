// Package actor is the root of the ACTOR reproduction: an Adaptive
// Concurrency Throttling Optimization Runtime with ANN-based IPC
// prediction, after Curtis-Maury et al., "Identifying Energy-Efficient
// Concurrency Levels Using Machine Learning" (GreenCom 2007).
//
// The public API is the pkg/actor facade: actor.Engine wraps the simulated
// platform with context-aware Train / Predict / BestConfig / Sweep methods
// under functional options (actor.WithTopology("16x4+32x2:little"),
// actor.WithFast(), actor.WithSeed(...)), and actor.Bank carries trained
// predictors through a versioned, self-describing serialization format
// whose predictions are bit-identical across a save/load round trip. The
// implementation lives under internal/ (see DESIGN.md for the system
// inventory); every runnable entry point under cmd/ is a thin wrapper over
// the facade. Run
//
//	go run ./cmd/actorsim all
//
// to regenerate every figure of the paper's evaluation on the simulated
// quad-core Xeon, or pass a topology descriptor to run the evaluation on
// any machine, including heterogeneous big/little parts:
//
//	go run ./cmd/actorsim -topology "16x4+32x2:little" -fast scalability
//	go run ./cmd/actorsim -fast hetero
//
// To serve a trained bank behind an HTTP JSON API (ranked configuration
// predictions and micro-batched phase sweeps), train with cmd/actor-train
// and serve with cmd/actord — see docs/SERVING.md for the quickstart:
//
//	go run ./cmd/actor-train -fast -bank models/bank.json
//	go run ./cmd/actord -bank models/bank.json
//
// A served bank need not stay frozen: actord -recal runs the online
// recalibration loop (internal/recal + pkg/actor's Recalibrator). Sampled
// predict-path observations feed a seeded drift detector; a trip retrains
// a shadow candidate warm-started from the live bank under a pure
// (seed, generation, attempt) noise chain, validates it on a held-out
// split, and promotes it — optionally through a canary — via an atomic
// generation-tagged bank swap with instant rollback. /v1/bank carries the
// provenance chain, cmd/actorrecalctl drives the /v1/recal/* admin
// routes, and the same traffic trace reproduces the same promotion
// decisions and bank bytes at any GOMAXPROCS. See the "Continuous
// recalibration" section of docs/SERVING.md.
//
// Whole-config-space evaluation shards across a fleet of actord workers:
// cmd/actorctl partitions the (benchmark × phase) workload, fans shards
// out over POST /v1/eval with retries, backoff and straggler hedging
// (internal/dist), and merges results in canonical shard order, so the
// distributed run is byte-identical to the single-process run under any
// failure schedule — worker deaths included — degrading all the way to
// in-process evaluation when every worker is gone. See the "Distributed
// evaluation" section of docs/SERVING.md and internal/dist/faultinject
// for the fault-injection harness that tests exactly that.
//
// The cluster-scale study runs through cmd/actorfleet: a seeded stream of
// jobs carrying NPB phase signatures arrives at a fleet of heterogeneous
// machines ("count*descriptor" terms, e.g. "400*4x2+2x2:little,600*2x2"),
// and the interference-aware scheduler places each under a QoS degradation
// bound, reporting fleet ED² and utilization against naive bin-packing.
// The shipped incremental scorer (treap probe order + sharded score memo)
// is digest-identical to the naive O(M) reference — ACTOR_FLEET_SCORER
// selects between them — and schedules are byte-identical across runs and
// GOMAXPROCS settings. See docs/FLEET.md:
//
//	go run ./cmd/actorfleet -fleet "400*4x2+2x2:little,600*2x2" -jobs 10000 -rate 60
//
// Topology descriptors follow the grammar of topology.ParseDesc —
// "count x groupSize [:class]" terms joined by "+", where a class is
// "big", "little", or an inline "name(freqMult,cpiMult[,smtWidth])"
// definition — and build the same heterogeneous descriptors the
// topology.NewBuilder API assembles programmatically. Strategy replays,
// oracle searches, figure drivers and served sweeps all execute on the
// batched phase-sweep engine (machine.RunPhaseSweep), whose
// per-(class, load) vectorised solve is bit-identical to the per-thread
// model on homogeneous machines.
//
// On amd64 machines with AVX2 the hot numeric kernels — the ANN trainer's
// dense forward, backprop delta and SGD update, and the sweep engine's
// fixed-point lane step — run as hand-written vector assembly selected at
// startup by internal/simd's CPUID probe. Every vector kernel vectorizes
// across independent outputs only (batch samples, units, weight indices,
// solve lanes) and performs, per output, the scalar reference's exact
// IEEE-754 operation sequence, so results are bit-identical regardless of
// which implementation ran; fuzzed tests enforce that equality to the
// last bit. The pure-Go reference is always built: set ACTOR_SIMD=off (or
// build with -tags actor_noasm) to force it, and see PERFORMANCE.md for
// the dispatch details and measured effect.
package actor
