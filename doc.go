// Package actor is the root of the ACTOR reproduction: an Adaptive
// Concurrency Throttling Optimization Runtime with ANN-based IPC
// prediction, after Curtis-Maury et al., "Identifying Energy-Efficient
// Concurrency Levels Using Machine Learning" (GreenCom 2007).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), the runnable entry points under cmd/ and examples/, and the
// per-figure benchmark harness in bench_test.go. Run
//
//	go run ./cmd/actorsim all
//
// to regenerate every figure of the paper's evaluation on the simulated
// quad-core Xeon, or pass a topology descriptor to run the evaluation on
// any machine, including heterogeneous big/little parts:
//
//	go run ./cmd/actorsim -topology "16x4+32x2:little" -fast scalability
//	go run ./cmd/actorsim -fast hetero
//
// Topology descriptors follow the grammar of internal/topology.ParseDesc —
// "count x groupSize [:class]" terms joined by "+", where a class is
// "big", "little", or an inline "name(freqMult,cpiMult[,smtWidth])"
// definition — and build the same heterogeneous descriptors the
// topology.NewBuilder API assembles programmatically. Strategy replays,
// oracle searches and figure drivers all execute on the batched
// phase-sweep engine (machine.RunPhaseSweep), whose per-(class, load)
// vectorised solve is bit-identical to the per-thread model on
// homogeneous machines.
package actor
