// Package actor is the root of the ACTOR reproduction: an Adaptive
// Concurrency Throttling Optimization Runtime with ANN-based IPC
// prediction, after Curtis-Maury et al., "Identifying Energy-Efficient
// Concurrency Levels Using Machine Learning" (GreenCom 2007).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), the runnable entry points under cmd/ and examples/, and the
// per-figure benchmark harness in bench_test.go. Run
//
//	go run ./cmd/actorsim all
//
// to regenerate every figure of the paper's evaluation.
package actor
