package phasedetect

import (
	"testing"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
)

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Events = nil },
		func(c *Config) { c.Threshold = 0 },
		func(c *Config) { c.MinRun = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.FloorRel = -1 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// synthetic rates around a base level with relative noise.
func rates(src *noise.Source, ipc, l2, bus, l1, sigma float64) pmu.Rates {
	return pmu.Rates{
		pmu.Instructions: ipc * src.Multiplicative(sigma),
		pmu.L2Misses:     l2 * src.Multiplicative(sigma),
		pmu.BusTransMem:  bus * src.Multiplicative(sigma),
		pmu.L1DMisses:    l1 * src.Multiplicative(sigma),
	}
}

func TestStableStreamNoFalsePositives(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := noise.New(1)
	changes := 0
	for i := 0; i < 500; i++ {
		_, changed := d.Observe(rates(src, 1.2, 0.004, 0.005, 0.02, 0.05))
		if changed {
			changes++
		}
	}
	if changes > 2 {
		t.Errorf("stable stream produced %d phase changes", changes)
	}
}

func TestAbruptChangeDetected(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := noise.New(2)
	for i := 0; i < 50; i++ {
		d.Observe(rates(src, 1.2, 0.004, 0.005, 0.02, 0.04))
	}
	if d.Phase() != 0 {
		t.Fatalf("premature phase change during warmup: phase %d", d.Phase())
	}
	// Radically different behaviour: memory-bound phase.
	detectedAt := -1
	for i := 0; i < 10; i++ {
		_, changed := d.Observe(rates(src, 0.3, 0.05, 0.06, 0.25, 0.04))
		if changed {
			detectedAt = i
			break
		}
	}
	if detectedAt < 0 {
		t.Fatal("10× behaviour shift never detected")
	}
	if detectedAt > 4 {
		t.Errorf("change detected only after %d samples", detectedAt+1)
	}
	if d.Phase() != 1 {
		t.Errorf("phase id = %d, want 1", d.Phase())
	}
}

func TestHysteresisSuppressesSingleOutlier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinRun = 3
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := noise.New(3)
	for i := 0; i < 50; i++ {
		d.Observe(rates(src, 1.2, 0.004, 0.005, 0.02, 0.04))
	}
	// Two isolated glitches (fewer than MinRun) must not flip the phase.
	d.Observe(rates(src, 0.2, 0.08, 0.09, 0.3, 0))
	d.Observe(rates(src, 0.2, 0.08, 0.09, 0.3, 0))
	if _, changed := d.Observe(rates(src, 1.2, 0.004, 0.005, 0.02, 0.04)); changed {
		t.Error("return to baseline flagged as change")
	}
	if d.Phase() != 0 {
		t.Errorf("glitches below MinRun changed the phase to %d", d.Phase())
	}
}

func TestMultiplePhases(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := noise.New(4)
	levels := []struct{ ipc, l2 float64 }{
		{1.5, 0.002}, {0.4, 0.05}, {2.0, 0.001}, {0.6, 0.03},
	}
	total := 0
	for _, lv := range levels {
		for i := 0; i < 40; i++ {
			_, changed := d.Observe(rates(src, lv.ipc, lv.l2, lv.l2*1.2, lv.l2*4, 0.04))
			if changed {
				total++
			}
		}
	}
	if total != len(levels)-1 {
		t.Errorf("detected %d transitions, want %d", total, len(levels)-1)
	}
}

func TestOnSimulatedBenchmarkPhases(t *testing.T) {
	// End-to-end: stream the per-phase counter rates of a real benchmark
	// through the detector; it should see most transitions between
	// distinct phases of SP.
	m, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		t.Fatal(err)
	}
	noisy := m.WithNoise(noise.New(5), 0.02, 0.05)
	cfg4, _ := topology.ConfigByName("4")
	sp, _ := npb.ByName("SP")

	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	transitions := 0
	// Each phase produces 30 consecutive samples (as if it ran for many
	// timesteps).
	for pi := range sp.Phases {
		for i := 0; i < 30; i++ {
			res := noisy.RunPhase(&sp.Phases[pi], sp.Idiosyncrasy, cfg4)
			_, changed := d.Observe(res.Counts.Rates())
			if changed {
				transitions++
			}
		}
	}
	// 12 phases → 11 true boundaries; several adjacent SP phases are
	// near-identical (x_solve vs y_solve), so require at least half.
	if transitions < 6 {
		t.Errorf("detected %d transitions across SP's phases, want ≥ 6", transitions)
	}
	if transitions > 30 {
		t.Errorf("detector thrashing: %d transitions", transitions)
	}
	if d.Samples() != 12*30 {
		t.Errorf("samples = %d", d.Samples())
	}
	if len(d.Centroid()) != len(DefaultConfig().Events)+1 {
		t.Errorf("centroid dimension %d", len(d.Centroid()))
	}
}
