// Package phasedetect implements online phase-change detection over
// hardware-counter rate streams. ACTOR as published relies on user-inserted
// instrumentation to delimit phases; this package provides the natural
// extension — detecting phase boundaries automatically from the same event
// rates the predictor already consumes (in the spirit of SimPoint-style
// phase analysis, the paper's reference [16]).
//
// The detector keeps an exponentially weighted estimate of the current
// phase's feature centroid and per-feature variability; an observation
// whose normalised distance from the centroid exceeds the threshold for
// MinRun consecutive samples opens a new phase. Hysteresis (MinRun) makes
// the detector robust to single-sample noise.
package phasedetect

import (
	"errors"
	"math"

	"github.com/greenhpc/actor/internal/pmu"
)

// Config tunes the detector.
type Config struct {
	// Events are the features watched for phase changes, in order.
	Events []pmu.Event
	// Threshold is the normalised distance (in pooled standard
	// deviations per feature) that signals a candidate change. Typical
	// values 2–4.
	Threshold float64
	// MinRun is how many consecutive outlier samples must be seen before
	// a phase change is declared (hysteresis against noise).
	MinRun int
	// Alpha is the EWMA weight for the running centroid/variance
	// (0 < Alpha ≤ 1; smaller = smoother).
	Alpha float64
	// FloorRel is the relative variability floor: each feature's standard
	// deviation is clamped below at FloorRel × |centroid| so near-constant
	// features do not make the detector hypersensitive.
	FloorRel float64
}

// DefaultConfig watches IPC plus the L2/bus events with a 3-sigma
// threshold, 2-sample hysteresis and a 0.2 smoothing weight.
func DefaultConfig() Config {
	return Config{
		Events:    []pmu.Event{pmu.L2Misses, pmu.BusTransMem, pmu.L1DMisses},
		Threshold: 3,
		MinRun:    2,
		Alpha:     0.2,
		FloorRel:  0.05,
	}
}

// Detector is the online phase detector. Create with New; feed one
// observation per timestep with Observe.
type Detector struct {
	cfg Config

	phase    int
	started  bool
	mean     []float64
	varEst   []float64
	outliers int
	samples  int
}

// New validates the configuration and returns a detector in phase 0.
func New(cfg Config) (*Detector, error) {
	if len(cfg.Events) == 0 {
		return nil, errors.New("phasedetect: no events configured")
	}
	if cfg.Threshold <= 0 {
		return nil, errors.New("phasedetect: threshold must be positive")
	}
	if cfg.MinRun < 1 {
		return nil, errors.New("phasedetect: MinRun must be ≥ 1")
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, errors.New("phasedetect: Alpha must be in (0, 1]")
	}
	if cfg.FloorRel < 0 {
		return nil, errors.New("phasedetect: FloorRel must be ≥ 0")
	}
	d := len(cfg.Events) + 1 // + IPC
	return &Detector{
		cfg:    cfg,
		mean:   make([]float64, d),
		varEst: make([]float64, d),
	}, nil
}

// features extracts the watched vector: [IPC, configured event rates...].
func (d *Detector) features(r pmu.Rates) []float64 {
	return r.Vector(d.cfg.Events)
}

// Observe ingests one timestep's rates and returns the current phase id
// and whether this observation opened a new phase.
func (d *Detector) Observe(r pmu.Rates) (phase int, changed bool) {
	x := d.features(r)
	d.samples++
	if !d.started {
		copy(d.mean, x)
		d.started = true
		return d.phase, false
	}

	dist := d.distance(x)
	if dist > d.cfg.Threshold {
		d.outliers++
		if d.outliers >= d.cfg.MinRun {
			// New phase: reset statistics at the outlier point.
			d.phase++
			copy(d.mean, x)
			for i := range d.varEst {
				d.varEst[i] = 0
			}
			d.outliers = 0
			return d.phase, true
		}
		// Candidate outlier: do not pollute the current phase's stats.
		return d.phase, false
	}
	d.outliers = 0
	d.update(x)
	return d.phase, false
}

// distance computes the mean per-feature deviation in (floored) standard
// deviations.
func (d *Detector) distance(x []float64) float64 {
	var sum float64
	for i, v := range x {
		sd := math.Sqrt(d.varEst[i])
		floor := d.cfg.FloorRel * math.Abs(d.mean[i])
		if sd < floor {
			sd = floor
		}
		if sd == 0 {
			sd = 1e-12
		}
		sum += math.Abs(v-d.mean[i]) / sd
	}
	return sum / float64(len(x))
}

// update folds an in-phase observation into the running statistics.
func (d *Detector) update(x []float64) {
	a := d.cfg.Alpha
	for i, v := range x {
		delta := v - d.mean[i]
		d.mean[i] += a * delta
		d.varEst[i] = (1 - a) * (d.varEst[i] + a*delta*delta)
	}
}

// Rebase clears the running statistics without opening a new phase: the
// next observation becomes the phase's new centroid. Callers use this when
// they changed the execution configuration themselves — the rate shift that
// follows is self-inflicted, not a program phase change.
func (d *Detector) Rebase() {
	d.started = false
	d.outliers = 0
	for i := range d.varEst {
		d.varEst[i] = 0
	}
}

// Phase returns the current phase id (0-based).
func (d *Detector) Phase() int { return d.phase }

// Samples returns the number of observations ingested.
func (d *Detector) Samples() int { return d.samples }

// Centroid returns a copy of the current phase's feature centroid
// ([IPC, events...]).
func (d *Detector) Centroid() []float64 {
	return append([]float64(nil), d.mean...)
}
