package dvfs

import (
	"math"
	"testing"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
)

func newEvaluator(t *testing.T) *Evaluator {
	t.Helper()
	m, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(m, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestSpace(t *testing.T) {
	space := Space(topology.PaperConfigs(), DefaultLevels())
	if len(space) != 5*4 {
		t.Fatalf("space has %d points, want 20", len(space))
	}
	seen := map[string]bool{}
	for _, c := range space {
		if seen[c.Name()] {
			t.Errorf("duplicate config %s", c.Name())
		}
		seen[c.Name()] = true
	}
}

func TestFrequencyScalingDirections(t *testing.T) {
	ev := newEvaluator(t)
	b, _ := npb.ByName("BT")
	p := &b.Phases[0] // compute-leaning phase
	full, _ := topology.ConfigByName("4")
	tHi, eHi := ev.RunPhase(p, b.Idiosyncrasy, Config{full, 1.0})
	tLo, eLo := ev.RunPhase(p, b.Idiosyncrasy, Config{full, 2.0 / 3})
	if tLo <= tHi {
		t.Errorf("compute phase did not slow down at 2/3 clock: %g vs %g", tLo, tHi)
	}
	// Power drops superlinearly, so energy per run falls for
	// compute phases only if the slowdown is modest; at minimum power
	// must drop.
	pHi, pLo := eHi/tHi, eLo/tLo
	if pLo >= pHi {
		t.Errorf("power did not drop at lower clock: %g vs %g W", pLo, pHi)
	}
	// A memory-bound phase slows much less than the clock ratio.
	is, _ := npb.ByName("IS")
	mp := &is.Phases[0]
	mHi, _ := ev.RunPhase(mp, is.Idiosyncrasy, Config{full, 1.0})
	mLo, _ := ev.RunPhase(mp, is.Idiosyncrasy, Config{full, 2.0 / 3})
	memSlow := mLo / mHi
	cpuSlow := tLo / tHi
	if memSlow >= cpuSlow {
		t.Errorf("memory-bound phase slowed (×%.3f) as much as compute-bound (×%.3f)", memSlow, cpuSlow)
	}
}

func TestBestPerPhaseObjectives(t *testing.T) {
	ev := newEvaluator(t)
	b, _ := npb.ByName("MG")
	space := Space(topology.PaperConfigs(), DefaultLevels())

	fastest, err := ev.BestPerPhase(b, space, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	greenest, err := ev.BestPerPhase(b, space, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	// Time-optimal configs never run slower than energy-optimal ones.
	for pi := range b.Phases {
		tf, _ := ev.RunPhase(&b.Phases[pi], b.Idiosyncrasy, fastest[pi])
		tg, eg := ev.RunPhase(&b.Phases[pi], b.Idiosyncrasy, greenest[pi])
		_, ef := ev.RunPhase(&b.Phases[pi], b.Idiosyncrasy, fastest[pi])
		if tf > tg+1e-12 {
			t.Errorf("phase %d: MinTime pick slower than MinEnergy pick", pi)
		}
		if eg > ef+1e-9 {
			t.Errorf("phase %d: MinEnergy pick uses more energy than MinTime pick", pi)
		}
	}
}

func TestConstrainedEnergy(t *testing.T) {
	ev := newEvaluator(t)
	b, _ := npb.ByName("CG")
	space := Space(topology.PaperConfigs(), DefaultLevels())
	p := &b.Phases[0]
	// Find the fastest time first.
	best := math.Inf(1)
	for _, cfg := range space {
		tt, _ := ev.RunPhase(p, b.Idiosyncrasy, cfg)
		if tt < best {
			best = tt
		}
	}
	obj := ConstrainedEnergy(best, 1.10)
	// The chosen config must satisfy the 10% slack constraint.
	bestCfg := space[0]
	bestE := math.Inf(1)
	for _, cfg := range space {
		tt, e := ev.RunPhase(p, b.Idiosyncrasy, cfg)
		if s := obj(tt, e); s < bestE {
			bestE, bestCfg = s, cfg
		}
	}
	tt, _ := ev.RunPhase(p, b.Idiosyncrasy, bestCfg)
	if tt > best*1.10+1e-12 {
		t.Errorf("constrained pick %s violates slack: %g > %g", bestCfg.Name(), tt, best*1.10)
	}
}

func TestStudyOrderings(t *testing.T) {
	ev := newEvaluator(t)
	for _, name := range []string{"IS", "BT"} {
		b, _ := npb.ByName(name)
		res, err := ev.Study(b, topology.PaperConfigs(), DefaultLevels(), MinED2)
		if err != nil {
			t.Fatal(err)
		}
		base := res[AllCoresNominal]
		joint := res[Joint]
		conc := res[ConcurrencyOnly]
		dv := res[DVFSOnly]
		// Joint search can never lose to either single-knob strategy or
		// the baseline under the shared objective.
		for st, r := range map[Strategy]RunResult{ConcurrencyOnly: conc, DVFSOnly: dv, AllCoresNominal: base} {
			if joint.ED2 > r.ED2*1.0001 {
				t.Errorf("%s: joint ED2 %.0f worse than %s %.0f", name, joint.ED2, st, r.ED2)
			}
		}
		if base.PhaseConfigs == nil || joint.PhaseConfigs == nil {
			t.Error("phase configs missing")
		}
	}
}

func TestRunBenchmarkValidation(t *testing.T) {
	ev := newEvaluator(t)
	b, _ := npb.ByName("CG")
	if _, err := ev.RunBenchmark(b, nil); err == nil {
		t.Error("mismatched config count accepted")
	}
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(nil, nil); err == nil {
		t.Error("nil machine accepted")
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		AllCoresNominal: "all-cores@nominal",
		ConcurrencyOnly: "concurrency-only",
		DVFSOnly:        "dvfs-only",
		Joint:           "joint",
		Strategy(9):     "Strategy(9)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
