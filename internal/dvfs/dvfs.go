// Package dvfs extends ACTOR's concurrency throttling with dynamic voltage
// and frequency scaling, the complementary knob explored by the related
// work the paper compares against (Li & Martínez, HPCA'06). A joint
// configuration is a (thread placement, frequency level) pair; the package
// provides the joint configuration space, oracle searches under several
// objectives, and whole-benchmark evaluation so the ablation benchmarks can
// quantify how much DVFS adds on top of concurrency throttling.
package dvfs

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// DefaultLevels is a Core-2-era DVFS ladder as clock-scale factors of the
// nominal 2.4 GHz: 2.4, 2.13, 1.87 and 1.6 GHz.
func DefaultLevels() []float64 {
	return []float64{1.0, 8.0 / 9, 7.0 / 9, 2.0 / 3}
}

// Config is a joint operating point.
type Config struct {
	// Placement is the thread-to-core binding.
	Placement topology.Placement
	// FreqScale is the clock scale in (0, 1].
	FreqScale float64
}

// Name renders "2b@0.78" style labels.
func (c Config) Name() string {
	return fmt.Sprintf("%s@%.2f", c.Placement.Name, c.FreqScale)
}

// Space enumerates the joint configuration space: every placement at every
// frequency level.
func Space(placements []topology.Placement, levels []float64) []Config {
	out := make([]Config, 0, len(placements)*len(levels))
	for _, pl := range placements {
		for _, f := range levels {
			out = append(out, Config{Placement: pl, FreqScale: f})
		}
	}
	return out
}

// Objective scores a phase execution; lower is better.
type Objective func(timeSec, energyJ float64) float64

// Objectives mirroring the paper's metrics and the related work's
// constraint formulations.
var (
	// MinTime optimises pure performance.
	MinTime Objective = func(t, e float64) float64 { return t }
	// MinEnergy optimises pure energy.
	MinEnergy Objective = func(t, e float64) float64 { return e }
	// MinED2 optimises the paper's headline metric E·T².
	MinED2 Objective = func(t, e float64) float64 { return e * t * t }
	// MinEDP optimises the classic energy-delay product.
	MinEDP Objective = func(t, e float64) float64 { return e * t }
)

// ConstrainedEnergy returns an objective minimising energy subject to the
// execution time staying within slack × the best achievable time — the Li &
// Martínez formulation ("optimize power consumption given a fixed
// performance requirement"). bestTime is the phase's minimum time over the
// space.
func ConstrainedEnergy(bestTime, slack float64) Objective {
	return func(t, e float64) float64 {
		if t > bestTime*slack {
			return math.Inf(1)
		}
		return e
	}
}

// Evaluator runs phases at joint operating points. With a noiseless Base
// (every in-repo caller: oracles evaluate ground truth) it is safe for
// concurrent use — the exp drivers fan benchmarks out across one shared
// evaluator, whose frequency-scaled machines all share the base machine's
// phase-response memo. A noisy Base would not be: its frequency-scaled
// copies would share one noise source, racing under concurrent use and
// consuming draws in level-grouped rather than space order.
type Evaluator struct {
	// Base is the nominal-frequency machine (oracle: noiseless).
	Base *machine.Machine
	// Power is the power model.
	Power *power.Model

	// cache of frequency-scaled machines, guarded by mu (the exp drivers
	// run Study for several benchmarks concurrently).
	mu     sync.Mutex
	scaled map[float64]*machine.Machine
}

// NewEvaluator builds an evaluator over the machine and power model.
func NewEvaluator(base *machine.Machine, pm *power.Model) (*Evaluator, error) {
	if base == nil || pm == nil {
		return nil, errors.New("dvfs: nil machine or power model")
	}
	return &Evaluator{Base: base, Power: pm, scaled: map[float64]*machine.Machine{}}, nil
}

func (ev *Evaluator) machineAt(scale float64) *machine.Machine {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if m, ok := ev.scaled[scale]; ok {
		return m
	}
	m := ev.Base.WithFrequency(scale)
	ev.scaled[scale] = m
	return m
}

// RunPhase executes one phase at a joint operating point, returning time
// and energy.
func (ev *Evaluator) RunPhase(p *workload.PhaseProfile, idio float64, cfg Config) (timeSec, energyJ float64) {
	res := ev.machineAt(cfg.FreqScale).RunPhase(p, idio, cfg.Placement)
	return res.TimeSec, ev.Power.Energy(res.Activity)
}

// BestPerPhase returns, for every phase of the benchmark, the joint
// configuration minimising the objective.
//
// The space is regrouped by frequency level so each phase is evaluated with
// one machine.RunPhaseSweep per level across that level's placements; the
// candidates are then scored in the space's original order, so ties resolve
// exactly as the per-configuration loop this replaces resolved them.
func (ev *Evaluator) BestPerPhase(b *workload.Benchmark, space []Config, obj Objective) ([]Config, error) {
	if len(space) == 0 {
		return nil, errors.New("dvfs: empty configuration space")
	}
	// Group the space indices by frequency level (first-seen order).
	type levelGroup struct {
		scale      float64
		spaceIdx   []int
		placements []topology.Placement
	}
	var groups []levelGroup
	byScale := make(map[float64]int)
	for si, cfg := range space {
		gi, ok := byScale[cfg.FreqScale]
		if !ok {
			gi = len(groups)
			byScale[cfg.FreqScale] = gi
			groups = append(groups, levelGroup{scale: cfg.FreqScale})
		}
		groups[gi].spaceIdx = append(groups[gi].spaceIdx, si)
		groups[gi].placements = append(groups[gi].placements, cfg.Placement)
	}
	maxGroup := 0
	for _, g := range groups {
		if len(g.placements) > maxGroup {
			maxGroup = len(g.placements)
		}
	}

	type te struct{ t, e float64 }
	scores := make([]te, len(space))
	dst := make([]machine.Result, maxGroup)
	out := make([]Config, len(b.Phases))
	for pi := range b.Phases {
		p := &b.Phases[pi]
		for _, g := range groups {
			d := dst[:len(g.placements)]
			ev.machineAt(g.scale).RunPhaseSweep(p, b.Idiosyncrasy, g.placements, d)
			for k, si := range g.spaceIdx {
				scores[si] = te{d[k].TimeSec, ev.Power.Energy(d[k].Activity)}
			}
		}
		best := space[0]
		bestScore := math.Inf(1)
		for si, cfg := range space {
			if s := obj(scores[si].t, scores[si].e); s < bestScore {
				bestScore, best = s, cfg
			}
		}
		if math.IsInf(bestScore, 1) {
			return nil, fmt.Errorf("dvfs: no feasible configuration for phase %q", b.Phases[pi].Name)
		}
		out[pi] = best
	}
	return out, nil
}

// RunResult is a whole-benchmark outcome at fixed per-phase configurations.
type RunResult struct {
	TimeSec, EnergyJ, AvgPowerW, ED2 float64
	// PhaseConfigs records the operating point per phase name.
	PhaseConfigs map[string]string
}

// RunBenchmark executes the benchmark with the given per-phase joint
// configurations (len must equal the phase count).
func (ev *Evaluator) RunBenchmark(b *workload.Benchmark, cfgs []Config) (RunResult, error) {
	if len(cfgs) != len(b.Phases) {
		return RunResult{}, fmt.Errorf("dvfs: %d configs for %d phases", len(cfgs), len(b.Phases))
	}
	var acc power.Accumulator
	res := RunResult{PhaseConfigs: make(map[string]string, len(b.Phases))}
	for pi := range b.Phases {
		t, e := ev.RunPhase(&b.Phases[pi], b.Idiosyncrasy, cfgs[pi])
		acc.Add(t*float64(b.Iterations), e/t)
		res.PhaseConfigs[b.Phases[pi].Name] = cfgs[pi].Name()
	}
	res.TimeSec = acc.TimeSec
	res.EnergyJ = acc.EnergyJ
	res.AvgPowerW = acc.AvgPower()
	res.ED2 = acc.ED2()
	return res, nil
}

// Uniform returns a per-phase slice repeating one configuration.
func Uniform(b *workload.Benchmark, cfg Config) []Config {
	out := make([]Config, len(b.Phases))
	for i := range out {
		out[i] = cfg
	}
	return out
}

// Strategies compared in the DVFS study.
type Strategy int

const (
	// AllCoresNominal is the 4-cores-at-full-clock default.
	AllCoresNominal Strategy = iota
	// ConcurrencyOnly throttles thread count/placement at nominal clock
	// (the paper's ACTOR, with oracle decisions).
	ConcurrencyOnly
	// DVFSOnly keeps all cores but picks each phase's best frequency.
	DVFSOnly
	// Joint picks each phase's best (placement, frequency) pair.
	Joint
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case AllCoresNominal:
		return "all-cores@nominal"
	case ConcurrencyOnly:
		return "concurrency-only"
	case DVFSOnly:
		return "dvfs-only"
	case Joint:
		return "joint"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Study runs the four strategies on a benchmark under the objective,
// returning results keyed by strategy.
func (ev *Evaluator) Study(b *workload.Benchmark, placements []topology.Placement, levels []float64, obj Objective) (map[Strategy]RunResult, error) {
	if len(placements) == 0 || len(levels) == 0 {
		return nil, errors.New("dvfs: empty placements or levels")
	}
	full := placements[len(placements)-1] // convention: last = all cores
	nominal := levels[0]                  // convention: first = 1.0

	out := make(map[Strategy]RunResult, 4)

	base, err := ev.RunBenchmark(b, Uniform(b, Config{Placement: full, FreqScale: nominal}))
	if err != nil {
		return nil, err
	}
	out[AllCoresNominal] = base

	concSpace := Space(placements, []float64{nominal})
	cfgs, err := ev.BestPerPhase(b, concSpace, obj)
	if err != nil {
		return nil, err
	}
	if out[ConcurrencyOnly], err = ev.RunBenchmark(b, cfgs); err != nil {
		return nil, err
	}

	dvfsSpace := Space([]topology.Placement{full}, levels)
	cfgs, err = ev.BestPerPhase(b, dvfsSpace, obj)
	if err != nil {
		return nil, err
	}
	if out[DVFSOnly], err = ev.RunBenchmark(b, cfgs); err != nil {
		return nil, err
	}

	jointSpace := Space(placements, levels)
	cfgs, err = ev.BestPerPhase(b, jointSpace, obj)
	if err != nil {
		return nil, err
	}
	if out[Joint], err = ev.RunBenchmark(b, cfgs); err != nil {
		return nil, err
	}
	return out, nil
}
