package kernels

import "github.com/greenhpc/actor/internal/omp"

// BT solves batches of independent tridiagonal systems along grid lines
// with the Thomas algorithm — the line-solve structure of NPB BT's
// x/y/z_solve phases (dense per-line work, excellent locality).
type BT struct {
	lines int // number of independent systems
	n     int // unknowns per system
	a     []float64
	b     []float64
	c     []float64
	d     []float64
	x     []float64
	iter  int
}

// NewBT builds `lines` systems of n unknowns each.
func NewBT(lines, n int) *BT {
	if lines < 4 {
		lines = 4
	}
	if n < 8 {
		n = 8
	}
	k := &BT{lines: lines, n: n}
	sz := lines * n
	k.a = make([]float64, sz)
	k.b = make([]float64, sz)
	k.c = make([]float64, sz)
	k.d = make([]float64, sz)
	k.x = make([]float64, sz)
	g := lcg(424242)
	for i := 0; i < sz; i++ {
		k.a[i] = -1 - 0.1*g.float()
		k.c[i] = -1 - 0.1*g.float()
		k.b[i] = 4 + g.float() // diagonally dominant
		k.d[i] = g.float()
	}
	return k
}

// Name implements Kernel.
func (k *BT) Name() string { return "BT" }

// Step solves every line, then feeds the solutions back into the RHS so
// successive timesteps differ.
func (k *BT) Step(t *omp.Team) {
	n := k.n
	t.ParallelBlocks(k.lines, func(lo, hi int) {
		cp := make([]float64, n)
		dp := make([]float64, n)
		for line := lo; line < hi; line++ {
			off := line * n
			thomas(k.a[off:off+n], k.b[off:off+n], k.c[off:off+n], k.d[off:off+n], k.x[off:off+n], cp, dp)
		}
	})
	k.iter++
	// add-style update (the streaming phase).
	t.ParallelBlocks(k.lines*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k.d[i] = 0.5*k.d[i] + 0.5*k.x[i]
		}
	})
}

// thomas solves one tridiagonal system (a sub-, b main-, c super-diagonal,
// d RHS) into x using scratch cp/dp.
func thomas(a, b, c, d, x, cp, dp []float64) {
	n := len(b)
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		m := b[i] - a[i]*cp[i-1]
		cp[i] = c[i] / m
		dp[i] = (d[i] - a[i]*dp[i-1]) / m
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
}

// Checksum returns Σx.
func (k *BT) Checksum() float64 {
	var s float64
	for _, v := range k.x {
		s += v
	}
	return s
}

// SP solves batches of independent pentadiagonal systems along lines — the
// scalar-pentadiagonal structure of NPB SP's x/y/z_solve phases.
type SP struct {
	lines int
	n     int
	// bands: e (−2), a (−1), b (0), c (+1), f (+2); d is the RHS.
	e, a, b, c, f, d, x []float64
}

// NewSP builds `lines` pentadiagonal systems of n unknowns.
func NewSP(lines, n int) *SP {
	if lines < 4 {
		lines = 4
	}
	if n < 8 {
		n = 8
	}
	k := &SP{lines: lines, n: n}
	sz := lines * n
	for _, p := range []*[]float64{&k.e, &k.a, &k.b, &k.c, &k.f, &k.d, &k.x} {
		*p = make([]float64, sz)
	}
	g := lcg(133713)
	for i := 0; i < sz; i++ {
		k.e[i] = -0.3 - 0.05*g.float()
		k.a[i] = -1 - 0.1*g.float()
		k.b[i] = 6 + g.float() // strong diagonal dominance
		k.c[i] = -1 - 0.1*g.float()
		k.f[i] = -0.3 - 0.05*g.float()
		k.d[i] = g.float()
	}
	return k
}

// Name implements Kernel.
func (k *SP) Name() string { return "SP" }

// Step eliminates and back-substitutes every line, then relaxes the RHS.
func (k *SP) Step(t *omp.Team) {
	n := k.n
	t.ParallelBlocks(k.lines, func(lo, hi int) {
		// Per-thread scratch copies of the bands elimination mutates.
		aa := make([]float64, n)
		bb := make([]float64, n)
		cc := make([]float64, n)
		dd := make([]float64, n)
		for line := lo; line < hi; line++ {
			off := line * n
			copy(aa, k.a[off:off+n])
			copy(bb, k.b[off:off+n])
			copy(cc, k.c[off:off+n])
			copy(dd, k.d[off:off+n])
			// Banded Gaussian elimination (bandwidth 2, no pivoting —
			// the systems are diagonally dominant by construction).
			for i := 0; i < n; i++ {
				if i+1 < n {
					m1 := aa[i+1] / bb[i]
					bb[i+1] -= m1 * cc[i]
					cc[i+1] -= m1 * k.f[off+i]
					dd[i+1] -= m1 * dd[i]
				}
				if i+2 < n {
					m2 := k.e[off+i+2] / bb[i]
					aa[i+2] -= m2 * cc[i]
					bb[i+2] -= m2 * k.f[off+i]
					dd[i+2] -= m2 * dd[i]
				}
			}
			// Back substitution over the two super-diagonals.
			k.x[off+n-1] = dd[n-1] / bb[n-1]
			k.x[off+n-2] = (dd[n-2] - cc[n-2]*k.x[off+n-1]) / bb[n-2]
			for i := n - 3; i >= 0; i-- {
				k.x[off+i] = (dd[i] - cc[i]*k.x[off+i+1] - k.f[off+i]*k.x[off+i+2]) / bb[i]
			}
		}
	})
	// rhs relaxation (streaming update).
	t.ParallelBlocks(k.lines*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k.d[i] = 0.7*k.d[i] + 0.3*k.x[i]
		}
	})
}

// Checksum returns Σx.
func (k *SP) Checksum() float64 {
	var s float64
	for _, v := range k.x {
		s += v
	}
	return s
}
