package kernels

import (
	"math"
	"testing"

	"github.com/greenhpc/actor/internal/omp"
)

func TestAllKernelsRunAndProduceFiniteChecksums(t *testing.T) {
	team := omp.NewTeam(2, false)
	for _, k := range All(1) {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			for step := 0; step < 3; step++ {
				k.Step(team)
			}
			cs := k.Checksum()
			if math.IsNaN(cs) || math.IsInf(cs, 0) {
				t.Fatalf("checksum not finite: %g", cs)
			}
		})
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("CG", 1)
	if err != nil || k.Name() != "CG" {
		t.Errorf("ByName(CG) = %v, %v", k, err)
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestKernelsDeterministicAtFixedTeamSize(t *testing.T) {
	for _, name := range []string{"CG", "MG", "FT", "IS", "LU", "LU-HP", "BT", "SP"} {
		a, _ := ByName(name, 1)
		b, _ := ByName(name, 1)
		team := omp.NewTeam(2, false)
		for i := 0; i < 2; i++ {
			a.Step(team)
			b.Step(team)
		}
		if a.Checksum() != b.Checksum() {
			t.Errorf("%s: two identical runs diverged", name)
		}
	}
}

func TestThreadCountInvariantKernels(t *testing.T) {
	// These kernels partition work without thread-count-dependent data
	// flow, so results must match across team sizes.
	for _, name := range []string{"CG", "MG", "FT", "LU", "LU-HP", "BT", "SP"} {
		a, _ := ByName(name, 1)
		b, _ := ByName(name, 1)
		t1 := omp.NewTeam(1, false)
		t4 := omp.NewTeam(4, false)
		for i := 0; i < 2; i++ {
			a.Step(t1)
			b.Step(t4)
		}
		if diff := math.Abs(a.Checksum() - b.Checksum()); diff > 1e-9*math.Abs(a.Checksum())+1e-12 {
			t.Errorf("%s: thread count changed result by %g", name, diff)
		}
	}
}

func TestCGResidualDecreases(t *testing.T) {
	cg := NewCG(48, 8)
	team := omp.NewTeam(2, false)
	first := cg.Residual()
	for i := 0; i < 10; i++ {
		cg.Step(team)
	}
	if cg.Residual() >= first {
		t.Errorf("CG residual did not decrease: %g → %g", first, cg.Residual())
	}
	if cg.Residual() > first*0.1 {
		t.Errorf("CG converging too slowly: %g → %g after 10 iterations", first, cg.Residual())
	}
}

func TestISSortsCorrectly(t *testing.T) {
	is := NewIS(1<<14, 1<<10)
	team := omp.NewTeam(4, false)
	for i := 0; i < 3; i++ {
		is.Step(team)
		if !is.Sorted() {
			t.Fatalf("output not sorted after step %d", i+1)
		}
	}
}

func TestBTSolvesTridiagonalSystems(t *testing.T) {
	bt := NewBT(8, 32)
	// Capture the RHS before the step mutates it.
	d0 := append([]float64(nil), bt.d...)
	team := omp.NewTeam(2, false)
	bt.Step(team)
	// Verify A·x = d for every line.
	n := bt.n
	for line := 0; line < bt.lines; line++ {
		off := line * n
		for i := 0; i < n; i++ {
			got := bt.b[off+i] * bt.x[off+i]
			if i > 0 {
				got += bt.a[off+i] * bt.x[off+i-1]
			}
			if i < n-1 {
				got += bt.c[off+i] * bt.x[off+i+1]
			}
			if math.Abs(got-d0[off+i]) > 1e-9 {
				t.Fatalf("line %d row %d: A·x = %g, want %g", line, i, got, d0[off+i])
			}
		}
	}
}

func TestSPSolvesPentadiagonalSystems(t *testing.T) {
	sp := NewSP(6, 24)
	d0 := append([]float64(nil), sp.d...)
	team := omp.NewTeam(2, false)
	sp.Step(team)
	n := sp.n
	for line := 0; line < sp.lines; line++ {
		off := line * n
		for i := 0; i < n; i++ {
			got := sp.b[off+i] * sp.x[off+i]
			if i >= 1 {
				got += sp.a[off+i] * sp.x[off+i-1]
			}
			if i >= 2 {
				got += sp.e[off+i] * sp.x[off+i-2]
			}
			if i+1 < n {
				got += sp.c[off+i] * sp.x[off+i+1]
			}
			if i+2 < n {
				got += sp.f[off+i] * sp.x[off+i+2]
			}
			if math.Abs(got-d0[off+i]) > 1e-8 {
				t.Fatalf("line %d row %d: A·x = %g, want %g", line, i, got, d0[off+i])
			}
		}
	}
}

func TestLUHPMatchesSequentialGaussSeidel(t *testing.T) {
	// The wavefront sweep must equal a plain sequential Gauss–Seidel
	// sweep in the same traversal order.
	hp := NewLUHP(64)
	seq := NewLUHP(64)
	team := omp.NewTeam(4, false)
	hp.Step(team)
	// Sequential reference: identical double sweep with one thread.
	t1 := omp.NewTeam(1, false)
	seq.Step(t1)
	if math.Abs(hp.Checksum()-seq.Checksum()) > 1e-9 {
		t.Errorf("wavefront result %g differs from sequential %g", hp.Checksum(), seq.Checksum())
	}
}

func TestMGChecksumEvolves(t *testing.T) {
	mg := NewMG(16)
	team := omp.NewTeam(2, false)
	c0 := mg.Checksum()
	mg.Step(team)
	c1 := mg.Checksum()
	if c0 == c1 {
		t.Error("V-cycle left the solution unchanged")
	}
	if math.IsNaN(c1) || math.IsInf(c1, 0) {
		t.Errorf("checksum diverged: %g", c1)
	}
}

func TestFTStepKeepsFieldBounded(t *testing.T) {
	ft := NewFT(32)
	team := omp.NewTeam(2, false)
	for i := 0; i < 5; i++ {
		ft.Step(team)
	}
	cs := ft.Checksum()
	if math.IsNaN(cs) || math.IsInf(cs, 0) || cs > 1e6 {
		t.Errorf("field magnitude diverged after 5 steps: %g", cs)
	}
}

func TestFFT1DRoundTrip(t *testing.T) {
	n := 64
	g := lcg(5)
	re := make([]float64, n)
	im := make([]float64, n)
	origRe := make([]float64, n)
	origIm := make([]float64, n)
	for i := 0; i < n; i++ {
		re[i] = g.float() - 0.5
		im[i] = g.float() - 0.5
		origRe[i], origIm[i] = re[i], im[i]
	}
	fft1d(re, im, false)
	fft1d(re, im, true)
	for i := 0; i < n; i++ {
		if math.Abs(re[i]/float64(n)-origRe[i]) > 1e-9 ||
			math.Abs(im[i]/float64(n)-origIm[i]) > 1e-9 {
			t.Fatalf("FFT round trip failed at %d", i)
		}
	}
}
