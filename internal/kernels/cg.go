package kernels

import "github.com/greenhpc/actor/internal/omp"

// CG performs conjugate-gradient iterations on a sparse symmetric
// positive-definite matrix in CSR form (a 2-D five-point Laplacian plus a
// diagonal shift), mirroring NPB CG's irregular gather-heavy profile.
type CG struct {
	n       int // grid side; matrix is n²×n²
	rowPtr  []int32
	colIdx  []int32
	vals    []float64
	x, r, p []float64
	q       []float64
	rho     float64
}

// NewCG builds the Laplacian system for an n×n grid; iters is unused data
// shape-wise but kept for symmetry with NPB CG's inner iteration count.
func NewCG(n, iters int) *CG {
	_ = iters
	if n < 4 {
		n = 4
	}
	c := &CG{n: n}
	dim := n * n
	c.rowPtr = make([]int32, dim+1)
	// First pass: count entries.
	nnz := 0
	for row := 0; row < dim; row++ {
		i, j := row/n, row%n
		nnz++ // diagonal
		if i > 0 {
			nnz++
		}
		if i < n-1 {
			nnz++
		}
		if j > 0 {
			nnz++
		}
		if j < n-1 {
			nnz++
		}
		c.rowPtr[row+1] = int32(nnz)
	}
	c.colIdx = make([]int32, nnz)
	c.vals = make([]float64, nnz)
	k := 0
	add := func(col int, v float64) {
		c.colIdx[k] = int32(col)
		c.vals[k] = v
		k++
	}
	for row := 0; row < dim; row++ {
		i, j := row/n, row%n
		add(row, 4.5) // diagonal shift keeps the system well conditioned
		if i > 0 {
			add(row-n, -1)
		}
		if i < n-1 {
			add(row+n, -1)
		}
		if j > 0 {
			add(row-1, -1)
		}
		if j < n-1 {
			add(row+1, -1)
		}
	}
	c.x = make([]float64, dim)
	c.r = make([]float64, dim)
	c.p = make([]float64, dim)
	c.q = make([]float64, dim)
	g := lcg(12345)
	for i := range c.r {
		c.r[i] = g.float()
		c.p[i] = c.r[i]
	}
	c.rho = dot(c.r, c.r)
	return c
}

// Name implements Kernel.
func (c *CG) Name() string { return "CG" }

// Step runs one CG iteration: q = A·p, α = ρ/(p·q), x += αp, r −= αq,
// β = ρ'/ρ, p = r + βp.
func (c *CG) Step(t *omp.Team) {
	dim := len(c.x)
	// Sparse matrix-vector product (the spmv phase).
	t.ParallelBlocks(dim, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			var sum float64
			for k := c.rowPtr[row]; k < c.rowPtr[row+1]; k++ {
				sum += c.vals[k] * c.p[c.colIdx[k]]
			}
			c.q[row] = sum
		}
	})
	// p·q reduction (the dot phase).
	pq := t.Reduce(func(tid, nt int) float64 {
		lo, hi := slice(dim, tid, nt)
		var s float64
		for i := lo; i < hi; i++ {
			s += c.p[i] * c.q[i]
		}
		return s
	}, func(a, b float64) float64 { return a + b })
	if pq == 0 {
		return
	}
	alpha := c.rho / pq
	// axpy updates.
	t.ParallelBlocks(dim, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.x[i] += alpha * c.p[i]
			c.r[i] -= alpha * c.q[i]
		}
	})
	// New residual norm.
	rho2 := t.Reduce(func(tid, nt int) float64 {
		lo, hi := slice(dim, tid, nt)
		var s float64
		for i := lo; i < hi; i++ {
			s += c.r[i] * c.r[i]
		}
		return s
	}, func(a, b float64) float64 { return a + b })
	beta := rho2 / c.rho
	c.rho = rho2
	t.ParallelBlocks(dim, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.p[i] = c.r[i] + beta*c.p[i]
		}
	})
}

// Checksum returns Σx, pinned by tests.
func (c *CG) Checksum() float64 {
	var s float64
	for _, v := range c.x {
		s += v
	}
	return s
}

// Residual returns the current residual norm ρ = r·r.
func (c *CG) Residual() float64 { return c.rho }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// slice returns thread tid's static share [lo, hi) of n items over nt
// threads.
func slice(n, tid, nt int) (int, int) {
	chunk := (n + nt - 1) / nt
	lo := tid * chunk
	hi := lo + chunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
