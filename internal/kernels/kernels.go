// Package kernels contains real, runnable Go mini-kernels in the spirit of
// each NAS Parallel Benchmark the paper evaluates. They execute genuine
// computation on the omp runtime and are used by the live examples, the
// omp-integration tests and the micro-benchmarks.
//
// Each kernel is deterministic: Setup seeds all data from fixed constants
// and Checksum returns a value tests can pin down. Sizes are scaled far
// below the real class-A problems so the suite runs in CI-time, but the
// access patterns (streaming stencils, irregular gathers, butterflies,
// wavefronts, bucket scatters) match their namesakes.
package kernels

import (
	"fmt"

	"github.com/greenhpc/actor/internal/omp"
)

// Kernel is one iterative mini-benchmark.
type Kernel interface {
	// Name is the NPB-style code name, e.g. "CG".
	Name() string
	// Step executes one timestep on the team.
	Step(t *omp.Team)
	// Checksum returns a deterministic verification value.
	Checksum() float64
}

// All returns one instance of every kernel at the given scale (1 = small
// test size, larger values grow the working set roughly linearly).
func All(scale int) []Kernel {
	if scale < 1 {
		scale = 1
	}
	return []Kernel{
		NewCG(64*scale, 8),
		NewMG(16 * scale),
		NewFT(64 * scale),
		NewIS(1<<14*scale, 1<<10),
		NewLU(64 * scale),
		NewLUHP(64 * scale),
		NewBT(32*scale, 64),
		NewSP(32*scale, 64),
	}
}

// ByName returns the kernel with the given name at the given scale.
func ByName(name string, scale int) (Kernel, error) {
	for _, k := range All(scale) {
		if k.Name() == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", name)
}

// lcg is a tiny deterministic pseudo-random generator used by every kernel
// so data is reproducible without importing math/rand state.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = (*g)*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

func (g *lcg) float() float64 {
	return float64(g.next()>>11) / float64(1<<53)
}
