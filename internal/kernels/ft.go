package kernels

import (
	"math"

	"github.com/greenhpc/actor/internal/omp"
)

// FT performs a 2-D complex FFT each timestep — independent radix-2
// transforms along rows, then along columns (the transpose-heavy axis),
// followed by a pointwise evolution, like NPB FT's fftx/ffty/evolve phases.
type FT struct {
	n          int // side length, power of two
	re, im     []float64
	scratchRe  []float64
	scratchIm  []float64
	evolveStep int
}

// NewFT builds an n×n complex field (n rounded up to a power of two).
func NewFT(n int) *FT {
	p := 8
	for p < n {
		p <<= 1
	}
	f := &FT{n: p}
	sz := p * p
	f.re = make([]float64, sz)
	f.im = make([]float64, sz)
	f.scratchRe = make([]float64, sz)
	f.scratchIm = make([]float64, sz)
	g := lcg(31415)
	for i := range f.re {
		f.re[i] = g.float() - 0.5
		f.im[i] = g.float() - 0.5
	}
	return f
}

// Name implements Kernel.
func (f *FT) Name() string { return "FT" }

// fft1d transforms one line in place (stride-1 access over the provided
// slices) with an iterative radix-2 Cooley–Tukey, inverse if inv.
func fft1d(re, im []float64, inv bool) {
	n := len(re)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inv {
			ang = -ang
		}
		wr, wi := math.Cos(ang), math.Sin(ang)
		for i := 0; i < n; i += length {
			cwr, cwi := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				ur, ui := re[i+k], im[i+k]
				vr := re[i+k+half]*cwr - im[i+k+half]*cwi
				vi := re[i+k+half]*cwi + im[i+k+half]*cwr
				re[i+k], im[i+k] = ur+vr, ui+vi
				re[i+k+half], im[i+k+half] = ur-vr, ui-vi
				cwr, cwi = cwr*wr-cwi*wi, cwr*wi+cwi*wr
			}
		}
	}
}

// Step runs fftx (rows), ffty (columns via transpose), and evolve.
func (f *FT) Step(t *omp.Team) {
	n := f.n
	// fftx: independent row transforms.
	t.ParallelBlocks(n, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			fft1d(f.re[row*n:(row+1)*n], f.im[row*n:(row+1)*n], false)
		}
	})
	// transpose into scratch (the bandwidth-heavy phase).
	t.ParallelBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				f.scratchRe[j*n+i] = f.re[i*n+j]
				f.scratchIm[j*n+i] = f.im[i*n+j]
			}
		}
	})
	// ffty: transforms along the former columns.
	t.ParallelBlocks(n, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			fft1d(f.scratchRe[row*n:(row+1)*n], f.scratchIm[row*n:(row+1)*n], false)
		}
	})
	// evolve: pointwise scaling, then inverse transform one axis. The
	// scale factor compensates the √n L2-norm growth of each
	// unnormalised transform so the field stays bounded across timesteps.
	f.evolveStep++
	scale := 1 / (float64(n) * math.Sqrt(float64(n)))
	t.ParallelBlocks(n, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			base := row * n
			for j := 0; j < n; j++ {
				f.scratchRe[base+j] *= scale
				f.scratchIm[base+j] *= scale
			}
			fft1d(f.scratchRe[base:base+n], f.scratchIm[base:base+n], true)
		}
	})
	// Copy back (transposed orientation is fine for the next step: the
	// field stays statistically identical).
	copy(f.re, f.scratchRe)
	copy(f.im, f.scratchIm)
}

// Checksum returns the mean magnitude of the field.
func (f *FT) Checksum() float64 {
	var s float64
	for i := range f.re {
		s += math.Hypot(f.re[i], f.im[i])
	}
	return s / float64(len(f.re))
}
