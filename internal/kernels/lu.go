package kernels

import "github.com/greenhpc/actor/internal/omp"

// LU runs red-black SOR sweeps over a 2-D grid — the data-dependence-heavy
// relaxation pattern of NPB LU's blts/buts, parallelised by colour (the
// "pipelined" formulation's round-trip is approximated by two half-sweeps
// with a barrier between colours).
type LU struct {
	n     int
	u     []float64
	rhs   []float64
	omega float64
}

// NewLU builds an n×n grid with deterministic right-hand side.
func NewLU(n int) *LU {
	if n < 8 {
		n = 8
	}
	l := &LU{n: n, omega: 1.2}
	l.u = make([]float64, n*n)
	l.rhs = make([]float64, n*n)
	g := lcg(5551)
	for i := range l.rhs {
		l.rhs[i] = g.float() - 0.5
	}
	return l
}

// Name implements Kernel.
func (l *LU) Name() string { return "LU" }

// Step performs one red sweep and one black sweep.
func (l *LU) Step(t *omp.Team) {
	l.sweep(t, 0) // red
	l.sweep(t, 1) // black
}

func (l *LU) sweep(t *omp.Team, colour int) {
	n := l.n
	t.ParallelBlocks(n-2, func(lo, hi int) {
		for i := lo + 1; i < hi+1; i++ {
			start := 1 + (i+colour)%2
			for j := start; j < n-1; j += 2 {
				c := i*n + j
				gs := 0.25 * (l.u[c-1] + l.u[c+1] + l.u[c-n] + l.u[c+n] + l.rhs[c])
				l.u[c] += l.omega * (gs - l.u[c])
			}
		}
	})
}

// Checksum returns Σu.
func (l *LU) Checksum() float64 {
	var s float64
	for _, v := range l.u {
		s += v
	}
	return s
}

// LUHP is the hyperplane formulation: a true wavefront Gauss–Seidel sweep
// where anti-diagonals are processed in order, each fully parallel — more
// exposed parallelism per step than LU's coloured sweeps but with a barrier
// per hyperplane, like NPB LU-HP.
type LUHP struct {
	n   int
	u   []float64
	rhs []float64
}

// NewLUHP builds an n×n grid.
func NewLUHP(n int) *LUHP {
	if n < 8 {
		n = 8
	}
	l := &LUHP{n: n}
	l.u = make([]float64, n*n)
	l.rhs = make([]float64, n*n)
	g := lcg(7717)
	for i := range l.rhs {
		l.rhs[i] = g.float() - 0.5
	}
	return l
}

// Name implements Kernel.
func (l *LUHP) Name() string { return "LU-HP" }

// Step sweeps the grid along anti-diagonal hyperplanes (lower solve), then
// back (upper solve).
func (l *LUHP) Step(t *omp.Team) {
	l.wavefront(t, false)
	l.wavefront(t, true)
}

func (l *LUHP) wavefront(t *omp.Team, reverse bool) {
	n := l.n
	for d := 2; d <= 2*(n-2); d++ {
		diag := d
		if reverse {
			diag = 2*(n-2) + 2 - d
		}
		// Cells (i, j) with i+j == diag, 1 ≤ i,j ≤ n−2.
		iMin := diag - (n - 2)
		if iMin < 1 {
			iMin = 1
		}
		iMax := diag - 1
		if iMax > n-2 {
			iMax = n - 2
		}
		count := iMax - iMin + 1
		if count <= 0 {
			continue
		}
		t.ParallelBlocks(count, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				i := iMin + k
				j := diag - i
				c := i*n + j
				l.u[c] = 0.25 * (l.u[c-1] + l.u[c+1] + l.u[c-n] + l.u[c+n] + l.rhs[c])
			}
		})
	}
}

// Checksum returns Σu.
func (l *LUHP) Checksum() float64 {
	var s float64
	for _, v := range l.u {
		s += v
	}
	return s
}
