package kernels

import "github.com/greenhpc/actor/internal/omp"

// IS performs a parallel counting/bucket sort of integer keys, like NPB IS:
// per-thread histogram (rank_count), prefix sums, and scatter into the
// sorted array (rank_scatter) — random-access, bandwidth-hungry phases.
type IS struct {
	keys    []int32
	sorted  []int32
	buckets int
	iter    int
}

// NewIS creates n random keys in [0, buckets).
func NewIS(n, buckets int) *IS {
	if n < 1024 {
		n = 1024
	}
	if buckets < 16 {
		buckets = 16
	}
	s := &IS{
		keys:    make([]int32, n),
		sorted:  make([]int32, n),
		buckets: buckets,
	}
	g := lcg(271828)
	for i := range s.keys {
		s.keys[i] = int32(g.next() % uint64(buckets))
	}
	return s
}

// Name implements Kernel.
func (s *IS) Name() string { return "IS" }

// Step ranks and scatters the keys once, then perturbs them
// deterministically so successive timesteps sort fresh data.
func (s *IS) Step(t *omp.Team) {
	n := len(s.keys)
	nt := t.Threads()
	// rank_count: per-thread histograms.
	hist := make([][]int32, nt)
	t.ParallelRegion(func(tid, nthreads int) {
		h := make([]int32, s.buckets)
		lo, hi := slice(n, tid, nthreads)
		for i := lo; i < hi; i++ {
			h[s.keys[i]]++
		}
		hist[tid] = h
	})
	// Global prefix sums: bucket start offsets per thread.
	offsets := make([][]int32, nt)
	for tid := range offsets {
		offsets[tid] = make([]int32, s.buckets)
	}
	var run int32
	for b := 0; b < s.buckets; b++ {
		for tid := 0; tid < nt; tid++ {
			if hist[tid] == nil {
				continue
			}
			offsets[tid][b] = run
			run += hist[tid][b]
		}
	}
	// rank_scatter: place keys at their ranked positions.
	t.ParallelRegion(func(tid, nthreads int) {
		if offsets[tid] == nil {
			return
		}
		off := make([]int32, s.buckets)
		copy(off, offsets[tid])
		lo, hi := slice(n, tid, nthreads)
		for i := lo; i < hi; i++ {
			k := s.keys[i]
			s.sorted[off[k]] = k
			off[k]++
		}
	})
	// verify + perturb for the next timestep.
	s.iter++
	g := lcg(uint64(s.iter) * 99991)
	t.ParallelBlocks(n, func(lo, hi int) {
		gg := g
		gg += lcg(lo)
		for i := lo; i < hi; i++ {
			s.keys[i] = int32((uint64(s.sorted[i]) + gg.next()) % uint64(s.buckets))
		}
	})
}

// Checksum returns a positional hash of the sorted array; monotonically
// sorted output makes it reproducible.
func (s *IS) Checksum() float64 {
	var acc uint64
	for i, k := range s.sorted {
		acc = acc*31 + uint64(k) + uint64(i%97)
		acc %= 1_000_000_007
	}
	return float64(acc)
}

// Sorted reports whether the output array is non-decreasing (used by the
// correctness tests).
func (s *IS) Sorted() bool {
	for i := 1; i < len(s.sorted); i++ {
		if s.sorted[i] < s.sorted[i-1] {
			return false
		}
	}
	return true
}
