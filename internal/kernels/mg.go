package kernels

import "github.com/greenhpc/actor/internal/omp"

// MG runs a two-level multigrid-flavoured V-cycle on a 3-D grid: residual
// smoothing on the fine grid (the bandwidth-bound resid/psinv phases),
// restriction to a coarse grid, coarse smoothing, and prolongation back —
// streaming 7-point stencils like NPB MG.
type MG struct {
	n      int // fine grid side (power of two preferred)
	u, v   []float64
	r      []float64
	coarse []float64
}

// NewMG builds an n³ fine grid with deterministic initial data.
func NewMG(n int) *MG {
	if n < 8 {
		n = 8
	}
	m := &MG{n: n}
	sz := n * n * n
	m.u = make([]float64, sz)
	m.v = make([]float64, sz)
	m.r = make([]float64, sz)
	half := n / 2
	m.coarse = make([]float64, half*half*half)
	g := lcg(777)
	for i := range m.v {
		m.v[i] = g.float() - 0.5
	}
	return m
}

// Name implements Kernel.
func (m *MG) Name() string { return "MG" }

func (m *MG) idx(i, j, k int) int { return (i*m.n+j)*m.n + k }

// Step runs one V-cycle.
func (m *MG) Step(t *omp.Team) {
	n := m.n
	// resid: r = v − A·u with a 7-point Laplacian.
	t.ParallelBlocks(n-2, func(lo, hi int) {
		for i := lo + 1; i < hi+1; i++ {
			for j := 1; j < n-1; j++ {
				for k := 1; k < n-1; k++ {
					c := m.idx(i, j, k)
					au := 6*m.u[c] - m.u[c-1] - m.u[c+1] -
						m.u[c-n] - m.u[c+n] -
						m.u[c-n*n] - m.u[c+n*n]
					m.r[c] = m.v[c] - au
				}
			}
		}
	})
	// psinv: u += smoother(r).
	t.ParallelBlocks(n-2, func(lo, hi int) {
		for i := lo + 1; i < hi+1; i++ {
			for j := 1; j < n-1; j++ {
				for k := 1; k < n-1; k++ {
					c := m.idx(i, j, k)
					m.u[c] += 0.25*m.r[c] + 0.0625*(m.r[c-1]+m.r[c+1]+m.r[c-n]+m.r[c+n])
				}
			}
		}
	})
	// rprj3: restrict the residual to the coarse grid (full weighting of
	// the even points).
	half := n / 2
	cidx := func(i, j, k int) int { return (i*half+j)*half + k }
	t.ParallelBlocks(half-1, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			for cj := 0; cj < half-1; cj++ {
				for ck := 0; ck < half-1; ck++ {
					f := m.idx(2*ci+1, 2*cj+1, 2*ck+1)
					m.coarse[cidx(ci, cj, ck)] = 0.5*m.r[f] +
						0.125*(m.r[f-1]+m.r[f+1]+m.r[f-n]+m.r[f+n])
				}
			}
		}
	})
	// interp: prolongate the coarse correction back into u.
	t.ParallelBlocks(half-1, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			for cj := 0; cj < half-1; cj++ {
				for ck := 0; ck < half-1; ck++ {
					f := m.idx(2*ci+1, 2*cj+1, 2*ck+1)
					m.u[f] += 0.5 * m.coarse[cidx(ci, cj, ck)]
				}
			}
		}
	})
}

// Checksum returns the L1 norm of u.
func (m *MG) Checksum() float64 {
	var s float64
	for _, v := range m.u {
		if v < 0 {
			s -= v
		} else {
			s += v
		}
	}
	return s
}
