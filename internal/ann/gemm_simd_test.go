//go:build amd64 && !actor_noasm

// Bit-identity enforcement for the AVX2 kernels: every test drives the
// vector and scalar implementations over the same inputs — including odd
// shapes that exercise tail lanes, batch=1 and units=1 — and requires the
// outputs to match to the last bit (math.Float64bits equality, so NaN
// payloads and signed zeros count too).
package ann

import (
	"math"
	"math/rand"
	"testing"

	"github.com/greenhpc/actor/internal/simd"
)

// needAVX2 skips the test when the machine cannot run the vector kernels
// at all (the assembly is still compiled in). ACTOR_SIMD=off does NOT skip
// these tests: the env var only changes the default binding, and calling
// the AVX2 implementations directly keeps them covered on the scalar CI
// leg.
func needAVX2(t testing.TB) {
	t.Helper()
	f := simd.Detect()
	if !f.AVX2 || !f.OSYMM {
		t.Skip("no AVX2 on this machine")
	}
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func diffIndex(a, b []float64) int {
	for i := range a {
		if !bitsEqual(a[i], b[i]) {
			return i
		}
	}
	return -1
}

// expInputs mixes the boundary cases of fastExp's range reduction with
// random magnitudes across the full exponent range.
func expInputs(rng *rand.Rand, n int) []float64 {
	edge := []float64{
		0, math.Copysign(0, -1), 1, -1, 709, 709.0000001, 708.9999999, 710, 1000,
		-708, -707.9999999, -708.0000001, -709, -1000,
		math.Inf(1), math.Inf(-1), math.NaN(),
		5e-324, -5e-324, 1e-300, -1e-300, math.MaxFloat64, -math.MaxFloat64,
	}
	v := make([]float64, n)
	for i := range v {
		if i < len(edge) {
			v[i] = edge[i]
			continue
		}
		v[i] = (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(13)-6))
	}
	return v
}

func TestExpVecBitIdentical(t *testing.T) {
	needAVX2(t)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 257} {
		in := expInputs(rng, n)
		got := append([]float64(nil), in...)
		expVec(got)
		want := append([]float64(nil), in...)
		for i := range want {
			want[i] = fastExp(want[i])
		}
		if i := diffIndex(got, want); i >= 0 {
			t.Fatalf("n=%d: expVec(%v)[%d] = %x, fastExp = %x",
				n, in[i], i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestSigmoidVecBitIdentical(t *testing.T) {
	needAVX2(t)
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 3, 4, 5, 8, 13, 100} {
		in := expInputs(rng, n)
		got := append([]float64(nil), in...)
		sigmoidVec(got)
		want := append([]float64(nil), in...)
		for i := range want {
			want[i] = sigmoid(want[i])
		}
		if i := diffIndex(got, want); i >= 0 {
			t.Fatalf("n=%d: sigmoidVec(%v)[%d] = %x, sigmoid = %x",
				n, in[i], i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return v
}

func TestDenseForwardBitIdentical(t *testing.T) {
	needAVX2(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		batch := 1 + rng.Intn(9)
		inDim := 1 + rng.Intn(17)
		units := 1 + rng.Intn(17)
		ldx := inDim + rng.Intn(3)
		sig := rng.Intn(2) == 0
		x := randSlice(rng, batch*ldx)
		w := randSlice(rng, units*(inDim+1))
		got := make([]float64, batch*units)
		want := make([]float64, batch*units)
		denseForwardAVX2(got, x, w, batch, inDim, units, ldx, sig)
		denseForwardScalar(want, x, w, batch, inDim, units, ldx, sig)
		if i := diffIndex(got, want); i >= 0 {
			t.Fatalf("trial %d (batch=%d inDim=%d units=%d ldx=%d sig=%v): out[%d] = %x, want %x",
				trial, batch, inDim, units, ldx, sig, i,
				math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestHiddenDeltaBitIdentical(t *testing.T) {
	needAVX2(t)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		batch := 1 + rng.Intn(9)
		units := 1 + rng.Intn(17)
		unitsNext := 1 + rng.Intn(9)
		dNext := randSlice(rng, batch*unitsNext)
		wNext := randSlice(rng, unitsNext*(units+1))
		acts := randSlice(rng, batch*units)
		for i := range acts {
			acts[i] = 1 / (1 + math.Exp(-acts[i])) // plausible activations
		}
		got := make([]float64, batch*units)
		want := make([]float64, batch*units)
		hiddenDeltaAVX2(got, dNext, wNext, acts, batch, units, unitsNext)
		hiddenDeltaScalar(want, dNext, wNext, acts, batch, units, unitsNext)
		if i := diffIndex(got, want); i >= 0 {
			t.Fatalf("trial %d (batch=%d units=%d next=%d): d[%d] = %x, want %x",
				trial, batch, units, unitsNext, i,
				math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestSGDStepBitIdentical(t *testing.T) {
	needAVX2(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		batch := 1 + rng.Intn(9)
		units := 1 + rng.Intn(17)
		inDim := 1 + rng.Intn(17)
		ldx := inDim + rng.Intn(3)
		lr := rng.Float64()
		momentum := rng.Float64()
		w := randSlice(rng, units*(inDim+1))
		vel := randSlice(rng, units*(inDim+1))
		d := randSlice(rng, batch*units)
		x := randSlice(rng, batch*ldx)

		wGot := append([]float64(nil), w...)
		velGot := append([]float64(nil), vel...)
		sgdStepAVX2(wGot, velGot, d, x, batch, units, inDim, ldx, lr, momentum)

		wWant := append([]float64(nil), w...)
		velWant := append([]float64(nil), vel...)
		sgdStepScalar(wWant, velWant, d, x, batch, units, inDim, ldx, lr, momentum)

		if i := diffIndex(wGot, wWant); i >= 0 {
			t.Fatalf("trial %d (batch=%d units=%d inDim=%d): w[%d] = %x, want %x",
				trial, batch, units, inDim, i,
				math.Float64bits(wGot[i]), math.Float64bits(wWant[i]))
		}
		if i := diffIndex(velGot, velWant); i >= 0 {
			t.Fatalf("trial %d (batch=%d units=%d inDim=%d): vel[%d] = %x, want %x",
				trial, batch, units, inDim, i,
				math.Float64bits(velGot[i]), math.Float64bits(velWant[i]))
		}
	}
}

// FuzzDenseForwardBitIdentity lets the fuzzer search shape corners and
// value patterns the fixed trials miss.
func FuzzDenseForwardBitIdentity(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(2), uint8(0), true)
	f.Add(int64(7), uint8(1), uint8(1), uint8(1), uint8(2), false)
	f.Add(int64(9), uint8(8), uint8(13), uint8(16), uint8(1), true)
	f.Fuzz(func(t *testing.T, seed int64, batchB, inDimB, unitsB, padB uint8, sig bool) {
		fz := simd.Detect()
		if !fz.AVX2 || !fz.OSYMM {
			t.Skip("no AVX2")
		}
		batch := 1 + int(batchB%12)
		inDim := 1 + int(inDimB%20)
		units := 1 + int(unitsB%20)
		ldx := inDim + int(padB%4)
		rng := rand.New(rand.NewSource(seed))
		x := randSlice(rng, batch*ldx)
		w := randSlice(rng, units*(inDim+1))
		got := make([]float64, batch*units)
		want := make([]float64, batch*units)
		denseForwardAVX2(got, x, w, batch, inDim, units, ldx, sig)
		denseForwardScalar(want, x, w, batch, inDim, units, ldx, sig)
		if i := diffIndex(got, want); i >= 0 {
			t.Fatalf("batch=%d inDim=%d units=%d ldx=%d sig=%v: out[%d] = %x, want %x",
				batch, inDim, units, ldx, sig, i,
				math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	})
}

// FuzzSGDStepBitIdentity fuzzes the weight-update drain order across batch
// sizes on both sides of the momentum-folding threshold.
func FuzzSGDStepBitIdentity(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(2), uint8(0))
	f.Add(int64(3), uint8(3), uint8(16), uint8(13), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, batchB, unitsB, inDimB, padB uint8) {
		fz := simd.Detect()
		if !fz.AVX2 || !fz.OSYMM {
			t.Skip("no AVX2")
		}
		batch := 1 + int(batchB%12)
		units := 1 + int(unitsB%20)
		inDim := 1 + int(inDimB%20)
		ldx := inDim + int(padB%4)
		rng := rand.New(rand.NewSource(seed))
		w := randSlice(rng, units*(inDim+1))
		vel := randSlice(rng, units*(inDim+1))
		d := randSlice(rng, batch*units)
		x := randSlice(rng, batch*ldx)
		lr, momentum := rng.Float64(), rng.Float64()

		wGot := append([]float64(nil), w...)
		velGot := append([]float64(nil), vel...)
		sgdStepAVX2(wGot, velGot, d, x, batch, units, inDim, ldx, lr, momentum)
		wWant := append([]float64(nil), w...)
		velWant := append([]float64(nil), vel...)
		sgdStepScalar(wWant, velWant, d, x, batch, units, inDim, ldx, lr, momentum)
		if i := diffIndex(wGot, wWant); i >= 0 {
			t.Fatalf("batch=%d units=%d inDim=%d: w[%d] mismatch", batch, units, inDim, i)
		}
		if i := diffIndex(velGot, velWant); i >= 0 {
			t.Fatalf("batch=%d units=%d inDim=%d: vel[%d] mismatch", batch, units, inDim, i)
		}
	})
}
