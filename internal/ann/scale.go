package ann

import (
	"encoding/json"
	"errors"
	"math"
)

// Scaler standardises feature vectors and min-max-scales the target into a
// comfortable range for network training, and inverts the target transform
// at prediction time. Fitting happens on training data only; the same
// transform is then applied to validation and live inputs.
type Scaler struct {
	Mean, Std  []float64 // per-feature standardisation
	YMin, YMax float64   // target range observed in training data
}

// FitScaler computes feature means/standard deviations and the target range
// from the samples. Constant features get Std 1 so they pass through as
// zeros.
func FitScaler(samples []Sample) (*Scaler, error) {
	if len(samples) == 0 {
		return nil, errors.New("ann: cannot fit scaler on empty set")
	}
	d := len(samples[0].X)
	sc := &Scaler{
		Mean: make([]float64, d),
		Std:  make([]float64, d),
		YMin: math.Inf(1),
		YMax: math.Inf(-1),
	}
	for _, s := range samples {
		if len(s.X) != d {
			return nil, errors.New("ann: inconsistent feature dimensions")
		}
		for i, v := range s.X {
			sc.Mean[i] += v
		}
		if s.Y < sc.YMin {
			sc.YMin = s.Y
		}
		if s.Y > sc.YMax {
			sc.YMax = s.Y
		}
	}
	n := float64(len(samples))
	for i := range sc.Mean {
		sc.Mean[i] /= n
	}
	for _, s := range samples {
		for i, v := range s.X {
			dv := v - sc.Mean[i]
			sc.Std[i] += dv * dv
		}
	}
	for i := range sc.Std {
		sc.Std[i] = math.Sqrt(sc.Std[i] / n)
		if sc.Std[i] < 1e-12 {
			sc.Std[i] = 1
		}
	}
	if sc.YMax-sc.YMin < 1e-12 {
		sc.YMax = sc.YMin + 1
	}
	return sc, nil
}

// X standardises a feature vector.
func (sc *Scaler) X(x []float64) []float64 {
	return sc.XInto(nil, x)
}

// XInto standardises x into dst (grown when too small), the
// allocation-free form of X used on the prediction hot path.
func (sc *Scaler) XInto(dst, x []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = (v - sc.Mean[i]) / sc.Std[i]
	}
	return dst
}

// Y maps a raw target into [0.1, 0.9].
func (sc *Scaler) Y(y float64) float64 {
	return 0.1 + 0.8*(y-sc.YMin)/(sc.YMax-sc.YMin)
}

// InvY maps a network output back to the raw target scale.
func (sc *Scaler) InvY(y float64) float64 {
	return sc.YMin + (y-0.1)/0.8*(sc.YMax-sc.YMin)
}

// pack normalises a whole sample set straight into a packed dataSet — the
// allocation-lean form of Apply the ensemble trainer uses (two flat buffers
// instead of one X slice per sample). Values are identical to Apply's.
func (sc *Scaler) pack(samples []Sample) (*dataSet, error) {
	return packWith(samples, len(sc.Mean),
		func(dst, x []float64) { sc.XInto(dst, x) },
		sc.Y)
}

// Apply transforms a whole sample set.
func (sc *Scaler) Apply(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		out[i] = Sample{X: sc.X(s.X), Y: sc.Y(s.Y)}
	}
	return out
}

// MarshalJSON serialises the scaler alongside its ensemble.
func (sc *Scaler) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Mean []float64 `json:"mean"`
		Std  []float64 `json:"std"`
		YMin float64   `json:"ymin"`
		YMax float64   `json:"ymax"`
	}{sc.Mean, sc.Std, sc.YMin, sc.YMax})
}

// UnmarshalJSON restores a serialised scaler.
func (sc *Scaler) UnmarshalJSON(data []byte) error {
	var raw struct {
		Mean []float64 `json:"mean"`
		Std  []float64 `json:"std"`
		YMin float64   `json:"ymin"`
		YMax float64   `json:"ymax"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw.Mean) != len(raw.Std) {
		return errors.New("ann: malformed scaler")
	}
	sc.Mean, sc.Std, sc.YMin, sc.YMax = raw.Mean, raw.Std, raw.YMin, raw.YMax
	return nil
}
