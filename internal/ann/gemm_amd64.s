//go:build amd64 && !actor_noasm

// AVX2 vector kernels for the batched trainer. Every routine vectorizes
// across INDEPENDENT outputs only — four batch samples, four units, or
// four weight indices per instruction — and performs, per output, exactly
// the operation sequence of the scalar reference in gemm.go: the same
// multiplies, adds, subtracts and divides, in the same order, with no FMA
// contraction (a fused multiply-add rounds once where the reference rounds
// twice, which would break bit-identity). Reductions (the i-sums of the
// forward pass, the k-sums of backprop) always stay within one lane.
//
// The EXPCORE macro is fastExp from gemm.go transcribed operation for
// operation; see that file for the algorithm. Lanes whose input is below
// the underflow cutoff are computed anyway and zeroed at the end (the
// scalar path returns 0 early) — the discarded lanes cannot raise traps
// because SSE/AVX exceptions are masked in Go.

#include "textflag.h"

DATA expconsts<>+0(SB)/8, $0x4086280000000000   // 709.0 (overflow clamp)
DATA expconsts<>+8(SB)/8, $0x4086280000000000
DATA expconsts<>+16(SB)/8, $0x4086280000000000
DATA expconsts<>+24(SB)/8, $0x4086280000000000
DATA expconsts<>+32(SB)/8, $0xc086200000000000  // -708.0 (underflow cutoff)
DATA expconsts<>+40(SB)/8, $0xc086200000000000
DATA expconsts<>+48(SB)/8, $0xc086200000000000
DATA expconsts<>+56(SB)/8, $0xc086200000000000
DATA expconsts<>+64(SB)/8, $0x3ff71547652b82fe  // log2(e)
DATA expconsts<>+72(SB)/8, $0x3ff71547652b82fe
DATA expconsts<>+80(SB)/8, $0x3ff71547652b82fe
DATA expconsts<>+88(SB)/8, $0x3ff71547652b82fe
DATA expconsts<>+96(SB)/8, $0x3fe0000000000000  // 0.5 (rounding bias, poly c2)
DATA expconsts<>+104(SB)/8, $0x3fe0000000000000
DATA expconsts<>+112(SB)/8, $0x3fe0000000000000
DATA expconsts<>+120(SB)/8, $0x3fe0000000000000
DATA expconsts<>+128(SB)/8, $0x3fe62e42fee00000 // ln2hi
DATA expconsts<>+136(SB)/8, $0x3fe62e42fee00000
DATA expconsts<>+144(SB)/8, $0x3fe62e42fee00000
DATA expconsts<>+152(SB)/8, $0x3fe62e42fee00000
DATA expconsts<>+160(SB)/8, $0x3dea39ef35793c76 // ln2lo
DATA expconsts<>+168(SB)/8, $0x3dea39ef35793c76
DATA expconsts<>+176(SB)/8, $0x3dea39ef35793c76
DATA expconsts<>+184(SB)/8, $0x3dea39ef35793c76
DATA expconsts<>+192(SB)/8, $0x3efa01a01a01a01a // 1/40320
DATA expconsts<>+200(SB)/8, $0x3efa01a01a01a01a
DATA expconsts<>+208(SB)/8, $0x3efa01a01a01a01a
DATA expconsts<>+216(SB)/8, $0x3efa01a01a01a01a
DATA expconsts<>+224(SB)/8, $0x3f2a01a01a01a01a // 1/5040
DATA expconsts<>+232(SB)/8, $0x3f2a01a01a01a01a
DATA expconsts<>+240(SB)/8, $0x3f2a01a01a01a01a
DATA expconsts<>+248(SB)/8, $0x3f2a01a01a01a01a
DATA expconsts<>+256(SB)/8, $0x3f56c16c16c16c17 // 1/720
DATA expconsts<>+264(SB)/8, $0x3f56c16c16c16c17
DATA expconsts<>+272(SB)/8, $0x3f56c16c16c16c17
DATA expconsts<>+280(SB)/8, $0x3f56c16c16c16c17
DATA expconsts<>+288(SB)/8, $0x3f81111111111111 // 1/120
DATA expconsts<>+296(SB)/8, $0x3f81111111111111
DATA expconsts<>+304(SB)/8, $0x3f81111111111111
DATA expconsts<>+312(SB)/8, $0x3f81111111111111
DATA expconsts<>+320(SB)/8, $0x3fa5555555555555 // 1/24
DATA expconsts<>+328(SB)/8, $0x3fa5555555555555
DATA expconsts<>+336(SB)/8, $0x3fa5555555555555
DATA expconsts<>+344(SB)/8, $0x3fa5555555555555
DATA expconsts<>+352(SB)/8, $0x3fc5555555555555 // 1/6
DATA expconsts<>+360(SB)/8, $0x3fc5555555555555
DATA expconsts<>+368(SB)/8, $0x3fc5555555555555
DATA expconsts<>+376(SB)/8, $0x3fc5555555555555
DATA expconsts<>+384(SB)/8, $0x3ff0000000000000 // 1.0
DATA expconsts<>+392(SB)/8, $0x3ff0000000000000
DATA expconsts<>+400(SB)/8, $0x3ff0000000000000
DATA expconsts<>+408(SB)/8, $0x3ff0000000000000
DATA expconsts<>+416(SB)/8, $0x00000000000003ff // exponent bias 1023 (int64)
DATA expconsts<>+424(SB)/8, $0x00000000000003ff
DATA expconsts<>+432(SB)/8, $0x00000000000003ff
DATA expconsts<>+440(SB)/8, $0x00000000000003ff
DATA expconsts<>+448(SB)/8, $0x8000000000000000 // sign-bit mask
DATA expconsts<>+456(SB)/8, $0x8000000000000000
DATA expconsts<>+464(SB)/8, $0x8000000000000000
DATA expconsts<>+472(SB)/8, $0x8000000000000000
GLOBL expconsts<>(SB), RODATA|NOPTR, $480

// EXPCORE: Y0 = fastExp(Y0) for four lanes. R13 = &expconsts. Clobbers
// Y1-Y4. Transcribes gemm.go fastExp operation for operation:
//
//	Y4 ← x < -708 (LT_OQ: false on NaN, like the scalar <)
//	x  ← x > 709 ? 709 : x (GT_OQ compare + blend: NaN passes through)
//	k  ← floor(x·log2e + 0.5) (VROUNDPD mode 1 = math.Floor)
//	r  ← (x − k·ln2hi) − k·ln2lo
//	p  ← Horner degree 8, each step one VMULPD then one VADDPD —
//	     two roundings, exactly like the scalar `c + r*p`
//	k  → int32 → int64 lanes, +1023, <<52: the exponent bits of 2^k
//	     (|k| ≤ 1024 on live lanes; underflowed lanes are garbage here)
//	Y0 ← p · 2^k, then zero the x < -708 lanes (the scalar early return)
#define EXPCORE \
	VCMPPD  $0x11, 32(R13), Y0, Y4 \
	VMOVUPD 0(R13), Y1             \
	VCMPPD  $0x1e, Y1, Y0, Y2      \
	VBLENDVPD Y2, Y1, Y0, Y0       \
	VMULPD  64(R13), Y0, Y1        \
	VADDPD  96(R13), Y1, Y1        \
	VROUNDPD $1, Y1, Y1            \
	VMULPD  128(R13), Y1, Y2       \
	VSUBPD  Y2, Y0, Y2             \
	VMULPD  160(R13), Y1, Y3       \
	VSUBPD  Y3, Y2, Y2             \
	VMOVUPD 192(R13), Y3           \
	VMULPD  Y2, Y3, Y3             \
	VADDPD  224(R13), Y3, Y3       \
	VMULPD  Y2, Y3, Y3             \
	VADDPD  256(R13), Y3, Y3       \
	VMULPD  Y2, Y3, Y3             \
	VADDPD  288(R13), Y3, Y3       \
	VMULPD  Y2, Y3, Y3             \
	VADDPD  320(R13), Y3, Y3       \
	VMULPD  Y2, Y3, Y3             \
	VADDPD  352(R13), Y3, Y3       \
	VMULPD  Y2, Y3, Y3             \
	VADDPD  96(R13), Y3, Y3        \
	VMULPD  Y2, Y3, Y3             \
	VADDPD  384(R13), Y3, Y3       \
	VMULPD  Y2, Y3, Y3             \
	VADDPD  384(R13), Y3, Y3       \
	VCVTTPD2DQY Y1, X1             \
	VPMOVSXDQ X1, Y1               \
	VPADDQ  416(R13), Y1, Y1       \
	VPSLLQ  $52, Y1, Y1            \
	VMULPD  Y1, Y3, Y0             \
	VANDNPD Y0, Y4, Y0

// func expVec4(v *float64, n int)
// v[0:n] = fastExp(v[0:n]); n must be a multiple of 4.
TEXT ·expVec4(SB), NOSPLIT, $0-16
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	LEAQ expconsts<>(SB), R13
	SHRQ $2, CX
	JZ   expdone
exploop:
	VMOVUPD (DI), Y0
	EXPCORE
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	DECQ CX
	JNZ  exploop
expdone:
	VZEROUPPER
	RET

// func sigmoidVec4(v *float64, n int)
// v[0:n] = 1/(1+fastExp(-v[0:n])); n must be a multiple of 4.
TEXT ·sigmoidVec4(SB), NOSPLIT, $0-16
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	LEAQ expconsts<>(SB), R13
	SHRQ $2, CX
	JZ   sigdone
sigloop:
	VMOVUPD (DI), Y0
	VXORPD  448(R13), Y0, Y0 // -x (sign flip, exact)
	EXPCORE
	VADDPD  384(R13), Y0, Y0 // 1 + e
	VMOVUPD 384(R13), Y1
	VDIVPD  Y0, Y1, Y0       // 1 / (1 + e)
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	DECQ CX
	JNZ  sigloop
sigdone:
	VZEROUPPER
	RET

// func denseSumsT4(tmp, w, xT *float64, units, inDim int)
// For a group of four batch samples packed column-major in xT
// (xT[i*4+k] = sample k's feature i):
//
//	tmp[j*4+k] = w[j*rowW+inDim] + Σ_i w[j*rowW+i]·xT[i*4+k],  rowW = inDim+1
//
// Four samples advance per instruction and four weight rows share each
// traversal of xT (register blocking over independent outputs only); each
// sample's sum accumulates bias-first then ascending i, exactly like the
// scalar forward. units ≥ 1, inDim ≥ 1.
TEXT ·denseSumsT4(SB), NOSPLIT, $0-40
	MOVQ tmp+0(FP), DI
	MOVQ w+8(FP), SI
	MOVQ xT+16(FP), DX
	MOVQ units+24(FP), CX
	MOVQ inDim+32(FP), R8
	LEAQ 1(R8), R10
	SHLQ $3, R10                // rowW bytes
	LEAQ (R10)(R10*1), R11      // 2·rowW bytes
	LEAQ (R10)(R10*2), R12      // 3·rowW bytes
	MOVQ CX, BX
	SHRQ $2, BX                 // unit blocks of four
	JZ   ds1setup
ds4jloop:
	LEAQ (SI)(R8*8), AX         // &row0[inDim] (the bias column)
	VBROADCASTSD (AX), Y0
	VBROADCASTSD (AX)(R10*1), Y1
	VBROADCASTSD (AX)(R11*1), Y2
	VBROADCASTSD (AX)(R12*1), Y3
	MOVQ SI, R9                 // row0 weight cursor
	MOVQ DX, AX                 // xT cursor
	MOVQ R8, R13
ds4iloop:
	VMOVUPD (AX), Y4            // x{0..3}[i]
	VBROADCASTSD (R9), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y0, Y0
	VBROADCASTSD (R9)(R10*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y1, Y1
	VBROADCASTSD (R9)(R11*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y2, Y2
	VBROADCASTSD (R9)(R12*1), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y3, Y3
	ADDQ $8, R9
	ADDQ $32, AX
	DECQ R13
	JNZ  ds4iloop
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	ADDQ $128, DI
	ADDQ R12, SI                // advance four weight rows
	ADDQ R10, SI
	DECQ BX
	JNZ  ds4jloop
ds1setup:
	ANDQ $3, CX                 // leftover units
	JZ   dsdone
ds1jloop:
	VBROADCASTSD (SI)(R8*8), Y0 // acc = bias (row[inDim])
	MOVQ SI, R9                 // weight-row cursor
	MOVQ DX, R13                // xT cursor
	MOVQ R8, R11
ds1iloop:
	VBROADCASTSD (R9), Y1
	VMULPD  (R13), Y1, Y1       // w[i] · x{0..3}[i]
	VADDPD  Y1, Y0, Y0
	ADDQ $8, R9
	ADDQ $32, R13
	DECQ R11
	JNZ  ds1iloop
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	LEAQ 8(SI)(R8*8), SI        // next weight row (rowW = inDim+1 doubles)
	DECQ CX
	JNZ  ds1jloop
dsdone:
	VZEROUPPER
	RET

// func packT4(xT, x0, x1, x2, x3 *float64, n int)
// Transposes four sample rows into the column-major group layout:
// xT[i*4+k] = xk[i]. Pure data movement — no arithmetic, so no rounding.
TEXT ·packT4(SB), NOSPLIT, $0-48
	MOVQ xT+0(FP), DI
	MOVQ x0+8(FP), SI
	MOVQ x1+16(FP), DX
	MOVQ x2+24(FP), R8
	MOVQ x3+32(FP), R9
	MOVQ n+40(FP), CX
	MOVQ CX, BX
	SHRQ $2, BX
	JZ   pttail
ptloop:
	VMOVUPD (SI), Y0
	VMOVUPD (DX), Y1
	VMOVUPD (R8), Y2
	VMOVUPD (R9), Y3
	VUNPCKLPD Y1, Y0, Y4        // x0[0] x1[0] x0[2] x1[2]
	VUNPCKHPD Y1, Y0, Y5        // x0[1] x1[1] x0[3] x1[3]
	VUNPCKLPD Y3, Y2, Y6        // x2[0] x3[0] x2[2] x3[2]
	VUNPCKHPD Y3, Y2, Y7        // x2[1] x3[1] x2[3] x3[3]
	VPERM2F128 $0x20, Y6, Y4, Y0
	VPERM2F128 $0x20, Y7, Y5, Y1
	VPERM2F128 $0x31, Y6, Y4, Y2
	VPERM2F128 $0x31, Y7, Y5, Y3
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $128, DI
	DECQ BX
	JNZ  ptloop
pttail:
	ANDQ $3, CX
	JZ   ptdone
pttloop:
	MOVQ (SI), AX
	MOVQ AX, (DI)
	MOVQ (DX), AX
	MOVQ AX, 8(DI)
	MOVQ (R8), AX
	MOVQ AX, 16(DI)
	MOVQ (R9), AX
	MOVQ AX, 24(DI)
	ADDQ $8, SI
	ADDQ $8, DX
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $32, DI
	DECQ CX
	JNZ  pttloop
ptdone:
	VZEROUPPER
	RET

// func scatterT4(o0, o1, o2, o3, tmp *float64, n int)
// Inverse of packT4: ok[j] = tmp[j*4+k] — distributes the group block back
// into four output rows. Pure data movement.
TEXT ·scatterT4(SB), NOSPLIT, $0-48
	MOVQ o0+0(FP), SI
	MOVQ o1+8(FP), DX
	MOVQ o2+16(FP), R8
	MOVQ o3+24(FP), R9
	MOVQ tmp+32(FP), DI
	MOVQ n+40(FP), CX
	MOVQ CX, BX
	SHRQ $2, BX
	JZ   sttail
stloop:
	VMOVUPD (DI), Y0            // samples of unit j
	VMOVUPD 32(DI), Y1          // unit j+1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	VUNPCKLPD Y1, Y0, Y4
	VUNPCKHPD Y1, Y0, Y5
	VUNPCKLPD Y3, Y2, Y6
	VUNPCKHPD Y3, Y2, Y7
	VPERM2F128 $0x20, Y6, Y4, Y0 // sample 0's units j..j+3
	VPERM2F128 $0x20, Y7, Y5, Y1
	VPERM2F128 $0x31, Y6, Y4, Y2
	VPERM2F128 $0x31, Y7, Y5, Y3
	VMOVUPD Y0, (SI)
	VMOVUPD Y1, (DX)
	VMOVUPD Y2, (R8)
	VMOVUPD Y3, (R9)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $128, DI
	DECQ BX
	JNZ  stloop
sttail:
	ANDQ $3, CX
	JZ   stdone
sttloop:
	MOVQ (DI), AX
	MOVQ AX, (SI)
	MOVQ 8(DI), AX
	MOVQ AX, (DX)
	MOVQ 16(DI), AX
	MOVQ AX, (R8)
	MOVQ 24(DI), AX
	MOVQ AX, (R9)
	ADDQ $32, DI
	ADDQ $8, SI
	ADDQ $8, DX
	ADDQ $8, R8
	ADDQ $8, R9
	DECQ CX
	JNZ  sttloop
stdone:
	VZEROUPPER
	RET

// func hiddenDeltaRow4(d, dNext, wNext, acts *float64, units4, unitsNext, rowW int)
// One sample's backprop recurrence, four units per instruction:
//
//	d[j] = (Σ_k wNext[k*rowW+j]·dNext[k]) · a[j]·(1−a[j])   for j < units4
//
// The k-sum ascends within each lane; units4 is a positive multiple of 4
// (the caller handles the j tail), unitsNext ≥ 1.
TEXT ·hiddenDeltaRow4(SB), NOSPLIT, $0-56
	MOVQ d+0(FP), DI
	MOVQ dNext+8(FP), SI
	MOVQ wNext+16(FP), DX
	MOVQ acts+24(FP), R9
	MOVQ units4+32(FP), CX
	MOVQ unitsNext+40(FP), R8
	MOVQ rowW+48(FP), R10
	SHLQ $3, R10                // rowW in bytes
	LEAQ expconsts<>(SB), R13
	VMOVUPD 384(R13), Y6        // 1.0
hdjloop:
	VXORPD Y0, Y0, Y0
	MOVQ DX, R11                // &wNext[j] column cursor
	MOVQ SI, R12                // dNext cursor
	MOVQ R8, R13
hdkloop:
	VBROADCASTSD (R12), Y1
	VMULPD  (R11), Y1, Y1       // wNext[k*rowW+j..j+3] · dNext[k]
	VADDPD  Y1, Y0, Y0
	ADDQ R10, R11
	ADDQ $8, R12
	DECQ R13
	JNZ  hdkloop
	VMOVUPD (R9), Y1            // a
	VMULPD  Y1, Y0, Y0          // s·a
	VSUBPD  Y1, Y6, Y2          // 1−a
	VMULPD  Y2, Y0, Y0          // (s·a)·(1−a)
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, R9
	ADDQ $32, DX
	SUBQ $4, CX
	JNZ  hdjloop
	VZEROUPPER
	RET

// func sgdFoldAll(vel, x0, x1, x2, x3, d *float64, units, inDim int, lr, mom float64)
// The momentum-folding first block of the weight update, all units in one
// call. For each unit j (t_k = lr·d[k·units+j], rowW = inDim+1):
//
//	vel[j*rowW+i]     = mom·v − (((t0·x0[i] + t1·x1[i]) + t2·x2[i]) + t3·x3[i])
//	vel[j*rowW+inDim] = mom·v − (((t0 + t1) + t2) + t3)
//
// Interior i runs four lanes wide; the i tail and the bias column use
// scalar AVX ops with the reference's exact association. units ≥ 1.
TEXT ·sgdFoldAll(SB), NOSPLIT, $0-80
	MOVQ vel+0(FP), DI
	MOVQ x0+8(FP), SI
	MOVQ x1+16(FP), DX
	MOVQ x2+24(FP), R8
	MOVQ x3+32(FP), R9
	MOVQ d+40(FP), R10
	MOVQ units+48(FP), CX
	MOVQ inDim+56(FP), R13
	VBROADCASTSD lr+64(FP), Y9
	VBROADCASTSD mom+72(FP), Y8
	MOVQ CX, R11
	SHLQ $3, R11                // d stride: units·8 bytes
	LEAQ (R11)(R11*2), BX       // 3·units·8 bytes
	MOVQ R13, R12
	ANDQ $-4, R12
	SHLQ $3, R12                // vector span: (inDim&^3)·8 bytes
	SHLQ $3, R13                // row span: inDim·8 bytes (bias offset)
sfajloop:
	VBROADCASTSD (R10), Y4      // t0 = lr·d[j]
	VMULPD Y9, Y4, Y4
	VBROADCASTSD (R10)(R11*1), Y5
	VMULPD Y9, Y5, Y5
	VBROADCASTSD (R10)(R11*2), Y6
	VMULPD Y9, Y6, Y6
	VBROADCASTSD (R10)(BX*1), Y7
	VMULPD Y9, Y7, Y7
	XORQ AX, AX
	CMPQ AX, R12
	JGE  sfatail
sfavloop:
	VMOVUPD (SI)(AX*1), Y0
	VMULPD  Y4, Y0, Y0          // t0·x0
	VMOVUPD (DX)(AX*1), Y1
	VMULPD  Y5, Y1, Y1
	VADDPD  Y1, Y0, Y0          // + t1·x1
	VMOVUPD (R8)(AX*1), Y1
	VMULPD  Y6, Y1, Y1
	VADDPD  Y1, Y0, Y0          // + t2·x2
	VMOVUPD (R9)(AX*1), Y1
	VMULPD  Y7, Y1, Y1
	VADDPD  Y1, Y0, Y0          // + t3·x3
	VMOVUPD (DI)(AX*1), Y2
	VMULPD  Y8, Y2, Y2          // mom·v
	VSUBPD  Y0, Y2, Y2          // − sum
	VMOVUPD Y2, (DI)(AX*1)
	ADDQ $32, AX
	CMPQ AX, R12
	JLT  sfavloop
sfatail:
	CMPQ AX, R13
	JGE  sfabias
sfatloop:
	VMOVSD (SI)(AX*1), X0
	VMULSD X4, X0, X0
	VMOVSD (DX)(AX*1), X1
	VMULSD X5, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R8)(AX*1), X1
	VMULSD X6, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R9)(AX*1), X1
	VMULSD X7, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (DI)(AX*1), X2
	VMULSD X8, X2, X2
	VSUBSD X0, X2, X2
	VMOVSD X2, (DI)(AX*1)
	ADDQ $8, AX
	CMPQ AX, R13
	JLT  sfatloop
sfabias:
	VADDSD X5, X4, X10          // (t0+t1)
	VADDSD X6, X10, X10         // +t2
	VADDSD X7, X10, X10         // +t3
	VMOVSD (DI)(R13*1), X2
	VMULSD X8, X2, X2
	VSUBSD X10, X2, X2
	VMOVSD X2, (DI)(R13*1)
	LEAQ 8(DI)(R13*1), DI       // next vel row (rowW doubles)
	ADDQ $8, R10                // next unit's d column
	DECQ CX
	JNZ  sfajloop
	VZEROUPPER
	RET

// func sgdAxpyAll(vel, x0, x1, x2, x3, d *float64, units, inDim int, lr float64)
// A non-folding 4-sample block of the weight update, all units in one call:
//
//	vel[j*rowW+i]     −= ((t0·x0[i] + t1·x1[i]) + t2·x2[i]) + t3·x3[i]
//	vel[j*rowW+inDim] −= ((t0 + t1) + t2) + t3
//
// with t_k = lr·d[k·units+j]. Same tail/bias handling as sgdFoldAll.
TEXT ·sgdAxpyAll(SB), NOSPLIT, $0-72
	MOVQ vel+0(FP), DI
	MOVQ x0+8(FP), SI
	MOVQ x1+16(FP), DX
	MOVQ x2+24(FP), R8
	MOVQ x3+32(FP), R9
	MOVQ d+40(FP), R10
	MOVQ units+48(FP), CX
	MOVQ inDim+56(FP), R13
	VBROADCASTSD lr+64(FP), Y9
	MOVQ CX, R11
	SHLQ $3, R11
	LEAQ (R11)(R11*2), BX
	MOVQ R13, R12
	ANDQ $-4, R12
	SHLQ $3, R12
	SHLQ $3, R13
sajloop:
	VBROADCASTSD (R10), Y4
	VMULPD Y9, Y4, Y4
	VBROADCASTSD (R10)(R11*1), Y5
	VMULPD Y9, Y5, Y5
	VBROADCASTSD (R10)(R11*2), Y6
	VMULPD Y9, Y6, Y6
	VBROADCASTSD (R10)(BX*1), Y7
	VMULPD Y9, Y7, Y7
	XORQ AX, AX
	CMPQ AX, R12
	JGE  satail
savloop:
	VMOVUPD (SI)(AX*1), Y0
	VMULPD  Y4, Y0, Y0
	VMOVUPD (DX)(AX*1), Y1
	VMULPD  Y5, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R8)(AX*1), Y1
	VMULPD  Y6, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R9)(AX*1), Y1
	VMULPD  Y7, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (DI)(AX*1), Y2
	VSUBPD  Y0, Y2, Y2
	VMOVUPD Y2, (DI)(AX*1)
	ADDQ $32, AX
	CMPQ AX, R12
	JLT  savloop
satail:
	CMPQ AX, R13
	JGE  sabias
satloop:
	VMOVSD (SI)(AX*1), X0
	VMULSD X4, X0, X0
	VMOVSD (DX)(AX*1), X1
	VMULSD X5, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R8)(AX*1), X1
	VMULSD X6, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R9)(AX*1), X1
	VMULSD X7, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (DI)(AX*1), X2
	VSUBSD X0, X2, X2
	VMOVSD X2, (DI)(AX*1)
	ADDQ $8, AX
	CMPQ AX, R13
	JLT  satloop
sabias:
	VADDSD X5, X4, X10
	VADDSD X6, X10, X10
	VADDSD X7, X10, X10
	VMOVSD (DI)(R13*1), X2
	VSUBSD X10, X2, X2
	VMOVSD X2, (DI)(R13*1)
	LEAQ 8(DI)(R13*1), DI
	ADDQ $8, R10
	DECQ CX
	JNZ  sajloop
	VZEROUPPER
	RET

// func axpyNegAll(vel, x, d *float64, units, inDim int, lr float64)
// A single straggler sample of the weight update, all units in one call:
// with t = lr·d[j], vel[j*rowW+i] −= t·x[i] and vel[j*rowW+inDim] −= t.
TEXT ·axpyNegAll(SB), NOSPLIT, $0-48
	MOVQ vel+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ d+16(FP), R10
	MOVQ units+24(FP), CX
	MOVQ inDim+32(FP), R13
	VBROADCASTSD lr+40(FP), Y9
	MOVQ R13, R12
	ANDQ $-4, R12
	SHLQ $3, R12
	SHLQ $3, R13
anjloop:
	VBROADCASTSD (R10), Y4
	VMULPD Y9, Y4, Y4           // t = lr·d[j]
	XORQ AX, AX
	CMPQ AX, R12
	JGE  antail
anvloop:
	VMOVUPD (SI)(AX*1), Y0
	VMULPD  Y4, Y0, Y0
	VMOVUPD (DI)(AX*1), Y1
	VSUBPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)(AX*1)
	ADDQ $32, AX
	CMPQ AX, R12
	JLT  anvloop
antail:
	CMPQ AX, R13
	JGE  anbias
antloop:
	VMOVSD (SI)(AX*1), X0
	VMULSD X4, X0, X0
	VMOVSD (DI)(AX*1), X1
	VSUBSD X0, X1, X1
	VMOVSD X1, (DI)(AX*1)
	ADDQ $8, AX
	CMPQ AX, R13
	JLT  antloop
anbias:
	VMOVSD (DI)(R13*1), X2
	VSUBSD X4, X2, X2
	VMOVSD X2, (DI)(R13*1)
	LEAQ 8(DI)(R13*1), DI
	ADDQ $8, R10
	DECQ CX
	JNZ  anjloop
	VZEROUPPER
	RET

// func vecScale4(v *float64, n int, s float64)
// v[i] = s·v[i] for i < n; n is a multiple of 4.
TEXT ·vecScale4(SB), NOSPLIT, $0-24
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	VBROADCASTSD s+16(FP), Y4
	SHRQ $2, CX
	JZ   vsdone
vsloop:
	VMOVUPD (DI), Y0
	VMULPD  Y4, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	DECQ CX
	JNZ  vsloop
vsdone:
	VZEROUPPER
	RET

// func vecAdd4(dst, src *float64, n int)
// dst[i] += src[i] for i < n; n is a multiple of 4.
TEXT ·vecAdd4(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $2, CX
	JZ   vadone
valoop:
	VMOVUPD (DI), Y0
	VADDPD  (SI), Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	DECQ CX
	JNZ  valoop
vadone:
	VZEROUPPER
	RET
