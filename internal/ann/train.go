package ann

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Sample is one supervised training example: feature vector X and scalar
// target Y (normalised IPC in ACTOR's use).
type Sample struct {
	X []float64
	Y float64
}

// Config controls network construction and training.
type Config struct {
	// Hidden lists hidden-layer widths; the paper's three-layer topology
	// corresponds to one entry (e.g. 16).
	Hidden []int
	// LearningRate is the backprop step size η.
	LearningRate float64
	// Momentum is the velocity retention μ.
	Momentum float64
	// MaxEpochs bounds training length.
	MaxEpochs int
	// Patience is the number of consecutive non-improving validation
	// epochs tolerated before early stopping halts training (the paper's
	// overfitting counter-measure [15]).
	Patience int
	// Seed makes training deterministic.
	Seed int64
	// BatchSize is the mini-batch size B of the fused GEMM training pass.
	// 0 or 1 (the default) selects per-sample stochastic backprop — the
	// classic update rule, which the batched pass reproduces bit-for-bit
	// at B = 1. Larger values process B samples per fused
	// forward/backward/update call with summed (not averaged) gradients,
	// so one batch step approximates B consecutive per-sample steps at
	// the same learning rate. The epoch shuffle is unchanged and batches
	// are consecutive chunks of the shuffled order (fixed shuffle → fixed
	// batch partition), so training remains deterministic under Seed at
	// any GOMAXPROCS.
	BatchSize int
	// WarmStartEpochs, when > 0, switches TrainEnsemble to warm-start
	// mode: one base network is trained per ensemble on (almost) the full
	// dataset, and each fold member then fine-tunes a copy of the base
	// weights for at most WarmStartEpochs epochs instead of training from
	// random initialisation for MaxEpochs. Folds share all but 2/k of
	// their data, so fine-tuning converges in a fraction of the epochs.
	// 0 (the default) keeps the sequential-equivalent cold-start
	// behaviour. See TrainEnsemble for the fold protocol.
	WarmStartEpochs int
}

// DefaultConfig returns the training configuration used throughout the
// reproduction: one 16-unit hidden layer, η = 0.05, μ = 0.5, up to 400
// epochs with patience 25, per-sample updates and cold-start ensembles
// (BatchSize and WarmStartEpochs are opt-in performance knobs).
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{16},
		LearningRate: 0.05,
		Momentum:     0.5,
		MaxEpochs:    400,
		Patience:     25,
		Seed:         1,
	}
}

// TrainResult reports what happened during training.
type TrainResult struct {
	// Epochs is the number of epochs actually run.
	Epochs int
	// TrainMSE and ValidMSE are the final errors on the (normalised)
	// training and validation sets.
	TrainMSE, ValidMSE float64
	// Stopped reports whether early stopping fired before MaxEpochs.
	Stopped bool
}

// Train fits a network to train, early-stopping on valid. The returned
// network is the snapshot with the best validation error seen (not the last
// epoch's weights). Inputs must be pre-normalised; see Scaler.
func Train(train, valid []Sample, cfg Config) (*Network, TrainResult, error) {
	return TrainFrom(nil, train, valid, cfg)
}

// TrainFrom is Train with a warm start: when init is non-nil, training
// fine-tunes a copy of init's weights instead of a fresh random
// initialisation (init itself is never mutated). The init topology must
// match the one cfg.Hidden and the sample dimension imply. cfg.Seed still
// drives the epoch shuffles, so fine-tuning is deterministic.
func TrainFrom(init *Network, train, valid []Sample, cfg Config) (*Network, TrainResult, error) {
	if len(train) == 0 {
		return nil, TrainResult{}, errors.New("ann: empty training set")
	}
	inDim := len(train[0].X)
	ds, err := packSamples(train, inDim)
	if err != nil {
		return nil, TrainResult{}, err
	}
	vds, err := packSamples(valid, inDim)
	if err != nil {
		return nil, TrainResult{}, err
	}
	return trainCore(ds, identityIdx(ds.n()), vds, identityIdx(vds.n()), init, cfg)
}

// trainCore is the trainer both public entry points and TrainEnsemble
// share: it fits a network to the trainIdx rows of ds, early-stopping on
// the validIdx rows of vds (vds may alias ds — fold views are index slices
// into one packed corpus). With init non-nil it fine-tunes a copy of init.
func trainCore(ds *dataSet, trainIdx []int, vds *dataSet, validIdx []int, init *Network, cfg Config) (*Network, TrainResult, error) {
	if len(trainIdx) == 0 {
		return nil, TrainResult{}, errors.New("ann: empty training set")
	}
	sizes := append([]int{ds.d}, cfg.Hidden...)
	sizes = append(sizes, 1)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var net *Network
	if init != nil {
		if len(init.Sizes) != len(sizes) {
			return nil, TrainResult{}, fmt.Errorf("ann: warm-start topology %v, want %v", init.Sizes, sizes)
		}
		for i, s := range sizes {
			if init.Sizes[i] != s {
				return nil, TrainResult{}, fmt.Errorf("ann: warm-start topology %v, want %v", init.Sizes, sizes)
			}
		}
		net = init.Clone()
	} else {
		var err error
		net, err = NewNetwork(sizes, rng)
		if err != nil {
			return nil, TrainResult{}, err
		}
	}

	// All working memory for the whole training run is allocated once here
	// and reused across every epoch and batch. The shuffled order holds
	// dataset row ids directly: shuffling the id slice applies the same
	// permutation the legacy position shuffle did, sample for sample.
	batch := cfg.BatchSize
	if batch < 1 {
		batch = 1
	}
	vel := net.zeroLike()
	order := append([]int(nil), trainIdx...)
	var sc *scratch
	var bs *batchScratch
	if batch > 1 || len(validIdx) > 0 {
		rows := batch
		if rows < 16 {
			rows = 16 // validation forward passes batch at least 16 rows
		}
		bs = net.newBatchScratch(rows)
	}
	if batch == 1 {
		sc = net.getScratch()
	}

	// Early stopping needs a snapshot of the best weights seen; without a
	// validation set no snapshot is ever consulted, so skip the clone.
	var best *Network
	bestValid := math.Inf(1)
	bad := 0
	res := TrainResult{}
	if len(validIdx) > 0 {
		best = net.Clone()
	}

	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		if batch > 1 {
			sum = net.epochBatched(ds, order, batch, cfg.LearningRate, cfg.Momentum, vel, bs)
		} else {
			sum = net.epochPerSample(ds, order, cfg.LearningRate, cfg.Momentum, vel, sc)
		}
		res.Epochs = epoch + 1
		res.TrainMSE = sum / float64(len(order))

		if len(validIdx) == 0 {
			continue
		}
		v := net.mseBatched(vds, validIdx, bs)
		if v < bestValid-1e-12 {
			bestValid = v
			best.copyWeightsFrom(net)
			bad = 0
		} else {
			bad++
			if bad >= cfg.Patience {
				res.Stopped = true
				break
			}
		}
	}
	if sc != nil {
		net.putScratch(sc)
	}
	if len(validIdx) > 0 {
		net = best
		res.ValidMSE = bestValid
	} else {
		res.ValidMSE = res.TrainMSE
	}
	return net, res, nil
}
