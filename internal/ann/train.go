package ann

import (
	"errors"
	"math"
	"math/rand"
)

// Sample is one supervised training example: feature vector X and scalar
// target Y (normalised IPC in ACTOR's use).
type Sample struct {
	X []float64
	Y float64
}

// Config controls network construction and training.
type Config struct {
	// Hidden lists hidden-layer widths; the paper's three-layer topology
	// corresponds to one entry (e.g. 16).
	Hidden []int
	// LearningRate is the backprop step size η.
	LearningRate float64
	// Momentum is the velocity retention μ.
	Momentum float64
	// MaxEpochs bounds training length.
	MaxEpochs int
	// Patience is the number of consecutive non-improving validation
	// epochs tolerated before early stopping halts training (the paper's
	// overfitting counter-measure [15]).
	Patience int
	// Seed makes training deterministic.
	Seed int64
}

// DefaultConfig returns the training configuration used throughout the
// reproduction: one 16-unit hidden layer, η = 0.05, μ = 0.5, up to 400
// epochs with patience 25.
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{16},
		LearningRate: 0.05,
		Momentum:     0.5,
		MaxEpochs:    400,
		Patience:     25,
		Seed:         1,
	}
}

// TrainResult reports what happened during training.
type TrainResult struct {
	// Epochs is the number of epochs actually run.
	Epochs int
	// TrainMSE and ValidMSE are the final errors on the (normalised)
	// training and validation sets.
	TrainMSE, ValidMSE float64
	// Stopped reports whether early stopping fired before MaxEpochs.
	Stopped bool
}

// Train fits a network to train, early-stopping on valid. The returned
// network is the snapshot with the best validation error seen (not the last
// epoch's weights). Inputs must be pre-normalised; see Scaler.
func Train(train, valid []Sample, cfg Config) (*Network, TrainResult, error) {
	if len(train) == 0 {
		return nil, TrainResult{}, errors.New("ann: empty training set")
	}
	inDim := len(train[0].X)
	for _, s := range train {
		if len(s.X) != inDim {
			return nil, TrainResult{}, errors.New("ann: inconsistent feature dimensions")
		}
	}
	for _, s := range valid {
		if len(s.X) != inDim {
			return nil, TrainResult{}, errors.New("ann: inconsistent feature dimensions")
		}
	}
	sizes := append([]int{inDim}, cfg.Hidden...)
	sizes = append(sizes, 1)
	rng := rand.New(rand.NewSource(cfg.Seed))
	net, err := NewNetwork(sizes, rng)
	if err != nil {
		return nil, TrainResult{}, err
	}

	// All working memory for the whole training run is allocated once here
	// and reused across every epoch and sample.
	vel := net.zeroLike()
	sc := net.getScratch()
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	best := net.Clone()
	bestValid := math.Inf(1)
	bad := 0
	res := TrainResult{}

	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for _, idx := range order {
			s := &train[idx]
			sum += net.backprop(s.X, s.Y, cfg.LearningRate, cfg.Momentum, vel, sc)
		}
		res.Epochs = epoch + 1
		res.TrainMSE = sum / float64(len(train))

		if len(valid) == 0 {
			continue
		}
		v := net.MSE(valid)
		if v < bestValid-1e-12 {
			bestValid = v
			best.copyWeightsFrom(net)
			bad = 0
		} else {
			bad++
			if bad >= cfg.Patience {
				res.Stopped = true
				break
			}
		}
	}
	net.putScratch(sc)
	if len(valid) > 0 {
		net = best
		res.ValidMSE = bestValid
	} else {
		res.ValidMSE = res.TrainMSE
	}
	return net, res, nil
}
