// Batched linear-algebra kernels for the trainer: a dense forward layer
// with fused sigmoid, the batched backprop delta recurrence, and a fused
// momentum/AXPY weight update that consumes a whole mini-batch per call.
//
// All kernels operate on the network's flat row-major layer storage and on
// row-major batch matrices (one sample per row), so the inner loops stream
// contiguous memory: a weight row stays register/L1-resident while the
// batch rows stream past it. Register blocking is over *independent*
// outputs only — every individual output accumulates in exactly the order
// the per-sample path uses (bias first, then ascending feature index), so
// a batch of one is bit-for-bit identical to per-sample training. That
// equivalence is the correctness anchor the batched trainer is tested
// against (see train_batch_test.go).
package ann

import "math"

// fastExp computes eˣ by the classic range reduction x = k·ln2 + r with
// |r| ≤ ln2/2 and a degree-8 polynomial for eʳ, assembled as 2ᵏ·eʳ through
// direct exponent-bit construction. Worst-case relative error is ≈3·10⁻¹⁰ —
// ten orders of magnitude below the gradient noise of stochastic training —
// at roughly half the latency of math.Exp, which sits on the trainer's
// critical path through every sigmoid. Inputs beyond the normal-number
// range clamp (underflow flushes to zero), which for the sigmoid means
// exact saturation at 0 or 1.
func fastExp(x float64) float64 {
	const (
		log2e = 1.4426950408889634
		ln2hi = 6.93147180369123816490e-01
		ln2lo = 1.90821492927058770002e-10
	)
	if x > 709 {
		x = 709
	} else if x < -708 {
		return 0
	}
	k := math.Floor(x*log2e + 0.5)
	r := (x - k*ln2hi) - k*ln2lo
	p := 1 + r*(1+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120+r*(1.0/720+r*(1.0/5040+r*(1.0/40320))))))))
	return p * math.Float64frombits(uint64(int64(k)+1023)<<52)
}

// denseForward computes one layer's activations for a mini-batch:
//
//	out[b·units+j] = act( w[j·(inDim+1)+inDim] + Σ_i x[b·ldx+i] · w[j·(inDim+1)+i] )
//
// where act is the sigmoid for hidden layers and identity for the output
// layer. x holds batch rows of length ldx (≥ inDim); out is batch×units.
func denseForwardScalar(out, x, w []float64, batch, inDim, units, ldx int, sigmoidAct bool) {
	rowW := inDim + 1
	var b int
	// Four samples per pass share one traversal of the weight row. Each
	// sample keeps its own accumulator, so per-output rounding matches the
	// per-sample forward exactly.
	for b = 0; b+4 <= batch; b += 4 {
		x0 := x[(b+0)*ldx:][:inDim]
		x1 := x[(b+1)*ldx:][:inDim]
		x2 := x[(b+2)*ldx:][:inDim]
		x3 := x[(b+3)*ldx:][:inDim]
		for j := 0; j < units; j++ {
			row := w[j*rowW:][:rowW]
			bias := row[inDim]
			s0, s1, s2, s3 := bias, bias, bias, bias
			for i, wv := range row[:inDim] {
				s0 += wv * x0[i]
				s1 += wv * x1[i]
				s2 += wv * x2[i]
				s3 += wv * x3[i]
			}
			if sigmoidAct {
				s0, s1, s2, s3 = sigmoid(s0), sigmoid(s1), sigmoid(s2), sigmoid(s3)
			}
			out[(b+0)*units+j] = s0
			out[(b+1)*units+j] = s1
			out[(b+2)*units+j] = s2
			out[(b+3)*units+j] = s3
		}
	}
	for ; b < batch; b++ {
		xb := x[b*ldx:][:inDim]
		for j := 0; j < units; j++ {
			row := w[j*rowW:][:rowW]
			sum := row[inDim]
			for i, wv := range row[:inDim] {
				sum += wv * xb[i]
			}
			if sigmoidAct {
				sum = sigmoid(sum)
			}
			out[b*units+j] = sum
		}
	}
}

// hiddenDelta runs the backprop recurrence for one hidden layer over a
// mini-batch: for every sample b and unit j,
//
//	d[b·units+j] = ( Σ_k wNext[k·(units+1)+j] · dNext[b·unitsNext+k] ) · a·(1−a)
//
// where a is the unit's forward activation. The k-sum runs in ascending
// order, matching the per-sample backward pass bit-for-bit.
func hiddenDeltaScalar(d, dNext, wNext, acts []float64, batch, units, unitsNext int) {
	rowW := units + 1
	var b int
	// Four samples share one walk down each weight column; every sample
	// keeps its own k-ordered accumulator.
	for b = 0; b+4 <= batch; b += 4 {
		d0 := d[(b+0)*units:][:units]
		d1 := d[(b+1)*units:][:units]
		d2 := d[(b+2)*units:][:units]
		d3 := d[(b+3)*units:][:units]
		n0 := dNext[(b+0)*unitsNext:][:unitsNext]
		n1 := dNext[(b+1)*unitsNext:][:unitsNext]
		n2 := dNext[(b+2)*unitsNext:][:unitsNext]
		n3 := dNext[(b+3)*unitsNext:][:unitsNext]
		a0 := acts[(b+0)*units:][:units]
		a1 := acts[(b+1)*units:][:units]
		a2 := acts[(b+2)*units:][:units]
		a3 := acts[(b+3)*units:][:units]
		for j := 0; j < units; j++ {
			var s0, s1, s2, s3 float64
			for k := 0; k < unitsNext; k++ {
				wv := wNext[k*rowW+j]
				s0 += wv * n0[k]
				s1 += wv * n1[k]
				s2 += wv * n2[k]
				s3 += wv * n3[k]
			}
			d0[j] = s0 * a0[j] * (1 - a0[j])
			d1[j] = s1 * a1[j] * (1 - a1[j])
			d2[j] = s2 * a2[j] * (1 - a2[j])
			d3[j] = s3 * a3[j] * (1 - a3[j])
		}
	}
	for ; b < batch; b++ {
		db := d[b*units:][:units]
		nd := dNext[b*unitsNext:][:unitsNext]
		ab := acts[b*units:][:units]
		for j := range db {
			var sum float64
			for k, ndk := range nd {
				sum += wNext[k*rowW+j] * ndk
			}
			a := ab[j]
			db[j] = sum * a * (1 - a)
		}
	}
}

// sgdStep applies one summed-gradient step for a whole mini-batch to a
// layer's flat weights, fusing the momentum update and the AXPY into one
// pass over each weight row:
//
//	v ← μ·v − η·Σ_b δ_b ⊗ [x_b, 1] ;  w ← w + v
//
// The momentum decay is folded first, then four samples are drained per
// velocity traversal with the per-sample term computed as (η·δ)·x. At
// batch == 1 this is exactly v[i] = μ·v[i] − (η·δ)·x[i], reproducing the
// per-sample update bit-for-bit.
func sgdStepScalar(w, vel, d, x []float64, batch, units, inDim, ldx int, lr, momentum float64) {
	rowW := inDim + 1
	for j := 0; j < units; j++ {
		row := w[j*rowW:][:rowW]
		v := vel[j*rowW:][:rowW]
		var b int
		if batch >= 4 {
			// The first block folds the momentum decay into its
			// traversal, sparing a separate pass over the velocity row.
			t0 := lr * d[j]
			t1 := lr * d[1*units+j]
			t2 := lr * d[2*units+j]
			t3 := lr * d[3*units+j]
			x0 := x[:inDim]
			x1 := x[1*ldx:][:inDim]
			x2 := x[2*ldx:][:inDim]
			x3 := x[3*ldx:][:inDim]
			for i := range x0 {
				v[i] = momentum*v[i] - (t0*x0[i] + t1*x1[i] + t2*x2[i] + t3*x3[i])
			}
			v[inDim] = momentum*v[inDim] - (t0 + t1 + t2 + t3)
			b = 4
		} else {
			for i, vv := range v {
				v[i] = momentum * vv
			}
		}
		for ; b+4 <= batch; b += 4 {
			t0 := lr * d[(b+0)*units+j]
			t1 := lr * d[(b+1)*units+j]
			t2 := lr * d[(b+2)*units+j]
			t3 := lr * d[(b+3)*units+j]
			x0 := x[(b+0)*ldx:][:inDim]
			x1 := x[(b+1)*ldx:][:inDim]
			x2 := x[(b+2)*ldx:][:inDim]
			x3 := x[(b+3)*ldx:][:inDim]
			for i := range x0 {
				v[i] -= t0*x0[i] + t1*x1[i] + t2*x2[i] + t3*x3[i]
			}
			v[inDim] -= t0 + t1 + t2 + t3
		}
		for ; b < batch; b++ {
			t := lr * d[b*units+j]
			xb := x[b*ldx:][:inDim]
			for i, xv := range xb {
				v[i] -= t * xv
			}
			v[inDim] -= t
		}
		for i, vv := range v {
			row[i] += vv
		}
	}
}
