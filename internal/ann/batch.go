// Packed training corpus and the per-epoch drivers of the two training
// paths: the legacy per-sample stochastic pass and the mini-batch pass
// built on the kernels in gemm.go.
package ann

import (
	"errors"
	"fmt"
)

// dataSet is a packed, row-major training corpus: feature row i lives at
// x[i·d : (i+1)·d] with target y[i]. Packing happens once per training run;
// every fold, batch and validation view is then an index slice into the
// packed rows, so no per-fold sample copying survives on the training path.
type dataSet struct {
	x []float64
	y []float64
	d int
}

// n returns the number of rows.
func (ds *dataSet) n() int { return len(ds.y) }

// row returns feature row i.
func (ds *dataSet) row(i int) []float64 { return ds.x[i*ds.d : (i+1)*ds.d] }

// packWith packs samples into a dataSet of feature dimension d, filling
// each feature row through fillX and each target through mapY, and
// validating every sample's dimension (the caller fixes d from the
// training set so a validation set cannot silently disagree). It is the
// single point of truth for both the raw and the normalising packers.
func packWith(samples []Sample, d int, fillX func(dst, x []float64), mapY func(float64) float64) (*dataSet, error) {
	ds := &dataSet{
		x: make([]float64, len(samples)*d),
		y: make([]float64, len(samples)),
		d: d,
	}
	for i := range samples {
		if len(samples[i].X) != d {
			return nil, errors.New("ann: inconsistent feature dimensions")
		}
		fillX(ds.x[i*d:(i+1)*d], samples[i].X)
		ds.y[i] = mapY(samples[i].Y)
	}
	return ds, nil
}

// packSamples packs already-normalised samples verbatim.
func packSamples(samples []Sample, d int) (*dataSet, error) {
	return packWith(samples, d,
		func(dst, x []float64) { copy(dst, x) },
		func(y float64) float64 { return y })
}

// identityIdx returns [0, 1, …, n).
func identityIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// batchScratch is the working memory of the mini-batch pass: the gathered
// input rows plus batch-sized activation and delta matrices per layer. One
// scratch serves a whole training run.
type batchScratch struct {
	rows   int         // batch capacity
	x      []float64   // gathered inputs, rows×inDim
	acts   [][]float64 // acts[l]: rows×Sizes[l+1]
	deltas [][]float64 // deltas[l] matches acts[l]
}

// newBatchScratch sizes a scratch for the network topology and batch size.
func (n *Network) newBatchScratch(rows int) *batchScratch {
	bs := &batchScratch{
		rows:   rows,
		x:      make([]float64, rows*n.Sizes[0]),
		acts:   make([][]float64, len(n.Sizes)-1),
		deltas: make([][]float64, len(n.Sizes)-1),
	}
	for l := 1; l < len(n.Sizes); l++ {
		bs.acts[l-1] = make([]float64, rows*n.Sizes[l])
		bs.deltas[l-1] = make([]float64, rows*n.Sizes[l])
	}
	return bs
}

// epochPerSample runs one epoch of per-sample stochastic backprop over the
// rows listed in order (already shuffled), returning the summed squared
// error before each update — the legacy training inner loop.
func (n *Network) epochPerSample(ds *dataSet, order []int, lr, momentum float64, vel [][]float64, sc *scratch) float64 {
	var sum float64
	for _, id := range order {
		sum += n.backprop(ds.row(id), ds.y[id], lr, momentum, vel, sc)
	}
	return sum
}

// epochBatched runs one epoch of mini-batch gradient descent: the shuffled
// order is split into consecutive chunks of up to batch rows (fixed shuffle
// → fixed batch partition, so training stays deterministic under a seed),
// and each chunk does one fused forward/backward/update pass. Gradients are
// summed (not averaged) over the chunk, so a batch of one reproduces the
// per-sample pass bit-for-bit; see gemm.go.
func (n *Network) epochBatched(ds *dataSet, order []int, batch int, lr, momentum float64, vel [][]float64, bs *batchScratch) float64 {
	var sum float64
	for start := 0; start < len(order); start += batch {
		end := start + batch
		if end > len(order) {
			end = len(order)
		}
		sum += n.batchStep(ds, order[start:end], lr, momentum, vel, bs)
	}
	return sum
}

// batchStep runs forward, backward and weight update for one mini-batch,
// returning the batch's summed squared error (computed before the update,
// as the per-sample path does).
func (n *Network) batchStep(ds *dataSet, batchIdx []int, lr, momentum float64, vel [][]float64, bs *batchScratch) float64 {
	m := len(batchIdx)
	d := ds.d
	for r, id := range batchIdx {
		copy(bs.x[r*d:(r+1)*d], ds.row(id))
	}

	// Forward through every layer; hidden layers apply the sigmoid.
	nl := len(n.w)
	in, ld := bs.x, d
	for l := 0; l < nl; l++ {
		units := n.Sizes[l+1]
		denseForward(bs.acts[l], in, n.w[l], m, n.Sizes[l], units, ld, l != nl-1)
		in, ld = bs.acts[l], units
	}

	// Output deltas (linear unit: delta = error) and squared error.
	out := bs.acts[nl-1]
	dOut := bs.deltas[nl-1]
	var sum float64
	for r, id := range batchIdx {
		e := out[r] - ds.y[id]
		dOut[r] = e
		sum += e * e
	}

	// Hidden deltas, output layer inward.
	for l := nl - 2; l >= 0; l-- {
		hiddenDelta(bs.deltas[l], bs.deltas[l+1], n.w[l+1], bs.acts[l], m, n.Sizes[l+1], n.Sizes[l+2])
	}

	// Fused momentum/AXPY update per layer.
	in, ld = bs.x, d
	for l := 0; l < nl; l++ {
		sgdStep(n.w[l], vel[l], bs.deltas[l], in, m, n.Sizes[l+1], n.Sizes[l], ld, lr, momentum)
		in, ld = bs.acts[l], n.Sizes[l+1]
	}
	return sum
}

// mseBatched returns the mean squared error over the listed rows using
// batched forward passes. Each sample's output is an independent dot-product
// chain and errors accumulate in row order, so the result is bit-identical
// to the per-sample MSE regardless of batch size.
func (n *Network) mseBatched(ds *dataSet, idx []int, bs *batchScratch) float64 {
	if len(idx) == 0 {
		return 0
	}
	d := ds.d
	nl := len(n.w)
	var sum float64
	for start := 0; start < len(idx); start += bs.rows {
		end := start + bs.rows
		if end > len(idx) {
			end = len(idx)
		}
		chunk := idx[start:end]
		m := len(chunk)
		for r, id := range chunk {
			copy(bs.x[r*d:(r+1)*d], ds.row(id))
		}
		in, ld := bs.x, d
		for l := 0; l < nl; l++ {
			units := n.Sizes[l+1]
			denseForward(bs.acts[l], in, n.w[l], m, n.Sizes[l], units, ld, l != nl-1)
			in, ld = bs.acts[l], units
		}
		out := bs.acts[nl-1]
		for r, id := range chunk {
			e := out[r] - ds.y[id]
			sum += e * e
		}
	}
	return sum / float64(len(idx))
}

// mseIdx returns the network's mean squared error over the listed rows of
// the packed dataset using the pooled per-sample scratch — the index-view
// counterpart of MSE, used for ensemble fold estimates.
func (n *Network) mseIdx(ds *dataSet, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	if ds.d != n.Sizes[0] {
		panic(fmt.Sprintf("ann: input dim %d, want %d", ds.d, n.Sizes[0]))
	}
	s := n.getScratch()
	var sum float64
	for _, id := range idx {
		e := n.forward(ds.row(id), s) - ds.y[id]
		sum += e * e
	}
	n.putScratch(s)
	return sum / float64(len(idx))
}
