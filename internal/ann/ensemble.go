package ann

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/greenhpc/actor/internal/parallel"
)

// Ensemble is a k-fold cross-validation ensemble: k networks, each trained
// on k−2 folds with one fold for early stopping and one held out to
// estimate generalisation, predicting as the mean of all members (Section
// IV-A: "we average their outputs for the final prediction").
type Ensemble struct {
	Nets   []*Network
	Scaler *Scaler
	// EstimateMSE is the mean of the members' held-out-fold errors, an
	// unbiased estimate of ensemble-member generalisation error (in
	// normalised target units).
	EstimateMSE float64

	// pool recycles the normalised-input buffer Predict uses.
	pool sync.Pool
}

// TrainEnsemble builds a k-fold ensemble from samples. Fold assignment is a
// deterministic shuffle under cfg.Seed; member i uses fold i for early
// stopping, fold (i+1) mod k for its generalisation estimate, and the rest
// for training. Members train concurrently.
//
// Folds are index views into one packed, normalised corpus — no sample is
// copied per fold. With cfg.WarmStartEpochs > 0, a single base network is
// first trained on all folds but fold 0 (early-stopping on fold 0), and
// every member then fine-tunes a copy of the base weights for at most
// WarmStartEpochs epochs on its own folds. The base has seen each member's
// estimate fold, so EstimateMSE is slightly optimistic in warm-start mode;
// the paper-level leave-one-out evaluation is unaffected because the
// held-out benchmark never enters any fold.
func TrainEnsemble(samples []Sample, k int, cfg Config) (*Ensemble, error) {
	if k < 3 {
		return nil, errors.New("ann: ensemble needs k ≥ 3 folds (train/stop/estimate)")
	}
	if len(samples) < k {
		return nil, fmt.Errorf("ann: %d samples cannot fill %d folds", len(samples), k)
	}
	scaler, err := FitScaler(samples)
	if err != nil {
		return nil, err
	}
	ds, err := scaler.pack(samples)
	if err != nil {
		return nil, err
	}

	// Deterministic shuffled fold assignment: fold f holds the packed rows
	// assigned to it, in assignment order — the same sample sequence the
	// copying implementation produced.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	idx := rng.Perm(ds.n())
	foldIdx := make([][]int, k)
	for i, id := range idx {
		f := i % k
		foldIdx[f] = append(foldIdx[f], id)
	}

	var base *Network
	if cfg.WarmStartEpochs > 0 {
		var trainIdx []int
		for f := 1; f < k; f++ {
			trainIdx = append(trainIdx, foldIdx[f]...)
		}
		bcfg := cfg
		bcfg.Seed = cfg.Seed ^ 0x7a57 // base draws its own init/shuffle stream
		base, _, err = trainCore(ds, trainIdx, ds, foldIdx[0], nil, bcfg)
		if err != nil {
			return nil, err
		}
	}

	ens := &Ensemble{Nets: make([]*Network, k), Scaler: scaler}
	estimates := make([]float64, k)
	errs := make([]error, k)
	parallel.ForEach(k, func(member int) {
		stopFold := member
		estFold := (member + 1) % k
		var trainIdx []int
		for f := range foldIdx {
			if f != stopFold && f != estFold {
				trainIdx = append(trainIdx, foldIdx[f]...)
			}
		}
		mcfg := cfg
		mcfg.Seed = cfg.Seed + int64(member)*7919
		if base != nil {
			// Fine-tuning starts next to a minimum the base already
			// found, so cap the epochs and halve the patience — a fold
			// whose validation error stalls this close to convergence
			// is done, not warming up.
			mcfg.MaxEpochs = cfg.WarmStartEpochs
			mcfg.Patience = (cfg.Patience + 1) / 2
		}
		net, _, err := trainCore(ds, trainIdx, ds, foldIdx[stopFold], base, mcfg)
		if err != nil {
			errs[member] = err
			return
		}
		ens.Nets[member] = net
		estimates[member] = net.mseIdx(ds, foldIdx[estFold])
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	var sum float64
	for _, e := range estimates {
		sum += e
	}
	ens.EstimateMSE = sum / float64(k)
	return ens, nil
}

// Predict returns the ensemble's prediction for a raw (unnormalised)
// feature vector, in raw target units. It is safe for concurrent use and
// allocates nothing in steady state.
func (e *Ensemble) Predict(x []float64) float64 {
	bp, ok := e.pool.Get().(*[]float64)
	if !ok {
		bp = new([]float64)
	}
	nx := e.Scaler.XInto(*bp, x)
	*bp = nx // keep any regrown backing array
	var sum float64
	for _, n := range e.Nets {
		sum += n.Predict(nx)
	}
	e.pool.Put(bp)
	return e.Scaler.InvY(sum / float64(len(e.Nets)))
}

// InputDim returns the expected raw feature dimension.
func (e *Ensemble) InputDim() int {
	if len(e.Nets) == 0 {
		return 0
	}
	return e.Nets[0].InputDim()
}

// MarshalJSON serialises the whole ensemble (networks + scaler).
func (e *Ensemble) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Nets        []*Network `json:"nets"`
		Scaler      *Scaler    `json:"scaler"`
		EstimateMSE float64    `json:"estimate_mse"`
	}{e.Nets, e.Scaler, e.EstimateMSE})
}

// UnmarshalJSON restores a serialised ensemble.
func (e *Ensemble) UnmarshalJSON(data []byte) error {
	var raw struct {
		Nets        []*Network `json:"nets"`
		Scaler      *Scaler    `json:"scaler"`
		EstimateMSE float64    `json:"estimate_mse"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw.Nets) == 0 || raw.Scaler == nil {
		return errors.New("ann: malformed serialised ensemble")
	}
	e.Nets, e.Scaler, e.EstimateMSE = raw.Nets, raw.Scaler, raw.EstimateMSE
	return nil
}
