package ann

import (
	"math"
	"testing"
)

func TestFineTuneEnsembleDeterministicAndSound(t *testing.T) {
	base, err := TrainEnsemble(synthSamples(300, 13, 0.05), 5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A fresh campaign over the same target function, different noise draw.
	fresh := synthSamples(300, 29, 0.05)
	cfg := DefaultConfig()
	cfg.Seed = 99
	cfg.WarmStartEpochs = 40
	a, err := FineTuneEnsemble(base, fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FineTuneEnsemble(base, fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, -0.4, 0.6}
	if a.Predict(x) != b.Predict(x) {
		t.Error("fine-tuning not deterministic under a fixed seed")
	}
	if a.Scaler != base.Scaler {
		t.Error("fine-tuned ensemble refit the scaler; warm-started weights need the base normalisation")
	}
	if len(a.Nets) != len(base.Nets) {
		t.Fatalf("member count changed: %d → %d", len(base.Nets), len(a.Nets))
	}
	// The base must never be mutated by fine-tuning its copies.
	for i, n := range a.Nets {
		if n == base.Nets[i] {
			t.Fatalf("member %d aliases the base network", i)
		}
	}
	// Fine-tuned on-distribution error should stay in the base's ballpark:
	// it started from the base weights and saw 300 fresh samples.
	var baseMSE, tunedMSE float64
	probe := synthSamples(200, 57, 0)
	for _, s := range probe {
		baseMSE += (base.Predict(s.X) - s.Y) * (base.Predict(s.X) - s.Y)
		tunedMSE += (a.Predict(s.X) - s.Y) * (a.Predict(s.X) - s.Y)
	}
	baseMSE /= float64(len(probe))
	tunedMSE /= float64(len(probe))
	if math.IsNaN(tunedMSE) || tunedMSE > baseMSE*3+1e-3 {
		t.Errorf("fine-tuned MSE %.5f much worse than base %.5f", tunedMSE, baseMSE)
	}
}

func TestFineTuneEnsembleErrors(t *testing.T) {
	if _, err := FineTuneEnsemble(nil, synthSamples(50, 1, 0), DefaultConfig()); err == nil {
		t.Error("nil base accepted")
	}
	base, err := TrainEnsemble(synthSamples(120, 3, 0.05), 5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FineTuneEnsemble(base, synthSamples(3, 1, 0), DefaultConfig()); err == nil {
		t.Error("fewer samples than folds accepted")
	}
	small := &Ensemble{Nets: base.Nets[:2], Scaler: base.Scaler}
	if _, err := FineTuneEnsemble(small, synthSamples(50, 1, 0), DefaultConfig()); err == nil {
		t.Error("k < 3 base accepted")
	}
}
