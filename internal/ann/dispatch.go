// Kernel dispatch: the trainer's hot kernels are function variables bound
// once at init. The pure-Go implementations in gemm.go are the always-built
// reference and the default binding; dispatch_amd64.go rebinds them to the
// AVX2 implementations when internal/simd reports the machine supports it
// and ACTOR_SIMD does not opt out.
//
// Every vector implementation is lane-wise — it vectorizes across
// independent outputs (batch samples, units, weight indices) and performs,
// per output, exactly the operation sequence of the scalar reference — so
// the binding choice never changes a single output bit. gemm_simd_test.go
// fuzzes that equivalence across odd shapes.
package ann

var (
	denseForward = denseForwardScalar
	hiddenDelta  = hiddenDeltaScalar
	sgdStep      = sgdStepScalar

	// kernelVariant names the bound implementation ("scalar" or "avx2")
	// for benchmark metadata and diagnostics.
	kernelVariant = "scalar"
)

// KernelVariant reports which kernel implementation this process bound at
// startup: "avx2" when the vector kernels are active, "scalar" otherwise.
func KernelVariant() string { return kernelVariant }
