// Package ann implements the artificial neural networks at the heart of the
// paper's predictor: fully connected feed-forward networks with sigmoid
// hidden units trained by backpropagation with momentum, early stopping on a
// validation set, and k-fold cross-validation ensembles whose averaged
// output is the final prediction (the paper's Section IV-A methodology).
//
// The implementation is self-contained (stdlib only), deterministic under a
// caller-provided seed, and trains fold models in parallel.
package ann

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Network is a feed-forward neural network with sigmoid hidden layers and a
// linear output unit, suited to scalar regression targets such as IPC.
type Network struct {
	// Sizes lists layer widths from input to output, e.g. [13, 16, 1].
	Sizes []int
	// Weights[l][j][i] is the weight from unit i of layer l to unit j of
	// layer l+1; index i == Sizes[l] is unit j's bias.
	Weights [][][]float64
}

// NewNetwork creates a network with the given layer sizes and small random
// initial weights drawn from rng (uniform in ±1/sqrt(fanIn), the classic
// backprop initialisation that keeps sigmoid units in their linear region).
func NewNetwork(sizes []int, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, errors.New("ann: need at least input and output layers")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("ann: invalid layer size %d", s)
		}
	}
	n := &Network{Sizes: append([]int(nil), sizes...)}
	n.Weights = make([][][]float64, len(sizes)-1)
	for l := 0; l < len(sizes)-1; l++ {
		fanIn := sizes[l]
		scale := 1 / math.Sqrt(float64(fanIn))
		n.Weights[l] = make([][]float64, sizes[l+1])
		for j := range n.Weights[l] {
			w := make([]float64, fanIn+1) // +1 bias
			for i := range w {
				w[i] = rng.Float64()*2*scale - scale
			}
			n.Weights[l][j] = w
		}
	}
	return n, nil
}

// sigmoid is the logistic activation used by all hidden units (Fig. 5 of
// the paper).
func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// Forward runs the network on input x and returns the scalar output along
// with every layer's activations (needed by backprop). x must have length
// Sizes[0].
func (n *Network) forward(x []float64) (float64, [][]float64) {
	acts := make([][]float64, len(n.Sizes))
	acts[0] = x
	for l := 0; l < len(n.Weights); l++ {
		out := make([]float64, n.Sizes[l+1])
		last := l == len(n.Weights)-1
		for j, w := range n.Weights[l] {
			sum := w[len(w)-1] // bias
			in := acts[l]
			for i, v := range in {
				sum += w[i] * v
			}
			if last {
				out[j] = sum // linear output unit
			} else {
				out[j] = sigmoid(sum)
			}
		}
		acts[l+1] = out
	}
	return acts[len(acts)-1][0], acts
}

// Predict returns the network's output for input x. It panics if x has the
// wrong dimension, which always indicates a programming error upstream.
func (n *Network) Predict(x []float64) float64 {
	if len(x) != n.Sizes[0] {
		panic(fmt.Sprintf("ann: input dim %d, want %d", len(x), n.Sizes[0]))
	}
	y, _ := n.forward(x)
	return y
}

// InputDim returns the expected input vector length.
func (n *Network) InputDim() int { return n.Sizes[0] }

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	cp := &Network{Sizes: append([]int(nil), n.Sizes...)}
	cp.Weights = make([][][]float64, len(n.Weights))
	for l := range n.Weights {
		cp.Weights[l] = make([][]float64, len(n.Weights[l]))
		for j := range n.Weights[l] {
			cp.Weights[l][j] = append([]float64(nil), n.Weights[l][j]...)
		}
	}
	return cp
}

// backprop performs one stochastic gradient step on sample (x, y) with the
// given learning rate, accumulating momentum into vel (same shape as
// Weights). It returns the squared error before the update.
func (n *Network) backprop(x []float64, y, lr, momentum float64, vel [][][]float64) float64 {
	out, acts := n.forward(x)
	errOut := out - y

	// Deltas per layer (output layer is linear: delta = error).
	deltas := make([][]float64, len(n.Weights))
	deltas[len(deltas)-1] = []float64{errOut}
	for l := len(n.Weights) - 2; l >= 0; l-- {
		d := make([]float64, n.Sizes[l+1])
		next := deltas[l+1]
		for j := range d {
			var sum float64
			for k, w := range n.Weights[l+1] {
				sum += w[j] * next[k]
			}
			a := acts[l+1][j]
			d[j] = sum * a * (1 - a) // sigmoid derivative
		}
		deltas[l] = d
	}

	// Weight update with momentum: v ← μv − η∂E/∂w; w ← w + v
	// (equation (1) of the paper plus the standard momentum term).
	for l := range n.Weights {
		in := acts[l]
		for j, w := range n.Weights[l] {
			d := deltas[l][j]
			v := vel[l][j]
			for i := range in {
				v[i] = momentum*v[i] - lr*d*in[i]
				w[i] += v[i]
			}
			bi := len(w) - 1
			v[bi] = momentum*v[bi] - lr*d
			w[bi] += v[bi]
		}
	}
	return errOut * errOut
}

// zeroLike allocates a weight-shaped buffer of zeros.
func (n *Network) zeroLike() [][][]float64 {
	vel := make([][][]float64, len(n.Weights))
	for l := range n.Weights {
		vel[l] = make([][]float64, len(n.Weights[l]))
		for j := range n.Weights[l] {
			vel[l][j] = make([]float64, len(n.Weights[l][j]))
		}
	}
	return vel
}

// MSE returns the mean squared error of the network over the samples.
func (n *Network) MSE(set []Sample) float64 {
	if len(set) == 0 {
		return 0
	}
	var sum float64
	for _, s := range set {
		d := n.Predict(s.X) - s.Y
		sum += d * d
	}
	return sum / float64(len(set))
}

// MarshalJSON/UnmarshalJSON give the network a stable serialised form used
// by the offline trainer (cmd/actor-train) and loader (cmd/actor-predict).
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Sizes   []int         `json:"sizes"`
		Weights [][][]float64 `json:"weights"`
	}{n.Sizes, n.Weights})
}

// UnmarshalJSON restores a serialised network, validating shape consistency.
func (n *Network) UnmarshalJSON(data []byte) error {
	var raw struct {
		Sizes   []int         `json:"sizes"`
		Weights [][][]float64 `json:"weights"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw.Sizes) < 2 || len(raw.Weights) != len(raw.Sizes)-1 {
		return errors.New("ann: malformed serialised network")
	}
	for l := range raw.Weights {
		if len(raw.Weights[l]) != raw.Sizes[l+1] {
			return fmt.Errorf("ann: layer %d has %d units, want %d", l, len(raw.Weights[l]), raw.Sizes[l+1])
		}
		for j := range raw.Weights[l] {
			if len(raw.Weights[l][j]) != raw.Sizes[l]+1 {
				return fmt.Errorf("ann: layer %d unit %d has %d weights, want %d",
					l, j, len(raw.Weights[l][j]), raw.Sizes[l]+1)
			}
		}
	}
	n.Sizes = raw.Sizes
	n.Weights = raw.Weights
	return nil
}
