// Package ann implements the artificial neural networks at the heart of the
// paper's predictor: fully connected feed-forward networks with sigmoid
// hidden units trained by backpropagation with momentum, early stopping on a
// validation set, and k-fold cross-validation ensembles whose averaged
// output is the final prediction (the paper's Section IV-A methodology).
//
// The implementation is self-contained (stdlib only), deterministic under a
// caller-provided seed, and trains fold models in parallel. Weights are
// stored flat (one contiguous row-major slice per layer) and the forward and
// backprop passes run on reusable scratch buffers, so prediction allocates
// nothing in steady state — the predictor sits on the runtime's
// decision path, where allocation churn is measurable.
//
// Training has two engines sharing one packed corpus (normalised samples in
// flat row-major matrices; folds, batches and validation sets are index
// views into it). The default is the original per-sample stochastic pass.
// Config.BatchSize > 1 switches the inner loop to the mini-batch kernels in
// gemm.go — fused dense-forward/backward/update passes over B samples at a
// time — and Config.WarmStartEpochs > 0 makes TrainEnsemble fine-tune every
// fold from one shared base model instead of training each from scratch.
// Both knobs preserve determinism under a seed (fixed shuffle → fixed batch
// partition) and at batch size one the batched pass is bit-identical to the
// per-sample pass; together they make leave-one-out training the pipeline's
// fast path (see PERFORMANCE.md).
package ann

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Network is a feed-forward neural network with sigmoid hidden layers and a
// linear output unit, suited to scalar regression targets such as IPC.
type Network struct {
	// Sizes lists layer widths from input to output, e.g. [13, 16, 1].
	Sizes []int
	// w[l] is layer l's weight matrix, flattened row-major: Sizes[l+1]
	// rows of (Sizes[l]+1) columns, the last column being the unit bias.
	w [][]float64

	// pool recycles forward/backprop scratch buffers across calls;
	// the zero value is ready to use and is not copied (Network is
	// handled by pointer throughout).
	pool sync.Pool
}

// rowWidth returns the flattened row length of layer l (fan-in + bias).
func (n *Network) rowWidth(l int) int { return n.Sizes[l] + 1 }

// layerRow returns the weight row of unit j in layer l.
func (n *Network) layerRow(l, j int) []float64 {
	w := n.rowWidth(l)
	return n.w[l][j*w : (j+1)*w]
}

// NewNetwork creates a network with the given layer sizes and small random
// initial weights drawn from rng (uniform in ±1/sqrt(fanIn), the classic
// backprop initialisation that keeps sigmoid units in their linear region).
func NewNetwork(sizes []int, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, errors.New("ann: need at least input and output layers")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("ann: invalid layer size %d", s)
		}
	}
	n := &Network{Sizes: append([]int(nil), sizes...)}
	n.w = make([][]float64, len(sizes)-1)
	for l := 0; l < len(sizes)-1; l++ {
		fanIn := sizes[l]
		scale := 1 / math.Sqrt(float64(fanIn))
		layer := make([]float64, sizes[l+1]*(fanIn+1))
		for i := range layer {
			layer[i] = rng.Float64()*2*scale - scale
		}
		n.w[l] = layer
	}
	return n, nil
}

// sigmoid is the logistic activation used by all hidden units (Fig. 5 of
// the paper). The exponential is the polynomial fastExp (see gemm.go),
// shared by the per-sample and batched passes so the two stay bit-identical
// with each other.
func sigmoid(x float64) float64 {
	return 1 / (1 + fastExp(-x))
}

// scratch holds the per-call working memory of forward and backprop:
// activations for every layer past the input, and backprop deltas. One
// scratch serves any number of sequential passes; the pool hands each
// concurrent caller its own.
type scratch struct {
	acts   [][]float64 // acts[l] is layer l+1's activations
	deltas [][]float64 // deltas[l] matches acts[l]
}

// getScratch fetches (or sizes) a scratch matching the network topology.
func (n *Network) getScratch() *scratch {
	if s, ok := n.pool.Get().(*scratch); ok && s.fits(n) {
		return s
	}
	s := &scratch{
		acts:   make([][]float64, len(n.Sizes)-1),
		deltas: make([][]float64, len(n.Sizes)-1),
	}
	for l := 1; l < len(n.Sizes); l++ {
		s.acts[l-1] = make([]float64, n.Sizes[l])
		s.deltas[l-1] = make([]float64, n.Sizes[l])
	}
	return s
}

func (n *Network) putScratch(s *scratch) { n.pool.Put(s) }

// fits reports whether the scratch matches the network's topology — a
// Network whose shape changed via UnmarshalJSON must not reuse old buffers.
func (s *scratch) fits(n *Network) bool {
	if len(s.acts) != len(n.Sizes)-1 {
		return false
	}
	for l := 1; l < len(n.Sizes); l++ {
		if len(s.acts[l-1]) != n.Sizes[l] {
			return false
		}
	}
	return true
}

// forward runs the network on input x, writing every layer's activations
// into s and returning the scalar output. x must have length Sizes[0].
func (n *Network) forward(x []float64, s *scratch) float64 {
	in := x
	for l := 0; l < len(n.w); l++ {
		out := s.acts[l]
		last := l == len(n.w)-1
		rowW := n.rowWidth(l)
		layer := n.w[l]
		for j := range out {
			row := layer[j*rowW : (j+1)*rowW]
			sum := row[rowW-1] // bias
			for i, v := range in {
				sum += row[i] * v
			}
			if last {
				out[j] = sum // linear output unit
			} else {
				out[j] = sigmoid(sum)
			}
		}
		in = out
	}
	return s.acts[len(s.acts)-1][0]
}

// Predict returns the network's output for input x. It panics if x has the
// wrong dimension, which always indicates a programming error upstream.
// Predict is safe for concurrent use.
func (n *Network) Predict(x []float64) float64 {
	if len(x) != n.Sizes[0] {
		panic(fmt.Sprintf("ann: input dim %d, want %d", len(x), n.Sizes[0]))
	}
	s := n.getScratch()
	y := n.forward(x, s)
	n.putScratch(s)
	return y
}

// InputDim returns the expected input vector length.
func (n *Network) InputDim() int { return n.Sizes[0] }

// LayerShape returns (units, weightsPerUnit) of layer l — the row count and
// row width (fan-in plus bias) of its weight matrix.
func (n *Network) LayerShape(l int) (units, weightsPerUnit int) {
	return n.Sizes[l+1], n.rowWidth(l)
}

// NumLayers returns the number of weight layers (len(Sizes) − 1).
func (n *Network) NumLayers() int { return len(n.w) }

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	cp := &Network{Sizes: append([]int(nil), n.Sizes...)}
	cp.w = make([][]float64, len(n.w))
	for l := range n.w {
		cp.w[l] = append([]float64(nil), n.w[l]...)
	}
	return cp
}

// copyWeightsFrom overwrites n's weights with src's (same topology), the
// allocation-free alternative to Clone used by early-stopping snapshots.
func (n *Network) copyWeightsFrom(src *Network) {
	for l := range n.w {
		copy(n.w[l], src.w[l])
	}
}

// backprop performs one stochastic gradient step on sample (x, y) with the
// given learning rate, accumulating momentum into vel (same shape as the
// flattened weights) and using s as working memory. It returns the squared
// error before the update.
func (n *Network) backprop(x []float64, y, lr, momentum float64, vel [][]float64, s *scratch) float64 {
	out := n.forward(x, s)
	errOut := out - y

	// Deltas per layer (output layer is linear: delta = error).
	nl := len(n.w)
	s.deltas[nl-1][0] = errOut
	for l := nl - 2; l >= 0; l-- {
		d := s.deltas[l]
		next := s.deltas[l+1]
		nextRowW := n.rowWidth(l + 1)
		nextLayer := n.w[l+1]
		for j := range d {
			var sum float64
			for k, nd := range next {
				sum += nextLayer[k*nextRowW+j] * nd
			}
			a := s.acts[l][j]
			d[j] = sum * a * (1 - a) // sigmoid derivative
		}
	}

	// Weight update with momentum: v ← μv − η∂E/∂w; w ← w + v
	// (equation (1) of the paper plus the standard momentum term).
	in := x
	for l := range n.w {
		rowW := n.rowWidth(l)
		layer := n.w[l]
		vlayer := vel[l]
		for j, d := range s.deltas[l] {
			row := layer[j*rowW : (j+1)*rowW]
			v := vlayer[j*rowW : (j+1)*rowW]
			for i := range in {
				v[i] = momentum*v[i] - lr*d*in[i]
				row[i] += v[i]
			}
			bi := rowW - 1
			v[bi] = momentum*v[bi] - lr*d
			row[bi] += v[bi]
		}
		in = s.acts[l]
	}
	return errOut * errOut
}

// zeroLike allocates a weight-shaped flat buffer of zeros (momentum
// velocities).
func (n *Network) zeroLike() [][]float64 {
	vel := make([][]float64, len(n.w))
	for l := range n.w {
		vel[l] = make([]float64, len(n.w[l]))
	}
	return vel
}

// MSE returns the mean squared error of the network over the samples. Like
// Predict, it panics on a dimension mismatch — a programming error
// upstream that must not become a silently wrong error estimate.
func (n *Network) MSE(set []Sample) float64 {
	if len(set) == 0 {
		return 0
	}
	s := n.getScratch()
	var sum float64
	for i := range set {
		if len(set[i].X) != n.Sizes[0] {
			panic(fmt.Sprintf("ann: input dim %d, want %d", len(set[i].X), n.Sizes[0]))
		}
		d := n.forward(set[i].X, s) - set[i].Y
		sum += d * d
	}
	n.putScratch(s)
	return sum / float64(len(set))
}

// nestedWeights converts the flat storage to the serialised
// Weights[l][j][i] form (index i == Sizes[l] is unit j's bias).
func (n *Network) nestedWeights() [][][]float64 {
	out := make([][][]float64, len(n.w))
	for l := range n.w {
		units, rowW := n.LayerShape(l)
		out[l] = make([][]float64, units)
		for j := 0; j < units; j++ {
			out[l][j] = append([]float64(nil), n.w[l][j*rowW:(j+1)*rowW]...)
		}
	}
	return out
}

// MarshalJSON/UnmarshalJSON give the network a stable serialised form used
// by the offline trainer (cmd/actor-train) and loader (cmd/actor-predict).
// The wire format is unchanged from the nested-slice implementation.
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Sizes   []int         `json:"sizes"`
		Weights [][][]float64 `json:"weights"`
	}{n.Sizes, n.nestedWeights()})
}

// UnmarshalJSON restores a serialised network, validating shape consistency.
func (n *Network) UnmarshalJSON(data []byte) error {
	var raw struct {
		Sizes   []int         `json:"sizes"`
		Weights [][][]float64 `json:"weights"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw.Sizes) < 2 || len(raw.Weights) != len(raw.Sizes)-1 {
		return errors.New("ann: malformed serialised network")
	}
	for l := range raw.Weights {
		if len(raw.Weights[l]) != raw.Sizes[l+1] {
			return fmt.Errorf("ann: layer %d has %d units, want %d", l, len(raw.Weights[l]), raw.Sizes[l+1])
		}
		for j := range raw.Weights[l] {
			if len(raw.Weights[l][j]) != raw.Sizes[l]+1 {
				return fmt.Errorf("ann: layer %d unit %d has %d weights, want %d",
					l, j, len(raw.Weights[l][j]), raw.Sizes[l]+1)
			}
		}
	}
	n.Sizes = raw.Sizes
	n.w = make([][]float64, len(raw.Weights))
	for l := range raw.Weights {
		rowW := raw.Sizes[l] + 1
		flat := make([]float64, len(raw.Weights[l])*rowW)
		for j, row := range raw.Weights[l] {
			copy(flat[j*rowW:(j+1)*rowW], row)
		}
		n.w[l] = flat
	}
	return nil
}
