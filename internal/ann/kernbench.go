// Exported kernel entry points for the root benchmark suite and
// diagnostics: each invokes whatever implementation the dispatch in
// dispatch.go bound at startup (scalar reference or AVX2), so the
// microbenchmarks measure exactly the kernel the trainer runs.
package ann

// DenseForwardKernel runs the bound batched dense-layer kernel:
// out[b*units+j] = act(w[j]·x[b] + bias).
func DenseForwardKernel(out, x, w []float64, batch, inDim, units, ldx int, sigmoidAct bool) {
	denseForward(out, x, w, batch, inDim, units, ldx, sigmoidAct)
}

// HiddenDeltaKernel runs the bound backprop hidden-delta kernel.
func HiddenDeltaKernel(d, dNext, wNext, acts []float64, batch, units, unitsNext int) {
	hiddenDelta(d, dNext, wNext, acts, batch, units, unitsNext)
}

// SGDStepKernel runs the bound fused momentum/AXPY weight-update kernel.
func SGDStepKernel(w, vel, d, x []float64, batch, units, inDim, ldx int, lr, momentum float64) {
	sgdStep(w, vel, d, x, batch, units, inDim, ldx, lr, momentum)
}
