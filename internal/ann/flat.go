package ann

import "fmt"

// FlatWeights returns a deep copy of the network's weights in their native
// flat form: one row-major slice per weight layer, Sizes[l+1] rows of
// (Sizes[l]+1) columns with the last column holding the unit bias. This is
// the layout the bank serialization format stores verbatim, so a network
// round-trips through NewNetworkFromFlat without any reshaping loss.
func (n *Network) FlatWeights() [][]float64 {
	out := make([][]float64, len(n.w))
	for l := range n.w {
		out[l] = append([]float64(nil), n.w[l]...)
	}
	return out
}

// NewNetworkFromFlat constructs a network directly from flat per-layer
// weights as produced by FlatWeights, validating every layer's length
// against sizes. Both arguments are copied.
func NewNetworkFromFlat(sizes []int, weights [][]float64) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("ann: %d layer sizes, need at least input and output", len(sizes))
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("ann: invalid layer size %d", s)
		}
	}
	if len(weights) != len(sizes)-1 {
		return nil, fmt.Errorf("ann: %d weight layers for %d layer sizes", len(weights), len(sizes))
	}
	n := &Network{Sizes: append([]int(nil), sizes...)}
	n.w = make([][]float64, len(weights))
	for l := range weights {
		want := sizes[l+1] * (sizes[l] + 1)
		if len(weights[l]) != want {
			return nil, fmt.Errorf("ann: layer %d has %d weights, want %d (%d units × %d fan-in+bias)",
				l, len(weights[l]), want, sizes[l+1], sizes[l]+1)
		}
		n.w[l] = append([]float64(nil), weights[l]...)
	}
	return n, nil
}
