//go:build amd64 && !actor_noasm

// AVX2 bindings of the trainer kernels: thin Go drivers over the assembly
// routines in gemm_amd64.s. Each driver keeps the scalar reference's loop
// structure, hands the 4-wide interior to assembly and finishes tails with
// the reference's own code — so every output is produced by the exact
// scalar operation sequence whether it went through a vector lane or the
// tail. See gemm_simd_test.go for the fuzzed bit-identity enforcement.
package ann

import (
	"sync"

	"github.com/greenhpc/actor/internal/simd"
)

func init() {
	if simd.Enabled() {
		denseForward = denseForwardAVX2
		hiddenDelta = hiddenDeltaAVX2
		sgdStep = sgdStepAVX2
		kernelVariant = "avx2"
	}
}

//go:noescape
func expVec4(v *float64, n int)

//go:noescape
func sigmoidVec4(v *float64, n int)

//go:noescape
func denseSumsT4(tmp, w, xT *float64, units, inDim int)

//go:noescape
func packT4(xT, x0, x1, x2, x3 *float64, n int)

//go:noescape
func scatterT4(o0, o1, o2, o3, tmp *float64, n int)

//go:noescape
func hiddenDeltaRow4(d, dNext, wNext, acts *float64, units4, unitsNext, rowW int)

//go:noescape
func sgdFoldAll(vel, x0, x1, x2, x3, d *float64, units, inDim int, lr, mom float64)

//go:noescape
func sgdAxpyAll(vel, x0, x1, x2, x3, d *float64, units, inDim int, lr float64)

//go:noescape
func axpyNegAll(vel, x, d *float64, units, inDim int, lr float64)

//go:noescape
func vecScale4(v *float64, n int, s float64)

//go:noescape
func vecAdd4(dst, src *float64, n int)

// expVec applies fastExp elementwise: four lanes per instruction, scalar
// fastExp for the tail.
func expVec(v []float64) {
	if n4 := len(v) &^ 3; n4 > 0 {
		expVec4(&v[0], n4)
	}
	for i := len(v) &^ 3; i < len(v); i++ {
		v[i] = fastExp(v[i])
	}
}

// sigmoidVec applies the sigmoid elementwise (same fastExp core).
func sigmoidVec(v []float64) {
	if n4 := len(v) &^ 3; n4 > 0 {
		sigmoidVec4(&v[0], n4)
	}
	for i := len(v) &^ 3; i < len(v); i++ {
		v[i] = sigmoid(v[i])
	}
}

// fwdBuf is the per-call scratch of denseForwardAVX2: the column-major
// 4-sample input pack and the 4-wide pre-activation block.
type fwdBuf struct {
	xT  []float64
	tmp []float64
}

var fwdPool = sync.Pool{New: func() any { return new(fwdBuf) }}

func (b *fwdBuf) ensure(xt, tmp int) {
	if cap(b.xT) < xt {
		b.xT = make([]float64, xt)
	}
	b.xT = b.xT[:xt]
	if cap(b.tmp) < tmp {
		b.tmp = make([]float64, tmp)
	}
	b.tmp = b.tmp[:tmp]
}

// denseForwardAVX2 computes the batched dense layer with four samples per
// vector lane. The group's rows are packed column-major once (xT[i*4+k] =
// sample k's feature i) so the assembly kernel streams contiguous loads;
// each sample's accumulator still sums bias-first then ascending i, which
// keeps every output bit-identical to denseForwardScalar.
func denseForwardAVX2(out, x, w []float64, batch, inDim, units, ldx int, sigmoidAct bool) {
	if units == 0 || inDim == 0 {
		denseForwardScalar(out, x, w, batch, inDim, units, ldx, sigmoidAct)
		return
	}
	rowW := inDim + 1
	buf := fwdPool.Get().(*fwdBuf)
	buf.ensure(inDim*4, units*4)
	var b int
	for b = 0; b+4 <= batch; b += 4 {
		packT4(&buf.xT[0], &x[(b+0)*ldx], &x[(b+1)*ldx], &x[(b+2)*ldx], &x[(b+3)*ldx], inDim)
		denseSumsT4(&buf.tmp[0], &w[0], &buf.xT[0], units, inDim)
		if sigmoidAct {
			sigmoidVec4(&buf.tmp[0], units*4)
		}
		scatterT4(&out[(b+0)*units], &out[(b+1)*units], &out[(b+2)*units], &out[(b+3)*units],
			&buf.tmp[0], units)
	}
	// Sample tail: the scalar reference's own per-sample loop.
	for ; b < batch; b++ {
		xb := x[b*ldx:][:inDim]
		for j := 0; j < units; j++ {
			row := w[j*rowW:][:rowW]
			sum := row[inDim]
			for i, wv := range row[:inDim] {
				sum += wv * xb[i]
			}
			if sigmoidAct {
				sum = sigmoid(sum)
			}
			out[b*units+j] = sum
		}
	}
	fwdPool.Put(buf)
}

// hiddenDeltaAVX2 runs the backprop recurrence with four units per vector
// lane. wNext is row-major in k, so the four j-columns of one k are
// contiguous — no transpose needed; the k-sum ascends inside each lane.
func hiddenDeltaAVX2(d, dNext, wNext, acts []float64, batch, units, unitsNext int) {
	units4 := units &^ 3
	if units4 == 0 || unitsNext == 0 {
		hiddenDeltaScalar(d, dNext, wNext, acts, batch, units, unitsNext)
		return
	}
	rowW := units + 1
	for b := 0; b < batch; b++ {
		db := d[b*units:][:units]
		nd := dNext[b*unitsNext:][:unitsNext]
		ab := acts[b*units:][:units]
		hiddenDeltaRow4(&db[0], &nd[0], &wNext[0], &ab[0], units4, unitsNext, rowW)
		for j := units4; j < units; j++ {
			var sum float64
			for k, ndk := range nd {
				sum += wNext[k*rowW+j] * ndk
			}
			a := ab[j]
			db[j] = sum * a * (1 - a)
		}
	}
}

// sgdStepAVX2 applies the fused momentum/AXPY update with four weight
// indices per vector lane. The 4-sample blocks run whole layers per
// assembly call (the unit loop, the i tails and the bias column all live
// in the routine); each vel element still receives the reference's exact
// operation sequence — momentum fold first, then one subtraction per
// sample block and straggler, then w += vel — only the j/b loop nesting
// is swapped, which no element can observe.
func sgdStepAVX2(w, vel, d, x []float64, batch, units, inDim, ldx int, lr, momentum float64) {
	if units == 0 || inDim == 0 {
		sgdStepScalar(w, vel, d, x, batch, units, inDim, ldx, lr, momentum)
		return
	}
	n := units * (inDim + 1)
	var b int
	if batch >= 4 {
		sgdFoldAll(&vel[0], &x[0], &x[ldx], &x[2*ldx], &x[3*ldx], &d[0],
			units, inDim, lr, momentum)
		b = 4
	} else {
		if r4 := n &^ 3; r4 > 0 {
			vecScale4(&vel[0], r4, momentum)
		}
		for i := n &^ 3; i < n; i++ {
			vel[i] = momentum * vel[i]
		}
	}
	for ; b+4 <= batch; b += 4 {
		sgdAxpyAll(&vel[0], &x[(b+0)*ldx], &x[(b+1)*ldx], &x[(b+2)*ldx], &x[(b+3)*ldx],
			&d[b*units], units, inDim, lr)
	}
	for ; b < batch; b++ {
		axpyNegAll(&vel[0], &x[b*ldx], &d[b*units], units, inDim, lr)
	}
	if r4 := n &^ 3; r4 > 0 {
		vecAdd4(&w[0], &vel[0], r4)
	}
	for i := n &^ 3; i < n; i++ {
		w[i] += vel[i]
	}
}
