package ann

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/greenhpc/actor/internal/parallel"
)

// FineTuneEnsemble warm-starts a new k-fold ensemble from base on fresh
// samples: each member fine-tunes a copy of the corresponding base member's
// weights (TrainFrom semantics) under the same deterministic fold protocol
// as TrainEnsemble — member i early-stops on fold i and estimates on fold
// (i+1) mod k. The base's Scaler is reused, not refit: the member weights
// are expressed in the base's normalised feature space, so refitting the
// scaler on the new samples would silently invalidate the warm start.
//
// cfg.Hidden is ignored; the topology is taken from the base networks.
// With cfg.WarmStartEpochs > 0 each member trains at most that many epochs
// at halved patience (the fine-tune caps TrainEnsemble's warm-start mode
// uses); otherwise cfg.MaxEpochs applies. Deterministic under cfg.Seed at
// any GOMAXPROCS.
func FineTuneEnsemble(base *Ensemble, samples []Sample, cfg Config) (*Ensemble, error) {
	if base == nil || len(base.Nets) == 0 || base.Scaler == nil {
		return nil, errors.New("ann: fine-tuning needs a trained base ensemble")
	}
	k := len(base.Nets)
	if k < 3 {
		return nil, fmt.Errorf("ann: base ensemble has %d members, fine-tuning needs k ≥ 3", k)
	}
	if len(samples) < k {
		return nil, fmt.Errorf("ann: %d samples cannot fill %d folds", len(samples), k)
	}
	// The base topology drives trainCore's shape check.
	sizes := base.Nets[0].Sizes
	cfg.Hidden = append([]int(nil), sizes[1:len(sizes)-1]...)
	ds, err := base.Scaler.pack(samples)
	if err != nil {
		return nil, err
	}

	// Same deterministic shuffled fold assignment as TrainEnsemble.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	idx := rng.Perm(ds.n())
	foldIdx := make([][]int, k)
	for i, id := range idx {
		f := i % k
		foldIdx[f] = append(foldIdx[f], id)
	}

	ens := &Ensemble{Nets: make([]*Network, k), Scaler: base.Scaler}
	estimates := make([]float64, k)
	errs := make([]error, k)
	parallel.ForEach(k, func(member int) {
		stopFold := member
		estFold := (member + 1) % k
		var trainIdx []int
		for f := range foldIdx {
			if f != stopFold && f != estFold {
				trainIdx = append(trainIdx, foldIdx[f]...)
			}
		}
		mcfg := cfg
		mcfg.Seed = cfg.Seed + int64(member)*7919
		if cfg.WarmStartEpochs > 0 {
			// Fine-tuning starts next to a minimum the base member already
			// found — cap the epochs and halve the patience, exactly as
			// TrainEnsemble's warm-start mode does.
			mcfg.MaxEpochs = cfg.WarmStartEpochs
			mcfg.Patience = (cfg.Patience + 1) / 2
		}
		net, _, err := trainCore(ds, trainIdx, ds, foldIdx[stopFold], base.Nets[member], mcfg)
		if err != nil {
			errs[member] = err
			return
		}
		ens.Nets[member] = net
		estimates[member] = net.mseIdx(ds, foldIdx[estFold])
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	var sum float64
	for _, e := range estimates {
		sum += e
	}
	ens.EstimateMSE = sum / float64(k)
	return ens, nil
}
