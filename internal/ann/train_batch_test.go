package ann

import (
	"math"
	"math/rand"
	"testing"
)

// packedSynth packs synthetic normalised samples for direct epoch-driver
// tests.
func packedSynth(t *testing.T, n int, seed int64) *dataSet {
	t.Helper()
	samples := synthSamples(n, seed, 0.02)
	scaler, err := FitScaler(samples)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := scaler.pack(samples)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// weightsEqual reports bit-for-bit equality of two networks' weights.
func weightsEqual(a, b *Network) bool {
	for l := range a.w {
		for i, v := range a.w[l] {
			if math.Float64bits(v) != math.Float64bits(b.w[l][i]) {
				return false
			}
		}
	}
	return true
}

// TestBatchedEpochMatchesPerSampleAtBatchOne is the correctness anchor of
// the batched trainer: with a batch of one, the fused GEMM pass must
// reproduce the per-sample stochastic pass bit-for-bit — identical squared
// errors and identical weights after every epoch.
func TestBatchedEpochMatchesPerSampleAtBatchOne(t *testing.T) {
	ds := packedSynth(t, 60, 31)
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	netA, err := NewNetwork([]int{3, 16, 1}, rngA)
	if err != nil {
		t.Fatal(err)
	}
	netB, err := NewNetwork([]int{3, 16, 1}, rngB)
	if err != nil {
		t.Fatal(err)
	}
	velA, velB := netA.zeroLike(), netB.zeroLike()
	sc := netA.getScratch()
	bs := netB.newBatchScratch(1)
	orderA := identityIdx(ds.n())
	orderB := identityIdx(ds.n())
	for epoch := 0; epoch < 10; epoch++ {
		rngA.Shuffle(len(orderA), func(i, j int) { orderA[i], orderA[j] = orderA[j], orderA[i] })
		rngB.Shuffle(len(orderB), func(i, j int) { orderB[i], orderB[j] = orderB[j], orderB[i] })
		sumA := netA.epochPerSample(ds, orderA, 0.05, 0.5, velA, sc)
		sumB := netB.epochBatched(ds, orderB, 1, 0.05, 0.5, velB, bs)
		if math.Float64bits(sumA) != math.Float64bits(sumB) {
			t.Fatalf("epoch %d: squared-error sums differ: %v vs %v", epoch, sumA, sumB)
		}
		if !weightsEqual(netA, netB) {
			t.Fatalf("epoch %d: batched weights diverged from per-sample weights", epoch)
		}
	}
	netA.putScratch(sc)
}

// TestBatchedMSEMatchesPerSample asserts the batched validation pass is
// bit-identical to the per-sample MSE at any batch size: each sample's
// forward pass is an independent dot-product chain and errors accumulate
// in sample order.
func TestBatchedMSEMatchesPerSample(t *testing.T) {
	ds := packedSynth(t, 37, 8) // odd count exercises the tail chunk
	rng := rand.New(rand.NewSource(2))
	net, err := NewNetwork([]int{3, 16, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	idx := identityIdx(ds.n())
	want := net.mseIdx(ds, idx)
	for _, rows := range []int{1, 4, 16, 64} {
		bs := net.newBatchScratch(rows)
		if got := net.mseBatched(ds, idx, bs); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("batch rows %d: MSE %v, per-sample %v", rows, got, want)
		}
	}
}

// TestTrainBatchSizeZeroAndOneEquivalent asserts the dispatch: BatchSize 0
// and 1 are the same sequential-equivalent configuration.
func TestTrainBatchSizeZeroAndOneEquivalent(t *testing.T) {
	samples := synthSamples(80, 17, 0.02)
	scaler, _ := FitScaler(samples)
	norm := scaler.Apply(samples)
	cfg := DefaultConfig()
	cfg.MaxEpochs = 30
	a, _, err := Train(norm[:60], norm[60:], cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BatchSize = 1
	b, _, err := Train(norm[:60], norm[60:], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !weightsEqual(a, b) {
		t.Error("BatchSize 0 and 1 trained different networks")
	}
}

// TestBatchedTrainingLearns asserts mini-batch training (B > 1) still fits
// the synthetic nonlinear target well below its variance.
func TestBatchedTrainingLearns(t *testing.T) {
	samples := synthSamples(400, 7, 0)
	scaler, _ := FitScaler(samples)
	norm := scaler.Apply(samples)
	train, valid := norm[:320], norm[320:]
	cfg := DefaultConfig()
	cfg.MaxEpochs = 300
	cfg.BatchSize = 8
	net, res, err := Train(train, valid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Error("no epochs run")
	}
	var mean, varY float64
	for _, s := range valid {
		mean += s.Y
	}
	mean /= float64(len(valid))
	for _, s := range valid {
		d := s.Y - mean
		varY += d * d
	}
	varY /= float64(len(valid))
	if mse := net.MSE(valid); mse > varY/3 {
		t.Errorf("batched validation MSE %.5f not well below target variance %.5f", mse, varY)
	}
}

// TestWarmStartReachesColdStartValidMSE fine-tunes from a base model
// trained on the full dataset and asserts the result is no worse than
// cold-start training within tolerance, despite a fraction of the epochs —
// the property the warm-start ensemble mode rests on.
func TestWarmStartReachesColdStartValidMSE(t *testing.T) {
	samples := synthSamples(300, 23, 0.03)
	scaler, _ := FitScaler(samples)
	norm := scaler.Apply(samples)
	train, valid := norm[:240], norm[240:]
	cfg := DefaultConfig()
	cfg.MaxEpochs = 200
	cfg.BatchSize = 8

	_, cold, err := Train(train, valid, cfg)
	if err != nil {
		t.Fatal(err)
	}

	base, _, err := Train(norm, nil, cfg) // full dataset, no early stop
	if err != nil {
		t.Fatal(err)
	}
	ftCfg := cfg
	ftCfg.MaxEpochs = 40
	warmNet, warm, err := TrainFrom(base, train, valid, ftCfg)
	if err != nil {
		t.Fatal(err)
	}
	if warmNet == base {
		t.Fatal("TrainFrom returned the init network instead of a copy")
	}
	if warm.ValidMSE > cold.ValidMSE*1.5+1e-4 {
		t.Errorf("warm-start ValidMSE %.5f much worse than cold-start %.5f", warm.ValidMSE, cold.ValidMSE)
	}
}

// TestTrainFromRejectsTopologyMismatch asserts warm-start initial weights
// must match the configured topology.
func TestTrainFromRejectsTopologyMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	init, _ := NewNetwork([]int{3, 8, 1}, rng)
	samples := synthSamples(30, 3, 0)
	cfg := DefaultConfig() // Hidden = [16], mismatching init's 8
	if _, _, err := TrainFrom(init, samples, nil, cfg); err == nil {
		t.Error("topology mismatch accepted")
	}
}

// TestTrainNoValidationSkipsSnapshot asserts Train no longer clones an
// early-stopping snapshot it will never consult when there is no
// validation set (the snapshot is only used to roll back to the best
// validation epoch).
func TestTrainNoValidationSkipsSnapshot(t *testing.T) {
	samples := synthSamples(40, 9, 0.02)
	scaler, _ := FitScaler(samples)
	norm := scaler.Apply(samples)
	cfg := DefaultConfig()
	cfg.MaxEpochs = 2

	withValid := testing.AllocsPerRun(5, func() {
		if _, _, err := Train(norm[:30], norm[30:], cfg); err != nil {
			t.Fatal(err)
		}
	})
	noValid := testing.AllocsPerRun(5, func() {
		if _, _, err := Train(norm[:30], nil, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// Without a validation set Train must do strictly less allocation work:
	// no snapshot clone (and no validation scratch). The comparison is
	// relative so it holds under instrumentation (-race) too.
	if noValid >= withValid {
		t.Errorf("Train without validation allocates %.0f times, with validation %.0f — snapshot clone not skipped",
			noValid, withValid)
	}
}

// TestWarmStartEnsembleDeterministicAndSound asserts the warm-start
// ensemble mode trains deterministically and stays close to the cold-start
// ensemble's held-out-fold estimate.
func TestWarmStartEnsembleDeterministicAndSound(t *testing.T) {
	samples := synthSamples(300, 13, 0.05)
	cold := DefaultConfig()
	cold.MaxEpochs = 150
	coldEns, err := TrainEnsemble(samples, 5, cold)
	if err != nil {
		t.Fatal(err)
	}

	warm := cold
	warm.BatchSize = 8
	warm.WarmStartEpochs = 40
	a, err := TrainEnsemble(samples, 5, warm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainEnsemble(samples, 5, warm)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, -0.4, 0.6}
	if a.Predict(x) != b.Predict(x) {
		t.Error("warm-start ensemble training not deterministic")
	}
	if a.EstimateMSE <= 0 {
		t.Error("warm-start ensemble estimate not populated")
	}
	if a.EstimateMSE > coldEns.EstimateMSE*2+1e-4 {
		t.Errorf("warm-start estimate MSE %.5f much worse than cold-start %.5f",
			a.EstimateMSE, coldEns.EstimateMSE)
	}
}
