package ann

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthSamples generates samples of a smooth nonlinear target over 3
// features.
func synthSamples(n int, seed int64, noise float64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := math.Sin(2*x[0]) + 0.5*x[1]*x[2] + 0.3*x[2]
		y += noise * rng.NormFloat64()
		out[i] = Sample{X: x, Y: y}
	}
	return out
}

func TestNewNetworkShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, err := NewNetwork([]int{3, 5, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n.InputDim() != 3 {
		t.Errorf("InputDim = %d", n.InputDim())
	}
	if n.NumLayers() != 2 {
		t.Fatalf("layers = %d", n.NumLayers())
	}
	if units, rowW := n.LayerShape(0); units != 5 || rowW != 4 {
		t.Errorf("hidden layer shape = %d×%d, want 5×4 (incl. bias)", units, rowW)
	}
	if _, err := NewNetwork([]int{3}, rng); err == nil {
		t.Error("single-layer network accepted")
	}
	if _, err := NewNetwork([]int{3, 0, 1}, rng); err == nil {
		t.Error("zero-width layer accepted")
	}
}

func TestPredictDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, _ := NewNetwork([]int{2, 4, 1}, rng)
	x := []float64{0.3, -0.7}
	if n.Predict(x) != n.Predict(x) {
		t.Error("Predict not deterministic")
	}
}

func TestPredictPanicsOnDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, _ := NewNetwork([]int{2, 4, 1}, rng)
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong input dimension")
		}
	}()
	n.Predict([]float64{1})
}

func TestTrainLearnsNonlinearFunction(t *testing.T) {
	samples := synthSamples(400, 7, 0)
	scaler, err := FitScaler(samples)
	if err != nil {
		t.Fatal(err)
	}
	norm := scaler.Apply(samples)
	train, valid := norm[:320], norm[320:]
	cfg := DefaultConfig()
	cfg.MaxEpochs = 300
	net, res, err := Train(train, valid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Error("no epochs run")
	}
	// A trained net must clearly beat predicting the mean (MSE of the
	// normalised target vs its mean ≈ variance).
	var mean float64
	for _, s := range valid {
		mean += s.Y
	}
	mean /= float64(len(valid))
	var varY float64
	for _, s := range valid {
		d := s.Y - mean
		varY += d * d
	}
	varY /= float64(len(valid))
	if net.MSE(valid) > varY/3 {
		t.Errorf("validation MSE %.5f not well below target variance %.5f", net.MSE(valid), varY)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	bad := []Sample{{X: []float64{1}, Y: 0}, {X: []float64{1, 2}, Y: 0}}
	if _, _, err := Train(bad, nil, DefaultConfig()); err == nil {
		t.Error("inconsistent dimensions accepted")
	}
}

func TestEarlyStoppingFires(t *testing.T) {
	// Pure-noise target: validation error cannot improve for long, so
	// early stopping must halt before MaxEpochs.
	samples := synthSamples(200, 3, 0)
	for i := range samples {
		samples[i].Y = float64(i%7) * 0.1 // decorrelate target from X
	}
	scaler, _ := FitScaler(samples)
	norm := scaler.Apply(samples)
	cfg := DefaultConfig()
	cfg.MaxEpochs = 2000
	cfg.Patience = 10
	_, res, err := Train(norm[:150], norm[150:], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("early stopping never fired on unlearnable data")
	}
	if res.Epochs >= 2000 {
		t.Error("training ran to MaxEpochs despite patience")
	}
}

func TestTrainDeterministicUnderSeed(t *testing.T) {
	samples := synthSamples(100, 5, 0.05)
	scaler, _ := FitScaler(samples)
	norm := scaler.Apply(samples)
	cfg := DefaultConfig()
	cfg.MaxEpochs = 50
	a, _, err := Train(norm[:80], norm[80:], cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := Train(norm[:80], norm[80:], cfg)
	x := scaler.X([]float64{0.1, 0.2, 0.3})
	if a.Predict(x) != b.Predict(x) {
		t.Error("training not deterministic under equal seeds")
	}
}

func TestNetworkSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, _ := NewNetwork([]int{4, 6, 1}, rng)
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, 0.4}
	if n.Predict(x) != back.Predict(x) {
		t.Error("serialisation round trip changed predictions")
	}
}

func TestNetworkUnmarshalRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"sizes":[2],"weights":[]}`,
		`{"sizes":[2,1],"weights":[[[1,2,3]]]}`, // wrong weight count (needs 3 = 2+bias ✓ actually)
		`{"sizes":[2,2],"weights":[[[1,2,3]]]}`, // wrong unit count
		`{"sizes":[2,1],"weights":[[[1,2]]]}`,   // missing bias weight
	}
	for _, c := range cases[1:] { // first case: wrong layer count
		var n Network
		if err := json.Unmarshal([]byte(cases[0]), &n); err == nil {
			t.Error("layer-count mismatch accepted")
		}
		_ = c
	}
	var n Network
	if err := json.Unmarshal([]byte(`{"sizes":[2,2],"weights":[[[1,2,3]]]}`), &n); err == nil {
		t.Error("unit-count mismatch accepted")
	}
	if err := json.Unmarshal([]byte(`{"sizes":[2,1],"weights":[[[1,2]]]}`), &n); err == nil {
		t.Error("missing bias weight accepted")
	}
}

func TestScalerRoundTrip(t *testing.T) {
	samples := synthSamples(50, 11, 0)
	sc, err := FitScaler(samples)
	if err != nil {
		t.Fatal(err)
	}
	f := func(y float64) bool {
		y = math.Mod(y, 100)
		return math.Abs(sc.InvY(sc.Y(y))-y) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalerStandardisation(t *testing.T) {
	samples := []Sample{
		{X: []float64{1, 10}, Y: 1},
		{X: []float64{3, 10}, Y: 2},
		{X: []float64{5, 10}, Y: 3},
	}
	sc, _ := FitScaler(samples)
	x := sc.X([]float64{3, 10})
	if math.Abs(x[0]) > 1e-9 {
		t.Errorf("mean-centred feature = %g, want 0", x[0])
	}
	// Constant feature passes through as zero without dividing by zero.
	if x[1] != 0 || math.IsNaN(x[1]) {
		t.Errorf("constant feature = %g, want 0", x[1])
	}
}

func TestScalerSerialization(t *testing.T) {
	sc, _ := FitScaler(synthSamples(20, 1, 0))
	data, _ := json.Marshal(sc)
	var back Scaler
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.YMin != sc.YMin || back.YMax != sc.YMax {
		t.Error("scaler round trip lost target range")
	}
}

func TestEnsembleBeatsGuessingAndRoundTrips(t *testing.T) {
	samples := synthSamples(300, 13, 0.05)
	cfg := DefaultConfig()
	cfg.MaxEpochs = 150
	ens, err := TrainEnsemble(samples, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Nets) != 5 {
		t.Fatalf("ensemble has %d members, want 5", len(ens.Nets))
	}
	// Held-out accuracy: evaluate on fresh samples from the same process.
	test := synthSamples(100, 999, 0)
	var mse, varY, mean float64
	for _, s := range test {
		mean += s.Y
	}
	mean /= float64(len(test))
	for _, s := range test {
		d := ens.Predict(s.X) - s.Y
		mse += d * d
		dv := s.Y - mean
		varY += dv * dv
	}
	mse /= float64(len(test))
	varY /= float64(len(test))
	if mse > varY/2 {
		t.Errorf("ensemble MSE %.4f not well below variance %.4f", mse, varY)
	}
	if ens.EstimateMSE <= 0 {
		t.Error("ensemble estimate MSE not populated")
	}

	data, err := json.Marshal(ens)
	if err != nil {
		t.Fatal(err)
	}
	var back Ensemble
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, -0.4, 0.6}
	if math.Abs(back.Predict(x)-ens.Predict(x)) > 1e-12 {
		t.Error("ensemble round trip changed predictions")
	}
}

func TestEnsembleErrors(t *testing.T) {
	samples := synthSamples(10, 1, 0)
	if _, err := TrainEnsemble(samples, 2, DefaultConfig()); err == nil {
		t.Error("k=2 accepted (needs train/stop/estimate)")
	}
	if _, err := TrainEnsemble(samples[:2], 5, DefaultConfig()); err == nil {
		t.Error("fewer samples than folds accepted")
	}
}

func TestEnsembleDeterministic(t *testing.T) {
	samples := synthSamples(120, 21, 0.02)
	cfg := DefaultConfig()
	cfg.MaxEpochs = 60
	a, err := TrainEnsemble(samples, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := TrainEnsemble(samples, 4, cfg)
	x := []float64{0.5, 0.5, -0.5}
	if a.Predict(x) != b.Predict(x) {
		t.Error("ensemble training not deterministic (parallel fold training must not race)")
	}
}
