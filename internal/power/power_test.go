package power

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
)

func activity(cores int, util, ipc, bus float64) machine.Activity {
	return machine.Activity{
		TimeSec:          1,
		ActiveCores:      cores,
		TotalCores:       4,
		AvgCoreIPC:       ipc,
		PeakIPC:          4,
		AvgCoreUtil:      util,
		BusUtilization:   bus,
		L2AccessesPerSec: 1e8,
	}
}

func TestPowerAboveBase(t *testing.T) {
	m := Default()
	p := m.Power(activity(1, 0.5, 1, 0.1))
	if p <= m.BaseWatts {
		t.Errorf("power %g not above base %g", p, m.BaseWatts)
	}
}

func TestPowerMonotoneInCores(t *testing.T) {
	m := Default()
	prev := 0.0
	for cores := 0; cores <= 4; cores++ {
		p := m.Power(activity(cores, 0.5, 1, 0.2))
		if p < prev {
			t.Errorf("power decreased with more cores: %g → %g", prev, p)
		}
		prev = p
	}
}

func TestPowerMonotoneInUtilAndIPC(t *testing.T) {
	m := Default()
	if m.Power(activity(4, 0.2, 1, 0)) >= m.Power(activity(4, 0.9, 1, 0)) {
		t.Error("power not increasing in utilisation")
	}
	if m.Power(activity(4, 0.5, 0.5, 0)) >= m.Power(activity(4, 0.5, 3, 0)) {
		t.Error("power not increasing in IPC")
	}
	if m.Power(activity(4, 0.5, 1, 0)) >= m.Power(activity(4, 0.5, 1, 0.9)) {
		t.Error("power not increasing in bus utilisation")
	}
}

func TestPowerIPCRelClamped(t *testing.T) {
	m := Default()
	// Absurd IPC must not blow up power beyond the linear bound.
	p1 := m.Power(activity(4, 1, 4, 0))
	p2 := m.Power(activity(4, 1, 400, 0))
	if p1 != p2 {
		t.Errorf("IPC relative term not clamped: %g vs %g", p1, p2)
	}
}

func TestPowerPositiveQuick(t *testing.T) {
	m := Default()
	f := func(cores uint8, util, ipc, bus float64) bool {
		a := activity(int(cores%5), math.Mod(math.Abs(util), 1), math.Abs(ipc), math.Mod(math.Abs(bus), 1))
		p := m.Power(a)
		return p >= m.BaseWatts && !math.IsNaN(p) && !math.IsInf(p, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergy(t *testing.T) {
	m := Default()
	a := activity(2, 0.5, 1, 0.1)
	a.TimeSec = 3
	if got, want := m.Energy(a), m.Power(a)*3; got != want {
		t.Errorf("Energy = %g, want %g", got, want)
	}
}

func TestAccumulator(t *testing.T) {
	var acc Accumulator
	if acc.AvgPower() != 0 {
		t.Error("empty accumulator has non-zero average power")
	}
	acc.Add(2, 100)
	acc.Add(3, 150)
	if acc.TimeSec != 5 {
		t.Errorf("TimeSec = %g", acc.TimeSec)
	}
	if acc.EnergyJ != 2*100+3*150 {
		t.Errorf("EnergyJ = %g", acc.EnergyJ)
	}
	wantAvg := (200.0 + 450.0) / 5
	if math.Abs(acc.AvgPower()-wantAvg) > 1e-12 {
		t.Errorf("AvgPower = %g, want %g", acc.AvgPower(), wantAvg)
	}
	if got, want := acc.ED2(), acc.EnergyJ*25; math.Abs(got-want) > 1e-9 {
		t.Errorf("ED2 = %g, want %g", got, want)
	}
}

func TestMeter(t *testing.T) {
	m := Default()
	a := activity(2, 0.5, 1, 0.1)
	exact := NewMeter(m, nil, 0.05)
	if exact.Read(a) != m.Power(a) {
		t.Error("nil-source meter not exact")
	}
	noisy := NewMeter(m, noise.New(1), 0.05)
	r1 := noisy.Read(a)
	r2 := noisy.Read(a)
	if r1 == r2 {
		t.Error("noisy meter produced identical reads")
	}
	again := NewMeter(m, noise.New(1), 0.05)
	if again.Read(a) != r1 {
		t.Error("meter noise not reproducible by seed")
	}
}
