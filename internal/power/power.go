// Package power models full-system power and energy, substituting for the
// paper's Watts Up Pro wall meter. Reported power covers CPU, memory,
// chipset and power supply — "a full system power profile" — so the model
// has a large base term plus activity-proportional core, cache and bus/DRAM
// terms.
//
// The calibration targets are the paper's quoted facts: total system power
// at four cores ≈ 14% above one core on average; the best-scaling code (BT)
// near ×1.31; bandwidth-bound codes nearly flat because stalled cores burn
// little dynamic power while the bus/DRAM term is already saturated.
package power

import (
	"math"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
)

// Model holds the coefficients of the full-system power model.
type Model struct {
	// BaseWatts is the constant floor: PSU losses, fans, disks, chipset
	// and all cores in idle state.
	BaseWatts float64
	// StaticPerCoreWatts is the extra leakage/clock power of a core that
	// is running a thread at all (vs deep idle).
	StaticPerCoreWatts float64
	// DynPerCoreWatts scales with core utilisation and relative IPC: the
	// switching power of a fully busy, high-ILP core.
	DynPerCoreWatts float64
	// L2Watts is the maximum additional power of a fully-busy shared L2.
	L2Watts float64
	// L2RefRateFull is the L2 access rate (accesses/sec) treated as full
	// L2 busyness.
	L2RefRateFull float64
	// BusWatts is the maximum additional bus+DRAM+chipset I/O power at
	// full FSB utilisation — the off-chip term that erases ACTOR's power
	// savings when migrations refill caches.
	BusWatts float64
}

// Default returns coefficients calibrated for the QX6600 workstation.
func Default() *Model {
	return &Model{
		BaseWatts:          103,
		StaticPerCoreWatts: 2.0,
		DynPerCoreWatts:    28,
		L2Watts:            3,
		L2RefRateFull:      4e8,
		BusWatts:           8,
	}
}

// Power returns the modelled full-system power in watts for an activity
// interval.
func (m *Model) Power(a machine.Activity) float64 {
	p := m.BaseWatts
	ipcRel := 0.0
	if a.PeakIPC > 0 {
		ipcRel = a.AvgCoreIPC / a.PeakIPC
	}
	if ipcRel > 1 {
		ipcRel = 1
	}
	// DVFS: dynamic power scales ≈ f·V² with V ≈ f (cubic); leakage
	// scales with voltage (linear in f to first order). FreqScale zero
	// means nominal.
	fs := a.FreqScale
	if fs <= 0 {
		fs = 1
	}
	perCore := m.StaticPerCoreWatts*fs + m.DynPerCoreWatts*fs*fs*fs*a.AvgCoreUtil*(0.3+0.7*ipcRel)
	p += float64(a.ActiveCores) * perCore

	l2Busy := 0.0
	if m.L2RefRateFull > 0 {
		l2Busy = math.Min(a.L2AccessesPerSec/m.L2RefRateFull, 1)
	}
	p += m.L2Watts * l2Busy
	p += m.BusWatts * a.BusUtilization
	return p
}

// Energy returns power × time for the interval, in joules.
func (m *Model) Energy(a machine.Activity) float64 {
	return m.Power(a) * a.TimeSec
}

// Meter wraps a Model with measurement noise, mimicking a physical wall
// meter's sampling error.
type Meter struct {
	Model *Model
	src   *noise.Source
	sigma float64
}

// NewMeter returns a meter over the model with relative read noise sigma.
// A nil source yields exact readings.
func NewMeter(m *Model, src *noise.Source, sigma float64) *Meter {
	return &Meter{Model: m, src: src, sigma: sigma}
}

// Read returns a (possibly noisy) power reading for the activity.
func (mt *Meter) Read(a machine.Activity) float64 {
	p := mt.Model.Power(a)
	if mt.src != nil {
		p *= mt.src.Multiplicative(mt.sigma)
	}
	return p
}

// Accumulator integrates energy and time over a run, producing the metrics
// the paper reports: time, average power, energy and ED².
type Accumulator struct {
	TimeSec float64
	EnergyJ float64
}

// Add integrates one interval at the given power.
func (ac *Accumulator) Add(timeSec, watts float64) {
	ac.TimeSec += timeSec
	ac.EnergyJ += watts * timeSec
}

// AvgPower returns energy/time, or 0 for an empty accumulator.
func (ac *Accumulator) AvgPower() float64 {
	if ac.TimeSec <= 0 {
		return 0
	}
	return ac.EnergyJ / ac.TimeSec
}

// ED2 returns the energy-delay-squared product E·T², the power-aware HPC
// metric the paper emphasises.
func (ac *Accumulator) ED2() float64 {
	return ac.EnergyJ * ac.TimeSec * ac.TimeSec
}
