package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", "1.0")
	tbl.AddRow("bee", "2.25")
	out := tbl.String()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.25") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line has the header's separator position.
	hdr := lines[1]
	if !strings.HasPrefix(hdr, "  name") {
		t.Errorf("header misaligned: %q", hdr)
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only")
	out := tbl.String()
	if !strings.Contains(out, "only") {
		t.Error("row lost")
	}
}

func TestAddRowf(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRowf("x", 1.23456, 7)
	out := tbl.String()
	if !strings.Contains(out, "1.235") {
		t.Errorf("float not formatted to 3 places:\n%s", out)
	}
	if !strings.Contains(out, "7") {
		t.Error("int cell missing")
	}
}

func TestSectionAndKV(t *testing.T) {
	var b strings.Builder
	Section(&b, "Results")
	KV(&b, "median error", "%.1f%%", 9.1)
	out := b.String()
	if !strings.Contains(out, "=== Results ===") {
		t.Error("section header missing")
	}
	if !strings.Contains(out, "median error:") || !strings.Contains(out, "9.1%") {
		t.Errorf("KV line malformed:\n%s", out)
	}
}
