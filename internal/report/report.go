// Package report renders the experiment harness output: fixed-width ASCII
// tables and simple series listings matching the rows and columns of the
// paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which uses %.3f.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Section writes a titled separator for multi-part harness output.
func Section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", title)
}

// KV writes an aligned key/value line, used for headline scalars such as
// "median prediction error".
func KV(w io.Writer, key string, format string, args ...interface{}) {
	fmt.Fprintf(w, "  %-44s %s\n", key+":", fmt.Sprintf(format, args...))
}
