// Package topology models processor topologies — cores, shared-cache groups
// and the threading configurations (thread count × placement) that the ACTOR
// runtime chooses among.
//
// The reference machine is the Intel Xeon QX6600 used in the paper: four
// cores arranged as two dual-core dies on one package, each die pair sharing
// a 4 MB L2 cache, connected to memory over a 1066 MHz front-side bus. The
// package also supports synthesising larger hypothetical machines (see
// Manycore) for the paper's "future many-core" discussion.
package topology

import (
	"fmt"
	"sort"
)

// CoreID identifies a physical core on the machine, numbered from zero.
type CoreID int

// Topology describes the cores of a machine and how they share caches.
type Topology struct {
	// Name is a human-readable machine name, e.g. "Intel Xeon QX6600".
	Name string
	// NumCores is the total number of physical cores.
	NumCores int
	// L2Groups partitions the cores into groups that share a last-level
	// cache. Every core appears in exactly one group.
	L2Groups [][]CoreID
	// L2BytesPerGroup is the capacity of each shared L2 cache in bytes.
	L2BytesPerGroup int64
	// L1BytesPerCore is the capacity of each private L1 data cache in bytes.
	L1BytesPerCore int64
	// FrequencyHz is the core clock frequency.
	FrequencyHz float64
	// BusBandwidth is the front-side bus bandwidth in bytes per second.
	BusBandwidth float64
}

// QuadCoreXeon returns the topology of the paper's experimental platform:
// an Intel Xeon QX6600 with two tightly coupled core pairs, 4 MB of L2 per
// pair, 32 KB L1D per core, a 2.4 GHz clock, and a 1066 MT/s front-side bus
// (8.5 GB/s peak).
func QuadCoreXeon() *Topology {
	return &Topology{
		Name:            "Intel Xeon QX6600 (quad-core)",
		NumCores:        4,
		L2Groups:        [][]CoreID{{0, 1}, {2, 3}},
		L2BytesPerGroup: 4 << 20,
		L1BytesPerCore:  32 << 10,
		FrequencyHz:     2.4e9,
		BusBandwidth:    8.5e9,
	}
}

// Manycore synthesises a hypothetical future machine with the given number
// of cores grouped into shared-L2 pairs of the given size. Per-core cache
// capacity shrinks relative to QX6600 to reflect the reduced
// compute-to-cache ratio the paper predicts for many-core parts.
func Manycore(cores, groupSize int) *Topology {
	if cores <= 0 {
		panic("topology: Manycore needs at least one core")
	}
	if groupSize <= 0 || cores%groupSize != 0 {
		panic(fmt.Sprintf("topology: %d cores not divisible into groups of %d", cores, groupSize))
	}
	groups := make([][]CoreID, 0, cores/groupSize)
	for g := 0; g < cores/groupSize; g++ {
		grp := make([]CoreID, groupSize)
		for i := range grp {
			grp[i] = CoreID(g*groupSize + i)
		}
		groups = append(groups, grp)
	}
	return &Topology{
		Name:            fmt.Sprintf("synthetic %d-core (L2 shared by %d)", cores, groupSize),
		NumCores:        cores,
		L2Groups:        groups,
		L2BytesPerGroup: int64(groupSize) * (1 << 20), // 1 MB per core: reduced ratio
		L1BytesPerCore:  32 << 10,
		FrequencyHz:     2.4e9,
		// Bandwidth grows sublinearly with core count: the wall the
		// paper warns about.
		BusBandwidth: 8.5e9 * (1 + 0.25*float64(cores-4)/4),
	}
}

// Validate checks internal consistency: every core in exactly one L2 group,
// positive capacities and clock.
func (t *Topology) Validate() error {
	if t.NumCores <= 0 {
		return fmt.Errorf("topology %q: NumCores = %d", t.Name, t.NumCores)
	}
	seen := make(map[CoreID]bool, t.NumCores)
	for _, g := range t.L2Groups {
		if len(g) == 0 {
			return fmt.Errorf("topology %q: empty L2 group", t.Name)
		}
		for _, c := range g {
			if c < 0 || int(c) >= t.NumCores {
				return fmt.Errorf("topology %q: core %d out of range", t.Name, c)
			}
			if seen[c] {
				return fmt.Errorf("topology %q: core %d in two L2 groups", t.Name, c)
			}
			seen[c] = true
		}
	}
	if len(seen) != t.NumCores {
		return fmt.Errorf("topology %q: %d of %d cores assigned to L2 groups", t.Name, len(seen), t.NumCores)
	}
	if t.L2BytesPerGroup <= 0 || t.L1BytesPerCore <= 0 {
		return fmt.Errorf("topology %q: non-positive cache capacity", t.Name)
	}
	if t.FrequencyHz <= 0 || t.BusBandwidth <= 0 {
		return fmt.Errorf("topology %q: non-positive frequency or bandwidth", t.Name)
	}
	return nil
}

// GroupOf returns the index of the L2 group containing core c, or -1 when
// the core is unknown.
func (t *Topology) GroupOf(c CoreID) int {
	for gi, g := range t.L2Groups {
		for _, cc := range g {
			if cc == c {
				return gi
			}
		}
	}
	return -1
}

// Placement is a binding of threads to cores: one thread per listed core.
// Placements are the units the runtime chooses among; the paper's
// configurations 1, 2a, 2b, 3 and 4 are placements on the quad-core Xeon.
type Placement struct {
	// Name is the configuration label used throughout the paper,
	// e.g. "2b" for two threads on loosely coupled cores.
	Name string
	// Cores lists the cores hosting threads, in thread order.
	Cores []CoreID
}

// Threads returns the number of threads the placement runs.
func (p Placement) Threads() int { return len(p.Cores) }

// String returns the placement in "name[c0 c1 ...]" form.
func (p Placement) String() string {
	return fmt.Sprintf("%s%v", p.Name, p.Cores)
}

// coOccupancy returns, for each L2 group, how many of the placement's
// threads live in that group.
func (p Placement) coOccupancy(t *Topology) []int {
	occ := make([]int, len(t.L2Groups))
	for _, c := range p.Cores {
		gi := t.GroupOf(c)
		if gi >= 0 {
			occ[gi]++
		}
	}
	return occ
}

// GroupLoad reports how many threads of the placement share the L2 group of
// core c (including the thread on c itself).
func (p Placement) GroupLoad(t *Topology, c CoreID) int {
	gi := t.GroupOf(c)
	if gi < 0 {
		return 0
	}
	return p.coOccupancy(t)[gi]
}

// PaperConfigs returns the five configurations evaluated in the paper on the
// quad-core Xeon, in canonical order: 1, 2a, 2b, 3, 4.
//
//	1  — one thread on core 0
//	2a — two threads on tightly coupled cores (same L2): cores 0,1
//	2b — two threads on loosely coupled cores (different L2s): cores 0,2
//	3  — three threads: cores 0,1,2 (one full pair plus a solo core)
//	4  — four threads on all cores
func PaperConfigs() []Placement {
	return []Placement{
		{Name: "1", Cores: []CoreID{0}},
		{Name: "2a", Cores: []CoreID{0, 1}},
		{Name: "2b", Cores: []CoreID{0, 2}},
		{Name: "3", Cores: []CoreID{0, 1, 2}},
		{Name: "4", Cores: []CoreID{0, 1, 2, 3}},
	}
}

// ConfigByName returns the paper configuration with the given name.
func ConfigByName(name string) (Placement, bool) {
	for _, p := range PaperConfigs() {
		if p.Name == name {
			return p, true
		}
	}
	return Placement{}, false
}

// EnumeratePlacements generates one canonical placement for every distinct
// (thread count, per-group occupancy multiset) combination on topology t.
// Two placements that put the same number of threads into L2 groups in the
// same multiset pattern are performance-equivalent under the machine model,
// so only one representative is produced. This generalises the paper's
// {1, 2a, 2b, 3, 4} to arbitrary machines.
//
// The result is materialised; sweeps that only need one pass should use
// EnumeratePlacementsFunc, which streams the same placements in the same
// order without building the slice.
func EnumeratePlacements(t *Topology) []Placement {
	var out []Placement
	EnumeratePlacementsFunc(t, func(p Placement) bool {
		out = append(out, p)
		return true
	})
	return out
}

// EnumeratePlacementsFunc streams the canonical placements of topology t to
// yield, in the same order EnumeratePlacements returns them (ascending
// thread count, canonical occupancy order within a count). Enumeration
// stops early when yield returns false. Each yielded Placement owns its
// Cores slice, so callers may retain it.
func EnumeratePlacementsFunc(t *Topology, yield func(Placement) bool) {
	seen := make(map[string]bool)
	groupSizes := make([]int, len(t.L2Groups))
	for i, g := range t.L2Groups {
		groupSizes[i] = len(g)
	}
	for n := 1; n <= t.NumCores; n++ {
		patterns := occupancyPatterns(groupSizes, n)
		for _, occ := range patterns {
			key := occKey(occ)
			if seen[key] {
				continue
			}
			seen[key] = true
			cores := coresForOccupancy(t, occ)
			name := fmt.Sprintf("%d", n)
			if len(patterns) > 1 {
				name = fmt.Sprintf("%d:%s", n, key)
			}
			if !yield(Placement{Name: name, Cores: cores}) {
				return
			}
		}
	}
}

// occupancyPatterns enumerates the distinct non-increasing occupancy
// multisets of n threads over groups with the given capacities.
func occupancyPatterns(groupSizes []int, n int) [][]int {
	var out [][]int
	var rec func(rem, maxPer int, acc []int)
	rec = func(rem, maxPer int, acc []int) {
		if rem == 0 {
			occ := make([]int, len(acc))
			copy(occ, acc)
			out = append(out, occ)
			return
		}
		if len(acc) == len(groupSizes) {
			return
		}
		cap := groupSizes[len(acc)]
		if cap > maxPer {
			cap = maxPer
		}
		if cap > rem {
			cap = rem
		}
		for take := cap; take >= 1; take-- {
			rec(rem-take, take, append(acc, take))
		}
		// Also allow skipping remaining groups only via take loop; a zero
		// in the middle of a non-increasing sequence forces all later
		// zeros, which is equivalent to stopping, so only allow zero when
		// nothing remains (handled by rem==0 base case).
	}
	// Assume homogeneous group sizes (true for all built-in topologies);
	// sort capacities descending for canonical patterns.
	sizes := append([]int(nil), groupSizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	rec(n, sizes[0], nil)
	return out
}

func occKey(occ []int) string {
	s := ""
	for i, o := range occ {
		if i > 0 {
			s += "+"
		}
		s += fmt.Sprintf("%d", o)
	}
	return s
}

// coresForOccupancy materialises a concrete core list realising the
// occupancy pattern occ on topology t: occ[i] threads in the i-th group.
func coresForOccupancy(t *Topology, occ []int) []CoreID {
	var cores []CoreID
	for gi, k := range occ {
		if gi >= len(t.L2Groups) {
			break
		}
		g := t.L2Groups[gi]
		for i := 0; i < k && i < len(g); i++ {
			cores = append(cores, g[i])
		}
	}
	return cores
}
