// Package topology models processor topologies — cores, shared-cache groups,
// per-core classes (big/little, SMT siblings) and the threading
// configurations (thread count × placement) that the ACTOR runtime chooses
// among.
//
// The reference machine is the Intel Xeon QX6600 used in the paper: four
// cores arranged as two dual-core dies on one package, each die pair sharing
// a 4 MB L2 cache, connected to memory over a 1066 MHz front-side bus. The
// package also synthesises hypothetical machines: homogeneous many-cores
// (Manycore), and arbitrary heterogeneous descriptors built with NewBuilder
// or parsed from a compact descriptor string (ParseDesc) — see builder.go
// for the grammar.
package topology

import (
	"fmt"
)

// CoreID identifies a physical core on the machine, numbered from zero.
type CoreID int

// CoreClass describes a class of cores on a heterogeneous machine. The zero
// of heterogeneity is DefaultClass (nominal clock, unit CPI, one hardware
// thread); every topology without explicit classes behaves as if all cores
// were DefaultClass.
type CoreClass struct {
	// Name labels the class, e.g. "big" or "little". Names are unique
	// within a topology and feed placement naming and memo keys.
	Name string
	// FreqMult scales the core clock relative to Topology.FrequencyHz
	// (little cores run slower: 0 < FreqMult ≤ 1 typically).
	FreqMult float64
	// CPIMult scales the core-inherent CPI (narrower issue, shallower
	// pipelines: CPIMult ≥ 1 typically). SMT issue sharing is folded in
	// here: a class with SMTWidth > 1 should carry the per-sibling
	// contention in its CPIMult.
	CPIMult float64
	// SMTWidth is the number of hardware threads the builder materialises
	// per declared core of this class. Siblings appear as distinct CoreIDs
	// in the same L2 group, so placements and enumeration treat them like
	// ordinary cores.
	SMTWidth int
}

// DefaultClass is the implicit class of every core on a homogeneous
// topology: nominal clock, unit CPI, no SMT.
func DefaultClass() CoreClass {
	return CoreClass{Name: "big", FreqMult: 1, CPIMult: 1, SMTWidth: 1}
}

// LittleClass is a representative efficiency-core class: 60% clock, 30%
// more cycles per instruction. Used by the builder when a group references
// "little" without defining it.
func LittleClass() CoreClass {
	return CoreClass{Name: "little", FreqMult: 0.6, CPIMult: 1.3, SMTWidth: 1}
}

// Topology describes the cores of a machine and how they share caches.
type Topology struct {
	// Name is a human-readable machine name, e.g. "Intel Xeon QX6600".
	Name string
	// NumCores is the total number of physical cores.
	NumCores int
	// L2Groups partitions the cores into groups that share a last-level
	// cache. Every core appears in exactly one group. Groups may have
	// different sizes (asymmetric machines).
	L2Groups [][]CoreID
	// L2BytesPerGroup is the capacity of each shared L2 cache in bytes.
	L2BytesPerGroup int64
	// L1BytesPerCore is the capacity of each private L1 data cache in bytes.
	L1BytesPerCore int64
	// FrequencyHz is the nominal core clock frequency; per-class FreqMult
	// scales it for little cores.
	FrequencyHz float64
	// BusBandwidth is the front-side bus bandwidth in bytes per second.
	BusBandwidth float64
	// Classes is the core-class table of a heterogeneous machine. Empty
	// means every core is DefaultClass (all pre-existing topologies).
	Classes []CoreClass
	// CoreClasses maps CoreID → index into Classes. Nil means every core
	// has class 0 (or DefaultClass when Classes is empty too).
	CoreClasses []int
}

// Heterogeneous reports whether any core deviates from DefaultClass.
func (t *Topology) Heterogeneous() bool {
	def := DefaultClass()
	for _, c := range t.Classes {
		if c.FreqMult != def.FreqMult || c.CPIMult != def.CPIMult {
			return true
		}
	}
	return false
}

// ClassIndexOf returns the class-table index of core c (0 for cores on
// homogeneous topologies or outside the class map).
func (t *Topology) ClassIndexOf(c CoreID) int {
	if t.CoreClasses == nil || c < 0 || int(c) >= len(t.CoreClasses) {
		return 0
	}
	return t.CoreClasses[c]
}

// ClassOf returns the class descriptor of core c, falling back to
// DefaultClass on homogeneous topologies.
func (t *Topology) ClassOf(c CoreID) CoreClass {
	if len(t.Classes) == 0 {
		return DefaultClass()
	}
	return t.Classes[t.ClassIndexOf(c)]
}

// QuadCoreXeon returns the topology of the paper's experimental platform:
// an Intel Xeon QX6600 with two tightly coupled core pairs, 4 MB of L2 per
// pair, 32 KB L1D per core, a 2.4 GHz clock, and a 1066 MT/s front-side bus
// (8.5 GB/s peak).
func QuadCoreXeon() *Topology {
	return &Topology{
		Name:            "Intel Xeon QX6600 (quad-core)",
		NumCores:        4,
		L2Groups:        [][]CoreID{{0, 1}, {2, 3}},
		L2BytesPerGroup: 4 << 20,
		L1BytesPerCore:  32 << 10,
		FrequencyHz:     2.4e9,
		BusBandwidth:    8.5e9,
	}
}

// Manycore synthesises a hypothetical future machine with the given number
// of cores grouped into shared-L2 pairs of the given size. Per-core cache
// capacity shrinks relative to QX6600 to reflect the reduced
// compute-to-cache ratio the paper predicts for many-core parts.
func Manycore(cores, groupSize int) *Topology {
	if cores <= 0 {
		panic("topology: Manycore needs at least one core")
	}
	if groupSize <= 0 || cores%groupSize != 0 {
		panic(fmt.Sprintf("topology: %d cores not divisible into groups of %d", cores, groupSize))
	}
	groups := make([][]CoreID, 0, cores/groupSize)
	for g := 0; g < cores/groupSize; g++ {
		grp := make([]CoreID, groupSize)
		for i := range grp {
			grp[i] = CoreID(g*groupSize + i)
		}
		groups = append(groups, grp)
	}
	return &Topology{
		Name:            fmt.Sprintf("synthetic %d-core (L2 shared by %d)", cores, groupSize),
		NumCores:        cores,
		L2Groups:        groups,
		L2BytesPerGroup: int64(groupSize) * (1 << 20), // 1 MB per core: reduced ratio
		L1BytesPerCore:  32 << 10,
		FrequencyHz:     2.4e9,
		// Bandwidth grows sublinearly with core count: the wall the
		// paper warns about.
		BusBandwidth: 8.5e9 * (1 + 0.25*float64(cores-4)/4),
	}
}

// Validate checks internal consistency: every core in exactly one L2 group,
// positive capacities and clock.
func (t *Topology) Validate() error {
	if t.NumCores <= 0 {
		return fmt.Errorf("topology %q: NumCores = %d", t.Name, t.NumCores)
	}
	seen := make(map[CoreID]bool, t.NumCores)
	for _, g := range t.L2Groups {
		if len(g) == 0 {
			return fmt.Errorf("topology %q: empty L2 group", t.Name)
		}
		for _, c := range g {
			if c < 0 || int(c) >= t.NumCores {
				return fmt.Errorf("topology %q: core %d out of range", t.Name, c)
			}
			if seen[c] {
				return fmt.Errorf("topology %q: core %d in two L2 groups", t.Name, c)
			}
			seen[c] = true
		}
	}
	if len(seen) != t.NumCores {
		return fmt.Errorf("topology %q: %d of %d cores assigned to L2 groups", t.Name, len(seen), t.NumCores)
	}
	if t.L2BytesPerGroup <= 0 || t.L1BytesPerCore <= 0 {
		return fmt.Errorf("topology %q: non-positive cache capacity", t.Name)
	}
	if t.FrequencyHz <= 0 || t.BusBandwidth <= 0 {
		return fmt.Errorf("topology %q: non-positive frequency or bandwidth", t.Name)
	}
	if err := t.validateClasses(); err != nil {
		return err
	}
	return nil
}

// validateClasses checks the class table and per-core class map of a
// heterogeneous topology. Homogeneous topologies (no Classes, no
// CoreClasses) are trivially valid.
func (t *Topology) validateClasses() error {
	if len(t.Classes) == 0 {
		if len(t.CoreClasses) != 0 {
			return fmt.Errorf("topology %q: CoreClasses set without a Classes table", t.Name)
		}
		return nil
	}
	names := make(map[string]bool, len(t.Classes))
	for i, c := range t.Classes {
		if c.Name == "" {
			return fmt.Errorf("topology %q: class %d has no name", t.Name, i)
		}
		if names[c.Name] {
			return fmt.Errorf("topology %q: duplicate class name %q", t.Name, c.Name)
		}
		names[c.Name] = true
		if c.FreqMult <= 0 {
			return fmt.Errorf("topology %q: class %q FreqMult = %g", t.Name, c.Name, c.FreqMult)
		}
		if c.CPIMult <= 0 {
			return fmt.Errorf("topology %q: class %q CPIMult = %g", t.Name, c.Name, c.CPIMult)
		}
		if c.SMTWidth < 1 {
			return fmt.Errorf("topology %q: class %q SMTWidth = %d", t.Name, c.Name, c.SMTWidth)
		}
	}
	if len(t.CoreClasses) != t.NumCores {
		return fmt.Errorf("topology %q: %d core-class entries for %d cores", t.Name, len(t.CoreClasses), t.NumCores)
	}
	for c, ci := range t.CoreClasses {
		if ci < 0 || ci >= len(t.Classes) {
			return fmt.Errorf("topology %q: core %d references unknown class %d", t.Name, c, ci)
		}
	}
	return nil
}

// ValidatePlacement checks that pl is executable on t: at least one thread,
// no repeated cores, and every core present in an L2 group of the topology.
// The error is descriptive — callers surface it when a configuration meant
// for one machine (e.g. the quad-core paper configs) is applied to another.
// It allocates nothing on the happy path: Env.Validate re-checks the
// configuration space on every strategy run.
func (t *Topology) ValidatePlacement(pl Placement) error {
	if len(pl.Cores) == 0 {
		return fmt.Errorf("placement %q: no cores", pl.Name)
	}
	for i, c := range pl.Cores {
		if c < 0 || int(c) >= t.NumCores {
			return fmt.Errorf("placement %q: core %d out of range on %q (%d cores)",
				pl.Name, c, t.Name, t.NumCores)
		}
		for _, prev := range pl.Cores[:i] {
			if prev == c {
				return fmt.Errorf("placement %q: core %d listed twice", pl.Name, c)
			}
		}
		if t.GroupOf(c) < 0 {
			return fmt.Errorf("placement %q: core %d is in no L2 group of %q", pl.Name, c, t.Name)
		}
	}
	return nil
}

// GroupOf returns the index of the L2 group containing core c, or -1 when
// the core is unknown.
func (t *Topology) GroupOf(c CoreID) int {
	for gi, g := range t.L2Groups {
		for _, cc := range g {
			if cc == c {
				return gi
			}
		}
	}
	return -1
}

// Placement is a binding of threads to cores: one thread per listed core.
// Placements are the units the runtime chooses among; the paper's
// configurations 1, 2a, 2b, 3 and 4 are placements on the quad-core Xeon.
type Placement struct {
	// Name is the configuration label used throughout the paper,
	// e.g. "2b" for two threads on loosely coupled cores.
	Name string
	// Cores lists the cores hosting threads, in thread order.
	Cores []CoreID
}

// Threads returns the number of threads the placement runs.
func (p Placement) Threads() int { return len(p.Cores) }

// String returns the placement in "name[c0 c1 ...]" form.
func (p Placement) String() string {
	return fmt.Sprintf("%s%v", p.Name, p.Cores)
}

// coOccupancy returns, for each L2 group, how many of the placement's
// threads live in that group.
func (p Placement) coOccupancy(t *Topology) []int {
	occ := make([]int, len(t.L2Groups))
	for _, c := range p.Cores {
		gi := t.GroupOf(c)
		if gi >= 0 {
			occ[gi]++
		}
	}
	return occ
}

// GroupLoad reports how many threads of the placement share the L2 group of
// core c (including the thread on c itself).
func (p Placement) GroupLoad(t *Topology, c CoreID) int {
	gi := t.GroupOf(c)
	if gi < 0 {
		return 0
	}
	return p.coOccupancy(t)[gi]
}

// PaperConfigs returns the five configurations evaluated in the paper on the
// quad-core Xeon, in canonical order: 1, 2a, 2b, 3, 4.
//
//	1  — one thread on core 0
//	2a — two threads on tightly coupled cores (same L2): cores 0,1
//	2b — two threads on loosely coupled cores (different L2s): cores 0,2
//	3  — three threads: cores 0,1,2 (one full pair plus a solo core)
//	4  — four threads on all cores
func PaperConfigs() []Placement {
	return []Placement{
		{Name: "1", Cores: []CoreID{0}},
		{Name: "2a", Cores: []CoreID{0, 1}},
		{Name: "2b", Cores: []CoreID{0, 2}},
		{Name: "3", Cores: []CoreID{0, 1, 2}},
		{Name: "4", Cores: []CoreID{0, 1, 2, 3}},
	}
}

// ConfigByName returns the paper configuration with the given name.
func ConfigByName(name string) (Placement, bool) {
	for _, p := range PaperConfigs() {
		if p.Name == name {
			return p, true
		}
	}
	return Placement{}, false
}

// PaperConfigsOn returns the paper's five configurations validated against
// an arbitrary topology. It fails with a descriptive error when t cannot
// host them (fewer than four cores) instead of silently assuming the
// quad-core Xeon.
func PaperConfigsOn(t *Topology) ([]Placement, error) {
	cfgs := PaperConfigs()
	for _, cfg := range cfgs {
		if err := t.ValidatePlacement(cfg); err != nil {
			return nil, fmt.Errorf("paper config %q does not fit topology %q: %w", cfg.Name, t.Name, err)
		}
	}
	return cfgs, nil
}

// ConfigByNameOn returns the named paper configuration validated against t,
// with a descriptive error for unknown names or out-of-range cores.
func ConfigByNameOn(t *Topology, name string) (Placement, error) {
	pl, ok := ConfigByName(name)
	if !ok {
		return Placement{}, fmt.Errorf("unknown paper config %q (have 1, 2a, 2b, 3, 4)", name)
	}
	if err := t.ValidatePlacement(pl); err != nil {
		return Placement{}, fmt.Errorf("paper config %q does not fit topology %q: %w", name, t.Name, err)
	}
	return pl, nil
}
