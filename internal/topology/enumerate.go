package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file enumerates the canonical placements of a topology.
//
// Two placements are performance-equivalent under the machine model exactly
// when they put the same number of threads into *interchangeable* L2 groups
// in the same multiset pattern. On a homogeneous machine every group is
// interchangeable with every other; on a heterogeneous machine only groups
// of the same shape — same size and same per-core class sequence — are.
// Enumeration therefore partitions the groups into shape families and
// canonicalizes occupancy multisets within a family only, so asymmetric
// topologies enumerate correctly: one thread on a big group and one thread
// on a little group are distinct configurations.
//
// Within a group, threads occupy the group's cores in listed order (prefix
// occupancy). For groups whose cores all share one class — everything the
// builder produces — this is exhaustive over distinct configurations; for
// hand-built groups mixing classes it is a documented canonical choice.

// groupFamily is a maximal set of interchangeable L2 groups: same size and
// same per-core class sequence, in ascending topology group order.
type groupFamily struct {
	size   int   // cores per group
	groups []int // topology group indices, ascending
}

// capacity returns the total cores the family can host.
func (f *groupFamily) capacity() int { return f.size * len(f.groups) }

// groupFamilies partitions t's L2 groups into shape families in
// first-appearance order. A homogeneous topology yields a single family.
func (t *Topology) groupFamilies() []groupFamily {
	var fams []groupFamily
	byShape := make(map[string]int)
	var key strings.Builder
	for gi, g := range t.L2Groups {
		key.Reset()
		key.WriteString(strconv.Itoa(len(g)))
		for _, c := range g {
			key.WriteByte('/')
			key.WriteString(strconv.Itoa(t.ClassIndexOf(c)))
		}
		k := key.String()
		fi, ok := byShape[k]
		if !ok {
			fi = len(fams)
			byShape[k] = fi
			fams = append(fams, groupFamily{size: len(g)})
		}
		fams[fi].groups = append(fams[fi].groups, gi)
	}
	return fams
}

// famPattern is one canonical occupancy pattern: per family, a
// non-increasing partition of that family's thread share (nil for an empty
// family). Parts are assigned to the family's groups in ascending topology
// group order.
type famPattern [][]int

// partitions enumerates the partitions of n into at most maxParts parts of
// size at most maxPart, non-increasing, largest-first-part order — the same
// order the original homogeneous enumeration produced.
func partitions(n, maxPart, maxParts int) [][]int {
	var out [][]int
	var rec func(rem, maxPer, left int, acc []int)
	rec = func(rem, maxPer, left int, acc []int) {
		if rem == 0 {
			occ := make([]int, len(acc))
			copy(occ, acc)
			out = append(out, occ)
			return
		}
		if left == 0 {
			return
		}
		take := maxPer
		if take > rem {
			take = rem
		}
		for ; take >= 1; take-- {
			rec(rem-take, take, left-1, append(acc, take))
		}
	}
	rec(n, maxPart, maxParts, nil)
	return out
}

// familyPatterns enumerates every distinct famPattern placing n threads on
// the families: all ways of splitting n across families (family-0-heavy
// first) combined with each family's canonical partitions.
func familyPatterns(fams []groupFamily, n int) []famPattern {
	// Suffix capacities bound how much later families can absorb.
	suffixCap := make([]int, len(fams)+1)
	for i := len(fams) - 1; i >= 0; i-- {
		suffixCap[i] = suffixCap[i+1] + fams[i].capacity()
	}
	var out []famPattern
	cur := make(famPattern, len(fams))
	var rec func(fi, rem int)
	rec = func(fi, rem int) {
		if fi == len(fams) {
			out = append(out, append(famPattern(nil), cur...))
			return
		}
		f := &fams[fi]
		hi := f.capacity()
		if hi > rem {
			hi = rem
		}
		lo := rem - suffixCap[fi+1]
		if lo < 0 {
			lo = 0
		}
		for take := hi; take >= lo; take-- {
			if take == 0 {
				cur[fi] = nil
				rec(fi+1, rem)
				continue
			}
			for _, part := range partitions(take, f.size, len(f.groups)) {
				cur[fi] = part
				rec(fi+1, rem-take)
			}
		}
	}
	rec(0, n)
	return out
}

// patternName renders the human-readable suffix of a pattern: per-family
// partitions joined "+" within a family and "|" across families (empty
// families render empty, so "2+1|" and "2|1" stay distinct). Single-family
// topologies render exactly the historical "2+1" form.
func patternName(fp famPattern) string {
	var b strings.Builder
	for fi, part := range fp {
		if fi > 0 {
			b.WriteByte('|')
		}
		for i, o := range part {
			if i > 0 {
				b.WriteByte('+')
			}
			b.WriteString(strconv.Itoa(o))
		}
	}
	return b.String()
}

// patternCores materialises the core list of a pattern: each family's parts
// claim the leading cores of its groups in ascending group order, and the
// final list is emitted in global topology group order.
func patternCores(t *Topology, fams []groupFamily, fp famPattern) []CoreID {
	occ := make([]int, len(t.L2Groups))
	n := 0
	for fi, part := range fp {
		for pi, k := range part {
			occ[fams[fi].groups[pi]] = k
			n += k
		}
	}
	cores := make([]CoreID, 0, n)
	for gi, g := range t.L2Groups {
		for i := 0; i < occ[gi]; i++ {
			cores = append(cores, g[i])
		}
	}
	return cores
}

// EnumeratePlacements generates one canonical placement for every distinct
// (thread count, per-family occupancy multiset) combination on topology t.
// This generalises the paper's {1, 2a, 2b, 3, 4} to arbitrary machines,
// including heterogeneous ones (see the file comment for the equivalence
// classes).
//
// The result is materialised; sweeps that only need one pass should use
// EnumeratePlacementsFunc, which streams the same placements in the same
// order without building the slice.
func EnumeratePlacements(t *Topology) []Placement {
	var out []Placement
	EnumeratePlacementsFunc(t, func(p Placement) bool {
		out = append(out, p)
		return true
	})
	return out
}

// EnumeratePlacementsFunc streams the canonical placements of topology t to
// yield, in the same order EnumeratePlacements returns them (ascending
// thread count, canonical occupancy order within a count). Enumeration
// stops early when yield returns false. Each yielded Placement owns its
// Cores slice, so callers may retain it.
//
// familyPatterns emits each distinct (per-family split × per-family
// partition) combination exactly once, so no dedup pass runs here — the
// per-pattern occupancy-key allocation the old generator paid (it built a
// string key per pattern to guard a generator that could revisit
// patterns) is gone entirely, and the readable key is only rendered for
// placements that need a name suffix.
func EnumeratePlacementsFunc(t *Topology, yield func(Placement) bool) {
	fams := t.groupFamilies()
	for n := 1; n <= t.NumCores; n++ {
		pats := familyPatterns(fams, n)
		for _, fp := range pats {
			name := strconv.Itoa(n)
			if len(pats) > 1 {
				name = name + ":" + patternName(fp)
			}
			if !yield(Placement{Name: name, Cores: patternCores(t, fams, fp)}) {
				return
			}
		}
	}
}

// BalancedPlacements materialises EnumerateBalancedFunc's stream.
func BalancedPlacements(t *Topology) []Placement {
	var out []Placement
	EnumerateBalancedFunc(t, func(p Placement) bool {
		out = append(out, p)
		return true
	})
	return out
}

// EnumerateBalancedFunc streams one placement per distinct per-family
// thread-count vector, spreading each family's threads across its groups as
// evenly as possible (the schedule an OS or OpenMP runtime would actually
// pick). The full multiset enumeration grows combinatorially on large
// heterogeneous machines — a 128-core big/little part has millions of
// distinct occupancy multisets — while the balanced space is
// Π(familyCores+1), a few thousand at 128 cores, which keeps hetero-scaling
// studies tractable without losing the placements that matter.
//
// Order: ascending total thread count, then family-0-heavy first; the last
// placement is always the all-cores configuration (the convention the exp
// drivers normalise against). Names are "n" on single-family topologies and
// "n:t0/t1/..." (per-family counts) otherwise.
func EnumerateBalancedFunc(t *Topology, yield func(Placement) bool) {
	fams := t.groupFamilies()
	type vec struct {
		total  int
		counts []int
	}
	var vecs []vec
	cur := make([]int, len(fams))
	var rec func(fi, total int)
	rec = func(fi, total int) {
		if fi == len(fams) {
			if total > 0 {
				vecs = append(vecs, vec{total, append([]int(nil), cur...)})
			}
			return
		}
		for take := 0; take <= fams[fi].capacity(); take++ {
			cur[fi] = take
			rec(fi+1, total+take)
		}
	}
	rec(0, 0)
	sort.SliceStable(vecs, func(i, j int) bool {
		if vecs[i].total != vecs[j].total {
			return vecs[i].total < vecs[j].total
		}
		for k := range vecs[i].counts {
			if vecs[i].counts[k] != vecs[j].counts[k] {
				return vecs[i].counts[k] > vecs[j].counts[k]
			}
		}
		return false
	})
	for _, v := range vecs {
		fp := make(famPattern, len(fams))
		for fi, tcount := range v.counts {
			fp[fi] = balancedPartition(tcount, &fams[fi])
		}
		name := strconv.Itoa(v.total)
		if len(fams) > 1 {
			parts := make([]string, len(fams))
			for fi, tcount := range v.counts {
				parts[fi] = strconv.Itoa(tcount)
			}
			name = name + ":" + strings.Join(parts, "/")
		}
		if !yield(Placement{Name: name, Cores: patternCores(t, fams, fp)}) {
			return
		}
	}
}

// balancedPartition spreads n threads over the family's groups as evenly as
// possible, non-increasing (r groups of q+1 then the rest of q).
func balancedPartition(n int, f *groupFamily) []int {
	if n == 0 {
		return nil
	}
	if n > f.capacity() {
		panic(fmt.Sprintf("topology: %d threads exceed family capacity %d", n, f.capacity()))
	}
	g := len(f.groups)
	q, r := n/g, n%g
	var part []int
	for i := 0; i < g; i++ {
		k := q
		if i < r {
			k++
		}
		if k == 0 {
			break
		}
		part = append(part, k)
	}
	return part
}
