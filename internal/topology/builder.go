package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Builder assembles heterogeneous topology descriptors group by group:
//
//	topo, err := topology.NewBuilder("M1-ish").
//		Group(4).                                  // 4 big cores, one L2
//		Group(4, topology.Class("little")).        // 4 little cores, one L2
//		Build()
//
// Groups may have different sizes and classes; classes are referenced by
// name (Class) and defined up front with DefineClass, with "big"
// (DefaultClass) and "little" (LittleClass) predefined. A class with
// SMTWidth w materialises w sibling CoreIDs per declared core, all in the
// declaring group. Unset knobs default to QX6600-era values; the bus grows
// sublinearly with core count like Manycore's.
type Builder struct {
	name    string
	freqHz  float64
	busBW   float64
	l2Bytes int64
	l1Bytes int64
	classes []CoreClass
	byName  map[string]int
	groups  []builderGroup
	err     error
}

type builderGroup struct {
	size  int
	class int
}

// GroupOption customises one Group call.
type GroupOption func(*Builder, *builderGroup)

// Class assigns the named class (defined via DefineClass, or the built-in
// "big"/"little") to every core of the group.
func Class(name string) GroupOption {
	return func(b *Builder, g *builderGroup) {
		ci, ok := b.byName[name]
		if !ok {
			b.fail(fmt.Errorf("topology: group references undefined class %q", name))
			return
		}
		g.class = ci
	}
}

// NewBuilder starts a descriptor named name ("" synthesises one at Build).
func NewBuilder(name string) *Builder {
	b := &Builder{name: name, byName: map[string]int{}}
	b.DefineClass(DefaultClass())
	b.DefineClass(LittleClass())
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// DefineClass registers (or redefines, by name) a core class for later
// Group calls to reference. Invalid multipliers fail here, before group
// expansion can act on them (a negative SMT width would otherwise panic
// sizing the group's core slice).
func (b *Builder) DefineClass(c CoreClass) *Builder {
	if c.Name == "" {
		b.fail(fmt.Errorf("topology: class with empty name"))
		return b
	}
	if c.FreqMult <= 0 || c.CPIMult <= 0 {
		b.fail(fmt.Errorf("topology: class %q has non-positive multipliers (freq %g, cpi %g)", c.Name, c.FreqMult, c.CPIMult))
		return b
	}
	if c.SMTWidth < 1 {
		b.fail(fmt.Errorf("topology: class %q SMTWidth = %d, need ≥ 1", c.Name, c.SMTWidth))
		return b
	}
	if ci, ok := b.byName[c.Name]; ok {
		if b.classes[ci] == c {
			return b // identical re-definition (same class in two specs)
		}
		// Changing a definition is only legal while no declared group
		// references the class: groups store a class index, so rewriting
		// the entry would silently retarget cores already declared (and
		// an SMT change would even resize them at Build).
		for _, g := range b.groups {
			if g.class == ci {
				b.fail(fmt.Errorf("topology: class %q redefined after groups referenced it; use a new class name", c.Name))
				return b
			}
		}
		b.classes[ci] = c
		return b
	}
	b.byName[c.Name] = len(b.classes)
	b.classes = append(b.classes, c)
	return b
}

// Group appends one shared-L2 group of size cores (default class unless a
// Class option says otherwise). SMT classes expand each declared core into
// SMTWidth sibling CoreIDs inside the group.
func (b *Builder) Group(size int, opts ...GroupOption) *Builder {
	if size <= 0 {
		b.fail(fmt.Errorf("topology: group of %d cores", size))
		return b
	}
	g := builderGroup{size: size, class: 0}
	for _, opt := range opts {
		opt(b, &g)
	}
	b.groups = append(b.groups, g)
	return b
}

// Groups appends count identical groups in one call.
func (b *Builder) Groups(count, size int, opts ...GroupOption) *Builder {
	if count <= 0 {
		b.fail(fmt.Errorf("topology: %d groups", count))
		return b
	}
	for i := 0; i < count; i++ {
		b.Group(size, opts...)
	}
	return b
}

// Frequency sets the nominal clock in Hz.
func (b *Builder) Frequency(hz float64) *Builder { b.freqHz = hz; return b }

// Bus sets the front-side-bus bandwidth in bytes per second.
func (b *Builder) Bus(bytesPerSec float64) *Builder { b.busBW = bytesPerSec; return b }

// L2 sets the per-group shared-cache capacity in bytes.
func (b *Builder) L2(bytes int64) *Builder { b.l2Bytes = bytes; return b }

// L1 sets the per-core private-cache capacity in bytes.
func (b *Builder) L1(bytes int64) *Builder { b.l1Bytes = bytes; return b }

// Build materialises and validates the topology.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.groups) == 0 {
		return nil, fmt.Errorf("topology: builder has no groups")
	}
	var (
		l2groups   [][]CoreID
		coreClass  []int
		next       CoreID
		usedClass  = make([]bool, len(b.classes))
		maxGrpSize int
	)
	for _, g := range b.groups {
		cls := b.classes[g.class]
		logical := g.size * cls.SMTWidth
		grp := make([]CoreID, logical)
		for i := range grp {
			grp[i] = next
			coreClass = append(coreClass, g.class)
			next++
		}
		l2groups = append(l2groups, grp)
		usedClass[g.class] = true
		if logical > maxGrpSize {
			maxGrpSize = logical
		}
	}
	cores := int(next)

	// Drop the class machinery entirely when every core ended up in the
	// default class: the result is byte-for-byte a homogeneous topology.
	hetero := false
	def := DefaultClass()
	for ci, used := range usedClass {
		if used && b.classes[ci] != def {
			hetero = true
		}
	}
	t := &Topology{
		Name:            b.name,
		NumCores:        cores,
		L2Groups:        l2groups,
		L2BytesPerGroup: b.l2Bytes,
		L1BytesPerCore:  b.l1Bytes,
		FrequencyHz:     b.freqHz,
		BusBandwidth:    b.busBW,
	}
	if hetero {
		// Compact the class table to referenced classes, in first-use order.
		remap := make([]int, len(b.classes))
		for i := range remap {
			remap[i] = -1
		}
		for _, ci := range coreClass {
			if remap[ci] < 0 {
				remap[ci] = len(t.Classes)
				t.Classes = append(t.Classes, b.classes[ci])
			}
		}
		t.CoreClasses = make([]int, len(coreClass))
		for c, ci := range coreClass {
			t.CoreClasses[c] = remap[ci]
		}
	}
	if t.FrequencyHz == 0 {
		t.FrequencyHz = 2.4e9
	}
	if t.L1BytesPerCore == 0 {
		t.L1BytesPerCore = 32 << 10
	}
	if t.L2BytesPerGroup == 0 {
		// 1 MB per core of the largest group: the reduced compute-to-cache
		// ratio Manycore models for dense parts.
		t.L2BytesPerGroup = int64(maxGrpSize) * (1 << 20)
	}
	if t.BusBandwidth == 0 {
		bw := 8.5e9
		if cores > 4 {
			bw *= 1 + 0.25*float64(cores-4)/4
		}
		t.BusBandwidth = bw
	}
	if t.Name == "" {
		t.Name = b.describe()
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// describe synthesises a name like "96-core (16x4 big + 16x2 little)".
func (b *Builder) describe() string {
	type run struct {
		count, size, class int
	}
	var runs []run
	for _, g := range b.groups {
		if n := len(runs); n > 0 && runs[n-1].size == g.size && runs[n-1].class == g.class {
			runs[n-1].count++
			continue
		}
		runs = append(runs, run{1, g.size, g.class})
	}
	var sb strings.Builder
	cores := 0
	for i, r := range runs {
		if i > 0 {
			sb.WriteString(" + ")
		}
		cls := b.classes[r.class]
		fmt.Fprintf(&sb, "%dx%d %s", r.count, r.size, cls.Name)
		cores += r.count * r.size * cls.SMTWidth
	}
	return fmt.Sprintf("%d-core (%s)", cores, sb.String())
}

// ParseDesc builds a topology from a compact descriptor string:
//
//	desc  := spec { "+" spec } [ "@" GHz ]
//	spec  := count "x" size [ ":" class ]
//	class := name [ "(" freqMult "," cpiMult [ "," smtWidth ] ")" ]
//
// Each spec contributes count shared-L2 groups of size cores. The class
// name references "big" (default) or "little", or defines a new class
// inline with explicit multipliers. Examples:
//
//	"2x2"                      — the quad-core Xeon's group structure
//	"16x2"                     — a 32-core homogeneous part
//	"16x4+32x2:little"         — 64 big + 64 little cores (128 total)
//	"8x4+8x2:eff(0.5,1.5,2)"   — big groups plus 2-way-SMT efficiency cores
//	"16x2@3.0"                 — 32 cores clocked at 3 GHz
//
// Everything not in the descriptor (cache sizes, bus bandwidth) takes the
// builder's defaults.
func ParseDesc(desc string) (*Topology, error) {
	s := strings.TrimSpace(desc)
	if s == "" {
		return nil, fmt.Errorf("topology: empty descriptor")
	}
	b := NewBuilder("")
	if at := strings.LastIndex(s, "@"); at >= 0 {
		ghz, err := strconv.ParseFloat(s[at+1:], 64)
		if err != nil || ghz <= 0 {
			return nil, fmt.Errorf("topology: bad clock %q in descriptor %q", s[at+1:], desc)
		}
		b.Frequency(ghz * 1e9)
		s = s[:at]
	}
	for _, spec := range strings.Split(s, "+") {
		spec = strings.TrimSpace(spec)
		className := ""
		if colon := strings.Index(spec, ":"); colon >= 0 {
			className = strings.TrimSpace(spec[colon+1:])
			spec = spec[:colon]
		}
		cx := strings.Split(spec, "x")
		if len(cx) != 2 {
			return nil, fmt.Errorf("topology: spec %q is not count x size (descriptor %q)", spec, desc)
		}
		count, err1 := strconv.Atoi(strings.TrimSpace(cx[0]))
		size, err2 := strconv.Atoi(strings.TrimSpace(cx[1]))
		if err1 != nil || err2 != nil || count <= 0 || size <= 0 {
			return nil, fmt.Errorf("topology: bad group spec %q in descriptor %q", spec, desc)
		}
		var opts []GroupOption
		if className != "" {
			name, err := parseClassInto(b, className)
			if err != nil {
				return nil, fmt.Errorf("topology: %w (descriptor %q)", err, desc)
			}
			opts = append(opts, Class(name))
		}
		b.Groups(count, size, opts...)
	}
	t, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("topology: descriptor %q: %w", desc, err)
	}
	return t, nil
}

// parseClassInto parses "name" or "name(freq,cpi[,smt])", registering any
// inline definition on the builder, and returns the class name.
func parseClassInto(b *Builder, s string) (string, error) {
	open := strings.Index(s, "(")
	if open < 0 {
		if _, ok := b.byName[s]; !ok {
			return "", fmt.Errorf("class %q is neither built-in nor defined inline (use %q)", s, s+"(freq,cpi)")
		}
		return s, nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", fmt.Errorf("unterminated class definition %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return "", fmt.Errorf("class definition %q has no name", s)
	}
	args := strings.Split(s[open+1:len(s)-1], ",")
	if len(args) < 2 || len(args) > 3 {
		return "", fmt.Errorf("class %q needs (freqMult,cpiMult[,smtWidth])", name)
	}
	freq, err1 := strconv.ParseFloat(strings.TrimSpace(args[0]), 64)
	cpi, err2 := strconv.ParseFloat(strings.TrimSpace(args[1]), 64)
	if err1 != nil || err2 != nil {
		return "", fmt.Errorf("class %q has non-numeric multipliers", name)
	}
	smt := 1
	if len(args) == 3 {
		var err error
		smt, err = strconv.Atoi(strings.TrimSpace(args[2]))
		if err != nil {
			return "", fmt.Errorf("class %q has non-integer SMT width", name)
		}
	}
	b.DefineClass(CoreClass{Name: name, FreqMult: freq, CPIMult: cpi, SMTWidth: smt})
	return name, nil
}
