package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBigLittle(t *testing.T) {
	topo, err := NewBuilder("test").Group(4).Group(2, Class("little")).Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumCores != 6 {
		t.Errorf("NumCores = %d, want 6", topo.NumCores)
	}
	if len(topo.L2Groups) != 2 || len(topo.L2Groups[0]) != 4 || len(topo.L2Groups[1]) != 2 {
		t.Errorf("L2Groups = %v", topo.L2Groups)
	}
	if !topo.Heterogeneous() {
		t.Error("big+little topology not Heterogeneous")
	}
	if cls := topo.ClassOf(0); cls.Name != "big" || cls.FreqMult != 1 {
		t.Errorf("core 0 class = %+v, want big", cls)
	}
	if cls := topo.ClassOf(5); cls.Name != "little" || cls.FreqMult >= 1 {
		t.Errorf("core 5 class = %+v, want little", cls)
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderAllDefaultStaysHomogeneous(t *testing.T) {
	topo, err := NewBuilder("homog").Groups(2, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Classes) != 0 || topo.CoreClasses != nil {
		t.Errorf("all-default build grew class tables: %v %v", topo.Classes, topo.CoreClasses)
	}
	if topo.Heterogeneous() {
		t.Error("default-class topology reports Heterogeneous")
	}
}

func TestBuilderSMTExpansion(t *testing.T) {
	topo, err := NewBuilder("smt").
		DefineClass(CoreClass{Name: "smt2", FreqMult: 1, CPIMult: 1.4, SMTWidth: 2}).
		Group(2, Class("smt2")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumCores != 4 {
		t.Errorf("2 cores × SMT2 = %d logical cores, want 4", topo.NumCores)
	}
	if len(topo.L2Groups[0]) != 4 {
		t.Errorf("SMT siblings not in the declaring group: %v", topo.L2Groups)
	}
}

func TestBuilderUndefinedClassFails(t *testing.T) {
	if _, err := NewBuilder("x").Group(2, Class("mythical")).Build(); err == nil {
		t.Error("undefined class accepted")
	}
}

func TestBuilderClassRedefinition(t *testing.T) {
	// Changing a referenced class must fail (groups store a class index;
	// rewriting would silently retarget declared cores)...
	_, err := NewBuilder("m").
		Group(4).
		DefineClass(CoreClass{Name: "big", FreqMult: 0.5, CPIMult: 1, SMTWidth: 1}).
		Group(4).
		Build()
	if err == nil {
		t.Error("redefining a referenced class accepted")
	}
	// ...but identical re-definition (the same inline class in two
	// descriptor specs) and pre-use redefinition stay legal.
	if _, err := ParseDesc("2x2:c(1,1.5)+4x2:c(1,1.5)"); err != nil {
		t.Errorf("identical inline redefinition rejected: %v", err)
	}
	if _, err := ParseDesc("2x2:c(1,1.5)+4x2:c(1,1.7)"); err == nil {
		t.Error("conflicting inline redefinition accepted")
	}
	topo, err := NewBuilder("pre").
		DefineClass(CoreClass{Name: "big", FreqMult: 0.5, CPIMult: 1, SMTWidth: 1}).
		Group(2).
		Build()
	if err != nil {
		t.Fatalf("pre-use redefinition rejected: %v", err)
	}
	if !topo.Heterogeneous() {
		t.Error("pre-use redefinition of the default class did not take effect")
	}
}

func TestParseDesc(t *testing.T) {
	cases := []struct {
		desc        string
		cores       int
		groups      int
		hetero      bool
		frequencyHz float64
	}{
		{"2x2", 4, 2, false, 2.4e9},
		{"16x2", 32, 16, false, 2.4e9},
		{"16x4+32x2:little", 128, 48, true, 2.4e9},
		{"2x2:eff(0.5,1.5,2)", 8, 2, true, 2.4e9},
		{"4x2@3.0", 8, 4, false, 3.0e9},
	}
	for _, c := range cases {
		topo, err := ParseDesc(c.desc)
		if err != nil {
			t.Errorf("ParseDesc(%q): %v", c.desc, err)
			continue
		}
		if topo.NumCores != c.cores || len(topo.L2Groups) != c.groups {
			t.Errorf("%q: %d cores / %d groups, want %d / %d",
				c.desc, topo.NumCores, len(topo.L2Groups), c.cores, c.groups)
		}
		if topo.Heterogeneous() != c.hetero {
			t.Errorf("%q: Heterogeneous = %v, want %v", c.desc, topo.Heterogeneous(), c.hetero)
		}
		if topo.FrequencyHz != c.frequencyHz {
			t.Errorf("%q: FrequencyHz = %g, want %g", c.desc, topo.FrequencyHz, c.frequencyHz)
		}
	}
	for _, bad := range []string{"", "x", "2x", "x2", "0x2", "2x2:nosuch", "2x2:c(", "2x2@-1", "2x2:c(1)",
		"2x2:c(1,1,-1)", "2x2:c(1,1,0)", "2x2:c(0,1)", "2x2:c(1,-2)"} {
		if _, err := ParseDesc(bad); err == nil {
			t.Errorf("ParseDesc(%q) accepted", bad)
		}
	}
}

// TestEnumerateAsymmetricGroups pins the family canonicalization: on a
// machine with one 4-core group and one 2-core group of the same class, a
// single thread has two distinct placements (big group vs small group) —
// the homogeneous enumerator would have collapsed them.
func TestEnumerateAsymmetricGroups(t *testing.T) {
	topo := &Topology{
		Name:            "asym",
		NumCores:        6,
		L2Groups:        [][]CoreID{{0, 1, 2, 3}, {4, 5}},
		L2BytesPerGroup: 4 << 20, L1BytesPerCore: 32 << 10,
		FrequencyHz: 2.4e9, BusBandwidth: 8.5e9,
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	pls := EnumeratePlacements(topo)
	var oneThread []Placement
	names := map[string]bool{}
	for _, pl := range pls {
		if names[pl.Name] {
			t.Errorf("duplicate placement name %q", pl.Name)
		}
		names[pl.Name] = true
		if err := topo.ValidatePlacement(pl); err != nil {
			t.Errorf("enumerated placement invalid: %v", err)
		}
		if pl.Threads() == 1 {
			oneThread = append(oneThread, pl)
		}
	}
	if len(oneThread) != 2 {
		t.Fatalf("asymmetric groups: %d single-thread placements, want 2 (big, small): %v", len(oneThread), oneThread)
	}
	g0 := topo.GroupOf(oneThread[0].Cores[0])
	g1 := topo.GroupOf(oneThread[1].Cores[0])
	if g0 == g1 {
		t.Errorf("both single-thread placements in group %d", g0)
	}
}

// TestEnumerateHeteroClasses checks that same-shape groups of different
// classes are not canonicalized together.
func TestEnumerateHeteroClasses(t *testing.T) {
	topo, err := NewBuilder("bl").Group(2).Group(2, Class("little")).Build()
	if err != nil {
		t.Fatal(err)
	}
	pls := EnumeratePlacements(topo)
	// Families {big 1×2} and {little 1×2}: n=1 → 1|0, 0|1; n=2 → 2|0,
	// 1+?... patterns: (2|), (1|1), (|2); n=3 → (2|1), (1|2); n=4 → (2|2).
	if len(pls) != 8 {
		t.Fatalf("got %d placements, want 8: %v", len(pls), pls)
	}
	homog, err := NewBuilder("hh").Groups(2, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(EnumeratePlacements(homog)); got != 5 {
		t.Fatalf("homogeneous 2x2: %d placements, want 5", got)
	}
}

func TestEnumerateBalanced(t *testing.T) {
	topo, err := ParseDesc("2x2+2x2:little")
	if err != nil {
		t.Fatal(err)
	}
	pls := BalancedPlacements(topo)
	// Π(capacity_f + 1) − 1 = 5×5−1 vectors.
	if len(pls) != 24 {
		t.Fatalf("balanced placements = %d, want 24", len(pls))
	}
	last := pls[len(pls)-1]
	if last.Threads() != topo.NumCores {
		t.Errorf("last balanced placement has %d threads, want all %d", last.Threads(), topo.NumCores)
	}
	names := map[string]bool{}
	for i, pl := range pls {
		if names[pl.Name] {
			t.Errorf("duplicate balanced name %q", pl.Name)
		}
		names[pl.Name] = true
		if err := topo.ValidatePlacement(pl); err != nil {
			t.Errorf("balanced placement %d invalid: %v", i, err)
		}
		if i > 0 && pl.Threads() < pls[i-1].Threads() {
			t.Errorf("balanced placements not ordered by thread count at %d", i)
		}
	}
	// Homogeneous machines keep plain "n" names.
	homog := Manycore(8, 2)
	for _, pl := range BalancedPlacements(homog) {
		if strings.Contains(pl.Name, ":") {
			t.Errorf("homogeneous balanced name %q has a family suffix", pl.Name)
		}
	}
}

// TestEnumerateBalancedSpreads checks the even-spread shape: 3 threads on
// a 2×2-group family occupy both groups (2+1), never one group.
func TestEnumerateBalancedSpreads(t *testing.T) {
	topo := Manycore(4, 2)
	for _, pl := range BalancedPlacements(topo) {
		if pl.Threads() != 3 {
			continue
		}
		occ := map[int]int{}
		for _, c := range pl.Cores {
			occ[topo.GroupOf(c)]++
		}
		if len(occ) != 2 {
			t.Errorf("3 balanced threads occupy %d groups, want 2", len(occ))
		}
	}
}

func TestPaperConfigsOnValidation(t *testing.T) {
	if _, err := PaperConfigsOn(QuadCoreXeon()); err != nil {
		t.Errorf("PaperConfigsOn(QuadCoreXeon): %v", err)
	}
	small, err := NewBuilder("tiny").Group(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PaperConfigsOn(small); err == nil {
		t.Error("PaperConfigsOn accepted a 2-core machine")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error not descriptive: %v", err)
	}
	if _, err := ConfigByNameOn(small, "4"); err == nil {
		t.Error("ConfigByNameOn(tiny, 4) accepted")
	}
	if _, err := ConfigByNameOn(small, "1"); err != nil {
		t.Errorf("ConfigByNameOn(tiny, 1): %v", err)
	}
	if _, err := ConfigByNameOn(QuadCoreXeon(), "9z"); err == nil {
		t.Error("ConfigByNameOn accepted unknown name")
	}
}

// TestEnumerateHeteroProperties fuzzes builder topologies (group sizes and
// classes) through the enumeration invariants: unique names, valid
// placements, all-cores last, streaming order equals materialised order.
func TestEnumerateHeteroProperties(t *testing.T) {
	f := func(bigGroups, bigSize, littleGroups, littleSize uint8) bool {
		bg := int(bigGroups%3) + 1
		bs := int(bigSize%3) + 1
		lg := int(littleGroups % 3)
		ls := int(littleSize%2) + 1
		b := NewBuilder("fuzz").Groups(bg, bs)
		if lg > 0 {
			b.Groups(lg, ls, Class("little"))
		}
		topo, err := b.Build()
		if err != nil {
			return false
		}
		pls := EnumeratePlacements(topo)
		if len(pls) == 0 {
			return false
		}
		names := map[string]bool{}
		for _, pl := range pls {
			if names[pl.Name] || topo.ValidatePlacement(pl) != nil {
				return false
			}
			names[pl.Name] = true
		}
		if pls[len(pls)-1].Threads() != topo.NumCores {
			return false
		}
		var streamed []Placement
		EnumeratePlacementsFunc(topo, func(p Placement) bool {
			streamed = append(streamed, p)
			return true
		})
		if len(streamed) != len(pls) {
			return false
		}
		for i := range pls {
			if streamed[i].Name != pls[i].Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
