package topology

import (
	"testing"
	"testing/quick"
)

func TestQuadCoreXeonValid(t *testing.T) {
	topo := QuadCoreXeon()
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if topo.NumCores != 4 {
		t.Errorf("NumCores = %d, want 4", topo.NumCores)
	}
	if len(topo.L2Groups) != 2 {
		t.Errorf("L2Groups = %d, want 2", len(topo.L2Groups))
	}
	if topo.L2BytesPerGroup != 4<<20 {
		t.Errorf("L2BytesPerGroup = %d, want 4 MB", topo.L2BytesPerGroup)
	}
}

func TestGroupOf(t *testing.T) {
	topo := QuadCoreXeon()
	cases := []struct {
		core CoreID
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, -1}, {-1, -1}}
	for _, c := range cases {
		if got := topo.GroupOf(c.core); got != c.want {
			t.Errorf("GroupOf(%d) = %d, want %d", c.core, got, c.want)
		}
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := map[string]*Topology{
		"no cores":      {Name: "x", NumCores: 0},
		"empty group":   {Name: "x", NumCores: 1, L2Groups: [][]CoreID{{}}, L2BytesPerGroup: 1, L1BytesPerCore: 1, FrequencyHz: 1, BusBandwidth: 1},
		"out of range":  {Name: "x", NumCores: 1, L2Groups: [][]CoreID{{5}}, L2BytesPerGroup: 1, L1BytesPerCore: 1, FrequencyHz: 1, BusBandwidth: 1},
		"duplicate":     {Name: "x", NumCores: 2, L2Groups: [][]CoreID{{0, 0}}, L2BytesPerGroup: 1, L1BytesPerCore: 1, FrequencyHz: 1, BusBandwidth: 1},
		"missing cores": {Name: "x", NumCores: 2, L2Groups: [][]CoreID{{0}}, L2BytesPerGroup: 1, L1BytesPerCore: 1, FrequencyHz: 1, BusBandwidth: 1},
		"zero cache":    {Name: "x", NumCores: 1, L2Groups: [][]CoreID{{0}}, L2BytesPerGroup: 0, L1BytesPerCore: 1, FrequencyHz: 1, BusBandwidth: 1},
		"zero clock":    {Name: "x", NumCores: 1, L2Groups: [][]CoreID{{0}}, L2BytesPerGroup: 1, L1BytesPerCore: 1, FrequencyHz: 0, BusBandwidth: 1},
	}
	for name, topo := range cases {
		if err := topo.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid topology", name)
		}
	}
}

func TestPaperConfigs(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("got %d configs, want 5", len(cfgs))
	}
	wantNames := []string{"1", "2a", "2b", "3", "4"}
	wantThreads := []int{1, 2, 2, 3, 4}
	topo := QuadCoreXeon()
	for i, cfg := range cfgs {
		if cfg.Name != wantNames[i] {
			t.Errorf("config %d name = %q, want %q", i, cfg.Name, wantNames[i])
		}
		if cfg.Threads() != wantThreads[i] {
			t.Errorf("config %s threads = %d, want %d", cfg.Name, cfg.Threads(), wantThreads[i])
		}
		for _, c := range cfg.Cores {
			if topo.GroupOf(c) < 0 {
				t.Errorf("config %s references unknown core %d", cfg.Name, c)
			}
		}
	}
	// 2a is tightly coupled (one group), 2b loosely (two groups).
	if g0, g1 := topo.GroupOf(cfgs[1].Cores[0]), topo.GroupOf(cfgs[1].Cores[1]); g0 != g1 {
		t.Errorf("2a cores in different L2 groups (%d, %d)", g0, g1)
	}
	if g0, g1 := topo.GroupOf(cfgs[2].Cores[0]), topo.GroupOf(cfgs[2].Cores[1]); g0 == g1 {
		t.Errorf("2b cores share L2 group %d", g0)
	}
}

func TestConfigByName(t *testing.T) {
	if _, ok := ConfigByName("2b"); !ok {
		t.Error("ConfigByName(2b) not found")
	}
	if _, ok := ConfigByName("5x"); ok {
		t.Error("ConfigByName(5x) unexpectedly found")
	}
}

func TestGroupLoad(t *testing.T) {
	topo := QuadCoreXeon()
	cfg, _ := ConfigByName("3") // cores 0,1,2
	if got := cfg.GroupLoad(topo, 0); got != 2 {
		t.Errorf("GroupLoad(core 0) = %d, want 2", got)
	}
	if got := cfg.GroupLoad(topo, 2); got != 1 {
		t.Errorf("GroupLoad(core 2) = %d, want 1", got)
	}
}

func TestManycore(t *testing.T) {
	topo := Manycore(16, 2)
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(topo.L2Groups) != 8 {
		t.Errorf("groups = %d, want 8", len(topo.L2Groups))
	}
	defer func() {
		if recover() == nil {
			t.Error("Manycore(5, 2) did not panic on indivisible cores")
		}
	}()
	Manycore(5, 2)
}

func TestEnumeratePlacementsQuadCore(t *testing.T) {
	topo := QuadCoreXeon()
	pls := EnumeratePlacements(topo)
	// Distinct occupancy multisets on 2×2 groups:
	// n=1: (1); n=2: (2),(1+1); n=3: (2+1); n=4: (2+2) → 5 total.
	if len(pls) != 5 {
		t.Fatalf("got %d placements, want 5: %v", len(pls), pls)
	}
	for _, pl := range pls {
		if pl.Threads() == 0 {
			t.Errorf("placement %v has no threads", pl)
		}
		seen := map[CoreID]bool{}
		for _, c := range pl.Cores {
			if seen[c] {
				t.Errorf("placement %v repeats core %d", pl, c)
			}
			seen[c] = true
			if topo.GroupOf(c) < 0 {
				t.Errorf("placement %v uses unknown core %d", pl, c)
			}
		}
	}
}

func TestEnumeratePlacementsProperties(t *testing.T) {
	f := func(coresIn, groupIn uint8) bool {
		// Derive a valid (cores, groupSize) pair from fuzz input.
		groups := int(groupIn%3) + 1  // 1..3 cores per group
		ngroups := int(coresIn%4) + 1 // 1..4 groups
		topo := Manycore(groups*ngroups, groups)
		pls := EnumeratePlacements(topo)
		if len(pls) == 0 {
			return false
		}
		seenKeys := map[string]bool{}
		for _, pl := range pls {
			if pl.Threads() < 1 || pl.Threads() > topo.NumCores {
				return false
			}
			key := pl.Name
			if seenKeys[key] {
				return false // duplicate placement generated
			}
			seenKeys[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEnumeratePlacementsFuncStreams pins the streaming iterator's
// contract: it yields exactly the placements EnumeratePlacements
// materialises, in the same order, and stops as soon as yield returns
// false (so 32-core sweeps can consume placements without building the
// full slice).
func TestEnumeratePlacementsFuncStreams(t *testing.T) {
	for _, topo := range []*Topology{QuadCoreXeon(), Manycore(32, 2), Manycore(12, 4)} {
		want := EnumeratePlacements(topo)
		var got []Placement
		EnumeratePlacementsFunc(topo, func(p Placement) bool {
			got = append(got, p)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d placements, materialised %d", topo.Name, len(got), len(want))
		}
		for i := range want {
			if got[i].Name != want[i].Name || len(got[i].Cores) != len(want[i].Cores) {
				t.Fatalf("%s: placement %d differs: %v vs %v", topo.Name, i, got[i], want[i])
			}
			for j := range want[i].Cores {
				if got[i].Cores[j] != want[i].Cores[j] {
					t.Fatalf("%s: placement %d cores differ: %v vs %v", topo.Name, i, got[i], want[i])
				}
			}
		}
		// Early stop: the iterator must not call yield again after false.
		calls := 0
		EnumeratePlacementsFunc(topo, func(Placement) bool {
			calls++
			return calls < 3
		})
		if calls != 3 {
			t.Errorf("%s: yield called %d times after early stop, want 3", topo.Name, calls)
		}
	}
}
