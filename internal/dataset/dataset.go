// Package dataset builds the supervised training data for ACTOR's
// predictors: it executes benchmark phases on the (noisy) machine model at
// the sampling configuration, collects hardware event rates through the
// PMU's rotating two-counter window, and pairs the resulting feature
// vectors with measured IPC at every target configuration.
//
// It also provides the leave-one-out splits used in the paper's evaluation
// ("we use each benchmark for evaluation by training as many models as
// there are applications, each time leaving one particular application out
// of the training process").
package dataset

import (
	"fmt"
	"sort"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// PhaseSample is the collected data for one phase observation: the feature
// vector seen at the sampling configuration plus the measured and
// ground-truth IPC at every configuration.
type PhaseSample struct {
	// Bench and Phase identify the source parallel region.
	Bench, Phase string
	// Rates are the averaged per-cycle event rates observed at the
	// sampling configuration (Rates[pmu.Instructions] is sampled IPC).
	Rates pmu.Rates
	// MeasuredIPC maps configuration name → noisy measured aggregate IPC
	// (what a training run would record).
	MeasuredIPC map[string]float64
	// TrueIPC maps configuration name → noiseless model IPC (used only
	// for oracle construction and error scoring, never for training).
	TrueIPC map[string]float64
}

// Features flattens the sample's rates into the model input vector
// [sampled IPC, event rates...] for the given event list.
func (s *PhaseSample) Features(events []pmu.Event) []float64 {
	return s.Rates.Vector(events)
}

// Collector gathers PhaseSamples from benchmarks on a machine pair: a noisy
// machine for realistic measurements and a pristine one for ground truth.
type Collector struct {
	// Noisy is the measurement machine (see machine.WithNoise).
	Noisy *machine.Machine
	// Truth is the noiseless machine used for oracle IPC.
	Truth *machine.Machine
	// SampleConfig is where counters are sampled: maximal concurrency
	// (the paper samples at the highest thread count so predictions see
	// the greatest possible interference).
	SampleConfig topology.Placement
	// Configs are all configurations needing IPC labels.
	Configs []topology.Placement
	// Events are the programmable events to rotate through.
	Events []pmu.Event
	// CounterWidth is the PMU's simultaneous counter limit (2 on the
	// paper's platform).
	CounterWidth int
	// Repetitions is how many independent noisy observations to collect
	// per phase (more repetitions expose the noise distribution to the
	// model).
	Repetitions int
	// NoiseBase, when non-nil, switches collection to the parallel
	// engine: every (benchmark, phase, repetition) task runs on its own
	// noisy machine whose noise stream is forked from NoiseBase under a
	// stable task key, so results are bit-identical at any GOMAXPROCS.
	// When nil, collection runs sequentially on Noisy's shared stream
	// (the legacy behaviour).
	NoiseBase *noise.Source
}

// NewCollector returns a collector with the paper's defaults: sampling at
// configuration 4, labels for all five configurations, the full
// twelve-event set on a 2-wide counter file, and 6 repetitions per phase.
func NewCollector(noisy, truth *machine.Machine) *Collector {
	cfgs := topology.PaperConfigs()
	return &Collector{
		Noisy:        noisy,
		Truth:        truth,
		SampleConfig: cfgs[len(cfgs)-1],
		Configs:      cfgs,
		Events:       pmu.FullEventSet(),
		CounterWidth: 2,
		Repetitions:  6,
	}
}

// CollectBenchmark produces Repetitions samples for every phase of the
// benchmark, ordered (phase, repetition). With NoiseBase set the
// (phase, repetition) tasks fan out through the parallel engine, each on a
// privately-forked noise stream; otherwise collection is sequential on the
// shared Noisy machine.
func (c *Collector) CollectBenchmark(b *workload.Benchmark) ([]PhaseSample, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if c.NoiseBase == nil {
		var out []PhaseSample
		for pi := range b.Phases {
			p := &b.Phases[pi]
			for rep := 0; rep < c.Repetitions; rep++ {
				s, err := c.collectPhase(c.Noisy, b, p)
				if err != nil {
					return nil, fmt.Errorf("collect %s/%s: %w", b.Name, p.Name, err)
				}
				out = append(out, s)
			}
		}
		return out, nil
	}
	n := len(b.Phases) * c.Repetitions
	return parallel.Map(n, func(i int) (PhaseSample, error) {
		pi, rep := i/c.Repetitions, i%c.Repetitions
		p := &b.Phases[pi]
		key := fmt.Sprintf("collect/%s/%s/%d", b.Name, p.Name, rep)
		noisy := c.Noisy.WithNoiseSource(c.NoiseBase.Fork(key))
		s, err := c.collectPhase(noisy, b, p)
		if err != nil {
			return PhaseSample{}, fmt.Errorf("collect %s/%s: %w", b.Name, p.Name, err)
		}
		return s, nil
	})
}

// collectPhase runs one full sampling rotation plus per-config measurement
// for a single phase on the given noisy machine.
func (c *Collector) collectPhase(noisy *machine.Machine, b *workload.Benchmark, p *workload.PhaseProfile) (PhaseSample, error) {
	file, err := pmu.NewCounterFile(c.CounterWidth)
	if err != nil {
		return PhaseSample{}, err
	}
	plan, err := pmu.PlanRotation(c.Events, c.CounterWidth, 0)
	if err != nil {
		return PhaseSample{}, err
	}
	sampler := pmu.NewSampler(file, plan)
	for !sampler.Done() {
		res := noisy.RunPhase(p, b.Idiosyncrasy, c.SampleConfig)
		if err := sampler.Observe(res.Counts); err != nil {
			return PhaseSample{}, err
		}
	}
	s := PhaseSample{
		Bench:       b.Name,
		Phase:       p.Name,
		Rates:       sampler.Rates(),
		MeasuredIPC: make(map[string]float64, len(c.Configs)),
		TrueIPC:     make(map[string]float64, len(c.Configs)),
	}
	for _, cfg := range c.Configs {
		s.MeasuredIPC[cfg.Name] = noisy.RunPhase(p, b.Idiosyncrasy, cfg).AggIPC
		s.TrueIPC[cfg.Name] = c.Truth.RunPhase(p, b.Idiosyncrasy, cfg).AggIPC
	}
	return s, nil
}

// CollectSuite collects samples for every benchmark, keyed by name.
// Benchmarks fan out through the parallel engine when NoiseBase is set.
func (c *Collector) CollectSuite(benches []*workload.Benchmark) (map[string][]PhaseSample, error) {
	if c.NoiseBase == nil {
		out := make(map[string][]PhaseSample, len(benches))
		for _, b := range benches {
			ss, err := c.CollectBenchmark(b)
			if err != nil {
				return nil, err
			}
			out[b.Name] = ss
		}
		return out, nil
	}
	perBench, err := parallel.Map(len(benches), func(i int) ([]PhaseSample, error) {
		return c.CollectBenchmark(benches[i])
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]PhaseSample, len(benches))
	for i, b := range benches {
		out[b.Name] = perBench[i]
	}
	return out, nil
}

// LeaveOneOut merges the samples of every benchmark except excluded — the
// paper's evaluation protocol, guaranteeing the model never saw the target
// application. Benchmarks are merged in sorted-name order: the map's random
// iteration order used to leak into fold assignment, making "deterministic"
// training differ between runs of the same seed.
func LeaveOneOut(suite map[string][]PhaseSample, excluded string) []PhaseSample {
	names := make([]string, 0, len(suite))
	for name := range suite {
		if name != excluded {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []PhaseSample
	for _, name := range names {
		out = append(out, suite[name]...)
	}
	return out
}

// ToSamples converts phase samples into supervised examples for one target
// configuration using the given event list as features: X = [sampled IPC,
// rates...], Y = measured IPC on the target.
func ToSamples(phaseSamples []PhaseSample, events []pmu.Event, targetConfig string) ([]ann.Sample, error) {
	out := make([]ann.Sample, 0, len(phaseSamples))
	for i := range phaseSamples {
		ps := &phaseSamples[i]
		y, ok := ps.MeasuredIPC[targetConfig]
		if !ok {
			return nil, fmt.Errorf("dataset: sample %s/%s has no label for config %q",
				ps.Bench, ps.Phase, targetConfig)
		}
		out = append(out, ann.Sample{X: ps.Features(events), Y: y})
	}
	return out, nil
}

// ToSamplesMulti builds the supervised sets for several target
// configurations at once. The feature vector of a phase sample does not
// depend on the target, so it is computed once and shared (aliased, not
// copied) by every target's sample list — predictor-bank training trains
// one model per target on identical features and must not pay the feature
// extraction once per target. Callers must treat the X vectors as
// read-only, which the trainers do (normalisation copies into private
// packed buffers).
func ToSamplesMulti(phaseSamples []PhaseSample, events []pmu.Event, targets []string) (map[string][]ann.Sample, error) {
	out := make(map[string][]ann.Sample, len(targets))
	for _, t := range targets {
		out[t] = make([]ann.Sample, 0, len(phaseSamples))
	}
	for i := range phaseSamples {
		ps := &phaseSamples[i]
		x := ps.Features(events)
		for _, t := range targets {
			y, ok := ps.MeasuredIPC[t]
			if !ok {
				return nil, fmt.Errorf("dataset: sample %s/%s has no label for config %q",
					ps.Bench, ps.Phase, t)
			}
			out[t] = append(out[t], ann.Sample{X: x, Y: y})
		}
	}
	return out, nil
}
