package dataset

import (
	"testing"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
)

func newCollector(t *testing.T, reps int) *Collector {
	t.Helper()
	truth, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		t.Fatal(err)
	}
	noisy := truth.WithNoise(noise.New(1), 0.02, 0.05)
	c := NewCollector(noisy, truth)
	c.Repetitions = reps
	return c
}

func TestCollectBenchmark(t *testing.T) {
	c := newCollector(t, 3)
	b, _ := npb.ByName("CG")
	samples, err := c.CollectBenchmark(b)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(b.Phases) * 3; len(samples) != want {
		t.Fatalf("got %d samples, want %d", len(samples), want)
	}
	for _, s := range samples {
		if s.Bench != "CG" {
			t.Errorf("sample bench = %q", s.Bench)
		}
		if s.Rates[pmu.Instructions] <= 0 {
			t.Error("sample has no IPC")
		}
		for _, cfg := range c.Configs {
			if s.MeasuredIPC[cfg.Name] <= 0 {
				t.Errorf("missing measured IPC for %s", cfg.Name)
			}
			if s.TrueIPC[cfg.Name] <= 0 {
				t.Errorf("missing true IPC for %s", cfg.Name)
			}
		}
		// All twelve programmable events must be present after a full
		// rotation.
		for _, e := range pmu.FullEventSet() {
			if _, ok := s.Rates[e]; !ok {
				t.Errorf("event %v missing from rates", e)
			}
		}
	}
}

func TestCollectRepetitionsDiffer(t *testing.T) {
	c := newCollector(t, 2)
	b, _ := npb.ByName("IS")
	samples, err := c.CollectBenchmark(b)
	if err != nil {
		t.Fatal(err)
	}
	// Two repetitions of the same phase must differ under measurement
	// noise (otherwise repetitions add no information).
	a, bb := samples[0], samples[1]
	if a.Phase != bb.Phase {
		t.Fatal("expected consecutive repetitions of one phase")
	}
	if a.Rates[pmu.Instructions] == bb.Rates[pmu.Instructions] {
		t.Error("repetitions produced identical sampled IPC")
	}
	// Ground truth is noise-free and identical.
	if a.TrueIPC["4"] != bb.TrueIPC["4"] {
		t.Error("true IPC differs across repetitions")
	}
}

func TestFeaturesVector(t *testing.T) {
	c := newCollector(t, 1)
	b, _ := npb.ByName("MG")
	samples, _ := c.CollectBenchmark(b)
	events := pmu.ReducedEventSet(2)
	x := samples[0].Features(events)
	if len(x) != len(events)+1 {
		t.Fatalf("feature vector length %d, want %d", len(x), len(events)+1)
	}
	if x[0] != samples[0].Rates[pmu.Instructions] {
		t.Error("feature[0] is not the sampled IPC")
	}
}

func TestLeaveOneOut(t *testing.T) {
	suite := map[string][]PhaseSample{
		"A": {{Bench: "A"}, {Bench: "A"}},
		"B": {{Bench: "B"}},
		"C": {{Bench: "C"}},
	}
	loo := LeaveOneOut(suite, "B")
	if len(loo) != 3 {
		t.Fatalf("got %d samples, want 3", len(loo))
	}
	for _, s := range loo {
		if s.Bench == "B" {
			t.Error("excluded benchmark leaked into training data")
		}
	}
}

func TestToSamples(t *testing.T) {
	ps := []PhaseSample{{
		Bench: "A", Phase: "p",
		Rates:       pmu.Rates{pmu.Instructions: 1.5, pmu.L2Misses: 0.01},
		MeasuredIPC: map[string]float64{"2b": 2.5},
	}}
	events := []pmu.Event{pmu.L2Misses}
	ss, err := ToSamples(ps, events, "2b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 1 || ss[0].Y != 2.5 || ss[0].X[0] != 1.5 || ss[0].X[1] != 0.01 {
		t.Errorf("ToSamples = %+v", ss)
	}
	if _, err := ToSamples(ps, events, "zz"); err == nil {
		t.Error("missing target config accepted")
	}
}

func TestCollectSuite(t *testing.T) {
	c := newCollector(t, 1)
	benches := npb.All()[:2]
	suite, err := c.CollectSuite(benches)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 {
		t.Fatalf("suite has %d entries", len(suite))
	}
	for _, b := range benches {
		if len(suite[b.Name]) != len(b.Phases) {
			t.Errorf("%s: %d samples, want %d", b.Name, len(suite[b.Name]), len(b.Phases))
		}
	}
}

func TestToSamplesMultiSharesFeatures(t *testing.T) {
	ps := []PhaseSample{
		{
			Bench: "A", Phase: "p",
			Rates:       pmu.Rates{pmu.Instructions: 1.5, pmu.L2Misses: 0.01},
			MeasuredIPC: map[string]float64{"1": 1.1, "2b": 2.5},
		},
		{
			Bench: "A", Phase: "q",
			Rates:       pmu.Rates{pmu.Instructions: 0.8, pmu.L2Misses: 0.04},
			MeasuredIPC: map[string]float64{"1": 0.7, "2b": 1.9},
		},
	}
	events := []pmu.Event{pmu.L2Misses}
	targets := []string{"1", "2b"}
	multi, err := ToSamplesMulti(ps, events, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range targets {
		single, err := ToSamples(ps, events, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if len(multi[tgt]) != len(single) {
			t.Fatalf("target %s: %d samples, want %d", tgt, len(multi[tgt]), len(single))
		}
		for i := range single {
			if multi[tgt][i].Y != single[i].Y {
				t.Errorf("target %s sample %d: Y = %v, want %v", tgt, i, multi[tgt][i].Y, single[i].Y)
			}
			for j := range single[i].X {
				if multi[tgt][i].X[j] != single[i].X[j] {
					t.Errorf("target %s sample %d: X[%d] = %v, want %v",
						tgt, i, j, multi[tgt][i].X[j], single[i].X[j])
				}
			}
		}
	}
	// The whole point: one feature vector extraction per phase sample,
	// aliased across targets.
	for i := range ps {
		if &multi["1"][i].X[0] != &multi["2b"][i].X[0] {
			t.Errorf("sample %d: feature vectors not shared across targets", i)
		}
	}
	if _, err := ToSamplesMulti(ps, events, []string{"1", "zz"}); err == nil {
		t.Error("missing target config accepted")
	}
}
