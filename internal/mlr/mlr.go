// Package mlr implements multiple linear regression, the paper's
// prior-work baseline predictor ([3], Curtis-Maury et al., ICS'06). The
// paper argues ANNs match regression accuracy while eliminating the
// hand-tuned, machine-specific model derivation; this package exists so the
// repository can reproduce that comparison (see the ablation benchmarks).
package mlr

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/greenhpc/actor/internal/ann"
)

// Model is a linear model y = b0 + Σ bi·xi fit by least squares on the
// normal equations with a small ridge term for numerical stability.
type Model struct {
	// Coef holds [b0, b1, ..., bd].
	Coef []float64
}

// Fit solves the least-squares problem for the samples. All samples must
// share one feature dimension. Ridge (≥ 0) adds λI to XᵀX; 1e-8 is a good
// default for conditioning, larger values regularise.
func Fit(samples []ann.Sample, ridge float64) (*Model, error) {
	if len(samples) == 0 {
		return nil, errors.New("mlr: empty training set")
	}
	d := len(samples[0].X)
	for _, s := range samples {
		if len(s.X) != d {
			return nil, errors.New("mlr: inconsistent feature dimensions")
		}
	}
	n := d + 1 // + intercept
	if len(samples) < n {
		return nil, fmt.Errorf("mlr: %d samples cannot determine %d coefficients", len(samples), n)
	}
	// Build normal equations A = XᵀX (+ ridge), b = Xᵀy with X rows
	// [1, x...].
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	b := make([]float64, n)
	row := make([]float64, n)
	for _, s := range samples {
		row[0] = 1
		copy(row[1:], s.X)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * s.Y
		}
	}
	if ridge < 0 {
		ridge = 0
	}
	for i := 1; i < n; i++ { // do not penalise the intercept
		a[i][i] += ridge
	}
	coef, err := solveGauss(a, b)
	if err != nil {
		return nil, err
	}
	return &Model{Coef: coef}, nil
}

// NewModel constructs a model from flat coefficients [b0, b1, ..., bd],
// validating that at least the intercept is present. The slice is copied —
// deserializers hand in buffers they may reuse.
func NewModel(coef []float64) (*Model, error) {
	if len(coef) < 1 {
		return nil, errors.New("mlr: model needs at least an intercept coefficient")
	}
	return &Model{Coef: append([]float64(nil), coef...)}, nil
}

// Predict evaluates the model on x; panics on dimension mismatch.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != len(m.Coef)-1 {
		panic(fmt.Sprintf("mlr: input dim %d, want %d", len(x), len(m.Coef)-1))
	}
	y := m.Coef[0]
	for i, v := range x {
		y += m.Coef[i+1] * v
	}
	return y
}

// InputDim returns the expected feature dimension.
func (m *Model) InputDim() int { return len(m.Coef) - 1 }

// MSE returns the model's mean squared error on the set.
func (m *Model) MSE(set []ann.Sample) float64 {
	if len(set) == 0 {
		return 0
	}
	var sum float64
	for _, s := range set {
		d := m.Predict(s.X) - s.Y
		sum += d * d
	}
	return sum / float64(len(set))
}

// solveGauss solves a·x = b by Gaussian elimination with partial pivoting.
// a and b are modified in place.
func solveGauss(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[piv][col]) {
				piv = r
			}
		}
		if abs(a[piv][col]) < 1e-14 {
			return nil, errors.New("mlr: singular normal equations (try a larger ridge)")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// MarshalJSON serialises the model.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Coef []float64 `json:"coef"`
	}{m.Coef})
}

// UnmarshalJSON restores a serialised model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var raw struct {
		Coef []float64 `json:"coef"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw.Coef) < 1 {
		return errors.New("mlr: malformed serialised model")
	}
	m.Coef = raw.Coef
	return nil
}
