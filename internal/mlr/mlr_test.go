package mlr

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/greenhpc/actor/internal/ann"
)

func linearSamples(n int, seed int64, noise float64) []ann.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ann.Sample, n)
	for i := range out {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := 2 + 3*x[0] - 1.5*x[1] + 0.25*x[2] + noise*rng.NormFloat64()
		out[i] = ann.Sample{X: x, Y: y}
	}
	return out
}

func TestFitRecoversLinearModel(t *testing.T) {
	m, err := Fit(linearSamples(200, 1, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1.5, 0.25}
	for i, w := range want {
		if math.Abs(m.Coef[i]-w) > 1e-8 {
			t.Errorf("coef[%d] = %g, want %g", i, m.Coef[i], w)
		}
	}
}

func TestFitWithNoiseStillClose(t *testing.T) {
	m, err := Fit(linearSamples(2000, 2, 0.05), 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1.5, 0.25}
	for i, w := range want {
		if math.Abs(m.Coef[i]-w) > 0.05 {
			t.Errorf("coef[%d] = %g, want ≈ %g", i, m.Coef[i], w)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 0); err == nil {
		t.Error("empty set accepted")
	}
	short := linearSamples(3, 1, 0) // 4 coefficients need ≥ 4 samples
	if _, err := Fit(short, 0); err == nil {
		t.Error("underdetermined system accepted")
	}
	bad := []ann.Sample{{X: []float64{1}, Y: 0}, {X: []float64{1, 2}, Y: 0}}
	if _, err := Fit(bad, 0); err == nil {
		t.Error("inconsistent dimensions accepted")
	}
}

func TestFitSingularWithoutRidge(t *testing.T) {
	// Duplicate feature → singular normal equations.
	var samples []ann.Sample
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		v := rng.Float64()
		samples = append(samples, ann.Sample{X: []float64{v, v}, Y: v})
	}
	if _, err := Fit(samples, 0); err == nil {
		t.Error("singular system accepted without ridge")
	}
	if _, err := Fit(samples, 1e-6); err != nil {
		t.Errorf("ridge failed to regularise singular system: %v", err)
	}
}

func TestPredictPanicsOnDimMismatch(t *testing.T) {
	m, _ := Fit(linearSamples(50, 1, 0), 0)
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong input dimension")
		}
	}()
	m.Predict([]float64{1})
}

func TestMSE(t *testing.T) {
	m, _ := Fit(linearSamples(100, 1, 0), 0)
	if got := m.MSE(linearSamples(100, 2, 0)); got > 1e-12 {
		t.Errorf("noiseless linear MSE = %g, want ≈ 0", got)
	}
	if got := m.MSE(nil); got != 0 {
		t.Errorf("MSE(nil) = %g", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m, _ := Fit(linearSamples(50, 4, 0), 0)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.6, 0.9}
	if m.Predict(x) != back.Predict(x) {
		t.Error("round trip changed predictions")
	}
	var bad Model
	if err := json.Unmarshal([]byte(`{"coef":[]}`), &bad); err == nil {
		t.Error("empty coefficient vector accepted")
	}
}

func TestPredictionInterpolatesQuick(t *testing.T) {
	m, _ := Fit(linearSamples(100, 5, 0), 0)
	f := func(a, b, c float64) bool {
		x := []float64{math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1), math.Mod(math.Abs(c), 1)}
		want := 2 + 3*x[0] - 1.5*x[1] + 0.25*x[2]
		return math.Abs(m.Predict(x)-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
