package workload

import (
	"strings"
	"testing"
)

func validPhase() PhaseProfile {
	return PhaseProfile{
		Name: "p", Instructions: 1e8, BaseIPC: 1.5,
		MemRefsPerInstr: 0.3, LoadFraction: 0.6, L1MissRate: 0.05,
		WorkingSetBytes: 1 << 20, SharingFactor: 0.2, LocalityExp: 1,
		ColdMissRate: 0.1, MLP: 2, ParallelFraction: 0.99,
		SyncCycles: 1e5, BranchRate: 0.1, BranchMissRate: 0.02,
		TLBMissRate: 0.001, PrefetchFriendly: 0.5,
	}
}

func TestPhaseValidateAccepts(t *testing.T) {
	p := validPhase()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid phase rejected: %v", err)
	}
}

func TestPhaseValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PhaseProfile)
	}{
		{"zero instructions", func(p *PhaseProfile) { p.Instructions = 0 }},
		{"negative instructions", func(p *PhaseProfile) { p.Instructions = -1 }},
		{"zero ipc", func(p *PhaseProfile) { p.BaseIPC = 0 }},
		{"huge ipc", func(p *PhaseProfile) { p.BaseIPC = 9 }},
		{"memrefs > 1", func(p *PhaseProfile) { p.MemRefsPerInstr = 1.5 }},
		{"load fraction", func(p *PhaseProfile) { p.LoadFraction = -0.1 }},
		{"l1 miss", func(p *PhaseProfile) { p.L1MissRate = 2 }},
		{"negative ws", func(p *PhaseProfile) { p.WorkingSetBytes = -1 }},
		{"sharing", func(p *PhaseProfile) { p.SharingFactor = 1.2 }},
		{"locality", func(p *PhaseProfile) { p.LocalityExp = 0 }},
		{"cold", func(p *PhaseProfile) { p.ColdMissRate = -0.2 }},
		{"mlp", func(p *PhaseProfile) { p.MLP = 0.5 }},
		{"parallel fraction", func(p *PhaseProfile) { p.ParallelFraction = 1.01 }},
		{"sync", func(p *PhaseProfile) { p.SyncCycles = -1 }},
		{"critical", func(p *PhaseProfile) { p.CriticalFraction = 2 }},
		{"branch rate", func(p *PhaseProfile) { p.BranchRate = 1.5 }},
		{"branch miss", func(p *PhaseProfile) { p.BranchMissRate = -1 }},
		{"tlb", func(p *PhaseProfile) { p.TLBMissRate = 1.5 }},
		{"prefetch", func(p *PhaseProfile) { p.PrefetchFriendly = -0.5 }},
		{"store boost", func(p *PhaseProfile) { p.StoreBandwidthBoost = -1 }},
	}
	for _, c := range cases {
		p := validPhase()
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid phase accepted", c.name)
		} else if !strings.Contains(err.Error(), "p") {
			t.Errorf("%s: error %q does not name the phase", c.name, err)
		}
	}
}

func TestBenchmarkValidate(t *testing.T) {
	b := &Benchmark{Name: "X", Iterations: 10, Phases: []PhaseProfile{validPhase()}}
	if err := b.Validate(); err != nil {
		t.Fatalf("valid benchmark rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Benchmark)
	}{
		{"empty name", func(b *Benchmark) { b.Name = "" }},
		{"no phases", func(b *Benchmark) { b.Phases = nil }},
		{"zero iterations", func(b *Benchmark) { b.Iterations = 0 }},
		{"bad phase", func(b *Benchmark) { b.Phases[0].BaseIPC = 0 }},
	}
	for _, c := range cases {
		bb := &Benchmark{Name: "X", Iterations: 10, Phases: []PhaseProfile{validPhase()}}
		c.mutate(bb)
		if err := bb.Validate(); err == nil {
			t.Errorf("%s: invalid benchmark accepted", c.name)
		}
	}
}

func TestTotalInstructions(t *testing.T) {
	b := &Benchmark{
		Name:       "X",
		Iterations: 3,
		Phases:     []PhaseProfile{validPhase(), validPhase()},
	}
	want := 2 * 1e8 * 3
	if got := b.TotalInstructions(); got != want {
		t.Errorf("TotalInstructions = %g, want %g", got, want)
	}
}

func TestPhaseNames(t *testing.T) {
	p1, p2 := validPhase(), validPhase()
	p1.Name, p2.Name = "alpha", "beta"
	b := &Benchmark{Name: "X", Iterations: 1, Phases: []PhaseProfile{p1, p2}}
	names := b.PhaseNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("PhaseNames = %v", names)
	}
}
