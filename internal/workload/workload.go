// Package workload defines the abstract application model consumed by the
// machine simulator and the ACTOR runtime.
//
// A Benchmark is a sequence of Phases executed for a number of outer
// iterations (timesteps), mirroring the structure of the OpenMP NAS Parallel
// Benchmarks the paper evaluates: each timestep executes every parallel
// region (phase) once. A PhaseProfile captures the architecture-independent
// characteristics that determine how a phase behaves at each concurrency
// level: instruction volume and mix, working-set size and locality,
// parallelisable fraction, synchronisation cost, and an "idiosyncrasy"
// term modelling application behaviour that is invisible to the hardware
// counters (the reason leave-one-out prediction cannot be perfect).
package workload

import "fmt"

// PhaseProfile describes one parallel region (the paper's unit of
// adaptation). All per-instruction quantities are rates in [0,1] unless
// noted otherwise.
type PhaseProfile struct {
	// Name identifies the phase within its benchmark, e.g. "rhs" or
	// "phase-3".
	Name string

	// Fingerprint is a globally unique phase identity (typically
	// "BENCH/phase"). The machine model derives a small deterministic
	// per-(phase, placement) response perturbation from it, modelling
	// application-specific configuration responses that no hardware
	// counter reveals — the irreducible error source for cross-application
	// prediction. Empty disables the perturbation.
	Fingerprint string

	// Instructions is the total dynamic instruction count of one execution
	// of the phase across all threads (the work is fixed; threads divide
	// it).
	Instructions float64

	// BaseIPC is the per-core IPC the phase achieves when all memory
	// accesses hit in L1 (its inherent ILP), typically 0.5–2.5 on Core-2
	// class hardware.
	BaseIPC float64

	// MemRefsPerInstr is the fraction of instructions that are loads or
	// stores.
	MemRefsPerInstr float64

	// LoadFraction is the fraction of memory references that are loads
	// (the rest are stores).
	LoadFraction float64

	// L1MissRate is the fraction of memory references that miss the
	// private L1 and are serviced by the L2 group.
	L1MissRate float64

	// WorkingSetBytes is the per-thread active data footprint competing
	// for L2 capacity when the phase runs single-threaded. When threads
	// share data, SharingFactor reduces aggregate pressure.
	WorkingSetBytes float64

	// SharingFactor in [0,1] is the fraction of the working set shared
	// between co-resident threads: 1 means fully shared (threads on one
	// L2 add no extra pressure), 0 means fully private (pressure scales
	// with thread count).
	SharingFactor float64

	// LocalityExp shapes the capacity miss curve: larger values mean the
	// phase degrades more steeply once its working set exceeds its cache
	// share. Typical range 0.4–2.0.
	LocalityExp float64

	// ColdMissRate is the floor fraction of L2 accesses that miss
	// regardless of capacity (compulsory/coherence misses).
	ColdMissRate float64

	// MLP is the memory-level parallelism of the phase: the average
	// number of outstanding misses that overlap, ≥ 1. High MLP hides
	// memory latency.
	MLP float64

	// ParallelFraction is the Amdahl fraction of the phase's work that
	// can execute concurrently.
	ParallelFraction float64

	// SyncCycles is the per-thread cycle cost of barriers and reductions
	// for one execution of the phase at two threads; it grows with the
	// logarithm of the thread count.
	SyncCycles float64

	// CriticalFraction is the fraction of parallel work serialised in
	// critical sections (lock contention grows with thread count).
	CriticalFraction float64

	// ChunkGranularity is the number of schedulable work chunks; load
	// imbalance appears when threads do not divide it evenly. Zero means
	// perfectly divisible work.
	ChunkGranularity int

	// BranchRate is branches per instruction; BranchMissRate the fraction
	// mispredicted.
	BranchRate     float64
	BranchMissRate float64

	// TLBMissRate is TLB misses per memory reference.
	TLBMissRate float64

	// PrefetchFriendly in [0,1] scales how much of the L2 miss latency
	// the hardware prefetcher hides. It is part of the benchmark's
	// idiosyncrasy: it affects performance but no counter reports it.
	PrefetchFriendly float64

	// StoreBandwidthBoost scales write-back bus traffic relative to the
	// read path (write-allocate + eviction traffic).
	StoreBandwidthBoost float64
}

// Validate reports the first implausible field value.
func (p *PhaseProfile) Validate() error {
	switch {
	case p.Instructions <= 0:
		return fmt.Errorf("phase %q: Instructions = %g", p.Name, p.Instructions)
	case p.BaseIPC <= 0 || p.BaseIPC > 4:
		return fmt.Errorf("phase %q: BaseIPC = %g out of (0,4]", p.Name, p.BaseIPC)
	case p.MemRefsPerInstr < 0 || p.MemRefsPerInstr > 1:
		return fmt.Errorf("phase %q: MemRefsPerInstr = %g", p.Name, p.MemRefsPerInstr)
	case p.LoadFraction < 0 || p.LoadFraction > 1:
		return fmt.Errorf("phase %q: LoadFraction = %g", p.Name, p.LoadFraction)
	case p.L1MissRate < 0 || p.L1MissRate > 1:
		return fmt.Errorf("phase %q: L1MissRate = %g", p.Name, p.L1MissRate)
	case p.WorkingSetBytes < 0:
		return fmt.Errorf("phase %q: WorkingSetBytes = %g", p.Name, p.WorkingSetBytes)
	case p.SharingFactor < 0 || p.SharingFactor > 1:
		return fmt.Errorf("phase %q: SharingFactor = %g", p.Name, p.SharingFactor)
	case p.LocalityExp <= 0:
		return fmt.Errorf("phase %q: LocalityExp = %g", p.Name, p.LocalityExp)
	case p.ColdMissRate < 0 || p.ColdMissRate > 1:
		return fmt.Errorf("phase %q: ColdMissRate = %g", p.Name, p.ColdMissRate)
	case p.MLP < 1:
		return fmt.Errorf("phase %q: MLP = %g < 1", p.Name, p.MLP)
	case p.ParallelFraction < 0 || p.ParallelFraction > 1:
		return fmt.Errorf("phase %q: ParallelFraction = %g", p.Name, p.ParallelFraction)
	case p.SyncCycles < 0:
		return fmt.Errorf("phase %q: SyncCycles = %g", p.Name, p.SyncCycles)
	case p.CriticalFraction < 0 || p.CriticalFraction > 1:
		return fmt.Errorf("phase %q: CriticalFraction = %g", p.Name, p.CriticalFraction)
	case p.BranchRate < 0 || p.BranchRate > 1:
		return fmt.Errorf("phase %q: BranchRate = %g", p.Name, p.BranchRate)
	case p.BranchMissRate < 0 || p.BranchMissRate > 1:
		return fmt.Errorf("phase %q: BranchMissRate = %g", p.Name, p.BranchMissRate)
	case p.TLBMissRate < 0 || p.TLBMissRate > 1:
		return fmt.Errorf("phase %q: TLBMissRate = %g", p.Name, p.TLBMissRate)
	case p.PrefetchFriendly < 0 || p.PrefetchFriendly > 1:
		return fmt.Errorf("phase %q: PrefetchFriendly = %g", p.Name, p.PrefetchFriendly)
	case p.StoreBandwidthBoost < 0:
		return fmt.Errorf("phase %q: StoreBandwidthBoost = %g", p.Name, p.StoreBandwidthBoost)
	}
	return nil
}

// Benchmark is an iterative application: each of Iterations timesteps runs
// every phase once, in order.
type Benchmark struct {
	// Name is the benchmark's identifier, e.g. "BT" or "IS".
	Name string
	// Phases are the parallel regions executed each timestep.
	Phases []PhaseProfile
	// Iterations is the number of outer timesteps.
	Iterations int
	// Idiosyncrasy perturbs the benchmark's response to concurrency in a
	// way no hardware counter captures (sync pattern, prefetch
	// friendliness, allocation layout). It is the per-application term
	// that bounds leave-one-out prediction accuracy. Range roughly
	// [-0.15, 0.15].
	Idiosyncrasy float64
}

// Validate checks the benchmark and all its phases.
func (b *Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("benchmark with empty name")
	}
	if len(b.Phases) == 0 {
		return fmt.Errorf("benchmark %q: no phases", b.Name)
	}
	if b.Iterations <= 0 {
		return fmt.Errorf("benchmark %q: Iterations = %d", b.Name, b.Iterations)
	}
	for i := range b.Phases {
		if err := b.Phases[i].Validate(); err != nil {
			return fmt.Errorf("benchmark %q: %w", b.Name, err)
		}
	}
	return nil
}

// TotalInstructions returns the dynamic instruction count of the whole run.
func (b *Benchmark) TotalInstructions() float64 {
	var t float64
	for i := range b.Phases {
		t += b.Phases[i].Instructions
	}
	return t * float64(b.Iterations)
}

// PhaseNames returns the phase names in execution order.
func (b *Benchmark) PhaseNames() []string {
	names := make([]string, len(b.Phases))
	for i := range b.Phases {
		names[i] = b.Phases[i].Name
	}
	return names
}
