package workload

import (
	"testing"
	"testing/quick"
)

func TestGenerateValidBenchmarks(t *testing.T) {
	f := func(seed int64) bool {
		b, err := Generate("X", DefaultGenConfig(seed))
		if err != nil {
			return false
		}
		return b.Validate() == nil &&
			len(b.Phases) >= 3 && len(b.Phases) <= 12 &&
			b.Iterations >= 4 && b.Iterations <= 400
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("X", DefaultGenConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate("X", DefaultGenConfig(5))
	if len(a.Phases) != len(b.Phases) || a.Iterations != b.Iterations {
		t.Fatal("same seed produced different structure")
	}
	for i := range a.Phases {
		if a.Phases[i].Instructions != b.Phases[i].Instructions {
			t.Fatal("same seed produced different phases")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate("X", DefaultGenConfig(1))
	b, _ := Generate("X", DefaultGenConfig(2))
	if a.Phases[0].Instructions == b.Phases[0].Instructions {
		t.Error("different seeds produced identical first phases")
	}
}

func TestGenerateFingerprints(t *testing.T) {
	b, _ := Generate("APP", DefaultGenConfig(9))
	seen := map[string]bool{}
	for _, p := range b.Phases {
		if p.Fingerprint == "" || seen[p.Fingerprint] {
			t.Errorf("bad fingerprint %q", p.Fingerprint)
		}
		seen[p.Fingerprint] = true
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := DefaultGenConfig(1)
	bad.MinPhases = 0
	if _, err := Generate("X", bad); err == nil {
		t.Error("zero MinPhases accepted")
	}
	bad = DefaultGenConfig(1)
	bad.MaxIterations = 1
	bad.MinIterations = 10
	if _, err := Generate("X", bad); err == nil {
		t.Error("inverted iteration range accepted")
	}
}

func TestGeneratePopulation(t *testing.T) {
	pop, err := GeneratePopulation("R", 5, DefaultGenConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 5 {
		t.Fatalf("population size %d", len(pop))
	}
	names := map[string]bool{}
	for _, b := range pop {
		if names[b.Name] {
			t.Errorf("duplicate name %q", b.Name)
		}
		names[b.Name] = true
	}
	// Population members differ from each other.
	if pop[0].Phases[0].Instructions == pop[1].Phases[0].Instructions {
		t.Error("population members identical")
	}
}
