package workload

import (
	"fmt"
	"math/rand"
)

// GenConfig bounds the random-benchmark generator.
type GenConfig struct {
	// Phases is the number of parallel regions per benchmark (range).
	MinPhases, MaxPhases int
	// Iterations is the outer timestep count (range).
	MinIterations, MaxIterations int
	// Seed drives the generator.
	Seed int64
}

// DefaultGenConfig produces applications resembling the NPB population:
// 3–12 phases, 4–400 timesteps.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		MinPhases:     3,
		MaxPhases:     12,
		MinIterations: 4,
		MaxIterations: 400,
		Seed:          seed,
	}
}

// Generate synthesises a random, valid benchmark. Phases are drawn from
// three archetypes (compute-dense, balanced, streaming/bandwidth-bound)
// with every characteristic jittered, so a generated population spans the
// behaviour space between BT-like and IS-like codes. The result always
// passes Validate.
func Generate(name string, cfg GenConfig) (*Benchmark, error) {
	if cfg.MinPhases < 1 || cfg.MaxPhases < cfg.MinPhases {
		return nil, fmt.Errorf("workload: bad phase range [%d, %d]", cfg.MinPhases, cfg.MaxPhases)
	}
	if cfg.MinIterations < 1 || cfg.MaxIterations < cfg.MinIterations {
		return nil, fmt.Errorf("workload: bad iteration range [%d, %d]", cfg.MinIterations, cfg.MaxIterations)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := func(lo, hi float64) float64 { return lo + (hi-lo)*rng.Float64() }
	intSpan := func(lo, hi int) int {
		if hi == lo {
			return lo
		}
		return lo + rng.Intn(hi-lo+1)
	}

	b := &Benchmark{
		Name:         name,
		Iterations:   intSpan(cfg.MinIterations, cfg.MaxIterations),
		Idiosyncrasy: span(-0.1, 0.1),
	}
	nPhases := intSpan(cfg.MinPhases, cfg.MaxPhases)
	for i := 0; i < nPhases; i++ {
		var p PhaseProfile
		switch rng.Intn(3) {
		case 0: // compute-dense
			p = PhaseProfile{
				BaseIPC:          span(1.3, 2.2),
				MemRefsPerInstr:  span(0.18, 0.34),
				L1MissRate:       span(0.02, 0.08),
				WorkingSetBytes:  span(0.4, 2.2) * 1024 * 1024,
				SharingFactor:    span(0.2, 0.4),
				ColdMissRate:     span(0.05, 0.18),
				MLP:              span(2, 3),
				PrefetchFriendly: span(0.4, 0.8),
			}
		case 1: // balanced
			p = PhaseProfile{
				BaseIPC:          span(1.0, 1.6),
				MemRefsPerInstr:  span(0.28, 0.42),
				L1MissRate:       span(0.06, 0.16),
				WorkingSetBytes:  span(1.5, 3.0) * 1024 * 1024,
				SharingFactor:    span(0.1, 0.35),
				ColdMissRate:     span(0.12, 0.3),
				MLP:              span(2, 4),
				PrefetchFriendly: span(0.3, 0.7),
			}
		default: // streaming / bandwidth-bound
			p = PhaseProfile{
				BaseIPC:             span(0.8, 1.2),
				MemRefsPerInstr:     span(0.42, 0.6),
				L1MissRate:          span(0.2, 0.45),
				WorkingSetBytes:     span(2.6, 3.8) * 1024 * 1024,
				SharingFactor:       span(0, 0.15),
				ColdMissRate:        span(0.2, 0.4),
				MLP:                 span(4, 12),
				PrefetchFriendly:    span(0.4, 0.85),
				StoreBandwidthBoost: span(0.4, 1.0),
			}
		}
		p.Name = fmt.Sprintf("phase-%d", i+1)
		p.Fingerprint = name + "/" + p.Name
		p.Instructions = span(5e7, 1.5e9)
		p.LoadFraction = span(0.55, 0.75)
		p.LocalityExp = span(0.7, 1.6)
		p.ParallelFraction = span(0.9, 0.998)
		p.SyncCycles = span(1e5, 2.5e6)
		p.CriticalFraction = span(0, 0.025)
		p.ChunkGranularity = 16 * (1 + rng.Intn(16))
		p.BranchRate = span(0.04, 0.12)
		p.BranchMissRate = span(0.005, 0.03)
		p.TLBMissRate = span(0.0002, 0.004)
		b.Phases = append(b.Phases, p)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid benchmark: %w", err)
	}
	return b, nil
}

// GeneratePopulation creates n random benchmarks named prefix-1..n with
// seeds derived from the base seed.
func GeneratePopulation(prefix string, n int, cfg GenConfig) ([]*Benchmark, error) {
	out := make([]*Benchmark, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1_000_003
		b, err := Generate(fmt.Sprintf("%s-%d", prefix, i+1), c)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
