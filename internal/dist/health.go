package dist

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// State is a worker's position in the coordinator's health state machine:
//
//	Joining → Ready → Suspect → Dead
//	            ↑________|
//
// Workers start Joining and become Ready on a successful /readyz probe. A
// failed request (or a not-ready probe) moves a Ready worker to Suspect;
// any success moves a Suspect worker back to Ready; DeadAfter consecutive
// failures moves it to Dead, which is terminal for the run. New shards are
// only assigned to Ready workers; Suspect and Joining workers are
// re-probed when the Ready pool empties.
type State int32

const (
	// Joining is the initial state: the worker is configured but has not
	// yet answered a readiness probe.
	Joining State = iota
	// Ready means the worker answered its latest probe or request and may
	// be assigned new shards.
	Ready
	// Suspect means the worker failed its latest request or reported
	// not-ready; it gets no new shards until a probe succeeds.
	Suspect
	// Dead means the worker accumulated DeadAfter consecutive failures;
	// it is excluded for the remainder of the run.
	Dead
)

func (s State) String() string {
	switch s {
	case Joining:
		return "joining"
	case Ready:
		return "ready"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// worker is one remote actord the coordinator can assign shards to.
type worker struct {
	url string

	mu          sync.Mutex
	state       State
	consecFails int
	inflight    int
	// deadAfter is the consecutive-failure budget before Dead (from
	// Options.DeadAfter).
	deadAfter int
}

// snapshot returns the worker's current state.
func (w *worker) snapshot() State {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// markSuccess records a successful request or probe: the worker is Ready
// again whatever it was (Dead stays Dead — a run-terminal verdict keeps
// the scheduler from flapping on a worker that already burned its budget).
func (w *worker) markSuccess() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state == Dead {
		return
	}
	w.state = Ready
	w.consecFails = 0
}

// markFailure records a failed request or probe and advances the state
// machine: Ready (or Joining) degrades to Suspect, and deadAfter
// consecutive failures degrade to Dead.
func (w *worker) markFailure() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state == Dead {
		return
	}
	w.consecFails++
	if w.consecFails >= w.deadAfter {
		w.state = Dead
		return
	}
	w.state = Suspect
}

// acquire / release track in-flight assignments for least-loaded picking.
func (w *worker) acquire() {
	w.mu.Lock()
	w.inflight++
	w.mu.Unlock()
}

func (w *worker) release() {
	w.mu.Lock()
	w.inflight--
	w.mu.Unlock()
}

// load returns (state, inflight) atomically for scheduling decisions.
func (w *worker) loadSnapshot() (State, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state, w.inflight
}

// probe hits the worker's /readyz and advances the state machine with the
// outcome. A 503 (draining, saturated, loading) counts as a failure — the
// worker is alive but must not be handed work.
func (c *Coordinator) probe(ctx context.Context, w *worker) bool {
	pctx, cancel := context.WithTimeout(ctx, c.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.url+"/readyz", nil)
	if err != nil {
		w.markFailure()
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		w.markFailure()
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.markFailure()
		return false
	}
	w.markSuccess()
	return true
}

func (c *Coordinator) probeTimeout() time.Duration {
	if t := c.opts.Timeout; t > 0 && t < 2*time.Second {
		return t
	}
	return 2 * time.Second
}

// probeAll probes every non-Dead worker and returns how many are Ready.
func (c *Coordinator) probeAll(ctx context.Context) int {
	ready := 0
	for _, w := range c.workers {
		if w.snapshot() == Dead {
			continue
		}
		if c.probe(ctx, w) {
			ready++
		}
	}
	return ready
}

// WorkerStatus is one worker's terminal health report.
type WorkerStatus struct {
	URL   string
	State State
}

// WorkerStates reports each configured worker's current state, in
// configuration order.
func (c *Coordinator) WorkerStates() []WorkerStatus {
	out := make([]WorkerStatus, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerStatus{URL: w.url, State: w.snapshot()}
	}
	return out
}
