// Package dist is the fault-tolerant distributed sweep coordinator: it
// partitions an engine's canonical sweep workload into shards, fans the
// shards out to actord workers over /v1/eval, and merges the results in
// canonical shard order so a distributed run is byte-identical to the
// in-process run regardless of worker count, arrival order, retries,
// hedges or duplicate deliveries.
//
// Failure is a first-class input. Every request runs under a per-attempt
// timeout; a failed attempt backs off (exponential + seeded jitter, the
// internal/parallel seed-derivation discipline) and reassigns the shard to
// a different worker; stragglers are hedged — the slowest in-flight shard
// is duplicated on a second worker after a p99-derived delay, first
// response wins, the duplicate is discarded by shard fingerprint. Worker
// health follows a joining → ready → suspect → dead state machine driven
// by /readyz probes and consecutive-failure counts. The run completes with
// partial workers, and with zero live workers every remaining shard falls
// back to in-process evaluation with a warning.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/pkg/actor"
)

// Options configure a Coordinator. The zero value of every field has a
// production-sane default.
type Options struct {
	// Workers are the base URLs of the actord workers ("http://host:7690").
	// Empty means no distribution: the run evaluates in-process.
	Workers []string
	// Client issues the HTTP requests. Wrap its Transport with
	// faultinject.New to test failure schedules. Defaults to a private
	// client (so fault injection never leaks into other subsystems).
	Client *http.Client
	// Timeout bounds each attempt (default 15s).
	Timeout time.Duration
	// Retries is how many times a failed shard is reassigned before it
	// falls back to in-process evaluation (default 3).
	Retries int
	// BackoffBase/BackoffMax shape the exponential backoff between a
	// shard's attempts (defaults 25ms base, 1s cap); the jitter stream is
	// derived per shard with parallel.SeedFor, so schedules are
	// reproducible for a given Seed.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeFloor is the minimum straggler delay before a hedge fires
	// (default 250ms). Once ≥5 shards have completed, the delay becomes
	// max(HedgeFloor, 2×p99 of completed-shard latencies).
	HedgeFloor time.Duration
	// ShardUnits is how many (benchmark, phase) units each shard carries
	// (default 1 — finest recovery granularity).
	ShardUnits int
	// MaxInFlight caps concurrently outstanding shards (default
	// 2×len(Workers), min 4).
	MaxInFlight int
	// DeadAfter is the consecutive-failure count that moves a worker from
	// suspect to dead (default 3).
	DeadAfter int
	// Seed drives backoff jitter (default: the engine's platform seed).
	// It never influences results — only scheduling.
	Seed int64
	// Logf receives warnings (degradation, fallbacks); nil discards them.
	Logf func(format string, args ...any)
}

// Stats counts what the fault-tolerance machinery actually did during a
// Run; read it after Run returns.
type Stats struct {
	// Shards is the partition size of the last Run.
	Shards int
	// Remote counts shards answered by a worker; Local counts shards that
	// fell back to in-process evaluation.
	Remote, Local int
	// Retries counts failed attempts that were reassigned; Hedges counts
	// straggler duplicates launched; HedgeWins counts hedges whose
	// response arrived first.
	Retries, Hedges, HedgeWins int
}

// Coordinator fans a sweep out to workers and merges the results
// deterministically. Create with New; a Coordinator is good for one Run at
// a time.
type Coordinator struct {
	eng     *actor.Engine
	opts    Options
	client  *http.Client
	workers []*worker

	lat latencies

	remote, local, retries, hedges, hedgeWins atomic.Int64
}

// New builds a Coordinator over the engine whose platform identity
// (topology descriptor + seed) every worker must match. The engine is also
// the in-process fallback evaluator, so a Coordinator always completes its
// run — with no workers at all it degrades to a plain local sweep.
func New(eng *actor.Engine, opts Options) *Coordinator {
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.Retries <= 0 {
		opts.Retries = 3
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 25 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = time.Second
	}
	if opts.HedgeFloor <= 0 {
		opts.HedgeFloor = 250 * time.Millisecond
	}
	if opts.ShardUnits <= 0 {
		opts.ShardUnits = 1
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2 * len(opts.Workers)
		if opts.MaxInFlight < 4 {
			opts.MaxInFlight = 4
		}
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 3
	}
	if opts.Seed == 0 {
		opts.Seed = eng.Seed()
	}
	c := &Coordinator{eng: eng, opts: opts, client: opts.Client}
	if c.client == nil {
		c.client = &http.Client{}
	}
	for _, url := range opts.Workers {
		c.workers = append(c.workers, &worker{url: url, deadAfter: opts.DeadAfter})
	}
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Stats returns the counters of the completed Run.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Shards:    int(c.remote.Load() + c.local.Load()),
		Remote:    int(c.remote.Load()),
		Local:     int(c.local.Load()),
		Retries:   int(c.retries.Load()),
		Hedges:    int(c.hedges.Load()),
		HedgeWins: int(c.hedgeWins.Load()),
	}
}

// Partition splits the unit list into shards of at most size units each,
// preserving canonical order: shard i covers units[i*size : (i+1)*size].
func Partition(units []actor.SweepRequest, size int) [][]actor.SweepRequest {
	if size <= 0 {
		size = 1
	}
	var shards [][]actor.SweepRequest
	for start := 0; start < len(units); start += size {
		end := start + size
		if end > len(units) {
			end = len(units)
		}
		shards = append(shards, units[start:end])
	}
	return shards
}

// Run evaluates the engine's full canonical workload (Engine.Workload)
// across the configured workers and returns the merged per-phase sweeps in
// canonical order — byte-identical to evaluating every unit in-process,
// whatever the fault schedule. Run returns an error only when ctx is
// cancelled or the in-process fallback itself fails.
func (c *Coordinator) Run(ctx context.Context) ([]actor.PhaseSweep, error) {
	units := c.eng.Workload()
	shards := Partition(units, c.opts.ShardUnits)
	if len(c.workers) == 0 {
		c.logf("dist: no workers configured; evaluating all %d shards in-process", len(shards))
		return c.runAllLocal(ctx, shards)
	}
	if ready := c.probeAll(ctx); ready == 0 {
		c.logf("dist: none of the %d workers is ready; continuing — shards will retry and fall back in-process", len(c.workers))
	}

	// Index-addressed result slots (the parallel package's determinism
	// discipline): merge order is fixed by shard index, never by arrival.
	results := make([][]actor.PhaseSweep, len(shards))
	errs := make([]error, len(shards))
	sem := make(chan struct{}, c.opts.MaxInFlight)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			results[i], errs[i] = c.runShard(ctx, i, shards[i])
		}(i)
	}
	wg.Wait()
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	var out []actor.PhaseSweep
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// runAllLocal is total degradation: every shard evaluated in-process.
func (c *Coordinator) runAllLocal(ctx context.Context, shards [][]actor.SweepRequest) ([]actor.PhaseSweep, error) {
	var out []actor.PhaseSweep
	for i, units := range shards {
		sweeps, err := c.evalLocal(ctx, units)
		if err != nil {
			return nil, fmt.Errorf("dist: local evaluation of shard %d: %w", i, err)
		}
		out = append(out, sweeps...)
	}
	return out, nil
}

func (c *Coordinator) evalLocal(ctx context.Context, units []actor.SweepRequest) ([]actor.PhaseSweep, error) {
	var out []actor.PhaseSweep
	for _, u := range units {
		sweeps, err := c.eng.Sweep(ctx, u)
		if err != nil {
			return nil, err
		}
		out = append(out, sweeps...)
	}
	c.local.Add(1)
	return out, nil
}

// runShard drives one shard to completion: assign → (hedge) → retry on
// another worker with backoff → in-process fallback. It only errors when
// ctx is cancelled or the local fallback fails.
func (c *Coordinator) runShard(ctx context.Context, idx int, units []actor.SweepRequest) ([]actor.PhaseSweep, error) {
	req := &actor.EvalRequest{
		Topology:    c.eng.TopologyDesc(),
		Seed:        c.eng.Seed(),
		BankVersion: actor.BankVersion,
		Units:       units,
	}
	req.Shard = actor.ShardSpec{Index: idx, Total: 0, Fingerprint: req.Fingerprint()}
	rng := parallel.Rand(c.opts.Seed, fmt.Sprintf("dist-shard-%d", idx))
	var last *worker
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := c.pickWorker(ctx, last)
		if w == nil {
			break // no live workers left: fall through to local
		}
		sweeps, err := c.callHedged(ctx, w, req)
		if err == nil {
			c.remote.Add(1)
			return sweeps, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.retries.Add(1)
		c.logf("dist: shard %d attempt %d on %s failed: %v", idx, attempt, w.url, err)
		last = w
		// Exponential backoff with full jitter from the shard's own seeded
		// stream: retry schedules are reproducible and never synchronized
		// across shards.
		d := c.opts.BackoffBase << attempt
		if d > c.opts.BackoffMax {
			d = c.opts.BackoffMax
		}
		d = time.Duration(rng.Int63n(int64(d) + 1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c.logf("dist: shard %d exhausted its workers; degrading to in-process evaluation", idx)
	return c.evalLocal(ctx, units)
}

// pickWorker returns the least-loaded Ready worker, excluding the one that
// just failed the shard when any alternative exists. When no worker is
// Ready it re-probes every Joining/Suspect worker once and tries again;
// nil means the run should degrade.
func (c *Coordinator) pickWorker(ctx context.Context, exclude *worker) *worker {
	for probes := 0; ; probes++ {
		var best *worker
		bestLoad := 0
		var fallback *worker // the excluded worker, if it is the only Ready one
		for _, w := range c.workers {
			st, load := w.loadSnapshot()
			if st != Ready {
				continue
			}
			if w == exclude {
				fallback = w
				continue
			}
			if best == nil || load < bestLoad {
				best, bestLoad = w, load
			}
		}
		if best == nil {
			best = fallback
		}
		if best != nil {
			return best
		}
		if probes > 0 || c.probeAll(ctx) == 0 {
			return nil
		}
	}
}

// callHedged issues the shard to w, and — if the response stays in flight
// past the straggler delay — duplicates it on a second worker. The first
// successful response wins; a response whose fingerprint does not match
// the shard is discarded as corrupt. Worker health is updated per outcome.
func (c *Coordinator) callHedged(ctx context.Context, w *worker, req *actor.EvalRequest) ([]actor.PhaseSweep, error) {
	type outcome struct {
		w      *worker
		sweeps []actor.PhaseSweep
		err    error
		took   time.Duration
	}
	resc := make(chan outcome, 2) // buffered: a losing call never blocks
	call := func(cw *worker) {
		cw.acquire()
		defer cw.release()
		start := time.Now()
		sweeps, err := c.callEval(ctx, cw, req)
		resc <- outcome{w: cw, sweeps: sweeps, err: err, took: time.Since(start)}
	}
	go call(w)
	inflight := 1
	var hedgeWorker *worker
	hedgeTimer := time.NewTimer(c.hedgeDelay())
	defer hedgeTimer.Stop()
	var firstErr error
	for {
		select {
		case o := <-resc:
			inflight--
			if o.err == nil {
				o.w.markSuccess()
				c.lat.add(o.took)
				if o.w == hedgeWorker {
					c.hedgeWins.Add(1)
				}
				// A slower duplicate response is simply never read: the
				// channel is buffered and the shard is keyed by fingerprint,
				// so re-delivery cannot double-count.
				return o.sweeps, nil
			}
			if ctx.Err() == nil { // a cancelled run is not the worker's fault
				o.w.markFailure()
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-hedgeTimer.C:
			if hedgeWorker != nil {
				continue
			}
			if w2 := c.pickWorker(ctx, w); w2 != nil && w2 != w {
				hedgeWorker = w2
				inflight++
				c.hedges.Add(1)
				go call(w2)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// hedgeDelay derives the straggler threshold: 2× the p99 of completed
// shard latencies once enough samples exist, floored at HedgeFloor.
func (c *Coordinator) hedgeDelay() time.Duration {
	if p99, ok := c.lat.p99(); ok {
		if d := 2 * p99; d > c.opts.HedgeFloor {
			return d
		}
	}
	return c.opts.HedgeFloor
}

// maxResponseBody bounds how much of a worker reply the coordinator will
// buffer (a full-suite shard response is well under 1 MiB).
const maxResponseBody = 64 << 20

// callEval is one HTTP attempt: POST the shard, read the body fully,
// verify status, shape and fingerprint. Any mismatch — transport error,
// non-200, truncated or corrupt JSON, wrong fingerprint, wrong row count —
// is a retryable failure.
func (c *Coordinator) callEval(ctx context.Context, w *worker, req *actor.EvalRequest) ([]actor.PhaseSweep, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, w.url+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	if err != nil {
		return nil, fmt.Errorf("reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := string(data)
		if len(msg) > 200 {
			msg = msg[:200] + "..."
		}
		return nil, fmt.Errorf("worker answered %s: %s", resp.Status, msg)
	}
	var er actor.EvalResponse
	if err := json.Unmarshal(data, &er); err != nil {
		return nil, fmt.Errorf("corrupt response body: %w", err)
	}
	if er.Fingerprint != req.Shard.Fingerprint {
		return nil, fmt.Errorf("response fingerprint %q does not match shard %q", er.Fingerprint, req.Shard.Fingerprint)
	}
	if len(er.Sweeps) != len(req.Units) {
		return nil, fmt.Errorf("response has %d sweeps for %d units", len(er.Sweeps), len(req.Units))
	}
	return er.Sweeps, nil
}

// latencies tracks completed-shard round-trip times for the p99-derived
// hedge delay.
type latencies struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.mu.Unlock()
}

// p99 returns the 99th-percentile sample; ok is false until ≥5 samples
// exist (too few to call anything a straggler).
func (l *latencies) p99() (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) < 5 {
		return 0, false
	}
	sorted := make([]time.Duration, len(l.samples))
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)*99/100], true
}
