package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFromEnv(t *testing.T) {
	if tr, err := FromEnv(http.DefaultTransport, ""); err != nil || tr != http.DefaultTransport {
		t.Fatalf("empty value should return base unchanged (err %v)", err)
	}
	tr, err := FromEnv(nil, "drop=0.25,delay=0.5,delayfor=20ms,err500=0.1,truncate=0.2,seed=9,kill=http://h:1@4")
	if err != nil {
		t.Fatal(err)
	}
	ft, ok := tr.(*Transport)
	if !ok {
		t.Fatalf("FromEnv returned %T", tr)
	}
	want := Schedule{Drop: 0.25, Delay: 0.5, DelayFor: 20 * time.Millisecond, Err500: 0.1,
		Truncate: 0.2, Seed: 9, KillURL: "http://h:1", KillAfter: 4}
	if ft.s != want {
		t.Errorf("parsed schedule %+v, want %+v", ft.s, want)
	}
	for _, bad := range []string{"drop", "drop=x", "nope=1", "kill=hostonly", "delayfor=5"} {
		if _, err := FromEnv(nil, bad); err == nil {
			t.Errorf("FromEnv(%q) should fail", bad)
		}
	}
}

func TestInjectedFaults(t *testing.T) {
	var served int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, `{"answer":"a perfectly well-formed body"}`)
	}))
	defer ts.Close()

	t.Run("drop-all", func(t *testing.T) {
		c := &http.Client{Transport: New(nil, Schedule{Drop: 1, Seed: 3})}
		if _, err := c.Get(ts.URL); err == nil || !strings.Contains(err.Error(), "connection drop") {
			t.Fatalf("want injected drop, got %v", err)
		}
	})
	t.Run("err500-all", func(t *testing.T) {
		c := &http.Client{Transport: New(nil, Schedule{Err500: 1, Seed: 3})}
		before := served
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
		if served != before {
			t.Error("synthetic 500 should not reach the server")
		}
	})
	t.Run("truncate-all", func(t *testing.T) {
		c := &http.Client{Transport: New(nil, Schedule{Truncate: 1, Seed: 3})}
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != len(`{"answer":"a perfectly well-formed body"}`)/2 {
			t.Fatalf("body not halved: %d bytes %q", len(data), data)
		}
	})
	t.Run("kill-after", func(t *testing.T) {
		tr := New(nil, Schedule{KillURL: ts.URL, KillAfter: 2, Seed: 3})
		c := &http.Client{Transport: tr}
		for i := 0; i < 2; i++ {
			resp, err := c.Get(ts.URL)
			if err != nil {
				t.Fatalf("request %d before the kill threshold failed: %v", i, err)
			}
			resp.Body.Close()
		}
		if _, err := c.Get(ts.URL); err == nil || !strings.Contains(err.Error(), "worker kill") {
			t.Fatalf("want injected kill, got %v", err)
		}
		// Probes share the worker's fate.
		if _, err := c.Get(ts.URL + "/readyz"); err == nil || !strings.Contains(err.Error(), "worker kill") {
			t.Fatalf("probe to killed worker should fail, got %v", err)
		}
		if _, _, _, _, kills := tr.Counts(); kills != 2 {
			t.Errorf("kills = %d, want 2", kills)
		}
	})
	t.Run("probes-exempt-from-probabilistic-faults", func(t *testing.T) {
		mux := http.NewServeMux()
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "ok") })
		ps := httptest.NewServer(mux)
		defer ps.Close()
		c := &http.Client{Transport: New(nil, Schedule{Drop: 1, Err500: 1, Truncate: 1, Seed: 3})}
		resp, err := c.Get(ps.URL + "/readyz")
		if err != nil {
			t.Fatalf("probe should bypass probabilistic faults: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe status %d", resp.StatusCode)
		}
	})
}

// TestDeterministicStream: the same schedule replays the same fault
// decisions for the same request sequence.
func TestDeterministicStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	run := func() []bool {
		c := &http.Client{Transport: New(nil, Schedule{Drop: 0.5, Seed: 42})}
		var outcomes []bool
		for i := 0; i < 32; i++ {
			resp, err := c.Get(ts.URL)
			if err == nil {
				resp.Body.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault stream diverged at request %d", i)
		}
	}
}
