// Package faultinject wraps an http.RoundTripper with a deterministic
// fault schedule: dropped connections, injected latency, synthetic 5xx
// responses, truncated bodies and mid-run worker kills. It exists so the
// dist coordinator's failure handling is tested against every failure
// mode it claims to survive — the property tests assert the merged sweep
// stays bit-identical to the in-process run under every schedule — and so
// the same schedules can be switched on from the environment
// (ACTOR_FAULTS) for end-to-end runs without recompiling.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/greenhpc/actor/internal/parallel"
)

// Schedule describes which faults to inject and how often. Probabilities
// are in [0,1] and are evaluated independently per request from a seeded
// stream, so a given (Schedule, request order) replays the same faults.
type Schedule struct {
	// Drop is the probability a request never reaches the server (the
	// client sees a transport error).
	Drop float64
	// Delay is the probability a request is held for DelayFor before being
	// forwarded (straggler injection; triggers hedging).
	Delay    float64
	DelayFor time.Duration
	// Err500 is the probability the client receives a synthetic 500
	// without the request reaching the server.
	Err500 float64
	// Truncate is the probability a response body is cut in half mid-byte
	// (the client sees corrupt JSON).
	Truncate float64
	// KillURL, when non-empty, marks the worker whose URL prefix matches
	// as killed after KillAfter requests have been issued to it: every
	// later request errors, simulating a worker dying mid-run.
	KillURL   string
	KillAfter int
	// Seed drives the fault stream (0 means 1).
	Seed int64
}

// Transport injects the schedule's faults around a base RoundTripper.
type Transport struct {
	base http.RoundTripper
	s    Schedule

	mu        sync.Mutex
	rng       interface{ Float64() float64 }
	killCount int

	drops, delays, errs, truncs, kills int
}

// New wraps base (nil means http.DefaultTransport) with the schedule.
func New(base http.RoundTripper, s Schedule) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return &Transport{base: base, s: s, rng: parallel.Rand(seed, "faultinject")}
}

// Counts reports how many faults of each kind were injected, for test
// assertions that a schedule actually exercised its failure modes.
func (t *Transport) Counts() (drops, delays, errs, truncs, kills int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops, t.delays, t.errs, t.truncs, t.kills
}

type injectedError struct{ kind, target string }

func (e *injectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s for %s", e.kind, e.target)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	url := req.URL.String()

	t.mu.Lock()
	// Health probes are exempt from the probabilistic faults (they share
	// the worker's fate for kills): the schedules target the data path,
	// and starving /readyz of all successes would only test total outage,
	// which has its own explicit schedule.
	probe := strings.HasSuffix(req.URL.Path, "/readyz")
	killed := false
	if t.s.KillURL != "" && strings.HasPrefix(url, t.s.KillURL) {
		if !probe {
			t.killCount++
		}
		if t.killCount > t.s.KillAfter {
			killed = true
			t.kills++
		}
	}
	var drop, delay, err500, trunc bool
	if !probe && !killed {
		drop = t.rng.Float64() < t.s.Drop
		delay = t.rng.Float64() < t.s.Delay
		err500 = t.rng.Float64() < t.s.Err500
		trunc = t.rng.Float64() < t.s.Truncate
		switch {
		case drop:
			t.drops++
		case err500:
			t.errs++
		}
		if delay {
			t.delays++
		}
		if trunc && !drop && !err500 {
			t.truncs++
		}
	}
	t.mu.Unlock()

	if killed {
		return nil, &injectedError{kind: "worker kill", target: url}
	}
	if delay {
		d := t.s.DelayFor
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if drop {
		return nil, &injectedError{kind: "connection drop", target: url}
	}
	if err500 {
		return &http.Response{
			Status:     "500 Internal Server Error",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("faultinject: injected 500\n")),
			Request: req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || !trunc {
		return resp, err
	}
	// Truncation: read the real body, hand back only the first half.
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	cut := data[:len(data)/2]
	resp.Body = io.NopCloser(bytes.NewReader(cut))
	resp.ContentLength = int64(len(cut))
	resp.Header.Set("Content-Length", strconv.Itoa(len(cut)))
	return resp, nil
}

// FromEnv parses the ACTOR_FAULTS environment value into a schedule and
// wraps base when it is non-empty. The grammar is comma-separated
// key=value pairs:
//
//	drop=0.2,delay=0.3,delayfor=20ms,err500=0.1,truncate=0.1,seed=7,kill=http://host:port@5
//
// An empty value returns base unchanged; a malformed value is an error (a
// fault schedule that silently fails to parse would "pass" every test).
func FromEnv(base http.RoundTripper, value string) (http.RoundTripper, error) {
	if value == "" {
		return base, nil
	}
	var s Schedule
	for _, field := range strings.Split(value, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: malformed field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "drop":
			s.Drop, err = strconv.ParseFloat(val, 64)
		case "delay":
			s.Delay, err = strconv.ParseFloat(val, 64)
		case "delayfor":
			s.DelayFor, err = time.ParseDuration(val)
		case "err500":
			s.Err500, err = strconv.ParseFloat(val, 64)
		case "truncate":
			s.Truncate, err = strconv.ParseFloat(val, 64)
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "kill":
			target, after, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("faultinject: kill wants url@requestCount, got %q", val)
			}
			s.KillURL = target
			s.KillAfter, err = strconv.Atoi(after)
		default:
			return nil, fmt.Errorf("faultinject: unknown fault %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: parsing %s: %w", key, err)
		}
	}
	return New(base, s), nil
}
