package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/greenhpc/actor/internal/dist/faultinject"
	"github.com/greenhpc/actor/pkg/actor"
)

// The distributed tests share one trained bank (training dominates the
// cost); every worker and coordinator rebuilds its own engine from the
// encoded bank, exactly as distinct processes would.
var (
	fixOnce  sync.Once
	fixBytes []byte
	fixErr   error
)

func bankBytes(t *testing.T) []byte {
	t.Helper()
	fixOnce.Do(func() {
		eng, err := actor.New(actor.WithFast(), actor.WithRepetitions(1), actor.WithMLR())
		if err != nil {
			fixErr = err
			return
		}
		bank, err := eng.Train(context.Background())
		if err != nil {
			fixErr = err
			return
		}
		fixBytes, fixErr = bank.Encode()
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixBytes
}

func newEngine(t *testing.T) *actor.Engine {
	t.Helper()
	bank, err := actor.DecodeBank(bankBytes(t))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := actor.ForBank(bank)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// newWorkers starts n independent actord-equivalent workers and returns
// their base URLs.
func newWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv, err := actor.NewServer(newEngine(t))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// localJSON is the single-process reference: the canonical workload
// evaluated in-process and JSON-encoded — the bytes every distributed run
// must reproduce exactly.
func localJSON(t *testing.T, eng *actor.Engine) []byte {
	t.Helper()
	var out []actor.PhaseSweep
	for _, u := range eng.Workload() {
		sweeps, err := eng.Sweep(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sweeps...)
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func runJSON(t *testing.T, c *Coordinator) []byte {
	t.Helper()
	sweeps, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sweeps)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPartition(t *testing.T) {
	units := make([]actor.SweepRequest, 7)
	for i := range units {
		units[i] = actor.SweepRequest{Bench: fmt.Sprintf("B%d", i)}
	}
	shards := Partition(units, 3)
	if len(shards) != 3 || len(shards[0]) != 3 || len(shards[2]) != 1 {
		t.Fatalf("partition shapes: %d shards, sizes %d/%d/%d", len(shards), len(shards[0]), len(shards[1]), len(shards[2]))
	}
	// Canonical order is preserved across the shard boundary.
	i := 0
	for _, sh := range shards {
		for _, u := range sh {
			if u.Bench != units[i].Bench {
				t.Fatalf("unit %d reordered: %q", i, u.Bench)
			}
			i++
		}
	}
}

func TestShardFingerprint(t *testing.T) {
	units := []actor.SweepRequest{{Bench: "SP", Phases: []string{"x_solve"}}}
	fp := actor.ShardFingerprint("", 42, units)
	if fp != actor.ShardFingerprint("", 42, units) {
		t.Fatal("fingerprint is not stable")
	}
	if fp == actor.ShardFingerprint("", 43, units) {
		t.Error("seed does not alter the fingerprint")
	}
	if fp == actor.ShardFingerprint("16x2", 42, units) {
		t.Error("topology does not alter the fingerprint")
	}
	if fp == actor.ShardFingerprint("", 42, []actor.SweepRequest{{Bench: "SP", Phases: []string{"rhs"}}}) {
		t.Error("units do not alter the fingerprint")
	}
}

func TestDistributedMatchesLocal(t *testing.T) {
	eng := newEngine(t)
	want := localJSON(t, eng)
	c := New(eng, Options{Workers: newWorkers(t, 3), Logf: t.Logf})
	got := runJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("distributed run is not byte-identical to the in-process run")
	}
	st := c.Stats()
	if st.Local != 0 || st.Remote != st.Shards || st.Shards == 0 {
		t.Errorf("healthy fleet should answer every shard remotely: %+v", st)
	}
	for _, ws := range c.WorkerStates() {
		if ws.State != Ready {
			t.Errorf("worker %s ended %s, want ready", ws.URL, ws.State)
		}
	}
}

// TestFaultSchedules is the robustness acceptance property: under every
// injected failure schedule — drops, delays (forcing hedges), 5xxs,
// truncated bodies, a worker killed mid-run, and all of them at once —
// the merged result stays bit-identical to the in-process run.
func TestFaultSchedules(t *testing.T) {
	eng := newEngine(t)
	want := localJSON(t, eng)
	schedules := []struct {
		name  string
		s     faultinject.Schedule
		opts  Options
		check func(t *testing.T, tr *faultinject.Transport, c *Coordinator)
	}{
		{
			name: "drops",
			s:    faultinject.Schedule{Drop: 0.3, Seed: 7},
			check: func(t *testing.T, tr *faultinject.Transport, c *Coordinator) {
				if d, _, _, _, _ := tr.Counts(); d == 0 {
					t.Error("schedule injected no drops")
				}
				if c.Stats().Retries == 0 {
					t.Error("drops caused no retries")
				}
			},
		},
		{
			name: "stragglers-hedged",
			s:    faultinject.Schedule{Delay: 0.5, DelayFor: 60 * time.Millisecond, Seed: 11},
			opts: Options{HedgeFloor: 5 * time.Millisecond},
			check: func(t *testing.T, tr *faultinject.Transport, c *Coordinator) {
				if c.Stats().Hedges == 0 {
					t.Error("stragglers triggered no hedges")
				}
			},
		},
		{
			name: "server-errors",
			s:    faultinject.Schedule{Err500: 0.4, Seed: 13},
			check: func(t *testing.T, tr *faultinject.Transport, c *Coordinator) {
				if _, _, e, _, _ := tr.Counts(); e == 0 {
					t.Error("schedule injected no 500s")
				}
			},
		},
		{
			name: "truncated-bodies",
			s:    faultinject.Schedule{Truncate: 0.4, Seed: 17},
			check: func(t *testing.T, tr *faultinject.Transport, c *Coordinator) {
				if _, _, _, tc, _ := tr.Counts(); tc == 0 {
					t.Error("schedule truncated no bodies")
				}
			},
		},
		{
			name: "everything-at-once",
			s: faultinject.Schedule{Drop: 0.15, Delay: 0.2, DelayFor: 30 * time.Millisecond,
				Err500: 0.15, Truncate: 0.15, Seed: 23},
			opts: Options{HedgeFloor: 10 * time.Millisecond, Retries: 5},
		},
	}
	for _, tc := range schedules {
		t.Run(tc.name, func(t *testing.T) {
			workers := newWorkers(t, 3)
			tr := faultinject.New(nil, tc.s)
			opts := tc.opts
			opts.Workers = workers
			opts.Client = &http.Client{Transport: tr}
			opts.Logf = t.Logf
			c := New(eng, opts)
			got := runJSON(t, c)
			if string(got) != string(want) {
				t.Fatalf("schedule %s broke bit-identity", tc.name)
			}
			if tc.check != nil {
				tc.check(t, tr, c)
			}
		})
	}
}

// TestWorkerKilledMidRun kills one worker after its first two data
// requests: its remaining shards must be reassigned, the result must stay
// identical, and the worker must end in the dead state.
func TestWorkerKilledMidRun(t *testing.T) {
	eng := newEngine(t)
	want := localJSON(t, eng)
	workers := newWorkers(t, 3)
	tr := faultinject.New(nil, faultinject.Schedule{KillURL: workers[1], KillAfter: 2, Seed: 5})
	c := New(eng, Options{
		Workers: workers,
		Client:  &http.Client{Transport: tr},
		Logf:    t.Logf,
	})
	got := runJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("worker kill broke bit-identity")
	}
	states := c.WorkerStates()
	// The killed worker must have been taken out of rotation. Whether it
	// ends suspect or dead depends on how many attempts were already in
	// flight when it died (a suspect worker gets no new traffic, so it may
	// never accumulate the full consecutive-failure budget).
	if states[1].State == Ready || states[1].State == Joining {
		t.Errorf("killed worker ended %s, want suspect or dead", states[1].State)
	}
	if states[0].State != Ready || states[2].State != Ready {
		t.Errorf("surviving workers ended %s/%s, want ready", states[0].State, states[2].State)
	}
}

// TestDuplicateShardDelivery re-posts every shard a second time straight at
// a worker: the re-delivery must be answered (idempotently) with the exact
// same bytes.
func TestDuplicateShardDelivery(t *testing.T) {
	eng := newEngine(t)
	url := newWorkers(t, 1)[0]
	units := eng.Workload()
	for _, shard := range Partition(units[:4], 2) {
		req := actor.EvalRequest{
			Topology:    eng.TopologyDesc(),
			Seed:        eng.Seed(),
			BankVersion: actor.BankVersion,
			Units:       shard,
		}
		req.Shard.Fingerprint = req.Fingerprint()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var deliveries [2]string
		for i := range deliveries {
			resp, err := http.Post(url+"/v1/eval", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Fatal(err)
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			deliveries[i] = string(data)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("delivery %d: %d %s", i, resp.StatusCode, deliveries[i])
			}
		}
		if deliveries[0] != deliveries[1] {
			t.Fatal("re-delivered shard answered different bytes")
		}
	}
}

// TestZeroWorkers: a coordinator with no workers at all completes the run
// in-process with a warning — never an error.
func TestZeroWorkers(t *testing.T) {
	eng := newEngine(t)
	want := localJSON(t, eng)
	var warnings []string
	var mu sync.Mutex
	c := New(eng, Options{Logf: func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	got := runJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("zero-worker fallback is not byte-identical")
	}
	st := c.Stats()
	if st.Remote != 0 || st.Local != st.Shards {
		t.Errorf("zero-worker run should be fully local: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(warnings) == 0 || !strings.Contains(warnings[0], "no workers") {
		t.Errorf("degradation did not warn: %q", warnings)
	}
}

// TestAllWorkersDead: every configured worker refuses connections; the run
// degrades to in-process evaluation and still matches.
func TestAllWorkersDead(t *testing.T) {
	eng := newEngine(t)
	want := localJSON(t, eng)
	// Claim-then-close gives ports that are actually dead.
	dead := make([]string, 2)
	for i := range dead {
		ts := httptest.NewServer(http.NotFoundHandler())
		dead[i] = ts.URL
		ts.Close()
	}
	c := New(eng, Options{
		Workers: dead,
		Timeout: 2 * time.Second,
		Retries: 2,
		Logf:    t.Logf,
	})
	got := runJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("total-outage fallback is not byte-identical")
	}
	st := c.Stats()
	if st.Remote != 0 || st.Local != st.Shards {
		t.Errorf("total outage should answer every shard locally: %+v", st)
	}
}

// TestWorkerStateMachine drives the transitions directly:
// joining → ready → suspect → ready → suspect → dead.
func TestWorkerStateMachine(t *testing.T) {
	w := &worker{url: "http://x", deadAfter: 3}
	if got := w.snapshot(); got != Joining {
		t.Fatalf("initial state %s, want joining", got)
	}
	w.markSuccess()
	if got := w.snapshot(); got != Ready {
		t.Fatalf("after success: %s, want ready", got)
	}
	w.markFailure()
	if got := w.snapshot(); got != Suspect {
		t.Fatalf("after one failure: %s, want suspect", got)
	}
	w.markSuccess()
	if got := w.snapshot(); got != Ready {
		t.Fatalf("suspect + success: %s, want ready", got)
	}
	w.markFailure()
	w.markFailure()
	if got := w.snapshot(); got != Suspect {
		t.Fatalf("two consecutive failures: %s, want suspect", got)
	}
	w.markFailure()
	if got := w.snapshot(); got != Dead {
		t.Fatalf("three consecutive failures: %s, want dead", got)
	}
	w.markSuccess() // dead is terminal
	if got := w.snapshot(); got != Dead {
		t.Fatalf("dead worker revived to %s", got)
	}
}

// TestReadyzDrivesHealth: a draining worker (readyz 503) is never picked.
func TestReadyzDrivesHealth(t *testing.T) {
	eng := newEngine(t)
	want := localJSON(t, eng)

	srvA, err := actor.NewServer(newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvA.Close)
	tsA := httptest.NewServer(srvA)
	t.Cleanup(tsA.Close)

	srvB, err := actor.NewServer(newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvB.Close)
	tsB := httptest.NewServer(srvB)
	t.Cleanup(tsB.Close)
	srvB.BeginDrain() // B is alive but not ready

	c := New(eng, Options{Workers: []string{tsA.URL, tsB.URL}, Logf: t.Logf})
	got := runJSON(t, c)
	if string(got) != string(want) {
		t.Fatal("drain-aware run is not byte-identical")
	}
	states := c.WorkerStates()
	if states[0].State != Ready {
		t.Errorf("live worker ended %s, want ready", states[0].State)
	}
	if states[1].State == Ready {
		t.Error("draining worker was marked ready")
	}
	if st := c.Stats(); st.Local != 0 {
		t.Errorf("one live worker should still answer everything remotely: %+v", st)
	}
}

func TestHedgeDelayFloor(t *testing.T) {
	c := New(newEngine(t), Options{HedgeFloor: 123 * time.Millisecond})
	if d := c.hedgeDelay(); d != 123*time.Millisecond {
		t.Fatalf("delay with no samples = %v, want the floor", d)
	}
	for i := 0; i < 10; i++ {
		c.lat.add(time.Duration(i+1) * 100 * time.Millisecond)
	}
	if d := c.hedgeDelay(); d < time.Second {
		t.Fatalf("p99-derived delay = %v, want ≥ 2×p99", d)
	}
}
