package core

import (
	"testing"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/npb"
)

// collectRecalSamples runs a characterisation campaign whose noise stream
// forks from the given base, so two campaigns with different bases see
// different noise over identical workloads.
func collectRecalSamples(t *testing.T, env *Env, seed int64) []dataset.PhaseSample {
	t.Helper()
	collector := dataset.NewCollector(env.Machine, env.Truth)
	collector.Repetitions = 2
	collector.NoiseBase = noise.New(seed)
	var samples []dataset.PhaseSample
	for _, name := range []string{"BT", "MG", "LU"} {
		b, _ := npb.ByName(name)
		ss, err := collector.CollectBenchmark(b)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, ss...)
	}
	return samples
}

var recalTargets = []string{"1", "2a", "2b", "3"}

func TestRefitMLRBank(t *testing.T) {
	env := newEnv(t)
	base := collectRecalSamples(t, env, 11)
	live, err := TrainMLRBank(base, []int{12, 4}, recalTargets, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	fresh := collectRecalSamples(t, env, 23)

	blended, err := RefitMLRBank(live, fresh, recalTargets, 1e-6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RefitMLRBank(live, fresh, recalTargets, 1e-6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(blended.predictors) != len(live.predictors) {
		t.Fatalf("predictor count changed: %d → %d", len(live.predictors), len(blended.predictors))
	}
	for pi, p := range blended.predictors {
		mp := p.(*MLRPredictor)
		lp := live.predictors[pi].(*MLRPredictor)
		ap := again.predictors[pi].(*MLRPredictor)
		if len(mp.events) != len(lp.events) {
			t.Fatalf("predictor %d event count changed: %d → %d", pi, len(lp.events), len(mp.events))
		}
		for _, tgt := range recalTargets {
			bc, lc, ac := mp.targets[tgt].Coef, lp.targets[tgt].Coef, ap.targets[tgt].Coef
			for i := range bc {
				if bc[i] != ac[i] {
					t.Fatalf("refit not deterministic: predictor %d target %s coef %d", pi, tgt, i)
				}
				if bc[i] == lc[i] {
					continue // a coefficient can coincide, but not all — checked below
				}
			}
		}
	}

	// blend 1 keeps the live coefficients exactly.
	kept, err := RefitMLRBank(live, fresh, recalTargets, 1e-6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range kept.predictors {
		mp, lp := p.(*MLRPredictor), live.predictors[pi].(*MLRPredictor)
		for _, tgt := range recalTargets {
			for i, c := range mp.targets[tgt].Coef {
				if c != lp.targets[tgt].Coef[i] {
					t.Fatalf("blend 1 moved predictor %d target %s coef %d", pi, tgt, i)
				}
			}
		}
	}

	if _, err := RefitMLRBank(nil, fresh, recalTargets, 1e-6, 0.5); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := RefitMLRBank(live, fresh, recalTargets, 1e-6, 1.5); err == nil {
		t.Error("blend outside [0,1] accepted")
	}
}

func TestFineTuneANNBank(t *testing.T) {
	env := newEnv(t)
	base := collectRecalSamples(t, env, 31)
	cfg := ann.DefaultConfig()
	cfg.MaxEpochs = 40
	cfg.Patience = 8
	live, err := TrainANNBank(base, []int{4}, recalTargets, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh := collectRecalSamples(t, env, 37)

	ftCfg := cfg
	ftCfg.Seed = 17
	ftCfg.WarmStartEpochs = 15
	tuned, err := FineTuneANNBank(live, fresh, recalTargets, ftCfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := FineTuneANNBank(live, fresh, recalTargets, ftCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuned.predictors) != len(live.predictors) {
		t.Fatalf("predictor count changed: %d → %d", len(live.predictors), len(tuned.predictors))
	}
	rates := fresh[0].Rates
	got1, err := tuned.predictors[0].PredictIPC(rates)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := again.predictors[0].PredictIPC(rates)
	if err != nil {
		t.Fatal(err)
	}
	liveOut, err := live.predictors[0].PredictIPC(rates)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for _, tgt := range recalTargets {
		if got1[tgt] != got2[tgt] {
			t.Fatalf("fine-tuning not deterministic for target %s: %v vs %v", tgt, got1[tgt], got2[tgt])
		}
		if got1[tgt] != liveOut[tgt] {
			moved = true
		}
	}
	if !moved {
		t.Error("fine-tuning on a fresh campaign left every prediction bit-identical to the live bank")
	}

	// The live bank must be untouched by fine-tuning.
	liveOut2, err := live.predictors[0].PredictIPC(rates)
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range recalTargets {
		if liveOut[tgt] != liveOut2[tgt] {
			t.Fatalf("fine-tuning mutated the live bank (target %s)", tgt)
		}
	}

	// Kind mismatches are rejected both ways.
	mlrLive, err := TrainMLRBank(base, []int{4}, recalTargets, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FineTuneANNBank(mlrLive, fresh, recalTargets, ftCfg); err == nil {
		t.Error("MLR base accepted by FineTuneANNBank")
	}
	if _, err := RefitMLRBank(live, fresh, recalTargets, 1e-6, 0.5); err == nil {
		t.Error("ANN base accepted by RefitMLRBank")
	}
}
