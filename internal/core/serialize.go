package core

import (
	"encoding/json"
	"fmt"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/pmu"
)

// SavedPredictor is the on-disk form of an ANN predictor: the feature event
// names plus one serialised ensemble per target configuration. It is what
// cmd/actor-train writes and cmd/actor-predict loads.
type SavedPredictor struct {
	// Events are PAPI-style event mnemonics, in feature order.
	Events []string `json:"events"`
	// Targets maps configuration name → ensemble.
	Targets map[string]*ann.Ensemble `json:"targets"`
}

// SaveANNPredictor converts a live predictor into its serialisable form.
func SaveANNPredictor(p *ANNPredictor) *SavedPredictor {
	sp := &SavedPredictor{Targets: p.targets}
	for _, e := range p.events {
		sp.Events = append(sp.Events, e.String())
	}
	return sp
}

// Load reconstructs the live predictor, resolving event names.
func (sp *SavedPredictor) Load() (*ANNPredictor, error) {
	events := make([]pmu.Event, 0, len(sp.Events))
	for _, name := range sp.Events {
		e, ok := pmu.EventByName(name)
		if !ok {
			return nil, fmt.Errorf("core: unknown event %q in saved predictor", name)
		}
		events = append(events, e)
	}
	return NewANNPredictor(events, sp.Targets)
}

// MarshalPredictor serialises a live ANN predictor to JSON.
func MarshalPredictor(p *ANNPredictor) ([]byte, error) {
	return json.MarshalIndent(SaveANNPredictor(p), "", " ")
}

// UnmarshalPredictor loads a predictor from JSON produced by
// MarshalPredictor.
func UnmarshalPredictor(data []byte) (*ANNPredictor, error) {
	var sp SavedPredictor
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, err
	}
	if len(sp.Targets) == 0 {
		return nil, fmt.Errorf("core: saved predictor has no targets")
	}
	return sp.Load()
}
