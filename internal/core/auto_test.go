package core

import (
	"testing"

	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/phasedetect"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
)

func TestAutoControllerValidation(t *testing.T) {
	env := newEnv(t)
	bank := trainSmallBank(t, env)
	pred := bank.Predictors()[0]
	if _, err := NewAutoController(nil, env.SampleConfig, env.Configs, 2, phasedetect.DefaultConfig()); err == nil {
		t.Error("nil predictor accepted")
	}
	if _, err := NewAutoController(pred, topology.Placement{}, env.Configs, 2, phasedetect.DefaultConfig()); err == nil {
		t.Error("empty sample config accepted")
	}
	bad := phasedetect.DefaultConfig()
	bad.Threshold = 0
	if _, err := NewAutoController(pred, env.SampleConfig, env.Configs, 2, bad); err == nil {
		t.Error("invalid detector config accepted")
	}
}

// TestAutoControllerAdaptsUnannotatedStream drives the controller with an
// unannotated stream alternating between a compute-bound and a
// bandwidth-bound phase of real benchmarks, checking that it detects the
// switches, re-samples, and locks per-phase configurations.
func TestAutoControllerAdaptsUnannotatedStream(t *testing.T) {
	env := newEnv(t)
	bank := trainSmallBank(t, env)
	pred := bank.Predictors()[0]

	ac, err := NewAutoController(pred, env.SampleConfig, env.Configs, 2, phasedetect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Two very different workload phases, run back to back without any
	// phase annotations: BT's dense solver then IS's streaming sort.
	bt, _ := npb.ByName("BT")
	is, _ := npb.ByName("IS")
	run := func(benchName string, phaseIdx, steps int) {
		var b = bt
		if benchName == "IS" {
			b = is
		}
		for i := 0; i < steps; i++ {
			pl := ac.Next()
			res := env.Machine.RunPhase(&b.Phases[phaseIdx], b.Idiosyncrasy, pl)
			if err := ac.Observe(res.Counts); err != nil {
				t.Fatal(err)
			}
		}
	}

	run("BT", 1, 30) // x_solve: dense
	if !ac.Locked() {
		t.Fatal("controller never locked the first phase")
	}
	firstChoice := ac.Next().Name

	run("IS", 0, 30) // rank_count: bandwidth-bound
	if ac.PhasesSeen() < 2 {
		t.Fatal("behaviour shift not detected as a phase change")
	}
	if !ac.Locked() {
		t.Fatal("controller never locked the second phase")
	}
	secondChoice := ac.Next().Name
	if secondChoice == "4" && firstChoice == secondChoice {
		t.Errorf("no adaptation across radically different phases (both %q)", secondChoice)
	}
	// The bandwidth-bound phase must be throttled below full concurrency.
	if secondChoice == "4" {
		t.Errorf("streaming phase locked to all cores; expected throttling (got %q)", secondChoice)
	}
	if ac.Decisions() < 2 {
		t.Errorf("decisions = %d, want ≥ 2", ac.Decisions())
	}
}

func TestAutoControllerRejectsZeroCycleObservation(t *testing.T) {
	env := newEnv(t)
	bank := trainSmallBank(t, env)
	ac, err := NewAutoController(bank.Predictors()[0], env.SampleConfig, env.Configs, 2, phasedetect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ac.Observe(pmu.Counts{pmu.Instructions: 10}); err == nil {
		t.Error("zero-cycle observation accepted")
	}
}
