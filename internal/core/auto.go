package core

import (
	"errors"

	"github.com/greenhpc/actor/internal/phasedetect"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
)

// AutoController is ACTOR without manual instrumentation: it watches the
// counter-rate stream of an *unannotated* running program, detects phase
// boundaries online (internal/phasedetect), and drives the usual
// sample-predict-lock cycle per detected phase. Published ACTOR requires
// library calls around each parallel region; this extension removes that
// requirement.
//
// Protocol per timestep: call Next for the placement to run, execute, then
// feed the observed counts to Observe.
type AutoController struct {
	pred     Predictor
	sample   topology.Placement
	configs  []topology.Placement
	width    int
	detector *phasedetect.Detector

	sampler *pmu.Sampler
	locked  bool
	choice  topology.Placement

	// Placement-change tracking: a self-inflicted reconfiguration shifts
	// the observed rates, which must not be mistaken for a program phase
	// change; the detector is rebased after every switch.
	lastIssued    topology.Placement
	haveIssued    bool
	pendingRebase bool

	phases    int // total phases seen (incl. the first)
	decisions int
}

// NewAutoController builds a controller that samples at sampleCfg, predicts
// with pred over the configuration space, and detects phases with detCfg.
func NewAutoController(pred Predictor, sampleCfg topology.Placement, configs []topology.Placement, counterWidth int, detCfg phasedetect.Config) (*AutoController, error) {
	if pred == nil {
		return nil, errors.New("core: auto controller needs a predictor")
	}
	if sampleCfg.Threads() == 0 || len(configs) == 0 {
		return nil, errors.New("core: auto controller needs a configuration space")
	}
	det, err := phasedetect.New(detCfg)
	if err != nil {
		return nil, err
	}
	a := &AutoController{
		pred:     pred,
		sample:   sampleCfg,
		configs:  configs,
		width:    counterWidth,
		detector: det,
		phases:   1,
	}
	if err := a.startSampling(); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *AutoController) startSampling() error {
	file, err := pmu.NewCounterFile(a.width)
	if err != nil {
		return err
	}
	plan, err := pmu.PlanRotation(a.pred.Events(), a.width, 0)
	if err != nil {
		return err
	}
	a.sampler = pmu.NewSampler(file, plan)
	a.locked = false
	return nil
}

// Next returns the placement the upcoming timestep should run at: the
// sampling configuration while the current phase is being profiled, the
// locked choice afterwards.
func (a *AutoController) Next() topology.Placement {
	pl := a.sample
	if a.locked {
		pl = a.choice
	}
	if a.haveIssued && pl.Name != a.lastIssued.Name {
		a.pendingRebase = true
	}
	a.lastIssued, a.haveIssued = pl, true
	return pl
}

// Observe ingests the counts of the timestep that just ran. It feeds the
// phase detector first: a detected boundary discards the current state and
// restarts sampling for the new phase. Otherwise sampling advances and, on
// rotation completion, the phase is locked to the best predicted
// configuration.
func (a *AutoController) Observe(counts pmu.Counts) error {
	rates := counts.Rates()
	if rates == nil {
		return errors.New("core: observation with zero cycles")
	}
	if a.pendingRebase {
		a.detector.Rebase()
		a.pendingRebase = false
	}
	if _, changed := a.detector.Observe(rates); changed {
		a.phases++
		return a.startSampling()
	}
	if a.locked {
		return nil
	}
	if err := a.sampler.Observe(counts); err != nil {
		return err
	}
	if !a.sampler.Done() {
		return nil
	}
	return a.decide()
}

func (a *AutoController) decide() error {
	rates := a.sampler.Rates()
	preds, err := a.pred.PredictIPC(rates)
	if err != nil {
		return err
	}
	bestName := a.sample.Name
	bestIPC := rates[pmu.Instructions]
	for name, ipc := range preds {
		if name == a.sample.Name {
			continue
		}
		if ipc > bestIPC {
			bestIPC, bestName = ipc, name
		}
	}
	for _, cfg := range a.configs {
		if cfg.Name == bestName {
			a.choice = cfg
			a.locked = true
			a.decisions++
			return nil
		}
	}
	return errors.New("core: predictor proposed unknown config " + bestName)
}

// Locked reports whether the current phase has a locked configuration.
func (a *AutoController) Locked() bool { return a.locked }

// PhasesSeen returns how many phases the detector has identified so far.
func (a *AutoController) PhasesSeen() int { return a.phases }

// Decisions returns how many lock decisions have been made.
func (a *AutoController) Decisions() int { return a.decisions }
