package core

import (
	"strings"
	"testing"
)

func TestRecordingTracerOnPredictionRun(t *testing.T) {
	env := newEnv(t)
	bank := trainSmallBank(t, env)
	b := smallBench(t)
	rec := &RecordingTracer{}
	env.Tracer = rec

	res, err := (&Prediction{Bank: bank}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	if want := b.Iterations * len(b.Phases); len(rec.Events) != want {
		t.Fatalf("recorded %d events, want %d", len(rec.Events), want)
	}
	// Sampling time must be positive and bounded by the budget's share.
	if rec.SamplingTime() <= 0 {
		t.Error("no sampling time recorded for a prediction run")
	}
	var total float64
	for _, e := range rec.Events {
		total += e.TimeSec
		if e.Phase == "" || e.Config == "" {
			t.Fatalf("incomplete event: %+v", e)
		}
		if e.PowerW <= 0 {
			t.Fatalf("non-positive power in event: %+v", e)
		}
	}
	// Events' total time + migration time equals the accounted run time.
	if diff := res.TimeSec - (total + rec.MigrationTime()); diff > 1e-9*res.TimeSec || diff < -1e-9*res.TimeSec {
		t.Errorf("trace total %.6f + migrations %.6f != run time %.6f",
			total, rec.MigrationTime(), res.TimeSec)
	}
	// Sampling events run at the sampling configuration.
	for _, e := range rec.Events {
		if e.Sampling && e.Config != env.SampleConfig.Name {
			t.Fatalf("sampling event at %q, want %q", e.Config, env.SampleConfig.Name)
		}
	}
	// Migration accounting matches the run result.
	if res.Migrations > 0 && rec.MigrationTime() <= 0 {
		t.Error("run reports migrations but the trace has no migration time")
	}

	var sb strings.Builder
	rec.Summarize(&sb)
	out := sb.String()
	if !strings.Contains(out, "sampling overhead") || !strings.Contains(out, "config") {
		t.Errorf("summary incomplete:\n%s", out)
	}
}

func TestStaticRunHasNoSamplingEvents(t *testing.T) {
	env := newEnv(t)
	b := smallBench(t)
	rec := &RecordingTracer{}
	env.Tracer = rec
	if _, err := (&Static{Config: "2b"}).Run(b, env); err != nil {
		t.Fatal(err)
	}
	if rec.SamplingTime() != 0 {
		t.Error("static run recorded sampling time")
	}
	tbc := rec.TimeByConfig()
	if len(tbc) != 1 || tbc["2b"] <= 0 {
		t.Errorf("TimeByConfig = %v", tbc)
	}
}

func TestCSVTracer(t *testing.T) {
	env := newEnv(t)
	b := smallBench(t)
	var sb strings.Builder
	csv := &CSVTracer{W: &sb}
	env.Tracer = csv
	if _, err := (&Static{Config: "4"}).Run(b, env); err != nil {
		t.Fatal(err)
	}
	if csv.Err() != nil {
		t.Fatal(csv.Err())
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "iteration,phase,config,time_sec,power_w,sampling,migration,migration_sec" {
		t.Errorf("header = %q", lines[0])
	}
	if want := b.Iterations*len(b.Phases) + 1; len(lines) != want {
		t.Errorf("%d CSV lines, want %d", len(lines), want)
	}
	if !strings.Contains(lines[1], ",4,") {
		t.Errorf("first row lacks config: %q", lines[1])
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write failed" }

func TestCSVTracerPropagatesWriteError(t *testing.T) {
	csv := &CSVTracer{W: failingWriter{}}
	csv.Event(TraceEvent{})
	if csv.Err() == nil {
		t.Error("write error swallowed")
	}
	// Further events are no-ops, not panics.
	csv.Event(TraceEvent{})
}
