package core

import (
	"errors"
	"fmt"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/mlr"
	"github.com/greenhpc/actor/internal/parallel"
)

// FineTuneANNBank rebuilds an ANN bank from a live base: every ensemble in
// every predictor is warm-started from its live counterpart and fine-tuned
// on the fresh recalibration samples (ann.FineTuneEnsemble semantics — the
// live scaler is reused, topology and member count are preserved). The base
// bank is never mutated; predictors keep their exact event sets so the new
// bank is a drop-in replacement for the old one.
func FineTuneANNBank(base *Bank, samples []dataset.PhaseSample, targets []string, cfg ann.Config) (*Bank, error) {
	if base == nil || len(base.predictors) == 0 {
		return nil, errors.New("core: fine-tuning needs a non-empty base bank")
	}
	var preds []Predictor
	for _, bp := range base.predictors {
		ap, ok := bp.(*ANNPredictor)
		if !ok {
			return nil, fmt.Errorf("core: fine-tuning an ANN bank, found %T predictor", bp)
		}
		byTarget, err := dataset.ToSamplesMulti(samples, ap.events, targets)
		if err != nil {
			return nil, err
		}
		ensembles, err := parallel.Map(len(targets), func(i int) (*ann.Ensemble, error) {
			t := targets[i]
			baseEns, ok := ap.targets[t]
			if !ok {
				return nil, fmt.Errorf("core: base bank has no model for target %q", t)
			}
			ens, err := ann.FineTuneEnsemble(baseEns, byTarget[t], cfg)
			if err != nil {
				return nil, fmt.Errorf("fine-tune ANN (events=%d, target=%s): %w", ap.NumEvents(), t, err)
			}
			return ens, nil
		})
		if err != nil {
			return nil, err
		}
		models := make(map[string]*ann.Ensemble, len(targets))
		for i, t := range targets {
			models[t] = ensembles[i]
		}
		p, err := NewANNPredictor(ap.events, models)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	return NewBank(preds...)
}

// RefitMLRBank rebuilds an MLR bank from a live base: every linear model is
// refit on the fresh samples with the given ridge, then blended with the
// live coefficients — new = blend*live + (1-blend)*refit. blend 0 takes the
// refit outright, blend 1 keeps the live bank. Blending averages the noise
// realisations of the two characterisation campaigns, so on a stationary
// platform the blend's expected error is below either endpoint's. Event
// sets are preserved per predictor; the base bank is never mutated.
func RefitMLRBank(base *Bank, samples []dataset.PhaseSample, targets []string, ridge, blend float64) (*Bank, error) {
	if base == nil || len(base.predictors) == 0 {
		return nil, errors.New("core: refitting needs a non-empty base bank")
	}
	if blend < 0 || blend > 1 {
		return nil, fmt.Errorf("core: blend %v outside [0, 1]", blend)
	}
	var preds []Predictor
	for _, bp := range base.predictors {
		mp, ok := bp.(*MLRPredictor)
		if !ok {
			return nil, fmt.Errorf("core: refitting an MLR bank, found %T predictor", bp)
		}
		byTarget, err := dataset.ToSamplesMulti(samples, mp.events, targets)
		if err != nil {
			return nil, err
		}
		models := make(map[string]*mlr.Model, len(targets))
		for _, t := range targets {
			live, ok := mp.targets[t]
			if !ok {
				return nil, fmt.Errorf("core: base bank has no model for target %q", t)
			}
			fit, err := mlr.Fit(byTarget[t], ridge)
			if err != nil {
				return nil, fmt.Errorf("refit MLR (events=%d, target=%s): %w", mp.NumEvents(), t, err)
			}
			if len(fit.Coef) != len(live.Coef) {
				return nil, fmt.Errorf("core: refit target %q coefficient count %d, live %d",
					t, len(fit.Coef), len(live.Coef))
			}
			coef := make([]float64, len(live.Coef))
			for i := range coef {
				coef[i] = blend*live.Coef[i] + (1-blend)*fit.Coef[i]
			}
			m, err := mlr.NewModel(coef)
			if err != nil {
				return nil, err
			}
			models[t] = m
		}
		p, err := NewMLRPredictor(mp.events, models)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	return NewBank(preds...)
}
