package core

import (
	"testing"
	"time"
)

func TestLiveTunerValidation(t *testing.T) {
	if _, err := NewLiveTuner(nil, 1); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := NewLiveTuner([]int{0}, 1); err == nil {
		t.Error("zero thread count accepted")
	}
	if lt, err := NewLiveTuner([]int{2}, 0); err != nil || lt == nil {
		t.Error("probes floor not applied")
	}
}

func TestLiveTunerPicksFastest(t *testing.T) {
	lt, err := NewLiveTuner([]int{4, 2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Scripted durations: 2 threads is fastest.
	durations := map[int]time.Duration{
		4: 30 * time.Millisecond,
		2: 10 * time.Millisecond,
		1: 50 * time.Millisecond,
	}
	now := time.Unix(0, 0)
	lt.now = func() time.Time { return now }
	for !lt.Decided() {
		n := lt.Begin()
		now = now.Add(durations[n])
		lt.End()
	}
	if lt.Choice() != 2 {
		t.Errorf("chose %d threads, want 2", lt.Choice())
	}
	if lt.Executions() != 6 {
		t.Errorf("executions = %d, want 6 (3 candidates × 2 probes)", lt.Executions())
	}
	// After deciding, Begin keeps returning the choice.
	for i := 0; i < 3; i++ {
		if got := lt.Begin(); got != 2 {
			t.Errorf("post-decision Begin = %d", got)
		}
		now = now.Add(durations[2])
		lt.End()
	}
	pt := lt.ProbeTimes()
	if pt[2] >= pt[1] || pt[2] >= pt[4] {
		t.Errorf("probe times inconsistent: %v", pt)
	}
}

func TestLiveTunerPanicsOnMisuse(t *testing.T) {
	lt, _ := NewLiveTuner([]int{1}, 1)
	lt.Begin()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on double Begin")
			}
		}()
		lt.Begin()
	}()
	lt.End()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on End without Begin")
			}
		}()
		lt.End()
	}()
}

func TestLiveTunerChoiceBeforeDecision(t *testing.T) {
	lt, _ := NewLiveTuner([]int{4, 2}, 3)
	if lt.Decided() || lt.Choice() != 0 {
		t.Error("tuner decided before any probe")
	}
}

func TestDefaultCandidates(t *testing.T) {
	c := DefaultCandidates(4)
	want := []int{4, 3, 2, 1}
	if len(c) != 4 {
		t.Fatalf("candidates = %v", c)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("candidates = %v, want %v", c, want)
		}
	}
	if got := DefaultCandidates(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("DefaultCandidates(0) = %v", got)
	}
}
