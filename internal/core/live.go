package core

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// LiveTuner is the instrumentation-based throttling controller for real
// programs, wrapping each phase execution in Begin/End calls exactly like
// the paper's ACTOR library calls around OpenMP parallel regions.
//
// On the paper's platform the online signal is hardware counter rates; Go
// offers no portable access to performance counters, so the live tuner uses
// measured phase throughput as its fitness signal and the empirical-search
// policy of the authors' earlier work [17] — probing each candidate
// concurrency level for a configurable number of executions, then locking
// in the fastest. (The substitution is documented in DESIGN.md; the
// simulated path exercises the full counter + ANN pipeline.)
type LiveTuner struct {
	candidates []int
	probes     int
	now        func() time.Time

	phase      int // index into candidates*probes during search
	times      []float64
	inPhase    bool
	began      time.Time
	decided    bool
	choice     int
	executions int
}

// NewLiveTuner creates a tuner over candidate thread counts, probing each
// `probes` times before deciding. Candidates must be positive; they are
// probed in the given order.
func NewLiveTuner(candidates []int, probes int) (*LiveTuner, error) {
	if len(candidates) == 0 {
		return nil, errors.New("core: live tuner needs candidates")
	}
	for _, c := range candidates {
		if c < 1 {
			return nil, fmt.Errorf("core: invalid candidate thread count %d", c)
		}
	}
	if probes < 1 {
		probes = 1
	}
	return &LiveTuner{
		candidates: append([]int(nil), candidates...),
		probes:     probes,
		now:        time.Now,
		times:      make([]float64, len(candidates)),
	}, nil
}

// Begin starts one phase execution and returns the thread count to use.
// Every Begin must be matched by End.
func (lt *LiveTuner) Begin() int {
	if lt.inPhase {
		panic("core: LiveTuner.Begin without matching End")
	}
	lt.inPhase = true
	lt.began = lt.now()
	if lt.decided {
		return lt.choice
	}
	return lt.candidates[lt.currentCandidate()]
}

// End finishes the phase execution begun by Begin.
func (lt *LiveTuner) End() {
	if !lt.inPhase {
		panic("core: LiveTuner.End without Begin")
	}
	lt.inPhase = false
	elapsed := lt.now().Sub(lt.began).Seconds()
	lt.executions++
	if lt.decided {
		return
	}
	lt.times[lt.currentCandidate()] += elapsed
	lt.phase++
	if lt.phase >= len(lt.candidates)*lt.probes {
		best, bestT := 0, lt.times[0]
		for i, t := range lt.times {
			if t < bestT {
				bestT, best = t, i
			}
		}
		lt.choice = lt.candidates[best]
		lt.decided = true
	}
}

func (lt *LiveTuner) currentCandidate() int {
	c := lt.phase / lt.probes
	if c >= len(lt.candidates) {
		c = len(lt.candidates) - 1
	}
	return c
}

// Decided reports whether the tuner has locked a concurrency level.
func (lt *LiveTuner) Decided() bool { return lt.decided }

// Choice returns the locked concurrency level (0 before a decision).
func (lt *LiveTuner) Choice() int {
	if !lt.decided {
		return 0
	}
	return lt.choice
}

// Executions returns the number of completed Begin/End pairs.
func (lt *LiveTuner) Executions() int { return lt.executions }

// ProbeTimes returns the accumulated probe time per candidate (by candidate
// order), for diagnostics.
func (lt *LiveTuner) ProbeTimes() map[int]float64 {
	out := make(map[int]float64, len(lt.candidates))
	for i, c := range lt.candidates {
		out[c] = lt.times[i]
	}
	return out
}

// DefaultCandidates returns the descending thread-count ladder {max, …, 1}
// usually probed on a machine with max hardware threads.
func DefaultCandidates(max int) []int {
	if max < 1 {
		max = 1
	}
	out := make([]int, 0, max)
	for c := max; c >= 1; c-- {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
