package core

import (
	"fmt"
	"io"
	"sort"
)

// TraceEvent records one phase execution during a strategy run: which
// iteration and phase ran where, for how long, at what power, and whether
// the execution was part of the sampling period.
type TraceEvent struct {
	Iteration int
	Phase     string
	Config    string
	TimeSec   float64
	PowerW    float64
	Sampling  bool
	Migration bool
	// MigrationSec is the cache-refill cost charged before this execution
	// (zero unless Migration).
	MigrationSec float64
}

// Tracer receives every TraceEvent of a run. Implementations must be fast;
// the engine calls them on the hot path.
type Tracer interface {
	Event(TraceEvent)
}

// RecordingTracer retains all events in memory and computes summaries.
type RecordingTracer struct {
	Events []TraceEvent
}

// Event implements Tracer.
func (r *RecordingTracer) Event(e TraceEvent) { r.Events = append(r.Events, e) }

// TimeByConfig returns total execution time per configuration name.
func (r *RecordingTracer) TimeByConfig() map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.Events {
		out[e.Config] += e.TimeSec
	}
	return out
}

// SamplingTime returns the total time spent in sampling executions.
func (r *RecordingTracer) SamplingTime() float64 {
	var t float64
	for _, e := range r.Events {
		if e.Sampling {
			t += e.TimeSec
		}
	}
	return t
}

// MigrationTime returns the total cache-refill time charged.
func (r *RecordingTracer) MigrationTime() float64 {
	var t float64
	for _, e := range r.Events {
		t += e.MigrationSec
	}
	return t
}

// Summarize writes a human-readable overhead breakdown.
func (r *RecordingTracer) Summarize(w io.Writer) {
	var total float64
	for _, e := range r.Events {
		total += e.TimeSec + e.MigrationSec
	}
	fmt.Fprintf(w, "trace: %d events, %.3f s total\n", len(r.Events), total)
	if total <= 0 {
		return
	}
	fmt.Fprintf(w, "  sampling overhead: %.3f s (%.1f%%)\n",
		r.SamplingTime(), 100*r.SamplingTime()/total)
	fmt.Fprintf(w, "  migration overhead: %.3f s (%.1f%%)\n",
		r.MigrationTime(), 100*r.MigrationTime()/total)
	tbc := r.TimeByConfig()
	names := make([]string, 0, len(tbc))
	for n := range tbc {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  config %-4s %.3f s (%.1f%%)\n", n, tbc[n], 100*tbc[n]/total)
	}
}

// CSVTracer streams events as CSV rows (header written lazily). Useful for
// offline analysis of adaptation behaviour.
type CSVTracer struct {
	W      io.Writer
	wrote  bool
	failed error
}

// Event implements Tracer.
func (c *CSVTracer) Event(e TraceEvent) {
	if c.failed != nil {
		return
	}
	if !c.wrote {
		if _, err := fmt.Fprintln(c.W, "iteration,phase,config,time_sec,power_w,sampling,migration,migration_sec"); err != nil {
			c.failed = err
			return
		}
		c.wrote = true
	}
	_, c.failed = fmt.Fprintf(c.W, "%d,%s,%s,%.9g,%.6g,%t,%t,%.9g\n",
		e.Iteration, e.Phase, e.Config, e.TimeSec, e.PowerW, e.Sampling, e.Migration, e.MigrationSec)
}

// Err returns the first write error, if any.
func (c *CSVTracer) Err() error { return c.failed }
