package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// Env is the execution environment a strategy runs against: the measurement
// machine, the pristine machine used by oracles, the power model, and the
// configuration space.
type Env struct {
	// Machine executes phases and produces (possibly noisy) measurements.
	Machine *machine.Machine
	// Truth is the noiseless machine; only oracle strategies may consult
	// it.
	Truth *machine.Machine
	// Power converts activity into watts.
	Power *power.Model
	// Configs is the candidate configuration space (the paper's
	// {1, 2a, 2b, 3, 4}).
	Configs []topology.Placement
	// SampleConfig is the maximal-concurrency configuration used during
	// counter sampling.
	SampleConfig topology.Placement
	// CounterWidth is the PMU's simultaneous-event limit.
	CounterWidth int
	// MaxSampleFraction caps sampling at this fraction of total
	// iterations (0.20 in the paper).
	MaxSampleFraction float64
	// Tracer, when non-nil, receives a TraceEvent for every phase
	// execution (see trace.go).
	Tracer Tracer
}

// NewEnv builds an environment over the given machines and power model with
// the paper's configuration space and sampling rules. The machines must
// model the quad-core Xeon (or any topology hosting cores 0–3); Validate
// reports a descriptive error otherwise. For other machines use NewEnvWith.
func NewEnv(meas, truth *machine.Machine, pm *power.Model) *Env {
	return NewEnvWith(meas, truth, pm, topology.PaperConfigs())
}

// NewEnvWith builds an environment over an explicit configuration space
// (e.g. a heterogeneous topology's placement enumeration). By the
// enumeration convention the last placement is maximal concurrency and
// becomes the sampling configuration.
func NewEnvWith(meas, truth *machine.Machine, pm *power.Model, cfgs []topology.Placement) *Env {
	env := &Env{
		Machine:           meas,
		Truth:             truth,
		Power:             pm,
		Configs:           cfgs,
		CounterWidth:      2,
		MaxSampleFraction: 0.20,
	}
	if len(cfgs) > 0 {
		env.SampleConfig = cfgs[len(cfgs)-1]
	}
	return env
}

// Validate reports configuration errors.
func (e *Env) Validate() error {
	switch {
	case e.Machine == nil:
		return errors.New("core: Env.Machine is nil")
	case e.Power == nil:
		return errors.New("core: Env.Power is nil")
	case len(e.Configs) == 0:
		return errors.New("core: Env.Configs is empty")
	case e.SampleConfig.Threads() == 0:
		return errors.New("core: Env.SampleConfig has no cores")
	case e.CounterWidth < 1:
		return fmt.Errorf("core: Env.CounterWidth = %d", e.CounterWidth)
	case e.MaxSampleFraction <= 0 || e.MaxSampleFraction > 1:
		return fmt.Errorf("core: Env.MaxSampleFraction = %g", e.MaxSampleFraction)
	}
	// The configuration space must fit the measurement machine: the paper
	// configs silently assumed the quad-core Xeon, which turned a
	// mismatched topology into an index panic deep in the solve.
	topo := e.Machine.Topo
	for _, cfg := range e.Configs {
		if err := topo.ValidatePlacement(cfg); err != nil {
			return fmt.Errorf("core: Env.Configs does not fit the machine: %w", err)
		}
	}
	if err := topo.ValidatePlacement(e.SampleConfig); err != nil {
		return fmt.Errorf("core: Env.SampleConfig does not fit the machine: %w", err)
	}
	return nil
}

// configByName finds a configuration in the environment's space.
func (e *Env) configByName(name string) (topology.Placement, bool) {
	for _, c := range e.Configs {
		if c.Name == name {
			return c, true
		}
	}
	return topology.Placement{}, false
}

// RunResult is the outcome of executing a benchmark under a strategy — the
// quantities Fig. 8 reports, plus diagnostics.
type RunResult struct {
	// Strategy is the strategy's display name.
	Strategy string
	// Benchmark is the workload name.
	Benchmark string
	// TimeSec, EnergyJ, AvgPowerW and ED2 are whole-run totals.
	TimeSec   float64
	EnergyJ   float64
	AvgPowerW float64
	ED2       float64
	// PhaseConfigs maps phase name → the configuration it settled on.
	PhaseConfigs map[string]string
	// SampleRounds is the number of sampled timesteps (prediction
	// strategies) or probe executions (search).
	SampleRounds int
	// Migrations counts placement changes between consecutive phase
	// executions; MigrationTimeSec is the cache-refill time they cost.
	Migrations       int
	MigrationTimeSec float64
}

// Strategy runs a benchmark to completion under some concurrency policy.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Run executes the benchmark and returns the accounted result.
	Run(b *workload.Benchmark, env *Env) (RunResult, error)
}

// phasePolicy decides, per phase, which placement each iteration uses, and
// observes the resulting measurement (so adaptive policies can learn).
type phasePolicy interface {
	place(iter int) topology.Placement
	observe(iter int, res machine.Result) error
	// sampling reports whether the policy is still in its online probing
	// state (counter sampling or search testing).
	sampling() bool
	sampledRounds() int
	finalConfig() string
}

// replayIndex maps candidate-placement names to row indices; the candidate
// set is a property of the Env, so execute builds one index shared by
// every phase's table instead of one map per phase.
type replayIndex struct {
	cands []topology.Placement
	idx   map[string]int
}

func newReplayIndex(cands []topology.Placement) *replayIndex {
	ri := &replayIndex{cands: cands, idx: make(map[string]int, len(cands))}
	for i := range cands {
		if _, dup := ri.idx[cands[i].Name]; !dup {
			ri.idx[cands[i].Name] = i
		}
	}
	return ri
}

// replayTable holds one phase's deterministic sweep rows across the
// environment's candidate placements, filled lazily on first use of each
// placement (a static policy therefore solves exactly one row per phase;
// an adaptive policy fills the rows it probes). After the fill, the
// per-iteration strategy replay degenerates to a row copy plus an in-order
// measurement-noise draw — the last per-iteration RunPhase hot loop now
// runs on the batched sweep engine's deterministic path. Policies thereby
// rank precomputed rows; placements outside the table (a policy inventing
// its own placement) fall back to RunPhase with identical semantics.
type replayTable struct {
	index *replayIndex
	rows  []machine.Result
	have  []bool
}

// replayCandidates is the placement universe a policy can return: the
// configuration space plus the sampling configuration (when it is not
// already one of the configs).
func (e *Env) replayCandidates() []topology.Placement {
	cands := make([]topology.Placement, 0, len(e.Configs)+1)
	cands = append(cands, e.Configs...)
	inSpace := false
	for _, c := range e.Configs {
		if samePlacement(c, e.SampleConfig) {
			inSpace = true
			break
		}
	}
	if !inSpace && e.SampleConfig.Threads() > 0 {
		cands = append(cands, e.SampleConfig)
	}
	return cands
}

func newReplayTable(index *replayIndex) *replayTable {
	return &replayTable{
		index: index,
		rows:  make([]machine.Result, len(index.cands)),
		have:  make([]bool, len(index.cands)),
	}
}

// run executes the phase under pl: a (lazily filled) table row plus one
// in-order noise application when pl is a candidate, a direct RunPhase
// otherwise. Both paths are bit-identical — noise stream included — to
// what RunPhase alone would have produced: deterministic fills never touch
// the noise stream, so when they happen cannot matter.
func (rt *replayTable) run(env *Env, p *workload.PhaseProfile, idio float64, pl topology.Placement) machine.Result {
	if i, ok := rt.index.idx[pl.Name]; ok && samePlacement(rt.index.cands[i], pl) {
		if !rt.have[i] {
			env.Machine.RunPhaseSweepDeterministic(p, idio, rt.index.cands[i:i+1], rt.rows[i:i+1])
			rt.have[i] = true
		}
		res := rt.rows[i]
		env.Machine.ApplyNoise(&res)
		return res
	}
	return env.Machine.RunPhase(p, idio, pl)
}

// execute drives the benchmark iteration-by-iteration under per-phase
// policies, accounting time, energy, and migration penalties. This is the
// shared engine beneath every strategy. Each phase's placement responses
// are computed once on the batched sweep engine's deterministic path (see
// replayTable); the iteration loop only replays rows and draws measurement
// noise in execution order.
func execute(name string, b *workload.Benchmark, env *Env, policies []phasePolicy) (RunResult, error) {
	if err := env.Validate(); err != nil {
		return RunResult{}, err
	}
	if err := b.Validate(); err != nil {
		return RunResult{}, err
	}
	if len(policies) != len(b.Phases) {
		return RunResult{}, fmt.Errorf("core: %d policies for %d phases", len(policies), len(b.Phases))
	}
	res := RunResult{
		Strategy:     name,
		Benchmark:    b.Name,
		PhaseConfigs: make(map[string]string, len(b.Phases)),
	}
	index := newReplayIndex(env.replayCandidates())
	tables := make([]*replayTable, len(b.Phases))
	for pi := range b.Phases {
		tables[pi] = newReplayTable(index)
	}
	var acc power.Accumulator
	var prev topology.Placement
	havePrev := false
	for it := 0; it < b.Iterations; it++ {
		for pi := range b.Phases {
			p := &b.Phases[pi]
			pl := policies[pi].place(it)
			var migSec float64
			if havePrev && !samePlacement(prev, pl) {
				extraSec, extraBytes := env.Machine.MigrationPenalty(p, prev, pl)
				if extraSec > 0 {
					res.Migrations++
					res.MigrationTimeSec += extraSec
					migSec = extraSec
					acc.Add(extraSec, env.Power.Power(migrationActivity(env, pl, extraSec, extraBytes)))
				}
			}
			wasSampling := policies[pi].sampling()
			r := tables[pi].run(env, p, b.Idiosyncrasy, pl)
			watts := env.Power.Power(r.Activity)
			acc.Add(r.TimeSec, watts)
			if env.Tracer != nil {
				env.Tracer.Event(TraceEvent{
					Iteration:    it,
					Phase:        p.Name,
					Config:       pl.Name,
					TimeSec:      r.TimeSec,
					PowerW:       watts,
					Sampling:     wasSampling,
					Migration:    migSec > 0,
					MigrationSec: migSec,
				})
			}
			if err := policies[pi].observe(it, r); err != nil {
				return RunResult{}, err
			}
			prev, havePrev = pl, true
		}
	}
	for pi := range b.Phases {
		res.PhaseConfigs[b.Phases[pi].Name] = policies[pi].finalConfig()
		res.SampleRounds += policies[pi].sampledRounds()
	}
	res.TimeSec = acc.TimeSec
	res.EnergyJ = acc.EnergyJ
	res.AvgPowerW = acc.AvgPower()
	res.ED2 = acc.ED2()
	return res, nil
}

// migrationActivity models the cache-refill interval after a placement
// switch: cores mostly stalled, the bus streaming refill traffic. This
// off-chip traffic is why the paper observes no net power saving from
// throttling.
func migrationActivity(env *Env, pl topology.Placement, extraSec, extraBytes float64) machine.Activity {
	busUtil := 0.0
	if extraSec > 0 {
		busUtil = math.Min(extraBytes/extraSec/env.Machine.Topo.BusBandwidth, 0.95)
	}
	return machine.Activity{
		TimeSec:          extraSec,
		ActiveCores:      pl.Threads(),
		TotalCores:       env.Machine.Topo.NumCores,
		AvgCoreIPC:       0.2,
		PeakIPC:          env.Machine.Params().PeakIssueIPC,
		AvgCoreUtil:      0.25,
		BusUtilization:   busUtil,
		BusBytes:         extraBytes,
		L2AccessesPerSec: 0,
	}
}

func samePlacement(a, b topology.Placement) bool {
	if len(a.Cores) != len(b.Cores) {
		return false
	}
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			return false
		}
	}
	return true
}

// staticPolicy pins a phase to one placement for the whole run.
type staticPolicy struct {
	pl topology.Placement
}

func (s *staticPolicy) place(int) topology.Placement      { return s.pl }
func (s *staticPolicy) observe(int, machine.Result) error { return nil }
func (s *staticPolicy) sampling() bool                    { return false }
func (s *staticPolicy) sampledRounds() int                { return 0 }
func (s *staticPolicy) finalConfig() string               { return s.pl.Name }

// Static runs every phase on a fixed configuration — with the full-machine
// configuration it is the paper's "4 Cores" baseline, the default of a
// performance-oriented developer.
type Static struct {
	// Config is the placement name within the environment's space.
	Config string
}

// Name implements Strategy.
func (s *Static) Name() string { return fmt.Sprintf("static-%s", s.Config) }

// Run implements Strategy.
func (s *Static) Run(b *workload.Benchmark, env *Env) (RunResult, error) {
	pl, ok := env.configByName(s.Config)
	if !ok {
		return RunResult{}, fmt.Errorf("core: unknown config %q", s.Config)
	}
	policies := make([]phasePolicy, len(b.Phases))
	for i := range policies {
		policies[i] = &staticPolicy{pl: pl}
	}
	return execute(s.Name(), b, env, policies)
}

// OracleGlobal runs the whole benchmark on the single configuration that
// minimises total (noiseless) execution time — the paper's "Global Optimal"
// comparison point, which requires information a real runtime cannot have.
type OracleGlobal struct{}

// Name implements Strategy.
func (OracleGlobal) Name() string { return "oracle-global" }

// Run implements Strategy.
func (OracleGlobal) Run(b *workload.Benchmark, env *Env) (RunResult, error) {
	if env.Truth == nil {
		return RunResult{}, errors.New("core: oracle strategy requires Env.Truth")
	}
	best, _, err := GlobalOptimal(b, env.Truth, env.Configs)
	if err != nil {
		return RunResult{}, err
	}
	policies := make([]phasePolicy, len(b.Phases))
	for i := range policies {
		policies[i] = &staticPolicy{pl: best}
	}
	res, err := execute(OracleGlobal{}.Name(), b, env, policies)
	return res, err
}

// OraclePhase runs each phase on its individually optimal configuration —
// the paper's "Phase Optimal" upper bound for phase-granularity adaptation.
type OraclePhase struct{}

// Name implements Strategy.
func (OraclePhase) Name() string { return "oracle-phase" }

// Run implements Strategy.
func (OraclePhase) Run(b *workload.Benchmark, env *Env) (RunResult, error) {
	if env.Truth == nil {
		return RunResult{}, errors.New("core: oracle strategy requires Env.Truth")
	}
	bests, err := PhaseOptimal(b, env.Truth, env.Configs)
	if err != nil {
		return RunResult{}, err
	}
	policies := make([]phasePolicy, len(b.Phases))
	for i := range policies {
		policies[i] = &staticPolicy{pl: bests[i]}
	}
	return execute(OraclePhase{}.Name(), b, env, policies)
}

// GlobalOptimal returns the configuration minimising the benchmark's total
// noiseless execution time, with the per-config total times for reporting.
// Each phase is evaluated across the whole configuration space in one
// RunPhaseSweep call; per-config totals accumulate in phase order, so the
// result is bit-identical to the per-config sequential loop it replaces.
func GlobalOptimal(b *workload.Benchmark, truth *machine.Machine, configs []topology.Placement) (topology.Placement, map[string]float64, error) {
	if len(configs) == 0 {
		return topology.Placement{}, nil, errors.New("core: empty config space")
	}
	totals := make([]float64, len(configs))
	dst := make([]machine.Result, len(configs))
	for pi := range b.Phases {
		truth.RunPhaseSweep(&b.Phases[pi], b.Idiosyncrasy, configs, dst)
		for ci := range configs {
			totals[ci] += dst[ci].TimeSec
		}
	}
	times := make(map[string]float64, len(configs))
	best := configs[0]
	bestT := math.Inf(1)
	for ci, cfg := range configs {
		t := totals[ci] * float64(b.Iterations)
		times[cfg.Name] = t
		if t < bestT {
			bestT, best = t, cfg
		}
	}
	return best, times, nil
}

// PhaseOptimal returns each phase's individually fastest configuration.
func PhaseOptimal(b *workload.Benchmark, truth *machine.Machine, configs []topology.Placement) ([]topology.Placement, error) {
	if len(configs) == 0 {
		return nil, errors.New("core: empty config space")
	}
	out := make([]topology.Placement, len(b.Phases))
	dst := make([]machine.Result, len(configs))
	for pi := range b.Phases {
		truth.RunPhaseSweep(&b.Phases[pi], b.Idiosyncrasy, configs, dst)
		best := configs[0]
		bestT := math.Inf(1)
		for ci, cfg := range configs {
			if t := dst[ci].TimeSec; t < bestT {
				bestT, best = t, cfg
			}
		}
		out[pi] = best
	}
	return out, nil
}

// RankConfigsByTime orders configuration names from fastest to slowest for
// one phase on the noiseless machine — used to score how often the
// predictor selects the true best configuration (Fig. 7).
func RankConfigsByTime(p *workload.PhaseProfile, idio float64, truth *machine.Machine, configs []topology.Placement) []string {
	dst := make([]machine.Result, len(configs))
	truth.RunPhaseSweep(p, idio, configs, dst)
	type ct struct {
		name string
		t    float64
	}
	list := make([]ct, 0, len(configs))
	for ci, cfg := range configs {
		list = append(list, ct{cfg.Name, dst[ci].TimeSec})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].t < list[j].t })
	out := make([]string, len(list))
	for i, c := range list {
		out[i] = c.name
	}
	return out
}
