package core

import (
	"fmt"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// Prediction is ACTOR's headline strategy: sample counters at maximal
// concurrency for the first few timesteps (rotating event pairs through the
// two-counter PMU within the 20% sampling budget), predict IPC on every
// alternative configuration with the trained models, and lock each phase to
// the configuration with the highest predicted IPC.
type Prediction struct {
	// Bank supplies predictors per feature-set size; the strategy picks
	// the richest one fitting the sampling budget (the paper's reduced
	// event sets for FT, IS and MG).
	Bank *Bank
	// DisplayName overrides the default name in reports (useful when
	// comparing ANN and MLR banks).
	DisplayName string
}

// Name implements Strategy.
func (p *Prediction) Name() string {
	if p.DisplayName != "" {
		return p.DisplayName
	}
	return "prediction"
}

// Run implements Strategy.
func (p *Prediction) Run(b *workload.Benchmark, env *Env) (RunResult, error) {
	if p.Bank == nil {
		return RunResult{}, fmt.Errorf("core: prediction strategy has no predictor bank")
	}
	budget := pmu.SamplingBudget(b.Iterations, env.MaxSampleFraction)
	pred := p.Bank.Select(budget, env.CounterWidth)

	policies := make([]phasePolicy, len(b.Phases))
	for i := range policies {
		pol, err := newPredictionPolicy(env, pred, budget)
		if err != nil {
			return RunResult{}, err
		}
		policies[i] = pol
	}
	return execute(p.Name(), b, env, policies)
}

// predictionPolicy is the per-phase state machine: Sampling (run at the
// sampling configuration while rotating counters) → Decided (locked to the
// selected configuration).
type predictionPolicy struct {
	env     *Env
	pred    Predictor
	sampler *pmu.Sampler
	rounds  int
	decided bool
	choice  topology.Placement
}

func newPredictionPolicy(env *Env, pred Predictor, budget int) (*predictionPolicy, error) {
	file, err := pmu.NewCounterFile(env.CounterWidth)
	if err != nil {
		return nil, err
	}
	plan, err := pmu.PlanRotation(pred.Events(), env.CounterWidth, budget)
	if err != nil {
		return nil, err
	}
	return &predictionPolicy{
		env:     env,
		pred:    pred,
		sampler: pmu.NewSampler(file, plan),
	}, nil
}

func (pp *predictionPolicy) place(int) topology.Placement {
	if pp.decided {
		return pp.choice
	}
	return pp.env.SampleConfig
}

func (pp *predictionPolicy) observe(_ int, res machine.Result) error {
	if pp.decided {
		return nil
	}
	if err := pp.sampler.Observe(res.Counts); err != nil {
		return err
	}
	pp.rounds++
	if !pp.sampler.Done() {
		return nil
	}
	return pp.decide()
}

// decide ranks the sampling configuration's observed IPC against the
// predicted IPC of every other configuration and locks in the winner.
func (pp *predictionPolicy) decide() error {
	rates := pp.sampler.Rates()
	preds, err := pp.pred.PredictIPC(rates)
	if err != nil {
		return err
	}
	bestName := pp.env.SampleConfig.Name
	bestIPC := rates[pmu.Instructions] // observed IPC at the sample config
	for name, ipc := range preds {
		if name == pp.env.SampleConfig.Name {
			continue
		}
		if ipc > bestIPC {
			bestIPC, bestName = ipc, name
		}
	}
	pl, ok := pp.env.configByName(bestName)
	if !ok {
		return fmt.Errorf("core: predictor proposed unknown config %q", bestName)
	}
	pp.choice = pl
	pp.decided = true
	return nil
}

func (pp *predictionPolicy) sampling() bool { return !pp.decided }

func (pp *predictionPolicy) sampledRounds() int { return pp.rounds }

func (pp *predictionPolicy) finalConfig() string {
	if pp.decided {
		return pp.choice.Name
	}
	return pp.env.SampleConfig.Name
}
