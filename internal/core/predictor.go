// Package core implements ACTOR — the Adaptive Concurrency Throttling
// Optimization Runtime that is the paper's primary contribution.
//
// ACTOR instruments iterative parallel programs at phase (parallel region)
// granularity. For each phase it samples hardware performance counters for
// a few timesteps at maximal concurrency — rotating event pairs through the
// two-counter PMU, within a sampling budget of at most 20% of total
// iterations — feeds the observed event rates to an offline-trained
// predictor (an ANN ensemble, or the prior-work linear-regression baseline),
// predicts aggregate IPC for every candidate thread count and placement,
// and locks the phase to the best configuration for the rest of the run.
//
// The package provides the adaptation strategies evaluated in the paper's
// Fig. 8 — static all-cores, oracle global, oracle per-phase, and
// prediction-based — plus the online empirical-search baseline of the
// authors' earlier work, and a live instrumentation API for real programs.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/mlr"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/pmu"
)

// Predictor estimates aggregate IPC on target configurations from event
// rates observed at the sampling configuration — equation (2) of the paper.
type Predictor interface {
	// Events returns the programmable events the predictor's feature
	// vector requires, in order. The returned slice is the predictor's
	// own and must not be mutated.
	Events() []pmu.Event
	// NumEvents returns len(Events()) without exposing the slice — the
	// bank's budget arithmetic calls this in a loop.
	NumEvents() int
	// PredictIPC maps observed rates to predicted IPC per target
	// configuration name.
	PredictIPC(rates pmu.Rates) (map[string]float64, error)
}

// ANNPredictor wraps one ann.Ensemble per target configuration, all sharing
// a single feature event list.
type ANNPredictor struct {
	events  []pmu.Event
	targets map[string]*ann.Ensemble
	vecPool sync.Pool // recycled feature vectors
}

// NewANNPredictor builds a predictor from per-target ensembles. All
// ensembles must expect len(events)+1 features.
func NewANNPredictor(events []pmu.Event, targets map[string]*ann.Ensemble) (*ANNPredictor, error) {
	if len(targets) == 0 {
		return nil, errors.New("core: predictor needs at least one target model")
	}
	want := len(events) + 1
	for name, e := range targets {
		if e.InputDim() != want {
			return nil, fmt.Errorf("core: target %q model expects %d features, events imply %d",
				name, e.InputDim(), want)
		}
	}
	return &ANNPredictor{events: append([]pmu.Event(nil), events...), targets: targets}, nil
}

// Events returns the feature event list (read-only; not a copy).
func (p *ANNPredictor) Events() []pmu.Event { return p.events }

// Targets returns the per-configuration ensembles (read-only; not a copy).
// Serializers walk it to flatten the bank; mutating it would corrupt the
// live predictor.
func (p *ANNPredictor) Targets() map[string]*ann.Ensemble { return p.targets }

// NumEvents returns the feature event count.
func (p *ANNPredictor) NumEvents() int { return len(p.events) }

// PredictIPC evaluates every target ensemble on the rates.
func (p *ANNPredictor) PredictIPC(rates pmu.Rates) (map[string]float64, error) {
	bp, ok := p.vecPool.Get().(*[]float64)
	if !ok {
		bp = new([]float64)
	}
	x := rates.VectorInto(*bp, p.events)
	*bp = x // keep any regrown backing array
	out := make(map[string]float64, len(p.targets))
	for name, e := range p.targets {
		out[name] = e.Predict(x)
	}
	p.vecPool.Put(bp)
	return out, nil
}

// MLRPredictor is the regression-baseline equivalent of ANNPredictor.
type MLRPredictor struct {
	events  []pmu.Event
	targets map[string]*mlr.Model
	vecPool sync.Pool
}

// NewMLRPredictor builds a linear-regression predictor from per-target
// models.
func NewMLRPredictor(events []pmu.Event, targets map[string]*mlr.Model) (*MLRPredictor, error) {
	if len(targets) == 0 {
		return nil, errors.New("core: predictor needs at least one target model")
	}
	want := len(events) + 1
	for name, m := range targets {
		if m.InputDim() != want {
			return nil, fmt.Errorf("core: target %q model expects %d features, events imply %d",
				name, m.InputDim(), want)
		}
	}
	return &MLRPredictor{events: append([]pmu.Event(nil), events...), targets: targets}, nil
}

// Events returns the feature event list (read-only; not a copy).
func (p *MLRPredictor) Events() []pmu.Event { return p.events }

// Targets returns the per-configuration linear models (read-only; not a
// copy).
func (p *MLRPredictor) Targets() map[string]*mlr.Model { return p.targets }

// NumEvents returns the feature event count.
func (p *MLRPredictor) NumEvents() int { return len(p.events) }

// PredictIPC evaluates every target model on the rates.
func (p *MLRPredictor) PredictIPC(rates pmu.Rates) (map[string]float64, error) {
	bp, ok := p.vecPool.Get().(*[]float64)
	if !ok {
		bp = new([]float64)
	}
	x := rates.VectorInto(*bp, p.events)
	*bp = x // keep any regrown backing array
	out := make(map[string]float64, len(p.targets))
	for name, m := range p.targets {
		out[name] = m.Predict(x)
	}
	p.vecPool.Put(bp)
	return out, nil
}

// Bank holds predictors for several feature-set sizes so the runtime can
// fall back to a reduced event set when an application's iteration count
// leaves too small a sampling budget (the paper's FT/IS/MG fallback).
// Predictors are kept sorted by descending feature count.
type Bank struct {
	predictors []Predictor
}

// NewBank assembles a bank, ordering predictors by descending event count.
func NewBank(preds ...Predictor) (*Bank, error) {
	if len(preds) == 0 {
		return nil, errors.New("core: empty predictor bank")
	}
	ps := append([]Predictor(nil), preds...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].NumEvents() > ps[j].NumEvents() })
	return &Bank{predictors: ps}, nil
}

// Select returns the richest predictor whose event rotation fits within
// maxRounds timesteps on a counter file of the given width, falling back to
// the smallest predictor when none fit. It allocates nothing.
func (b *Bank) Select(maxRounds, counterWidth int) Predictor {
	for _, p := range b.predictors {
		need := (p.NumEvents() + counterWidth - 1) / counterWidth
		if need <= maxRounds {
			return p
		}
	}
	return b.predictors[len(b.predictors)-1]
}

// Predictors returns the bank contents (descending feature count).
func (b *Bank) Predictors() []Predictor {
	return append([]Predictor(nil), b.predictors...)
}

// TrainANNBank trains one ANN ensemble per (feature set, target config)
// from the phase samples, returning a bank with one predictor per feature
// set. eventCounts lists the feature-set sizes (e.g. 12, 4, 2); targets
// lists target configuration names; folds is the cross-validation k.
func TrainANNBank(samples []dataset.PhaseSample, eventCounts []int, targets []string, folds int, cfg ann.Config) (*Bank, error) {
	var preds []Predictor
	for _, ec := range eventCounts {
		events := pmu.ReducedEventSet((ec + 1) / 2)
		if len(events) > ec {
			events = events[:ec]
		}
		// Feature vectors are target-independent: extract them once and
		// share across every target's training set.
		byTarget, err := dataset.ToSamplesMulti(samples, events, targets)
		if err != nil {
			return nil, err
		}
		// Targets are independent training problems; fan them out. Each
		// ensemble's folds fan out one level further inside TrainEnsemble.
		ensembles, err := parallel.Map(len(targets), func(i int) (*ann.Ensemble, error) {
			t := targets[i]
			ens, err := ann.TrainEnsemble(byTarget[t], folds, cfg)
			if err != nil {
				return nil, fmt.Errorf("train ANN (events=%d, target=%s): %w", ec, t, err)
			}
			return ens, nil
		})
		if err != nil {
			return nil, err
		}
		models := make(map[string]*ann.Ensemble, len(targets))
		for i, t := range targets {
			models[t] = ensembles[i]
		}
		p, err := NewANNPredictor(events, models)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	return NewBank(preds...)
}

// TrainMLRBank is the linear-regression counterpart of TrainANNBank.
func TrainMLRBank(samples []dataset.PhaseSample, eventCounts []int, targets []string, ridge float64) (*Bank, error) {
	var preds []Predictor
	for _, ec := range eventCounts {
		events := pmu.ReducedEventSet((ec + 1) / 2)
		if len(events) > ec {
			events = events[:ec]
		}
		byTarget, err := dataset.ToSamplesMulti(samples, events, targets)
		if err != nil {
			return nil, err
		}
		models := make(map[string]*mlr.Model, len(targets))
		for _, t := range targets {
			m, err := mlr.Fit(byTarget[t], ridge)
			if err != nil {
				return nil, fmt.Errorf("train MLR (events=%d, target=%s): %w", ec, t, err)
			}
			models[t] = m
		}
		p, err := NewMLRPredictor(events, models)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	return NewBank(preds...)
}
