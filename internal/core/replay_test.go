package core

import (
	"strings"
	"testing"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
)

// TestReplayTableMatchesRunPhaseWithNoise pins the replay engine's ground
// contract: a replayTable row plus ApplyNoise is bit-identical — noise
// stream included — to calling RunPhase in the same order on an
// identically-seeded machine, for both on-table and off-table placements.
func TestReplayTableMatchesRunPhaseWithNoise(t *testing.T) {
	mkEnv := func() *Env {
		m, err := machine.New(topology.QuadCoreXeon())
		if err != nil {
			t.Fatal(err)
		}
		noisy := m.WithNoise(noise.New(99), 0.03, 0.12)
		return NewEnv(noisy, m, power.Default())
	}
	b, _ := npb.ByName("SP")
	p := &b.Phases[0]

	// The probe sequence mixes table placements with one the table has
	// never seen (core 3 alone), exercising the fallback path.
	offTable := topology.Placement{Name: "solo3", Cores: []topology.CoreID{3}}
	seq := []topology.Placement{}
	for _, name := range []string{"4", "1", "2a", "4", "2b", "3", "4"} {
		pl, _ := topology.ConfigByName(name)
		seq = append(seq, pl)
	}
	seq = append(seq, offTable, seq[0])

	envA := mkEnv()
	rt := newReplayTable(newReplayIndex(envA.replayCandidates()))
	envB := mkEnv()

	for i, pl := range seq {
		got := rt.run(envA, p, b.Idiosyncrasy, pl)
		want := envB.Machine.RunPhase(p, b.Idiosyncrasy, pl)
		if got.TimeSec != want.TimeSec || got.AggIPC != want.AggIPC ||
			got.Counts != want.Counts {
			t.Fatalf("replay step %d (%s) diverges from sequential RunPhase", i, pl.Name)
		}
	}
}

// TestExecuteStrategiesOnHeteroTopology runs the full strategy engine on a
// heterogeneous machine: static, search and oracles over the enumerated
// placement space, confirming the replay path needs nothing quad-core.
func TestExecuteStrategiesOnHeteroTopology(t *testing.T) {
	topo, err := topology.ParseDesc("2x2+2x2:little")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := machine.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	truth = truth.WithMemo()
	noisy := truth.WithNoise(noise.New(7), 0.03, 0.12)
	cfgs := topology.EnumeratePlacements(topo)
	env := NewEnvWith(noisy, truth, power.Default(), cfgs)
	b, _ := npb.ByName("CG")

	static := &Static{Config: cfgs[len(cfgs)-1].Name}
	rs, err := static.Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := OraclePhase{}.Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	if ro.TimeSec > rs.TimeSec {
		t.Errorf("phase oracle (%.2fs) slower than all-cores static (%.2fs) on hetero machine", ro.TimeSec, rs.TimeSec)
	}
	rsearch, err := (&Search{ProbesPerConfig: 1}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	if rsearch.SampleRounds == 0 {
		t.Error("search probed nothing on the hetero config space")
	}
}

// TestEnvValidateRejectsMismatchedTopology is the satellite validation fix:
// the paper's quad-core configs on a smaller machine must fail with a
// descriptive error instead of panicking deep in the solve.
func TestEnvValidateRejectsMismatchedTopology(t *testing.T) {
	topo, err := topology.NewBuilder("tiny").Group(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(m, m, power.Default()) // paper configs on a 2-core machine
	err = env.Validate()
	if err == nil {
		t.Fatal("Env.Validate accepted paper configs on a 2-core machine")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error not descriptive: %v", err)
	}
	b, _ := npb.ByName("CG")
	if _, err := (&Static{Config: "4"}).Run(b, env); err == nil {
		t.Error("strategy ran with a mismatched config space")
	}
}
