package core

import (
	"math"
	"testing"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

func newEnv(t *testing.T) *Env {
	t.Helper()
	truth, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		t.Fatal(err)
	}
	noisy := truth.WithNoise(noise.New(3), 0.01, 0.05)
	return NewEnv(noisy, truth, power.Default())
}

func smallBench(t *testing.T) *workload.Benchmark {
	t.Helper()
	b, err := npb.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	b.Iterations = 20 // keep strategy tests fast
	return b
}

func TestEnvValidate(t *testing.T) {
	env := newEnv(t)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *env
	bad.CounterWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero counter width accepted")
	}
	bad = *env
	bad.MaxSampleFraction = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sampling fraction accepted")
	}
	bad = *env
	bad.Configs = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty config space accepted")
	}
}

func TestStaticStrategy(t *testing.T) {
	env := newEnv(t)
	b := smallBench(t)
	res, err := (&Static{Config: "4"}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeSec <= 0 || res.EnergyJ <= 0 || res.ED2 <= 0 {
		t.Errorf("non-positive accounting: %+v", res)
	}
	if res.Migrations != 0 {
		t.Errorf("static run migrated %d times", res.Migrations)
	}
	for phase, cfg := range res.PhaseConfigs {
		if cfg != "4" {
			t.Errorf("phase %s on %s, want 4", phase, cfg)
		}
	}
	if _, err := (&Static{Config: "9z"}).Run(b, env); err == nil {
		t.Error("unknown config accepted")
	}
	// ED2 consistency: E·T².
	if got, want := res.ED2, res.EnergyJ*res.TimeSec*res.TimeSec; math.Abs(got-want) > 1e-6*want {
		t.Errorf("ED2 = %g, want %g", got, want)
	}
}

func TestOracleRelations(t *testing.T) {
	env := newEnv(t)
	// Use the pristine machine for measurement too, so oracle relations
	// hold exactly (no run-to-run noise).
	env.Machine = env.Truth
	b := smallBench(t)

	static4, err := (&Static{Config: "4"}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	global, err := (OracleGlobal{}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	phase, err := (OraclePhase{}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	if global.TimeSec > static4.TimeSec*1.0001 {
		t.Errorf("global optimal (%.3fs) slower than static-4 (%.3fs)", global.TimeSec, static4.TimeSec)
	}
	// Phase optimal beats global optimal up to migration costs.
	if phase.TimeSec > global.TimeSec*1.02 {
		t.Errorf("phase optimal (%.3fs) clearly slower than global optimal (%.3fs)", phase.TimeSec, global.TimeSec)
	}
}

func TestGlobalAndPhaseOptimal(t *testing.T) {
	env := newEnv(t)
	b := smallBench(t)
	best, times, err := GlobalOptimal(b, env.Truth, env.Configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(env.Configs) {
		t.Errorf("times for %d configs, want %d", len(times), len(env.Configs))
	}
	for _, cfg := range env.Configs {
		if times[best.Name] > times[cfg.Name] {
			t.Errorf("global optimal %s (%.3f) beaten by %s (%.3f)",
				best.Name, times[best.Name], cfg.Name, times[cfg.Name])
		}
	}
	bests, err := PhaseOptimal(b, env.Truth, env.Configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bests) != len(b.Phases) {
		t.Fatalf("per-phase bests = %d, want %d", len(bests), len(b.Phases))
	}
	for pi := range b.Phases {
		tBest := env.Truth.RunPhase(&b.Phases[pi], b.Idiosyncrasy, bests[pi]).TimeSec
		for _, cfg := range env.Configs {
			if tBest > env.Truth.RunPhase(&b.Phases[pi], b.Idiosyncrasy, cfg).TimeSec*1.0001 {
				t.Errorf("phase %d: %s not optimal", pi, bests[pi].Name)
			}
		}
	}
}

func TestRankConfigsByTime(t *testing.T) {
	env := newEnv(t)
	b := smallBench(t)
	ranking := RankConfigsByTime(&b.Phases[0], b.Idiosyncrasy, env.Truth, env.Configs)
	if len(ranking) != len(env.Configs) {
		t.Fatalf("ranking has %d entries", len(ranking))
	}
	prev := -1.0
	for _, name := range ranking {
		cfg, ok := topology.ConfigByName(name)
		if !ok {
			t.Fatalf("unknown config %q in ranking", name)
		}
		tt := env.Truth.RunPhase(&b.Phases[0], b.Idiosyncrasy, cfg).TimeSec
		if tt < prev {
			t.Error("ranking not sorted by time")
		}
		prev = tt
	}
}

func TestSearchStrategy(t *testing.T) {
	env := newEnv(t)
	b := smallBench(t)
	res, err := (&Search{ProbesPerConfig: 1}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	// The search probes every config once per phase.
	if want := len(b.Phases) * len(env.Configs); res.SampleRounds < want {
		t.Errorf("search probed %d times, want ≥ %d", res.SampleRounds, want)
	}
	for phase, cfg := range res.PhaseConfigs {
		if _, ok := topology.ConfigByName(cfg); !ok {
			t.Errorf("phase %s locked to unknown config %q", phase, cfg)
		}
	}
}

// trainSmallBank builds a fast ANN bank from two benchmarks.
func trainSmallBank(t *testing.T, env *Env) *Bank {
	t.Helper()
	collector := dataset.NewCollector(env.Machine, env.Truth)
	collector.Repetitions = 2
	var samples []dataset.PhaseSample
	for _, name := range []string{"BT", "MG", "LU"} {
		b, _ := npb.ByName(name)
		ss, err := collector.CollectBenchmark(b)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, ss...)
	}
	cfg := ann.DefaultConfig()
	cfg.MaxEpochs = 60
	cfg.Patience = 10
	bank, err := TrainANNBank(samples, []int{12, 4}, []string{"1", "2a", "2b", "3"}, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bank
}

func TestBankSelect(t *testing.T) {
	env := newEnv(t)
	bank := trainSmallBank(t, env)
	if got := bank.Select(6, 2); len(got.Events()) != 12 {
		t.Errorf("budget 6 selected %d events, want 12", len(got.Events()))
	}
	if got := bank.Select(2, 2); len(got.Events()) != 4 {
		t.Errorf("budget 2 selected %d events, want 4", len(got.Events()))
	}
	// Nothing fits → smallest predictor.
	if got := bank.Select(1, 2); len(got.Events()) != 4 {
		t.Errorf("budget 1 selected %d events, want smallest (4)", len(got.Events()))
	}
}

func TestPredictionStrategyRuns(t *testing.T) {
	env := newEnv(t)
	bank := trainSmallBank(t, env)
	b := smallBench(t) // CG was not in the training set: leave-one-out
	res, err := (&Prediction{Bank: bank}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleRounds == 0 {
		t.Error("prediction strategy never sampled")
	}
	budget := pmu.SamplingBudget(b.Iterations, env.MaxSampleFraction)
	if res.SampleRounds > budget*len(b.Phases) {
		t.Errorf("sampled %d rounds, budget %d per phase", res.SampleRounds, budget)
	}
	for phase, cfg := range res.PhaseConfigs {
		if _, ok := topology.ConfigByName(cfg); !ok {
			t.Errorf("phase %s locked to unknown config %q", phase, cfg)
		}
	}
	// Against an easy baseline: adaptation must not be catastrophically
	// worse than static-4 (sampling overhead is bounded by the budget).
	static4, err := (&Static{Config: "4"}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeSec > static4.TimeSec*1.5 {
		t.Errorf("prediction run %.3fs vs static-4 %.3fs: overhead out of control",
			res.TimeSec, static4.TimeSec)
	}
}

func TestPredictionRequiresBank(t *testing.T) {
	env := newEnv(t)
	b := smallBench(t)
	if _, err := (&Prediction{}).Run(b, env); err == nil {
		t.Error("prediction without bank accepted")
	}
}

func TestPredictorValidation(t *testing.T) {
	if _, err := NewANNPredictor(nil, nil); err == nil {
		t.Error("empty ANN predictor accepted")
	}
	if _, err := NewMLRPredictor(nil, nil); err == nil {
		t.Error("empty MLR predictor accepted")
	}
	if _, err := NewBank(); err == nil {
		t.Error("empty bank accepted")
	}
}

func TestMigrationAccounting(t *testing.T) {
	env := newEnv(t)
	env.Machine = env.Truth
	b := smallBench(t)
	// Force alternating placements by phase: odd phases on 2b, even on 4.
	bests, _ := PhaseOptimal(b, env.Truth, env.Configs)
	differ := false
	for i := 1; i < len(bests); i++ {
		if bests[i].Name != bests[i-1].Name {
			differ = true
		}
	}
	if !differ {
		t.Skip("phase optima coincide; no migration to observe")
	}
	res, err := (OraclePhase{}).Run(b, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Error("no migrations recorded despite differing phase placements")
	}
	if res.MigrationTimeSec <= 0 {
		t.Error("migration time not accounted")
	}
}
