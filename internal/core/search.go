package core

import (
	"math"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// Search is the empirical online-search baseline from the authors' earlier
// work ([17]): execute each candidate configuration for a probe iteration
// per phase, time it, and lock in the fastest. Its overhead grows linearly
// with the configuration space — the scaling argument the paper makes for
// prediction over search on future many-core machines — and it burns probe
// iterations on bad configurations.
type Search struct {
	// ProbesPerConfig is how many iterations each candidate runs during
	// the search (1 in the classic scheme; more averages out noise).
	ProbesPerConfig int
}

// Name implements Strategy.
func (s *Search) Name() string { return "search" }

// Run implements Strategy.
func (s *Search) Run(b *workload.Benchmark, env *Env) (RunResult, error) {
	probes := s.ProbesPerConfig
	if probes < 1 {
		probes = 1
	}
	policies := make([]phasePolicy, len(b.Phases))
	for i := range policies {
		policies[i] = &searchPolicy{env: env, probes: probes}
	}
	return execute(s.Name(), b, env, policies)
}

// searchPolicy probes configurations in order, accumulating measured times,
// then locks the fastest.
type searchPolicy struct {
	env     *Env
	probes  int
	tried   int // total probe executions so far
	sums    []float64
	decided bool
	choice  topology.Placement
}

func (sp *searchPolicy) place(int) topology.Placement {
	if sp.decided {
		return sp.choice
	}
	cfg := sp.tried / sp.probes
	if cfg >= len(sp.env.Configs) {
		cfg = len(sp.env.Configs) - 1
	}
	return sp.env.Configs[cfg]
}

func (sp *searchPolicy) observe(_ int, res machine.Result) error {
	if sp.decided {
		return nil
	}
	if sp.sums == nil {
		sp.sums = make([]float64, len(sp.env.Configs))
	}
	cfg := sp.tried / sp.probes
	if cfg < len(sp.sums) {
		sp.sums[cfg] += res.TimeSec
	}
	sp.tried++
	if sp.tried >= sp.probes*len(sp.env.Configs) {
		best, bestT := 0, math.Inf(1)
		for i, t := range sp.sums {
			if t < bestT {
				bestT, best = t, i
			}
		}
		sp.choice = sp.env.Configs[best]
		sp.decided = true
	}
	return nil
}

func (sp *searchPolicy) sampling() bool { return !sp.decided }

func (sp *searchPolicy) sampledRounds() int { return sp.tried }

func (sp *searchPolicy) finalConfig() string {
	if sp.decided {
		return sp.choice.Name
	}
	return sp.place(0).Name
}
