package core

import (
	"testing"

	"github.com/greenhpc/actor/internal/pmu"
)

func TestPredictorSerializationRoundTrip(t *testing.T) {
	env := newEnv(t)
	bank := trainSmallBank(t, env)
	pred := bank.Predictors()[0].(*ANNPredictor)

	data, err := MarshalPredictor(pred)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPredictor(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events()) != len(pred.Events()) {
		t.Fatalf("events %d, want %d", len(back.Events()), len(pred.Events()))
	}
	// Identical predictions on a realistic rate vector.
	rates := pmu.Rates{pmu.Instructions: 1.1}
	for _, e := range pred.Events() {
		rates[e] = 0.01
	}
	a, err := pred.PredictIPC(rates)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.PredictIPC(rates)
	if err != nil {
		t.Fatal(err)
	}
	for cfg, v := range a {
		if b[cfg] != v {
			t.Errorf("config %s: %g vs %g after round trip", cfg, v, b[cfg])
		}
	}
}

func TestUnmarshalPredictorRejectsMalformed(t *testing.T) {
	if _, err := UnmarshalPredictor([]byte(`{`)); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := UnmarshalPredictor([]byte(`{"events":[],"targets":{}}`)); err == nil {
		t.Error("empty predictor accepted")
	}
	if _, err := UnmarshalPredictor([]byte(`{"events":["NO_SUCH_EVENT"],"targets":{"1":{"nets":[{"sizes":[2,1],"weights":[[[0,0,0]]]}],"scaler":{"mean":[0],"std":[1],"ymin":0,"ymax":1}}}}`)); err == nil {
		t.Error("unknown event name accepted")
	}
}
