// Package pmu models the hardware performance monitoring unit of the
// paper's platform: a Core-2-class PMU that can program only **two** event
// counters simultaneously, forcing ACTOR to rotate event pairs across
// timesteps to collect its twelve-event feature vector (the paper's
// "collection across multiple timesteps").
//
// The package provides the event catalogue, the programmable counter file,
// the rotation scheduler with the paper's 20%-of-iterations sampling budget,
// and the reduced event sets used for short-iteration applications (FT, IS,
// MG in the paper).
package pmu

import "fmt"

// Event identifies a hardware performance event.
type Event int

// The event catalogue mirrors the Core-2 events PAPI 3.5 exposes for cache
// and bus behaviour — the "collection that represent performance-critical
// resources" the paper selects — plus the fixed instruction/cycle counts
// needed to form rates and IPC.
const (
	// Instructions and Cycles are conceptually fixed counters: retired
	// instruction count and unhalted core cycles. They are always
	// collected (the time-stamp counter and retirement counters are free)
	// and every other event is normalised by Cycles to form a rate.
	Instructions Event = iota
	Cycles

	// Programmable events, two at a time.
	L1DReferences  // L1 data cache references (loads+stores reaching L1D)
	L1DMisses      // L1D replacement fills (misses to the L2 group)
	L2References   // L2 requests from this core
	L2Misses       // L2 lines brought in from the bus (capacity+cold)
	BusTransMem    // memory transactions on the FSB attributable to core
	BusDrdyClocks  // bus data-ready clocks: occupancy of the FSB
	LoadsRetired   // retired load instructions
	StoresRetired  // retired store instructions
	BranchesRet    // retired branch instructions
	BranchMisses   // mispredicted branches
	DTLBMisses     // data TLB misses
	ResourceStalls // cycles stalled for ROB/RS/store-buffer resources

	numEvents
)

// NumEvents is the total number of defined events, including the fixed
// Instructions and Cycles counters.
const NumEvents = int(numEvents)

var eventNames = [...]string{
	Instructions:   "INST_RETIRED",
	Cycles:         "CPU_CLK_UNHALTED",
	L1DReferences:  "L1D_ALL_REF",
	L1DMisses:      "L1D_REPL",
	L2References:   "L2_RQSTS",
	L2Misses:       "L2_LINES_IN",
	BusTransMem:    "BUS_TRANS_MEM",
	BusDrdyClocks:  "BUS_DRDY_CLOCKS",
	LoadsRetired:   "INST_RETIRED_LOADS",
	StoresRetired:  "INST_RETIRED_STORES",
	BranchesRet:    "BR_INST_RETIRED",
	BranchMisses:   "BR_MISSP_RETIRED",
	DTLBMisses:     "DTLB_MISSES",
	ResourceStalls: "RESOURCE_STALLS",
}

// String returns the PAPI-style mnemonic of the event.
func (e Event) String() string {
	if e < 0 || int(e) >= NumEvents {
		return fmt.Sprintf("Event(%d)", int(e))
	}
	return eventNames[e]
}

// EventByName returns the event with the given PAPI-style mnemonic.
func EventByName(name string) (Event, bool) {
	for e := Event(0); int(e) < NumEvents; e++ {
		if eventNames[e] == name {
			return e, true
		}
	}
	return 0, false
}

// Programmable reports whether the event needs one of the two programmable
// counters (true for everything except Instructions and Cycles).
func (e Event) Programmable() bool {
	return e != Instructions && e != Cycles
}

// FullEventSet returns the paper's twelve programmable cache/bus events in
// priority order (most informative first, as used when the sampling budget
// forces truncation).
func FullEventSet() []Event {
	return []Event{
		L2Misses, BusTransMem, L1DMisses, L2References,
		BusDrdyClocks, ResourceStalls, LoadsRetired, StoresRetired,
		DTLBMisses, BranchesRet, BranchMisses, L1DReferences,
	}
}

// ReducedEventSet returns the truncated event list fitting within
// maxPairs rotation rounds (two events per round). The paper uses reduced
// sets for applications with few iterations (FT, IS, MG) so that sampling
// stays under 20% of execution.
func ReducedEventSet(maxPairs int) []Event {
	full := FullEventSet()
	n := maxPairs * 2
	if n >= len(full) {
		return full
	}
	if n < 2 {
		n = 2
	}
	return full[:n]
}

// Counts is a single sampling observation: raw event counts accumulated
// over one measured interval, indexed by Event. It is a fixed-size array
// rather than a map so that producing, copying and perturbing counts in the
// machine model's hot path allocates nothing; an event the hardware did not
// measure simply reads zero.
type Counts [NumEvents]float64

// Rates converts raw counts into per-cycle event rates, the feature form
// the ANN consumes. Instructions become IPC; every programmable event is
// divided by the observed cycle count. A zero cycle count yields nil.
func (c Counts) Rates() Rates {
	cyc := c[Cycles]
	if cyc <= 0 {
		return nil
	}
	r := make(Rates, NumEvents)
	for e := Event(0); int(e) < NumEvents; e++ {
		if e == Cycles {
			continue
		}
		r[e] = c[e] / cyc
	}
	return r
}

// Rates maps events to per-cycle rates. Rates[Instructions] is IPC.
type Rates map[Event]float64

// Vector flattens the rates into a feature vector ordered as
// [IPC, events...] for the given programmable event list. Missing events
// yield zeros (the model treats unmeasured features as average after
// normalisation).
func (r Rates) Vector(events []Event) []float64 {
	return r.VectorInto(nil, events)
}

// VectorInto is the allocation-free form of Vector: it writes the feature
// vector into dst (grown if too small) and returns the filled slice.
func (r Rates) VectorInto(dst []float64, events []Event) []float64 {
	n := 1 + len(events)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	dst[0] = r[Instructions]
	for i, e := range events {
		dst[1+i] = r[e]
	}
	return dst
}
