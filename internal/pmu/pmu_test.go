package pmu

import (
	"testing"
)

func TestEventNames(t *testing.T) {
	if Instructions.String() != "INST_RETIRED" {
		t.Errorf("Instructions = %q", Instructions.String())
	}
	if Event(99).String() == "" {
		t.Error("out-of-range event has empty name")
	}
	for e := Event(0); int(e) < NumEvents; e++ {
		if e.String() == "" {
			t.Errorf("event %d has no name", e)
		}
	}
}

func TestProgrammable(t *testing.T) {
	if Instructions.Programmable() || Cycles.Programmable() {
		t.Error("fixed counters reported programmable")
	}
	if !L2Misses.Programmable() {
		t.Error("L2Misses not programmable")
	}
}

func TestFullEventSet(t *testing.T) {
	full := FullEventSet()
	if len(full) != 12 {
		t.Fatalf("full event set has %d events, want 12 (the paper's set)", len(full))
	}
	seen := map[Event]bool{}
	for _, e := range full {
		if !e.Programmable() {
			t.Errorf("fixed counter %v in programmable set", e)
		}
		if seen[e] {
			t.Errorf("duplicate event %v", e)
		}
		seen[e] = true
	}
}

func TestReducedEventSet(t *testing.T) {
	if got := ReducedEventSet(1); len(got) != 2 {
		t.Errorf("ReducedEventSet(1) has %d events, want 2", len(got))
	}
	if got := ReducedEventSet(2); len(got) != 4 {
		t.Errorf("ReducedEventSet(2) has %d events, want 4", len(got))
	}
	if got := ReducedEventSet(100); len(got) != 12 {
		t.Errorf("ReducedEventSet(100) has %d events, want 12", len(got))
	}
	if got := ReducedEventSet(0); len(got) != 2 {
		t.Errorf("ReducedEventSet(0) has %d events, want floor of 2", len(got))
	}
	// Priority order: the reduced set is a prefix of the full set.
	full := FullEventSet()
	red := ReducedEventSet(2)
	for i, e := range red {
		if full[i] != e {
			t.Errorf("reduced set not a prefix of full set at %d: %v vs %v", i, e, full[i])
		}
	}
}

func TestCounterFileWidth(t *testing.T) {
	if _, err := NewCounterFile(0); err == nil {
		t.Error("NewCounterFile(0) accepted")
	}
	f, err := NewCounterFile(2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Width() != 2 {
		t.Errorf("Width = %d", f.Width())
	}
}

func TestCounterFileProgramErrors(t *testing.T) {
	f, _ := NewCounterFile(2)
	if err := f.Program(L2Misses, BusTransMem, L1DMisses); err == nil {
		t.Error("programming 3 events on width 2 accepted")
	}
	if err := f.Program(Instructions); err == nil {
		t.Error("programming a fixed counter accepted")
	}
	if err := f.Program(L2Misses, L2Misses); err == nil {
		t.Error("programming duplicate events accepted")
	}
	if err := f.Program(L2Misses, BusTransMem); err != nil {
		t.Errorf("valid programming rejected: %v", err)
	}
	got := f.Programmed()
	if len(got) != 2 || got[0] != L2Misses || got[1] != BusTransMem {
		t.Errorf("Programmed = %v", got)
	}
}

func TestCounterFileReadVisibility(t *testing.T) {
	f, _ := NewCounterFile(2)
	truth := Counts{
		Instructions: 1000, Cycles: 2000,
		L2Misses: 10, BusTransMem: 20, L1DMisses: 30,
	}
	if err := f.Program(L2Misses, BusTransMem); err != nil {
		t.Fatal(err)
	}
	vis := f.Read(truth)
	if vis[Instructions] != 1000 || vis[Cycles] != 2000 {
		t.Error("fixed counters not visible")
	}
	if vis[L2Misses] != 10 || vis[BusTransMem] != 20 {
		t.Error("programmed events not visible")
	}
	if vis[L1DMisses] != 0 {
		t.Error("unprogrammed event leaked into visible counts")
	}
}

func TestRatesNormalisation(t *testing.T) {
	c := Counts{Instructions: 1000, Cycles: 2000, L2Misses: 100}
	r := c.Rates()
	if r[Instructions] != 0.5 {
		t.Errorf("IPC = %g, want 0.5", r[Instructions])
	}
	if r[L2Misses] != 0.05 {
		t.Errorf("L2Misses rate = %g, want 0.05", r[L2Misses])
	}
	if bad := (Counts{Instructions: 10}).Rates(); bad != nil {
		t.Error("Rates with zero cycles should be nil")
	}
}

func TestRatesVector(t *testing.T) {
	r := Rates{Instructions: 1.2, L2Misses: 0.01}
	v := r.Vector([]Event{L2Misses, BusTransMem})
	if len(v) != 3 || v[0] != 1.2 || v[1] != 0.01 || v[2] != 0 {
		t.Errorf("Vector = %v", v)
	}
}

func TestPlanRotationCoverage(t *testing.T) {
	plan, err := PlanRotation(FullEventSet(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumRounds() != 6 {
		t.Errorf("rounds = %d, want 6 for 12 events on width 2", plan.NumRounds())
	}
	covered := map[Event]bool{}
	for _, round := range plan.Rounds {
		if len(round) > 2 {
			t.Errorf("round with %d events exceeds width", len(round))
		}
		for _, e := range round {
			if covered[e] {
				t.Errorf("event %v measured twice in one rotation", e)
			}
			covered[e] = true
		}
	}
	if len(covered) != 12 {
		t.Errorf("rotation covered %d events, want 12", len(covered))
	}
}

func TestPlanRotationBudgetTruncates(t *testing.T) {
	plan, err := PlanRotation(FullEventSet(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumRounds() != 2 {
		t.Errorf("rounds = %d, want 2", plan.NumRounds())
	}
	if len(plan.Events) != 4 {
		t.Errorf("events = %d, want 4 (highest priority first)", len(plan.Events))
	}
	// Truncation keeps priority order.
	full := FullEventSet()
	for i, e := range plan.Events {
		if e != full[i] {
			t.Errorf("truncated plan event %d = %v, want %v", i, e, full[i])
		}
	}
}

func TestPlanRotationEmptyEvents(t *testing.T) {
	plan, err := PlanRotation(nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumRounds() != 1 {
		t.Errorf("rounds = %d, want 1 (IPC-only round)", plan.NumRounds())
	}
}

func TestPlanRotationRejectsDuplicates(t *testing.T) {
	if _, err := PlanRotation([]Event{L2Misses, L2Misses}, 2, 0); err == nil {
		t.Error("duplicate events accepted")
	}
}

func TestSamplerAveragesRates(t *testing.T) {
	file, _ := NewCounterFile(2)
	plan, _ := PlanRotation([]Event{L2Misses, BusTransMem, L1DMisses, DTLBMisses}, 2, 0)
	s := NewSampler(file, plan)
	if s.Done() {
		t.Fatal("sampler done before any observation")
	}
	if s.RoundsRemaining() != 2 {
		t.Errorf("rounds remaining = %d, want 2", s.RoundsRemaining())
	}
	// Round 1: measures L2Misses + BusTransMem.
	err := s.Observe(Counts{
		Instructions: 1000, Cycles: 1000,
		L2Misses: 50, BusTransMem: 20, L1DMisses: 999, DTLBMisses: 999,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 2: measures L1DMisses + DTLBMisses.
	err = s.Observe(Counts{
		Instructions: 2000, Cycles: 1000,
		L2Misses: 999, BusTransMem: 999, L1DMisses: 100, DTLBMisses: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("sampler not done after full rotation")
	}
	r := s.Rates()
	if r[Instructions] != 1.5 { // mean of IPC 1.0 and 2.0
		t.Errorf("mean IPC = %g, want 1.5", r[Instructions])
	}
	if r[L2Misses] != 0.05 {
		t.Errorf("L2Misses rate = %g, want 0.05 (from its round only)", r[L2Misses])
	}
	if r[L1DMisses] != 0.1 {
		t.Errorf("L1DMisses rate = %g, want 0.1", r[L1DMisses])
	}
	// Extra observations are ignored.
	if err := s.Observe(Counts{Instructions: 1, Cycles: 1}); err != nil {
		t.Errorf("post-completion observation errored: %v", err)
	}
	if got := s.Rates()[Instructions]; got != 1.5 {
		t.Errorf("post-completion observation changed rates: %g", got)
	}
}

func TestSamplerRejectsZeroCycles(t *testing.T) {
	file, _ := NewCounterFile(2)
	plan, _ := PlanRotation([]Event{L2Misses}, 2, 0)
	s := NewSampler(file, plan)
	if err := s.Observe(Counts{Instructions: 10}); err == nil {
		t.Error("zero-cycle observation accepted")
	}
}

func TestSamplingBudget(t *testing.T) {
	cases := []struct {
		iters int
		want  int
	}{{400, 80}, {10, 2}, {6, 1}, {4, 1}, {1, 1}, {0, 1}}
	for _, c := range cases {
		if got := SamplingBudget(c.iters, 0.20); got != c.want {
			t.Errorf("SamplingBudget(%d) = %d, want %d", c.iters, got, c.want)
		}
	}
}
