package pmu

// Derived metrics over event rates: the quantities analysts (and the
// paper's §III discussion) actually reason about — miss ratios, memory
// boundedness, bandwidth demand. They tolerate partially-measured rate
// maps (rotation budgets may omit events), returning ok=false when the
// inputs are absent.

// DerivedMetrics summarises a rate vector in architectural terms.
type DerivedMetrics struct {
	// IPC is instructions per cycle (aggregate over the sampled
	// configuration).
	IPC float64
	// L1MissRatio is L1D misses per L1D reference.
	L1MissRatio float64
	// L2MissRatio is L2 misses per L2 reference.
	L2MissRatio float64
	// MPKI is L2 misses per kilo-instruction, the classic cache metric.
	MPKI float64
	// BusBytesPerCycle estimates FSB demand (64-byte lines per bus
	// transaction).
	BusBytesPerCycle float64
	// StallFraction is the share of cycles lost to resource stalls.
	StallFraction float64
	// MemoryBound classifies the sample as bandwidth/latency dominated
	// (heuristic: high MPKI together with bus occupancy).
	MemoryBound bool
}

// Derive computes the metrics available from the given rates. Missing
// inputs leave the corresponding fields zero; ok is false when not even
// IPC is available.
func Derive(r Rates) (m DerivedMetrics, ok bool) {
	ipc, ok := r[Instructions]
	if !ok || ipc <= 0 {
		return DerivedMetrics{}, false
	}
	m.IPC = ipc
	if refs, okR := r[L1DReferences]; okR && refs > 0 {
		if miss, okM := r[L1DMisses]; okM {
			m.L1MissRatio = clampRatio(miss / refs)
		}
	}
	if refs, okR := r[L2References]; okR && refs > 0 {
		if miss, okM := r[L2Misses]; okM {
			m.L2MissRatio = clampRatio(miss / refs)
		}
	}
	if miss, okM := r[L2Misses]; okM {
		m.MPKI = miss / ipc * 1000
	}
	if bus, okB := r[BusTransMem]; okB {
		m.BusBytesPerCycle = bus * 64
	}
	if st, okS := r[ResourceStalls]; okS {
		m.StallFraction = clampRatio(st)
	}
	m.MemoryBound = m.MPKI > 5 && (m.BusBytesPerCycle > 0.5 || m.StallFraction > 0.5)
	return m, true
}

func clampRatio(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// BandwidthBytesPerSec converts BusBytesPerCycle into bytes/second at the
// given clock frequency.
func (m DerivedMetrics) BandwidthBytesPerSec(freqHz float64) float64 {
	return m.BusBytesPerCycle * freqHz
}
