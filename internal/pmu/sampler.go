package pmu

import (
	"errors"
	"fmt"
)

// CounterFile models the PMU's programmable counter registers. Width is the
// number of events that can be counted simultaneously (2 on the paper's
// platform). Instructions and Cycles are fixed counters and always
// available.
type CounterFile struct {
	width      int
	programmed []Event
}

// NewCounterFile returns a counter file of the given width.
func NewCounterFile(width int) (*CounterFile, error) {
	if width < 1 {
		return nil, errors.New("pmu: counter width must be ≥ 1")
	}
	return &CounterFile{width: width}, nil
}

// Width returns the number of simultaneously programmable counters.
func (f *CounterFile) Width() int { return f.width }

// Program selects the events counted during the next interval. It rejects
// more events than the hardware has counters for, duplicate events, and
// fixed events (which need no programming).
func (f *CounterFile) Program(events ...Event) error {
	if len(events) > f.width {
		return fmt.Errorf("pmu: %d events exceed counter width %d", len(events), f.width)
	}
	for i, e := range events {
		if e < 0 || int(e) >= NumEvents {
			return fmt.Errorf("pmu: unknown event %v", e)
		}
		if !e.Programmable() {
			return fmt.Errorf("pmu: %v is a fixed counter", e)
		}
		for j := 0; j < i; j++ {
			if events[j] == e {
				return fmt.Errorf("pmu: duplicate event %v", e)
			}
		}
	}
	f.programmed = append(f.programmed[:0], events...)
	return nil
}

// Programmed returns the currently selected events.
func (f *CounterFile) Programmed() []Event {
	return append([]Event(nil), f.programmed...)
}

// Read extracts the counts visible after an interval: the fixed counters
// plus only the programmed events, taken from the full ground-truth counts
// the machine model produced. This is the "you only see what you
// programmed" constraint that forces rotation.
func (f *CounterFile) Read(truth Counts) Counts {
	out := Counts{
		Instructions: truth[Instructions],
		Cycles:       truth[Cycles],
	}
	for _, e := range f.programmed {
		out[e] = truth[e]
	}
	return out
}

// RotationPlan is a schedule of event pairs across consecutive timesteps,
// respecting the counter width and the sampling budget.
type RotationPlan struct {
	// Rounds[i] lists the events programmed during timestep i.
	Rounds [][]Event
	// Events is the flattened, deduplicated event list the plan covers.
	Events []Event
}

// NumRounds returns how many sampled timesteps the plan needs.
func (p *RotationPlan) NumRounds() int { return len(p.Rounds) }

// PlanRotation builds a rotation schedule measuring the requested events on
// a counter file of the given width, subject to a budget of at most
// maxRounds sampled timesteps (≤ 0 means unlimited). When the budget is too
// small for every event, lower-priority events (later in the list) are
// dropped — the paper's "reduced number of events" fallback.
func PlanRotation(events []Event, width, maxRounds int) (*RotationPlan, error) {
	if width < 1 {
		return nil, errors.New("pmu: width must be ≥ 1")
	}
	var prog []Event
	var seen [NumEvents]bool
	for _, e := range events {
		if !e.Programmable() {
			continue // fixed counters are always collected
		}
		if e < 0 || int(e) >= NumEvents {
			return nil, fmt.Errorf("pmu: unknown event %v in rotation request", e)
		}
		if seen[e] {
			return nil, fmt.Errorf("pmu: duplicate event %v in rotation request", e)
		}
		seen[e] = true
		prog = append(prog, e)
	}
	need := (len(prog) + width - 1) / width
	if maxRounds > 0 && need > maxRounds {
		prog = prog[:maxRounds*width]
		need = maxRounds
	}
	if len(prog) == 0 {
		// Still one round to measure IPC from the fixed counters.
		return &RotationPlan{Rounds: [][]Event{{}}, Events: nil}, nil
	}
	plan := &RotationPlan{Events: append([]Event(nil), prog...)}
	for i := 0; i < need; i++ {
		lo, hi := i*width, (i+1)*width
		if hi > len(prog) {
			hi = len(prog)
		}
		plan.Rounds = append(plan.Rounds, append([]Event(nil), prog[lo:hi]...))
	}
	return plan, nil
}

// Sampler drives a rotation plan over consecutive observed timesteps and
// accumulates per-cycle rates. Each call to Observe consumes the
// ground-truth counts of one timestep at the sampling configuration.
type Sampler struct {
	file    *CounterFile
	plan    *RotationPlan
	round   int
	summed  [NumEvents]float64 // sum of per-cycle rates per event
	nSeen   [NumEvents]int     // observations per event
	ipcSum  float64
	ipcSeen int
}

// NewSampler builds a sampler for the plan on the counter file.
func NewSampler(file *CounterFile, plan *RotationPlan) *Sampler {
	return &Sampler{
		file: file,
		plan: plan,
	}
}

// Done reports whether the rotation completed a full cycle.
func (s *Sampler) Done() bool { return s.round >= len(s.plan.Rounds) }

// RoundsRemaining returns how many more timesteps must be observed.
func (s *Sampler) RoundsRemaining() int {
	r := len(s.plan.Rounds) - s.round
	if r < 0 {
		return 0
	}
	return r
}

// Observe ingests one timestep's ground-truth counts. It programs the
// counter file for the current round, reads back the visible counts, and
// accumulates rates. Observations after the plan completes are ignored.
func (s *Sampler) Observe(truth Counts) error {
	if s.Done() {
		return nil
	}
	if err := s.file.Program(s.plan.Rounds[s.round]...); err != nil {
		return err
	}
	visible := s.file.Read(truth)
	cyc := visible[Cycles]
	if cyc <= 0 {
		return errors.New("pmu: observation with zero cycles")
	}
	s.ipcSum += visible[Instructions] / cyc
	s.ipcSeen++
	for _, e := range s.plan.Rounds[s.round] {
		s.summed[e] += visible[e] / cyc
		s.nSeen[e]++
	}
	s.round++
	return nil
}

// Rates returns the averaged per-cycle rates across the completed rounds,
// with Rates[Instructions] the mean sampled IPC. Unmeasured events are
// absent from the map.
func (s *Sampler) Rates() Rates {
	r := make(Rates, NumEvents)
	if s.ipcSeen > 0 {
		r[Instructions] = s.ipcSum / float64(s.ipcSeen)
	}
	for e := Event(0); int(e) < NumEvents; e++ {
		if s.nSeen[e] > 0 {
			r[e] = s.summed[e] / float64(s.nSeen[e])
		}
	}
	return r
}

// SamplingBudget computes the maximum number of sampled timesteps allowed
// for an application with the given iteration count under the paper's rule
// that monitoring may consume at most maxFraction (0.20) of execution.
// At least one round is always allowed.
func SamplingBudget(iterations int, maxFraction float64) int {
	if iterations < 1 {
		return 1
	}
	b := int(maxFraction * float64(iterations))
	if b < 1 {
		b = 1
	}
	return b
}
