package pmu

import (
	"math"
	"testing"
)

func TestDeriveBasics(t *testing.T) {
	r := Rates{
		Instructions:   1.5,
		L1DReferences:  0.45,
		L1DMisses:      0.045,
		L2References:   0.045,
		L2Misses:       0.009,
		BusTransMem:    0.009,
		ResourceStalls: 0.4,
	}
	m, ok := Derive(r)
	if !ok {
		t.Fatal("derive failed")
	}
	if m.IPC != 1.5 {
		t.Errorf("IPC = %g", m.IPC)
	}
	if math.Abs(m.L1MissRatio-0.1) > 1e-12 {
		t.Errorf("L1MissRatio = %g, want 0.1", m.L1MissRatio)
	}
	if math.Abs(m.L2MissRatio-0.2) > 1e-12 {
		t.Errorf("L2MissRatio = %g, want 0.2", m.L2MissRatio)
	}
	if math.Abs(m.MPKI-6) > 1e-9 {
		t.Errorf("MPKI = %g, want 6", m.MPKI)
	}
	if math.Abs(m.BusBytesPerCycle-0.576) > 1e-12 {
		t.Errorf("BusBytesPerCycle = %g", m.BusBytesPerCycle)
	}
	if m.StallFraction != 0.4 {
		t.Errorf("StallFraction = %g", m.StallFraction)
	}
	if !m.MemoryBound {
		t.Error("high-MPKI high-bus sample not flagged memory bound")
	}
	if bw := m.BandwidthBytesPerSec(2.4e9); math.Abs(bw-0.576*2.4e9) > 1 {
		t.Errorf("bandwidth = %g", bw)
	}
}

func TestDeriveMissingInputs(t *testing.T) {
	if _, ok := Derive(Rates{}); ok {
		t.Error("empty rates derived")
	}
	m, ok := Derive(Rates{Instructions: 2})
	if !ok || m.IPC != 2 {
		t.Errorf("IPC-only derive = %+v (%v)", m, ok)
	}
	if m.MemoryBound {
		t.Error("IPC-only sample flagged memory bound")
	}
}

func TestDeriveClampsNoisyRatios(t *testing.T) {
	// Noisy counters can make misses exceed references; ratios clamp.
	m, ok := Derive(Rates{
		Instructions:  1,
		L1DReferences: 0.1,
		L1DMisses:     0.2,
	})
	if !ok || m.L1MissRatio != 1 {
		t.Errorf("L1MissRatio = %g, want clamped 1", m.L1MissRatio)
	}
}
