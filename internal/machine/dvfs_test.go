package machine

import (
	"math"
	"testing"

	"github.com/greenhpc/actor/internal/topology"
)

func TestWithFrequencySlowsComputeLinearly(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	p.Fingerprint = ""
	// A pure-compute phase: memory terms off.
	p.MemRefsPerInstr = 0.01
	p.L1MissRate = 0.001
	p.WorkingSetBytes = 16 * 1024
	cfg, _ := topology.ConfigByName("1")
	t1 := m.RunPhase(&p, 0, cfg).TimeSec
	t23 := m.WithFrequency(2.0/3).RunPhase(&p, 0, cfg).TimeSec
	ratio := t23 / t1
	if math.Abs(ratio-1.5) > 0.1 {
		t.Errorf("compute phase slowed ×%.3f at 2/3 clock, want ≈ 1.5", ratio)
	}
}

func TestWithFrequencyBarelyAffectsMemoryBound(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	p.Fingerprint = ""
	p.MemRefsPerInstr = 0.55
	p.L1MissRate = 0.45
	p.ColdMissRate = 0.35
	p.MLP = 10
	p.PrefetchFriendly = 0.8
	cfg, _ := topology.ConfigByName("2b")
	t1 := m.RunPhase(&p, 0, cfg).TimeSec
	t23 := m.WithFrequency(2.0/3).RunPhase(&p, 0, cfg).TimeSec
	ratio := t23 / t1
	if ratio > 1.25 {
		t.Errorf("memory-bound phase slowed ×%.3f at 2/3 clock, want ≲ 1.25", ratio)
	}
	// Near bus saturation the queueing term shrinks with demand, so a
	// slightly sub-1 ratio is a known, bounded model artifact (see the
	// fixed-point note in RunPhase); it must stay small.
	if ratio < 0.85 {
		t.Errorf("lower clock sped the phase up too much: ×%.3f", ratio)
	}
}

func TestWithFrequencyDoesNotMutateBase(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")
	before := m.RunPhase(&p, 0, cfg).TimeSec
	_ = m.WithFrequency(0.5)
	after := m.RunPhase(&p, 0, cfg).TimeSec
	if before != after {
		t.Error("WithFrequency mutated the base machine")
	}
	if m.FrequencyScale() != 1 {
		t.Errorf("base frequency scale = %g", m.FrequencyScale())
	}
}

func TestWithFrequencyPanicsOnNonPositive(t *testing.T) {
	m := newMachine(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero frequency scale")
		}
	}()
	m.WithFrequency(0)
}

func TestActivityCarriesFreqScale(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")
	a := m.WithFrequency(0.75).RunPhase(&p, 0, cfg).Activity
	if a.FreqScale != 0.75 {
		t.Errorf("Activity.FreqScale = %g, want 0.75", a.FreqScale)
	}
	b := m.RunPhase(&p, 0, cfg).Activity
	if b.FreqScale != 1 {
		t.Errorf("nominal Activity.FreqScale = %g, want 1", b.FreqScale)
	}
}
