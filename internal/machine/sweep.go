package machine

import (
	"math"
	"sync"

	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// This file is the batched phase-sweep engine: the vectorised form of the
// phase model plus RunPhaseSweep, which evaluates one phase across many
// placements in a single call.
//
// Two observations make the solve cheap without changing a single output
// bit:
//
//  1. Within a placement, a thread's L2 miss rate depends on the placement
//     only through its group load (how many placement threads share its
//     L2), and its CPI only through (core class, group load). A 32-thread
//     placement on paired-L2 groups of one class has at most two distinct
//     (class, load) keys, so the fixed point needs two threadCPI solves
//     per iteration instead of 32. Per-thread quantities are then fanned
//     back out in thread order, so every sum accumulates the exact same
//     values in the exact same order as the per-thread loop did. On
//     homogeneous machines the class dimension is a single value and the
//     key degenerates to the bare load — the dedup is test-enforced
//     bit-identical to the per-thread loop either way.
//  2. Across the placements of a sweep, the miss-rate-per-group-load table
//     depends only on the phase, so it is computed once for the whole
//     sweep rather than once per placement.
//
// Scratch state lives in a pooled phaseCtx, so steady-state evaluation
// allocates only each Result's PerThreadIPC slice (and nothing at all when
// the memo serves a hit).

// phaseCtx is the reusable scratch of one phase evaluation (or one sweep).
type phaseCtx struct {
	occ    []int     // per-L2-group occupancy of the current placement
	loads  []int     // per-thread group load
	missL2 []float64 // per-thread L2 miss rate
	cpi    []float64 // per-thread CPI (nominal-clock referenced)

	// missByLoad caches m.l2.MissRateShared per group load for the phase
	// the context was last reset for; valid across every placement of one
	// sweep. Index 0 holds the (degenerate) load-zero value for cores
	// outside any L2 group.
	missByLoad []float64
	haveMiss   []bool

	// cpiByKey holds one fixed-point iteration's CPI per distinct
	// (class, load) solve key, where key = class*(maxLoad+1) + load.
	cpiByKey []float64
	// keyList is the distinct (class, load) keys present in the current
	// placement, in first-appearance order, and keys holds each thread's
	// key.
	keyList []int
	keys    []int
}

var ctxPool = sync.Pool{New: func() any { return &phaseCtx{} }}

// resetPhase invalidates the per-phase miss-rate cache and sizes the
// per-load tables for loads up to maxLoad.
func (ctx *phaseCtx) resetPhase() {
	for i := range ctx.haveMiss {
		ctx.haveMiss[i] = false
	}
}

// sizeFor grows the scratch slices for a placement of n threads over
// nGroups L2 groups with group loads at most maxLoad and nClasses core
// classes (the (class, load) key space is nClasses × (maxLoad+1)).
func (ctx *phaseCtx) sizeFor(nGroups, n, maxLoad, nClasses int) {
	if cap(ctx.occ) < nGroups {
		ctx.occ = make([]int, nGroups)
	}
	ctx.occ = ctx.occ[:nGroups]
	if cap(ctx.loads) < n {
		ctx.loads = make([]int, n)
		ctx.keys = make([]int, n)
		ctx.missL2 = make([]float64, n)
		ctx.cpi = make([]float64, n)
	}
	ctx.loads = ctx.loads[:n]
	ctx.keys = ctx.keys[:n]
	ctx.missL2 = ctx.missL2[:n]
	ctx.cpi = ctx.cpi[:n]
	if cap(ctx.missByLoad) < maxLoad+1 {
		grown := make([]float64, maxLoad+1)
		copy(grown, ctx.missByLoad)
		ctx.missByLoad = grown
		grownValid := make([]bool, maxLoad+1)
		copy(grownValid, ctx.haveMiss[:len(ctx.haveMiss)])
		ctx.haveMiss = grownValid
	}
	ctx.missByLoad = ctx.missByLoad[:cap(ctx.missByLoad)]
	ctx.haveMiss = ctx.haveMiss[:cap(ctx.haveMiss)]
	if cap(ctx.cpiByKey) < nClasses*(maxLoad+1) {
		ctx.cpiByKey = make([]float64, nClasses*(maxLoad+1))
	}
	ctx.cpiByKey = ctx.cpiByKey[:cap(ctx.cpiByKey)]
}

// missFor returns the phase's L2 miss rate at the given group load, from
// the per-phase cache when already solved in this sweep.
func (ctx *phaseCtx) missFor(m *Machine, p *workload.PhaseProfile, load int) float64 {
	if !ctx.haveMiss[load] {
		ctx.missByLoad[load] = m.l2.MissRateShared(p.WorkingSetBytes, load, p.SharingFactor, p.ColdMissRate, p.LocalityExp)
		ctx.haveMiss[load] = true
	}
	return ctx.missByLoad[load]
}

// computePhase is the deterministic phase model — everything RunPhase does
// except measurement noise — on pooled scratch.
func (m *Machine) computePhase(p *workload.PhaseProfile, idio float64, pl topology.Placement) Result {
	ctx := ctxPool.Get().(*phaseCtx)
	ctx.resetPhase()
	res := m.computePhaseCtx(ctx, p, idio, pl)
	ctxPool.Put(ctx)
	return res
}

// computePhaseCtx evaluates the phase model for one placement using (and
// filling) the context's per-phase caches. The caller must have reset the
// context when switching phase, machine parameters, or L2 capacity.
func (m *Machine) computePhaseCtx(ctx *phaseCtx, p *workload.PhaseProfile, idio float64, pl topology.Placement) Result {
	n := pl.Threads()
	if n == 0 {
		panic("machine: placement with no cores")
	}
	freq := m.Topo.FrequencyHz * m.clockScale()

	// --- Work division ------------------------------------------------
	parInstr := p.Instructions * p.ParallelFraction
	serInstr := p.Instructions - parInstr
	imb := imbalanceFactor(p.ChunkGranularity, n)
	// Heaviest thread's share of the parallel instructions.
	heavyShare := imb / float64(n)

	// --- Per-thread group loads and solve keys (placement-dependent, O(n))
	// A thread's CPI depends on the placement through (core class, group
	// load) only; key = class*(n+1) + load indexes the per-iteration CPI
	// table. On homogeneous machines class is always 0 and the key is the
	// bare load, exactly the pre-class solve.
	ctx.sizeFor(len(m.Topo.L2Groups), n, n, len(m.classes))
	stride := n + 1
	occ := ctx.occ
	for i := range occ {
		occ[i] = 0
	}
	for _, c := range pl.Cores {
		if g := m.groupOf(c); g >= 0 {
			occ[g]++
		}
	}
	loads := ctx.loads
	keys := ctx.keys
	ctx.keyList = ctx.keyList[:0]
	seen := 0 // bitmask over keys (keys ≤ 63 in practice; fall back to scan)
	for i, c := range pl.Cores {
		load := 0
		if g := m.groupOf(c); g >= 0 {
			load = occ[g]
		}
		loads[i] = load
		key := load
		if ci := m.classIdxOf(c); ci > 0 {
			key += ci * stride
		}
		keys[i] = key
		if key < 64 {
			if seen&(1<<key) == 0 {
				seen |= 1 << key
				ctx.keyList = append(ctx.keyList, key)
			}
		} else if !containsInt(ctx.keyList, key) {
			ctx.keyList = append(ctx.keyList, key)
		}
	}

	// --- Per-thread L2 miss rates (shared per group load) --------------
	missL2 := ctx.missL2
	for i, load := range loads {
		missL2[i] = ctx.missFor(m, p, load)
	}

	// --- CPI ↔ bus-bandwidth fixed point -------------------------------
	lineBytes := 64.0
	storeFrac := 1 - p.LoadFraction
	trafficPerMiss := lineBytes * (1 + p.StoreBandwidthBoost*storeFrac)
	mpiL1 := p.MemRefsPerInstr * p.L1MissRate // L2 accesses per instruction

	cpi := ctx.cpi
	busFactor := 1.0
	var busUtil float64
	for iter := 0; iter < m.params.FixedPointIters; iter++ {
		// One threadCPI solve per distinct (class, load) key; threads with
		// the same key share the result bit-for-bit. The stored value is
		// referenced to the nominal clock (a little core's own-clock CPI
		// divided by its FreqMult), so downstream cycle accounting and
		// instruction rates stay in one clock domain; dividing by the
		// default class's 1.0 is exact, keeping homogeneous results
		// bit-identical.
		for _, key := range ctx.keyList {
			cls := &m.classes[key/stride]
			load := key % stride
			ctx.cpiByKey[key] = m.threadCPI(p, mpiL1, ctx.missByLoad[load], busFactor, load, cls) / cls.FreqMult
		}
		var traffic float64 // bytes/sec offered to the FSB
		for t := 0; t < n; t++ {
			cpi[t] = ctx.cpiByKey[keys[t]]
			mpiL2 := mpiL1 * missL2[t]
			traffic += mpiL2 * (freq / cpi[t]) * trafficPerMiss
		}
		newFactor := m.fsb.LatencyFactor(traffic)
		busFactor = 0.5*busFactor + 0.5*newFactor
		busUtil = m.fsb.Utilization(traffic)
	}

	// --- Cycle accounting ----------------------------------------------
	// Serial section runs on one thread — the placement's first core, with
	// a single-thread L2 share and that core's class.
	cls0 := m.classOf(pl.Cores[0])
	serMiss := ctx.missFor(m, p, 1)
	serCPI := m.threadCPI(p, mpiL1, serMiss, busFactor, 1, cls0) / cls0.FreqMult
	serCycles := serInstr * serCPI

	// Critical-section serialisation and hidden idiosyncrasy both grow
	// with thread count; neither is visible in the cache/bus counters.
	critFactor := 1 + p.CriticalFraction*float64(n-1)
	idioFactor := 1 + idio*float64(n-1)/3
	if idioFactor < 0.5 {
		idioFactor = 0.5
	}

	// The slowest thread gates the end-of-phase barrier: the heaviest
	// chunk share executed at the worst per-thread CPI.
	perThreadIPC := make([]float64, n)
	maxCPI := 0.0
	for t := 0; t < n; t++ {
		if cpi[t] > maxCPI {
			maxCPI = cpi[t]
		}
		if cpi[t] > 0 {
			perThreadIPC[t] = 1 / (cpi[t] * critFactor * idioFactor)
		}
	}
	parCycles := parInstr * heavyShare * maxCPI * critFactor * idioFactor

	syncCycles := 0.0
	if n > 1 {
		syncCycles = p.SyncCycles * (1 + math.Log2(float64(n))) * idioFactor
	}

	// Bandwidth wall: the phase cannot finish faster than its total bus
	// traffic takes to transfer. In the saturated regime execution time is
	// proportional to bytes moved — the mechanism behind IS and MG losing
	// performance when destructive L2 sharing multiplies their misses.
	//
	// Note: near saturation the queueing factor above and this wall
	// overlap slightly; lowering the clock reduces offered load and hence
	// queueing, which can shave up to ~10% off a saturated phase's
	// latency-inflated compute path. The wall bounds the effect; it is a
	// known, benign artifact of the analytic composition.
	var avgMissL2 float64
	for _, mr := range missL2 {
		avgMissL2 += mr
	}
	avgMissL2 /= float64(n)
	totalBytes := p.Instructions * mpiL1 * avgMissL2 * trafficPerMiss
	bwCycles := m.fsb.MinTransferTime(totalBytes) * freq

	wallCycles := serCycles + parCycles + syncCycles
	if bwCycles > wallCycles {
		wallCycles = bwCycles
	}
	wallCycles *= m.responseFactor(p, pl)
	timeSec := wallCycles / freq

	// --- Event counts ---------------------------------------------------
	counts := m.eventCounts(p, missL2, wallCycles, busUtil, cls0)

	// --- Activity for the power model ------------------------------------
	var sumIPC float64
	for _, v := range perThreadIPC {
		sumIPC += v
	}
	avgCoreIPC := sumIPC / float64(n)
	stall := m.stallFraction(p, mpiL1, missL2[0], busFactor, cls0)
	act := Activity{
		TimeSec:          timeSec,
		ActiveCores:      n,
		TotalCores:       m.Topo.NumCores,
		AvgCoreIPC:       avgCoreIPC,
		PeakIPC:          m.params.PeakIssueIPC,
		AvgCoreUtil:      1 - stall,
		BusUtilization:   busUtil,
		BusBytes:         counts[pmu.BusTransMem] * lineBytes,
		L2AccessesPerSec: counts[pmu.L2References] / math.Max(timeSec, 1e-12),
		FreqScale:        m.clockScale(),
	}

	return Result{
		TimeSec:      timeSec,
		WallCycles:   wallCycles,
		AggIPC:       p.Instructions / wallCycles,
		PerThreadIPC: perThreadIPC,
		Counts:       counts,
		Activity:     act,
	}
}

// RunPhaseSweep evaluates phase p with idiosyncrasy idio under every
// placement of placements, writing the result for placements[i] into
// dst[i]. It is semantically identical — bit for bit, including the order
// measurement-noise draws are consumed in — to calling RunPhase once per
// placement in slice order, but hoists the per-phase invariant part of the
// solve (the L2 miss-rate table, the scratch buffers, the memo key prefix)
// out of the placement loop. Memo hits fill dst without allocating; see
// WithMemo for the PerThreadIPC read-only contract.
//
// It panics when dst is shorter than placements, mirroring RunPhase's
// contract violations.
func (m *Machine) RunPhaseSweep(p *workload.PhaseProfile, idio float64, placements []topology.Placement, dst []Result) {
	if len(dst) < len(placements) {
		panic("machine: RunPhaseSweep dst shorter than placements")
	}
	ctx := ctxPool.Get().(*phaseCtx)
	ctx.resetPhase()
	useMemo := m.memo != nil && p.Fingerprint != ""
	var seed uint64
	if useMemo {
		seed = m.memoSeed(p)
	}
	for i := range placements {
		pl := placements[i]
		if useMemo {
			coresHash := hashCores(pl.Cores)
			hash := memoHash(seed, idio, &pl, coresHash)
			key := m.keyFor(p, idio, &pl, coresHash)
			if e := m.memo.get(hash, &key); e != nil {
				m.memo.hits.Add(1)
				dst[i] = e.res
			} else {
				m.memo.misses.Add(1)
				res := m.computePhaseCtx(ctx, p, idio, pl)
				dst[i] = m.memo.insert(hash, key, res).res
			}
		} else {
			dst[i] = m.computePhaseCtx(ctx, p, idio, pl)
		}
		if m.noiseSrc != nil {
			m.perturb(&dst[i])
		}
	}
	ctxPool.Put(ctx)
}

// RunPhaseSweepDeterministic fills dst like RunPhaseSweep but never draws
// or applies measurement noise, leaving the machine's noise stream
// untouched: dst receives exactly what a noiseless copy of the machine
// would produce. Strategy replay uses it to precompute a phase's response
// across every candidate placement once, then applies per-execution noise
// in iteration order with ApplyNoise — the combination is bit-identical to
// calling RunPhase per iteration, noise stream included.
func (m *Machine) RunPhaseSweepDeterministic(p *workload.PhaseProfile, idio float64, placements []topology.Placement, dst []Result) {
	det := *m
	det.noiseSrc = nil
	det.RunPhaseSweep(p, idio, placements, dst)
}

// ApplyNoise perturbs res in place, consuming exactly the measurement-noise
// draws RunPhase would have consumed for one execution. It is a no-op on
// machines without a noise source. res.PerThreadIPC is never touched (on
// memoised machines it aliases the cache's canonical slice).
func (m *Machine) ApplyNoise(res *Result) {
	if m.noiseSrc != nil {
		m.perturb(res)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
