package machine

import (
	"math"
	"sync"

	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// This file is the batched phase-sweep engine: the multi-lane form of the
// phase model plus RunPhaseSweep, which evaluates one phase across many
// placements in a single call.
//
// Three observations make the solve cheap without changing a single output
// bit:
//
//  1. Within a placement, a thread's L2 miss rate depends on the placement
//     only through its group load (how many placement threads share its
//     L2), and its CPI only through (core class, group load). A 32-thread
//     placement on paired-L2 groups of one class has at most two distinct
//     (class, load) keys, so the fixed point needs two threadCPI solves
//     per iteration instead of 32. Per-thread quantities are then fanned
//     back out in thread order, so every sum accumulates the exact same
//     values in the exact same order as the per-thread loop did. On
//     homogeneous machines the class dimension is a single value and the
//     key degenerates to the bare load — the dedup is test-enforced
//     bit-identical to the per-thread loop either way.
//  2. Across the placements of a sweep, the miss-rate-per-group-load table
//     depends only on the phase, so it is computed once for the whole
//     sweep rather than once per placement.
//  3. Each distinct (class, load) key is a *lane*: everything in its CPI
//     that does not change across fixed-point iterations — the core,
//     branch, TLB and L2 terms, the memory-latency prefix, the L2-miss
//     traffic weight, the issue-width clamp — is precomputed once per
//     lane, leaving the per-iteration step a handful of element-wise
//     operations over struct-of-arrays lane blocks (see lanes.go). Lanes
//     from up to sweepSolveBlock placements advance together in one
//     iteration, each placement carrying its own bus factor and a
//     convergence mask that retires it the moment the damped update stops
//     moving (the update is idempotent from that point, so skipping the
//     remaining iterations is exact). Every factored term is the same
//     float product, in the same order, the scalar expression computed —
//     bit-identity is by construction and test-enforced.
//
// Scratch state lives in a pooled phaseCtx, so steady-state evaluation
// allocates only each Result's PerThreadIPC slice (and nothing at all when
// the memo serves a hit).

// sweepSolveBlock bounds how many memo-missing placements accumulate into
// one multi-lane solve block. The bound keeps scratch memory proportional
// to the block, not the sweep (hetero sweeps reach thousands of
// placements), while still giving the lane kernel wide batches.
const sweepSolveBlock = 64

// phaseCtx is the reusable scratch of one phase evaluation (or one sweep).
type phaseCtx struct {
	occ []int // per-L2-group occupancy of the placement being prepared

	// missByLoad caches m.l2.MissRateShared per group load for the phase
	// the context was last reset for; valid across every placement of one
	// sweep. Index 0 holds the (degenerate) load-zero value for cores
	// outside any L2 group.
	missByLoad []float64
	haveMiss   []bool

	// keyToLane maps a (class, load) solve key — key = class·(n+1) + load —
	// to laneIndex+1 while one placement is being prepared; keyScratch
	// lists the keys written so the map clears in O(distinct keys).
	keyToLane  []int
	keyScratch []int

	// lanes is the flat struct-of-arrays lane state shared by every
	// placement of the current solve block (see laneState).
	lanes laneState

	// Per-thread state, flat across the block's placements.
	thrLane []int     // lane index of each thread
	thrMiss []float64 // each thread's L2 miss rate

	// Per-placement solve state for the current block.
	bus       []float64
	traffic   []float64
	converged []bool

	// pend lists the block's placements awaiting solve + finish.
	pend []pendingPlacement

	// respFP/respSeed cache the response-factor hash state after mixing
	// the phase fingerprint and separator — the prefix is identical for
	// every placement of a sweep, so it is folded once per phase and only
	// the placement-name suffix is mixed per result (bit-identical: the
	// FNV fold visits the same bytes in the same order either way).
	respFP   string
	respSeed uint64

	// plans caches each placement's solve structure — thread loads, the
	// thread→lane fanout and the (class, load) key of every lane — keyed by
	// the placement's cores hash. The structure depends only on the
	// topology and class layout, never on the phase, so sweeping the same
	// placements across many phases (the future-scaling pattern) resolves
	// keys once instead of once per phase. planTopo/planSig pin the
	// machine the plans were built against; a pooled context picked up by
	// a machine with a different topology or class layout drops them.
	plans    map[uint64]*placementPlan
	planTopo *topology.Topology
	planSig  uint64
}

// placementPlan is the phase-independent solve structure of one placement.
// Replaying it appends lanes (and the thread fanout) in exactly the order
// the key-resolution loop discovered them, so the solve consumes identical
// state either way.
type placementPlan struct {
	cores    []topology.CoreID // exact cores (verifies hash-keyed lookups)
	loads    []int32           // per-thread L2-group load
	thrLane  []int32           // per-thread lane index, plan-relative
	laneLoad []int32           // per-lane group load (first-appearance order)
	laneCi   []int32           // per-lane class index
}

// pendingPlacement is one memo-missing placement queued into the current
// solve block: where its lanes and threads live in the flat scratch, and
// everything needed to finish the result and insert it into the memo.
type pendingPlacement struct {
	idx  int // position in the sweep's placements/dst slices
	pl   topology.Placement
	hash uint64 // memo hash/key (memoised sweeps only)
	key  memoKey

	laneOff, laneN int
	thrOff, n      int
}

var ctxPool = sync.Pool{New: func() any { return &phaseCtx{} }}

// resetPhase invalidates the per-phase miss-rate cache.
func (ctx *phaseCtx) resetPhase() {
	for i := range ctx.haveMiss {
		ctx.haveMiss[i] = false
	}
}

// resetBlock clears the lane, thread and placement state of the current
// solve block while keeping the per-phase miss cache (and all capacity).
func (ctx *phaseCtx) resetBlock() {
	ctx.lanes.reset()
	ctx.thrLane = ctx.thrLane[:0]
	ctx.thrMiss = ctx.thrMiss[:0]
	ctx.pend = ctx.pend[:0]
}

// sizeFor grows the per-placement scratch for a placement of n threads over
// nGroups L2 groups (loads at most n) and nClasses core classes (the
// (class, load) key space is nClasses × (n+1)).
func (ctx *phaseCtx) sizeFor(nGroups, n, nClasses int) {
	if cap(ctx.occ) < nGroups {
		ctx.occ = make([]int, nGroups)
	}
	ctx.occ = ctx.occ[:nGroups]
	if cap(ctx.missByLoad) < n+1 {
		grown := make([]float64, n+1)
		copy(grown, ctx.missByLoad)
		ctx.missByLoad = grown
		grownValid := make([]bool, n+1)
		copy(grownValid, ctx.haveMiss)
		ctx.haveMiss = grownValid
	}
	ctx.missByLoad = ctx.missByLoad[:cap(ctx.missByLoad)]
	ctx.haveMiss = ctx.haveMiss[:cap(ctx.haveMiss)]
	if keySpace := nClasses * (n + 1); cap(ctx.keyToLane) < keySpace {
		// Entries are always cleared back to zero after each placement, so
		// growth may start from a fresh zeroed array.
		ctx.keyToLane = make([]int, keySpace)
	}
	ctx.keyToLane = ctx.keyToLane[:cap(ctx.keyToLane)]
}

// missFor returns the phase's L2 miss rate at the given group load, from
// the per-phase cache when already solved in this sweep.
func (ctx *phaseCtx) missFor(m *Machine, p *workload.PhaseProfile, load int) float64 {
	if !ctx.haveMiss[load] {
		ctx.missByLoad[load] = m.l2.MissRateShared(p.WorkingSetBytes, load, p.SharingFactor, p.ColdMissRate, p.LocalityExp)
		ctx.haveMiss[load] = true
	}
	return ctx.missByLoad[load]
}

// computePhase is the deterministic phase model — everything RunPhase does
// except measurement noise — on pooled scratch.
func (m *Machine) computePhase(p *workload.PhaseProfile, idio float64, pl topology.Placement) Result {
	ctx := ctxPool.Get().(*phaseCtx)
	ctx.resetPhase()
	res := m.computePhaseCtx(ctx, p, idio, pl)
	ctxPool.Put(ctx)
	return res
}

// computePhaseCtx evaluates the phase model for one placement using (and
// filling) the context's per-phase caches: a solve block of one. The caller
// must have reset the context when switching phase, machine parameters, or
// L2 capacity.
func (m *Machine) computePhaseCtx(ctx *phaseCtx, p *workload.PhaseProfile, idio float64, pl topology.Placement) Result {
	ctx.resetBlock()
	ctx.bindMachine(m)
	m.prepPlacement(ctx, p, pl, 0, hashCores(pl.Cores), 0, memoKey{})
	m.solveBlock(ctx, p)
	return m.finishPlacement(ctx, &ctx.pend[0], 0, p, idio, make([]float64, ctx.pend[0].n))
}

// prepPlacement appends one placement to the current solve block: it
// resolves each thread's (class, load) solve key, creates one lane per
// distinct key with the iteration-invariant part of that key's CPI fully
// factored out, and records the thread→lane fanout. The factored terms are
// the exact sub-expressions (same operands, same order) of the scalar
// threadCPI composition, so the per-iteration lane step reproduces it
// bit-for-bit (see lanes.go).
func (m *Machine) prepPlacement(ctx *phaseCtx, p *workload.PhaseProfile, pl topology.Placement, idx int, coresHash, hash uint64, key memoKey) {
	n := pl.Threads()
	if n == 0 {
		panic("machine: placement with no cores")
	}
	ctx.sizeFor(len(m.Topo.L2Groups), n, len(m.classes))

	// Phase-level terms of the CPI composition (identical for every lane).
	mpiL1 := p.MemRefsPerInstr * p.L1MissRate
	branch := p.BranchRate * p.BranchMissRate * m.params.BranchMissPenaltyCycles
	tlb := p.MemRefsPerInstr * p.TLBMissRate * m.params.TLBMissPenaltyCycles
	mlpL2 := math.Max(1, 0.7*p.MLP) // L2 hits overlap slightly less than misses
	memPfx := m.params.MemLatencyCycles * m.clockScale()

	thrOff := len(ctx.thrLane)
	laneOff := ctx.lanes.len()

	if plan, ok := ctx.plans[coresHash]; ok && coresEqual(plan.cores, pl.Cores) {
		// Structure already resolved for these cores by an earlier phase:
		// replay the lanes in their recorded first-appearance order, then
		// the thread fanout — the identical appends the resolution loop
		// below would have made.
		for k := range plan.laneLoad {
			m.appendLane(ctx, p, int(plan.laneLoad[k]), int(plan.laneCi[k]), mpiL1, branch, tlb, mlpL2, memPfx)
		}
		for t, ln := range plan.thrLane {
			ctx.thrLane = append(ctx.thrLane, laneOff+int(ln))
			ctx.thrMiss = append(ctx.thrMiss, ctx.missByLoad[plan.loads[t]])
		}
		ctx.pend = append(ctx.pend, pendingPlacement{
			idx: idx, pl: pl, hash: hash, key: key,
			laneOff: laneOff, laneN: len(plan.laneLoad),
			thrOff: thrOff, n: n,
		})
		return
	}

	// Per-L2-group occupancy of this placement.
	occ := ctx.occ
	for i := range occ {
		occ[i] = 0
	}
	for _, c := range pl.Cores {
		if g := m.groupOf(c); g >= 0 {
			occ[g]++
		}
	}

	plan := &placementPlan{
		cores:   pl.Cores,
		loads:   make([]int32, 0, n),
		thrLane: make([]int32, 0, n),
	}
	stride := n + 1
	for _, c := range pl.Cores {
		load := 0
		if g := m.groupOf(c); g >= 0 {
			load = occ[g]
		}
		keyv := load
		ci := m.classIdxOf(c)
		if ci > 0 {
			keyv += ci * stride
		}
		ln := ctx.keyToLane[keyv]
		if ln == 0 {
			m.appendLane(ctx, p, load, ci, mpiL1, branch, tlb, mlpL2, memPfx)
			ln = ctx.lanes.len() // global lane index + 1 (len is idx+1 post-append)
			ctx.keyToLane[keyv] = ln
			ctx.keyScratch = append(ctx.keyScratch, keyv)
			plan.laneLoad = append(plan.laneLoad, int32(load))
			plan.laneCi = append(plan.laneCi, int32(ci))
		}
		ctx.thrLane = append(ctx.thrLane, ln-1)
		ctx.thrMiss = append(ctx.thrMiss, ctx.missByLoad[load])
		plan.loads = append(plan.loads, int32(load))
		plan.thrLane = append(plan.thrLane, int32(ln-1-laneOff))
	}
	for _, kv := range ctx.keyScratch {
		ctx.keyToLane[kv] = 0
	}
	ctx.keyScratch = ctx.keyScratch[:0]

	// Cache the structure for the next phase's sweep. A 64-bit-hash
	// collision (cores mismatch above) leaves the first plan in place; the
	// colliding placement just resolves unplanned every time.
	if _, taken := ctx.plans[coresHash]; !taken {
		if ctx.plans == nil {
			ctx.plans = make(map[uint64]*placementPlan)
		}
		ctx.plans[coresHash] = plan
	}

	ctx.pend = append(ctx.pend, pendingPlacement{
		idx: idx, pl: pl, hash: hash, key: key,
		laneOff: laneOff, laneN: ctx.lanes.len() - laneOff,
		thrOff: thrOff, n: n,
	})
}

// appendLane creates one (class, load) lane, factoring everything that does
// not change across fixed-point iterations out of threadCPI while
// preserving the exact association order of the scalar expressions (see
// lanes.go for the term-by-term correspondence).
func (m *Machine) appendLane(ctx *phaseCtx, p *workload.PhaseProfile, load, ci int, mpiL1, branch, tlb, mlpL2, memPfx float64) {
	missL2 := ctx.missFor(m, p, load)
	cls := &m.classes[ci]
	coreCPI := cls.CPIMult / p.BaseIPC
	l2Lat := m.params.L2LatencyCycles
	if load > 1 {
		l2Lat *= 1 + 0.35*float64(load-1)
	}
	l2Term := mpiL1 * (1 - missL2) * l2Lat / mlpL2
	ctx.lanes.append(
		coreCPI+branch+tlb+l2Term,         // CPI base: core + branch + TLB + L2
		memPfx*cls.FreqMult,               // memory-latency prefix (× busFactor × prefetchHide per iter)
		mpiL1*missL2,                      // L2 misses per instruction
		cls.CPIMult/m.params.PeakIssueIPC, // issue-width clamp
		cls.FreqMult,                      // nominal-clock referencing divisor
	)
}

// bindMachine drops machine-derived caches when a pooled context is reused
// by a machine with a different topology or class layout. Plans depend only
// on (Topo, classSig), so machines derived via WithNoise/WithFrequency/
// WithMemo — which share both — keep each other's plans warm.
func (ctx *phaseCtx) bindMachine(m *Machine) {
	if ctx.planTopo == m.Topo && ctx.planSig == m.classSig {
		return
	}
	ctx.planTopo, ctx.planSig = m.Topo, m.classSig
	ctx.plans = nil
}

func coresEqual(a, b []topology.CoreID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// solveBlock iterates the CPI ↔ bus-bandwidth fixed point for every
// placement of the current block at once: one lane step advances every
// distinct (class, load) key of every unconverged placement, then each
// placement reduces its threads' offered traffic (in thread order, exactly
// as the scalar loop did) and applies the damped bus-factor update. A
// placement whose update leaves the bus factor unchanged is converged —
// every remaining iteration would reproduce the same state bit-for-bit, so
// its lanes are masked and it stops paying for the rest of the loop.
func (m *Machine) solveBlock(ctx *phaseCtx, p *workload.PhaseProfile) {
	nPl := len(ctx.pend)
	freq := m.Topo.FrequencyHz * m.clockScale()
	lineBytes := 64.0
	storeFrac := 1 - p.LoadFraction
	trafficPerMiss := lineBytes * (1 + p.StoreBandwidthBoost*storeFrac)
	prefetchHide := 1 - 0.6*p.PrefetchFriendly

	if cap(ctx.bus) < nPl {
		ctx.bus = make([]float64, nPl)
		ctx.traffic = make([]float64, nPl)
		ctx.converged = make([]bool, nPl)
	}
	ctx.bus = ctx.bus[:nPl]
	ctx.traffic = ctx.traffic[:nPl]
	ctx.converged = ctx.converged[:nPl]
	for o := range ctx.bus {
		ctx.bus[o] = 1
		ctx.traffic[o] = 0
		ctx.converged[o] = false
	}
	ctx.lanes.sizeDerived()

	remaining := nPl
	for iter := 0; iter < m.params.FixedPointIters && remaining > 0; iter++ {
		// Fan each placement's bus factor out to its lanes, then advance
		// every live lane in one element-wise step.
		for o := range ctx.pend {
			if ctx.converged[o] {
				continue
			}
			pe := &ctx.pend[o]
			for l := pe.laneOff; l < pe.laneOff+pe.laneN; l++ {
				ctx.lanes.bus[l] = ctx.bus[o]
			}
		}
		advanceLanes(&ctx.lanes, prefetchHide, p.MLP, freq, trafficPerMiss)

		for o := range ctx.pend {
			if ctx.converged[o] {
				continue
			}
			pe := &ctx.pend[o]
			// Offered FSB traffic accumulates in thread order — the same
			// values in the same order as the per-thread scalar loop.
			var traffic float64
			for _, ln := range ctx.thrLane[pe.thrOff : pe.thrOff+pe.n] {
				traffic += ctx.lanes.contrib[ln]
			}
			newFactor := m.fsb.LatencyFactor(traffic)
			updated := 0.5*ctx.bus[o] + 0.5*newFactor
			ctx.traffic[o] = traffic
			if updated == ctx.bus[o] {
				// Exact fixed point: every further iteration recomputes
				// this identical state. Retire the placement and mask its
				// lanes out of subsequent steps.
				ctx.converged[o] = true
				remaining--
				for l := pe.laneOff; l < pe.laneOff+pe.laneN; l++ {
					ctx.lanes.done[l] = true
				}
			}
			ctx.bus[o] = updated
		}
	}
}

// log2Tab caches math.Log2(n) for the thread counts that actually occur —
// the sync-cost term recomputed the same logarithm for every result. Each
// entry is exactly math.Log2(float64(n)).
const log2TabMax = 256

var log2Tab = func() [log2TabMax + 1]float64 {
	var t [log2TabMax + 1]float64
	for i := 1; i < len(t); i++ {
		t[i] = math.Log2(float64(i))
	}
	return t
}()

// log2N returns math.Log2(float64(n)), from the table when n is in range.
func log2N(n int) float64 {
	if n >= 0 && n <= log2TabMax {
		return log2Tab[n]
	}
	return math.Log2(float64(n))
}

// responseFactorCtx is responseFactor with the phase-fingerprint prefix of
// the FNV fold cached in the context: every placement of a sweep shares the
// hash state after mixing Fingerprint and the separator, so only the
// placement name is folded per result. The byte sequence folded into the
// hash is identical either way, so the factor is bit-identical to
// responseFactor (test-enforced).
func (m *Machine) responseFactorCtx(ctx *phaseCtx, p *workload.PhaseProfile, pl topology.Placement) float64 {
	if m.params.ResponseSigma <= 0 || p.Fingerprint == "" || pl.Threads() <= 1 {
		return 1
	}
	if ctx.respFP != p.Fingerprint {
		h := uint64(1469598103934665603)
		for i := 0; i < len(p.Fingerprint); i++ {
			h ^= uint64(p.Fingerprint[i])
			h *= 1099511628211
		}
		h ^= uint64('|')
		h *= 1099511628211
		ctx.respFP, ctx.respSeed = p.Fingerprint, h
	}
	h := ctx.respSeed
	for i := 0; i < len(pl.Name); i++ {
		h ^= uint64(pl.Name[i])
		h *= 1099511628211
	}
	var z float64
	for i := 0; i < 4; i++ {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		u := float64(h%1_000_003) / 1_000_003.0
		z += u - 0.5
	}
	z *= math.Sqrt(3)
	return math.Exp(m.params.ResponseSigma * z)
}

// finishPlacement turns one solved placement into a Result: cycle
// accounting, PMU event synthesis and power-model activity, identical to
// the scalar tail of the phase model. o is the placement's index within the
// solve block (its slot in ctx.bus/ctx.traffic); perThreadIPC is the
// caller-provided backing for the Result's per-thread IPC (length n — block
// flushes carve it out of one slab allocation instead of one make per
// result).
func (m *Machine) finishPlacement(ctx *phaseCtx, pe *pendingPlacement, o int, p *workload.PhaseProfile, idio float64, perThreadIPC []float64) Result {
	n := pe.n
	busFactor := ctx.bus[o]
	busUtil := m.fsb.Utilization(ctx.traffic[o])
	freq := m.Topo.FrequencyHz * m.clockScale()

	// --- Work division ------------------------------------------------
	parInstr := p.Instructions * p.ParallelFraction
	serInstr := p.Instructions - parInstr
	imb := imbalanceFactor(p.ChunkGranularity, n)
	// Heaviest thread's share of the parallel instructions.
	heavyShare := imb / float64(n)

	mpiL1 := p.MemRefsPerInstr * p.L1MissRate

	// --- Cycle accounting ----------------------------------------------
	// Serial section runs on one thread — the placement's first core, with
	// a single-thread L2 share and that core's class.
	cls0 := m.classOf(pe.pl.Cores[0])
	serMiss := ctx.missFor(m, p, 1)
	serCPI := m.threadCPI(p, mpiL1, serMiss, busFactor, 1, cls0) / cls0.FreqMult
	serCycles := serInstr * serCPI

	// Critical-section serialisation and hidden idiosyncrasy both grow
	// with thread count; neither is visible in the cache/bus counters.
	critFactor := 1 + p.CriticalFraction*float64(n-1)
	idioFactor := 1 + idio*float64(n-1)/3
	if idioFactor < 0.5 {
		idioFactor = 0.5
	}

	// The slowest thread gates the end-of-phase barrier: the heaviest
	// chunk share executed at the worst per-thread CPI.
	thrLane := ctx.thrLane[pe.thrOff : pe.thrOff+n]
	maxCPI := 0.0
	for t := 0; t < n; t++ {
		c := ctx.lanes.cpi[thrLane[t]]
		if c > maxCPI {
			maxCPI = c
		}
		if c > 0 {
			perThreadIPC[t] = 1 / (c * critFactor * idioFactor)
		}
	}
	parCycles := parInstr * heavyShare * maxCPI * critFactor * idioFactor

	syncCycles := 0.0
	if n > 1 {
		syncCycles = p.SyncCycles * (1 + log2N(n)) * idioFactor
	}

	// Bandwidth wall: the phase cannot finish faster than its total bus
	// traffic takes to transfer. In the saturated regime execution time is
	// proportional to bytes moved — the mechanism behind IS and MG losing
	// performance when destructive L2 sharing multiplies their misses.
	//
	// Note: near saturation the queueing factor above and this wall
	// overlap slightly; lowering the clock reduces offered load and hence
	// queueing, which can shave up to ~10% off a saturated phase's
	// latency-inflated compute path. The wall bounds the effect; it is a
	// known, benign artifact of the analytic composition.
	lineBytes := 64.0
	storeFrac := 1 - p.LoadFraction
	trafficPerMiss := lineBytes * (1 + p.StoreBandwidthBoost*storeFrac)
	missL2 := ctx.thrMiss[pe.thrOff : pe.thrOff+n]
	var avgMissL2 float64
	for _, mr := range missL2 {
		avgMissL2 += mr
	}
	avgMissL2 /= float64(n)
	totalBytes := p.Instructions * mpiL1 * avgMissL2 * trafficPerMiss
	bwCycles := m.fsb.MinTransferTime(totalBytes) * freq

	wallCycles := serCycles + parCycles + syncCycles
	if bwCycles > wallCycles {
		wallCycles = bwCycles
	}
	wallCycles *= m.responseFactorCtx(ctx, p, pe.pl)
	timeSec := wallCycles / freq

	// --- Event counts ---------------------------------------------------
	counts := m.eventCounts(p, missL2, wallCycles, busUtil, cls0)

	// --- Activity for the power model ------------------------------------
	var sumIPC float64
	for _, v := range perThreadIPC {
		sumIPC += v
	}
	avgCoreIPC := sumIPC / float64(n)
	stall := m.stallFraction(p, mpiL1, missL2[0], busFactor, cls0)
	act := Activity{
		TimeSec:          timeSec,
		ActiveCores:      n,
		TotalCores:       m.Topo.NumCores,
		AvgCoreIPC:       avgCoreIPC,
		PeakIPC:          m.params.PeakIssueIPC,
		AvgCoreUtil:      1 - stall,
		BusUtilization:   busUtil,
		BusBytes:         counts[pmu.BusTransMem] * lineBytes,
		L2AccessesPerSec: counts[pmu.L2References] / math.Max(timeSec, 1e-12),
		FreqScale:        m.clockScale(),
	}

	return Result{
		TimeSec:      timeSec,
		WallCycles:   wallCycles,
		AggIPC:       p.Instructions / wallCycles,
		PerThreadIPC: perThreadIPC,
		Counts:       counts,
		Activity:     act,
	}
}

// RunPhaseSweep evaluates phase p with idiosyncrasy idio under every
// placement of placements, writing the result for placements[i] into
// dst[i]. It is semantically identical — bit for bit, including the order
// measurement-noise draws are consumed in — to calling RunPhase once per
// placement in slice order, but hoists the per-phase invariant part of the
// solve (the L2 miss-rate table, the scratch buffers, the memo key prefix)
// out of the placement loop and solves memo-missing placements as
// multi-lane blocks (see solveBlock). Memo hits fill dst without
// allocating; see WithMemo for the PerThreadIPC read-only contract.
//
// It panics when dst is shorter than placements, mirroring RunPhase's
// contract violations.
func (m *Machine) RunPhaseSweep(p *workload.PhaseProfile, idio float64, placements []topology.Placement, dst []Result) {
	if len(dst) < len(placements) {
		panic("machine: RunPhaseSweep dst shorter than placements")
	}
	ctx := ctxPool.Get().(*phaseCtx)
	ctx.resetPhase()
	ctx.resetBlock()
	ctx.bindMachine(m)
	useMemo := m.memo != nil && p.Fingerprint != ""
	var seed uint64
	if useMemo {
		seed = m.memoSeed(p)
	}
	flush := func() {
		if len(ctx.pend) == 0 {
			return
		}
		m.solveBlock(ctx, p)
		// One PerThreadIPC slab for the whole block; each result gets a
		// capacity-capped window so no result can grow into its neighbour.
		slab := make([]float64, len(ctx.thrLane))
		for i := range ctx.pend {
			pe := &ctx.pend[i]
			ipc := slab[pe.thrOff : pe.thrOff+pe.n : pe.thrOff+pe.n]
			res := m.finishPlacement(ctx, pe, i, p, idio, ipc)
			if useMemo {
				res = m.memo.insert(pe.hash, pe.key, res).res
			}
			dst[pe.idx] = res
		}
		ctx.resetBlock()
	}
	for i := range placements {
		pl := placements[i]
		coresHash := hashCores(pl.Cores)
		if useMemo {
			hash := memoHash(seed, idio, &pl, coresHash)
			key := m.keyFor(p, idio, &pl, coresHash)
			if e := m.memo.get(hash, &key); e != nil {
				m.memo.hits.Add(1)
				dst[i] = e.res
				continue
			}
			m.memo.misses.Add(1)
			m.prepPlacement(ctx, p, pl, i, coresHash, hash, key)
		} else {
			m.prepPlacement(ctx, p, pl, i, coresHash, 0, memoKey{})
		}
		if len(ctx.pend) >= sweepSolveBlock {
			flush()
		}
	}
	flush()
	if m.noiseSrc != nil {
		for i := range placements {
			m.perturb(&dst[i])
		}
	}
	ctxPool.Put(ctx)
}

// RunPhaseSweepDeterministic fills dst like RunPhaseSweep but never draws
// or applies measurement noise, leaving the machine's noise stream
// untouched: dst receives exactly what a noiseless copy of the machine
// would produce. Strategy replay uses it to precompute a phase's response
// across every candidate placement once, then applies per-execution noise
// in iteration order with ApplyNoise — the combination is bit-identical to
// calling RunPhase per iteration, noise stream included.
func (m *Machine) RunPhaseSweepDeterministic(p *workload.PhaseProfile, idio float64, placements []topology.Placement, dst []Result) {
	det := *m
	det.noiseSrc = nil
	det.RunPhaseSweep(p, idio, placements, dst)
}

// ApplyNoise perturbs res in place, consuming exactly the measurement-noise
// draws RunPhase would have consumed for one execution. It is a no-op on
// machines without a noise source. res.PerThreadIPC is never touched (on
// memoised machines it aliases the cache's canonical slice).
func (m *Machine) ApplyNoise(res *Result) {
	if m.noiseSrc != nil {
		m.perturb(res)
	}
}
