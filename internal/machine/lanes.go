// Multi-lane fixed-point kernel: one lane per distinct (class, load) solve
// key, advanced as struct-of-arrays blocks so one iteration updates every
// lane of every placement in the current sweep block.
//
// Bit-identity contract: the scalar phase model computed, per thread and
// per fixed-point iteration,
//
//	memLat  = ((MemLatencyCycles·clock)·FreqMult · busFactor) · prefetchHide
//	memTerm = ((mpiL1·missL2) · memLat) / MLP
//	cpi     = max(base + memTerm, CPIMult/PeakIssueIPC) / FreqMult
//	contrib = ((mpiL1·missL2) · (freq/cpi)) · trafficPerMiss
//
// with base = ((coreCPI + branch) + tlb) + l2Term. Each lane holds the
// iteration-invariant factors of those expressions — pfx =
// (MemLatencyCycles·clock)·FreqMult, q = mpiL1·missL2, min =
// CPIMult/PeakIssueIPC, divf = FreqMult — computed once with exactly the
// operand order above, so advancing a lane performs the identical IEEE-754
// operation sequence the scalar model performed for every thread sharing
// the key. Lanes are independent (no cross-lane reduction), which is what
// lets a vector implementation process several lanes per instruction
// without reordering a single float operation. The always-built scalar
// reference below is the semantics; advanceLanes is the dispatch point.
package machine

// laneState is the struct-of-arrays solve state for the lanes of one block
// of placements. All slices share length; done masks lanes whose placement
// already reached its exact fixed point.
type laneState struct {
	// Iteration-invariant per-lane factors (see package comment).
	base []float64 // core + branch + TLB + L2 CPI terms
	pfx  []float64 // memory-latency prefix: (MemLatencyCycles·clock)·FreqMult
	q    []float64 // L2 misses per instruction: mpiL1·missL2
	min  []float64 // issue-width clamp: CPIMult/PeakIssueIPC
	divf []float64 // nominal-clock referencing divisor: FreqMult

	// Per-iteration inputs and outputs.
	bus     []float64 // owning placement's current bus latency factor
	cpi     []float64 // nominal-clock-referenced CPI after the last step
	contrib []float64 // per-thread FSB traffic of one thread on this lane
	done    []bool    // lane retired: owning placement converged exactly
}

// len returns the number of lanes appended to the block.
func (ls *laneState) len() int { return len(ls.base) }

// reset truncates the block's lanes, keeping capacity.
func (ls *laneState) reset() {
	ls.base = ls.base[:0]
	ls.pfx = ls.pfx[:0]
	ls.q = ls.q[:0]
	ls.min = ls.min[:0]
	ls.divf = ls.divf[:0]
}

// append adds one lane's invariant factors.
func (ls *laneState) append(base, pfx, q, min, divf float64) {
	ls.base = append(ls.base, base)
	ls.pfx = append(ls.pfx, pfx)
	ls.q = append(ls.q, q)
	ls.min = append(ls.min, min)
	ls.divf = append(ls.divf, divf)
}

// sizeDerived sizes the per-iteration arrays to match the appended lanes
// and clears the retirement mask.
func (ls *laneState) sizeDerived() {
	n := ls.len()
	if cap(ls.bus) < n {
		ls.bus = make([]float64, n)
		ls.cpi = make([]float64, n)
		ls.contrib = make([]float64, n)
		ls.done = make([]bool, n)
	}
	ls.bus = ls.bus[:n]
	ls.cpi = ls.cpi[:n]
	ls.contrib = ls.contrib[:n]
	ls.done = ls.done[:n]
	for i := range ls.done {
		ls.done[i] = false
	}
}

// advanceLanes performs one damped-fixed-point iteration step for every
// live lane of the block: threadCPI at the lane's current bus factor plus
// the lane's per-thread traffic contribution. It is the kernel dispatch
// point — a SIMD build may replace it with a vector implementation, which
// is bit-identical by construction because every lane's operation sequence
// is element-wise (see the package comment) and may also recompute retired
// lanes (their inputs no longer change, so recomputation is exact).
var advanceLanes = advanceLanesScalar

// laneKernelVariant names the bound lane kernel ("scalar" or "avx2") for
// benchmark metadata and diagnostics.
var laneKernelVariant = "scalar"

// LaneKernelVariant reports which sweep lane kernel this process bound at
// startup: "avx2" when the vector kernel is active, "scalar" otherwise.
func LaneKernelVariant() string { return laneKernelVariant }

// advanceLanesScalar is the always-built reference implementation.
func advanceLanesScalar(ls *laneState, prefetchHide, mlp, freq, trafficPerMiss float64) {
	for l := range ls.base {
		if ls.done[l] {
			continue
		}
		memLat := ls.pfx[l] * ls.bus[l] * prefetchHide
		cpi := ls.base[l] + ls.q[l]*memLat/mlp
		if cpi < ls.min[l] {
			cpi = ls.min[l]
		}
		cpi = cpi / ls.divf[l]
		ls.cpi[l] = cpi
		ls.contrib[l] = ls.q[l] * (freq / cpi) * trafficPerMiss
	}
}
