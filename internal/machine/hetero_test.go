package machine

import (
	"sync"
	"testing"
	"testing/quick"

	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// buildFuzzTopo derives a valid asymmetric big/little topology from fuzz
// bytes: 1–3 big groups of 1–3 cores plus 0–2 little groups of 1–2 cores
// with fuzzed class multipliers.
func buildFuzzTopo(t *testing.T, bigGroups, bigSize, littleGroups, littleSize, freqRaw, cpiRaw uint8) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("fuzz").
		Groups(int(bigGroups%3)+1, int(bigSize%3)+1)
	if lg := int(littleGroups % 3); lg > 0 {
		b.DefineClass(topology.CoreClass{
			Name:     "little",
			FreqMult: 0.3 + float64(freqRaw%70)/100, // 0.30–0.99
			CPIMult:  1 + float64(cpiRaw%100)/100,   // 1.00–1.99
			SMTWidth: 1,
		})
		b.Groups(lg, int(littleSize%2)+1, topology.Class("little"))
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestHeteroSweepMatchesRunPhaseProperty is the satellite property test:
// for randomized asymmetric topologies (fuzzed group sizes and class
// multipliers) and fuzzed phase shapes, RunPhaseSweep over every enumerated
// placement is bit-identical to per-placement RunPhase — with and without
// the memo, exactly like the homogeneous ground contract.
func TestHeteroSweepMatchesRunPhaseProperty(t *testing.T) {
	f := func(bg, bs, lg, ls, fr, cr uint8, ipcRaw, wsRaw, missRaw uint32) bool {
		topo := buildFuzzTopo(t, bg, bs, lg, ls, fr, cr)
		placements := topology.EnumeratePlacements(topo)
		p := testPhase()
		p.Fingerprint = "HET/fuzz"
		p.BaseIPC = 0.5 + float64(ipcRaw%250)/100
		p.WorkingSetBytes = float64(wsRaw%16384) * 1024
		p.L1MissRate = float64(missRaw%50) / 100
		idio := float64(ipcRaw%17) / 40
		for _, memoise := range []bool{false, true} {
			sweepM, loopM := sweepMachines(t, topo, memoise, false)
			dst := make([]Result, len(placements))
			sweepM.RunPhaseSweep(&p, idio, placements, dst)
			for i, pl := range placements {
				if !resultsBitIdentical(dst[i], loopM.RunPhase(&p, idio, pl)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHeteroClassesChangePerformance sanity-checks the class multipliers'
// direction: one thread on a little core is slower than one thread on a
// big core of the same machine, and a mixed placement lands in between the
// all-big and all-little extremes on total throughput.
func TestHeteroClassesChangePerformance(t *testing.T) {
	topo, err := topology.NewBuilder("bl").Group(2).Group(2, topology.Class("little")).Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	p := testPhase()
	big := topology.Placement{Name: "big1", Cores: []topology.CoreID{0}}
	little := topology.Placement{Name: "little1", Cores: []topology.CoreID{2}}
	tBig := m.RunPhase(&p, 0, big).TimeSec
	tLittle := m.RunPhase(&p, 0, little).TimeSec
	if tLittle <= tBig {
		t.Errorf("little core (%.3fs) not slower than big core (%.3fs)", tLittle, tBig)
	}
	// A little core at FreqMult f with CPIMult c can be at most 1/(f·c)
	// slower on compute-bound work plus memory effects; just require a
	// sane bound rather than an exact ratio.
	if tLittle > 6*tBig {
		t.Errorf("little core implausibly slow: %.3fs vs %.3fs", tLittle, tBig)
	}
}

// TestHeteroSMTSiblingsShareL2 pins the SMT representation: siblings are
// ordinary cores of the declaring group, so placing two threads on the two
// siblings of one physical core behaves like tightly coupled threads.
func TestHeteroSMTSiblingsShareL2(t *testing.T) {
	topo, err := topology.NewBuilder("smt").
		DefineClass(topology.CoreClass{Name: "smt2", FreqMult: 1, CPIMult: 1.4, SMTWidth: 2}).
		Groups(2, 1, topology.Class("smt2")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	p := testPhase()
	p.WorkingSetBytes = 6 * 1024 * 1024 // stress the shared L2
	siblings := topology.Placement{Name: "sib", Cores: []topology.CoreID{0, 1}}
	spread := topology.Placement{Name: "spread", Cores: []topology.CoreID{0, 2}}
	tSib := m.RunPhase(&p, 0, siblings).TimeSec
	tSpread := m.RunPhase(&p, 0, spread).TimeSec
	if tSib <= tSpread {
		t.Errorf("SMT siblings (%.3fs) not slower than spread threads (%.3fs) on a cache-bound phase", tSib, tSpread)
	}
}

// TestConcurrentHeteroSweeps is the satellite race test: concurrent sweeps
// over a shared memoised heterogeneous machine (run under -race in CI) must
// each observe results bit-identical to an isolated sequential machine.
func TestConcurrentHeteroSweeps(t *testing.T) {
	topo, err := topology.ParseDesc("4x4+4x2:little")
	if err != nil {
		t.Fatal(err)
	}
	placements := topology.EnumeratePlacements(topo)
	shared, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	shared = shared.WithMemo()
	ref, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}

	phases := make([]workload.PhaseProfile, 4)
	for i := range phases {
		phases[i] = testPhase()
		phases[i].Fingerprint = "HETRACE/" + string(rune('a'+i))
		phases[i].WorkingSetBytes = float64(1+i) * 1024 * 1024
	}
	want := make([][]Result, len(phases))
	for pi := range phases {
		want[pi] = make([]Result, len(placements))
		ref.RunPhaseSweep(&phases[pi], 0.1, placements, want[pi])
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]Result, len(placements))
			for round := 0; round < 10; round++ {
				pi := (w + round) % len(phases)
				shared.RunPhaseSweep(&phases[pi], 0.1, placements, dst)
				for i := range placements {
					if !resultsBitIdentical(dst[i], want[pi][i]) {
						errs <- "concurrent hetero sweep diverged from sequential reference"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if hits, _ := shared.MemoStats(); hits == 0 {
		t.Error("no memo hits under concurrent hetero sweeps")
	}
}
