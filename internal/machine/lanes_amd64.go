//go:build amd64 && !actor_noasm

package machine

import "github.com/greenhpc/actor/internal/simd"

func init() {
	if simd.Enabled() {
		advanceLanes = advanceLanesAVX2
		laneKernelVariant = "avx2"
	}
}

//go:noescape
func advanceLanes4(base, pfx, q, min, divf, bus, cpi, contrib *float64, n int, prefetchHide, mlp, freq, tpm float64)

// advanceLanesAVX2 advances four lanes per instruction and finishes the
// tail with the scalar reference's loop body. The vector interior ignores
// the done mask: a retired lane's inputs are frozen, so recomputing it
// reproduces the exact bits it already holds (see lanes.go).
func advanceLanesAVX2(ls *laneState, prefetchHide, mlp, freq, trafficPerMiss float64) {
	n := ls.len()
	n4 := n &^ 3
	if n4 > 0 {
		advanceLanes4(&ls.base[0], &ls.pfx[0], &ls.q[0], &ls.min[0], &ls.divf[0],
			&ls.bus[0], &ls.cpi[0], &ls.contrib[0], n4,
			prefetchHide, mlp, freq, trafficPerMiss)
	}
	for l := n4; l < n; l++ {
		if ls.done[l] {
			continue
		}
		memLat := ls.pfx[l] * ls.bus[l] * prefetchHide
		cpi := ls.base[l] + ls.q[l]*memLat/mlp
		if cpi < ls.min[l] {
			cpi = ls.min[l]
		}
		cpi = cpi / ls.divf[l]
		ls.cpi[l] = cpi
		ls.contrib[l] = ls.q[l] * (freq / cpi) * trafficPerMiss
	}
}
