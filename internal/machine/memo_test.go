package machine

import (
	"sync"
	"testing"

	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/topology"
)

func TestMemoServesIdenticalResults(t *testing.T) {
	plain := newMachine(t)
	memod := plain.WithMemo()
	p := testPhase()
	cfg, _ := topology.ConfigByName("2a")

	want := plain.RunPhase(&p, 0.1, cfg)
	first := memod.RunPhase(&p, 0.1, cfg)  // miss: computes + fills
	second := memod.RunPhase(&p, 0.1, cfg) // hit: served from cache
	for name, got := range map[string]Result{"first": first, "second": second} {
		if !memoEquivalent(got.TimeSec, want.TimeSec) ||
			!memoEquivalent(got.AggIPC, want.AggIPC) ||
			got.Counts != want.Counts {
			t.Errorf("%s memoised result differs from direct computation", name)
		}
	}
	if hits, misses := memod.MemoStats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if plainHits, _ := plain.MemoStats(); plainHits != 0 {
		t.Error("memo leaked into the non-memoised machine")
	}
}

func TestMemoKeyDiscriminates(t *testing.T) {
	m := newMachine(t).WithMemo()
	p := testPhase()
	cfg2a, _ := topology.ConfigByName("2a")
	cfg2b, _ := topology.ConfigByName("2b")

	a := m.RunPhase(&p, 0.1, cfg2a)
	if b := m.RunPhase(&p, 0.1, cfg2b); a.TimeSec == b.TimeSec {
		t.Error("different placements memoised to the same result")
	}
	if c := m.RunPhase(&p, 0.3, cfg2a); a.TimeSec == c.TimeSec {
		t.Error("different idiosyncrasy memoised to the same result")
	}
	if d := m.WithFrequency(0.5).RunPhase(&p, 0.1, cfg2a); a.TimeSec == d.TimeSec {
		t.Error("different frequency memoised to the same result")
	}
}

func TestMemoSharedWithNoiseForkKeepsVariance(t *testing.T) {
	truth := newMachine(t).WithMemo()
	noisy := truth.WithNoise(noise.New(7), 0.05, 0.1)
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")

	base := truth.RunPhase(&p, 0.1, cfg)
	r1 := noisy.RunPhase(&p, 0.1, cfg)
	r2 := noisy.RunPhase(&p, 0.1, cfg)
	if r1.TimeSec == r2.TimeSec {
		t.Error("noisy runs served identical (unperturbed?) times from the memo")
	}
	if r1.TimeSec == base.TimeSec {
		t.Error("noise not applied on top of memoised result")
	}
	if hits, misses := truth.MemoStats(); hits != 2 || misses != 1 {
		t.Errorf("noisy fork did not share the memo: %d hits / %d misses", hits, misses)
	}
}

func TestMemoConcurrentAccess(t *testing.T) {
	m := newMachine(t).WithMemo()
	p := testPhase()
	cfgs := topology.PaperConfigs()
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = m.RunPhase(&p, 0.1, cfg)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, cfg := range cfgs {
				if got := m.RunPhase(&p, 0.1, cfg); got.TimeSec != want[i].TimeSec {
					t.Errorf("concurrent lookup for %s diverged", cfg.Name)
				}
			}
		}()
	}
	wg.Wait()
}

// TestMemoHitSharesCanonicalPerThreadIPC pins the zero-allocation hit
// contract: every Result served for the same (phase, placement) aliases one
// canonical PerThreadIPC backing array (documented read-only in WithMemo),
// and the hot hit path performs no allocations at all.
func TestMemoHitSharesCanonicalPerThreadIPC(t *testing.T) {
	m := newMachine(t).WithMemo()
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")
	r1 := m.RunPhase(&p, 0.1, cfg) // miss: fills the cache
	r2 := m.RunPhase(&p, 0.1, cfg) // hit
	if len(r1.PerThreadIPC) == 0 || &r1.PerThreadIPC[0] != &r2.PerThreadIPC[0] {
		t.Error("memo hits should alias the canonical PerThreadIPC slice (zero-alloc contract)")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		m.RunPhase(&p, 0.1, cfg)
	}); allocs != 0 {
		t.Errorf("memoised RunPhase hit allocates %.1f objects/op, want 0", allocs)
	}
	// Measurement noise is applied to the served copy and must leave the
	// canonical per-thread slice untouched.
	noisy := m.WithNoise(noise.New(7), 0.05, 0.1)
	before := append([]float64(nil), r1.PerThreadIPC...)
	noisy.RunPhase(&p, 0.1, cfg)
	for i, v := range r1.PerThreadIPC {
		if v != before[i] {
			t.Fatal("perturb mutated the canonical PerThreadIPC slice")
		}
	}
}

func TestMemoSetParamsInvalidates(t *testing.T) {
	m := newMachine(t).WithMemo()
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")

	before := m.RunPhase(&p, 0.1, cfg) // miss: fills the cache

	slow := m.Params()
	slow.MemLatencyCycles *= 4
	m.SetParams(slow)
	after := m.RunPhase(&p, 0.1, cfg)
	if memoEquivalent(after.TimeSec, before.TimeSec) {
		t.Error("params change served a stale memoised response")
	}
	if after.TimeSec <= before.TimeSec {
		t.Errorf("4× memory latency did not slow the phase: %g vs %g", after.TimeSec, before.TimeSec)
	}
	if _, misses := m.MemoStats(); misses != 2 {
		t.Errorf("misses = %d, want 2 (one per params epoch)", misses)
	}

	// Restoring the old values under a new epoch must still recompute —
	// the key carries the epoch, not the parameter values — and the result
	// must equal the original computation.
	orig := slow
	orig.MemLatencyCycles /= 4
	m.SetParams(orig)
	restored := m.RunPhase(&p, 0.1, cfg)
	if !memoEquivalent(restored.TimeSec, before.TimeSec) {
		t.Error("recomputation under restored params diverged from the original")
	}
	if _, misses := m.MemoStats(); misses != 3 {
		t.Errorf("misses = %d, want 3", misses)
	}
}

func TestMemoSetParamsOnDerivedMachinesCannotCollide(t *testing.T) {
	a := newMachine(t).WithMemo()
	b := a.WithFrequency(1) // shares a's memo
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")

	fast := a.Params()
	fast.MemLatencyCycles /= 2
	slow := a.Params()
	slow.MemLatencyCycles *= 2
	a.SetParams(fast)
	b.SetParams(slow) // epochs come from the shared memo: must differ from a's

	ra := a.RunPhase(&p, 0.1, cfg)
	rb := b.RunPhase(&p, 0.1, cfg)
	if memoEquivalent(ra.TimeSec, rb.TimeSec) {
		t.Error("derived machines with diverged Params shared a memo entry (epoch collision)")
	}
	if rb.TimeSec <= ra.TimeSec {
		t.Errorf("2× vs 0.5× memory latency ordering wrong: %g vs %g", rb.TimeSec, ra.TimeSec)
	}
}

func TestMemoSetParamsBeforeWithMemoStaysInvalidatable(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")

	pre := m.Params()
	pre.MemLatencyCycles /= 2
	m.SetParams(pre) // advances the epoch before any memo exists

	mm := m.WithMemo()
	before := mm.RunPhase(&p, 0.1, cfg) // caches under the pre-memo epoch

	slow := mm.Params()
	slow.MemLatencyCycles *= 8
	mm.SetParams(slow) // the fresh memo's counter must not re-issue that epoch
	after := mm.RunPhase(&p, 0.1, cfg)
	if memoEquivalent(after.TimeSec, before.TimeSec) {
		t.Error("SetParams after late memoisation served a stale response (epoch re-issued)")
	}
}
