package machine

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

func testPhase() workload.PhaseProfile {
	return workload.PhaseProfile{
		Name: "p", Fingerprint: "T/p", Instructions: 5e8, BaseIPC: 1.5,
		MemRefsPerInstr: 0.3, LoadFraction: 0.65, L1MissRate: 0.08,
		WorkingSetBytes: 2.5 * 1024 * 1024, SharingFactor: 0.2, LocalityExp: 1,
		ColdMissRate: 0.15, MLP: 2.5, ParallelFraction: 0.99,
		SyncCycles: 3e5, BranchRate: 0.08, BranchMissRate: 0.02,
		TLBMissRate: 0.0005, ChunkGranularity: 64, PrefetchFriendly: 0.4,
	}
}

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(topology.QuadCoreXeon())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunPhaseBasicInvariants(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	for _, cfg := range topology.PaperConfigs() {
		res := m.RunPhase(&p, 0, cfg)
		if res.TimeSec <= 0 {
			t.Errorf("%s: non-positive time %g", cfg.Name, res.TimeSec)
		}
		if res.AggIPC <= 0 {
			t.Errorf("%s: non-positive IPC %g", cfg.Name, res.AggIPC)
		}
		maxIPC := float64(cfg.Threads()) * m.Params().PeakIssueIPC
		if res.AggIPC > maxIPC {
			t.Errorf("%s: IPC %g exceeds issue bound %g", cfg.Name, res.AggIPC, maxIPC)
		}
		if got := res.Counts[pmu.Instructions]; got != p.Instructions {
			t.Errorf("%s: instructions %g, want %g", cfg.Name, got, p.Instructions)
		}
		if res.Activity.ActiveCores != cfg.Threads() {
			t.Errorf("%s: active cores %d", cfg.Name, res.Activity.ActiveCores)
		}
		if res.Activity.BusUtilization < 0 || res.Activity.BusUtilization > 1 {
			t.Errorf("%s: bus utilization %g", cfg.Name, res.Activity.BusUtilization)
		}
	}
}

func TestRunPhaseDeterministic(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")
	a := m.RunPhase(&p, 0.05, cfg)
	b := m.RunPhase(&p, 0.05, cfg)
	if a.TimeSec != b.TimeSec || a.AggIPC != b.AggIPC {
		t.Error("noiseless machine is not deterministic")
	}
}

func TestEventCountConsistency(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")
	c := m.RunPhase(&p, 0, cfg).Counts
	memRefs := c[pmu.L1DReferences]
	if c[pmu.L1DMisses] > memRefs {
		t.Error("L1 misses exceed references")
	}
	if c[pmu.L2Misses] > c[pmu.L2References]+1e-9 {
		t.Error("L2 misses exceed L2 references")
	}
	if got := c[pmu.LoadsRetired] + c[pmu.StoresRetired]; math.Abs(got-memRefs) > 1e-6*memRefs {
		t.Errorf("loads+stores = %g, want %g", got, memRefs)
	}
	if c[pmu.BranchMisses] > c[pmu.BranchesRet] {
		t.Error("branch misses exceed branches")
	}
	if c[pmu.Cycles] <= 0 {
		t.Error("zero cycle count")
	}
	if c[pmu.ResourceStalls] > c[pmu.Cycles] {
		t.Error("stall cycles exceed total cycles")
	}
}

func TestTightCouplingHurtsCapacitySensitivePhases(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	p.WorkingSetBytes = 3.5 * 1024 * 1024 // nearly a whole L2
	p.SharingFactor = 0.05
	p.Fingerprint = "" // disable response perturbation for a clean check
	t2a, _ := topology.ConfigByName("2a")
	t2b, _ := topology.ConfigByName("2b")
	a := m.RunPhase(&p, 0, t2a)
	b := m.RunPhase(&p, 0, t2b)
	if a.TimeSec <= b.TimeSec {
		t.Errorf("tightly coupled (%.3fs) not slower than loosely coupled (%.3fs) for L2-filling phase",
			a.TimeSec, b.TimeSec)
	}
}

func TestBandwidthWall(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	p.Fingerprint = ""
	p.MemRefsPerInstr = 0.55
	p.L1MissRate = 0.45
	p.ColdMissRate = 0.3
	p.MLP = 12
	p.PrefetchFriendly = 0.85
	cfg2b, _ := topology.ConfigByName("2b")
	cfg1, _ := topology.ConfigByName("1")
	t1 := m.RunPhase(&p, 0, cfg1).TimeSec
	t2 := m.RunPhase(&p, 0, cfg2b).TimeSec
	// Bandwidth-bound: doubling threads cannot halve time.
	if t2 < t1*0.55 {
		t.Errorf("bandwidth-bound phase sped up too much: %g → %g", t1, t2)
	}
}

func TestSerialFractionLimitsSpeedup(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	p.Fingerprint = ""
	p.ParallelFraction = 0.5
	p.L1MissRate = 0.01 // keep it compute bound
	p.WorkingSetBytes = 100 * 1024
	cfg4, _ := topology.ConfigByName("4")
	cfg1, _ := topology.ConfigByName("1")
	t1 := m.RunPhase(&p, 0, cfg1).TimeSec
	t4 := m.RunPhase(&p, 0, cfg4).TimeSec
	speedup := t1 / t4
	if speedup > 1.7 { // Amdahl bound at f=0.5 is 1.6, plus model slack
		t.Errorf("speedup %g exceeds Amdahl bound for 50%% serial phase", speedup)
	}
}

func TestNoisyMachine(t *testing.T) {
	m := newMachine(t)
	src := noise.New(1)
	nm := m.WithNoise(src, 0.05, 0.05)
	p := testPhase()
	cfg, _ := topology.ConfigByName("4")
	a := nm.RunPhase(&p, 0, cfg)
	b := nm.RunPhase(&p, 0, cfg)
	if a.TimeSec == b.TimeSec {
		t.Error("noisy machine produced identical times")
	}
	// Instructions are exact (retirement counters don't drift).
	if a.Counts[pmu.Instructions] != b.Counts[pmu.Instructions] {
		t.Error("instruction counts differ under noise")
	}
	// Same seed → same stream.
	nm2 := m.WithNoise(noise.New(1), 0.05, 0.05)
	c := nm2.RunPhase(&p, 0, cfg)
	if c.TimeSec != a.TimeSec {
		t.Error("noise not reproducible under equal seeds")
	}
	// The underlying machine must stay pristine.
	x := m.RunPhase(&p, 0, cfg)
	y := m.RunPhase(&p, 0, cfg)
	if x.TimeSec != y.TimeSec {
		t.Error("WithNoise mutated the base machine")
	}
}

func TestMigrationPenalty(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	c1, _ := topology.ConfigByName("1")
	c2b, _ := topology.ConfigByName("2b")
	if sec, bytes := m.MigrationPenalty(&p, c1, c1); sec != 0 || bytes != 0 {
		t.Error("same-placement migration has non-zero cost")
	}
	sec, bytes := m.MigrationPenalty(&p, c1, c2b)
	if sec <= 0 || bytes <= 0 {
		t.Errorf("migration 1→2b cost (%g, %g), want positive", sec, bytes)
	}
	// 2a→2b moves one thread to a cold L2 group; 4→4 moves nothing.
	c2a, _ := topology.ConfigByName("2a")
	sec2, _ := m.MigrationPenalty(&p, c2a, c2b)
	if sec2 <= 0 {
		t.Error("migration 2a→2b should refill the new group")
	}
}

func TestResponseFactorProperties(t *testing.T) {
	m := newMachine(t)
	p := testPhase()
	cfg4, _ := topology.ConfigByName("4")
	cfg1, _ := topology.ConfigByName("1")

	a := m.responseFactor(&p, cfg4)
	b := m.responseFactor(&p, cfg4)
	if a != b {
		t.Error("response factor not deterministic")
	}
	if a <= 0 {
		t.Errorf("response factor %g not positive", a)
	}
	if got := m.responseFactor(&p, cfg1); got != 1 {
		t.Errorf("single-thread response factor = %g, want 1", got)
	}
	p2 := p
	p2.Fingerprint = ""
	if got := m.responseFactor(&p2, cfg4); got != 1 {
		t.Errorf("fingerprint-less response factor = %g, want 1", got)
	}
	m2 := *m
	m2.params.ResponseSigma = 0
	if got := m2.responseFactor(&p, cfg4); got != 1 {
		t.Errorf("zero-sigma response factor = %g, want 1", got)
	}
	// Different fingerprints and placements give different factors.
	p3 := p
	p3.Fingerprint = "OTHER/p"
	if m.responseFactor(&p3, cfg4) == a {
		t.Error("distinct fingerprints share a response factor")
	}
	cfg3, _ := topology.ConfigByName("3")
	if m.responseFactor(&p, cfg3) == a {
		t.Error("distinct placements share a response factor")
	}
}

func TestImbalanceFactor(t *testing.T) {
	cases := []struct {
		chunks, n int
		want      float64
	}{
		{64, 4, 1}, {64, 1, 1}, {0, 4, 1},
		{33, 2, float64(17*2) / 33},
		{33, 4, float64(9*4) / 33},
		{2, 4, 2}, // fewer chunks than threads
	}
	for _, c := range cases {
		if got := imbalanceFactor(c.chunks, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("imbalanceFactor(%d, %d) = %g, want %g", c.chunks, c.n, got, c.want)
		}
	}
}

func TestRunPhaseQuickProperties(t *testing.T) {
	m := newMachine(t)
	cfgs := topology.PaperConfigs()
	f := func(ipcRaw, memRaw, missRaw, wsRaw, pfRaw uint16, cfgIdx uint8) bool {
		p := testPhase()
		p.Fingerprint = ""
		p.BaseIPC = 0.5 + float64(ipcRaw%250)/100    // 0.5 .. 3.0
		p.MemRefsPerInstr = float64(memRaw%60) / 100 // 0 .. 0.6
		p.L1MissRate = float64(missRaw%50) / 100     // 0 .. 0.5
		p.WorkingSetBytes = float64(wsRaw%8192) * 1024
		p.PrefetchFriendly = float64(pfRaw%100) / 100
		cfg := cfgs[int(cfgIdx)%len(cfgs)]
		res := m.RunPhase(&p, 0, cfg)
		if !(res.TimeSec > 0) || math.IsNaN(res.TimeSec) || math.IsInf(res.TimeSec, 0) {
			return false
		}
		if !(res.AggIPC > 0) || res.AggIPC > float64(cfg.Threads())*m.Params().PeakIssueIPC {
			return false
		}
		for _, v := range res.Counts {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestManycoreMachine(t *testing.T) {
	m, err := New(topology.Manycore(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := testPhase()
	p.Fingerprint = ""
	pls := topology.EnumeratePlacements(m.Topo)
	if len(pls) < 16 {
		t.Fatalf("only %d placements enumerated on 16 cores", len(pls))
	}
	for _, pl := range pls {
		res := m.RunPhase(&p, 0, pl)
		if res.TimeSec <= 0 {
			t.Errorf("placement %v: non-positive time", pl)
		}
	}
}
