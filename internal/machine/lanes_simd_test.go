//go:build amd64 && !actor_noasm

package machine

import (
	"math"
	"math/rand"
	"testing"

	"github.com/greenhpc/actor/internal/simd"
)

// laneInputs builds a lane block with values spanning the model's realistic
// ranges plus denormals, huge magnitudes and special values.
func laneInputs(rng *rand.Rand, n int) *laneState {
	ls := &laneState{}
	pick := func(i int) float64 {
		switch i % 7 {
		case 0:
			return rng.Float64() * 10
		case 1:
			return rng.Float64() * 1e-3
		case 2:
			return rng.Float64() * 1e6
		case 3:
			return 5e-324
		case 4:
			return math.MaxFloat64 * rng.Float64()
		case 5:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	for i := 0; i < n; i++ {
		ls.append(pick(i+1), pick(i+2), pick(i+3), pick(i+5), 0.5+rng.Float64())
	}
	ls.sizeDerived()
	for i := range ls.bus {
		ls.bus[i] = 1 + rng.Float64()*3
	}
	return ls
}

func cloneLanes(src *laneState) *laneState {
	dst := &laneState{}
	dst.base = append(dst.base, src.base...)
	dst.pfx = append(dst.pfx, src.pfx...)
	dst.q = append(dst.q, src.q...)
	dst.min = append(dst.min, src.min...)
	dst.divf = append(dst.divf, src.divf...)
	dst.bus = append(dst.bus, src.bus...)
	dst.cpi = append(dst.cpi, src.cpi...)
	dst.contrib = append(dst.contrib, src.contrib...)
	dst.done = append(dst.done, src.done...)
	return dst
}

// TestAdvanceLanesBitIdentical drives the AVX2 lane kernel and the scalar
// reference over identical blocks — odd lengths for tail lanes, and a
// second iteration with retired lanes whose inputs are frozen (the solver's
// invariant that makes recomputing them exact).
func TestAdvanceLanesBitIdentical(t *testing.T) {
	f := simd.Detect()
	if !f.AVX2 || !f.OSYMM {
		t.Skip("no AVX2 on this machine")
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 100} {
		ph, mlp := 0.6+rng.Float64()*0.4, 1+rng.Float64()*3
		freq, tpm := 1e9*(1+rng.Float64()*2), rng.Float64()*128

		want := laneInputs(rng, n)
		got := cloneLanes(want)
		advanceLanesScalar(want, ph, mlp, freq, tpm)
		advanceLanesAVX2(got, ph, mlp, freq, tpm)
		for i := 0; i < n; i++ {
			if math.Float64bits(got.cpi[i]) != math.Float64bits(want.cpi[i]) ||
				math.Float64bits(got.contrib[i]) != math.Float64bits(want.contrib[i]) {
				t.Fatalf("n=%d lane %d: cpi %x vs %x, contrib %x vs %x", n, i,
					math.Float64bits(got.cpi[i]), math.Float64bits(want.cpi[i]),
					math.Float64bits(got.contrib[i]), math.Float64bits(want.contrib[i]))
			}
		}

		// Retire a random subset (inputs frozen), perturb only live lanes'
		// bus factors, advance again: the vector kernel recomputes retired
		// lanes and must land on the exact bits they already hold.
		for i := 0; i < n; i++ {
			retire := rng.Intn(2) == 0
			want.done[i] = retire
			got.done[i] = retire
			if !retire {
				b := 1 + rng.Float64()*3
				want.bus[i] = b
				got.bus[i] = b
			}
		}
		advanceLanesScalar(want, ph, mlp, freq, tpm)
		advanceLanesAVX2(got, ph, mlp, freq, tpm)
		for i := 0; i < n; i++ {
			if math.Float64bits(got.cpi[i]) != math.Float64bits(want.cpi[i]) ||
				math.Float64bits(got.contrib[i]) != math.Float64bits(want.contrib[i]) {
				t.Fatalf("n=%d lane %d after retirement: cpi %x vs %x, contrib %x vs %x", n, i,
					math.Float64bits(got.cpi[i]), math.Float64bits(want.cpi[i]),
					math.Float64bits(got.contrib[i]), math.Float64bits(want.contrib[i]))
			}
		}
	}
}

// FuzzAdvanceLanesBitIdentity lets the fuzzer hunt for parameter and lane
// value combinations where the vector kernel could diverge.
func FuzzAdvanceLanesBitIdentity(f *testing.F) {
	f.Add(int64(1), uint8(5))
	f.Add(int64(42), uint8(13))
	f.Fuzz(func(t *testing.T, seed int64, nB uint8) {
		fz := simd.Detect()
		if !fz.AVX2 || !fz.OSYMM {
			t.Skip("no AVX2")
		}
		n := int(nB % 40)
		rng := rand.New(rand.NewSource(seed))
		ph, mlp := rng.Float64()*2, rng.Float64()*4
		freq, tpm := rng.Float64()*3e9, rng.Float64()*256
		want := laneInputs(rng, n)
		got := cloneLanes(want)
		advanceLanesScalar(want, ph, mlp, freq, tpm)
		advanceLanesAVX2(got, ph, mlp, freq, tpm)
		for i := 0; i < n; i++ {
			if math.Float64bits(got.cpi[i]) != math.Float64bits(want.cpi[i]) ||
				math.Float64bits(got.contrib[i]) != math.Float64bits(want.contrib[i]) {
				t.Fatalf("lane %d diverged", i)
			}
		}
	})
}
