//go:build amd64 && !actor_noasm

#include "textflag.h"

// func advanceLanes4(base, pfx, q, min, divf, bus, cpi, contrib *float64, n int, prefetchHide, mlp, freq, tpm float64)
// One damped-fixed-point step for four lanes per instruction, exactly the
// scalar sequence of advanceLanesScalar per lane:
//
//	memLat  = (pfx·bus)·prefetchHide
//	cpi     = base + (q·memLat)/mlp
//	cpi     = cpi < min ? min : cpi     (LT_OQ — false on NaN, like Go's <)
//	cpi     = cpi / divf
//	contrib = (q·(freq/cpi))·tpm
//
// Retired (done) lanes are recomputed rather than skipped: their inputs are
// frozen once the owning placement converges, so the recomputation yields
// the identical bits the lane already holds. n is a multiple of 4; the
// caller runs the scalar reference on the tail.
TEXT ·advanceLanes4(SB), NOSPLIT, $0-104
	MOVQ base+0(FP), DI
	MOVQ pfx+8(FP), SI
	MOVQ q+16(FP), DX
	MOVQ min+24(FP), R8
	MOVQ divf+32(FP), R9
	MOVQ bus+40(FP), R10
	MOVQ cpi+48(FP), R11
	MOVQ contrib+56(FP), R12
	MOVQ n+64(FP), CX
	VBROADCASTSD prefetchHide+72(FP), Y8
	VBROADCASTSD mlp+80(FP), Y9
	VBROADCASTSD freq+88(FP), Y10
	VBROADCASTSD tpm+96(FP), Y11
	XORQ AX, AX
	SHRQ $2, CX
	JZ   aldone
alloop:
	VMOVUPD (SI)(AX*1), Y0      // pfx
	VMULPD  (R10)(AX*1), Y0, Y0 // · bus
	VMULPD  Y8, Y0, Y0          // · prefetchHide = memLat
	VMOVUPD (DX)(AX*1), Y2      // q
	VMULPD  Y0, Y2, Y3          // q·memLat
	VDIVPD  Y9, Y3, Y3          // / mlp
	VADDPD  (DI)(AX*1), Y3, Y3  // base + memTerm
	VMOVUPD (R8)(AX*1), Y5      // min
	VCMPPD  $0x11, Y5, Y3, Y6   // cpi < min (LT_OQ)
	VBLENDVPD Y6, Y5, Y3, Y3    // clamp to min where below
	VDIVPD  (R9)(AX*1), Y3, Y3  // / divf
	VMOVUPD Y3, (R11)(AX*1)     // cpi out
	VDIVPD  Y3, Y10, Y0         // freq/cpi
	VMULPD  Y0, Y2, Y0          // q·(freq/cpi)
	VMULPD  Y11, Y0, Y0         // · trafficPerMiss
	VMOVUPD Y0, (R12)(AX*1)     // contrib out
	ADDQ $32, AX
	DECQ CX
	JNZ  alloop
aldone:
	VZEROUPPER
	RET
