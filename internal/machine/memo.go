package machine

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// phaseMemo is a concurrency-safe cache of the deterministic part of
// RunPhase, keyed by everything that part depends on: the phase identity
// (Fingerprint), the placement (name and core set — the name feeds the
// response-factor hash, the cores feed group loads), the clock scale and
// the benchmark idiosyncrasy. Strategy replays and figure drivers execute
// the same (phase, placement) pair at every timestep, so hit rates in the
// evaluation pipeline are extremely high.
//
// The cache deliberately excludes measurement noise: RunPhase applies
// perturbation after the lookup, so noisy machines share the memo with
// their noiseless ground-truth counterpart.
type phaseMemo struct {
	m            sync.Map // memoKey → *Result (canonical, never mutated)
	hits, misses atomic.Uint64

	// epochCounter allocates params epochs (see Machine.SetParams). It
	// lives on the shared memo so every machine sharing the cache draws
	// from one sequence: each SetParams call gets a unique epoch and two
	// derived machines with different Params cannot key the same entries.
	epochCounter atomic.Uint64
}

// nextEpoch returns a fresh, never-before-issued params epoch.
func (c *phaseMemo) nextEpoch() uint64 { return c.epochCounter.Add(1) }

type memoKey struct {
	fingerprint string
	placement   string
	coresHash   uint64
	freqScale   float64
	idio        float64
	paramsEpoch uint64
}

// lookup returns the memoised deterministic result for the task, computing
// and inserting it on first use. The returned Result owns a private
// PerThreadIPC slice, so callers (and perturb) may mutate it freely.
func (c *phaseMemo) lookup(m *Machine, p *workload.PhaseProfile, idio float64, pl topology.Placement) Result {
	key := memoKey{
		fingerprint: p.Fingerprint,
		placement:   pl.Name,
		coresHash:   hashCores(pl.Cores),
		freqScale:   m.clockScale(),
		idio:        idio,
		paramsEpoch: m.paramsEpoch,
	}
	if v, ok := c.m.Load(key); ok {
		c.hits.Add(1)
		return v.(*Result).copyOut()
	}
	c.misses.Add(1)
	res := m.computePhase(p, idio, pl)
	canonical := res.copyOut() // private slice the cache keeps forever
	if prev, loaded := c.m.LoadOrStore(key, &canonical); loaded {
		// A concurrent computation won the race; both results are
		// identical (the computation is deterministic), so either copy
		// serves.
		return prev.(*Result).copyOut()
	}
	return res
}

// copyOut returns a value copy of the result with its own PerThreadIPC
// backing array. Counts is an array, so the struct copy already covers it.
func (r *Result) copyOut() Result {
	cp := *r
	cp.PerThreadIPC = append([]float64(nil), r.PerThreadIPC...)
	return cp
}

// hashCores folds a placement's core list into an FNV-1a hash, so distinct
// core sets that happen to share a placement name cannot collide.
func hashCores(cores []topology.CoreID) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range cores {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// WithMemo returns a copy of the machine that serves the deterministic part
// of RunPhase from a shared phase-response cache. Derived machines
// (WithNoise, WithFrequency) share the memo — frequency-scaled results are
// distinguished by the cache key. Params changes are safe when made through
// SetParams, which bumps the params epoch in the cache key; writing the
// Params field directly on a memoised machine serves stale responses.
//
// Phases without a Fingerprint bypass the cache entirely.
func (m *Machine) WithMemo() *Machine {
	cp := *m
	if cp.memo == nil {
		cp.memo = &phaseMemo{}
		// Start the epoch sequence at the machine's current epoch:
		// SetParams calls made before memoisation advanced paramsEpoch
		// without a memo counter, and the first post-memoisation
		// SetParams must not re-issue the epoch the cache is already
		// keyed under.
		cp.memo.epochCounter.Store(cp.paramsEpoch)
	}
	return &cp
}

// MemoStats reports cache hits and misses (both zero when no memo is
// enabled) — used by benchmarks and PERFORMANCE.md to document hit rates.
func (m *Machine) MemoStats() (hits, misses uint64) {
	if m.memo == nil {
		return 0, 0
	}
	return m.memo.hits.Load(), m.memo.misses.Load()
}

// memoEquivalent reports whether two float64s are identical including NaN
// (used by tests asserting cached results are bit-identical).
func memoEquivalent(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
