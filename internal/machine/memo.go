package machine

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// phaseMemo is a concurrency-safe cache of the deterministic part of
// RunPhase, keyed by everything that part depends on: the phase identity
// (Fingerprint), the placement (name and core set — the name feeds the
// response-factor hash, the cores feed group loads), the clock scale and
// the benchmark idiosyncrasy. Strategy replays and figure drivers execute
// the same (phase, placement) pair at every timestep, so hit rates in the
// evaluation pipeline are extremely high.
//
// The cache is a sharded, open-addressed hash table. The hot lookup is
// lock-free and allocation-free: readers atomically load a shard's table
// pointer and linearly probe immutable entries published with atomic slot
// stores. Writers (misses only) serialise on a per-shard mutex and grow
// the shard's table copy-on-write, so a replay-heavy workload never
// contends on a lock after warm-up. Compare the previous sync.Map design:
// every lookup boxed its key into an interface (one allocation per hit)
// and every hit copied the result's PerThreadIPC slice (a second
// allocation).
//
// The cache deliberately excludes measurement noise: RunPhase applies
// perturbation after the lookup, so noisy machines share the memo with
// their noiseless ground-truth counterpart.
type phaseMemo struct {
	shards       [memoShardCount]memoShard
	hits, misses atomic.Uint64

	// epochCounter allocates params epochs (see Machine.SetParams). It
	// lives on the shared memo so every machine sharing the cache draws
	// from one sequence: each SetParams call gets a unique epoch and two
	// derived machines with different Params cannot key the same entries.
	epochCounter atomic.Uint64
}

// memoShardCount is a power of two; the low hash bits select the shard and
// the remaining bits seed the in-shard probe sequence.
const memoShardCount = 64

// memoShard is one lock domain of the cache.
type memoShard struct {
	mu    sync.Mutex // serialises writers; readers never take it
	count int        // live entries, guarded by mu
	table atomic.Pointer[memoTable]
}

// memoTable is an open-addressed slot array with linear probing. Slots are
// write-once: nil → *memoEntry. Tables are replaced wholesale on growth;
// a reader holding a superseded table still sees every entry that was
// published in it.
type memoTable struct {
	mask  uint64
	slots []atomic.Pointer[memoEntry]
}

// memoEntry is an immutable (key, result) pair. res.PerThreadIPC is the
// canonical slice shared with every Result served from the cache — callers
// must treat it as read-only (see WithMemo).
type memoEntry struct {
	hash uint64
	key  memoKey
	res  Result
}

type memoKey struct {
	fingerprint string
	placement   string
	coresHash   uint64
	freqScale   float64
	idio        float64
	paramsEpoch uint64
}

// nextEpoch returns a fresh, never-before-issued params epoch.
func (c *phaseMemo) nextEpoch() uint64 { return c.epochCounter.Add(1) }

// memoSeed folds the placement-independent key fields — fingerprint, clock
// scale, idiosyncrasy and params epoch — into a partial FNV-1a hash.
// RunPhaseSweep computes it once per phase and extends it per placement,
// so the per-lookup hashing cost in a sweep is just the placement tail.
func (m *Machine) memoSeed(p *workload.PhaseProfile) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(p.Fingerprint); i++ {
		h ^= uint64(p.Fingerprint[i])
		h *= 1099511628211
	}
	h ^= math.Float64bits(m.clockScale())
	h *= 1099511628211
	h ^= m.paramsEpoch
	h *= 1099511628211
	// Class layout: heterogeneous machines fold their per-core class
	// multipliers into every key, so a response computed under one class
	// table can never serve a machine with another.
	h ^= m.classSig
	h *= 1099511628211
	return h
}

// memoHash extends a memoSeed with the placement identity (name plus the
// caller-computed coresHash, which the verification key reuses) and the
// idiosyncrasy, then avalanches so shard and probe bits are independent.
func memoHash(seed uint64, idio float64, pl *topology.Placement, coresHash uint64) uint64 {
	h := seed
	h ^= math.Float64bits(idio)
	h *= 1099511628211
	for i := 0; i < len(pl.Name); i++ {
		h ^= uint64(pl.Name[i])
		h *= 1099511628211
	}
	h ^= coresHash
	h *= 1099511628211
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// keyFor builds the full verification key for a lookup. coresHash is the
// placement's hashCores value, computed once per lookup and shared with
// memoHash.
func (m *Machine) keyFor(p *workload.PhaseProfile, idio float64, pl *topology.Placement, coresHash uint64) memoKey {
	return memoKey{
		fingerprint: p.Fingerprint,
		placement:   pl.Name,
		coresHash:   coresHash,
		freqScale:   m.clockScale(),
		idio:        idio,
		paramsEpoch: m.paramsEpoch,
	}
}

// get probes the shard for hash/key. The fast path takes no locks and
// performs no allocations.
func (c *phaseMemo) get(hash uint64, key *memoKey) *memoEntry {
	sh := &c.shards[hash&(memoShardCount-1)]
	t := sh.table.Load()
	if t == nil {
		return nil
	}
	for i, probes := hash>>6, uint64(0); probes <= t.mask; i, probes = i+1, probes+1 {
		e := t.slots[i&t.mask].Load()
		if e == nil {
			return nil
		}
		if e.hash == hash && e.key == *key {
			return e
		}
	}
	return nil
}

// insert publishes an entry for (hash, key), returning the canonical entry
// (a concurrent writer may have published first — the computation is
// deterministic, so either result serves). res must own its PerThreadIPC
// slice: the cache keeps it forever and shares it with every hit.
func (c *phaseMemo) insert(hash uint64, key memoKey, res Result) *memoEntry {
	sh := &c.shards[hash&(memoShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	t := sh.table.Load()
	if t != nil {
		// Re-probe under the lock: we may have raced another writer.
		for i, probes := hash>>6, uint64(0); probes <= t.mask; i, probes = i+1, probes+1 {
			e := t.slots[i&t.mask].Load()
			if e == nil {
				break
			}
			if e.hash == hash && e.key == key {
				return e
			}
		}
	}
	// Grow at 50% load so probe chains stay short for the lock-free
	// readers. Growth publishes a fresh table; readers mid-probe on the
	// old one still see a consistent (if slightly stale) view and retry
	// through the slow path on a miss.
	if t == nil || uint64(sh.count+1)*2 > t.mask+1 {
		newSize := uint64(64)
		if t != nil {
			newSize = (t.mask + 1) * 2
		}
		nt := &memoTable{mask: newSize - 1, slots: make([]atomic.Pointer[memoEntry], newSize)}
		if t != nil {
			for i := range t.slots {
				if e := t.slots[i].Load(); e != nil {
					nt.place(e)
				}
			}
		}
		sh.table.Store(nt)
		t = nt
	}
	e := &memoEntry{hash: hash, key: key, res: res}
	t.place(e)
	sh.count++
	return e
}

// place stores an entry in the first free slot of its probe sequence. The
// caller holds the shard lock and has verified the key is absent.
func (t *memoTable) place(e *memoEntry) {
	for i := e.hash >> 6; ; i++ {
		slot := &t.slots[i&t.mask]
		if slot.Load() == nil {
			slot.Store(e)
			return
		}
	}
}

// lookup returns the memoised deterministic result for the task, computing
// and inserting it on first use. Served results share the cache's canonical
// PerThreadIPC slice; see WithMemo for the read-only contract.
func (c *phaseMemo) lookup(m *Machine, p *workload.PhaseProfile, idio float64, pl topology.Placement) Result {
	coresHash := hashCores(pl.Cores)
	hash := memoHash(m.memoSeed(p), idio, &pl, coresHash)
	key := m.keyFor(p, idio, &pl, coresHash)
	if e := c.get(hash, &key); e != nil {
		c.hits.Add(1)
		return e.res
	}
	c.misses.Add(1)
	res := m.computePhase(p, idio, pl)
	return c.insert(hash, key, res).res
}

// hashCores folds a placement's core list into an FNV-1a hash, so distinct
// core sets that happen to share a placement name cannot collide.
func hashCores(cores []topology.CoreID) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range cores {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// WithMemo returns a copy of the machine that serves the deterministic part
// of RunPhase from a shared phase-response cache. Derived machines
// (WithNoise, WithFrequency) share the memo — frequency-scaled results are
// distinguished by the cache key. Params changes are made through
// SetParams, which bumps the params epoch in the cache key (the Params
// field is unexported precisely so stale cached responses cannot be served
// by accident).
//
// Results served from the cache share one canonical PerThreadIPC backing
// array per (phase, placement) — the hot hit path performs zero
// allocations. Callers must treat PerThreadIPC as read-only on memoised
// machines; every other Result field is a value copy and may be mutated
// freely (measurement noise is applied to the copy).
//
// Phases without a Fingerprint bypass the cache entirely.
func (m *Machine) WithMemo() *Machine {
	cp := *m
	if cp.memo == nil {
		cp.memo = &phaseMemo{}
		// Start the epoch sequence at the machine's current epoch:
		// SetParams calls made before memoisation advanced paramsEpoch
		// without a memo counter, and the first post-memoisation
		// SetParams must not re-issue the epoch the cache is already
		// keyed under.
		cp.memo.epochCounter.Store(cp.paramsEpoch)
	}
	return &cp
}

// MemoStats reports cache hits and misses (both zero when no memo is
// enabled) — used by benchmarks and PERFORMANCE.md to document hit rates.
func (m *Machine) MemoStats() (hits, misses uint64) {
	if m.memo == nil {
		return 0, 0
	}
	return m.memo.hits.Load(), m.memo.misses.Load()
}

// memoEquivalent reports whether two float64s are identical including NaN
// (used by tests asserting cached results are bit-identical).
func memoEquivalent(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
