// Exported sweep-lane kernel surface for the root benchmark suite: runs
// whatever advanceLanes implementation the dispatch in lanes.go (and, on
// capable amd64 machines, lanes_amd64.go) bound at startup.
package machine

// AdvanceLanesBench performs iters fixed-point iteration steps over a
// synthetic block of n lanes with the bound lane kernel and returns a
// checksum of the final per-lane contributions (so the work cannot be
// optimized away). Deterministic in (n, iters).
func AdvanceLanesBench(n, iters int) float64 {
	ls := &laneState{}
	for i := 0; i < n; i++ {
		f := 1 + float64(i%7)/7
		ls.append(0.4+0.1*f, 180*f, 0.004*f, 1.0/4, f)
	}
	ls.sizeDerived()
	for i := range ls.bus {
		ls.bus[i] = 1 + float64(i%5)/4
	}
	for it := 0; it < iters; it++ {
		advanceLanes(ls, 0.65, 1.5, 2.1e9, 64)
		for i := range ls.bus {
			ls.bus[i] = 0.5*ls.bus[i] + 0.5*(1+ls.contrib[i]/1e9)
		}
	}
	var sum float64
	for _, c := range ls.contrib {
		sum += c
	}
	return sum
}
