package machine

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// resultsBitIdentical compares two Results field by field, treating NaN as
// equal to NaN (the sweep contract is bit-identity, not tolerance).
func resultsBitIdentical(a, b Result) bool {
	if !memoEquivalent(a.TimeSec, b.TimeSec) ||
		!memoEquivalent(a.WallCycles, b.WallCycles) ||
		!memoEquivalent(a.AggIPC, b.AggIPC) {
		return false
	}
	if len(a.PerThreadIPC) != len(b.PerThreadIPC) {
		return false
	}
	for i := range a.PerThreadIPC {
		if !memoEquivalent(a.PerThreadIPC[i], b.PerThreadIPC[i]) {
			return false
		}
	}
	for e := range a.Counts {
		if !memoEquivalent(a.Counts[e], b.Counts[e]) {
			return false
		}
	}
	return memoEquivalent(a.Activity.TimeSec, b.Activity.TimeSec) &&
		a.Activity.ActiveCores == b.Activity.ActiveCores &&
		a.Activity.TotalCores == b.Activity.TotalCores &&
		memoEquivalent(a.Activity.AvgCoreIPC, b.Activity.AvgCoreIPC) &&
		memoEquivalent(a.Activity.PeakIPC, b.Activity.PeakIPC) &&
		memoEquivalent(a.Activity.AvgCoreUtil, b.Activity.AvgCoreUtil) &&
		memoEquivalent(a.Activity.BusUtilization, b.Activity.BusUtilization) &&
		memoEquivalent(a.Activity.BusBytes, b.Activity.BusBytes) &&
		memoEquivalent(a.Activity.L2AccessesPerSec, b.Activity.L2AccessesPerSec) &&
		memoEquivalent(a.Activity.FreqScale, b.Activity.FreqScale)
}

// sweepMachines builds the (memoised?, noisy?) variants under test. Noisy
// machines for the sweep and the reference loop are built with separate but
// identically seeded sources, so both consume the same stream positions.
func sweepMachines(t *testing.T, topo *topology.Topology, memoise, noisy bool) (sweep, loop *Machine) {
	t.Helper()
	build := func() *Machine {
		m, err := New(topo)
		if err != nil {
			t.Fatal(err)
		}
		if memoise {
			m = m.WithMemo()
		}
		if noisy {
			m = m.WithNoise(noise.New(1234), 0.03, 0.12)
		}
		return m
	}
	return build(), build()
}

// TestRunPhaseSweepMatchesSequentialRunPhase is the sweep engine's ground
// contract: for every topology, phase shape, memo state and noise state,
// RunPhaseSweep over a placement set is bit-identical — including the
// order measurement-noise draws are consumed in — to calling RunPhase once
// per placement in slice order.
func TestRunPhaseSweepMatchesSequentialRunPhase(t *testing.T) {
	topos := []*topology.Topology{
		topology.QuadCoreXeon(),
		topology.Manycore(8, 2),
		topology.Manycore(32, 2),
		topology.Manycore(16, 4),
	}
	phases := []workload.PhaseProfile{testPhase()}
	bound := testPhase()
	bound.Name, bound.Fingerprint = "membound", "T/membound"
	bound.WorkingSetBytes = 48 * 1024 * 1024
	bound.L1MissRate = 0.4
	bound.MLP = 1.2
	phases = append(phases, bound)
	anon := testPhase()
	anon.Fingerprint = "" // bypasses the memo even when one is enabled
	phases = append(phases, anon)

	for _, topo := range topos {
		placements := topology.EnumeratePlacements(topo)
		for _, memoise := range []bool{false, true} {
			for _, noisy := range []bool{false, true} {
				sweepM, loopM := sweepMachines(t, topo, memoise, noisy)
				for pi := range phases {
					p := phases[pi]
					dst := make([]Result, len(placements))
					sweepM.RunPhaseSweep(&p, 0.12, placements, dst)
					for i, pl := range placements {
						want := loopM.RunPhase(&p, 0.12, pl)
						if !resultsBitIdentical(dst[i], want) {
							t.Fatalf("topo %s memo=%v noisy=%v phase %s placement %s: sweep diverges from sequential RunPhase",
								topo.Name, memoise, noisy, p.Name, pl)
						}
					}
				}
			}
		}
	}
}

// TestRunPhaseSweepPropertyRandomPhases fuzzes phase shapes through the
// sweep-vs-loop equivalence on the 32-core synthetic topology, where the
// per-group-load vectorisation actually collapses work.
func TestRunPhaseSweepPropertyRandomPhases(t *testing.T) {
	topo := topology.Manycore(32, 2)
	placements := topology.EnumeratePlacements(topo)
	sweepM, loopM := sweepMachines(t, topo, true, false)
	dst := make([]Result, len(placements))
	f := func(ipcRaw, memRaw, missRaw, wsRaw, parRaw, shareRaw uint32) bool {
		p := testPhase()
		p.Fingerprint = "F/fuzz" // shared fingerprint: exercises memo reuse too
		p.BaseIPC = 0.5 + float64(ipcRaw%250)/100
		p.MemRefsPerInstr = float64(memRaw%60) / 100
		p.L1MissRate = float64(missRaw%50) / 100
		p.WorkingSetBytes = float64(wsRaw%16384) * 1024
		p.ParallelFraction = 0.5 + float64(parRaw%50)/100
		p.SharingFactor = float64(shareRaw%100) / 100
		idio := float64(ipcRaw%17) / 40
		sweepM.RunPhaseSweep(&p, idio, placements, dst)
		for i, pl := range placements {
			want := loopM.RunPhase(&p, idio, pl)
			if !resultsBitIdentical(dst[i], want) {
				return false
			}
			if math.IsNaN(dst[i].TimeSec) {
				return false
			}
			_ = pl
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestShardedMemoConcurrentSweeps hammers one shared memo from concurrent
// sweeps over overlapping placement sets (run under -race in CI): every
// goroutine must observe results bit-identical to an isolated sequential
// machine, regardless of who computes and who hits.
func TestShardedMemoConcurrentSweeps(t *testing.T) {
	topo := topology.Manycore(16, 2)
	placements := topology.EnumeratePlacements(topo)
	shared, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	shared = shared.WithMemo()
	ref, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}

	phases := make([]workload.PhaseProfile, 6)
	for i := range phases {
		phases[i] = testPhase()
		phases[i].Fingerprint = "RACE/" + string(rune('a'+i))
		phases[i].WorkingSetBytes = float64(1+i) * 1024 * 1024
	}
	want := make([][]Result, len(phases))
	for pi := range phases {
		want[pi] = make([]Result, len(placements))
		ref.RunPhaseSweep(&phases[pi], 0.1, placements, want[pi])
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]Result, len(placements))
			for round := 0; round < 20; round++ {
				pi := (w + round) % len(phases)
				shared.RunPhaseSweep(&phases[pi], 0.1, placements, dst)
				for i := range placements {
					if !resultsBitIdentical(dst[i], want[pi][i]) {
						errs <- "concurrent sweep diverged from sequential reference"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	hits, misses := shared.MemoStats()
	distinct := uint64(len(phases) * len(placements))
	// Racing goroutines may each compute a not-yet-published entry, so the
	// miss count can exceed the distinct key count — but publication
	// dedupes, so it is bounded by one compute per worker per key.
	if misses < distinct || misses > distinct*workers {
		t.Errorf("misses = %d, want within [%d, %d]", misses, distinct, distinct*workers)
	}
	if hits == 0 {
		t.Error("no memo hits under concurrent sweeps")
	}
}
