// Package machine is the platform performance model: it predicts, for a
// workload phase executed under a particular thread placement, the execution
// time, per-core and aggregate IPC, the hardware event counts a PMU would
// observe, and the activity factors the power model consumes.
//
// It substitutes for the paper's physical Intel Xeon QX6600. The model is
// analytic rather than cycle-accurate: per-thread CPI is composed from the
// phase's inherent ILP, branch/TLB penalties, L2-group capacity sharing (via
// internal/cache) and front-side-bus queueing (via internal/bus), iterated
// to a fixed point because memory traffic depends on execution speed and
// vice versa. This reproduces the first-order phenomena the paper analyses:
// destructive L2 interference between tightly coupled threads, FSB
// saturation for bandwidth-bound codes, Amdahl and synchronisation limits,
// and load imbalance at odd thread counts.
package machine

import (
	"fmt"
	"math"

	"github.com/greenhpc/actor/internal/bus"
	"github.com/greenhpc/actor/internal/cache"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// Params holds the microarchitectural latencies and penalties of the
// modelled core. Defaults (see DefaultParams) approximate a 65 nm Core-2.
type Params struct {
	// L2LatencyCycles is the L1-miss/L2-hit service latency.
	L2LatencyCycles float64
	// MemLatencyCycles is the unloaded L2-miss-to-memory latency.
	MemLatencyCycles float64
	// BranchMissPenaltyCycles is the pipeline refill cost per mispredict.
	BranchMissPenaltyCycles float64
	// TLBMissPenaltyCycles is the page-walk cost per DTLB miss.
	TLBMissPenaltyCycles float64
	// PeakIssueIPC bounds per-core IPC.
	PeakIssueIPC float64
	// FixedPointIters is the number of damped iterations of the
	// CPI↔bandwidth fixed point.
	FixedPointIters int
	// ResponseSigma scales the deterministic per-(phase, placement)
	// execution-time perturbation derived from the phase Fingerprint. It
	// models application idiosyncrasies (allocation layout, conflict
	// patterns, NUMA effects) that shift each phase's configuration
	// response but are invisible to the performance counters. Part of
	// ground truth: oracles see it, predictors cannot learn it across
	// applications.
	ResponseSigma float64
}

// DefaultParams returns Core-2-class latencies: 14-cycle L2, 220-cycle
// memory, 15-cycle branch restart, 30-cycle page walk, 4-wide issue.
func DefaultParams() Params {
	return Params{
		L2LatencyCycles:         14,
		MemLatencyCycles:        220,
		BranchMissPenaltyCycles: 15,
		TLBMissPenaltyCycles:    30,
		PeakIssueIPC:            4,
		FixedPointIters:         12,
		ResponseSigma:           0.08,
	}
}

// Machine couples a topology with cache/bus models and core parameters.
type Machine struct {
	Topo *topology.Topology

	// params is unexported so every parameter change funnels through
	// SetParams: a direct write on a memoised machine used to be a
	// documented footgun (it served phase responses computed under the
	// superseded parameters). Read with Params().
	params Params

	l2  *cache.SharingModel
	fsb *bus.Model

	// coreGroup maps CoreID → index of its L2 group (-1 for cores outside
	// every group), precomputed at construction so the per-thread group
	// loads of a placement resolve in O(threads) instead of the O(cores²)
	// scans topology.GroupOf would cost on the hot path.
	coreGroup []int

	// classes snapshots the topology's core-class table (a single
	// DefaultClass entry on homogeneous machines) and coreClass maps
	// CoreID → class index, so the hot solve never touches the topology's
	// fallback logic. classSig folds the per-core class descriptors into
	// the memo seed: responses computed under one class layout can never
	// serve another.
	classes   []topology.CoreClass
	coreClass []int
	classSig  uint64

	// noiseSrc, when non-nil, perturbs RunPhase results with run-to-run
	// variance (time ±~1%, event counts per TimeSigma/CountSigma).
	noiseSrc   *noise.Source
	timeSigma  float64
	countSigma float64

	// freqScale scales the core clock relative to the topology's nominal
	// frequency (1 = nominal). DVFS extension: lowering the clock
	// lengthens compute time but leaves memory time unchanged, so
	// memory-bound phases lose little performance while dynamic power
	// falls roughly cubically. See WithFrequency.
	freqScale float64

	// memo, when non-nil, caches the deterministic part of RunPhase.
	// Shared across WithNoise/WithFrequency copies; see WithMemo.
	memo *phaseMemo

	// paramsEpoch is the machine's position in the shared memo's params
	// history — part of the memo key, advanced by SetParams — so memoised
	// responses computed under superseded Params are never served
	// (auto-calibration tunes Params at runtime).
	paramsEpoch uint64
}

// New builds a machine for the topology with default parameters and no
// measurement noise (ground truth — used for oracles and calibration).
func New(t *topology.Topology) (*Machine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	fsb, err := bus.New(t.BusBandwidth)
	if err != nil {
		return nil, err
	}
	cg := make([]int, t.NumCores)
	cc := make([]int, t.NumCores)
	for c := range cg {
		cg[c] = t.GroupOf(topology.CoreID(c))
		cc[c] = t.ClassIndexOf(topology.CoreID(c))
	}
	classes := t.Classes
	if len(classes) == 0 {
		classes = []topology.CoreClass{topology.DefaultClass()}
	}
	return &Machine{
		Topo:      t,
		params:    DefaultParams(),
		l2:        cache.NewSharingModel(float64(t.L2BytesPerGroup)),
		fsb:       fsb,
		coreGroup: cg,
		classes:   classes,
		coreClass: cc,
		classSig:  classSignature(classes, cc),
		freqScale: 1,
	}, nil
}

// classSignature hashes the class layout (per-core class index plus each
// class's multipliers) for the memo seed.
func classSignature(classes []topology.CoreClass, coreClass []int) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, c := range classes {
		mix(math.Float64bits(c.FreqMult))
		mix(math.Float64bits(c.CPIMult))
	}
	for _, ci := range coreClass {
		mix(uint64(ci))
	}
	return h
}

// WithFrequency returns a copy of the machine clocked at scale × nominal
// frequency (0 < scale ≤ 1 for the usual DVFS ladder). Memory and bus
// service times are wall-clock constants, so their cycle costs shrink as
// the clock slows — the standard DVFS trade the related work (Li &
// Martínez [5]) exploits, combined here with concurrency throttling in
// internal/dvfs.
func (m *Machine) WithFrequency(scale float64) *Machine {
	if scale <= 0 {
		panic("machine: non-positive frequency scale")
	}
	cp := *m
	cp.freqScale = scale
	return &cp
}

// FrequencyScale returns the machine's clock scale (1 = nominal).
func (m *Machine) FrequencyScale() float64 { return m.freqScale }

// Params returns the machine's core parameters. Mutate via SetParams — the
// field is unexported so memoised machines can never serve phase responses
// computed under superseded parameters.
func (m *Machine) Params() Params { return m.params }

// SetParams replaces the machine's core parameters and moves the machine
// to a fresh params epoch in the phase-memo key, invalidating every
// memoised response computed under the old parameters. Epochs are drawn
// from a counter on the shared memo, so two derived machines (WithNoise,
// WithFrequency copies share one memo) that diverge their Params can never
// collide on an epoch and serve each other's entries.
func (m *Machine) SetParams(p Params) {
	m.params = p
	if m.memo != nil {
		m.paramsEpoch = m.memo.nextEpoch()
	} else {
		m.paramsEpoch++
	}
}

// WithNoise returns a copy of the machine whose RunPhase results carry
// deterministic, seeded measurement noise: execution time with relative
// sigma timeSigma and each event count with relative sigma countSigma.
func (m *Machine) WithNoise(src *noise.Source, timeSigma, countSigma float64) *Machine {
	cp := *m
	cp.noiseSrc = src
	cp.timeSigma = timeSigma
	cp.countSigma = countSigma
	return &cp
}

// WithNoiseSource returns a copy of the machine drawing measurement noise
// from src at the machine's existing sigmas. The parallel evaluation engine
// forks one source per task from a (seed, task key) pair so that every
// task's noise stream is private and independent of execution order.
func (m *Machine) WithNoiseSource(src *noise.Source) *Machine {
	cp := *m
	cp.noiseSrc = src
	return &cp
}

// Result is the outcome of executing one phase under one placement.
type Result struct {
	// TimeSec is the wall-clock time of the phase execution.
	TimeSec float64
	// WallCycles is TimeSec expressed in core cycles.
	WallCycles float64
	// AggIPC is total instructions divided by wall cycles — the paper's
	// per-phase "observed IPC" (Fig. 2), which exceeds one core's peak
	// when threads run concurrently.
	AggIPC float64
	// PerThreadIPC is each thread's own IPC during the parallel part,
	// referenced to the machine's nominal clock (on heterogeneous
	// machines a little core's value is its own-clock IPC times its
	// FreqMult, so values across classes compare on one time base). On a
	// memoised machine this slice is the cache's canonical copy, shared by
	// every Result served for the same (phase, placement) — treat it as
	// read-only (the zero-allocation hit path depends on it).
	PerThreadIPC []float64
	// Counts are the aggregate hardware event counts for the execution.
	Counts pmu.Counts
	// Activity summarises what the power model needs.
	Activity Activity
}

// Activity captures the utilisation factors feeding the power model.
type Activity struct {
	// TimeSec is the interval length.
	TimeSec float64
	// ActiveCores is the number of cores running threads.
	ActiveCores int
	// TotalCores is the machine's core count (idle cores consume only
	// base power).
	TotalCores int
	// AvgCoreIPC is the mean per-active-core IPC (drives dynamic power).
	AvgCoreIPC float64
	// PeakIPC is the core's issue-width bound, for normalising AvgCoreIPC.
	PeakIPC float64
	// AvgCoreUtil is the fraction of the interval the active cores were
	// unstalled (1 − stall fraction).
	AvgCoreUtil float64
	// BusUtilization is FSB occupancy in [0,1].
	BusUtilization float64
	// BusBytes is the total bus traffic during the interval.
	BusBytes float64
	// L2AccessesPerSec is the aggregate L2 request rate.
	L2AccessesPerSec float64
	// FreqScale is the clock scale the interval ran at (0 is read as 1 —
	// nominal frequency).
	FreqScale float64
}

// RunPhase executes phase p of a benchmark with idiosyncrasy idio under
// placement pl and returns the modelled result. It panics on invalid
// placements (no cores); profile validity is the caller's responsibility
// (see workload.PhaseProfile.Validate).
//
// The deterministic part of the result is served from the phase memo when
// one is enabled (see WithMemo); measurement noise, when configured, is
// drawn per call and applied after, so noisy results keep their run-to-run
// variance while the expensive fixed-point solve is shared. To evaluate one
// phase across many placements, prefer RunPhaseSweep, which additionally
// hoists the placement-independent part of the solve out of the loop.
func (m *Machine) RunPhase(p *workload.PhaseProfile, idio float64, pl topology.Placement) Result {
	var res Result
	if m.memo != nil && p.Fingerprint != "" {
		res = m.memo.lookup(m, p, idio, pl)
	} else {
		res = m.computePhase(p, idio, pl)
	}
	if m.noiseSrc != nil {
		m.perturb(&res)
	}
	return res
}

// groupOf returns the precomputed L2-group index of core c, or -1 for cores
// the topology does not place in any group.
func (m *Machine) groupOf(c topology.CoreID) int {
	if c < 0 || int(c) >= len(m.coreGroup) {
		return -1
	}
	return m.coreGroup[c]
}

// threadCPI composes one thread's cycles-per-instruction — in the cycles of
// the core it runs on — from core, branch, TLB, L2 and memory terms at the
// current bus latency inflation. groupLoad is the number of placement
// threads sharing this thread's L2: co-resident threads contend for the
// L2's ports, inflating its access latency. cls is the core's class:
// CPIMult scales the core-inherent and issue-bound terms, and FreqMult
// scales how many of the core's (slower) cycles a wall-clock-constant
// memory access costs — exactly the DVFS composition, per class. For
// DefaultClass both multipliers are 1 and every operation below is
// bit-identical to the homogeneous model.
func (m *Machine) threadCPI(p *workload.PhaseProfile, mpiL1, missL2, busFactor float64, groupLoad int, cls *topology.CoreClass) float64 {
	coreCPI := cls.CPIMult / p.BaseIPC
	branch := p.BranchRate * p.BranchMissRate * m.params.BranchMissPenaltyCycles
	tlb := p.MemRefsPerInstr * p.TLBMissRate * m.params.TLBMissPenaltyCycles

	mlpL2 := math.Max(1, 0.7*p.MLP) // L2 hits overlap slightly less than misses
	l2Lat := m.params.L2LatencyCycles
	if groupLoad > 1 {
		l2Lat *= 1 + 0.35*float64(groupLoad-1)
	}
	l2Term := mpiL1 * (1 - missL2) * l2Lat / mlpL2

	prefetchHide := 1 - 0.6*p.PrefetchFriendly
	// Memory service time is a wall-clock constant: its cost in core
	// cycles scales with the clock (DVFS and, per class, FreqMult).
	memLat := m.params.MemLatencyCycles * m.clockScale() * cls.FreqMult * busFactor * prefetchHide
	memTerm := mpiL1 * missL2 * memLat / p.MLP

	cpi := coreCPI + branch + tlb + l2Term + memTerm
	minCPI := cls.CPIMult / m.params.PeakIssueIPC
	if cpi < minCPI {
		cpi = minCPI
	}
	return cpi
}

// classOf returns the class descriptor of core c (DefaultClass for
// out-of-range cores, which RunPhase rejects elsewhere).
func (m *Machine) classOf(c topology.CoreID) *topology.CoreClass {
	return &m.classes[m.classIdxOf(c)]
}

// classIdxOf returns the class-table index of core c.
func (m *Machine) classIdxOf(c topology.CoreID) int {
	if c < 0 || int(c) >= len(m.coreClass) {
		return 0
	}
	return m.coreClass[c]
}

// stallFraction estimates the fraction of cycles an active core spends
// stalled on memory — feeds both ResourceStalls and the power model. cls is
// the class of the representative core (the placement's first).
func (m *Machine) stallFraction(p *workload.PhaseProfile, mpiL1, missL2, busFactor float64, cls *topology.CoreClass) float64 {
	cpi := m.threadCPI(p, mpiL1, missL2, busFactor, 1, cls)
	memCPI := cpi - cls.CPIMult/p.BaseIPC
	if memCPI < 0 {
		memCPI = 0
	}
	f := memCPI / cpi
	if f > 0.95 {
		f = 0.95
	}
	return f
}

// eventCounts builds the aggregate ground-truth PMU counts for the phase.
// cls is the class of the placement's first core: on heterogeneous machines
// the synthesised stall cycles carry that core's frequency/CPI multipliers,
// the same convention the per-phase Activity uses.
func (m *Machine) eventCounts(p *workload.PhaseProfile, missL2 []float64, wallCycles, busUtil float64, cls *topology.CoreClass) pmu.Counts {
	instr := p.Instructions
	memRefs := instr * p.MemRefsPerInstr
	l1Miss := memRefs * p.L1MissRate
	// Average L2 miss rate across threads weighted evenly (threads do
	// near-equal work).
	var avgMiss float64
	for _, mr := range missL2 {
		avgMiss += mr
	}
	avgMiss /= float64(len(missL2))
	l2Miss := l1Miss * avgMiss
	storeFrac := 1 - p.LoadFraction
	busTrans := l2Miss * (1 + p.StoreBandwidthBoost*storeFrac)

	stall := m.stallFraction(p, p.MemRefsPerInstr*p.L1MissRate, avgMiss, 1, cls)

	return pmu.Counts{
		pmu.Instructions:   instr,
		pmu.Cycles:         wallCycles,
		pmu.L1DReferences:  memRefs,
		pmu.L1DMisses:      l1Miss,
		pmu.L2References:   l1Miss,
		pmu.L2Misses:       l2Miss,
		pmu.BusTransMem:    busTrans,
		pmu.BusDrdyClocks:  busUtil * wallCycles,
		pmu.LoadsRetired:   memRefs * p.LoadFraction,
		pmu.StoresRetired:  memRefs * storeFrac,
		pmu.BranchesRet:    instr * p.BranchRate,
		pmu.BranchMisses:   instr * p.BranchRate * p.BranchMissRate,
		pmu.DTLBMisses:     memRefs * p.TLBMissRate,
		pmu.ResourceStalls: stall * wallCycles,
	}
}

// perturb applies run-to-run measurement noise to a result in place.
// Events are perturbed in catalogue order so the draws a result consumes
// from the noise stream are deterministic (the old map-backed Counts
// iterated in random order, silently breaking seed reproducibility).
// PerThreadIPC is deliberately untouched: on memoised machines it aliases
// the cache's canonical slice.
func (m *Machine) perturb(r *Result) {
	tf := m.noiseSrc.Multiplicative(m.timeSigma)
	r.TimeSec *= tf
	r.WallCycles *= tf
	r.AggIPC /= tf
	r.Activity.TimeSec = r.TimeSec
	for e := pmu.Event(0); int(e) < pmu.NumEvents; e++ {
		if e == pmu.Instructions {
			continue // retirement counts are exact
		}
		if e == pmu.Cycles {
			r.Counts[e] = r.WallCycles
			continue
		}
		r.Counts[e] *= m.noiseSrc.Multiplicative(m.countSigma)
	}
}

// MigrationPenalty models the cache-warmth cost of switching a phase from
// placement `from` to `to`: threads landing on cores whose L2 group gained
// occupancy must refill their working sets from memory. It returns the
// extra execution time and the extra bus traffic of the refill, charged to
// the first execution after a switch. This is the effect behind the paper's
// observation that throttling saves no power on average: off-chip refill
// traffic offsets idle-core savings.
func (m *Machine) MigrationPenalty(p *workload.PhaseProfile, from, to topology.Placement) (extraSec, extraBusBytes float64) {
	if placementEqual(from, to) {
		return 0, 0
	}
	fromOcc := make(map[int]int)
	for _, c := range from.Cores {
		fromOcc[m.Topo.GroupOf(c)]++
	}
	var refillBytes float64
	for _, c := range to.Cores {
		g := m.Topo.GroupOf(c)
		if fromOcc[g] > 0 {
			fromOcc[g]--
			continue // a warm thread context existed in this group
		}
		ws := math.Min(p.WorkingSetBytes, float64(m.Topo.L2BytesPerGroup))
		// Refill plus displaced-line writebacks and coherence traffic.
		refillBytes += 1.8 * ws
	}
	if refillBytes == 0 {
		return 0, 0
	}
	lines := refillBytes / 64
	cycles := lines * m.params.MemLatencyCycles / math.Max(p.MLP, 1)
	return cycles / m.Topo.FrequencyHz, refillBytes
}

// clockScale returns the effective frequency scale, treating the zero
// value (machines built before WithFrequency existed, or zero structs) as
// nominal.
func (m *Machine) clockScale() float64 {
	if m.freqScale <= 0 {
		return 1
	}
	return m.freqScale
}

// responseFactor derives the deterministic per-(phase, placement) execution
// perturbation from the phase fingerprint: a log-normal-ish factor with
// relative sigma Params.ResponseSigma, identical on every run (it is part
// of the machine's ground truth, not measurement noise). Single-thread
// executions are unperturbed: the idiosyncrasies modelled here are
// interactions with the co-location of threads.
func (m *Machine) responseFactor(p *workload.PhaseProfile, pl topology.Placement) float64 {
	if m.params.ResponseSigma <= 0 || p.Fingerprint == "" || pl.Threads() <= 1 {
		return 1
	}
	h := uint64(1469598103934665603)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(p.Fingerprint)
	mix("|")
	mix(pl.Name)
	// Map the hash to an approximately standard normal value by summing
	// uniform draws (Irwin–Hall with n=4, variance 1/3 each → scale).
	var z float64
	for i := 0; i < 4; i++ {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		u := float64(h%1_000_003) / 1_000_003.0
		z += u - 0.5
	}
	z *= math.Sqrt(3) // var(sum of 4 U(-0.5,0.5)) = 1/3 → scale to 1
	return math.Exp(m.params.ResponseSigma * z)
}

func placementEqual(a, b topology.Placement) bool {
	if len(a.Cores) != len(b.Cores) {
		return false
	}
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			return false
		}
	}
	return true
}

// imbalanceFactor returns the ratio heaviest-thread-work / even-share for a
// loop of `chunks` schedulable chunks on n threads (≥ 1; equals 1 for
// perfectly divisible work or chunks ≤ 0).
func imbalanceFactor(chunks, n int) float64 {
	if chunks <= 0 || n <= 1 {
		return 1
	}
	if chunks < n {
		// Fewer chunks than threads: some threads idle entirely.
		return float64(n) / float64(chunks)
	}
	heavy := (chunks + n - 1) / n
	return float64(heavy) * float64(n) / float64(chunks)
}

// String identifies the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("machine{%s}", m.Topo.Name)
}
