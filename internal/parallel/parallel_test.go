package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 1000} {
		hits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForEachSequentialWhenGOMAXPROCS1(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	order := make([]int, 0, 5)
	ForEach(5, func(i int) { order = append(order, i) }) // no races: w == 1
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential fallback out of order: %v", order)
		}
	}
}

func TestForEachNestedRunsEveryLeafOnce(t *testing.T) {
	// Three levels deep (benches × targets × folds shape): every leaf must
	// run exactly once and the call must terminate even when the shared
	// extra-worker budget is exhausted at the outer levels.
	const a, b, c = 5, 4, 6
	hits := make([]int32, a*b*c)
	ForEach(a, func(i int) {
		ForEach(b, func(j int) {
			ForEach(c, func(k int) {
				atomic.AddInt32(&hits[(i*b+j)*c+k], 1)
			})
		})
	})
	for idx, h := range hits {
		if h != 1 {
			t.Fatalf("leaf %d ran %d times", idx, h)
		}
	}
	if got := extraWorkers.Load(); got != 0 {
		t.Fatalf("extra-worker budget leaked: %d still registered", got)
	}
}

func TestMapOrdersResultsAndErrors(t *testing.T) {
	errBoom := errors.New("boom")
	out, err := Map(10, func(i int) (int, error) {
		if i == 7 || i == 3 {
			return 0, errBoom
		}
		return i * i, nil
	})
	if err != errBoom {
		t.Fatalf("err = %v", err)
	}
	if out[2] != 4 || out[9] != 81 {
		t.Fatalf("results misplaced: %v", out)
	}
}

func TestFirstErrorPicksLowestIndex(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	if got := FirstError([]error{nil, e1, e2}); got != e1 {
		t.Fatalf("FirstError = %v, want %v", got, e1)
	}
	if got := FirstError([]error{nil, nil}); got != nil {
		t.Fatalf("FirstError = %v, want nil", got)
	}
}

func TestSeedForStableAndDistinct(t *testing.T) {
	a := SeedFor(42, "bench/BT/phase0")
	if b := SeedFor(42, "bench/BT/phase0"); b != a {
		t.Fatal("SeedFor not stable")
	}
	seen := map[int64]string{a: "bench/BT/phase0"}
	for _, key := range []string{"bench/BT/phase1", "bench/CG/phase0", "x", ""} {
		s := SeedFor(42, key)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %q and %q", prev, key)
		}
		seen[s] = key
	}
	if SeedFor(1, "k") == SeedFor(2, "k") {
		t.Fatal("base seed ignored")
	}
}

func TestRandReproducibleStreams(t *testing.T) {
	a, b := Rand(42, "dist-shard-3"), Rand(42, "dist-shard-3")
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (base, key) must yield the same stream")
		}
	}
	if Rand(42, "dist-shard-3").Int63() == Rand(42, "dist-shard-4").Int63() &&
		Rand(42, "dist-shard-3").Float64() == Rand(42, "dist-shard-4").Float64() {
		t.Fatal("different keys yielded an identical stream prefix")
	}
}
