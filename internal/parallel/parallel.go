// Package parallel is the bounded, deterministic fan-out engine behind the
// evaluation pipeline: leave-one-out training, the figure drivers and the
// data collector all dispatch their independent (benchmark × configuration ×
// fold) tasks through ForEach/Map.
//
// Determinism contract: callers write results only to index-addressed slots
// and derive any per-task randomness from SeedFor(baseSeed, taskKey) rather
// than a shared stream, so output is bit-identical regardless of GOMAXPROCS
// or scheduling order. ForEach itself guarantees nothing about execution
// order — only that every index runs exactly once.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the fan-out width used by ForEach: GOMAXPROCS at call
// time, so tests can pin the engine to sequential execution with
// runtime.GOMAXPROCS(1).
func Workers() int { return runtime.GOMAXPROCS(0) }

// extraWorkers counts helper goroutines currently running across every
// ForEach in the process. Nested fan-outs (benchmarks × targets × folds)
// would otherwise multiply their per-level worker counts; the shared
// budget keeps total concurrency near Workers() instead of the product.
var extraWorkers atomic.Int64

// ForEach runs fn(i) for every i in [0, n), returning when all calls
// complete. The calling goroutine always executes tasks itself — so nested
// ForEach calls can never deadlock and always make progress — and helper
// goroutines are added only while the process-wide budget (Workers()−1
// extras) has room. Tasks are claimed from a shared atomic counter.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	budget := int64(Workers() - 1)
	for k := 1; k < w; k++ {
		if extraWorkers.Add(1) > budget {
			extraWorkers.Add(-1)
			break // budget exhausted: the caller's own loop picks up the rest
		}
		wg.Add(1)
		go func() {
			defer func() {
				extraWorkers.Add(-1)
				wg.Done()
			}()
			run()
		}()
	}
	run()
	wg.Wait()
}

// Map runs fn over [0, n) with ForEach and collects the results in index
// order. If any call fails, the first error (by index, not completion
// order) is returned alongside the partial results.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	return out, FirstError(errs)
}

// FirstError returns the lowest-index non-nil error, mirroring the error a
// sequential loop would have surfaced first.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rand returns a private RNG seeded with SeedFor(base, key): the same
// (base, key) pair always yields the same stream, so per-task randomness
// (noise, retry jitter, fault schedules) is reproducible and independent of
// execution order. Each call returns a fresh generator; they are not safe
// for concurrent use by multiple goroutines.
func Rand(base int64, key string) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(base, key)))
}

// SeedFor derives a per-task RNG seed from a base seed and a stable task
// key (FNV-1a over the key, mixed with the base). The same (base, key) pair
// always yields the same seed, decoupling each task's random stream from
// execution order.
func SeedFor(base int64, key string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	// Final avalanche so near-identical keys give unrelated seeds.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int64(h) ^ base
}
