// Package metrics provides the statistical helpers the evaluation harnesses
// share: prediction-error summaries (CDFs, medians, fraction under a
// threshold — Fig. 6), rank-selection accuracy (Fig. 7), and the normalised
// geometric means used in Fig. 3 and Fig. 8.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// RelativeError returns |observed − predicted| / |observed|, the error
// definition of Fig. 6. A zero observation yields +Inf unless the
// prediction is also zero.
func RelativeError(observed, predicted float64) float64 {
	if observed == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs((observed - predicted) / observed)
}

// Median returns the median of xs (mean of the middle pair for even
// lengths). It errors on an empty slice.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("metrics: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Percentile returns the p-th percentile (0–100) by linear interpolation.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("metrics: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, errors.New("metrics: percentile out of [0,100]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// FractionBelow returns the share of values strictly below the threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	// Value is the error level (x axis of Fig. 6).
	Value float64
	// Fraction is the share of observations ≤ Value.
	Fraction float64
}

// CDF evaluates the empirical CDF of xs at each of the given levels.
func CDF(xs []float64, levels []float64) []CDFPoint {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(levels))
	for i, lv := range levels {
		idx := sort.SearchFloat64s(s, math.Nextafter(lv, math.Inf(1)))
		frac := 0.0
		if len(s) > 0 {
			frac = float64(idx) / float64(len(s))
		}
		out[i] = CDFPoint{Value: lv, Fraction: frac}
	}
	return out
}

// RankOf returns the 1-based position of needle within ranking, or 0 when
// absent. Used to score a selected configuration against the oracle
// fastest-to-slowest order (Fig. 7).
func RankOf(ranking []string, needle string) int {
	for i, r := range ranking {
		if r == needle {
			return i + 1
		}
	}
	return 0
}

// RankHistogram tallies how often each rank (1..n) was selected, given
// pairs of (oracle ranking, selected name). The result has one bucket per
// rank position; selections absent from their ranking are counted in
// Missing.
type RankHistogram struct {
	// Counts[i] is the number of selections with rank i+1.
	Counts []int
	// Missing counts selections not present in their ranking.
	Missing int
	// Total is the number of selections scored.
	Total int
}

// NewRankHistogram builds a histogram for rankings of length n.
func NewRankHistogram(n int) *RankHistogram {
	return &RankHistogram{Counts: make([]int, n)}
}

// Add scores one selection.
func (h *RankHistogram) Add(ranking []string, selected string) {
	h.Total++
	r := RankOf(ranking, selected)
	if r == 0 || r > len(h.Counts) {
		h.Missing++
		return
	}
	h.Counts[r-1]++
}

// Fraction returns the share of selections at the given 1-based rank.
func (h *RankHistogram) Fraction(rank int) float64 {
	if h.Total == 0 || rank < 1 || rank > len(h.Counts) {
		return 0
	}
	return float64(h.Counts[rank-1]) / float64(h.Total)
}

// GeoMean returns the geometric mean of positive values; it errors on empty
// input or non-positive entries.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("metrics: geomean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("metrics: geomean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean; zero for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
