package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelativeError(t *testing.T) {
	cases := []struct {
		obs, pred, want float64
	}{
		{10, 9, 0.1}, {10, 11, 0.1}, {-10, -9, 0.1}, {5, 5, 0}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := RelativeError(c.obs, c.pred); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelativeError(%g, %g) = %g, want %g", c.obs, c.pred, got, c.want)
		}
	}
	if !math.IsInf(RelativeError(0, 1), 1) {
		t.Error("zero observation with non-zero prediction should be +Inf")
	}
}

func TestMedian(t *testing.T) {
	if _, err := Median(nil); err == nil {
		t.Error("empty median accepted")
	}
	if m, _ := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g", m)
	}
	if m, _ := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %g", m)
	}
	// Median must not mutate the input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{0, 10, 20, 30, 40}
	cases := []struct{ p, want float64 }{{0, 0}, {100, 40}, {50, 20}, {25, 10}, {10, 4}}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g (%v), want %g", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile accepted")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.01, 0.04, 0.05, 0.2}
	if got := FractionBelow(xs, 0.05); got != 0.5 {
		t.Errorf("FractionBelow = %g, want 0.5 (strict)", got)
	}
	if got := FractionBelow(nil, 1); got != 0 {
		t.Errorf("empty FractionBelow = %g", got)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3}
	pts := CDF(xs, []float64{0, 0.1, 0.25, 1})
	want := []float64{0, 1.0 / 3, 2.0 / 3, 1}
	for i, pt := range pts {
		if math.Abs(pt.Fraction-want[i]) > 1e-12 {
			t.Errorf("CDF at %g = %g, want %g", pt.Value, pt.Fraction, want[i])
		}
	}
	// Monotone non-decreasing for arbitrary input.
	f := func(raw []float64) bool {
		levels := []float64{0, 0.25, 0.5, 0.75, 1}
		pts := CDF(raw, levels)
		prev := -1.0
		for _, p := range pts {
			if p.Fraction < prev {
				return false
			}
			prev = p.Fraction
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankHistogram(t *testing.T) {
	h := NewRankHistogram(5)
	ranking := []string{"2b", "4", "3", "2a", "1"}
	h.Add(ranking, "2b") // rank 1
	h.Add(ranking, "2b") // rank 1
	h.Add(ranking, "4")  // rank 2
	h.Add(ranking, "zz") // missing
	if h.Total != 4 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Fraction(1) != 0.5 {
		t.Errorf("Fraction(1) = %g", h.Fraction(1))
	}
	if h.Fraction(2) != 0.25 {
		t.Errorf("Fraction(2) = %g", h.Fraction(2))
	}
	if h.Missing != 1 {
		t.Errorf("Missing = %d", h.Missing)
	}
	if h.Fraction(0) != 0 || h.Fraction(6) != 0 {
		t.Error("out-of-range rank fractions should be 0")
	}
}

func TestRankOf(t *testing.T) {
	r := []string{"a", "b", "c"}
	if RankOf(r, "b") != 2 {
		t.Error("RankOf(b) != 2")
	}
	if RankOf(r, "z") != 0 {
		t.Error("RankOf(missing) != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty geomean accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative geomean accepted")
	}
	got, err := GeoMean([]float64{2, 8})
	if err != nil || math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %g (%v)", got, err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
}
