package simd

import (
	"strings"
	"testing"
)

func TestEnvOff(t *testing.T) {
	for _, v := range []string{"off", "OFF", " Off ", "0", "false", "no", "scalar", "SCALAR"} {
		if !envOff(v) {
			t.Errorf("envOff(%q) = false, want true", v)
		}
	}
	for _, v := range []string{"", "on", "1", "avx2", "yes"} {
		if envOff(v) {
			t.Errorf("envOff(%q) = true, want false", v)
		}
	}
}

func TestEnabledRequiresHardware(t *testing.T) {
	// Enabled may only be true when assembly is built and the machine
	// reports both AVX2 and OS-managed YMM state.
	if Enabled() {
		if !AsmBuilt() {
			t.Fatal("Enabled() with no assembly built")
		}
		f := Detect()
		if !f.AVX2 || !f.OSYMM {
			t.Fatalf("Enabled() with features %v", f)
		}
	}
}

func TestDetectConsistency(t *testing.T) {
	f := Detect()
	// AVX2 is an extension of AVX: real hardware never reports AVX2
	// without AVX. (Zero-feature fallback builds pass trivially.)
	if f.AVX2 && !f.AVX {
		t.Fatalf("implausible feature set: %v", f)
	}
	if Detect() != f {
		t.Fatal("Detect not stable across calls")
	}
}

func TestSummaryShape(t *testing.T) {
	s := Summary()
	if !strings.Contains(s, "goamd64=") || !strings.Contains(s, "features=") {
		t.Fatalf("Summary missing fields: %q", s)
	}
	if !strings.HasPrefix(s, "avx2 ") && !strings.HasPrefix(s, "scalar ") {
		t.Fatalf("Summary mode missing: %q", s)
	}
}
