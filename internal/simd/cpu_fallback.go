//go:build !amd64 || actor_noasm

package simd

const asmBuilt = false

// detect reports no vector features: either the target has no assembly
// kernels, or the actor_noasm tag pinned the build to the scalar
// reference.
func detect() Features { return Features{} }
