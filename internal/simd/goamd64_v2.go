//go:build amd64.v2 && !amd64.v3

package simd

const goamd64Level = "v2"
