// Package simd centralises runtime CPU-feature detection and the policy
// for enabling the repository's vector kernels (internal/ann GEMM,
// internal/machine lane solve).
//
// Three independent switches gate a vector kernel, all visible here:
//
//   - the build: assembly exists only for GOARCH=amd64 and is excluded by
//     the `actor_noasm` build tag, which forces the pure-Go reference on
//     any platform;
//   - the machine: AVX2 must be reported by CPUID and the OS must save
//     YMM state (OSXSAVE + XCR0.SSE/AVX), checked once at startup;
//   - the run: setting ACTOR_SIMD=off (or 0/false/scalar) selects the
//     scalar reference at process start without rebuilding.
//
// Every vector kernel in this repository is written lane-wise — it
// vectorizes across independent outputs and never reassociates a
// reduction — so switching implementations never changes a single output
// bit. The scalar reference is always compiled and is the semantics;
// property tests in the kernel packages enforce the equivalence.
package simd

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Features describes the vector-relevant CPU capabilities of the running
// machine. On non-amd64 builds (or with the actor_noasm tag) it is zero.
type Features struct {
	AVX     bool // CPUID.1:ECX.AVX
	AVX2    bool // CPUID.7.0:EBX.AVX2
	FMA     bool // CPUID.1:ECX.FMA (detected, deliberately unused: FMA contracts rounding)
	AVX512F bool // CPUID.7.0:EBX.AVX512F
	OSYMM   bool // OSXSAVE set and XCR0 saves XMM+YMM state
}

var detectOnce = sync.OnceValue(detect)

// Detect returns the CPU features, probing once per process.
func Detect() Features { return detectOnce() }

// AsmBuilt reports whether vector assembly is compiled into this binary
// (GOARCH=amd64 without the actor_noasm tag).
func AsmBuilt() bool { return asmBuilt }

// envOff reports whether value (the ACTOR_SIMD environment variable)
// requests the scalar reference path.
func envOff(value string) bool {
	switch strings.ToLower(strings.TrimSpace(value)) {
	case "off", "0", "false", "no", "scalar":
		return true
	}
	return false
}

var enabledOnce = sync.OnceValue(func() bool {
	if !asmBuilt || envOff(os.Getenv("ACTOR_SIMD")) {
		return false
	}
	f := Detect()
	return f.AVX2 && f.OSYMM
})

// Enabled reports whether the AVX2 kernels should be bound: assembly is
// built, the CPU and OS support it, and ACTOR_SIMD does not opt out. The
// decision is made once at first use and never changes during the
// process.
func Enabled() bool { return enabledOnce() }

// GoAMD64 returns the GOAMD64 microarchitecture level the binary was
// compiled for ("v1".."v4"), or "" on non-amd64 builds.
func GoAMD64() string { return goamd64Level }

// FeatureString renders the detected features compactly ("avx,avx2,fma"),
// or "none" when nothing relevant was detected.
func (f Features) String() string {
	var parts []string
	if f.AVX {
		parts = append(parts, "avx")
	}
	if f.AVX2 {
		parts = append(parts, "avx2")
	}
	if f.FMA {
		parts = append(parts, "fma")
	}
	if f.AVX512F {
		parts = append(parts, "avx512f")
	}
	if f.OSYMM {
		parts = append(parts, "osymm")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Summary is a one-line description of the dispatch decision, suitable
// for benchmark metadata: e.g. "avx2 (goamd64=v1, features=avx,avx2,fma)".
func Summary() string {
	mode := "scalar"
	if Enabled() {
		mode = "avx2"
	}
	level := goamd64Level
	if level == "" {
		level = "n/a"
	}
	return fmt.Sprintf("%s (goamd64=%s, features=%s)", mode, level, Detect())
}
