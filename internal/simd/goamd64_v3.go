//go:build amd64.v3 && !amd64.v4

package simd

const goamd64Level = "v3"
