//go:build amd64 && !actor_noasm

package simd

const asmBuilt = true

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

func detect() Features {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return Features{}
	}
	var f Features
	_, _, ecx1, _ := cpuid(1, 0)
	f.AVX = ecx1&(1<<28) != 0
	f.FMA = ecx1&(1<<12) != 0
	osxsave := ecx1&(1<<27) != 0
	if osxsave {
		xlo, _ := xgetbv0()
		// XCR0 bit 1 = SSE (XMM) state, bit 2 = AVX (YMM) state: both must
		// be OS-managed for AVX registers to survive context switches.
		f.OSYMM = xlo&0x6 == 0x6
	}
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		f.AVX2 = ebx7&(1<<5) != 0
		f.AVX512F = ebx7&(1<<16) != 0
	}
	return f
}
