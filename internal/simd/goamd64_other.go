//go:build !amd64

package simd

const goamd64Level = ""
