//go:build amd64 && !amd64.v2

package simd

const goamd64Level = "v1"
