package npb

import (
	"math"
	"testing"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
)

func TestSuiteValidates(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteComposition(t *testing.T) {
	names := Names()
	want := []string{"BT", "CG", "FT", "IS", "LU", "LU-HP", "MG", "SP"}
	if len(names) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("benchmark %d = %q, want %q", i, names[i], n)
		}
	}
	if TotalPhases() != 59 {
		t.Errorf("suite has %d phases, want the paper's 59", TotalPhases())
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("SP")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Phases) != 12 {
		t.Errorf("SP has %d phases, want 12 (Fig. 2)", len(b.Phases))
	}
	if _, err := ByName("XX"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFingerprintsUniqueAndSet(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range All() {
		for i := range b.Phases {
			fp := b.Phases[i].Fingerprint
			if fp == "" {
				t.Errorf("%s/%s has no fingerprint", b.Name, b.Phases[i].Name)
			}
			if seen[fp] {
				t.Errorf("duplicate fingerprint %q", fp)
			}
			seen[fp] = true
		}
	}
}

func TestShortIterationBenchmarks(t *testing.T) {
	// The paper's reduced-event-set codes must actually have few
	// iterations so the 20% sampling budget bites.
	for _, name := range []string{"FT", "IS", "MG"} {
		b, _ := ByName(name)
		if b.Iterations > 10 {
			t.Errorf("%s has %d iterations; expected ≤ 10 (short-iteration class)", name, b.Iterations)
		}
	}
	for _, name := range []string{"BT", "LU", "SP"} {
		b, _ := ByName(name)
		if b.Iterations < 100 {
			t.Errorf("%s has %d iterations; expected ≥ 100", name, b.Iterations)
		}
	}
}

// suiteTimes runs the whole suite on the pristine machine and returns
// per-benchmark per-config times, powers and energies.
func suiteTimes(t *testing.T) map[string]map[string][3]float64 {
	t.Helper()
	m, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		t.Fatal(err)
	}
	pm := power.Default()
	out := make(map[string]map[string][3]float64)
	for _, b := range All() {
		row := make(map[string][3]float64)
		for _, cfg := range topology.PaperConfigs() {
			var acc power.Accumulator
			for pi := range b.Phases {
				res := m.RunPhase(&b.Phases[pi], b.Idiosyncrasy, cfg)
				acc.Add(res.TimeSec*float64(b.Iterations), pm.Power(res.Activity))
			}
			row[cfg.Name] = [3]float64{acc.TimeSec, acc.AvgPower(), acc.EnergyJ}
		}
		out[b.Name] = row
	}
	return out
}

// The calibration tests pin the model to the quantitative facts the paper
// states in §III. Bands are deliberately loose — the goal is preserving the
// paper's qualitative structure (who wins, by roughly what factor), not
// bit-exact numbers.
func TestCalibrationScalability(t *testing.T) {
	times := suiteTimes(t)
	speedup := func(b, cfg string) float64 { return times[b]["1"][0] / times[b][cfg][0] }

	within := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.3f, paper %.3f (tolerance %.2f)", name, got, want, tol)
		}
	}

	within("BT speedup(4)", speedup("BT", "4"), 2.69, 0.45)
	within("scalable class avg speedup(4)",
		(speedup("BT", "4")+speedup("FT", "4")+speedup("LU-HP", "4"))/3, 2.37, 0.55)
	within("CG speedup(2b)", speedup("CG", "2b"), 1.95, 0.30)
	within("CG speedup(4)", speedup("CG", "4"), 1.95, 0.40)
	within("MG speedup(2b)", speedup("MG", "2b"), 1.29, 0.25)
	within("MG speedup(4)", speedup("MG", "4"), 1.11, 0.25)
	within("IS speedup(2b)", speedup("IS", "2b"), 1.228, 0.25)
	within("IS speedup(4)", speedup("IS", "4"), 0.60, 0.20)
	within("IS T2a/T2b", times["IS"]["2a"][0]/times["IS"]["2b"][0], 2.04, 0.55)
	within("IS T4/T2b", times["IS"]["4"][0]/times["IS"]["2b"][0], 2.04, 0.55)

	// Orderings that define the paper's three classes.
	if speedup("BT", "4") < speedup("BT", "2b") {
		t.Error("BT must keep scaling past two cores")
	}
	for _, b := range []string{"MG", "IS"} {
		if times[b]["2b"][0] >= times[b]["4"][0] {
			t.Errorf("%s must be fastest on 2b, not 4", b)
		}
		if times[b]["2b"][0] >= times[b]["2a"][0] {
			t.Errorf("%s loosely coupled must beat tightly coupled", b)
		}
	}
}

func TestCalibrationPowerEnergy(t *testing.T) {
	times := suiteTimes(t)
	var sumRatio float64
	for _, b := range Names() {
		r := times[b]["4"][1] / times[b]["1"][1]
		if r < 1 {
			t.Errorf("%s: power at 4 cores (%.1f W) below 1 core (%.1f W)", b, times[b]["4"][1], times[b]["1"][1])
		}
		sumRatio += r
	}
	avg := sumRatio / float64(len(Names()))
	if math.Abs(avg-1.142) > 0.06 {
		t.Errorf("suite avg power ratio 4-vs-1 = %.3f, paper 1.142", avg)
	}
	// The best-scaling class shows the largest power growth; the
	// bandwidth-bound codes the smallest.
	btRatio := times["BT"]["4"][1] / times["BT"]["1"][1]
	isRatio := times["IS"]["4"][1] / times["IS"]["1"][1]
	if btRatio <= isRatio {
		t.Errorf("BT power growth (%.3f) should exceed IS (%.3f)", btRatio, isRatio)
	}
	// BT's energy drops sharply at 4 cores (paper: factor 2.04).
	btE := times["BT"]["1"][2] / times["BT"]["4"][2]
	if btE < 1.5 || btE > 3 {
		t.Errorf("BT energy ratio 1-vs-4 = %.2f, paper 2.04", btE)
	}
	// IS wastes energy at 4 cores.
	if times["IS"]["4"][2] <= times["IS"]["2b"][2] {
		t.Error("IS energy at 4 cores should exceed 2b")
	}
}

func TestSPPhaseHeterogeneity(t *testing.T) {
	m, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := ByName("SP")
	loBest, hiBest := math.Inf(1), 0.0
	bestConfigs := map[string]bool{}
	for pi := range sp.Phases {
		best, bestCfg := 0.0, ""
		for _, cfg := range topology.PaperConfigs() {
			ipc := m.RunPhase(&sp.Phases[pi], sp.Idiosyncrasy, cfg).AggIPC
			if ipc > best {
				best, bestCfg = ipc, cfg.Name
			}
		}
		loBest = math.Min(loBest, best)
		hiBest = math.Max(hiBest, best)
		bestConfigs[bestCfg] = true
	}
	// Paper: per-phase max IPC spans 0.32 .. 4.64.
	if loBest > 0.6 {
		t.Errorf("least-scalable SP phase best IPC = %.2f, want ≤ 0.6 (paper 0.32)", loBest)
	}
	if hiBest < 3.5 || hiBest > 6 {
		t.Errorf("most-scalable SP phase best IPC = %.2f, want ≈ 4.6", hiBest)
	}
	// Phase best configurations must be diverse (the motivation for
	// phase-granularity adaptation).
	if len(bestConfigs) < 2 {
		t.Errorf("all SP phases prefer one configuration %v; heterogeneity lost", bestConfigs)
	}
}

func TestBenchmarkIndependence(t *testing.T) {
	// Mutating one constructed benchmark must not affect a fresh one.
	a, _ := ByName("BT")
	a.Phases[0].Instructions = 1
	b, _ := ByName("BT")
	if b.Phases[0].Instructions == 1 {
		t.Error("benchmark constructors share state")
	}
}
