// Package npb provides workload models of the eight NAS Parallel Benchmarks
// (OpenMP, class A) the paper evaluates: BT, CG, FT, IS, LU, LU-HP, MG and
// SP. Each benchmark is a set of phase profiles (parallel regions) executed
// for the class-A iteration count.
//
// The profiles are synthetic substitutes for the real codes, calibrated
// against every quantitative fact the paper states about the suite on the
// quad-core Xeon:
//
//   - BT/FT/LU-HP scale well (class speedup ≈ 2.37; BT 2.69 at 4 cores);
//   - CG/LU/SP flatten after two loosely coupled cores (CG 1.95 at both 2b
//     and 4; the class gains only ≈ 7% from 4 cores vs 2);
//   - MG and IS degrade: MG peaks at 2b (1.29) yet only 1.11 at 4; IS loses
//     40% at 4 threads vs 1 and runs ~2× faster on loosely than tightly
//     coupled pairs (shared-L2 destruction + FSB saturation);
//   - per-phase scalability is wildly heterogeneous (SP's phase IPC maxima
//     span 0.32–4.64), which is what phase-granularity adaptation exploits.
//
// The benchmark set totals 59 phases, matching the paper's Fig. 7 phase
// population. See EXPERIMENTS.md for the measured-vs-paper calibration
// table produced by cmd/calibrate.
package npb

import (
	"fmt"
	"sort"

	"github.com/greenhpc/actor/internal/workload"
)

// KB and MB express working-set sizes in bytes.
const (
	KB = 1024.0
	MB = 1024.0 * 1024.0
)

// finalize stamps each phase with its globally unique fingerprint
// ("BENCH/phase"), which seeds the machine model's per-(phase, placement)
// response perturbation.
func finalize(b *workload.Benchmark) *workload.Benchmark {
	for i := range b.Phases {
		b.Phases[i].Fingerprint = b.Name + "/" + b.Phases[i].Name
	}
	return b
}

// All returns the full benchmark suite in the paper's order.
func All() []*workload.Benchmark {
	return []*workload.Benchmark{
		BT(), CG(), FT(), IS(), LU(), LUHP(), MG(), SP(),
	}
}

// ByName returns the benchmark with the given (case-sensitive) name.
func ByName(name string) (*workload.Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("npb: unknown benchmark %q", name)
}

// Names returns the suite's benchmark names in order.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// TotalPhases returns the number of phases across the whole suite (59,
// matching the paper).
func TotalPhases() int {
	n := 0
	for _, b := range All() {
		n += len(b.Phases)
	}
	return n
}

// phase fills in universally shared defaults, leaving benchmark-specific
// fields to the literal.
func phase(p workload.PhaseProfile) workload.PhaseProfile {
	if p.LoadFraction == 0 {
		p.LoadFraction = 0.65
	}
	if p.MLP == 0 {
		p.MLP = 2
	}
	if p.LocalityExp == 0 {
		p.LocalityExp = 1
	}
	if p.ColdMissRate == 0 {
		p.ColdMissRate = 0.05
	}
	if p.BranchRate == 0 {
		p.BranchRate = 0.08
	}
	if p.BranchMissRate == 0 {
		p.BranchMissRate = 0.02
	}
	if p.TLBMissRate == 0 {
		p.TLBMissRate = 0.0005
	}
	if p.ChunkGranularity == 0 {
		p.ChunkGranularity = 64
	}
	return p
}

// BT models the block-tridiagonal solver: dense 5×5 block work with good
// locality after blocking; per-thread footprints near half an L2 create
// mild capacity contention when pairs share a cache, and moderate FSB load
// appears at full concurrency. Best-scaling code in the paper (2.69× on
// four cores with the largest power growth). 10 phases, 200 timesteps.
func BT() *workload.Benchmark {
	solve := func(name string, instr, ws, l1 float64) workload.PhaseProfile {
		return phase(workload.PhaseProfile{
			Name: name, Instructions: instr, BaseIPC: 1.8,
			MemRefsPerInstr: 0.32, L1MissRate: l1, WorkingSetBytes: ws,
			SharingFactor: 0.3, ColdMissRate: 0.15, MLP: 2.2,
			ParallelFraction: 0.995, SyncCycles: 3e5,
			PrefetchFriendly: 0.35,
		})
	}
	return finalize(&workload.Benchmark{
		Name:         "BT",
		Iterations:   200,
		Idiosyncrasy: 0.04,
		Phases: []workload.PhaseProfile{
			solve("compute_rhs", 1.05e9, 2.4*MB, 0.09),
			solve("x_solve", 9.0e8, 2.3*MB, 0.085),
			solve("y_solve", 9.0e8, 2.4*MB, 0.09),
			solve("z_solve", 9.5e8, 2.7*MB, 0.10),
			// add: streaming update, bandwidth-bound — a phase ACTOR can
			// improve by throttling even in the best-scaling benchmark.
			phase(workload.PhaseProfile{
				Name: "add", Instructions: 1.3e8, BaseIPC: 1.0,
				MemRefsPerInstr: 0.55, L1MissRate: 0.30, WorkingSetBytes: 3.2 * MB,
				SharingFactor: 0.05, ColdMissRate: 0.30, LocalityExp: 1.4,
				MLP: 4.5, ParallelFraction: 0.99, SyncCycles: 3e5,
				PrefetchFriendly: 0.55, StoreBandwidthBoost: 0.9,
			}),
			solve("txinvr", 2.2e8, 2.0*MB, 0.07),
			solve("lhsx", 3.0e8, 1.8*MB, 0.06),
			solve("lhsy", 3.0e8, 1.8*MB, 0.06),
			solve("lhsz", 3.2e8, 2.2*MB, 0.075),
			// error_norm: reduction with serialised accumulation.
			phase(workload.PhaseProfile{
				Name: "error_norm", Instructions: 1.0e8, BaseIPC: 1.2,
				MemRefsPerInstr: 0.40, L1MissRate: 0.10, WorkingSetBytes: 1.8 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.15, MLP: 2.6,
				ParallelFraction: 0.94, SyncCycles: 2.5e6, CriticalFraction: 0.02,
				PrefetchFriendly: 0.6,
			}),
		},
	})
}

// CG models the conjugate-gradient kernel: irregular sparse matrix-vector
// products whose footprint fits one L2 but not half of one, with heavy FSB
// demand at full concurrency. Paper: 1.95× at both 2b and 4 — flat beyond
// two loosely coupled cores. 6 phases, 75 timesteps.
func CG() *workload.Benchmark {
	return finalize(&workload.Benchmark{
		Name:         "CG",
		Iterations:   75,
		Idiosyncrasy: -0.06,
		Phases: []workload.PhaseProfile{
			phase(workload.PhaseProfile{
				Name: "spmv", Instructions: 8.0e8, BaseIPC: 0.9,
				MemRefsPerInstr: 0.45, L1MissRate: 0.15, WorkingSetBytes: 2.9 * MB,
				SharingFactor: 0.25, ColdMissRate: 0.30, LocalityExp: 1.7,
				MLP: 3.2, ParallelFraction: 0.995, SyncCycles: 4e5,
				PrefetchFriendly: 0.3, TLBMissRate: 0.002, StoreBandwidthBoost: 0.4,
			}),
			phase(workload.PhaseProfile{
				Name: "dot_p", Instructions: 8.0e7, BaseIPC: 1.1,
				MemRefsPerInstr: 0.50, L1MissRate: 0.14, WorkingSetBytes: 1.6 * MB,
				SharingFactor: 0.15, ColdMissRate: 0.25, MLP: 4.0,
				ParallelFraction: 0.97, SyncCycles: 1.2e6, CriticalFraction: 0.01,
				PrefetchFriendly: 0.8,
			}),
			phase(workload.PhaseProfile{
				Name: "axpy_p", Instructions: 9.0e7, BaseIPC: 1.2,
				MemRefsPerInstr: 0.55, L1MissRate: 0.16, WorkingSetBytes: 1.8 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.28, MLP: 4.2,
				ParallelFraction: 0.99, SyncCycles: 5e5,
				PrefetchFriendly: 0.85, StoreBandwidthBoost: 0.7,
			}),
			phase(workload.PhaseProfile{
				Name: "axpy_x", Instructions: 9.0e7, BaseIPC: 1.2,
				MemRefsPerInstr: 0.55, L1MissRate: 0.16, WorkingSetBytes: 1.8 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.28, MLP: 4.2,
				ParallelFraction: 0.99, SyncCycles: 5e5,
				PrefetchFriendly: 0.85, StoreBandwidthBoost: 0.7,
			}),
			phase(workload.PhaseProfile{
				Name: "norm_r", Instructions: 7.0e7, BaseIPC: 1.1,
				MemRefsPerInstr: 0.50, L1MissRate: 0.13, WorkingSetBytes: 1.4 * MB,
				SharingFactor: 0.15, ColdMissRate: 0.22, MLP: 3.6,
				ParallelFraction: 0.96, SyncCycles: 1.4e6, CriticalFraction: 0.015,
				PrefetchFriendly: 0.8,
			}),
			phase(workload.PhaseProfile{
				Name: "precond", Instructions: 1.6e8, BaseIPC: 1.0,
				MemRefsPerInstr: 0.42, L1MissRate: 0.15, WorkingSetBytes: 2.6 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.25, LocalityExp: 1.2,
				MLP: 2.8, ParallelFraction: 0.99, SyncCycles: 5e5,
				PrefetchFriendly: 0.4,
			}),
		},
	})
}

// FT models the 3-D FFT: compute-dense butterfly stages separated by
// bandwidth-hungry transposes, with prefetch-friendly strides. Scales well
// in the paper. 5 phases, 6 timesteps (class A) — a short-iteration code
// forcing a reduced sampling event set.
func FT() *workload.Benchmark {
	return finalize(&workload.Benchmark{
		Name:         "FT",
		Iterations:   6,
		Idiosyncrasy: 0.10,
		Phases: []workload.PhaseProfile{
			phase(workload.PhaseProfile{
				Name: "evolve", Instructions: 3.2e9, BaseIPC: 1.4,
				MemRefsPerInstr: 0.38, L1MissRate: 0.10, WorkingSetBytes: 2.7 * MB,
				SharingFactor: 0.15, ColdMissRate: 0.26, MLP: 3.2,
				ParallelFraction: 0.995, SyncCycles: 4e5, PrefetchFriendly: 0.6,
			}),
			phase(workload.PhaseProfile{
				Name: "fftx", Instructions: 6.5e9, BaseIPC: 1.7,
				MemRefsPerInstr: 0.30, L1MissRate: 0.07, WorkingSetBytes: 2.4 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.20, MLP: 2.6,
				ParallelFraction: 0.995, SyncCycles: 4e5, PrefetchFriendly: 0.5,
			}),
			phase(workload.PhaseProfile{
				Name: "ffty", Instructions: 6.5e9, BaseIPC: 1.7,
				MemRefsPerInstr: 0.30, L1MissRate: 0.075, WorkingSetBytes: 2.5 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.20, MLP: 2.6,
				ParallelFraction: 0.995, SyncCycles: 4e5, PrefetchFriendly: 0.5,
			}),
			phase(workload.PhaseProfile{
				Name: "fftz_transpose", Instructions: 7.5e9, BaseIPC: 1.3,
				MemRefsPerInstr: 0.36, L1MissRate: 0.12, WorkingSetBytes: 2.9 * MB,
				SharingFactor: 0.12, ColdMissRate: 0.30, MLP: 2.8,
				ParallelFraction: 0.995, SyncCycles: 5e5, PrefetchFriendly: 0.4,
			}),
			phase(workload.PhaseProfile{
				Name: "checksum", Instructions: 5.0e8, BaseIPC: 1.0,
				MemRefsPerInstr: 0.45, L1MissRate: 0.10, WorkingSetBytes: 1.6 * MB,
				SharingFactor: 0.15, ColdMissRate: 0.2, MLP: 3.2,
				ParallelFraction: 0.95, SyncCycles: 2e6, CriticalFraction: 0.02,
				PrefetchFriendly: 0.8,
			}),
		},
	})
}

// IS models the integer bucket sort: a streaming, extremely
// bandwidth-sensitive code whose per-thread working set nearly fills one
// L2. A single thread already drives the FSB near half capacity (high-MLP
// streaming); two threads on one L2 double each other's misses. The paper's
// most dramatic case: 2b beats 2a by ~2×, four threads lose 40% versus one.
// 3 phases, 10 timesteps (reduced event set).
func IS() *workload.Benchmark {
	return finalize(&workload.Benchmark{
		Name:         "IS",
		Iterations:   10,
		Idiosyncrasy: 0.09,
		Phases: []workload.PhaseProfile{
			phase(workload.PhaseProfile{
				Name: "rank_count", Instructions: 6.5e8, BaseIPC: 1.1,
				MemRefsPerInstr: 0.52, L1MissRate: 0.40, WorkingSetBytes: 3.5 * MB,
				SharingFactor: 0.05, ColdMissRate: 0.26, LocalityExp: 1.15,
				MLP: 12, ParallelFraction: 0.99, SyncCycles: 8e5,
				PrefetchFriendly: 0.85, TLBMissRate: 0.003, StoreBandwidthBoost: 0.9,
			}),
			phase(workload.PhaseProfile{
				Name: "rank_scatter", Instructions: 5.5e8, BaseIPC: 1.0,
				MemRefsPerInstr: 0.55, L1MissRate: 0.44, WorkingSetBytes: 3.6 * MB,
				SharingFactor: 0.05, ColdMissRate: 0.28, LocalityExp: 1.2,
				MLP: 11, ParallelFraction: 0.99, SyncCycles: 9e5,
				PrefetchFriendly: 0.8, TLBMissRate: 0.004, StoreBandwidthBoost: 1.0,
			}),
			phase(workload.PhaseProfile{
				Name: "verify", Instructions: 2.2e8, BaseIPC: 1.1,
				MemRefsPerInstr: 0.45, L1MissRate: 0.28, WorkingSetBytes: 3.0 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.24, LocalityExp: 1.0,
				MLP: 9, ParallelFraction: 0.97, SyncCycles: 1e6,
				CriticalFraction: 0.02, PrefetchFriendly: 0.75,
			}),
		},
	})
}

// LU models the SSOR solver with pipelined (flag-based) wavefront
// parallelism: a lower parallel fraction and heavier synchronisation than
// the hyperplane variant, plus moderate bandwidth demand. Flat scaling
// class in the paper. 8 phases, 250 timesteps.
func LU() *workload.Benchmark {
	return finalize(&workload.Benchmark{
		Name:         "LU",
		Iterations:   250,
		Idiosyncrasy: 0.08,
		Phases: []workload.PhaseProfile{
			phase(workload.PhaseProfile{
				Name: "rhs", Instructions: 1.15e9, BaseIPC: 1.3,
				MemRefsPerInstr: 0.34, L1MissRate: 0.13, WorkingSetBytes: 2.9 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.28, MLP: 2.6,
				ParallelFraction: 0.99, SyncCycles: 4e5, PrefetchFriendly: 0.4,
			}),
			phase(workload.PhaseProfile{
				Name: "jacld", Instructions: 5.5e8, BaseIPC: 1.6,
				MemRefsPerInstr: 0.28, L1MissRate: 0.09, WorkingSetBytes: 2.4 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.24, MLP: 2.4,
				ParallelFraction: 0.97, SyncCycles: 5e5, PrefetchFriendly: 0.45,
			}),
			phase(workload.PhaseProfile{
				Name: "blts", Instructions: 7.5e8, BaseIPC: 1.2,
				MemRefsPerInstr: 0.32, L1MissRate: 0.10, WorkingSetBytes: 2.8 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.26, MLP: 1.9,
				ParallelFraction: 0.78, SyncCycles: 3e6, CriticalFraction: 0.025,
				ChunkGranularity: 33, PrefetchFriendly: 0.3,
			}),
			phase(workload.PhaseProfile{
				Name: "jacu", Instructions: 5.5e8, BaseIPC: 1.6,
				MemRefsPerInstr: 0.28, L1MissRate: 0.09, WorkingSetBytes: 2.4 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.24, MLP: 2.4,
				ParallelFraction: 0.97, SyncCycles: 5e5, PrefetchFriendly: 0.45,
			}),
			phase(workload.PhaseProfile{
				Name: "buts", Instructions: 7.5e8, BaseIPC: 1.2,
				MemRefsPerInstr: 0.32, L1MissRate: 0.10, WorkingSetBytes: 2.8 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.26, MLP: 1.9,
				ParallelFraction: 0.78, SyncCycles: 3e6, CriticalFraction: 0.025,
				ChunkGranularity: 33, PrefetchFriendly: 0.3,
			}),
			phase(workload.PhaseProfile{
				Name: "add_u", Instructions: 2.2e8, BaseIPC: 1.1,
				MemRefsPerInstr: 0.5, L1MissRate: 0.18, WorkingSetBytes: 2.8 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.3, LocalityExp: 1.2,
				MLP: 4.0, ParallelFraction: 0.99, SyncCycles: 4e5,
				PrefetchFriendly: 0.6, StoreBandwidthBoost: 0.8,
			}),
			phase(workload.PhaseProfile{
				Name: "l2norm", Instructions: 1.6e8, BaseIPC: 1.1,
				MemRefsPerInstr: 0.48, L1MissRate: 0.12, WorkingSetBytes: 1.8 * MB,
				SharingFactor: 0.15, ColdMissRate: 0.22, MLP: 3.2,
				ParallelFraction: 0.95, SyncCycles: 1.6e6, CriticalFraction: 0.015,
				PrefetchFriendly: 0.7,
			}),
			phase(workload.PhaseProfile{
				Name: "flux", Instructions: 6.0e8, BaseIPC: 1.4,
				MemRefsPerInstr: 0.33, L1MissRate: 0.11, WorkingSetBytes: 2.7 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.26, MLP: 2.3,
				ParallelFraction: 0.98, SyncCycles: 6e5, PrefetchFriendly: 0.4,
			}),
		},
	})
}

// LUHP models LU-HP, the hyperplane formulation of LU: more exposed
// parallelism per sweep (larger parallel fraction) at the cost of frequent
// barriers on small hyperplanes; lighter bandwidth demand than LU. Scales
// well in the paper. 10 phases, 250 timesteps.
func LUHP() *workload.Benchmark {
	hp := func(name string) workload.PhaseProfile {
		return phase(workload.PhaseProfile{
			Name: name, Instructions: 4.5e8, BaseIPC: 1.4,
			MemRefsPerInstr: 0.32, L1MissRate: 0.09, WorkingSetBytes: 2.8 * MB,
			SharingFactor: 0.2, ColdMissRate: 0.26, MLP: 2.2,
			ParallelFraction: 0.99, SyncCycles: 5e6, PrefetchFriendly: 0.4,
		})
	}
	return finalize(&workload.Benchmark{
		Name:         "LU-HP",
		Iterations:   250,
		Idiosyncrasy: -0.05,
		Phases: []workload.PhaseProfile{
			phase(workload.PhaseProfile{
				Name: "rhs", Instructions: 1.15e9, BaseIPC: 1.4,
				MemRefsPerInstr: 0.34, L1MissRate: 0.10, WorkingSetBytes: 2.6 * MB,
				SharingFactor: 0.25, ColdMissRate: 0.20, MLP: 2.4,
				ParallelFraction: 0.995, SyncCycles: 4e5, PrefetchFriendly: 0.45,
			}),
			phase(workload.PhaseProfile{
				Name: "jacld", Instructions: 6.0e8, BaseIPC: 1.7,
				MemRefsPerInstr: 0.28, L1MissRate: 0.06, WorkingSetBytes: 1.8 * MB,
				SharingFactor: 0.3, ColdMissRate: 0.14, MLP: 2.4,
				ParallelFraction: 0.99, SyncCycles: 5e5, PrefetchFriendly: 0.5,
			}),
			hp("blts_hp1"),
			hp("blts_hp2"),
			phase(workload.PhaseProfile{
				Name: "jacu", Instructions: 6.0e8, BaseIPC: 1.7,
				MemRefsPerInstr: 0.28, L1MissRate: 0.06, WorkingSetBytes: 1.8 * MB,
				SharingFactor: 0.3, ColdMissRate: 0.14, MLP: 2.4,
				ParallelFraction: 0.99, SyncCycles: 5e5, PrefetchFriendly: 0.5,
			}),
			hp("buts_hp1"),
			hp("buts_hp2"),
			phase(workload.PhaseProfile{
				Name: "add_u", Instructions: 2.4e8, BaseIPC: 1.1,
				MemRefsPerInstr: 0.5, L1MissRate: 0.15, WorkingSetBytes: 2.4 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.26, MLP: 4.0,
				ParallelFraction: 0.99, SyncCycles: 4e5,
				PrefetchFriendly: 0.65, StoreBandwidthBoost: 0.7,
			}),
			phase(workload.PhaseProfile{
				Name: "l2norm", Instructions: 1.8e8, BaseIPC: 1.1,
				MemRefsPerInstr: 0.48, L1MissRate: 0.11, WorkingSetBytes: 1.6 * MB,
				SharingFactor: 0.15, ColdMissRate: 0.2, MLP: 3.2,
				ParallelFraction: 0.96, SyncCycles: 1.4e6, CriticalFraction: 0.01,
				PrefetchFriendly: 0.7,
			}),
			phase(workload.PhaseProfile{
				Name: "flux", Instructions: 6.5e8, BaseIPC: 1.5,
				MemRefsPerInstr: 0.33, L1MissRate: 0.08, WorkingSetBytes: 2.0 * MB,
				SharingFactor: 0.3, ColdMissRate: 0.16, MLP: 2.3,
				ParallelFraction: 0.99, SyncCycles: 6e5, PrefetchFriendly: 0.45,
			}),
		},
	})
}

// MG models the multigrid V-cycle: streaming stencils over a grid hierarchy;
// fine grids are bandwidth-bound (high-MLP streams), coarse grids sync-bound.
// Paper: best at 2b (1.29×), only 1.11× at 4 threads. 5 phases, 4 timesteps
// (the shortest-iteration code: reduced event set).
func MG() *workload.Benchmark {
	return finalize(&workload.Benchmark{
		Name:         "MG",
		Iterations:   4,
		Idiosyncrasy: 0.10,
		Phases: []workload.PhaseProfile{
			phase(workload.PhaseProfile{
				Name: "resid", Instructions: 2.6e9, BaseIPC: 1.2,
				MemRefsPerInstr: 0.46, L1MissRate: 0.32, WorkingSetBytes: 2.9 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.45, LocalityExp: 0.85,
				MLP: 8, ParallelFraction: 0.995, SyncCycles: 7e5,
				PrefetchFriendly: 0.7, StoreBandwidthBoost: 0.6,
			}),
			phase(workload.PhaseProfile{
				Name: "psinv", Instructions: 2.2e9, BaseIPC: 1.3,
				MemRefsPerInstr: 0.44, L1MissRate: 0.30, WorkingSetBytes: 2.8 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.42, LocalityExp: 0.85,
				MLP: 8, ParallelFraction: 0.995, SyncCycles: 7e5,
				PrefetchFriendly: 0.7, StoreBandwidthBoost: 0.6,
			}),
			phase(workload.PhaseProfile{
				Name: "rprj3", Instructions: 9.0e8, BaseIPC: 1.1,
				MemRefsPerInstr: 0.48, L1MissRate: 0.34, WorkingSetBytes: 3.0 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.45, LocalityExp: 0.85,
				MLP: 8, ParallelFraction: 0.99, SyncCycles: 9e5,
				ChunkGranularity: 48, PrefetchFriendly: 0.65, StoreBandwidthBoost: 0.7,
			}),
			phase(workload.PhaseProfile{
				Name: "interp", Instructions: 1.1e9, BaseIPC: 1.1,
				MemRefsPerInstr: 0.46, L1MissRate: 0.30, WorkingSetBytes: 2.9 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.42, LocalityExp: 0.85,
				MLP: 8, ParallelFraction: 0.99, SyncCycles: 9e5,
				ChunkGranularity: 48, PrefetchFriendly: 0.7, StoreBandwidthBoost: 0.7,
			}),
			phase(workload.PhaseProfile{
				Name: "norm2u3", Instructions: 4.0e8, BaseIPC: 1.1,
				MemRefsPerInstr: 0.50, L1MissRate: 0.24, WorkingSetBytes: 2.6 * MB,
				SharingFactor: 0.15, ColdMissRate: 0.35, LocalityExp: 0.8,
				MLP: 7, ParallelFraction: 0.96, SyncCycles: 1.8e6,
				CriticalFraction: 0.02, PrefetchFriendly: 0.75,
			}),
		},
	})
}

// SP models the scalar-pentadiagonal solver: twelve parallel regions with
// radically different characters — the paper's showcase of phase
// heterogeneity (Fig. 2: per-phase best IPC spans 0.32 to 4.64, and the
// best configuration differs per phase). 12 phases, 400 timesteps.
func SP() *workload.Benchmark {
	return finalize(&workload.Benchmark{
		Name:         "SP",
		Iterations:   400,
		Idiosyncrasy: -0.08,
		Phases: []workload.PhaseProfile{
			// 1: compute_rhs — dense, scales well.
			phase(workload.PhaseProfile{
				Name: "compute_rhs", Instructions: 5.2e8, BaseIPC: 1.6,
				MemRefsPerInstr: 0.26, L1MissRate: 0.05, WorkingSetBytes: 1.6 * MB,
				SharingFactor: 0.35, ColdMissRate: 0.12, MLP: 2.6,
				ParallelFraction: 0.997, SyncCycles: 2.5e5, PrefetchFriendly: 0.6,
			}),
			// 2: txinvr — moderate.
			phase(workload.PhaseProfile{
				Name: "txinvr", Instructions: 1.6e8, BaseIPC: 1.5,
				MemRefsPerInstr: 0.32, L1MissRate: 0.08, WorkingSetBytes: 2.0 * MB,
				SharingFactor: 0.3, ColdMissRate: 0.18, MLP: 2.4,
				ParallelFraction: 0.99, SyncCycles: 3e5, PrefetchFriendly: 0.5,
			}),
			// 3: x_solve — line solve, moderate bandwidth.
			phase(workload.PhaseProfile{
				Name: "x_solve", Instructions: 3.4e8, BaseIPC: 1.3,
				MemRefsPerInstr: 0.34, L1MissRate: 0.12, WorkingSetBytes: 3.5 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.30, MLP: 3.4,
				ParallelFraction: 0.99, SyncCycles: 4e5, PrefetchFriendly: 0.45,
			}),
			// 4: ninvr — small, sync-heavy: prefers fewer threads.
			phase(workload.PhaseProfile{
				Name: "ninvr", Instructions: 6.0e7, BaseIPC: 1.4,
				MemRefsPerInstr: 0.36, L1MissRate: 0.08, WorkingSetBytes: 1.4 * MB,
				SharingFactor: 0.3, ColdMissRate: 0.16, MLP: 2.2,
				ParallelFraction: 0.93, SyncCycles: 1.8e6, PrefetchFriendly: 0.5,
			}),
			// 5: y_solve.
			phase(workload.PhaseProfile{
				Name: "y_solve", Instructions: 3.4e8, BaseIPC: 1.3,
				MemRefsPerInstr: 0.34, L1MissRate: 0.13, WorkingSetBytes: 3.6 * MB,
				SharingFactor: 0.2, ColdMissRate: 0.30, MLP: 3.4,
				ParallelFraction: 0.99, SyncCycles: 4e5, PrefetchFriendly: 0.4,
			}),
			// 6: pinvr — small, sync-heavy.
			phase(workload.PhaseProfile{
				Name: "pinvr", Instructions: 6.0e7, BaseIPC: 1.4,
				MemRefsPerInstr: 0.36, L1MissRate: 0.08, WorkingSetBytes: 1.4 * MB,
				SharingFactor: 0.3, ColdMissRate: 0.16, MLP: 2.2,
				ParallelFraction: 0.93, SyncCycles: 1.8e6, PrefetchFriendly: 0.5,
			}),
			// 7: z_solve — strided: bigger footprint, poorer locality, and
			// capacity-sensitive in shared L2s.
			phase(workload.PhaseProfile{
				Name: "z_solve", Instructions: 3.8e8, BaseIPC: 1.1,
				MemRefsPerInstr: 0.38, L1MissRate: 0.18, WorkingSetBytes: 3.0 * MB,
				SharingFactor: 0.15, ColdMissRate: 0.26, LocalityExp: 1.1,
				MLP: 2.2, ParallelFraction: 0.99, SyncCycles: 4e5,
				PrefetchFriendly: 0.25,
			}),
			// 8: tzetar — moderate compute.
			phase(workload.PhaseProfile{
				Name: "tzetar", Instructions: 1.5e8, BaseIPC: 1.5,
				MemRefsPerInstr: 0.30, L1MissRate: 0.07, WorkingSetBytes: 1.6 * MB,
				SharingFactor: 0.3, ColdMissRate: 0.15, MLP: 2.4,
				ParallelFraction: 0.99, SyncCycles: 3e5, PrefetchFriendly: 0.55,
			}),
			// 9: add — pure streaming, bandwidth-bound: the 0.32-class
			// phase whose IPC collapses with more threads.
			phase(workload.PhaseProfile{
				Name: "add", Instructions: 9.0e7, BaseIPC: 0.8,
				MemRefsPerInstr: 0.60, L1MissRate: 0.45, WorkingSetBytes: 3.5 * MB,
				SharingFactor: 0.05, ColdMissRate: 0.3, LocalityExp: 1.1,
				MLP: 4.8, ParallelFraction: 0.99, SyncCycles: 5e5,
				PrefetchFriendly: 0.45, StoreBandwidthBoost: 0.9,
			}),
			// 10: rhs_norm — reduction, sync-dominated.
			phase(workload.PhaseProfile{
				Name: "rhs_norm", Instructions: 7.0e7, BaseIPC: 1.1,
				MemRefsPerInstr: 0.46, L1MissRate: 0.10, WorkingSetBytes: 1.6 * MB,
				SharingFactor: 0.15, ColdMissRate: 0.18, MLP: 2.8,
				ParallelFraction: 0.92, SyncCycles: 2.2e6, CriticalFraction: 0.025,
				PrefetchFriendly: 0.7,
			}),
			// 11: exact_rhs — dense compute, the high-IPC phase (the
			// 4.6-class aggregate-IPC phase of Fig. 2).
			phase(workload.PhaseProfile{
				Name: "exact_rhs", Instructions: 2.6e8, BaseIPC: 1.45,
				MemRefsPerInstr: 0.20, L1MissRate: 0.025, WorkingSetBytes: 0.8 * MB,
				SharingFactor: 0.4, ColdMissRate: 0.08, MLP: 3.0,
				ParallelFraction: 0.997, SyncCycles: 1.5e5, PrefetchFriendly: 0.8,
			}),
			// 12: initialize — streaming writes.
			phase(workload.PhaseProfile{
				Name: "initialize", Instructions: 1.1e8, BaseIPC: 1.0,
				MemRefsPerInstr: 0.5, L1MissRate: 0.28, WorkingSetBytes: 3.0 * MB,
				SharingFactor: 0.1, ColdMissRate: 0.26, LocalityExp: 1.1,
				MLP: 4.2, ParallelFraction: 0.99, SyncCycles: 5e5,
				PrefetchFriendly: 0.5, StoreBandwidthBoost: 1.0,
			}),
		},
	})
}

// Validate checks every benchmark in the suite; it is used by tests and by
// the harnesses at startup.
func Validate() error {
	names := map[string]bool{}
	for _, b := range All() {
		if err := b.Validate(); err != nil {
			return err
		}
		if names[b.Name] {
			return fmt.Errorf("npb: duplicate benchmark name %q", b.Name)
		}
		names[b.Name] = true
	}
	return nil
}

// SortedNames returns the benchmark names sorted alphabetically (for
// deterministic map iteration in reports).
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
