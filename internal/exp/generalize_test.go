package exp

import (
	"strings"
	"testing"
)

func TestGeneralizeToUnseenApplications(t *testing.T) {
	s := newFastSuite(t)
	r, err := s.Generalize(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Apps != 6 || len(r.Errors) == 0 {
		t.Fatalf("result incomplete: %+v", r)
	}
	// Random unseen apps are harder than leave-one-out NPB, but the model
	// must remain usable: median error bounded, best-config rate well
	// above chance (20% for 5 configs), and the worst config essentially
	// never picked.
	if r.MedianErr > 0.30 {
		t.Errorf("median error on unseen apps = %.1f%%, want ≤ 30%%", r.MedianErr*100)
	}
	if r.Rank1 < 0.35 {
		t.Errorf("rank-1 rate on unseen apps = %.1f%%, want ≥ 35%%", r.Rank1*100)
	}
	if r.WorstPick > 0.10 {
		t.Errorf("worst config picked %.1f%% of the time", r.WorstPick*100)
	}
	out := render(r.Render)
	if !strings.Contains(out, "Generalization") {
		t.Error("render incomplete")
	}
	if _, err := s.Generalize(0); err == nil {
		t.Error("zero apps accepted")
	}
}
