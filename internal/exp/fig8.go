package exp

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/metrics"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/report"
)

// Fig8Strategies are the execution strategies compared in Fig. 8, in the
// paper's panel order.
var Fig8Strategies = []string{"4 Cores", "Global Optimal", "Phase Optimal", "Prediction"}

// Fig8Row holds one benchmark's absolute results per strategy.
type Fig8Row struct {
	// TimeSec etc. map strategy display name → value.
	TimeSec, PowerW, EnergyJ, ED2 map[string]float64
	// PhaseConfigs maps phase → config chosen by the prediction strategy.
	PhaseConfigs map[string]string
}

// Fig8Result aggregates the adaptation evaluation (paper Fig. 8: normalised
// execution time, power, energy and ED² against the 4-core default).
type Fig8Result struct {
	Order []string
	Rows  map[string]*Fig8Row
}

// Fig8Throttling executes every benchmark under the four strategies. The
// prediction strategy uses the leave-one-out bank trained for that
// benchmark, pays its sampling overhead (counter rotation at maximal
// concurrency capped at 20% of iterations), and every strategy pays
// cache-warmth migration penalties when consecutive phases run on
// different placements.
//
// The (benchmark × strategy) replays are independent and fan out through
// the parallel engine. Each task's measurement machine draws noise from a
// stream forked under the task's key, so the figure is bit-identical at
// any GOMAXPROCS; all tasks share the suite's phase-response memo, so each
// distinct (phase, placement) is solved only once across the whole figure.
func (s *Suite) Fig8Throttling(loo *LOOModels) (*Fig8Result, error) {
	res := &Fig8Result{Rows: make(map[string]*Fig8Row, len(s.Benches))}
	base := s.noiseBase.Fork("fig8")
	ns := len(Fig8Strategies)
	allCores := s.SampleConfig().Name // "4" on the paper platform
	runs, err := parallel.Map(len(s.Benches)*ns, func(i int) (core.RunResult, error) {
		b, name := s.Benches[i/ns], Fig8Strategies[i%ns]
		var strat core.Strategy
		switch name {
		case "4 Cores":
			strat = &core.Static{Config: allCores}
		case "Global Optimal":
			strat = core.OracleGlobal{}
		case "Phase Optimal":
			strat = core.OraclePhase{}
		case "Prediction":
			strat = &core.Prediction{Bank: loo.Banks[b.Name]}
		default:
			return core.RunResult{}, fmt.Errorf("fig8: unknown strategy %q", name)
		}
		noisy := s.Noisy.WithNoiseSource(base.Fork(b.Name + "/" + name))
		env := core.NewEnvWith(noisy, s.Truth, s.Power, s.Configs)
		r, err := strat.Run(b, env)
		if err != nil {
			return core.RunResult{}, fmt.Errorf("fig8 %s/%s: %w", b.Name, name, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for bi, b := range s.Benches {
		row := &Fig8Row{
			TimeSec: map[string]float64{},
			PowerW:  map[string]float64{},
			EnergyJ: map[string]float64{},
			ED2:     map[string]float64{},
		}
		for si, name := range Fig8Strategies {
			r := runs[bi*ns+si]
			row.TimeSec[name] = r.TimeSec
			row.PowerW[name] = r.AvgPowerW
			row.EnergyJ[name] = r.EnergyJ
			row.ED2[name] = r.ED2
			if name == "Prediction" {
				row.PhaseConfigs = r.PhaseConfigs
			}
		}
		res.Rows[b.Name] = row
		res.Order = append(res.Order, b.Name)
	}
	return res, nil
}

// Normalized returns metric[strategy]/metric["4 Cores"] for a benchmark.
func (r *Fig8Result) Normalized(bench, strategy string, metric func(*Fig8Row) map[string]float64) float64 {
	row := r.Rows[bench]
	if row == nil {
		return 0
	}
	m := metric(row)
	base := m["4 Cores"]
	if base == 0 {
		return 0
	}
	return m[strategy] / base
}

// AverageNormalized returns the arithmetic mean across benchmarks of the
// normalised metric (the paper's AVG bars).
func (r *Fig8Result) AverageNormalized(strategy string, metric func(*Fig8Row) map[string]float64) float64 {
	var vals []float64
	for _, b := range r.Order {
		vals = append(vals, r.Normalized(b, strategy, metric))
	}
	return metrics.Mean(vals)
}

// Metric accessors for Normalized/AverageNormalized.
func MetricTime(r *Fig8Row) map[string]float64   { return r.TimeSec }
func MetricPower(r *Fig8Row) map[string]float64  { return r.PowerW }
func MetricEnergy(r *Fig8Row) map[string]float64 { return r.EnergyJ }
func MetricED2(r *Fig8Row) map[string]float64    { return r.ED2 }

// Render prints all four normalised panels plus headline scalars.
func (r *Fig8Result) Render(w io.Writer) {
	panels := []struct {
		title  string
		metric func(*Fig8Row) map[string]float64
	}{
		{"normalized execution time", MetricTime},
		{"normalized power consumption", MetricPower},
		{"normalized energy consumption", MetricEnergy},
		{"normalized energy delay squared (ED2)", MetricED2},
	}
	report.Section(w, "Figure 8: adaptation strategies vs 4-core default")
	for _, panel := range panels {
		t := report.NewTable(panel.title, append([]string{"bench"}, Fig8Strategies...)...)
		for _, b := range r.Order {
			cells := []string{b}
			for _, st := range Fig8Strategies {
				cells = append(cells, fmt.Sprintf("%.3f", r.Normalized(b, st, panel.metric)))
			}
			t.AddRow(cells...)
		}
		avg := []string{"AVG"}
		for _, st := range Fig8Strategies {
			avg = append(avg, fmt.Sprintf("%.3f", r.AverageNormalized(st, panel.metric)))
		}
		t.AddRow(avg...)
		t.Render(w)
		fmt.Fprintln(w)
	}
	predTime := r.AverageNormalized("Prediction", MetricTime)
	report.KV(w, "prediction avg performance gain (paper 6.5%)", "%.1f%%", (1-predTime)*100)
	report.KV(w, "prediction avg power change (paper +1.5%)", "%+.1f%%",
		(r.AverageNormalized("Prediction", MetricPower)-1)*100)
	report.KV(w, "prediction avg energy saving (paper 5.2%)", "%.1f%%",
		(1-r.AverageNormalized("Prediction", MetricEnergy))*100)
	report.KV(w, "prediction avg ED2 saving (paper 17.2%)", "%.1f%%",
		(1-r.AverageNormalized("Prediction", MetricED2))*100)
	report.KV(w, "phase-optimal avg ED2 saving (paper 29.0%)", "%.1f%%",
		(1-r.AverageNormalized("Phase Optimal", MetricED2))*100)
	if row := r.Rows["IS"]; row != nil {
		report.KV(w, "IS prediction ED2 saving (paper 71.6%)", "%.1f%%",
			(1-r.Normalized("IS", "Prediction", MetricED2))*100)
	}
	report.KV(w, "prediction vs global optimal slowdown (paper 2.5%)", "%.1f%%",
		(r.AverageNormalized("Prediction", MetricTime)/r.AverageNormalized("Global Optimal", MetricTime)-1)*100)
	report.KV(w, "prediction vs phase optimal slowdown (paper 4.9%)", "%.1f%%",
		(r.AverageNormalized("Prediction", MetricTime)/r.AverageNormalized("Phase Optimal", MetricTime)-1)*100)
}
