package exp

import (
	"strings"
	"testing"
)

func TestDVFSStudy(t *testing.T) {
	s := newFastSuite(t)
	r, err := s.DVFSStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Order) != 8 {
		t.Fatalf("study covered %d benchmarks", len(r.Order))
	}
	for _, b := range r.Order {
		row := r.ED2[b]
		if row["all-cores@nominal"] != 1 {
			t.Errorf("%s: baseline not normalised to 1", b)
		}
		// Joint dominates both single knobs under the shared objective.
		if row["joint"] > row["concurrency-only"]+1e-9 {
			t.Errorf("%s: joint (%.3f) worse than concurrency-only (%.3f)", b, row["joint"], row["concurrency-only"])
		}
		if row["joint"] > row["dvfs-only"]+1e-9 {
			t.Errorf("%s: joint (%.3f) worse than dvfs-only (%.3f)", b, row["joint"], row["dvfs-only"])
		}
	}
	// For the bandwidth-bound codes, concurrency throttling should be the
	// bigger single knob (the paper's central claim vs pure DVFS).
	for _, b := range []string{"IS", "MG"} {
		if r.ED2[b]["concurrency-only"] > r.ED2[b]["dvfs-only"] {
			t.Errorf("%s: concurrency-only (%.3f) should beat dvfs-only (%.3f)",
				b, r.ED2[b]["concurrency-only"], r.ED2[b]["dvfs-only"])
		}
	}
	out := render(r.Render)
	if !strings.Contains(out, "joint") {
		t.Error("render incomplete")
	}
}

func TestFutureScaling(t *testing.T) {
	s := newFastSuite(t)
	r, err := s.FutureScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cores) != 4 {
		t.Fatalf("scales = %v", r.Cores)
	}
	// The configuration space must grow with core count (the search-cost
	// argument for prediction).
	prev := 0
	for _, c := range r.Cores {
		if r.Placements[c] <= prev {
			t.Errorf("placement count did not grow at %d cores: %d", c, r.Placements[c])
		}
		prev = r.Placements[c]
	}
	// The average throttling gain at 32 cores exceeds the 4-core gain —
	// the paper's future-platforms prediction.
	if r.AverageGain(32) <= r.AverageGain(4) {
		t.Errorf("throttling gain did not grow with cores: %.3f at 4 vs %.3f at 32",
			r.AverageGain(4), r.AverageGain(32))
	}
	for _, c := range r.Cores {
		for b, g := range r.Gain[c] {
			if g < -1e-9 || g > 1 {
				t.Errorf("gain out of range at %d cores for %s: %g", c, b, g)
			}
		}
	}
	out := render(r.Render)
	if !strings.Contains(out, "32") {
		t.Error("render incomplete")
	}
}

func TestCoScheduling(t *testing.T) {
	s := newFastSuite(t)
	r, err := s.CoScheduling()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Order) != 8 {
		t.Fatalf("covered %d benchmarks", len(r.Order))
	}
	var improved int
	for _, b := range r.Order {
		if r.Throttled[b] <= 0 || r.Default[b] <= 0 {
			t.Errorf("%s: non-positive makespan", b)
		}
		// Co-scheduling can never be worse than time slicing here: the
		// throttled benchmark placement is at worst the all-cores one.
		if r.Throttled[b] > r.Default[b]*1.0001 {
			t.Errorf("%s: co-scheduled makespan %.1f worse than time-sliced %.1f",
				b, r.Throttled[b], r.Default[b])
		}
		if r.Throttled[b] < r.Default[b]*0.999 {
			improved++
		}
	}
	if improved < 3 {
		t.Errorf("co-scheduling helped only %d/8 benchmarks", improved)
	}
	out := render(r.Render)
	if !strings.Contains(out, "co-scheduled") {
		t.Error("render incomplete")
	}
}
