package exp

import (
	"strings"
	"testing"
)

func TestRobustnessAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed training in -short mode")
	}
	opts := FastOptions()
	opts.Repetitions = 2
	opts.Folds = 4
	opts.ANN.MaxEpochs = 80
	r, err := Robustness(opts, []int64{11, 22, 33})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MedianErr) != 3 || len(r.Rank1) != 3 || len(r.ED2Saving) != 3 {
		t.Fatalf("per-seed series incomplete: %+v", r)
	}
	for i := range r.Seeds {
		if r.MedianErr[i] <= 0.01 || r.MedianErr[i] > 0.3 {
			t.Errorf("seed %d: median error %.3f out of plausible band", r.Seeds[i], r.MedianErr[i])
		}
		if r.Rank1[i] < 0.3 || r.Rank1[i] > 1 {
			t.Errorf("seed %d: rank-1 rate %.3f out of plausible band", r.Seeds[i], r.Rank1[i])
		}
		if r.ED2Saving[i] < 0 || r.ED2Saving[i] > 0.6 {
			t.Errorf("seed %d: ED2 saving %.3f out of plausible band", r.Seeds[i], r.ED2Saving[i])
		}
	}
	out := render(r.Render)
	if !strings.Contains(out, "±") || !strings.Contains(out, "Robustness") {
		t.Error("render incomplete")
	}

	if _, err := Robustness(opts, nil); err == nil {
		t.Error("empty seed list accepted")
	}
}
