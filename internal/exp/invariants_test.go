package exp

import (
	"testing"

	"github.com/greenhpc/actor/internal/core"
)

// TestOracleInvariantsAcrossSuite pins the DESIGN.md §6 strategy ordering
// for every benchmark: per-phase oracle total time ≤ global oracle total
// time ≤ the best static configuration's time, all measured noiselessly
// and without migration charges (pure schedule quality).
func TestOracleInvariantsAcrossSuite(t *testing.T) {
	s := newFastSuite(t)
	for _, b := range s.Benches {
		best, times, err := core.GlobalOptimal(b, s.Truth, s.Configs)
		if err != nil {
			t.Fatal(err)
		}
		// Global optimum really is the minimum of the per-config totals.
		for cfg, tt := range times {
			if times[best.Name] > tt*1.0001 {
				t.Errorf("%s: global optimal %s (%.2f) beaten by %s (%.2f)",
					b.Name, best.Name, times[best.Name], cfg, tt)
			}
		}
		// Phase-optimal schedule is at least as good as any single
		// config.
		phaseBests, err := core.PhaseOptimal(b, s.Truth, s.Configs)
		if err != nil {
			t.Fatal(err)
		}
		var phaseTotal float64
		for pi := range b.Phases {
			phaseTotal += s.Truth.RunPhase(&b.Phases[pi], b.Idiosyncrasy, phaseBests[pi]).TimeSec
		}
		phaseTotal *= float64(b.Iterations)
		if phaseTotal > times[best.Name]*1.0001 {
			t.Errorf("%s: phase-optimal (%.2f) worse than global optimal (%.2f)",
				b.Name, phaseTotal, times[best.Name])
		}
	}
}

// TestEnergyTimeConsistencyAcrossSuite checks the accounting identity
// E = P̄ · T and ED² = E · T² for every strategy result in a Fig. 8 run.
func TestEnergyTimeConsistencyAcrossSuite(t *testing.T) {
	s, loo := loadLOO(t)
	r, err := s.Fig8Throttling(loo)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.Order {
		row := r.Rows[b]
		for _, st := range Fig8Strategies {
			tt, e, p, ed2 := row.TimeSec[st], row.EnergyJ[st], row.PowerW[st], row.ED2[st]
			if tt <= 0 || e <= 0 || p <= 0 || ed2 <= 0 {
				t.Fatalf("%s/%s: non-positive accounting", b, st)
			}
			if rel(e, p*tt) > 1e-9 {
				t.Errorf("%s/%s: E=%.3f != P*T=%.3f", b, st, e, p*tt)
			}
			if rel(ed2, e*tt*tt) > 1e-9 {
				t.Errorf("%s/%s: ED2 inconsistent", b, st)
			}
		}
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return d
	}
	return d / b
}
