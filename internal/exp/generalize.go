package exp

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/metrics"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/report"
	"github.com/greenhpc/actor/internal/workload"
)

// GeneralizeResult evaluates the paper's deployment claim — "the model
// would generally be trained a single time with a given set of training
// applications, and would subsequently be used for any desired
// application" — by training on the NPB suite and predicting a population
// of never-seen random applications.
type GeneralizeResult struct {
	Apps int
	// MedianErr is the median relative IPC prediction error across every
	// (random phase, target config) prediction.
	MedianErr float64
	// Rank1 is the fraction of random phases whose selected configuration
	// is the true best.
	Rank1 float64
	// WorstPick is the fraction of phases where the worst configuration
	// was selected (safety property; should be ≈ 0).
	WorstPick float64
	// Errors holds every scored error (for CDFs).
	Errors []float64
}

// Generalize trains a full-event ANN bank on the complete NPB suite, then
// evaluates it on `apps` randomly generated applications.
func (s *Suite) Generalize(apps int) (*GeneralizeResult, error) {
	if apps < 1 {
		return nil, fmt.Errorf("exp: need at least one app")
	}
	collector := s.newCollector()
	collector.Repetitions = s.Opts.Repetitions
	suiteSamples, err := collector.CollectSuite(s.Benches)
	if err != nil {
		return nil, err
	}
	var train []dataset.PhaseSample
	for _, b := range s.Benches {
		train = append(train, suiteSamples[b.Name]...)
	}
	targets := s.Targets()
	bank, err := core.TrainANNBank(train, []int{12}, targets, s.Opts.Folds, s.Opts.ANN)
	if err != nil {
		return nil, err
	}
	pred := bank.Predictors()[0]

	pop, err := workload.GeneratePopulation("RAND", apps, workload.DefaultGenConfig(s.Opts.Seed+777))
	if err != nil {
		return nil, err
	}
	res := &GeneralizeResult{Apps: apps}
	hist := metrics.NewRankHistogram(len(s.Configs))
	sampleName := s.SampleConfig().Name
	for _, b := range pop {
		collector := s.newCollector()
		collector.Repetitions = 1
		samples, err := collector.CollectBenchmark(b)
		if err != nil {
			return nil, err
		}
		for pi, ps := range samples {
			preds, err := pred.PredictIPC(ps.Rates)
			if err != nil {
				return nil, err
			}
			for _, tgt := range targets {
				res.Errors = append(res.Errors,
					metrics.RelativeError(ps.MeasuredIPC[tgt], preds[tgt]))
			}
			bestName := sampleName
			bestIPC := ps.Rates[pmu.Instructions]
			for _, tgt := range targets {
				if preds[tgt] > bestIPC {
					bestIPC, bestName = preds[tgt], tgt
				}
			}
			ranking := core.RankConfigsByTime(&b.Phases[pi], b.Idiosyncrasy, s.Truth, s.Configs)
			hist.Add(ranking, bestName)
		}
	}
	res.MedianErr, err = metrics.Median(res.Errors)
	if err != nil {
		return nil, err
	}
	res.Rank1 = hist.Fraction(1)
	res.WorstPick = hist.Fraction(len(s.Configs))
	return res, nil
}

// Render prints the generalisation summary.
func (r *GeneralizeResult) Render(w io.Writer) {
	report.Section(w, fmt.Sprintf("Generalization: NPB-trained model on %d random unseen applications", r.Apps))
	report.KV(w, "median prediction error", "%.1f%%", r.MedianErr*100)
	report.KV(w, "best config selected", "%.1f%%", r.Rank1*100)
	report.KV(w, "worst config selected", "%.1f%%", r.WorstPick*100)
	report.KV(w, "predictions scored", "%d", len(r.Errors))
}
