package exp

import (
	"runtime"
	"strings"
	"testing"
)

// renderEverything runs the full evaluation pipeline — leave-one-out
// training plus every figure driver — and returns the concatenated Render
// output.
func renderEverything(t *testing.T) string {
	t.Helper()
	s := newFastSuite(t)
	loo, err := s.TrainLeaveOneOut()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	f1, err := s.Fig1ExecutionTimes()
	if err != nil {
		t.Fatal(err)
	}
	f1.Render(&b)
	f3, err := s.Fig3PowerEnergy()
	if err != nil {
		t.Fatal(err)
	}
	f3.Render(&b)
	f6, f7, err := s.EvalPrediction(loo)
	if err != nil {
		t.Fatal(err)
	}
	f6.Render(&b)
	f7.Render(&b)
	f8, err := s.Fig8Throttling(loo)
	if err != nil {
		t.Fatal(err)
	}
	f8.Render(&b)
	return b.String()
}

// TestParallelPipelineDeterminism asserts the determinism contract of the
// parallel evaluation engine: training and every figure driver produce
// byte-identical Render output when the engine is pinned to one worker
// (GOMAXPROCS=1) and when it fans out across every core.
//
// The pipeline trains on the batched warm-start engine (FastOptions), so
// this covers the mini-batch GEMM pass and the shared base-model
// fine-tuning: a fixed shuffle fixes the batch partition, and per-task
// seeds fix every fold's stream, at any GOMAXPROCS.
func TestParallelPipelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the leave-one-out pipeline twice")
	}
	if opts := FastOptions(); opts.ANN.BatchSize <= 1 || opts.ANN.WarmStartEpochs <= 0 {
		t.Error("FastOptions no longer enables the batched warm-start trainer; this test must cover it")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	sequential := renderEverything(t)

	runtime.GOMAXPROCS(runtime.NumCPU())
	parallel := renderEverything(t)

	if sequential != parallel {
		sl, pl := strings.Split(sequential, "\n"), strings.Split(parallel, "\n")
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if sl[i] != pl[i] {
				t.Fatalf("output diverges at line %d:\n  GOMAXPROCS=1: %q\n  GOMAXPROCS=N: %q", i+1, sl[i], pl[i])
			}
		}
		t.Fatalf("output lengths differ: %d vs %d lines", len(sl), len(pl))
	}
}
