package exp

// Extension studies beyond the paper's figures, motivated by its
// introduction and related-work discussion:
//
//   - DVFSStudy: concurrency throttling vs frequency scaling vs the joint
//     knob (the Li & Martínez comparison, Section II);
//   - FutureScaling: how the throttling opportunity grows on hypothetical
//     many-core machines (Sections I and III);
//   - CoScheduling: using the cores ACTOR frees for system software, "even
//     in cases where power consumption is not a main concern" (Section I).

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/dvfs"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/report"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// DVFSResult holds the joint-knob study: normalised ED² per strategy.
type DVFSResult struct {
	Order []string
	// ED2 maps bench → strategy name → ED² normalised to all-cores@nominal.
	ED2 map[string]map[string]float64
}

// DVFSStudy runs the four-strategy DVFS comparison over the suite under
// the ED² objective with oracle decisions. Benchmarks are independent and
// fan out through the parallel engine; every strategy's per-phase searches
// run on the batched sweep path inside dvfs.Evaluator, and all tasks share
// the suite machine's phase-response memo (the joint space is a superset of
// both single-knob spaces, so the overlap is served from cache).
func (s *Suite) DVFSStudy() (*DVFSResult, error) {
	ev, err := dvfs.NewEvaluator(s.Truth, s.Power)
	if err != nil {
		return nil, err
	}
	rows, err := parallel.Map(len(s.Benches), func(i int) (map[string]float64, error) {
		b := s.Benches[i]
		study, err := ev.Study(b, s.Configs, dvfs.DefaultLevels(), dvfs.MinED2)
		if err != nil {
			return nil, fmt.Errorf("dvfs study %s: %w", b.Name, err)
		}
		base := study[dvfs.AllCoresNominal].ED2
		row := make(map[string]float64, 4)
		for _, st := range []dvfs.Strategy{dvfs.AllCoresNominal, dvfs.ConcurrencyOnly, dvfs.DVFSOnly, dvfs.Joint} {
			row[st.String()] = study[st].ED2 / base
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &DVFSResult{ED2: make(map[string]map[string]float64, len(s.Benches))}
	for bi, b := range s.Benches {
		res.ED2[b.Name] = rows[bi]
		res.Order = append(res.Order, b.Name)
	}
	return res, nil
}

// Render prints the normalised ED² table.
func (r *DVFSResult) Render(w io.Writer) {
	report.Section(w, "Extension: concurrency throttling vs DVFS vs joint (oracle, ED2 objective)")
	cols := []string{"all-cores@nominal", "concurrency-only", "dvfs-only", "joint"}
	t := report.NewTable("normalized ED2 (lower is better)", append([]string{"bench"}, cols...)...)
	sums := make([]float64, len(cols))
	for _, b := range r.Order {
		cells := []string{b}
		for i, c := range cols {
			v := r.ED2[b][c]
			sums[i] += v
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		t.AddRow(cells...)
	}
	avg := []string{"AVG"}
	for _, s := range sums {
		avg = append(avg, fmt.Sprintf("%.3f", s/float64(len(r.Order))))
	}
	t.AddRow(avg...)
	t.Render(w)
}

// FutureScalingResult quantifies the widening gap between "use all cores"
// and the best placement as core counts grow.
type FutureScalingResult struct {
	Cores []int
	// Gain[coreIdx][bench] is 1 − bestTime/allCoresTime for the whole
	// benchmark with oracle per-phase placements at each scale.
	Gain map[int]map[string]float64
	// Placements[coreIdx] is the size of the configuration space.
	Placements map[int]int
}

// FutureScaling evaluates the suite on synthetic 4-, 8-, 16- and 32-core
// machines: the paper's prediction that "future generation systems with
// many cores will be further prone to scalability limitations".
//
// The (core count × benchmark) cells are independent and fan out through
// the parallel engine with index-addressed results; each cell sweeps every
// phase across the scale's full placement set in one RunPhaseSweep call, so
// the per-phase invariants (miss-rate tables, scratch, the all-cores
// evaluation the gain is normalised against) are solved once per phase
// instead of once per placement. The machine model is pure, so the table is
// bit-identical to the sequential loop at any GOMAXPROCS.
func (s *Suite) FutureScaling() (*FutureScalingResult, error) {
	res := &FutureScalingResult{
		Cores:      []int{4, 8, 16, 32},
		Gain:       map[int]map[string]float64{},
		Placements: map[int]int{},
	}
	type scale struct {
		m          *machine.Machine
		placements []topology.Placement
	}
	scales := make([]scale, len(res.Cores))
	for si, cores := range res.Cores {
		topo := topology.Manycore(cores, 2)
		m, err := machine.New(topo)
		if err != nil {
			return nil, err
		}
		scales[si] = scale{m: m, placements: topology.EnumeratePlacements(topo)}
		res.Placements[cores] = len(scales[si].placements)
	}
	nb := len(s.Benches)
	gains, err := parallel.Map(len(res.Cores)*nb, func(i int) (float64, error) {
		sc, b := scales[i/nb], s.Benches[i%nb]
		// EnumeratePlacements orders by thread count: the last placement
		// is the all-cores configuration the paper normalises against.
		dst := make([]machine.Result, len(sc.placements))
		var tAll, tBest float64
		for pi := range b.Phases {
			sc.m.RunPhaseSweep(&b.Phases[pi], b.Idiosyncrasy, sc.placements, dst)
			ta := dst[len(dst)-1].TimeSec
			tb := ta
			for ri := range dst {
				if tt := dst[ri].TimeSec; tt < tb {
					tb = tt
				}
			}
			tAll += ta
			tBest += tb
		}
		return 1 - tBest/tAll, nil
	})
	if err != nil {
		return nil, err
	}
	for si, cores := range res.Cores {
		row := map[string]float64{}
		for bi, b := range s.Benches {
			row[b.Name] = gains[si*nb+bi]
		}
		res.Gain[cores] = row
	}
	return res, nil
}

// AverageGain returns the mean throttling gain across the suite at the
// given core count.
func (r *FutureScalingResult) AverageGain(cores int) float64 {
	row := r.Gain[cores]
	var sum float64
	for _, v := range row {
		sum += v
	}
	return sum / float64(len(row))
}

// Render prints the scaling table.
func (r *FutureScalingResult) Render(w io.Writer) {
	report.Section(w, "Extension: throttling opportunity on future many-core machines")
	headers := []string{"cores", "configs"}
	var benchNames []string
	for name := range r.Gain[r.Cores[0]] {
		benchNames = append(benchNames, name)
	}
	// Stable ordering.
	benchNames = sortStrings(benchNames)
	headers = append(headers, benchNames...)
	headers = append(headers, "AVG")
	t := report.NewTable("oracle per-phase throttling gain vs all cores (time saved)", headers...)
	for _, cores := range r.Cores {
		cells := []string{fmt.Sprintf("%d", cores), fmt.Sprintf("%d", r.Placements[cores])}
		for _, b := range benchNames {
			cells = append(cells, fmt.Sprintf("%4.1f%%", 100*r.Gain[cores][b]))
		}
		cells = append(cells, fmt.Sprintf("%4.1f%%", 100*r.AverageGain(cores)))
		t.AddRow(cells...)
	}
	t.Render(w)
}

// CoSchedulingResult quantifies the paper's system-software motivation:
// cores freed by throttling can host background work, shrinking total
// makespan even when the foreground application alone gains little.
type CoSchedulingResult struct {
	Order []string
	// Default is the time-sliced makespan: benchmark on all cores, then
	// the background task on all cores.
	Default map[string]float64
	// Throttled is the co-scheduled makespan: benchmark on its best
	// placement while the background task runs on the freed cores.
	Throttled map[string]float64
}

// backgroundTask models a system daemon / virtualisation companion: a
// moderately memory-light service workload with a fixed work budget.
func backgroundTask() workload.PhaseProfile {
	return workload.PhaseProfile{
		Name: "sysdaemon", Fingerprint: "SYS/daemon",
		Instructions: 2e10, BaseIPC: 1.2,
		MemRefsPerInstr: 0.3, LoadFraction: 0.7, L1MissRate: 0.06,
		WorkingSetBytes: 512 * 1024, SharingFactor: 0.2, LocalityExp: 1,
		ColdMissRate: 0.1, MLP: 2, ParallelFraction: 0.95,
		SyncCycles: 1e5, BranchRate: 0.12, BranchMissRate: 0.03,
		TLBMissRate: 0.001, ChunkGranularity: 64, PrefetchFriendly: 0.5,
	}
}

// CoScheduling compares makespans with and without throttling-enabled
// co-scheduling, using oracle global placements for the foreground
// benchmark. Benchmarks fan out through the parallel engine into
// index-addressed slots; the oracle searches inside run on the batched
// sweep path (core.GlobalOptimal), and the daemon executions share the
// suite's phase memo across tasks.
func (s *Suite) CoScheduling() (*CoSchedulingResult, error) {
	daemon := backgroundTask()
	allCores := s.Configs[len(s.Configs)-1]
	type cell struct{ def, throttled float64 }
	cells, err := parallel.Map(len(s.Benches), func(i int) (cell, error) {
		b := s.Benches[i]
		best, times, err := core.GlobalOptimal(b, s.Truth, s.Configs)
		if err != nil {
			return cell{}, err
		}
		// Default: benchmark on all cores, then the daemon on all cores.
		daemonAll := s.Truth.RunPhase(&daemon, 0, allCores).TimeSec
		def := times[allCores.Name] + daemonAll

		// Throttled: benchmark on its best placement; daemon on the
		// complementary cores (if any). With no free cores the daemon
		// still runs afterwards.
		free := complement(s.Truth.Topo, best)
		tb := times[best.Name]
		if free.Threads() == 0 {
			return cell{def, tb + daemonAll}, nil
		}
		daemonFree := s.Truth.RunPhase(&daemon, 0, free).TimeSec
		makespan := tb
		if daemonFree > makespan {
			makespan = daemonFree
		}
		// Any daemon remainder after the benchmark finishes spreads to
		// all cores; approximate by the max above plus a small tail when
		// the daemon dominated (already covered by max).
		return cell{def, makespan}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &CoSchedulingResult{
		Default:   map[string]float64{},
		Throttled: map[string]float64{},
	}
	for bi, b := range s.Benches {
		res.Default[b.Name] = cells[bi].def
		res.Throttled[b.Name] = cells[bi].throttled
		res.Order = append(res.Order, b.Name)
	}
	return res, nil
}

// complement builds a placement on the cores the given placement leaves
// idle.
func complement(topo *topology.Topology, pl topology.Placement) topology.Placement {
	used := map[topology.CoreID]bool{}
	for _, c := range pl.Cores {
		used[c] = true
	}
	var free []topology.CoreID
	for c := topology.CoreID(0); int(c) < topo.NumCores; c++ {
		if !used[c] {
			free = append(free, c)
		}
	}
	return topology.Placement{Name: "free", Cores: free}
}

// Render prints the makespan comparison.
func (r *CoSchedulingResult) Render(w io.Writer) {
	report.Section(w, "Extension: co-scheduling system software on throttled-away cores")
	t := report.NewTable("makespan of benchmark + background daemon (seconds)",
		"bench", "time-sliced", "co-scheduled", "saved")
	var sumSaved float64
	for _, b := range r.Order {
		d, c := r.Default[b], r.Throttled[b]
		saved := 1 - c/d
		sumSaved += saved
		t.AddRow(b, fmt.Sprintf("%.1f", d), fmt.Sprintf("%.1f", c), fmt.Sprintf("%4.1f%%", 100*saved))
	}
	t.AddRow("AVG", "", "", fmt.Sprintf("%4.1f%%", 100*sumSaved/float64(len(r.Order))))
	t.Render(w)
}

func sortStrings(in []string) []string {
	out := append([]string(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
