package exp

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/metrics"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/report"
)

// TargetConfigs are the configurations the models predict on the paper
// platform; the sampling configuration (4) is observed directly during the
// online sample period. Suites on other topologies derive their targets
// from the active configuration space (Suite.Targets).
var TargetConfigs = []string{"1", "2a", "2b", "3"}

// LOOModels holds everything the prediction experiments share: the
// collected counter samples and one leave-one-out predictor bank per
// benchmark (each trained without ever seeing its benchmark's data).
type LOOModels struct {
	// SuiteSamples maps benchmark name → collected phase samples.
	SuiteSamples map[string][]dataset.PhaseSample
	// Banks maps benchmark name → the predictor bank trained with that
	// benchmark excluded.
	Banks map[string]*core.Bank
	// EventCounts maps benchmark name → the feature-set size its
	// sampling budget allows (12 for long-running codes; reduced for
	// FT, IS, MG).
	EventCounts map[string]int
}

// TrainLeaveOneOut collects counter samples for the whole suite and trains
// one ANN predictor bank per benchmark under the paper's leave-one-out
// protocol. This is the expensive step shared by Figs. 6, 7 and 8.
//
// Both stages run on the parallel engine: collection fans out across
// (benchmark × phase × repetition) with per-task noise streams, and
// training fans out across (held-out benchmark × target configuration ×
// fold). Per-task seeds derive from (Options.Seed, task key), so the result
// is bit-identical at any GOMAXPROCS.
func (s *Suite) TrainLeaveOneOut() (*LOOModels, error) {
	collector := s.newCollector()
	collector.Repetitions = s.Opts.Repetitions
	collector.NoiseBase = s.noiseBase.Fork("collect")
	suiteSamples, err := collector.CollectSuite(s.Benches)
	if err != nil {
		return nil, err
	}
	out := &LOOModels{
		SuiteSamples: suiteSamples,
		Banks:        make(map[string]*core.Bank, len(s.Benches)),
		EventCounts:  make(map[string]int, len(s.Benches)),
	}
	type looBank struct {
		bank       *core.Bank
		eventCount int
	}
	targets := s.Targets()
	banks, err := parallel.Map(len(s.Benches), func(i int) (looBank, error) {
		b := s.Benches[i]
		budget := pmu.SamplingBudget(b.Iterations, 0.20)
		events := pmu.ReducedEventSet(budget)
		train := dataset.LeaveOneOut(suiteSamples, b.Name)
		cfg := s.Opts.ANN
		cfg.Seed = parallel.SeedFor(s.Opts.Seed, "loo/"+b.Name)
		bank, err := core.TrainANNBank(train, []int{len(events)}, targets, s.Opts.Folds, cfg)
		if err != nil {
			return looBank{}, fmt.Errorf("leave-one-out training for %s: %w", b.Name, err)
		}
		return looBank{bank: bank, eventCount: len(events)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range s.Benches {
		out.Banks[b.Name] = banks[i].bank
		out.EventCounts[b.Name] = banks[i].eventCount
	}
	return out, nil
}

// Fig6Result is the prediction-error distribution (paper Fig. 6).
type Fig6Result struct {
	// Errors are relative errors |(obs−pred)/obs| over every
	// (phase sample, target configuration) prediction.
	Errors []float64
	// MedianErr is the distribution median (paper: 9.1%).
	MedianErr float64
	// FracUnder5 is the share of predictions with error < 5%
	// (paper: 29.2%).
	FracUnder5 float64
	// CDF samples the distribution at 5%-spaced error levels (Fig. 6's
	// x axis).
	CDF []metrics.CDFPoint
}

// Fig7Result is the configuration-selection accuracy (paper Fig. 7).
type Fig7Result struct {
	// Hist buckets phases by the oracle rank of the configuration the
	// predictor selects (rank 1 = true best of the 5 configurations).
	Hist *metrics.RankHistogram
	// PerBench maps benchmark → selected configuration per phase.
	PerBench map[string][]string
}

// benchEval is one benchmark's share of the Fig. 6/7 evaluation, computed
// independently so benchmarks can fan out.
type benchEval struct {
	errors     []float64
	selections []string   // per-phase selected config (Fig. 7 + PerBench)
	rankings   [][]string // per-phase oracle ranking
}

// EvalPrediction runs the leave-one-out accuracy evaluation behind Figs. 6
// and 7 using previously trained models. Benchmarks are scored in parallel
// and merged in suite order, so the result is identical to a sequential
// evaluation.
func (s *Suite) EvalPrediction(loo *LOOModels) (*Fig6Result, *Fig7Result, error) {
	f6 := &Fig6Result{}
	f7 := &Fig7Result{
		Hist:     metrics.NewRankHistogram(len(s.Configs)),
		PerBench: make(map[string][]string, len(s.Benches)),
	}
	targets := s.Targets()
	sampleName := s.SampleConfig().Name
	evals, err := parallel.Map(len(s.Benches), func(i int) (benchEval, error) {
		b := s.Benches[i]
		var ev benchEval
		bank := loo.Banks[b.Name]
		budget := pmu.SamplingBudget(b.Iterations, 0.20)
		pred := bank.Select(budget, 2)

		samples := loo.SuiteSamples[b.Name]
		// Group the repetitions by phase, preserving order.
		byPhase := make(map[string][]dataset.PhaseSample)
		var phaseOrder []string
		for _, ps := range samples {
			if _, seen := byPhase[ps.Phase]; !seen {
				phaseOrder = append(phaseOrder, ps.Phase)
			}
			byPhase[ps.Phase] = append(byPhase[ps.Phase], ps)
		}

		for pi, phaseName := range phaseOrder {
			reps := byPhase[phaseName]
			// Fig. 6: accumulate per-target errors over every repetition.
			for _, ps := range reps {
				preds, err := pred.PredictIPC(ps.Rates)
				if err != nil {
					return benchEval{}, err
				}
				for _, tgt := range targets {
					ev.errors = append(ev.errors,
						metrics.RelativeError(ps.MeasuredIPC[tgt], preds[tgt]))
				}
			}
			// Fig. 7: one selection per phase, from the first repetition
			// (the runtime's single sampling pass).
			ps := reps[0]
			preds, err := pred.PredictIPC(ps.Rates)
			if err != nil {
				return benchEval{}, err
			}
			bestName := sampleName
			bestIPC := ps.Rates[pmu.Instructions]
			for _, tgt := range targets {
				if preds[tgt] > bestIPC {
					bestIPC, bestName = preds[tgt], tgt
				}
			}
			ev.selections = append(ev.selections, bestName)
			ev.rankings = append(ev.rankings,
				core.RankConfigsByTime(&b.Phases[pi], b.Idiosyncrasy, s.Truth, s.Configs))
		}
		return ev, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, b := range s.Benches {
		ev := evals[i]
		f6.Errors = append(f6.Errors, ev.errors...)
		for pi, sel := range ev.selections {
			f7.Hist.Add(ev.rankings[pi], sel)
		}
		f7.PerBench[b.Name] = ev.selections
	}

	f6.MedianErr, err = metrics.Median(f6.Errors)
	if err != nil {
		return nil, nil, err
	}
	f6.FracUnder5 = metrics.FractionBelow(f6.Errors, 0.05)
	levels := make([]float64, 0, 21)
	for l := 0.0; l <= 1.0001; l += 0.05 {
		levels = append(levels, l)
	}
	f6.CDF = metrics.CDF(f6.Errors, levels)
	return f6, f7, nil
}

// Render prints the error CDF and headline accuracy numbers.
func (r *Fig6Result) Render(w io.Writer) {
	report.Section(w, "Figure 6: cumulative distribution of IPC prediction error (leave-one-out)")
	t := report.NewTable("", "error ≤", "% of predictions")
	for _, pt := range r.CDF {
		t.AddRow(fmt.Sprintf("%3.0f%%", pt.Value*100), fmt.Sprintf("%5.1f", pt.Fraction*100))
	}
	t.Render(w)
	report.KV(w, "median prediction error (paper 9.1%)", "%.1f%%", r.MedianErr*100)
	report.KV(w, "predictions with error < 5% (paper 29.2%)", "%.1f%%", r.FracUnder5*100)
	report.KV(w, "predictions scored", "%d", len(r.Errors))
}

// Render prints the rank-selection histogram.
func (r *Fig7Result) Render(w io.Writer) {
	report.Section(w, "Figure 7: oracle rank of the configuration selected per phase")
	t := report.NewTable("", "selected rank", "% of phases")
	for rank := 1; rank <= len(r.Hist.Counts); rank++ {
		t.AddRow(fmt.Sprintf("%d", rank), fmt.Sprintf("%5.1f", r.Hist.Fraction(rank)*100))
	}
	t.Render(w)
	report.KV(w, "best config selected (paper 59.3%)", "%.1f%%", r.Hist.Fraction(1)*100)
	report.KV(w, "second best selected (paper 28.8%)", "%.1f%%", r.Hist.Fraction(2)*100)
	worst := len(r.Hist.Counts)
	report.KV(w, "worst config selected (paper 0%)", "%.1f%%", r.Hist.Fraction(worst)*100)
	report.KV(w, "phases scored", "%d", r.Hist.Total)
}
