package exp

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/report"
	"github.com/greenhpc/actor/internal/stats"
)

// RobustnessResult reports how the reproduction's headline numbers vary
// across experiment seeds — point estimates become intervals.
type RobustnessResult struct {
	Seeds []int64
	// MedianErr, Rank1, ED2Saving hold the per-seed values of the three
	// headline metrics.
	MedianErr, Rank1, ED2Saving []float64
}

// Robustness re-runs the leave-one-out evaluation across seeds. Fidelity
// follows opts (pass FastOptions() for quick runs); opts.Seed is ignored in
// favour of the explicit list.
func Robustness(opts Options, seeds []int64) (*RobustnessResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("exp: no seeds")
	}
	res := &RobustnessResult{Seeds: seeds}
	for _, seed := range seeds {
		o := opts
		o.Seed = seed
		s, err := NewSuite(o)
		if err != nil {
			return nil, err
		}
		loo, err := s.TrainLeaveOneOut()
		if err != nil {
			return nil, err
		}
		f6, f7, err := s.EvalPrediction(loo)
		if err != nil {
			return nil, err
		}
		f8, err := s.Fig8Throttling(loo)
		if err != nil {
			return nil, err
		}
		res.MedianErr = append(res.MedianErr, f6.MedianErr)
		res.Rank1 = append(res.Rank1, f7.Hist.Fraction(1))
		res.ED2Saving = append(res.ED2Saving, 1-f8.AverageNormalized("Prediction", MetricED2))
	}
	return res, nil
}

// Render prints mean ± 95% CI for each headline metric.
func (r *RobustnessResult) Render(w io.Writer) {
	report.Section(w, fmt.Sprintf("Robustness across %d seeds (mean ± 95%% CI)", len(r.Seeds)))
	line := func(name string, vals []float64, paper float64) {
		mean, hw, err := stats.MeanCI(vals, 1.96)
		if err != nil {
			fmt.Fprintf(w, "  %s: error: %v\n", name, err)
			return
		}
		report.KV(w, fmt.Sprintf("%s (paper %.1f%%)", name, paper*100),
			"%.1f%% ± %.1f%%", mean*100, hw*100)
	}
	line("median prediction error", r.MedianErr, 0.091)
	line("rank-1 selection rate", r.Rank1, 0.593)
	line("prediction ED2 saving", r.ED2Saving, 0.172)
}
