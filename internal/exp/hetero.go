package exp

// HeteroScaling extends FutureScaling to the heterogeneous machines the
// ROADMAP's north star asks about: big/little parts at 64–128 cores, built
// from compact topology descriptors (topology.ParseDesc). Where
// FutureScaling asks "how much does throttling gain as homogeneous core
// counts grow", HeteroScaling asks the sharper question "how much does
// *placement-aware* throttling gain when the cores are not interchangeable"
// — on a big/little part the all-cores baseline drags every phase onto the
// little cores, so the oracle's win combines thread-count throttling with
// class selection.

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/report"
	"github.com/greenhpc/actor/internal/topology"
)

// HeteroScenario names one synthetic machine by topology descriptor.
type HeteroScenario struct {
	// Name labels the scenario in reports.
	Name string
	// Desc is the compact topology descriptor (see topology.ParseDesc).
	Desc string
}

// DefaultHeteroScenarios spans 64 to 128 cores with a growing little-core
// share: a homogeneous 64-core baseline, then big/little mixes up to the
// 128-core part the ROADMAP names.
func DefaultHeteroScenarios() []HeteroScenario {
	return []HeteroScenario{
		{Name: "64 big", Desc: "16x4"},
		{Name: "48b+16L", Desc: "12x4+8x2:little"},
		{Name: "64b+32L", Desc: "16x4+16x2:little"},
		{Name: "64b+64L", Desc: "16x4+32x2:little"},
	}
}

// HeteroScalingResult quantifies the oracle throttling gain on each
// scenario machine.
type HeteroScalingResult struct {
	Scenarios []HeteroScenario
	// Cores and Placements map scenario name → machine size and candidate
	// count.
	Cores, Placements map[string]int
	// Gain[scenario][bench] is 1 − bestTime/allCoresTime with oracle
	// per-phase placements.
	Gain map[string]map[string]float64
}

// HeteroScaling evaluates the suite's benchmarks on the given scenarios
// (DefaultHeteroScenarios when nil). Candidates are the balanced placement
// space (topology.EnumerateBalancedFunc): per-family thread counts spread
// evenly across each family's L2 groups — the schedules a runtime would
// actually choose, and the space that stays tractable at 128 cores where
// the full occupancy-multiset enumeration has millions of members.
//
// The (scenario × benchmark) cells are independent and fan out through the
// parallel engine; each cell sweeps every phase across the scenario's full
// candidate set in one RunPhaseSweep call. The machine model is pure, so
// the table is bit-identical at any GOMAXPROCS.
func (s *Suite) HeteroScaling(scenarios []HeteroScenario) (*HeteroScalingResult, error) {
	if scenarios == nil {
		scenarios = DefaultHeteroScenarios()
	}
	res := &HeteroScalingResult{
		Scenarios:  scenarios,
		Cores:      map[string]int{},
		Placements: map[string]int{},
		Gain:       map[string]map[string]float64{},
	}
	type scale struct {
		m          *machine.Machine
		placements []topology.Placement
	}
	scales := make([]scale, len(scenarios))
	for si, sc := range scenarios {
		topo, err := topology.ParseDesc(sc.Desc)
		if err != nil {
			return nil, fmt.Errorf("hetero scenario %q: %w", sc.Name, err)
		}
		m, err := machine.New(topo)
		if err != nil {
			return nil, fmt.Errorf("hetero scenario %q: %w", sc.Name, err)
		}
		scales[si] = scale{m: m, placements: topology.BalancedPlacements(topo)}
		res.Cores[sc.Name] = topo.NumCores
		res.Placements[sc.Name] = len(scales[si].placements)
	}
	nb := len(s.Benches)
	gains, err := parallel.Map(len(scenarios)*nb, func(i int) (float64, error) {
		sc, b := scales[i/nb], s.Benches[i%nb]
		// The balanced enumeration orders by thread count: the last
		// placement occupies every core of every family — the "use the
		// whole machine" default the gain is normalised against.
		dst := make([]machine.Result, len(sc.placements))
		var tAll, tBest float64
		for pi := range b.Phases {
			sc.m.RunPhaseSweep(&b.Phases[pi], b.Idiosyncrasy, sc.placements, dst)
			ta := dst[len(dst)-1].TimeSec
			tb := ta
			for ri := range dst {
				if tt := dst[ri].TimeSec; tt < tb {
					tb = tt
				}
			}
			tAll += ta
			tBest += tb
		}
		return 1 - tBest/tAll, nil
	})
	if err != nil {
		return nil, err
	}
	for si, sc := range scenarios {
		row := map[string]float64{}
		for bi, b := range s.Benches {
			row[b.Name] = gains[si*nb+bi]
		}
		res.Gain[sc.Name] = row
	}
	return res, nil
}

// AverageGain returns the mean gain across the suite for a scenario.
func (r *HeteroScalingResult) AverageGain(scenario string) float64 {
	row := r.Gain[scenario]
	var sum float64
	for _, v := range row {
		sum += v
	}
	return sum / float64(len(row))
}

// Render prints the hetero-scaling table.
func (r *HeteroScalingResult) Render(w io.Writer) {
	report.Section(w, "Extension: throttling opportunity on heterogeneous big/little machines")
	headers := []string{"scenario", "cores", "configs"}
	var benchNames []string
	for name := range r.Gain[r.Scenarios[0].Name] {
		benchNames = append(benchNames, name)
	}
	benchNames = sortStrings(benchNames)
	headers = append(headers, benchNames...)
	headers = append(headers, "AVG")
	t := report.NewTable("oracle per-phase throttling gain vs all cores (time saved)", headers...)
	for _, sc := range r.Scenarios {
		cells := []string{sc.Name,
			fmt.Sprintf("%d", r.Cores[sc.Name]),
			fmt.Sprintf("%d", r.Placements[sc.Name])}
		for _, b := range benchNames {
			cells = append(cells, fmt.Sprintf("%4.1f%%", 100*r.Gain[sc.Name][b]))
		}
		cells = append(cells, fmt.Sprintf("%4.1f%%", 100*r.AverageGain(sc.Name)))
		t.AddRow(cells...)
	}
	t.Render(w)
}
