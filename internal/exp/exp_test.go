package exp

import (
	"io"
	"math"
	"strings"
	"testing"
)

// newFastSuite builds the suite with reduced-fidelity training options.
func newFastSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFig1ExecutionTimes(t *testing.T) {
	s := newFastSuite(t)
	r, err := s.Fig1ExecutionTimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Order) != 8 {
		t.Fatalf("got %d benchmarks", len(r.Order))
	}
	// Paper shapes.
	if sp := r.Speedup("BT", "4"); sp < 2.2 || sp > 3.2 {
		t.Errorf("BT speedup(4) = %.2f, paper 2.69", sp)
	}
	if sp := r.Speedup("IS", "4"); sp > 0.85 {
		t.Errorf("IS speedup(4) = %.2f, paper 0.60 (must lose performance)", sp)
	}
	if r.TimeSec["MG"]["2b"] >= r.TimeSec["MG"]["4"] {
		t.Error("MG must be fastest on 2b")
	}
	out := render(r.Render)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "BT") {
		t.Error("render incomplete")
	}
}

func TestFig2PhaseIPC(t *testing.T) {
	s := newFastSuite(t)
	r, err := s.Fig2PhaseIPC("SP")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) != 12 {
		t.Fatalf("SP has %d phases in Fig 2", len(r.Phases))
	}
	lo, hi := r.MaxIPCRange()
	if lo > 0.6 || hi < 3.5 {
		t.Errorf("phase IPC range %.2f..%.2f too narrow (paper 0.32..4.64)", lo, hi)
	}
	best := r.BestConfigs()
	distinct := map[string]bool{}
	for _, b := range best {
		distinct[b] = true
	}
	if len(distinct) < 2 {
		t.Error("no per-phase heterogeneity in best configurations")
	}
	if _, err := s.Fig2PhaseIPC("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	out := render(r.Render)
	if !strings.Contains(out, "Figure 2") {
		t.Error("render incomplete")
	}
}

func TestFig3PowerEnergy(t *testing.T) {
	s := newFastSuite(t)
	r, err := s.Fig3PowerEnergy()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.Order {
		for _, c := range r.Configs {
			if r.PowerW[b][c] <= 0 || r.EnergyJ[b][c] <= 0 {
				t.Errorf("%s/%s non-positive power or energy", b, c)
			}
		}
		if r.PowerW[b]["4"] < r.PowerW[b]["1"] {
			t.Errorf("%s: power decreased with more cores", b)
		}
	}
	p, e, err := r.GeoMeanNormalized("4", "1")
	if err != nil {
		t.Fatal(err)
	}
	if p < 1.05 || p > 1.25 {
		t.Errorf("geomean power ratio = %.3f, paper ≈ 1.14", p)
	}
	if e <= 0 {
		t.Errorf("geomean energy ratio = %.3f", e)
	}
	out := render(r.Render)
	if !strings.Contains(out, "Figure 3") {
		t.Error("render incomplete")
	}
}

// trainOnce caches the expensive leave-one-out training across tests in
// this package.
var cachedLOO *LOOModels
var cachedSuite *Suite

func loadLOO(t *testing.T) (*Suite, *LOOModels) {
	t.Helper()
	if cachedLOO != nil {
		return cachedSuite, cachedLOO
	}
	s := newFastSuite(t)
	loo, err := s.TrainLeaveOneOut()
	if err != nil {
		t.Fatal(err)
	}
	cachedSuite, cachedLOO = s, loo
	return s, loo
}

func TestTrainLeaveOneOut(t *testing.T) {
	s, loo := loadLOO(t)
	if len(loo.Banks) != len(s.Benches) {
		t.Fatalf("banks for %d benchmarks, want %d", len(loo.Banks), len(s.Benches))
	}
	// Short-iteration codes get reduced event sets.
	if loo.EventCounts["FT"] >= 12 || loo.EventCounts["IS"] >= 12 || loo.EventCounts["MG"] >= 12 {
		t.Errorf("short-iteration codes kept full event sets: %v", loo.EventCounts)
	}
	if loo.EventCounts["SP"] != 12 {
		t.Errorf("SP event count = %d, want 12", loo.EventCounts["SP"])
	}
}

func TestFig6And7Accuracy(t *testing.T) {
	s, loo := loadLOO(t)
	f6, f7, err := s.EvalPrediction(loo)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 6: median error in a plausible band around the paper's 9.1%.
	if f6.MedianErr < 0.03 || f6.MedianErr > 0.20 {
		t.Errorf("median prediction error = %.1f%%, paper 9.1%%", f6.MedianErr*100)
	}
	if f6.FracUnder5 < 0.10 || f6.FracUnder5 > 0.60 {
		t.Errorf("fraction under 5%% = %.1f%%, paper 29.2%%", f6.FracUnder5*100)
	}
	if len(f6.Errors) == 0 {
		t.Fatal("no predictions scored")
	}
	// CDF is monotone and ends at ~1.
	prev := -1.0
	for _, pt := range f6.CDF {
		if pt.Fraction < prev {
			t.Error("CDF not monotone")
		}
		prev = pt.Fraction
	}

	// Fig 7: 59 phases scored; best config dominates; the worst config is
	// never selected (paper: never; allow one slip).
	if f7.Hist.Total != 59 {
		t.Errorf("scored %d phases, want 59", f7.Hist.Total)
	}
	if f7.Hist.Fraction(1) < 0.45 {
		t.Errorf("rank-1 selection rate = %.1f%%, paper 59.3%%", f7.Hist.Fraction(1)*100)
	}
	if f7.Hist.Fraction(1)+f7.Hist.Fraction(2) < 0.70 {
		t.Errorf("rank-1+2 rate = %.1f%%, paper 88.1%%",
			(f7.Hist.Fraction(1)+f7.Hist.Fraction(2))*100)
	}
	worst := len(f7.Hist.Counts)
	if f7.Hist.Counts[worst-1] > 1 {
		t.Errorf("worst config selected %d times, paper: never", f7.Hist.Counts[worst-1])
	}
	out := render(f6.Render) + render(f7.Render)
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "Figure 7") {
		t.Error("render incomplete")
	}
}

func TestFig8Throttling(t *testing.T) {
	s, loo := loadLOO(t)
	r, err := s.Fig8Throttling(loo)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Order) != 8 {
		t.Fatalf("rows for %d benchmarks", len(r.Order))
	}
	// Paper headline shapes.
	predTime := r.AverageNormalized("Prediction", MetricTime)
	if predTime > 0.99 {
		t.Errorf("prediction average normalized time = %.3f; paper gains 6.5%%", predTime)
	}
	predED2 := r.AverageNormalized("Prediction", MetricED2)
	if predED2 > 0.95 || predED2 < 0.6 {
		t.Errorf("prediction average normalized ED2 = %.3f, paper 0.828", predED2)
	}
	phaseED2 := r.AverageNormalized("Phase Optimal", MetricED2)
	if phaseED2 > predED2+1e-9 {
		t.Errorf("phase optimal ED2 (%.3f) worse than prediction (%.3f)", phaseED2, predED2)
	}
	// Power is roughly unchanged (paper +1.5%): no large savings.
	predPower := r.AverageNormalized("Prediction", MetricPower)
	if math.Abs(predPower-1) > 0.06 {
		t.Errorf("prediction normalized power = %.3f; paper ≈ 1.015 (no power saved)", predPower)
	}
	// IS is the dramatic winner (paper 71.6% ED2 saving).
	if is := r.Normalized("IS", "Prediction", MetricED2); is > 0.55 {
		t.Errorf("IS prediction normalized ED2 = %.3f, paper 0.284", is)
	}
	// The 4-core baseline normalises to exactly 1 everywhere.
	for _, b := range r.Order {
		if v := r.Normalized(b, "4 Cores", MetricTime); math.Abs(v-1) > 1e-12 {
			t.Errorf("%s baseline normalization = %g", b, v)
		}
	}
	out := render(r.Render)
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "AVG") {
		t.Error("render incomplete")
	}
}

func render(f func(io.Writer)) string {
	var b strings.Builder
	f(&b)
	return b.String()
}
