// Package exp contains one driver per figure of the paper's evaluation:
//
//	Fig. 1 — execution time per benchmark × configuration
//	Fig. 2 — per-phase aggregate IPC of SP across configurations
//	Fig. 3 — power and energy per benchmark × configuration (+ geomeans)
//	Fig. 6 — CDF of leave-one-out IPC prediction error
//	Fig. 7 — oracle rank of the configuration ACTOR selects per phase
//	Fig. 8 — normalised time/power/energy/ED² of the adaptation strategies
//
// Each driver returns a structured result with a Render method producing
// the same rows/series the paper reports; cmd/actorsim and the root
// bench_test.go wrap them.
package exp

import (
	"fmt"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// Options tunes experiment fidelity (training cost vs accuracy).
type Options struct {
	// Seed drives every stochastic component (measurement noise, fold
	// shuffles, weight initialisation).
	Seed int64
	// Topology, when non-nil, replaces the paper's quad-core Xeon with an
	// arbitrary (possibly heterogeneous) machine; the configuration space
	// becomes the topology's canonical placement enumeration (balanced
	// spreads above 32 cores — see topology.EnumerateBalancedFunc) with
	// the all-cores placement as the sampling configuration. Because the
	// prediction pipeline trains one model per non-sampling configuration
	// and labels IPC at every configuration, the suite thins large spaces
	// to suiteMaxConfigs evenly spaced candidates (ends kept) — a
	// 128-core big/little part would otherwise mean thousands of ANN
	// targets and an unrunnable `accuracy` subcommand. Studies that want
	// the full space (HeteroScaling, FutureScaling) enumerate it
	// themselves. Nil keeps the paper platform and its {1, 2a, 2b, 3, 4}
	// space bit-for-bit.
	Topology *topology.Topology
	// TimeSigma and CountSigma are the machine measurement noise levels.
	TimeSigma, CountSigma float64
	// Repetitions is the number of noisy sampling passes per phase when
	// building training data.
	Repetitions int
	// Folds is the cross-validation ensemble size (10 in the paper).
	Folds int
	// ANN is the member-network training configuration.
	ANN ann.Config
}

// DefaultOptions mirrors the paper: 10-fold ensembles, moderate counter
// noise, six sampling repetitions per phase. Training runs on the batched
// warm-start engine (mini-batch GEMM passes; one base model per ensemble
// with bounded per-fold fine-tuning) — the knobs that made leave-one-out
// training the pipeline's fast path; see ann.Config and PERFORMANCE.md.
func DefaultOptions() Options {
	cfg := ann.DefaultConfig()
	cfg.BatchSize = 8
	cfg.WarmStartEpochs = 60
	return Options{
		Seed:        42,
		TimeSigma:   0.03,
		CountSigma:  0.12,
		Repetitions: 6,
		Folds:       10,
		ANN:         cfg,
	}
}

// FastOptions trades a little fidelity for speed; used by the test suite so
// the full pipeline stays runnable in seconds. Like DefaultOptions it
// enables batched warm-start training.
func FastOptions() Options {
	cfg := ann.DefaultConfig()
	cfg.MaxEpochs = 150
	cfg.Patience = 12
	cfg.BatchSize = 8
	cfg.WarmStartEpochs = 30
	return Options{
		Seed:        42,
		TimeSigma:   0.03,
		CountSigma:  0.12,
		Repetitions: 3,
		Folds:       5,
		ANN:         cfg,
	}
}

// Suite bundles the experimental platform: the quad-core Xeon model in
// noiseless (oracle) and noisy (measurement) forms, the power model, the
// configuration space and the NPB workloads.
//
// Both machines carry a shared phase-response memo (machine.WithMemo): the
// deterministic part of every (phase, placement, frequency) execution is
// computed once and reused by oracles, figure drivers and strategy replays
// alike.
type Suite struct {
	Opts    Options
	Truth   *machine.Machine
	Noisy   *machine.Machine
	Power   *power.Model
	Configs []topology.Placement
	Benches []*workload.Benchmark

	// noiseBase is the root of all per-task noise streams the parallel
	// evaluation engine forks (see internal/parallel's determinism
	// contract).
	noiseBase *noise.Source
}

// NewSuite constructs the platform used by every experiment.
func NewSuite(opts Options) (*Suite, error) {
	if err := npb.Validate(); err != nil {
		return nil, err
	}
	topo := opts.Topology
	var cfgs []topology.Placement
	if topo == nil {
		topo = topology.QuadCoreXeon()
		cfgs = topology.PaperConfigs()
	} else {
		if err := topo.Validate(); err != nil {
			return nil, err
		}
		// Full multiset enumeration up to 32 cores (the FutureScaling
		// regime); balanced spreads beyond, where the multiset space grows
		// combinatorially. Either way the trained space is capped (see
		// Options.Topology).
		if topo.NumCores <= 32 {
			cfgs = topology.EnumeratePlacements(topo)
		} else {
			cfgs = topology.BalancedPlacements(topo)
		}
		cfgs = thinPlacements(cfgs, suiteMaxConfigs)
	}
	truth, err := machine.New(topo)
	if err != nil {
		return nil, err
	}
	truth = truth.WithMemo()
	src := noise.New(opts.Seed)
	noisy := truth.WithNoise(src.Fork("machine"), opts.TimeSigma, opts.CountSigma)
	return &Suite{
		Opts:      opts,
		Truth:     truth,
		Noisy:     noisy,
		Power:     power.Default(),
		Configs:   cfgs,
		Benches:   npb.All(),
		noiseBase: src,
	}, nil
}

// paperConfigSpace reports whether a configuration-name list is the
// paper's quad-core space, gating the paper-comparison render lines. The
// tell is "2a"/"2b": enumerated placement names are purely numeric
// patterns, so a bare "4" on a custom topology (a 4-thread placement on a
// single-group machine, say) must not trigger paper comparisons.
func paperConfigSpace(names []string) bool {
	has := func(want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	return has("2a") && has("2b") && has("4")
}

// suiteMaxConfigs bounds the configuration space a suite trains and
// evaluates over on custom topologies; see Options.Topology.
const suiteMaxConfigs = 24

// thinPlacements keeps at most max placements, evenly spaced over the
// (thread-count-ordered) candidate list with both ends retained, so the
// single-thread and all-cores placements always survive.
func thinPlacements(cfgs []topology.Placement, max int) []topology.Placement {
	if len(cfgs) <= max {
		return cfgs
	}
	out := make([]topology.Placement, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, cfgs[i*(len(cfgs)-1)/(max-1)])
	}
	return out
}

// SampleConfig returns the maximal-concurrency configuration counters are
// sampled at: the last of the configuration space by the enumeration
// convention (config "4" on the paper platform).
func (s *Suite) SampleConfig() topology.Placement {
	return s.Configs[len(s.Configs)-1]
}

// Targets returns the configuration names the predictors learn: every
// configuration except the sampling one, whose IPC is observed directly.
// On the paper platform this is exactly TargetConfigs.
func (s *Suite) Targets() []string {
	out := make([]string, 0, len(s.Configs)-1)
	for _, c := range s.Configs[:len(s.Configs)-1] {
		out = append(out, c.Name)
	}
	return out
}

// Bench returns a benchmark by name.
func (s *Suite) Bench(name string) (*workload.Benchmark, error) {
	for _, b := range s.Benches {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("exp: unknown benchmark %q", name)
}

// ConfigNames returns the configuration labels in canonical order.
func (s *Suite) ConfigNames() []string {
	out := make([]string, len(s.Configs))
	for i, c := range s.Configs {
		out[i] = c.Name
	}
	return out
}

// newCollector returns a sample collector wired to the suite's machines and
// configuration space (identical to the paper defaults when
// Options.Topology is unset).
func (s *Suite) newCollector() *dataset.Collector {
	c := dataset.NewCollector(s.Noisy, s.Truth)
	c.Configs = s.Configs
	c.SampleConfig = s.SampleConfig()
	return c
}

// wholeRun is one benchmark's whole-run totals under one configuration.
type wholeRun struct {
	timeSec, avgPower, energyJ float64
}

// runWholeAcrossConfigs executes every phase of b once per iteration on
// machine m under each configuration, returning one wholeRun per config.
// Each phase is evaluated across all configurations in one RunPhaseSweep
// call; per-config accumulators consume phase results in phase order, so
// every total is bit-identical to the per-config sequential loop this
// replaces.
func (s *Suite) runWholeAcrossConfigs(b *workload.Benchmark, m *machine.Machine, cfgs []topology.Placement) []wholeRun {
	accs := make([]power.Accumulator, len(cfgs))
	dst := make([]machine.Result, len(cfgs))
	for pi := range b.Phases {
		m.RunPhaseSweep(&b.Phases[pi], b.Idiosyncrasy, cfgs, dst)
		for ci := range cfgs {
			accs[ci].Add(dst[ci].TimeSec*float64(b.Iterations), s.Power.Power(dst[ci].Activity))
		}
	}
	out := make([]wholeRun, len(cfgs))
	for ci := range cfgs {
		out[ci] = wholeRun{accs[ci].TimeSec, accs[ci].AvgPower(), accs[ci].EnergyJ}
	}
	return out
}
