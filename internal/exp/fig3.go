package exp

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/metrics"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/report"
)

// Fig3Result holds power and energy per benchmark and configuration (paper
// Fig. 3), plus the geometric-mean panel.
type Fig3Result struct {
	Configs []string
	Order   []string
	// PowerW[bench][config] is average system power; EnergyJ the total.
	PowerW  map[string]map[string]float64
	EnergyJ map[string]map[string]float64
}

// Fig3PowerEnergy reproduces Fig. 3: whole-run average power and energy per
// configuration, using the modelled Watts Up Pro meter. Benchmarks fan out
// like Fig. 1, with one RunPhaseSweep per phase covering the whole
// configuration row.
func (s *Suite) Fig3PowerEnergy() (*Fig3Result, error) {
	res := &Fig3Result{
		Configs: s.ConfigNames(),
		PowerW:  make(map[string]map[string]float64, len(s.Benches)),
		EnergyJ: make(map[string]map[string]float64, len(s.Benches)),
	}
	rows := make([][]wholeRun, len(s.Benches))
	parallel.ForEach(len(s.Benches), func(i int) {
		rows[i] = s.runWholeAcrossConfigs(s.Benches[i], s.Truth, s.Configs)
	})
	for bi, b := range s.Benches {
		pw := make(map[string]float64, len(s.Configs))
		en := make(map[string]float64, len(s.Configs))
		for ci, cfg := range s.Configs {
			pw[cfg.Name] = rows[bi][ci].avgPower
			en[cfg.Name] = rows[bi][ci].energyJ
		}
		res.PowerW[b.Name] = pw
		res.EnergyJ[b.Name] = en
		res.Order = append(res.Order, b.Name)
	}
	return res, nil
}

// GeoMeanNormalized returns the geometric mean across benchmarks of
// power and energy at cfg normalised to the reference configuration —
// Fig. 3's bottom-right panel.
func (r *Fig3Result) GeoMeanNormalized(cfg, ref string) (power, energy float64, err error) {
	var pw, en []float64
	for _, b := range r.Order {
		pw = append(pw, r.PowerW[b][cfg]/r.PowerW[b][ref])
		en = append(en, r.EnergyJ[b][cfg]/r.EnergyJ[b][ref])
	}
	power, err = metrics.GeoMean(pw)
	if err != nil {
		return 0, 0, err
	}
	energy, err = metrics.GeoMean(en)
	return power, energy, err
}

// Render prints power/energy tables and the geomean summary.
func (r *Fig3Result) Render(w io.Writer) {
	report.Section(w, "Figure 3: power (W) and energy (J) by hardware configuration")
	headers := append([]string{"bench", "metric"}, r.Configs...)
	t := report.NewTable("", headers...)
	for _, b := range r.Order {
		pw := []string{b, "power"}
		en := []string{"", "energy"}
		for _, c := range r.Configs {
			pw = append(pw, fmt.Sprintf("%.1f", r.PowerW[b][c]))
			en = append(en, fmt.Sprintf("%.0f", r.EnergyJ[b][c]))
		}
		t.AddRow(pw...)
		t.AddRow(en...)
	}
	t.Render(w)

	for _, cfg := range r.Configs[1:] {
		p, e, err := r.GeoMeanNormalized(cfg, r.Configs[0])
		if err == nil {
			report.KV(w, fmt.Sprintf("geomean normalised power/energy at %s vs 1", cfg),
				"%.3f / %.3f", p, e)
		}
	}
	// Headline scalars from §III-B — only meaningful on the paper's
	// configuration space.
	bt := r.PowerW["BT"]
	if !paperConfigSpace(r.Configs) || bt == nil || bt["1"] <= 0 || bt["4"] <= 0 {
		return
	}
	report.KV(w, "BT power ratio 4 vs 1 (paper 1.31)", "%.2f", bt["4"]/bt["1"])
	if e := r.EnergyJ["BT"]; e != nil && e["4"] > 0 {
		report.KV(w, "BT energy ratio 1 vs 4 (paper 2.04)", "%.2f", e["1"]/e["4"])
	}
	var sum float64
	for _, b := range r.Order {
		sum += r.PowerW[b]["4"] / r.PowerW[b]["1"]
	}
	report.KV(w, "suite avg power ratio 4 vs 1 (paper 1.142)", "%.3f", sum/float64(len(r.Order)))
}
