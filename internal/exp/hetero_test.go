package exp

import (
	"strings"
	"testing"

	"github.com/greenhpc/actor/internal/topology"
)

// TestHeteroScalingSmall runs the study on reduced scenarios so the full
// path (descriptor parsing, balanced enumeration, per-cell sweeps, render)
// stays covered by the fast test suite.
func TestHeteroScalingSmall(t *testing.T) {
	s := newFastSuite(t)
	scenarios := []HeteroScenario{
		{Name: "8 big", Desc: "2x4"},
		{Name: "8b+4L", Desc: "2x4+2x2:little"},
	}
	r, err := s.HeteroScaling(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores["8 big"] != 8 || r.Cores["8b+4L"] != 12 {
		t.Errorf("cores = %v", r.Cores)
	}
	for _, sc := range scenarios {
		for bench, gain := range r.Gain[sc.Name] {
			if gain < 0 || gain >= 1 {
				t.Errorf("%s/%s gain %.3f out of [0,1)", sc.Name, bench, gain)
			}
		}
		if r.Placements[sc.Name] == 0 {
			t.Errorf("%s: no placements", sc.Name)
		}
	}
	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), "8b+4L") {
		t.Error("render missing scenario row")
	}
}

// TestSuiteOnCustomTopology pins the -topology path: a suite over a
// descriptor machine derives its configuration space from the enumeration,
// keeps the all-cores placement as the sampling configuration, and runs the
// topology-generic figure drivers.
func TestSuiteOnCustomTopology(t *testing.T) {
	topo, err := topology.ParseDesc("2x2+1x2:little")
	if err != nil {
		t.Fatal(err)
	}
	opts := FastOptions()
	opts.Topology = topo
	s, err := NewSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Configs) != len(topology.EnumeratePlacements(topo)) {
		t.Errorf("configs = %d, want full enumeration", len(s.Configs))
	}
	if sc := s.SampleConfig(); sc.Threads() != topo.NumCores {
		t.Errorf("sample config %q has %d threads, want all %d", sc.Name, sc.Threads(), topo.NumCores)
	}
	if got, want := len(s.Targets()), len(s.Configs)-1; got != want {
		t.Errorf("targets = %d, want %d", got, want)
	}
	f1, err := s.Fig1ExecutionTimes()
	if err != nil {
		t.Fatal(err)
	}
	// Little-only single thread must be slower than big-only for every bench.
	for _, b := range f1.Order {
		row := f1.TimeSec[b]
		if row["1:|1"] <= row["1:1|"] {
			t.Errorf("%s: little solo (%.1f) not slower than big solo (%.1f)", b, row["1:|1"], row["1:1|"])
		}
	}
	var sb strings.Builder
	f1.Render(&sb) // must not emit the paper-comparison lines
	if strings.Contains(sb.String(), "paper 2.69") {
		t.Error("custom-topology render emitted paper-platform comparisons")
	}
}

// TestSuiteThinsHugeConfigSpaces pins the trained-space cap: a 128-core
// big/little suite must not derive thousands of ANN targets (one model
// trains per target), while keeping the single-thread and all-cores ends.
func TestSuiteThinsHugeConfigSpaces(t *testing.T) {
	topo, err := topology.ParseDesc("16x4+32x2:little")
	if err != nil {
		t.Fatal(err)
	}
	opts := FastOptions()
	opts.Topology = topo
	s, err := NewSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Configs) > suiteMaxConfigs {
		t.Errorf("suite kept %d configs on a 128-core machine, cap is %d", len(s.Configs), suiteMaxConfigs)
	}
	if s.Configs[0].Threads() != 1 {
		t.Errorf("thinning dropped the single-thread placement: %v", s.Configs[0])
	}
	if s.SampleConfig().Threads() != topo.NumCores {
		t.Errorf("thinning dropped the all-cores placement: %v", s.SampleConfig())
	}
	seen := map[string]bool{}
	for _, c := range s.Configs {
		if seen[c.Name] {
			t.Errorf("thinned space repeats %q", c.Name)
		}
		seen[c.Name] = true
	}
}

// TestDefaultSuiteUnchanged pins the paper platform against regressions
// from the topology generalization: default options still produce the
// quad-core Xeon, the {1, 2a, 2b, 3, 4} space and the paper targets.
func TestDefaultSuiteUnchanged(t *testing.T) {
	s := newFastSuite(t)
	names := s.ConfigNames()
	want := []string{"1", "2a", "2b", "3", "4"}
	if len(names) != len(want) {
		t.Fatalf("config names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("config names = %v, want %v", names, want)
		}
	}
	targets := s.Targets()
	if len(targets) != len(TargetConfigs) {
		t.Fatalf("targets = %v", targets)
	}
	for i := range TargetConfigs {
		if targets[i] != TargetConfigs[i] {
			t.Fatalf("targets = %v, want %v", targets, TargetConfigs)
		}
	}
	if s.SampleConfig().Name != "4" {
		t.Errorf("sample config = %q, want 4", s.SampleConfig().Name)
	}
}
