package exp

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/report"
)

// Fig2Result holds per-phase aggregate IPC across configurations for one
// benchmark (paper Fig. 2 shows SP).
type Fig2Result struct {
	Bench   string
	Configs []string
	Phases  []string
	// IPC[phaseIdx][configIdx] is the observed aggregate IPC.
	IPC [][]float64
}

// Fig2PhaseIPC reproduces Fig. 2: the aggregate IPC of every phase of the
// given benchmark under each threading configuration, demonstrating the
// phase heterogeneity that motivates phase-granularity adaptation.
func (s *Suite) Fig2PhaseIPC(bench string) (*Fig2Result, error) {
	b, err := s.Bench(bench)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Bench: bench, Configs: s.ConfigNames()}
	for pi := range b.Phases {
		p := &b.Phases[pi]
		res.Phases = append(res.Phases, p.Name)
		row := make([]float64, len(s.Configs))
		for ci, cfg := range s.Configs {
			row[ci] = s.Truth.RunPhase(p, b.Idiosyncrasy, cfg).AggIPC
		}
		res.IPC = append(res.IPC, row)
	}
	return res, nil
}

// MaxIPCRange returns the smallest and largest per-phase best-configuration
// IPC (the paper quotes 0.32–4.64 for SP).
func (r *Fig2Result) MaxIPCRange() (lo, hi float64) {
	lo, hi = -1, -1
	for _, row := range r.IPC {
		best := 0.0
		for _, v := range row {
			if v > best {
				best = v
			}
		}
		if lo < 0 || best < lo {
			lo = best
		}
		if best > hi {
			hi = best
		}
	}
	return lo, hi
}

// BestConfigs returns each phase's best configuration name.
func (r *Fig2Result) BestConfigs() []string {
	out := make([]string, len(r.Phases))
	for i, row := range r.IPC {
		best, bi := -1.0, 0
		for ci, v := range row {
			if v > best {
				best, bi = v, ci
			}
		}
		out[i] = r.Configs[bi]
	}
	return out
}

// Render prints the phase-IPC matrix and the heterogeneity summary.
func (r *Fig2Result) Render(w io.Writer) {
	report.Section(w, fmt.Sprintf("Figure 2: per-phase aggregate IPC of %s by configuration", r.Bench))
	headers := append([]string{"#", "phase"}, r.Configs...)
	headers = append(headers, "best")
	t := report.NewTable("", headers...)
	best := r.BestConfigs()
	for i, name := range r.Phases {
		cells := []string{fmt.Sprintf("%d", i+1), name}
		for _, v := range r.IPC[i] {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		cells = append(cells, best[i])
		t.AddRow(cells...)
	}
	t.Render(w)
	lo, hi := r.MaxIPCRange()
	report.KV(w, "per-phase best-IPC range (paper 0.32 .. 4.64)", "%.2f .. %.2f", lo, hi)
}
