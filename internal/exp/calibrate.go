package exp

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
)

// RunCalibration prints the suite's modelled scaling, power and energy
// behaviour against every quantitative target quoted in the paper — the
// tuning harness used to calibrate the npb profiles (formerly the body of
// cmd/calibrate). The report runs on the paper's quad-core Xeon platform.
func RunCalibration(w io.Writer) error {
	topo := topology.QuadCoreXeon()
	m, err := machine.New(topo)
	if err != nil {
		return err
	}
	pm := power.Default()
	cfgs, err := topology.PaperConfigsOn(topo)
	if err != nil {
		return err
	}

	type row struct {
		time, pw, en, util [5]float64
	}
	rows := map[string]*row{}

	fmt.Fprintf(w, "%-6s %8s | %7s %7s %7s %7s %7s | bus util 1/2a/2b/3/4\n", "bench", "T1(s)", "1", "2a", "2b", "3", "4")
	for _, b := range npb.All() {
		r := &row{}
		for ci, cfg := range cfgs {
			var acc power.Accumulator
			var utilT float64
			for pi := range b.Phases {
				res := m.RunPhase(&b.Phases[pi], b.Idiosyncrasy, cfg)
				acc.Add(res.TimeSec*float64(b.Iterations), pm.Power(res.Activity))
				utilT += res.Activity.BusUtilization * res.TimeSec * float64(b.Iterations)
			}
			r.time[ci] = acc.TimeSec
			r.pw[ci] = acc.AvgPower()
			r.en[ci] = acc.EnergyJ
			r.util[ci] = utilT / acc.TimeSec
		}
		rows[b.Name] = r
		fmt.Fprintf(w, "%-6s %8.1f | %7.2f %7.2f %7.2f %7.2f %7.2f | %.2f %.2f %.2f %.2f %.2f\n", b.Name, r.time[0],
			r.time[0]/r.time[0], r.time[0]/r.time[1], r.time[0]/r.time[2], r.time[0]/r.time[3], r.time[0]/r.time[4],
			r.util[0], r.util[1], r.util[2], r.util[3], r.util[4])
	}

	fmt.Fprintln(w, "\npower (W) and energy ratio (cfg4/cfg1):")
	var sumPwRatio, sumEnRatio float64
	for _, b := range npb.All() {
		r := rows[b.Name]
		fmt.Fprintf(w, "%-6s P1=%6.1f P2a=%6.1f P2b=%6.1f P3=%6.1f P4=%6.1f  P4/P1=%5.3f  E4/E1=%5.3f\n",
			b.Name, r.pw[0], r.pw[1], r.pw[2], r.pw[3], r.pw[4], r.pw[4]/r.pw[0], r.en[4]/r.en[0])
		sumPwRatio += r.pw[4] / r.pw[0]
		sumEnRatio += r.en[4] / r.en[0]
	}
	fmt.Fprintf(w, "suite avg: P4/P1=%5.3f (paper 1.142)  E4/E1=%5.3f (paper 0.993)\n", sumPwRatio/8, sumEnRatio/8)

	// Paper targets.
	fmt.Fprintln(w, "\ntargets:")
	bt, cg, mg, is := rows["BT"], rows["CG"], rows["MG"], rows["IS"]
	ft, luhp, lu, sp := rows["FT"], rows["LU-HP"], rows["LU"], rows["SP"]
	fmt.Fprintf(w, "BT  speedup4 = %.2f (paper 2.69), P4/P1 = %.2f (paper 1.31), E1/E4 = %.2f (paper 2.04)\n",
		bt.time[0]/bt.time[4], bt.pw[4]/bt.pw[0], bt.en[0]/bt.en[4])
	fmt.Fprintf(w, "scalable class avg speedup4 = %.2f (paper 2.37)\n",
		(bt.time[0]/bt.time[4]+ft.time[0]/ft.time[4]+luhp.time[0]/luhp.time[4])/3)
	fmt.Fprintf(w, "CG  speedup4 = %.2f speedup2b = %.2f (paper both 1.95)\n",
		cg.time[0]/cg.time[4], cg.time[0]/cg.time[2])
	imp := func(r *row) float64 { return r.time[2]/r.time[4] - 1 }
	fmt.Fprintf(w, "flat class 4-vs-2b improvement = %.1f%% %.1f%% %.1f%% avg %.1f%% (paper avg 7.0%%)\n",
		100*imp(cg), 100*imp(lu), 100*imp(sp), 100*(imp(cg)+imp(lu)+imp(sp))/3)
	fmt.Fprintf(w, "MG  speedup2b = %.2f (paper 1.29), speedup4 = %.2f (paper 1.11)\n",
		mg.time[0]/mg.time[2], mg.time[0]/mg.time[4])
	fmt.Fprintf(w, "IS  speedup2b = %.2f (paper 1.228), speedup4 = %.2f (paper 0.60), T2a/T2b = %.2f (paper 2.04), T4/T2b = %.2f (paper 2.04)\n",
		is.time[0]/is.time[2], is.time[0]/is.time[4], is.time[1]/is.time[2], is.time[4]/is.time[2])

	// SP per-phase IPC spread (Fig 2).
	fmt.Fprintln(w, "\nSP phase IPCs (rows: phase; cols: 1 2a 2b 3 4):")
	spb, err := npb.ByName("SP")
	if err != nil {
		return err
	}
	minMax, maxMax := 1e9, 0.0
	for pi := range spb.Phases {
		fmt.Fprintf(w, "%-12s", spb.Phases[pi].Name)
		best := 0.0
		for _, cfg := range cfgs {
			res := m.RunPhase(&spb.Phases[pi], spb.Idiosyncrasy, cfg)
			fmt.Fprintf(w, " %5.2f", res.AggIPC)
			if res.AggIPC > best {
				best = res.AggIPC
			}
		}
		fmt.Fprintln(w)
		if best < minMax {
			minMax = best
		}
		if best > maxMax {
			maxMax = best
		}
	}
	fmt.Fprintf(w, "SP max-IPC range: %.2f .. %.2f (paper 0.32 .. 4.64)\n", minMax, maxMax)
	return nil
}
