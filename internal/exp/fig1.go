package exp

import (
	"fmt"
	"io"

	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/report"
)

// Fig1Result holds execution times by benchmark and hardware configuration
// (paper Fig. 1), with the speedups and class summaries quoted in §III-A.
type Fig1Result struct {
	Configs []string
	// TimeSec[bench][config] is whole-run execution time.
	TimeSec map[string]map[string]float64
	// Order preserves the paper's benchmark ordering.
	Order []string
}

// Fig1ExecutionTimes reproduces Fig. 1: whole-application execution time on
// each of the five threading configurations, using the noiseless machine.
// Benchmarks fan out through the parallel engine; within each benchmark one
// RunPhaseSweep per phase covers the whole configuration row. The noiseless
// machine is pure, so the table is identical at any GOMAXPROCS.
func (s *Suite) Fig1ExecutionTimes() (*Fig1Result, error) {
	res := &Fig1Result{
		Configs: s.ConfigNames(),
		TimeSec: make(map[string]map[string]float64, len(s.Benches)),
	}
	rows := make([][]wholeRun, len(s.Benches))
	parallel.ForEach(len(s.Benches), func(i int) {
		rows[i] = s.runWholeAcrossConfigs(s.Benches[i], s.Truth, s.Configs)
	})
	for bi, b := range s.Benches {
		row := make(map[string]float64, len(s.Configs))
		for ci, cfg := range s.Configs {
			row[cfg.Name] = rows[bi][ci].timeSec
		}
		res.TimeSec[b.Name] = row
		res.Order = append(res.Order, b.Name)
	}
	return res, nil
}

// Speedup returns T(config 1)/T(cfg) for the benchmark.
func (r *Fig1Result) Speedup(bench, cfg string) float64 {
	row := r.TimeSec[bench]
	if row == nil || row[cfg] == 0 {
		return 0
	}
	return row[r.Configs[0]] / row[cfg]
}

// ClassAverageSpeedup averages the 4-core speedup over the given
// benchmarks (the paper's "scalable class" average of 2.37).
func (r *Fig1Result) ClassAverageSpeedup(benches []string, cfg string) float64 {
	var sum float64
	for _, b := range benches {
		sum += r.Speedup(b, cfg)
	}
	return sum / float64(len(benches))
}

// Render prints the execution-time table and headline speedups. The
// paper-comparison lines only render when the result actually carries the
// paper's configuration space (paperConfigSpace); on other topologies the
// speedup column falls back to the all-cores placement.
func (r *Fig1Result) Render(w io.Writer) {
	report.Section(w, "Figure 1: execution times by hardware configuration (seconds)")
	paper := paperConfigSpace(r.Configs)
	speedCfg := "4"
	if !paper {
		speedCfg = r.Configs[len(r.Configs)-1]
	}
	headers := append([]string{"bench"}, r.Configs...)
	headers = append(headers, "speedup("+speedCfg+")")
	t := report.NewTable("", headers...)
	for _, b := range r.Order {
		cells := []string{b}
		for _, c := range r.Configs {
			cells = append(cells, fmt.Sprintf("%.1f", r.TimeSec[b][c]))
		}
		cells = append(cells, fmt.Sprintf("%.2f", r.Speedup(b, speedCfg)))
		t.AddRow(cells...)
	}
	t.Render(w)
	if !paper {
		return
	}
	report.KV(w, "scalable class avg speedup on 4 (paper 2.37)", "%.2f",
		r.ClassAverageSpeedup([]string{"BT", "FT", "LU-HP"}, "4"))
	report.KV(w, "BT speedup on 4 (paper 2.69)", "%.2f", r.Speedup("BT", "4"))
	report.KV(w, "CG speedup on 2b / 4 (paper 1.95 / 1.95)", "%.2f / %.2f",
		r.Speedup("CG", "2b"), r.Speedup("CG", "4"))
	report.KV(w, "MG speedup on 2b / 4 (paper 1.29 / 1.11)", "%.2f / %.2f",
		r.Speedup("MG", "2b"), r.Speedup("MG", "4"))
	report.KV(w, "IS speedup on 2b / 4 (paper 1.23 / 0.60)", "%.2f / %.2f",
		r.Speedup("IS", "2b"), r.Speedup("IS", "4"))
}
