// Package stats provides the small statistical toolkit used to report
// reproduction robustness: summary statistics, normal-approximation
// confidence intervals, and bootstrap intervals for medians. The
// evaluation's headline numbers (median prediction error, ED² savings) are
// seed-dependent; internal/exp's robustness driver re-runs them across
// seeds and reports intervals instead of point estimates.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Summary holds the usual moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64 // sample standard deviation (n−1)
	Min, Max float64
}

// Summarize computes a Summary; it errors on empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s, nil
}

// MeanCI returns the mean and its normal-approximation confidence interval
// half-width at the given z (1.96 ≈ 95 %).
func MeanCI(xs []float64, z float64) (mean, halfWidth float64, err error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, 0, err
	}
	if s.N < 2 {
		return s.Mean, math.Inf(1), nil
	}
	return s.Mean, z * s.StdDev / math.Sqrt(float64(s.N)), nil
}

// BootstrapMedianCI returns the sample median and a percentile-bootstrap
// confidence interval [lo, hi] at the given confidence level (e.g. 0.95),
// using resamples drawn from the seeded generator.
func BootstrapMedianCI(xs []float64, resamples int, level float64, seed int64) (median, lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, 0, errors.New("stats: empty sample")
	}
	if resamples < 10 {
		return 0, 0, 0, errors.New("stats: need at least 10 resamples")
	}
	if level <= 0 || level >= 1 {
		return 0, 0, 0, errors.New("stats: confidence level out of (0,1)")
	}
	median = medianOf(xs)
	rng := rand.New(rand.NewSource(seed))
	boots := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for b := 0; b < resamples; b++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		boots[b] = medianOf(buf)
	}
	sort.Float64s(boots)
	alpha := (1 - level) / 2
	lo = quantileSorted(boots, alpha)
	hi = quantileSorted(boots, 1-alpha)
	return median, lo, hi, nil
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// AcrossSeeds evaluates f at each seed and returns the collected values —
// the helper behind robustness reporting.
func AcrossSeeds(seeds []int64, f func(seed int64) (float64, error)) ([]float64, error) {
	if len(seeds) == 0 {
		return nil, errors.New("stats: no seeds")
	}
	out := make([]float64, 0, len(seeds))
	for _, s := range seeds {
		v, err := f(s)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
