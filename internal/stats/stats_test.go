package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", s.StdDev, want)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty summary accepted")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil || s.StdDev != 0 || s.Mean != 7 {
		t.Errorf("single-sample summary = %+v (%v)", s, err)
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw, err := MeanCI([]float64{10, 12, 8, 10}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 10 {
		t.Errorf("mean = %g", mean)
	}
	if hw <= 0 || hw > 5 {
		t.Errorf("half width = %g", hw)
	}
	// Single sample: infinite interval, not an error.
	_, hw, err = MeanCI([]float64{1}, 1.96)
	if err != nil || !math.IsInf(hw, 1) {
		t.Errorf("single-sample CI = %g (%v)", hw, err)
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	med, lo, hi, err := BootstrapMedianCI(xs, 500, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if med != 50 {
		t.Errorf("median = %g", med)
	}
	if lo > med || hi < med {
		t.Errorf("CI [%g, %g] excludes the median %g", lo, hi, med)
	}
	if hi-lo <= 0 || hi-lo > 40 {
		t.Errorf("implausible CI width %g", hi-lo)
	}
	// Deterministic under the seed.
	_, lo2, hi2, _ := BootstrapMedianCI(xs, 500, 0.95, 1)
	if lo2 != lo || hi2 != hi {
		t.Error("bootstrap not deterministic under equal seeds")
	}
	if _, _, _, err := BootstrapMedianCI(nil, 100, 0.95, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, _, err := BootstrapMedianCI(xs, 5, 0.95, 1); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, _, _, err := BootstrapMedianCI(xs, 100, 1.5, 1); err == nil {
		t.Error("bad level accepted")
	}
}

func TestBootstrapCoversTruthQuick(t *testing.T) {
	// For symmetric samples the bootstrap CI should bracket the sample
	// median.
	f := func(seed int64) bool {
		xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
		med, lo, hi, err := BootstrapMedianCI(xs, 200, 0.9, seed)
		return err == nil && lo <= med && med <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAcrossSeeds(t *testing.T) {
	vals, err := AcrossSeeds([]int64{1, 2, 3}, func(seed int64) (float64, error) {
		return float64(seed * 2), nil
	})
	if err != nil || len(vals) != 3 || vals[2] != 6 {
		t.Errorf("AcrossSeeds = %v (%v)", vals, err)
	}
	if _, err := AcrossSeeds(nil, nil); err == nil {
		t.Error("empty seeds accepted")
	}
	wantErr := errors.New("boom")
	if _, err := AcrossSeeds([]int64{1}, func(int64) (float64, error) { return 0, wantErr }); err == nil {
		t.Error("callback error swallowed")
	}
}
