package fleet

import "math"

// machTreap keeps fleet machines ordered by (congestion key, machine
// index) so the incremental scorer can probe candidates
// least-congested-first and update a touched machine in O(log M). The
// treap's heap priorities are derived deterministically from the machine
// index (splitmix64), so the tree shape — and therefore every iteration —
// is identical across runs and GOMAXPROCS settings.
type machTreap struct {
	nodes []treapNode // node per machine, indexed by machine index
	root  int32
	stack []int32 // iteration scratch
}

type treapNode struct {
	key         float64
	left, right int32
	prio        uint64
	present     bool
}

const nilNode = int32(-1)

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newMachTreap(n int) *machTreap {
	t := &machTreap{nodes: make([]treapNode, n), root: nilNode}
	for i := range t.nodes {
		t.nodes[i] = treapNode{left: nilNode, right: nilNode, prio: splitmix64(uint64(i))}
	}
	return t
}

func (t *machTreap) merge(a, b int32) int32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	if t.nodes[a].prio > t.nodes[b].prio {
		t.nodes[a].right = t.merge(t.nodes[a].right, b)
		return a
	}
	t.nodes[b].left = t.merge(a, t.nodes[b].left)
	return b
}

// split partitions the tree rooted at n into nodes ordered before
// (key, idx) and the rest.
func (t *machTreap) split(n int32, key float64, idx int32) (lo, hi int32) {
	if n == nilNode {
		return nilNode, nilNode
	}
	nk := t.nodes[n].key
	if nk < key || (nk == key && n < idx) {
		t.nodes[n].right, hi = t.split(t.nodes[n].right, key, idx)
		return n, hi
	}
	lo, t.nodes[n].left = t.split(t.nodes[n].left, key, idx)
	return lo, n
}

// Insert adds machine i with the given key; i must not be present.
func (t *machTreap) Insert(i int32, key float64) {
	n := &t.nodes[i]
	n.key = key
	n.left, n.right = nilNode, nilNode
	n.present = true
	lo, hi := t.split(t.root, key, i)
	t.root = t.merge(t.merge(lo, i), hi)
}

// Remove deletes machine i if present.
func (t *machTreap) Remove(i int32) {
	if !t.nodes[i].present {
		return
	}
	t.root = t.remove(t.root, i)
	t.nodes[i].present = false
}

func (t *machTreap) remove(n, i int32) int32 {
	if n == nilNode {
		return nilNode
	}
	if n == i {
		return t.merge(t.nodes[n].left, t.nodes[n].right)
	}
	if t.beforeNode(i, n) {
		t.nodes[n].left = t.remove(t.nodes[n].left, i)
	} else {
		t.nodes[n].right = t.remove(t.nodes[n].right, i)
	}
	return n
}

// beforeNode reports whether machine i orders before node n.
func (t *machTreap) beforeNode(i, n int32) bool {
	if t.nodes[i].key != t.nodes[n].key {
		return t.nodes[i].key < t.nodes[n].key
	}
	return i < n
}

// Update moves machine i to a new key.
func (t *machTreap) Update(i int32, key float64) {
	t.Remove(i)
	t.Insert(i, key)
}

// Walk visits machines in (key, index) order, calling visit until it
// returns false. The explicit stack avoids recursion on the hot path.
func (t *machTreap) Walk(visit func(i int32) bool) {
	t.WalkFrom(math.Inf(-1), -1, visit)
}

// WalkFrom visits machines strictly after (key, idx) in (key, index)
// order, calling visit until it returns false — the incremental scorer's
// probe resumption: O(log M) to reach the bound, then in-order.
func (t *machTreap) WalkFrom(key float64, idx int32, visit func(i int32) bool) {
	t.stack = t.stack[:0]
	n := t.root
	// Descend to the first node after the bound, stacking ancestors whose
	// left subtrees are still pending.
	for n != nilNode {
		nk := t.nodes[n].key
		if nk < key || (nk == key && n <= idx) {
			n = t.nodes[n].right
		} else {
			t.stack = append(t.stack, n)
			n = t.nodes[n].left
		}
	}
	for len(t.stack) > 0 {
		n = t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		if !visit(n) {
			return
		}
		n = t.nodes[n].right
		for n != nilNode {
			nk := t.nodes[n].key
			if nk < key || (nk == key && n <= idx) {
				n = t.nodes[n].right
			} else {
				t.stack = append(t.stack, n)
				n = t.nodes[n].left
			}
		}
	}
}
