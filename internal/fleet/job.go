package fleet

import (
	"fmt"
	"math"
	"sort"

	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/workload"
)

// Job is one arriving unit of work: an application drawn from the
// benchmark suite (its per-phase PMU signatures are the job's identity for
// the score memo), a heavy-tailed size in outer iterations, and a moldable
// thread budget — the scheduler picks the actual thread count and
// placement, exactly as the single-node runtime picks among the paper
// configurations.
type Job struct {
	// ID is the job's position in the stream; it is the canonical
	// tie-break everywhere (event ordering, resident lists, digests).
	ID int
	// SigKey names the job's phase-signature bundle (the benchmark name);
	// jobs with equal SigKey are indistinguishable to the scorer apart
	// from size and thread budget.
	SigKey string
	// Phases are the parallel regions of one iteration.
	Phases []workload.PhaseProfile
	// Idio is the benchmark's idiosyncrasy term.
	Idio float64
	// MaxThreads is the job's moldable thread budget.
	MaxThreads int
	// Size is the number of outer iterations (heavy-tailed).
	Size int
	// Arrival is the job's arrival time in seconds.
	Arrival float64

	// wsJ/shareJ are the placement-independent footprint summary of the
	// phase bundle: the work-weighted per-thread working set and sharing
	// factor feeding cross-job L2 pressure.
	wsJ, shareJ float64
}

// StreamConfig parameterises a seeded job stream.
type StreamConfig struct {
	// Jobs is the stream length.
	Jobs int
	// Seed feeds parallel.Rand; one seed reproduces one stream exactly.
	Seed int64
	// ArrivalRate is the mean arrival rate in jobs/sec (Poisson process).
	ArrivalRate float64
	// MeanSize is the mean job size in iterations; sizes follow a
	// bounded Pareto (alpha 1.5), so a few jobs carry much of the work.
	MeanSize float64
	// MaxThreads caps the per-job thread budget (drawn uniformly from
	// 1..MaxThreads). Zero means 4, the paper's configuration space.
	MaxThreads int
}

// paretoAlpha shapes job sizes; 1.5 gives the heavy tail the loadgen
// traces use while keeping a finite mean.
const paretoAlpha = 1.5

// sizeCapMult bounds the Pareto tail at this multiple of the mean so one
// pathological draw cannot dominate a whole study.
const sizeCapMult = 50.0

// GenJobs generates the seeded arriving-job stream. Every per-job draw
// comes from a private parallel.Rand keyed on the job index, so the stream
// is reproducible and each job's randomness is independent of generation
// order; only the arrival prefix-sum is sequential.
func GenJobs(cfg StreamConfig) ([]Job, error) {
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("fleet: stream of %d jobs", cfg.Jobs)
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanSize < 1 {
		return nil, fmt.Errorf("fleet: arrival rate %g, mean size %g", cfg.ArrivalRate, cfg.MeanSize)
	}
	maxT := cfg.MaxThreads
	if maxT == 0 {
		maxT = 4
	}
	if maxT < 1 {
		return nil, fmt.Errorf("fleet: max threads %d", maxT)
	}
	benches := npb.All()
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })

	// Bounded Pareto with the configured mean: solve for the scale xm so
	// E[min(xm·U^(-1/a), cap)] ≈ MeanSize, using the unbounded mean
	// a·xm/(a−1) as the (slightly high) estimate — close enough for a
	// workload knob.
	xm := cfg.MeanSize * (paretoAlpha - 1) / paretoAlpha
	if xm < 1 {
		xm = 1
	}
	sizeCap := cfg.MeanSize * sizeCapMult

	jobs := make([]Job, cfg.Jobs)
	gaps := make([]float64, cfg.Jobs)
	parallel.ForEach(cfg.Jobs, func(i int) {
		rng := parallel.Rand(cfg.Seed, fmt.Sprintf("fleet/job/%d", i))
		b := benches[rng.Intn(len(benches))]
		size := xm * math.Pow(1-rng.Float64(), -1/paretoAlpha)
		if size > sizeCap {
			size = sizeCap
		}
		j := Job{
			ID:         i,
			SigKey:     b.Name,
			Phases:     b.Phases,
			Idio:       b.Idiosyncrasy,
			MaxThreads: 1 + rng.Intn(maxT),
			Size:       int(size),
		}
		if j.Size < 1 {
			j.Size = 1
		}
		var work, ws, share float64
		for pi := range b.Phases {
			p := &b.Phases[pi]
			work += p.Instructions
			ws += p.Instructions * p.WorkingSetBytes
			share += p.Instructions * p.SharingFactor
		}
		j.wsJ = ws / work
		j.shareJ = share / work
		jobs[i] = j
		gaps[i] = rng.ExpFloat64() / cfg.ArrivalRate
	})
	t := 0.0
	for i := range jobs {
		t += gaps[i]
		jobs[i].Arrival = t
	}
	return jobs, nil
}
