package fleet

import (
	"runtime"
	"testing"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// testStream is a small heterogeneous fleet plus job stream shared by the
// determinism properties.
func testStream(t *testing.T, jobs int) (*Fleet, []Job) {
	t.Helper()
	f, err := ParseFleet("12*2x2,4*1x4+2x2:little", nil)
	if err != nil {
		t.Fatal(err)
	}
	js, err := GenJobs(StreamConfig{Jobs: jobs, Seed: 42, ArrivalRate: 2, MeanSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	return f, js
}

func mustSchedule(t *testing.T, f *Fleet, jobs []Job, opt Options) *Result {
	t.Helper()
	res, err := Schedule(f, jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestScorerBitIdentity is the fleet's scalar/SIMD-style contract: the
// incremental+memoized scorer and the naive re-score-everything reference
// implement one policy and must produce byte-identical schedules.
func TestScorerBitIdentity(t *testing.T) {
	f, jobs := testStream(t, 160)
	inc := mustSchedule(t, f, jobs, Options{Scorer: ScorerIncremental})
	nai := mustSchedule(t, f, jobs, Options{Scorer: ScorerNaive})
	if inc.Digest() != nai.Digest() {
		t.Fatalf("schedule digests diverge: incremental %x vs naive %x", inc.Digest(), nai.Digest())
	}
	for i := range inc.Placed {
		if inc.Placed[i] != nai.Placed[i] {
			t.Fatalf("row %d diverges:\nincremental %+v\nnaive       %+v", i, inc.Placed[i], nai.Placed[i])
		}
	}
	if inc.Violations != 0 || nai.Violations != 0 {
		t.Fatalf("QoS-aware scorers reported violations: inc=%d naive=%d", inc.Violations, nai.Violations)
	}
	if nai.ScoredMachines <= 2*inc.ScoredMachines {
		t.Fatalf("incremental scorer did not reduce scoring work: inc=%d naive=%d",
			inc.ScoredMachines, nai.ScoredMachines)
	}
}

// TestGOMAXPROCSDeterminism pins the parallel-probe merge: the schedule is
// byte-identical whether candidate scoring runs sequentially or fanned out.
func TestGOMAXPROCSDeterminism(t *testing.T) {
	f, jobs := testStream(t, 120)
	par := mustSchedule(t, f, jobs, Options{})
	prev := runtime.GOMAXPROCS(1)
	seq := mustSchedule(t, f, jobs, Options{})
	runtime.GOMAXPROCS(prev)
	if par.Digest() != seq.Digest() {
		t.Fatalf("schedule depends on GOMAXPROCS: %x (parallel) vs %x (sequential)", par.Digest(), seq.Digest())
	}
}

// TestRepeatedRunsIdentical re-runs the same seeded stream end to end:
// stream generation and scheduling must be reproducible.
func TestRepeatedRunsIdentical(t *testing.T) {
	f1, j1 := testStream(t, 100)
	f2, j2 := testStream(t, 100)
	a := mustSchedule(t, f1, j1, Options{})
	b := mustSchedule(t, f2, j2, Options{})
	if a.Digest() != b.Digest() {
		t.Fatalf("repeated fixed-seed runs diverge: %x vs %x", a.Digest(), b.Digest())
	}
}

// TestScorerKillSwitch covers ACTOR_FLEET_SCORER=naive, the escape hatch
// mirroring ACTOR_SIMD=off: the env forces the reference scorer and the
// schedule stays identical.
func TestScorerKillSwitch(t *testing.T) {
	f, jobs := testStream(t, 80)
	def := mustSchedule(t, f, jobs, Options{})
	if def.Scorer != ScorerIncremental {
		t.Fatalf("default scorer = %q, want incremental", def.Scorer)
	}
	t.Setenv(EnvScorer, "naive")
	forced := mustSchedule(t, f, jobs, Options{})
	if forced.Scorer != ScorerNaive {
		t.Fatalf("with %s=naive scorer = %q", EnvScorer, forced.Scorer)
	}
	if forced.Digest() != def.Digest() {
		t.Fatalf("kill-switch scorer changed the schedule: %x vs %x", forced.Digest(), def.Digest())
	}
	t.Setenv(EnvScorer, "bogus")
	if _, err := Schedule(f, jobs, Options{}); err == nil {
		t.Fatal("bogus ACTOR_FLEET_SCORER accepted")
	}
}

// TestBinpackBaseline sanity-checks the comparison baseline: it schedules
// everything and, being interference-blind, generally does worse on the
// QoS metric the study reports.
func TestBinpackBaseline(t *testing.T) {
	f, jobs := testStream(t, 120)
	bp := mustSchedule(t, f, jobs, Options{Scorer: ScorerBinpack})
	qa := mustSchedule(t, f, jobs, Options{})
	if bp.MaxSlowdown < qa.MaxSlowdown {
		t.Logf("note: binpack max slowdown %.3f below QoS-aware %.3f on this stream", bp.MaxSlowdown, qa.MaxSlowdown)
	}
	if qa.Violations != 0 {
		t.Fatalf("QoS-aware schedule has %d violations", qa.Violations)
	}
	for i := range bp.Placed {
		if bp.Placed[i].Finish <= 0 {
			t.Fatalf("binpack left job %d unfinished", i)
		}
	}
}

// sigma0 returns model parameters with the per-(phase, placement-name)
// response perturbation disabled. Fleet placements carry canonical shape
// names, the paper configs carry "1"…"4"; with the perturbation on, equal
// core sets under different names are deliberately not equal, so exact
// parity with the single-node oracle requires sigma = 0 on both sides.
func sigma0() machine.Params {
	p := machine.DefaultParams()
	p.ResponseSigma = 0
	return p
}

// TestCoSchedulingParity reproduces the pairing decision of the
// exp.CoScheduling extension on a one-machine fleet: the foreground
// benchmark gets exactly the placement core.GlobalOptimal picks among the
// paper configurations, and the background daemon co-runs on the
// complementary cores whenever the optimum leaves any free.
func TestCoSchedulingParity(t *testing.T) {
	params := sigma0()
	cls, err := NewClass("2x2", &params) // the quad-core Xeon shape
	if err != nil {
		t.Fatal(err)
	}
	truth, err := machine.New(cls.Topo)
	if err != nil {
		t.Fatal(err)
	}
	truth.SetParams(params)
	configs, err := topology.PaperConfigsOn(cls.Topo)
	if err != nil {
		t.Fatal(err)
	}

	// The daemon profile of exp.backgroundTask (unexported there).
	daemon := workload.PhaseProfile{
		Name: "sysdaemon", Fingerprint: "SYS/daemon",
		Instructions: 2e10, BaseIPC: 1.2,
		MemRefsPerInstr: 0.3, LoadFraction: 0.7, L1MissRate: 0.06,
		WorkingSetBytes: 512 * 1024, SharingFactor: 0.2, LocalityExp: 1,
		ColdMissRate: 0.1, MLP: 2, ParallelFraction: 0.95,
		SyncCycles: 1e5, BranchRate: 0.12, BranchMissRate: 0.03,
		TLBMissRate: 0.001, ChunkGranularity: 64, PrefetchFriendly: 0.5,
	}

	for _, b := range npb.All() {
		fl, err := NewFleet([]*Class{cls}, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		best, _, err := core.GlobalOptimal(b, truth, configs)
		if err != nil {
			t.Fatal(err)
		}
		jobs := []Job{
			{ID: 0, SigKey: b.Name, Phases: b.Phases, Idio: b.Idiosyncrasy,
				MaxThreads: 4, Size: b.Iterations, Arrival: 0},
			{ID: 1, SigKey: "SYS", Phases: []workload.PhaseProfile{daemon},
				MaxThreads: 4 - best.Threads(), Size: 1, Arrival: 0},
		}
		if jobs[1].MaxThreads == 0 {
			jobs[1].MaxThreads = 4 // optimum uses the whole machine: daemon must wait
		}
		for i := range jobs {
			var work, ws, share float64
			for pi := range jobs[i].Phases {
				p := &jobs[i].Phases[pi]
				work += p.Instructions
				ws += p.Instructions * p.WorkingSetBytes
				share += p.Instructions * p.SharingFactor
			}
			jobs[i].wsJ = ws / work
			jobs[i].shareJ = share / work
		}
		// A generous QoS bound isolates the placement decision: admission
		// never forces a smaller shape than the predicted optimum.
		res, err := Schedule(fl, jobs, Options{QoS: 100})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		fg := res.Placed[0]
		if fg.Threads != best.Threads() {
			t.Fatalf("%s: fleet chose %d threads, GlobalOptimal chose %q (%d threads)",
				b.Name, fg.Threads, best.Name, best.Threads())
		}
		// Same group distribution: threads per L2 group must match.
		var want distVec
		for _, c := range best.Cores {
			want[cls.Topo.GroupOf(c)]++
		}
		sortPair := func(d distVec) (int, int) {
			a, bn := int(d[0]), int(d[1])
			if a < bn {
				a, bn = bn, a
			}
			return a, bn
		}
		wa, wb := sortPair(want)
		ga, gb := sortPair(fg.Dist)
		if wa != ga || wb != gb {
			t.Fatalf("%s: fleet distribution %v does not match optimal config %q (%v)",
				b.Name, fg.Dist, best.Name, want)
		}
		bg := res.Placed[1]
		if best.Threads() < 4 {
			if bg.Start != 0 {
				t.Fatalf("%s: daemon not co-scheduled at t=0 (start %.4g)", b.Name, bg.Start)
			}
			if bg.Threads != 4-best.Threads() {
				t.Fatalf("%s: daemon got %d threads, complement has %d cores",
					b.Name, bg.Threads, 4-best.Threads())
			}
		} else if bg.Start <= 0 {
			t.Fatalf("%s: optimum uses all cores, daemon should queue (start %.4g)", b.Name, bg.Start)
		}
	}
}

// TestTreapOrder exercises the probe structure directly: inserts, updates
// and bounded walks must agree with a sorted reference.
func TestTreapOrder(t *testing.T) {
	const n = 200
	tr := newMachTreap(n)
	keys := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = float64((i * 37 % 50)) // many duplicate keys: index tie-break
		tr.Insert(int32(i), keys[i])
	}
	for i := 0; i < n; i += 3 {
		keys[i] = float64(i % 7)
		tr.Update(int32(i), keys[i])
	}
	var got []int32
	tr.Walk(func(i int32) bool { got = append(got, i); return true })
	if len(got) != n {
		t.Fatalf("walk visited %d of %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if keys[a] > keys[b] || (keys[a] == keys[b] && a >= b) {
			t.Fatalf("walk out of order at %d: (%.0f,%d) before (%.0f,%d)", i, keys[a], a, keys[b], b)
		}
	}
	// WalkFrom resumes strictly after the bound.
	mid := got[n/2]
	var tail []int32
	tr.WalkFrom(keys[mid], mid, func(i int32) bool { tail = append(tail, i); return true })
	if len(tail) != n-n/2-1 {
		t.Fatalf("WalkFrom visited %d, want %d", len(tail), n-n/2-1)
	}
	for k, i := range tail {
		if i != got[n/2+1+k] {
			t.Fatalf("WalkFrom order diverges at %d", k)
		}
	}
}

// TestGenJobsReproducible pins stream generation to its seed.
func TestGenJobsReproducible(t *testing.T) {
	cfg := StreamConfig{Jobs: 50, Seed: 7, ArrivalRate: 5, MeanSize: 4}
	a, err := GenJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].SigKey != b[i].SigKey || a[i].Size != b[i].Size ||
			a[i].Arrival != b[i].Arrival || a[i].MaxThreads != b[i].MaxThreads {
			t.Fatalf("job %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 8
	c, err := GenJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].SigKey != c[i].SigKey || a[i].Size != c[i].Size {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical stream")
	}
}
