// Package fleet lifts the paper's single-node adaptation story to the
// cluster: a fleet of heterogeneous machines (each described by the same
// topology.ParseDesc grammar the rest of the system uses), a stream of
// arriving jobs carrying per-phase PMU signatures drawn from the NPB
// suite, and an interference-aware scheduler that scores candidate
// (machine, placement) slots under a QoS degradation bound — the layer the
// paws scheduler builds from temporal utilization templates, reproduced
// here on top of our analytic machine model.
//
// The scheduler's decision policy is deliberately simple and exactly
// specified, because two implementations must reproduce it bit for bit:
//
//   - every machine carries a residual template (per-L2-group free cores,
//     external cache pressure, resident memory sensitivity, plus a
//     machine-wide bus-demand sum) recomputed from its resident set in
//     job-ID order after every placement and completion;
//   - a machine's congestion key K is a pure function of that template;
//   - an arriving job is placed on the feasible machine with the smallest
//     (K, machine index), where feasibility means the job's predicted
//     slowdown — relative to its solo-best time across the fleet's machine
//     classes — and the marginal degradation imposed on every resident
//     both stay within the QoS bound;
//   - within the chosen machine, the placement is the best-predicted
//     (thread count, per-group distribution) candidate, evaluated with the
//     machine model's batched sweep on canonical placements.
//
// Two scorers implement the policy. The naive reference re-scores every
// machine on every arrival — O(M) template builds and candidate solves.
// The incremental scorer maintains machines in a congestion-ordered treap
// (placing or completing a job updates only the touched machine's key, in
// O(log M)), probes candidates in key order until the first feasible
// machine, and serves candidate solves from a sharded score memo keyed on
// (machine class, residual-template fingerprint, job signature), so
// identical co-run configurations are solved once fleet-wide. Both paths
// evaluate candidates through the same pure functions over the same
// template values, so their schedules are byte-identical — the same
// scalar/SIMD pattern the kernel engine uses, with ACTOR_FLEET_SCORER=naive
// as the kill switch.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/topology"
)

// maxGroups bounds the number of L2 groups per machine class so per-group
// thread distributions fit fixed-size vectors (no allocation on the
// scoring hot path).
const maxGroups = 16

// distVec is a per-group thread-count vector, indexed either canonically
// (template order) or by real group index, depending on context.
type distVec [maxGroups]int8

// Model constants of the interference composition. The solo machine-model
// solve already covers self-interference (a job's own threads sharing an
// L2 group); these coefficients scale the cross-job terms: external cache
// pressure in a shared group and fleet bus overcommit. They are part of
// the deterministic policy, not tunables read from the environment.
const (
	// kCache scales the slowdown a memory-sensitive thread suffers per
	// unit of external working-set pressure (bytes of co-resident
	// footprint per byte of L2 capacity) in its group.
	kCache = 0.5
	// cacheCap bounds the external-pressure ratio fed to the cache term:
	// beyond ~1.5 cache capacities of external footprint the group is
	// fully thrashed and more pressure changes nothing.
	cacheCap = 1.5
	// kBus scales the slowdown per unit of bus overcommit (aggregate bus
	// demand beyond the machine's capacity, both expressed as fractions
	// of that capacity).
	kBus = 0.9
	// maxFactor caps the composed interference factor; the analytic terms
	// are first-order and should not extrapolate into absurdity.
	maxFactor = 4.0
)

// Power proxy constants for fleet-level energy accounting (the ED² the
// study reports). Machines are never power-gated: the base burns for the
// whole schedule, so packing saves no base power and the scheduler's win
// must come from delay and dynamic power — the same conclusion the paper
// draws for single-node throttling.
const (
	basePowerW  = 60.0 // per-machine floor: PSU, fans, chipset, idle cores
	staticCoreW = 2.0  // extra leakage/clock power per occupied core
	dynCoreW    = 25.0 // switching power of a fully unstalled core
)

// groupKind identifies a class of identical L2 groups within a machine
// class: same core count and same core class. Canonical templates sort
// groups by kind so two machines with the same residual state encode
// identically.
type groupKind struct {
	size     int
	classIdx int
}

// Class is one machine class of the fleet: a parsed topology plus the
// shared (memoised) machine model every solo-placement solve runs on.
type Class struct {
	// Desc is the topology descriptor the class was built from.
	Desc string
	// Topo is the parsed topology.
	Topo *topology.Topology
	// Model is the ground-truth machine model, memoised so canonical solo
	// placements are solved once per (phase, load multiset) fleet-wide.
	Model *machine.Machine

	kinds      []groupKind // distinct group kinds, canonical order
	groupKind  []int       // real group index → kind index
	kindGroups [][]int     // kind index → real group indices, topo order
	groupSize  []int       // real group index → core count
	l2Bytes    float64
	cores      int
}

// NewClass parses a topology descriptor into a machine class. Params, when
// non-nil, replaces the model's default core parameters (tests use this to
// zero ResponseSigma for exact parity with the single-node oracles).
func NewClass(desc string, params *machine.Params) (*Class, error) {
	topo, err := topology.ParseDesc(desc)
	if err != nil {
		return nil, err
	}
	if len(topo.L2Groups) > maxGroups {
		return nil, fmt.Errorf("fleet: class %q has %d L2 groups, max %d", desc, len(topo.L2Groups), maxGroups)
	}
	m, err := machine.New(topo)
	if err != nil {
		return nil, err
	}
	if params != nil {
		m.SetParams(*params)
	}
	m = m.WithMemo()
	c := &Class{
		Desc:    desc,
		Topo:    topo,
		Model:   m,
		l2Bytes: float64(topo.L2BytesPerGroup),
		cores:   topo.NumCores,
	}
	c.groupKind = make([]int, len(topo.L2Groups))
	c.groupSize = make([]int, len(topo.L2Groups))
	for gi, g := range topo.L2Groups {
		c.groupSize[gi] = len(g)
		k := groupKind{size: len(g), classIdx: topo.ClassIndexOf(g[0])}
		ki := -1
		for i, have := range c.kinds {
			if have == k {
				ki = i
				break
			}
		}
		if ki < 0 {
			ki = len(c.kinds)
			c.kinds = append(c.kinds, k)
			c.kindGroups = append(c.kindGroups, nil)
		}
		c.groupKind[gi] = ki
		c.kindGroups[ki] = append(c.kindGroups[ki], gi)
	}
	return c, nil
}

// Cores returns the class's core count.
func (c *Class) Cores() int { return c.cores }

// Fleet is a static fleet description: classes plus the class index of
// every machine. Scheduling runs build their runtime state from it, so one
// Fleet serves many Schedule calls (and both scorers of a comparison).
type Fleet struct {
	Classes []*Class
	// MachineClass maps machine index → class index.
	MachineClass []int
}

// NewFleet builds a fleet of counts[i] machines of each class, numbered
// class-major (all machines of class 0 first). Machine indices are the
// canonical tie-break of the placement policy, so the ordering is part of
// the schedule's identity.
func NewFleet(classes []*Class, counts []int) (*Fleet, error) {
	if len(classes) == 0 || len(classes) != len(counts) {
		return nil, fmt.Errorf("fleet: %d classes for %d counts", len(classes), len(counts))
	}
	f := &Fleet{Classes: classes}
	for ci, n := range counts {
		if n <= 0 {
			return nil, fmt.Errorf("fleet: class %q count %d", classes[ci].Desc, n)
		}
		for i := 0; i < n; i++ {
			f.MachineClass = append(f.MachineClass, ci)
		}
	}
	return f, nil
}

// ParseFleet builds a fleet from a compact spec: comma-separated
// "count*descriptor" terms, where descriptor follows topology.ParseDesc.
//
//	"64*2x2"                          — 64 quad-cores
//	"600*4x2,400*2x4+2x2:little"      — a 1000-machine heterogeneous fleet
func ParseFleet(spec string, params *machine.Params) (*Fleet, error) {
	var classes []*Class
	var counts []int
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		star := strings.Index(term, "*")
		if star <= 0 {
			return nil, fmt.Errorf("fleet: spec term %q is not count*descriptor", term)
		}
		var n int
		if _, err := fmt.Sscanf(term[:star], "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("fleet: bad machine count in %q", term)
		}
		c, err := NewClass(term[star+1:], params)
		if err != nil {
			return nil, err
		}
		classes = append(classes, c)
		counts = append(counts, n)
	}
	return NewFleet(classes, counts)
}

// Machines returns the fleet's machine count.
func (f *Fleet) Machines() int { return len(f.MachineClass) }

// TotalCores returns the fleet's aggregate core count.
func (f *Fleet) TotalCores() int {
	n := 0
	for _, ci := range f.MachineClass {
		n += f.Classes[ci].cores
	}
	return n
}

// machState is the runtime state of one fleet machine. Aggregates are
// always recomputed from the resident list in job-ID order, so two
// scheduling runs that reach the same resident set through any event
// interleaving hold bit-identical floats.
type machState struct {
	class     int
	residents []*placedJob // sorted by job ID

	// Per-real-group aggregates.
	free    [maxGroups]int16   // free cores
	occ     [maxGroups]int16   // resident threads
	ws      [maxGroups]float64 // external working-set pressure (bytes)
	sensMax [maxGroups]float64 // max resident memory sensitivity

	busSum     float64 // aggregate bus demand (fraction of capacity)
	maxSens    float64 // machine-wide max resident sensitivity
	freeTotal  int
	congestion float64 // the policy's machine-ordering key K
	power      float64 // instantaneous power draw (W)
}

// wsContribution is the external L2 pressure k threads of a job exert on
// one group: the first thread brings the full per-thread footprint, and
// each additional thread adds only the unshared part.
func wsContribution(wsJ, shareJ float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	return wsJ * (1 + float64(k-1)*(1-shareJ))
}

// recompute rebuilds every aggregate of m from its resident list. The sums
// accumulate in job-ID order (the list's invariant), never incrementally,
// so aggregate floats depend only on the resident set — not on the order
// placements and completions happened to interleave.
func (m *machState) recompute(c *Class) {
	ng := len(c.groupSize)
	for g := 0; g < ng; g++ {
		m.occ[g], m.ws[g], m.sensMax[g] = 0, 0, 0
	}
	m.busSum, m.maxSens = 0, 0
	m.power = basePowerW
	for _, r := range m.residents {
		m.busSum += r.busJ
		if r.sensJ > m.maxSens {
			m.maxSens = r.sensJ
		}
		m.power += float64(r.threads) * (staticCoreW + dynCoreW*(1-r.sensJ))
		for g := 0; g < ng; g++ {
			if k := int(r.dist[g]); k > 0 {
				m.occ[g] += int16(k)
				m.ws[g] += wsContribution(r.wsJ, r.shareJ, k)
				if r.sensJ > m.sensMax[g] {
					m.sensMax[g] = r.sensJ
				}
			}
		}
	}
	m.freeTotal = 0
	var press float64
	for g := 0; g < ng; g++ {
		m.free[g] = int16(c.groupSize[g]) - m.occ[g]
		m.freeTotal += int(m.free[g])
		press += m.ws[g] / c.l2Bytes
	}
	used := 1 - float64(m.freeTotal)/float64(c.cores)
	// K orders machines least-congested-first: bus demand dominates, then
	// mean cache pressure, then plain occupancy. Any monotone combination
	// works — the policy only needs K to be a pure function of the
	// template so both scorers order machines identically.
	m.congestion = m.busSum + 0.5*press/float64(ng) + 0.5*used
}

// groupView is one group of a machine's canonical template: the residual
// state the scoring functions consume, plus the real group index so a
// chosen canonical distribution can be mapped back onto the machine.
type groupView struct {
	kind    int
	free    int
	occ     int
	ws      float64
	sensMax float64
	real    int
}

// canonGroups fills dst with m's groups in canonical template order: by
// kind, then most-free first, then lightest pressure, with the real index
// as the final tie-break. Machines whose residual states are equal
// group-for-group produce element-wise identical views (the real index
// never feeds scoring), which is what makes the score memo shareable
// across machines.
func canonGroups(c *Class, m *machState, dst []groupView) []groupView {
	ng := len(c.groupSize)
	dst = dst[:0]
	for g := 0; g < ng; g++ {
		dst = append(dst, groupView{
			kind:    c.groupKind[g],
			free:    int(m.free[g]),
			occ:     int(m.occ[g]),
			ws:      m.ws[g],
			sensMax: m.sensMax[g],
			real:    g,
		})
	}
	sort.Slice(dst, func(i, j int) bool {
		a, b := &dst[i], &dst[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.free != b.free {
			return a.free > b.free
		}
		if a.ws != b.ws {
			return a.ws < b.ws
		}
		if a.occ != b.occ {
			return a.occ < b.occ
		}
		if a.sensMax != b.sensMax {
			return a.sensMax < b.sensMax
		}
		return a.real < b.real
	})
	return dst
}

// templateKey encodes the scoring-relevant residual state of a canonical
// template into a string — the fleet-wide score-memo key prefix. Floats
// are encoded as exact bit patterns: the memo may only serve a cached
// decision to a machine whose template would reproduce it bit for bit.
func templateKey(buf []byte, class int, groups []groupView, busSum, maxSens float64) []byte {
	buf = buf[:0]
	buf = appendUvarint(buf, uint64(class))
	for i := range groups {
		g := &groups[i]
		buf = appendUvarint(buf, uint64(g.kind))
		buf = appendUvarint(buf, uint64(g.free))
		buf = appendUvarint(buf, uint64(g.occ))
		buf = appendU64(buf, math.Float64bits(g.ws))
		buf = appendU64(buf, math.Float64bits(g.sensMax))
	}
	buf = appendU64(buf, math.Float64bits(busSum))
	buf = appendU64(buf, math.Float64bits(maxSens))
	return buf
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
