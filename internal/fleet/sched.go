package fleet

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync/atomic"

	"github.com/greenhpc/actor/internal/parallel"
)

// Scorer names select the placement engine. Incremental and naive
// implement the identical policy — first feasible machine in (congestion
// key, index) order — and produce byte-identical schedules; binpack is the
// interference-blind baseline the study compares against.
const (
	ScorerIncremental = "incremental"
	ScorerNaive       = "naive"
	ScorerBinpack     = "binpack"
)

// EnvScorer is the kill switch: ACTOR_FLEET_SCORER=naive forces the O(M)
// reference scorer fleet-wide, the same escape hatch pattern as
// ACTOR_SIMD=off for the vector kernels.
const EnvScorer = "ACTOR_FLEET_SCORER"

// Options configures a scheduling run.
type Options struct {
	// QoS is the degradation bound: a placement is admissible only if the
	// job's predicted slowdown over its fleet-wide solo best — and every
	// resident's — stays within 1+QoS. Zero means the 0.25 default.
	QoS float64
	// Scorer picks the placement engine; empty consults ACTOR_FLEET_SCORER
	// and defaults to incremental.
	Scorer string
	// ProbeWidth is the incremental scorer's speculative batch: how many
	// machines per treap probe round are scored in parallel. Zero means 8.
	ProbeWidth int
}

func (o *Options) resolve() (Options, error) {
	r := *o
	if r.QoS == 0 {
		r.QoS = 0.25
	}
	if r.QoS < 0 {
		return r, fmt.Errorf("fleet: negative QoS bound %g", r.QoS)
	}
	if r.ProbeWidth <= 0 {
		r.ProbeWidth = 8
	}
	if r.Scorer == "" {
		r.Scorer = os.Getenv(EnvScorer)
	}
	switch r.Scorer {
	case "":
		r.Scorer = ScorerIncremental
	case ScorerIncremental, ScorerNaive, ScorerBinpack:
	default:
		return r, fmt.Errorf("fleet: unknown scorer %q (have incremental, naive, binpack)", r.Scorer)
	}
	return r, nil
}

// Placed is one row of the schedule: where and how a job ran.
type Placed struct {
	JobID    int
	Machine  int
	Threads  int
	Dist     distVec // threads per real L2 group of the machine
	Start    float64 // placement time (≥ arrival when queued)
	Finish   float64
	SoloSec  float64 // fleet-wide solo-best runtime (size × best unit)
	Slowdown float64 // (Finish − Start) / SoloSec
}

// Result is the outcome of one scheduling run.
type Result struct {
	Scorer string
	QoS    float64
	Placed []Placed // indexed by job ID

	Makespan     float64
	EnergyJ      float64
	ED2          float64 // EnergyJ × Makespan²
	MeanSlowdown float64 // mean running-time stretch over solo best
	MaxSlowdown  float64
	MeanWait     float64 // mean queue delay (Start − Arrival)
	CoreUtil     float64 // busy core-seconds / (fleet cores × makespan)
	Violations   int     // jobs whose stretch exceeded 1+QoS
	// ScoredMachines counts scoreMachine calls — the work the perf story
	// is about: naive pays jobs×machines, incremental a few per arrival.
	ScoredMachines int64
}

// Digest is an FNV-1a fingerprint of the schedule rows in job-ID order
// (scorer name and work counters excluded), the equality witness of the
// incremental-vs-naive and GOMAXPROCS determinism properties.
func (r *Result) Digest() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	for i := range r.Placed {
		p := &r.Placed[i]
		mix(uint64(p.JobID))
		mix(uint64(p.Machine))
		mix(uint64(p.Threads))
		var d uint64
		for g := 0; g < maxGroups; g++ {
			d = d<<4 | uint64(p.Dist[g])
		}
		mix(d)
		mix(math.Float64bits(p.Start))
		mix(math.Float64bits(p.Finish))
	}
	return h
}

// placedJob is the runtime record of a job resident on a machine.
type placedJob struct {
	id      int
	machine int
	threads int
	dist    distVec // per real group

	wsJ, shareJ float64
	busJ, sensJ float64
	unitSec     float64 // solo seconds per iteration under the placement
	soloBest    float64 // fleet-wide best unit seconds

	remWork float64 // remaining work in interference-free seconds
	factor  float64 // current interference stretch
	lastT   float64 // last time remWork was reconciled
	start   float64
	arrival float64
	seq     int // valid completion-event sequence number
}

// completion-event min-heap ordered by (time, job ID); stale entries are
// skipped via the per-job sequence number.
type compEvent struct {
	t   float64
	id  int
	seq int
}

type compHeap []compEvent

func (h compHeap) before(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].id < h[j].id
}

func (h *compHeap) push(e compEvent) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *compHeap) pop() compEvent {
	top := (*h)[0]
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.before(l, m) {
			m = l
		}
		if r < n && h.before(r, m) {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return top
}

// run is the mutable state of one scheduling pass.
type run struct {
	f      *Fleet
	s      *scorer
	opt    Options
	states []machState
	treap  *machTreap // incremental scorer only
	byID   map[int]*placedJob

	heap    compHeap
	pending []int // queued job indices, FIFO

	totalPower float64
	totalOcc   int
	lastT      float64
	energy     float64
	busySec    float64

	scored atomic.Int64
	res    *Result
}

// Schedule places the job stream on the fleet and simulates it to
// completion. Jobs and fleet are read-only; one Fleet serves concurrent
// Schedule calls.
func Schedule(f *Fleet, jobs []Job, opt Options) (*Result, error) {
	ropt, err := opt.resolve()
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fleet: empty job stream")
	}
	r := &run{
		f:      f,
		s:      newScorer(f),
		opt:    ropt,
		states: make([]machState, f.Machines()),
		byID:   make(map[int]*placedJob, 64),
		res:    &Result{Scorer: ropt.Scorer, QoS: ropt.QoS, Placed: make([]Placed, len(jobs))},
	}
	for i := range r.states {
		m := &r.states[i]
		m.class = f.MachineClass[i]
		m.recompute(f.Classes[m.class])
		r.totalPower += m.power
	}
	if ropt.Scorer == ScorerIncremental {
		r.treap = newMachTreap(f.Machines())
		for i := range r.states {
			r.treap.Insert(int32(i), r.states[i].congestion)
		}
	}

	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := &jobs[order[a]], &jobs[order[b]]
		if ja.Arrival != jb.Arrival {
			return ja.Arrival < jb.Arrival
		}
		return ja.ID < jb.ID
	})

	ai := 0
	for ai < len(order) || len(r.byID) > 0 {
		// Next event: completions win ties against arrivals so freed
		// capacity is visible to a simultaneously arriving job.
		ct, hasComp := r.peek()
		if hasComp && (ai >= len(order) || ct <= jobs[order[ai]].Arrival) {
			e := r.heap.pop()
			r.accrue(e.t)
			mi := r.byID[e.id].machine
			r.complete(jobs, e.id, e.t)
			r.drainAfterCompletion(jobs, mi, e.t)
			continue
		}
		if ai >= len(order) {
			return nil, fmt.Errorf("fleet: %d jobs stuck in queue with an idle fleet", len(r.pending))
		}
		j := &jobs[order[ai]]
		ai++
		r.accrue(j.Arrival)
		if mi, cand, ok := r.selectMachine(j); ok {
			r.place(j, mi, cand, j.Arrival)
		} else {
			r.pending = append(r.pending, j.ID)
		}
	}

	if len(r.pending) > 0 {
		return nil, fmt.Errorf("fleet: %d jobs never became placeable", len(r.pending))
	}
	res := r.res
	res.Makespan = r.lastT
	res.EnergyJ = r.energy
	res.ED2 = res.EnergyJ * res.Makespan * res.Makespan
	if res.Makespan > 0 {
		res.CoreUtil = r.busySec / (float64(f.TotalCores()) * res.Makespan)
	}
	var sumSlow, sumWait float64
	for i := range res.Placed {
		p := &res.Placed[i]
		sumSlow += p.Slowdown
		sumWait += p.Start - jobs[i].Arrival
		if p.Slowdown > res.MaxSlowdown {
			res.MaxSlowdown = p.Slowdown
		}
		if p.Slowdown > (1+ropt.QoS)*(1+1e-9) {
			res.Violations++
		}
	}
	res.MeanSlowdown = sumSlow / float64(len(jobs))
	res.MeanWait = sumWait / float64(len(jobs))
	res.ScoredMachines = r.scored.Load()
	return res, nil
}

// peek returns the next live completion event time.
func (r *run) peek() (float64, bool) {
	for len(r.heap) > 0 {
		e := r.heap[0]
		pj := r.byID[e.id]
		if pj == nil || pj.seq != e.seq {
			r.heap.pop()
			continue
		}
		return e.t, true
	}
	return 0, false
}

// accrue advances energy and busy-core accounting to time t.
func (r *run) accrue(t float64) {
	dt := t - r.lastT
	if dt > 0 {
		r.energy += r.totalPower * dt
		r.busySec += float64(r.totalOcc) * dt
	}
	if t > r.lastT {
		r.lastT = t
	}
}

// drainAfterCompletion retries queued jobs in FIFO order after machine mi
// retired a job. Feasibility is monotone in machine load — placing a job
// never turns an infeasible machine feasible, and a queued job was
// infeasible fleet-wide when it queued — so the only machine that can
// newly admit a queued job is the one that just completed. The incremental
// scorer therefore re-scores mi alone (O(1) per queued job); the naive
// reference re-scores the whole fleet and, by the same monotonicity, lands
// on the identical decision.
func (r *run) drainAfterCompletion(jobs []Job, mi int, t float64) {
	kept := r.pending[:0]
	for _, id := range r.pending {
		j := &jobs[id]
		var pmi int
		var cand candidate
		var ok bool
		if r.opt.Scorer == ScorerIncremental {
			soloBest := r.s.soloBest(j)
			cand = r.s.scoreMachine(mi, &r.states[mi], j, soloBest, r.opt.QoS, true)
			r.scored.Add(1)
			pmi, ok = mi, cand.feasible
		} else {
			pmi, cand, ok = r.selectMachine(j)
		}
		if !ok {
			kept = append(kept, id)
			continue
		}
		r.place(j, pmi, cand, t)
	}
	r.pending = kept
}

// selectMachine runs the placement policy for j: the first machine in
// (congestion, index) order on which j has an admissible placement.
func (r *run) selectMachine(j *Job) (int, candidate, bool) {
	switch r.opt.Scorer {
	case ScorerBinpack:
		return r.selectBinpack(j)
	case ScorerNaive:
		return r.selectNaive(j)
	default:
		return r.selectIncremental(j)
	}
}

// selectNaive is the reference implementation: score every machine, take
// the feasible one with the smallest (congestion, index).
func (r *run) selectNaive(j *Job) (int, candidate, bool) {
	soloBest := r.s.soloBest(j)
	n := len(r.states)
	cands := make([]candidate, n)
	parallel.ForEach(n, func(i int) {
		cands[i] = r.s.scoreMachine(i, &r.states[i], j, soloBest, r.opt.QoS, false)
	})
	r.scored.Add(int64(n))
	best := -1
	for i := range cands {
		if !cands[i].feasible {
			continue
		}
		if best < 0 ||
			r.states[i].congestion < r.states[best].congestion ||
			(r.states[i].congestion == r.states[best].congestion && i < best) {
			best = i
		}
	}
	if best < 0 {
		return 0, candidate{}, false
	}
	return best, cands[best], true
}

// selectIncremental probes machines in treap order, scoring ProbeWidth of
// them speculatively in parallel per round, and stops at the first
// feasible machine — identical to the naive argmin because the congestion
// key is job-independent.
func (r *run) selectIncremental(j *Job) (int, candidate, bool) {
	soloBest := r.s.soloBest(j)
	w := r.opt.ProbeWidth
	batch := make([]int32, 0, w)
	cands := make([]candidate, w)
	afterKey := math.Inf(-1)
	afterIdx := int32(-1)
	for {
		batch = batch[:0]
		r.treap.WalkFrom(afterKey, afterIdx, func(i int32) bool {
			if r.states[i].freeTotal >= 1 {
				batch = append(batch, i)
			}
			return len(batch) < w
		})
		if len(batch) == 0 {
			return 0, candidate{}, false
		}
		bn := len(batch)
		parallel.ForEach(bn, func(k int) {
			mi := batch[k]
			cands[k] = r.s.scoreMachine(int(mi), &r.states[mi], j, soloBest, r.opt.QoS, true)
		})
		r.scored.Add(int64(bn))
		for k := 0; k < bn; k++ {
			if cands[k].feasible {
				return int(batch[k]), cands[k], true
			}
		}
		last := batch[bn-1]
		afterKey = r.treap.nodes[last].key
		afterIdx = last
	}
}

// selectBinpack is the interference-blind baseline: first machine by index
// with a free core; threads = min(budget, free), packed greedily. No QoS
// admission — the study counts the violations this causes.
func (r *run) selectBinpack(j *Job) (int, candidate, bool) {
	for mi := range r.states {
		m := &r.states[mi]
		if m.freeTotal < 1 {
			continue
		}
		r.scored.Add(1)
		c := r.f.Classes[m.class]
		sc := r.s.pool.Get().(*scratch)
		sc.views = canonGroups(c, m, sc.views)
		t := j.MaxThreads
		if t > m.freeTotal {
			t = m.freeTotal
		}
		var dist distVec
		left := t
		for i := range sc.views {
			k := sc.views[i].free
			if k > left {
				k = left
			}
			dist[i] = int8(k)
			left -= k
			if left == 0 {
				break
			}
		}
		sk := shapeKey(sc.views, dist)
		sm := r.s.soloFor(m.class, j, sk)
		cand := candidate{feasible: true, threads: t, shapeKey: sk,
			unitSec: sm.unitSec, busJ: sm.busJ, sensJ: sm.sensJ}
		for i := range sc.views {
			cand.dist[sc.views[i].real] = dist[i]
		}
		r.s.pool.Put(sc)
		return mi, cand, true
	}
	return 0, candidate{}, false
}

// advance reconciles the remaining work of every resident of machine mi to
// time t under the factors in force since the last event that touched it.
func (r *run) advance(mi int, t float64) {
	m := &r.states[mi]
	for _, pj := range m.residents {
		if dt := t - pj.lastT; dt > 0 {
			pj.remWork -= dt / pj.factor
			if pj.remWork < 0 {
				pj.remWork = 0
			}
		}
		pj.lastT = t
	}
}

// refresh recomputes machine mi's aggregates after a residency change and
// re-derives every resident's interference factor and completion event.
// Power, occupancy and (for the incremental scorer) the congestion treap
// are updated from the recomputed state.
func (r *run) refresh(mi int, t float64) {
	m := &r.states[mi]
	c := r.f.Classes[m.class]
	oldPower := m.power
	oldOcc := c.cores - m.freeTotal
	m.recompute(c)
	r.totalPower += m.power - oldPower
	r.totalOcc += (c.cores - m.freeTotal) - oldOcc
	for _, pj := range m.residents {
		pj.factor = residentFactor(c, m, pj)
		pj.seq++
		r.heap.push(compEvent{t: t + pj.remWork*pj.factor, id: pj.id, seq: pj.seq})
	}
	if r.treap != nil {
		r.treap.Update(int32(mi), m.congestion)
	}
}

// place admits job j on machine mi under the chosen candidate at time t.
func (r *run) place(j *Job, mi int, cand candidate, t float64) {
	r.advance(mi, t)
	pj := &placedJob{
		id: j.ID, machine: mi, threads: cand.threads, dist: cand.dist,
		wsJ: j.wsJ, shareJ: j.shareJ, busJ: cand.busJ, sensJ: cand.sensJ,
		unitSec: cand.unitSec, soloBest: r.s.soloBest(j),
		remWork: cand.unitSec * float64(j.Size),
		lastT:   t, start: t, arrival: j.Arrival,
	}
	m := &r.states[mi]
	pos := sort.Search(len(m.residents), func(i int) bool { return m.residents[i].id >= pj.id })
	m.residents = append(m.residents, nil)
	copy(m.residents[pos+1:], m.residents[pos:])
	m.residents[pos] = pj
	r.byID[pj.id] = pj
	r.refresh(mi, t)
}

// complete retires job id at time t and records its schedule row.
func (r *run) complete(jobs []Job, id int, t float64) {
	pj := r.byID[id]
	mi := pj.machine
	r.advance(mi, t)
	m := &r.states[mi]
	for i, have := range m.residents {
		if have == pj {
			m.residents = append(m.residents[:i], m.residents[i+1:]...)
			break
		}
	}
	delete(r.byID, id)
	solo := pj.soloBest * float64(jobs[id].Size)
	r.res.Placed[id] = Placed{
		JobID: id, Machine: mi, Threads: pj.threads, Dist: pj.dist,
		Start: pj.start, Finish: t, SoloSec: solo,
		Slowdown: (t - pj.start) / solo,
	}
	r.refresh(mi, t)
}
