package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/topology"
)

// composeFactor is the cross-job interference model: a memory-sensitive
// job (sens = 1 − solo core utilisation) slows down with the external L2
// pressure in its groups and with fleet bus overcommit. The same function
// predicts a candidate's slowdown at admission and stretches resident
// runtimes in the simulator, so admission-time QoS checks bound realised
// degradation exactly.
func composeFactor(sens, extPress, busTotal float64) float64 {
	if extPress > cacheCap {
		extPress = cacheCap
	}
	over := busTotal - 1
	if over < 0 {
		over = 0
	}
	f := (1 + kCache*sens*extPress) * (1 + kBus*sens*over)
	if f > maxFactor {
		f = maxFactor
	}
	return f
}

// shape is one candidate thread distribution in canonical-template space:
// dist[i] threads on the i-th canonical group. Candidates are enumerated
// thread count ascending, packed before spread — on an empty quad-core
// Xeon that is exactly the paper's 1, 2a, 2b, 3, 4 order, which is what
// makes the one-machine fleet reproduce GlobalOptimal's tie-break.
type shape struct {
	threads int
	dist    distVec
}

// enumerateShapes appends the candidate shapes for a job with budget maxT
// on a machine whose canonical groups are views: for each t ≤ maxT that
// fits the residual free cores, a packed variant (fill canonical groups in
// order) and a spread variant (round-robin one thread at a time). Equal
// variants are emitted once.
func enumerateShapes(views []groupView, maxT int, dst []shape) []shape {
	freeTotal := 0
	for i := range views {
		freeTotal += views[i].free
	}
	if maxT > freeTotal {
		maxT = freeTotal
	}
	dst = dst[:0]
	for t := 1; t <= maxT; t++ {
		var packed distVec
		left := t
		for i := range views {
			k := views[i].free
			if k > left {
				k = left
			}
			packed[i] = int8(k)
			left -= k
			if left == 0 {
				break
			}
		}
		var spread distVec
		left = t
		for left > 0 {
			placed := false
			for i := range views {
				if int(spread[i]) < views[i].free {
					spread[i]++
					left--
					placed = true
					if left == 0 {
						break
					}
				}
			}
			if !placed {
				break
			}
		}
		dst = append(dst, shape{threads: t, dist: packed})
		if spread != packed {
			dst = append(dst, shape{threads: t, dist: spread})
		}
	}
	return dst
}

// shapeKey canonicalises a shape into the per-kind load multiset that
// determines its solo behaviour: which group kinds host how many threads.
// Loads are sorted descending within a kind, so "2 threads in one big
// group" keys the same however the canonical template happened to order
// equal groups.
func shapeKey(views []groupView, dist distVec) string {
	type kl struct{ kind, load int }
	var loads [maxGroups]kl
	n := 0
	for i := range views {
		if dist[i] > 0 {
			loads[n] = kl{views[i].kind, int(dist[i])}
			n++
		}
	}
	s := loads[:n]
	sort.Slice(s, func(i, j int) bool {
		if s[i].kind != s[j].kind {
			return s[i].kind < s[j].kind
		}
		return s[i].load > s[j].load
	})
	var b strings.Builder
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", l.kind, l.load)
	}
	return b.String()
}

// soloMetrics is the outcome of solving a job signature solo on an empty
// machine under one shape: seconds per iteration plus the time-weighted
// activity summary that parameterises the job's interference profile.
type soloMetrics struct {
	unitSec float64 // one iteration, all phases
	busJ    float64 // time-weighted mean bus occupancy
	sensJ   float64 // 1 − time-weighted mean core utilisation
}

// placementFor builds the canonical placement realising a shape-key on an
// empty machine of class c: the first real groups of each kind host the
// sorted loads. The placement Name is the shape key itself so the machine
// model's deterministic response perturbation is keyed consistently for
// both scorers (and memoised once).
func (c *Class) placementFor(key string) (topology.Placement, error) {
	pl := topology.Placement{Name: "fleet:" + key}
	nextGroup := make([]int, len(c.kinds))
	for _, term := range strings.Split(key, ",") {
		var kind, load int
		if _, err := fmt.Sscanf(term, "%d:%d", &kind, &load); err != nil {
			return pl, fmt.Errorf("fleet: bad shape key %q", key)
		}
		gi := c.kindGroups[kind][nextGroup[kind]]
		nextGroup[kind]++
		grp := c.Topo.L2Groups[gi]
		for i := 0; i < load; i++ {
			pl.Cores = append(pl.Cores, grp[i])
		}
	}
	return pl, nil
}

// shardedMemo is a 64-way sharded string-keyed map, the mutex sibling of
// the machine model's lock-free phase memo: cheap enough for the fleet
// path (entries are coarse decisions, not per-iteration hits) and safe for
// the deterministic parallel probes that read it concurrently.
type shardedMemo struct {
	shards [64]struct {
		sync.Mutex
		m map[string]any
	}
}

func (s *shardedMemo) shard(key string) *struct {
	sync.Mutex
	m map[string]any
} {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &s.shards[h&63]
}

// getOrCompute returns the memoised value for key, computing and storing
// it on first use. compute runs outside the shard lock (it can be an
// expensive model solve); concurrent first computations of one key are
// benign because compute is pure — last store wins with an equal value.
func (s *shardedMemo) getOrCompute(key string, compute func() any) any {
	sh := s.shard(key)
	sh.Lock()
	if v, ok := sh.m[key]; ok {
		sh.Unlock()
		return v
	}
	sh.Unlock()
	v := compute()
	sh.Lock()
	if sh.m == nil {
		sh.m = make(map[string]any)
	}
	sh.m[key] = v
	sh.Unlock()
	return v
}

// scorer holds the scoring caches shared by a scheduling run (and safely
// by concurrent probe goroutines): solo metrics per (class, signature,
// shape), solo-best unit times per (signature, budget), and — for the
// incremental scorer only — the decision memo keyed on (class,
// residual-template fingerprint, signature, budget).
type scorer struct {
	f *Fleet
	// solo memoises soloMetrics; keys "solo|<class>|<sig>|<shapeKey>".
	solo shardedMemo
	// best memoises soloBest; keys "best|<sig>|<maxT>".
	best shardedMemo
	// decision memoises *candidate; keys templateKey‖sig‖maxT. Only the
	// incremental scorer consults it; the naive reference recomputes.
	decision shardedMemo
	// placements memoises canonical placements per class and shape key.
	placements shardedMemo

	pool sync.Pool // *scratch
}

type scratch struct {
	views  []groupView
	shapes []shape
	key    []byte
	res    []machine.Result
}

func newScorer(f *Fleet) *scorer {
	s := &scorer{f: f}
	s.pool.New = func() any {
		return &scratch{
			views:  make([]groupView, 0, maxGroups),
			shapes: make([]shape, 0, 2*maxGroups),
			key:    make([]byte, 0, 256),
			res:    make([]machine.Result, 0, 8),
		}
	}
	return s
}

// soloFor solves (or recalls) the solo metrics of job signature sig under
// shape key sk on class ci.
func (s *scorer) soloFor(ci int, j *Job, sk string) *soloMetrics {
	key := "solo|" + itoa(ci) + "|" + j.SigKey + "|" + sk
	return s.solo.getOrCompute(key, func() any {
		c := s.f.Classes[ci]
		pl := s.placements.getOrCompute("pl|"+itoa(ci)+"|"+sk, func() any {
			p, err := c.placementFor(sk)
			if err != nil {
				panic(err)
			}
			return p
		}).(topology.Placement)
		m := &soloMetrics{}
		res := make([]machine.Result, 1)
		var util float64
		for pi := range j.Phases {
			c.Model.RunPhaseSweep(&j.Phases[pi], j.Idio, []topology.Placement{pl}, res)
			m.unitSec += res[0].TimeSec
			m.busJ += res[0].TimeSec * res[0].Activity.BusUtilization
			util += res[0].TimeSec * res[0].Activity.AvgCoreUtil
		}
		m.busJ /= m.unitSec
		m.sensJ = 1 - util/m.unitSec
		if m.sensJ < 0 {
			m.sensJ = 0
		}
		return m
	}).(*soloMetrics)
}

// soloBest returns the fastest solo unit time of sig across every fleet
// class and admissible shape with budget maxT — the QoS reference point:
// a job's degradation bound is relative to the best the fleet could have
// given it on an empty machine.
func (s *scorer) soloBest(j *Job) float64 {
	key := "best|" + j.SigKey + "|" + itoa(j.MaxThreads)
	return s.best.getOrCompute(key, func() any {
		sc := s.pool.Get().(*scratch)
		defer s.pool.Put(sc)
		best := math.Inf(1)
		for ci, c := range s.f.Classes {
			empty := &machState{class: ci}
			empty.recompute(c)
			sc.views = canonGroups(c, empty, sc.views)
			sc.shapes = enumerateShapes(sc.views, j.MaxThreads, sc.shapes)
			for _, sh := range sc.shapes {
				m := s.soloFor(ci, j, shapeKey(sc.views, sh.dist))
				if m.unitSec < best {
					best = m.unitSec
				}
			}
		}
		return best
	}).(float64)
}

// candidate is a scoring decision for (machine template, job): the chosen
// shape in canonical-group coordinates plus the metrics the simulator
// needs to admit and run the job. feasible=false means no shape on this
// template passes the job's own QoS bound.
type candidate struct {
	feasible bool
	threads  int
	dist     distVec // canonical-group coordinates
	shapeKey string
	unitSec  float64 // solo seconds per iteration under the shape
	factor   float64 // predicted interference factor at admission
	busJ     float64
	sensJ    float64
}

// chooseShape evaluates every admissible shape of j on the canonical
// template (views, busSum) and returns the decision: the feasible shape
// with the fastest predicted unit time (solo × interference), candidate
// order breaking ties. Pure function of its arguments — the incremental
// scorer memoises it under the template fingerprint.
func (s *scorer) chooseShape(ci int, views []groupView, busSum float64, j *Job, soloBest float64, qos float64, sc *scratch) *candidate {
	c := s.f.Classes[ci]
	sc.shapes = enumerateShapes(views, j.MaxThreads, sc.shapes)
	bound := (1 + qos) * soloBest
	dec := &candidate{}
	bestPred := math.Inf(1)
	for _, sh := range sc.shapes {
		sk := shapeKey(views, sh.dist)
		sm := s.soloFor(ci, j, sk)
		// External cache pressure the job sees: resident working sets in
		// the groups it occupies, thread-weighted.
		var ext float64
		for i := range views {
			if k := int(sh.dist[i]); k > 0 {
				ext += float64(k) * (views[i].ws / c.l2Bytes)
			}
		}
		ext /= float64(sh.threads)
		fac := composeFactor(sm.sensJ, ext, busSum+sm.busJ)
		pred := sm.unitSec * fac
		if pred > bound {
			continue
		}
		if pred < bestPred {
			bestPred = pred
			*dec = candidate{
				feasible: true,
				threads:  sh.threads,
				dist:     sh.dist,
				shapeKey: sk,
				unitSec:  sm.unitSec,
				factor:   fac,
				busJ:     sm.busJ,
				sensJ:    sm.sensJ,
			}
		}
	}
	return dec
}

// scoreMachine runs the full admission decision of job j on machine m:
// the template-level shape choice (memoised for the incremental scorer,
// recomputed for the naive reference) followed by the resident-impact
// check — placing the job must not push any resident's predicted slowdown
// beyond its own QoS bound. The returned candidate has dist already mapped
// to real group indices.
func (s *scorer) scoreMachine(mi int, m *machState, j *Job, soloBest, qos float64, memoise bool) candidate {
	if m.freeTotal < 1 {
		return candidate{}
	}
	ci := m.class
	c := s.f.Classes[ci]
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	sc.views = canonGroups(c, m, sc.views)

	var dec *candidate
	if memoise {
		sc.key = templateKey(sc.key, ci, sc.views, m.busSum, m.maxSens)
		key := string(sc.key) + "|" + j.SigKey + "|" + itoa(j.MaxThreads)
		dec = s.decision.getOrCompute(key, func() any {
			return s.chooseShape(ci, sc.views, m.busSum, j, soloBest, qos, sc)
		}).(*candidate)
	} else {
		dec = s.chooseShape(ci, sc.views, m.busSum, j, soloBest, qos, sc)
	}
	if !dec.feasible {
		return candidate{}
	}

	// Map the canonical-group distribution onto real groups, then check
	// the marginal impact on every resident against its absolute bound.
	out := *dec
	var real distVec
	var addWs [maxGroups]float64
	for i := range sc.views {
		if k := dec.dist[i]; k > 0 {
			g := sc.views[i].real
			real[g] = k
			addWs[g] = wsContribution(j.wsJ, j.shareJ, int(k))
		}
	}
	out.dist = real
	newBus := m.busSum + dec.busJ
	for _, r := range m.residents {
		var ext float64
		for g := 0; g < len(c.groupSize); g++ {
			if k := int(r.dist[g]); k > 0 {
				own := wsContribution(r.wsJ, r.shareJ, k)
				ext += float64(k) * ((m.ws[g] - own + addWs[g]) / c.l2Bytes)
			}
		}
		ext /= float64(r.threads)
		fac := composeFactor(r.sensJ, ext, newBus)
		if r.unitSec*fac > (1+qos)*r.soloBest {
			return candidate{}
		}
	}
	return out
}

// residentFactor recomputes the realised interference factor of resident r
// on machine m from the current residual state — the same composeFactor
// the admission path uses, so admission bounds are exact.
func residentFactor(c *Class, m *machState, r *placedJob) float64 {
	var ext float64
	for g := 0; g < len(c.groupSize); g++ {
		if k := int(r.dist[g]); k > 0 {
			own := wsContribution(r.wsJ, r.shareJ, k)
			ext += float64(k) * ((m.ws[g] - own) / c.l2Bytes)
		}
	}
	ext /= float64(r.threads)
	return composeFactor(r.sensJ, ext, m.busSum)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
