// Package noise provides seeded, deterministic measurement-noise sources.
//
// The paper's accuracy results (median IPC prediction error ≈ 9%) only make
// sense against realistic run-to-run variance in hardware counter readings
// and power-meter samples. This package supplies reproducible multiplicative
// noise streams used by the machine model, the PMU sampler and the power
// meter model. Every stream is derived from an explicit seed so experiments
// are bit-reproducible.
package noise

import (
	"math"
	"math/rand"
)

// Source is a deterministic noise stream.
type Source struct {
	seed int64
	rng  *rand.Rand
}

// New returns a noise source seeded with seed. Distinct subsystems should
// derive sub-sources via Fork so that adding draws in one subsystem does not
// shift another subsystem's stream.
func New(seed int64) *Source {
	return &Source{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream identified by id. Forking is
// stable: the same (seed, id) pair always yields the same stream regardless
// of how many values the parent has produced.
func (s *Source) Fork(id string) *Source {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for _, b := range []byte(id) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return New(h ^ s.seed)
}

// Seed returns the seed the source was constructed with.
func (s *Source) Seed() int64 { return s.seed }

// Gaussian returns a single standard normal draw.
func (s *Source) Gaussian() float64 { return s.rng.NormFloat64() }

// Multiplicative returns a noise factor with mean ≈ 1 and relative standard
// deviation sigma, drawn from a log-normal distribution (always positive).
// sigma = 0 returns exactly 1.
func (s *Source) Multiplicative(sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	// Log-normal with E[X]=1: mu = -0.5*ln(1+sigma^2), s2 = ln(1+sigma^2).
	s2 := math.Log(1 + sigma*sigma)
	mu := -0.5 * s2
	return math.Exp(mu + math.Sqrt(s2)*s.rng.NormFloat64())
}

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Rand exposes the underlying *rand.Rand for callers that need the full API
// (e.g. shuffling training sets).
func (s *Source) Rand() *rand.Rand { return s.rng }
