package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 100; i++ {
		if a.Gaussian() != b.Gaussian() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkStability(t *testing.T) {
	a := New(7)
	// Consume some draws from one parent but not the other: forks must
	// still agree.
	for i := 0; i < 50; i++ {
		a.Gaussian()
	}
	b := New(7)
	fa := a.Fork("machine")
	fb := b.Fork("machine")
	for i := 0; i < 50; i++ {
		if fa.Uniform(0, 1) != fb.Uniform(0, 1) {
			t.Fatal("forks of equal (seed, id) diverged")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	s := New(7)
	a := s.Fork("a")
	b := s.Fork("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Gaussian() == b.Gaussian() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("distinct fork ids produced %d/100 equal draws", same)
	}
}

func TestMultiplicativeZeroSigma(t *testing.T) {
	s := New(1)
	for i := 0; i < 10; i++ {
		if got := s.Multiplicative(0); got != 1 {
			t.Fatalf("Multiplicative(0) = %g, want 1", got)
		}
	}
}

func TestMultiplicativePositiveAndCentered(t *testing.T) {
	s := New(99)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Multiplicative(0.1)
		if v <= 0 {
			t.Fatalf("Multiplicative produced non-positive %g", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("mean of Multiplicative(0.1) = %g, want ≈ 1", mean)
	}
}

func TestMultiplicativeSigmaScales(t *testing.T) {
	varOf := func(sigma float64) float64 {
		s := New(5)
		var sum, sum2 float64
		const n = 20000
		for i := 0; i < n; i++ {
			v := s.Multiplicative(sigma)
			sum += v
			sum2 += v * v
		}
		m := sum / n
		return sum2/n - m*m
	}
	small, large := varOf(0.02), varOf(0.2)
	if small >= large {
		t.Errorf("variance did not grow with sigma: %g vs %g", small, large)
	}
}

func TestUniformBounds(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Uniform(2, 5)
			if v < 2 || v >= 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermAndIntn(t *testing.T) {
	s := New(3)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
	for i := 0; i < 100; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}
