package recal

import (
	"math/rand"
	"testing"
)

// obsStream produces a deterministic observation sequence: phase drawn
// from phases, IPC gaussian around mean, err gaussian around errMean.
func obsStream(seed int64, n int, phases []uint64, mean, errMean float64) []Obs {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Obs, 0, n)
	for i := 0; i < n; i++ {
		o := Obs{
			Phase:  phases[rng.Intn(len(phases))],
			IPC:    mean + 0.05*rng.NormFloat64(),
			HasIPC: true,
			Err:    errMean + 0.01*rng.NormFloat64(),
		}
		o.Vals[0] = o.IPC
		o.Mask = 1
		out = append(out, o)
	}
	return out
}

func TestStoreReservoirDeterministic(t *testing.T) {
	stream := obsStream(1, 5000, []uint64{HashPhase([]byte("a")), HashPhase([]byte("b"))}, 1.2, 0.05)
	mk := func(seed int64) []Obs {
		s := NewStore(StoreConfig{Reservoir: 64, Seed: seed})
		for _, o := range stream {
			s.Observe(o)
		}
		return s.Reservoir()
	}
	r1, r2 := mk(42), mk(42)
	if len(r1) != 64 {
		t.Fatalf("reservoir fill = %d, want 64", len(r1))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("reservoir diverged at slot %d under the same seed", i)
		}
	}
	r3 := mk(7)
	same := true
	for i := range r1 {
		if r1[i] != r3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different admission seeds produced identical reservoirs over 5000 observations")
	}
}

// TestStoreReservoirUniform checks Algorithm R actually samples the whole
// stream, not just a prefix: tag each observation with its index and
// require the sampled indices to span the stream.
func TestStoreReservoirUniform(t *testing.T) {
	s := NewStore(StoreConfig{Reservoir: 128, Seed: 3})
	const n = 20000
	for i := 0; i < n; i++ {
		var o Obs
		o.IPC = float64(i)
		o.HasIPC = true
		s.Observe(o)
	}
	res := s.Reservoir()
	if len(res) != 128 {
		t.Fatalf("reservoir fill = %d, want 128", len(res))
	}
	var sum float64
	late := 0
	for _, o := range res {
		sum += o.IPC
		if o.IPC >= n/2 {
			late++
		}
	}
	mean := sum / float64(len(res))
	if mean < 0.35*n || mean > 0.65*n {
		t.Errorf("sampled index mean %.0f is far from the stream midpoint %.0f", mean, float64(n)/2)
	}
	if late < 32 || late > 96 {
		t.Errorf("%d/128 samples from the second half; want roughly half", late)
	}
}

func TestStorePhaseTableBounded(t *testing.T) {
	s := NewStore(StoreConfig{MaxPhases: 8, Seed: 1})
	for i := 0; i < 100; i++ {
		s.Observe(Obs{Phase: uint64(i), Err: 0.1})
	}
	if got := len(s.Phases()); got != 8 {
		t.Fatalf("phase table holds %d entries, bound is 8", got)
	}
}

func TestStoreResetRearms(t *testing.T) {
	s := NewStore(StoreConfig{Reservoir: 16, RefWindow: 8, Window: 8, Seed: 1})
	for i := 0; i < 40; i++ {
		s.Observe(Obs{Phase: 1, IPC: 1, HasIPC: true})
	}
	if s.Seq() != 40 || s.Total() != 40 {
		t.Fatalf("seq/total = %d/%d, want 40/40", s.Seq(), s.Total())
	}
	s.Reset()
	if s.Seq() != 0 {
		t.Fatalf("seq after reset = %d, want 0", s.Seq())
	}
	if s.Total() != 40 {
		t.Fatalf("total after reset = %d, want 40 (lifetime counter never resets)", s.Total())
	}
	if s.ReservoirLen() != 0 || len(s.Phases()) != 0 {
		t.Fatal("reset left reservoir or phase table populated")
	}
	v := s.CheckDrift(DriftConfig{})
	if v.Armed || v.WindowFull {
		t.Fatalf("detector still armed after reset: %+v", v)
	}
}
