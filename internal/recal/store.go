package recal

import "sync"

// MaxVals is the width of an observation's fixed rate vector, indexed by
// event id. It must be at least the platform's event catalogue size
// (pmu.NumEvents); keeping it a package constant keeps Obs a fixed-size
// value the store can copy without allocating.
const MaxVals = 16

// Obs is one sampled observation off the predict path: the request's rate
// vector (indexed by event id, with a presence mask), the observed IPC at
// the sampling configuration when the request carried one, the phase label
// hash, and the label-free prediction-error proxy the serving layer
// computed for the request.
type Obs struct {
	// Phase is HashPhase of the request's phase label.
	Phase uint64
	// Mask has bit e set when Vals[e] is present in the request.
	Mask uint64
	// Vals holds the observed per-cycle rates, indexed by event id.
	Vals [MaxVals]float64
	// IPC is the observed IPC at the sampling configuration; HasIPC
	// reports whether the request carried one.
	IPC    float64
	HasIPC bool
	// Err is the prediction-error proxy: the live bank's richest-vs-
	// most-reduced predictor disagreement on this request's rates.
	Err float64
}

// StoreConfig bounds and seeds a Store. Zero fields take the defaults.
type StoreConfig struct {
	// Reservoir is the capacity of the uniform sample over all
	// observations since the last Reset (Algorithm R). Default 1024.
	Reservoir int
	// RefWindow is how many observations after a Reset form the reference
	// window drift is measured against. Default 256.
	RefWindow int
	// Window is the rolling current-traffic window compared against the
	// reference. Default 256.
	Window int
	// MaxPhases bounds the per-phase error table and the reference phase
	// set. Default 64.
	MaxPhases int
	// EWMAAlpha is the per-phase error EWMA smoothing factor. Default 0.05.
	EWMAAlpha float64
	// Seed drives reservoir admission.
	Seed int64
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Reservoir <= 0 {
		c.Reservoir = 1024
	}
	if c.RefWindow <= 0 {
		c.RefWindow = 256
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.MaxPhases <= 0 {
		c.MaxPhases = 64
	}
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 0.05
	}
	return c
}

// winObs is one entry of the rolling current-traffic window.
type winObs struct {
	phase  uint64
	ipc    float64
	hasIPC bool
	// novel reports whether the phase was absent from the reference
	// window's phase set when this observation arrived.
	novel bool
	err   float64
}

// phaseStat is one phase's running prediction-error EWMA.
type phaseStat struct {
	hash uint64
	n    uint64
	ewma float64
}

// PhaseErr is a phase error statistic as reported by Phases.
type PhaseErr struct {
	Hash    uint64  `json:"phase_hash"`
	Count   uint64  `json:"count"`
	ErrEWMA float64 `json:"err_ewma"`
}

// Store is the bounded observation store: a seeded reservoir sample of all
// traffic since the last Reset, a frozen reference window (the first
// RefWindow observations after arming), a rolling current window, and a
// bounded per-phase prediction-error EWMA table. Observe is allocation-free
// and safe for concurrent use; all memory is bounded by StoreConfig.
type Store struct {
	cfg StoreConfig

	mu    sync.Mutex
	total uint64 // observations over the store's lifetime (never reset)
	seq   uint64 // observations since the last Reset
	rng   uint64 // splitmix64 admission state

	res []Obs

	// Reference window: Welford IPC statistics plus the phase set.
	refN      int
	refIPCN   int
	refMean   float64
	refM2     float64
	refPhases []uint64

	// Rolling current window (ring buffer).
	win   []winObs
	winN  int
	winAt int

	phases []phaseStat
}

// NewStore builds a store with every buffer preallocated to its bound, so
// Observe never allocates.
func NewStore(cfg StoreConfig) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		cfg:       cfg,
		rng:       splitmix64(uint64(cfg.Seed)),
		res:       make([]Obs, 0, cfg.Reservoir),
		refPhases: make([]uint64, 0, cfg.MaxPhases),
		win:       make([]winObs, cfg.Window),
		phases:    make([]phaseStat, 0, cfg.MaxPhases),
	}
}

// Observe records one observation: reservoir admission, per-phase error
// EWMA, and reference-then-rolling window accounting. Allocation-free.
// Returns the observation's lifetime sequence number (1-based, monotonic
// across Resets) — the logical clock canary admission and event records
// key on.
func (s *Store) Observe(o Obs) uint64 {
	s.mu.Lock()
	s.total++
	s.seq++

	// Reservoir (Algorithm R): the first Reservoir observations fill it;
	// afterwards the n-th observation replaces a uniform slot with
	// probability Reservoir/n. The admission stream is seeded, so a given
	// observation sequence always leaves the same reservoir.
	if len(s.res) < s.cfg.Reservoir {
		s.res = append(s.res, o)
	} else {
		s.rng = splitmix64(s.rng)
		if j := s.rng % s.seq; j < uint64(s.cfg.Reservoir) {
			s.res[j] = o
		}
	}

	found := false
	for i := range s.phases {
		if s.phases[i].hash == o.Phase {
			p := &s.phases[i]
			p.n++
			p.ewma += s.cfg.EWMAAlpha * (o.Err - p.ewma)
			found = true
			break
		}
	}
	if !found && len(s.phases) < s.cfg.MaxPhases {
		s.phases = append(s.phases, phaseStat{hash: o.Phase, n: 1, ewma: o.Err})
	}

	if s.refN < s.cfg.RefWindow {
		// Still arming: this observation belongs to the reference window.
		s.refN++
		if o.HasIPC {
			s.refIPCN++
			d := o.IPC - s.refMean
			s.refMean += d / float64(s.refIPCN)
			s.refM2 += d * (o.IPC - s.refMean)
		}
		known := false
		for _, h := range s.refPhases {
			if h == o.Phase {
				known = true
				break
			}
		}
		if !known && len(s.refPhases) < s.cfg.MaxPhases {
			s.refPhases = append(s.refPhases, o.Phase)
		}
	} else {
		novel := true
		for _, h := range s.refPhases {
			if h == o.Phase {
				novel = false
				break
			}
		}
		s.win[s.winAt] = winObs{phase: o.Phase, ipc: o.IPC, hasIPC: o.HasIPC, novel: novel, err: o.Err}
		s.winAt++
		if s.winAt == len(s.win) {
			s.winAt = 0
		}
		if s.winN < len(s.win) {
			s.winN++
		}
	}
	total := s.total
	s.mu.Unlock()
	return total
}

// Reset re-arms the store after a bank promotion, rejection or rollback:
// the reservoir, reference window, rolling window and phase table start
// over against the new model, so drift is always measured relative to the
// traffic the current bank generation started serving under. The lifetime
// observation counter and the admission stream continue — resetting at a
// deterministic point keeps everything downstream deterministic.
func (s *Store) Reset() {
	s.mu.Lock()
	s.seq = 0
	s.res = s.res[:0]
	s.refN, s.refIPCN = 0, 0
	s.refMean, s.refM2 = 0, 0
	s.refPhases = s.refPhases[:0]
	s.winN, s.winAt = 0, 0
	s.phases = s.phases[:0]
	s.mu.Unlock()
}

// Total returns the lifetime observation count (monotonic across Resets).
func (s *Store) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Seq returns the observation count since the last Reset.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// ReservoirLen returns the current reservoir fill.
func (s *Store) ReservoirLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.res)
}

// Reservoir returns a copy of the reservoir contents (admission order).
func (s *Store) Reservoir() []Obs {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Obs(nil), s.res...)
}

// Phases returns a copy of the per-phase error table in first-seen order.
func (s *Store) Phases() []PhaseErr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PhaseErr, 0, len(s.phases))
	for _, p := range s.phases {
		out = append(out, PhaseErr{Hash: p.hash, Count: p.n, ErrEWMA: p.ewma})
	}
	return out
}
