package recal

import "math"

// DriftConfig sets the trip thresholds of the drift detector. Zero fields
// take the defaults.
type DriftConfig struct {
	// NovelFrac trips when at least this fraction of the current window's
	// observations carry a phase label absent from the reference window —
	// the workload mix itself changed. Default 0.25.
	NovelFrac float64
	// MeanShiftZ trips when the current window's mean observed IPC is this
	// many reference standard deviations away from the reference mean — a
	// distribution shift in the input rates. Default 4.
	MeanShiftZ float64
	// ErrEWMA trips when any phase's prediction-error EWMA (with at least
	// MinPhaseObs observations) exceeds it. Default 0.5.
	ErrEWMA float64
	// MinPhaseObs is the burn-in before a phase's EWMA may trip. Default 32.
	MinPhaseObs uint64
	// MinWindowIPC is how many window observations must carry an observed
	// IPC before the mean-shift statistic is trusted. Default 16.
	MinWindowIPC int
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.NovelFrac <= 0 {
		c.NovelFrac = 0.25
	}
	if c.MeanShiftZ <= 0 {
		c.MeanShiftZ = 4
	}
	if c.ErrEWMA <= 0 {
		c.ErrEWMA = 0.5
	}
	if c.MinPhaseObs == 0 {
		c.MinPhaseObs = 32
	}
	if c.MinWindowIPC <= 0 {
		c.MinWindowIPC = 16
	}
	return c
}

// Verdict is one drift evaluation: whether the retrain trigger tripped,
// why, and the statistics behind the decision.
type Verdict struct {
	Tripped bool   `json:"tripped"`
	Reason  string `json:"reason,omitempty"`
	// Armed reports whether the reference window has filled since the last
	// Reset; WindowFull whether the rolling window has, too. Drift is only
	// ever declared with both full.
	Armed      bool    `json:"armed"`
	WindowFull bool    `json:"window_full"`
	NovelFrac  float64 `json:"novel_frac"`
	MeanShiftZ float64 `json:"mean_shift_z"`
	MaxErrEWMA float64 `json:"max_err_ewma"`
}

// CheckDrift evaluates the detector against the store's current state.
// Purely a read: calling it never perturbs future verdicts, so the control
// loop may poll at any cadence without changing what is detected.
func (s *Store) CheckDrift(cfg DriftConfig) Verdict {
	cfg = cfg.withDefaults()
	s.mu.Lock()
	defer s.mu.Unlock()

	v := Verdict{
		Armed:      s.refN >= s.cfg.RefWindow,
		WindowFull: s.winN == len(s.win),
	}
	for i := range s.phases {
		p := &s.phases[i]
		if p.n >= cfg.MinPhaseObs && p.ewma > v.MaxErrEWMA {
			v.MaxErrEWMA = p.ewma
		}
	}
	if !v.Armed || !v.WindowFull {
		return v
	}

	novel := 0
	ipcN := 0
	var ipcSum float64
	for i := 0; i < s.winN; i++ {
		w := &s.win[i]
		if w.novel {
			novel++
		}
		if w.hasIPC {
			ipcN++
			ipcSum += w.ipc
		}
	}
	v.NovelFrac = float64(novel) / float64(s.winN)
	if ipcN >= cfg.MinWindowIPC && s.refIPCN >= 2 {
		refStd := math.Sqrt(s.refM2 / float64(s.refIPCN-1))
		v.MeanShiftZ = math.Abs(ipcSum/float64(ipcN)-s.refMean) / math.Max(refStd, 1e-9)
	}

	switch {
	case v.MaxErrEWMA >= cfg.ErrEWMA:
		v.Tripped, v.Reason = true, "error-ewma"
	case v.NovelFrac >= cfg.NovelFrac:
		v.Tripped, v.Reason = true, "novel-phase"
	case v.MeanShiftZ >= cfg.MeanShiftZ:
		v.Tripped, v.Reason = true, "mean-shift"
	}
	return v
}
