package recal

// Snapshot is the wire shape of GET /v1/recal/status: the controller
// state, the store's counters and phase error table, the latest drift
// verdict, canary progress, and the bounded event history. Every field is
// a deterministic function of the observation sequence — no wall-clock
// timestamps — so status bodies from a seeded serial trace are
// byte-identical across runs.
type Snapshot struct {
	Enabled bool   `json:"enabled"`
	State   string `json:"state"`
	// Generation is the live bank's generation; History is how many prior
	// generations are retained for rollback.
	Generation int `json:"generation"`
	History    int `json:"history"`
	// Observed counts lifetime observations; WindowSeq counts since the
	// last re-arm (promotion, rejection or rollback).
	Observed  uint64 `json:"observed"`
	WindowSeq uint64 `json:"window_seq"`
	Reservoir int    `json:"reservoir"`
	// Drift is the verdict CheckDrift returns right now.
	Drift Verdict `json:"drift"`
	// Phases is the per-phase prediction-error EWMA table.
	Phases []PhaseErr `json:"phases,omitempty"`
	Canary Canary     `json:"canary"`
	Events []Event    `json:"events,omitempty"`
}

// Canary reports canary-mode progress.
type Canary struct {
	// Frac is the configured shadow-scoring fraction.
	Frac float64 `json:"frac"`
	// Scored and Failed count shadow predictions on the candidate since
	// the canary began.
	Scored uint64 `json:"scored"`
	Failed uint64 `json:"failed"`
}
