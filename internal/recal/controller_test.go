package recal

import "testing"

func TestCanaryAdmissionFraction(t *testing.T) {
	c := NewController(42)
	c.BeginCanary(0.25)
	admitted := 0
	const n = 20000
	for seq := uint64(0); seq < n; seq++ {
		if c.CanaryAdmit(seq) {
			admitted++
		}
	}
	frac := float64(admitted) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("admitted %.3f of requests at frac 0.25", frac)
	}
	// Deterministic: the same salt admits the same request subsequence.
	c2 := NewController(42)
	c2.BeginCanary(0.25)
	for seq := uint64(0); seq < 1000; seq++ {
		if c.CanaryAdmit(seq) != c2.CanaryAdmit(seq) {
			t.Fatalf("admission diverged at seq %d under the same seed", seq)
		}
	}
	c.EndCanary()
	for seq := uint64(0); seq < 1000; seq++ {
		if c.CanaryAdmit(seq) {
			t.Fatal("admission after EndCanary")
		}
	}
}

func TestCanaryAdmissionEdges(t *testing.T) {
	c := NewController(1)
	c.BeginCanary(0)
	if c.CanaryAdmit(7) {
		t.Fatal("frac 0 admitted a request")
	}
	c.BeginCanary(1)
	for seq := uint64(0); seq < 100; seq++ {
		if !c.CanaryAdmit(seq) {
			t.Fatalf("frac 1 skipped seq %d", seq)
		}
	}
}

func TestControllerEventLogBounded(t *testing.T) {
	c := NewController(1)
	for i := 0; i < maxEvents+40; i++ {
		c.Record(Event{Seq: uint64(i), Kind: "rejected"})
	}
	evs := c.Events()
	if len(evs) != maxEvents {
		t.Fatalf("event log holds %d, bound is %d", len(evs), maxEvents)
	}
	if evs[len(evs)-1].Seq != uint64(maxEvents+39) {
		t.Fatalf("newest event seq = %d, want %d", evs[len(evs)-1].Seq, maxEvents+39)
	}
	if evs[0].Seq != 40 {
		t.Fatalf("oldest retained seq = %d, want 40", evs[0].Seq)
	}
}

func TestControllerStateMachine(t *testing.T) {
	c := NewController(1)
	if c.State() != StateIdle {
		t.Fatalf("initial state = %v", c.State())
	}
	if !c.CompareAndSetState(StateIdle, StateTraining) {
		t.Fatal("idle → training refused")
	}
	if c.CompareAndSetState(StateIdle, StateCanary) {
		t.Fatal("idle → canary succeeded from training")
	}
	c.SetState(StateCanary)
	if got := c.State().String(); got != "canary" {
		t.Fatalf("state string = %q", got)
	}
}
