// Package recal implements the traffic-facing half of actord's online
// recalibration loop: a bounded observation store sampled off /v1/predict
// traffic, a drift detector over it, and the control-plane bookkeeping
// (state machine, generation events, canary admission) that the serving
// layer drives.
//
// The package is deliberately ignorant of banks and engines — the serving
// layer (pkg/actor) owns retraining, validation and the atomic bank swap;
// this package answers "has traffic drifted away from the window the live
// model was calibrated against?" and "what happened, when?" with bounded
// memory, no allocation on the observation path, and fully deterministic
// behaviour under a seed: the same observation sequence always produces
// the same reservoir contents, the same drift verdicts and the same canary
// admissions.
package recal

// splitmix64 is the per-step generator behind reservoir admission and
// canary hashing: one multiply-xor-shift pipeline with full 64-bit
// avalanche, deterministic and allocation-free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashPhase maps a phase label to its 64-bit identity (FNV-1a). The store
// tracks phases by hash so the observation path never retains or allocates
// label strings; the empty label hashes to the FNV offset basis and is a
// perfectly ordinary phase.
func HashPhase(label []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range label {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
