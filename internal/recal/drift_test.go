package recal

import "testing"

var (
	phaseA = HashPhase([]byte("steady"))
	phaseB = HashPhase([]byte("shifted"))
)

// smallStore returns a store with tight windows so tests stay fast.
func smallStore() *Store {
	return NewStore(StoreConfig{Reservoir: 64, RefWindow: 32, Window: 32, Seed: 9})
}

func TestDriftSteadyTrafficNoTrip(t *testing.T) {
	s := smallStore()
	for _, o := range obsStream(5, 200, []uint64{phaseA, phaseB}, 1.3, 0.02) {
		s.Observe(o)
	}
	v := s.CheckDrift(DriftConfig{})
	if !v.Armed || !v.WindowFull {
		t.Fatalf("detector should be armed with a full window: %+v", v)
	}
	if v.Tripped {
		t.Fatalf("steady traffic tripped the detector: %+v", v)
	}
}

func TestDriftNotArmedNeverTrips(t *testing.T) {
	s := smallStore()
	// 40 observations: reference (32) full, window only 8/32 — even a
	// wildly novel phase mix must not trip yet.
	for i := 0; i < 40; i++ {
		s.Observe(Obs{Phase: uint64(1000 + i), IPC: 10, HasIPC: true, Err: 5})
	}
	if v := s.CheckDrift(DriftConfig{}); v.Tripped {
		t.Fatalf("detector tripped before the window filled: %+v", v)
	}
}

func TestDriftNovelPhaseTrips(t *testing.T) {
	s := smallStore()
	for _, o := range obsStream(6, 64, []uint64{phaseA}, 1.3, 0.02) {
		s.Observe(o)
	}
	// The workload flips to a phase the reference never saw, at the same
	// IPC level — only the novel-phase statistic can catch this.
	for _, o := range obsStream(7, 32, []uint64{phaseB}, 1.3, 0.02) {
		s.Observe(o)
	}
	v := s.CheckDrift(DriftConfig{})
	if !v.Tripped || v.Reason != "novel-phase" {
		t.Fatalf("want novel-phase trip, got %+v", v)
	}
	if v.NovelFrac != 1 {
		t.Errorf("novel fraction = %v, want 1 (entire window is the new phase)", v.NovelFrac)
	}
}

func TestDriftMeanShiftTrips(t *testing.T) {
	s := smallStore()
	for _, o := range obsStream(8, 64, []uint64{phaseA}, 1.3, 0.02) {
		s.Observe(o)
	}
	// Same phase label, but the observed IPC level collapses: a
	// distribution shift in the inputs with no new phases.
	for _, o := range obsStream(9, 32, []uint64{phaseA}, 0.4, 0.02) {
		s.Observe(o)
	}
	v := s.CheckDrift(DriftConfig{})
	if !v.Tripped || v.Reason != "mean-shift" {
		t.Fatalf("want mean-shift trip, got %+v", v)
	}
	if v.NovelFrac != 0 {
		t.Errorf("novel fraction = %v, want 0", v.NovelFrac)
	}
}

func TestDriftErrorEWMATrips(t *testing.T) {
	s := smallStore()
	for _, o := range obsStream(10, 64, []uint64{phaseA}, 1.3, 0.02) {
		s.Observe(o)
	}
	// Traffic looks identical, but the live bank's internal disagreement
	// proxy climbs: per-phase EWMA crosses the threshold.
	for _, o := range obsStream(11, 64, []uint64{phaseA}, 1.3, 0.9) {
		s.Observe(o)
	}
	v := s.CheckDrift(DriftConfig{})
	if !v.Tripped || v.Reason != "error-ewma" {
		t.Fatalf("want error-ewma trip, got %+v", v)
	}
	if v.MaxErrEWMA < 0.5 {
		t.Errorf("max EWMA %v below the default threshold yet tripped", v.MaxErrEWMA)
	}
}

func TestDriftVerdictDeterministic(t *testing.T) {
	run := func() Verdict {
		s := smallStore()
		for _, o := range obsStream(12, 64, []uint64{phaseA}, 1.3, 0.02) {
			s.Observe(o)
		}
		for _, o := range obsStream(13, 40, []uint64{phaseA, phaseB}, 1.1, 0.02) {
			s.Observe(o)
		}
		return s.CheckDrift(DriftConfig{})
	}
	if v1, v2 := run(), run(); v1 != v2 {
		t.Fatalf("identical traces produced different verdicts:\n%+v\n%+v", v1, v2)
	}
}
