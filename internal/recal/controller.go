package recal

import (
	"math"
	"sync"
	"sync/atomic"
)

// State is the recalibration state machine: Idle (watching for drift),
// Training (a shadow retrain is running), Canary (a validated candidate is
// shadow-scoring a fraction of live traffic before promotion).
type State int32

const (
	StateIdle State = iota
	StateTraining
	StateCanary
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateTraining:
		return "training"
	case StateCanary:
		return "canary"
	}
	return "unknown"
}

// Event is one recalibration lifecycle record. Events carry the lifetime
// observation sequence number as their logical clock instead of wall time,
// so the event log of a seeded traffic trace is byte-for-byte reproducible.
type Event struct {
	// Seq is the store's lifetime observation count when the event fired.
	Seq uint64 `json:"seq"`
	// Generation is the bank generation the event concerns.
	Generation int `json:"generation"`
	// Kind is one of "promoted", "rejected", "canary-begin",
	// "canary-abort" or "rollback".
	Kind string `json:"kind"`
	// Trigger records what started the attempt ("manual", or "drift:" plus
	// the detector's reason).
	Trigger string `json:"trigger,omitempty"`
	// Detail is a human-readable note (rejection reasons and the like).
	Detail string `json:"detail,omitempty"`
	// CandidateErr and LiveErr are the holdout median relative errors the
	// accept/reject decision compared (zero on events with no validation).
	CandidateErr float64 `json:"candidate_err,omitempty"`
	LiveErr      float64 `json:"live_err,omitempty"`
}

// maxEvents bounds the retained event history; older events are dropped.
const maxEvents = 64

// Controller is the control-plane bookkeeping of the recalibration loop:
// the state machine, the bounded event log, and lock-free canary
// admission. The serving layer owns the actual retraining and swapping.
type Controller struct {
	mu     sync.Mutex
	state  State
	events []Event

	// canaryThresh is the admission threshold over the full uint64 range
	// (0 = canary off); canarySalt seeds the admission hash so different
	// deployments sample different request subsequences deterministically.
	canaryThresh atomic.Uint64
	canarySalt   uint64

	// Scored and Failed count canary shadow predictions since BeginCanary.
	Scored atomic.Uint64
	Failed atomic.Uint64
}

// NewController builds a controller whose canary admission hash is salted
// with seed.
func NewController(seed int64) *Controller {
	return &Controller{canarySalt: splitmix64(uint64(seed))}
}

// State returns the current state.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// SetState moves the machine unconditionally.
func (c *Controller) SetState(s State) {
	c.mu.Lock()
	c.state = s
	c.mu.Unlock()
}

// CompareAndSetState moves from → to atomically, reporting whether it did.
func (c *Controller) CompareAndSetState(from, to State) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != from {
		return false
	}
	c.state = to
	return true
}

// Record appends ev to the bounded event log.
func (c *Controller) Record(ev Event) {
	c.mu.Lock()
	if len(c.events) == maxEvents {
		copy(c.events, c.events[1:])
		c.events = c.events[:maxEvents-1]
	}
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of the event log, oldest first.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// BeginCanary arms canary admission at the given traffic fraction and
// zeroes the shadow-scoring counters.
func (c *Controller) BeginCanary(frac float64) {
	c.Scored.Store(0)
	c.Failed.Store(0)
	switch {
	case frac <= 0:
		c.canaryThresh.Store(0)
	case frac >= 1:
		c.canaryThresh.Store(math.MaxUint64)
	default:
		c.canaryThresh.Store(uint64(frac * float64(math.MaxUint64)))
	}
}

// EndCanary disarms canary admission.
func (c *Controller) EndCanary() { c.canaryThresh.Store(0) }

// CanaryAdmit reports whether the observation with lifetime sequence
// number seq is shadow-scored on the candidate. Lock-free — this runs on
// the predict hot path — and a pure function of (seq, salt, threshold),
// so a seeded serial trace always samples the same requests.
func (c *Controller) CanaryAdmit(seq uint64) bool {
	t := c.canaryThresh.Load()
	return t != 0 && splitmix64(seq^c.canarySalt) < t
}
