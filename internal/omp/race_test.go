package omp

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSetThreadsRacesParallelRegion drives SetThreads concurrently with
// running parallel constructs (run under `go test -race ./internal/omp/`).
// The snapshot-once contract means every construct must observe one
// consistent team size: exactly nthreads bodies run, and each body sees the
// same nthreads value.
func TestSetThreadsRacesParallelRegion(t *testing.T) {
	team := NewTeam(4, false)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			team.SetThreads(1 + i%8)
		}
	}()

	for iter := 0; iter < 200; iter++ {
		var ran atomic.Int64
		var sizeSeen atomic.Int64
		team.ParallelRegion(func(tid, nthreads int) {
			ran.Add(1)
			sizeSeen.CompareAndSwap(0, int64(nthreads))
			if int64(nthreads) != sizeSeen.Load() {
				t.Errorf("torn region: members saw sizes %d and %d", nthreads, sizeSeen.Load())
			}
			if tid < 0 || tid >= nthreads {
				t.Errorf("tid %d out of range [0,%d)", tid, nthreads)
			}
		})
		if ran.Load() != sizeSeen.Load() {
			t.Fatalf("region ran %d members for snapshotted size %d", ran.Load(), sizeSeen.Load())
		}
	}

	for iter := 0; iter < 200; iter++ {
		const n = 64
		var covered atomic.Int64
		team.ParallelBlocks(n, func(lo, hi int) {
			covered.Add(int64(hi - lo))
		})
		if covered.Load() != n {
			t.Fatalf("blocks covered %d of %d iterations", covered.Load(), n)
		}
	}

	stop.Store(true)
	wg.Wait()
}
