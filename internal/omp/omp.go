// Package omp is a small OpenMP-like runtime for Go: a persistent worker
// team executing parallel loops and regions with static or dynamic
// scheduling, a reusable barrier, and a runtime-adjustable thread count —
// the knob ACTOR's live throttling turns between phases.
//
// It is the live-execution counterpart of the simulated platform: the same
// instrumentation API (internal/core's LiveTuner) drives either. Note Go
// cannot pin goroutines to specific cores portably, so placement control
// (the paper's 2a/2b distinction) exists only in the simulator; live
// throttling controls concurrency degree via team size and GOMAXPROCS.
package omp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Team is a persistent group of workers executing parallel work items. The
// zero value is not usable; construct with NewTeam.
type Team struct {
	mu       sync.Mutex
	threads  int
	maxProcs bool
}

// NewTeam returns a team of n workers (n ≤ 0 selects runtime.NumCPU()).
// When adjustGOMAXPROCS is true, SetThreads also adjusts GOMAXPROCS so the
// Go scheduler's parallelism follows the team size — the closest portable
// analogue to leaving cores idle.
func NewTeam(n int, adjustGOMAXPROCS bool) *Team {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	t := &Team{threads: n, maxProcs: adjustGOMAXPROCS}
	if adjustGOMAXPROCS {
		runtime.GOMAXPROCS(n)
	}
	return t
}

// SetThreads changes the concurrency level used by subsequent parallel
// constructs. It is safe to call between (not within) parallel regions.
func (t *Team) SetThreads(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.threads = n
	if t.maxProcs {
		runtime.GOMAXPROCS(n)
	}
}

// Threads returns the current concurrency level.
func (t *Team) Threads() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.threads
}

// snapshot reads the thread count exactly once at construct entry. Every
// parallel construct sizes itself from one snapshot so a concurrent
// SetThreads (ACTOR throttling between phases) cannot tear a running
// region: the construct that observed n threads starts n workers, waits
// for n workers, and reports n to every body — the next construct sees
// the new count.
func (t *Team) snapshot() int {
	return t.Threads()
}

// ParallelRegion runs fn concurrently on every team member, passing the
// member id and the team size, and returns when all members finish — an
// `omp parallel` block. The team size is snapshotted once at entry; see
// snapshot.
func (t *Team) ParallelRegion(fn func(tid, nthreads int)) {
	n := t.snapshot()
	var wg sync.WaitGroup
	wg.Add(n)
	for tid := 0; tid < n; tid++ {
		go func(tid int) {
			defer wg.Done()
			fn(tid, n)
		}(tid)
	}
	wg.Wait()
}

// ParallelFor executes body(i) for i in [0, n) with static scheduling:
// the iteration space is split into one contiguous block per thread —
// `omp parallel for schedule(static)`.
func (t *Team) ParallelFor(n int, body func(i int)) {
	t.ParallelBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ParallelBlocks statically partitions [0, n) into one block per thread and
// runs body(lo, hi) on each — the bulk form of ParallelFor, avoiding
// per-iteration closure overhead for inner loops. The team size is
// snapshotted once at entry; see snapshot.
func (t *Team) ParallelBlocks(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nt := t.snapshot()
	if nt > n {
		nt = n
	}
	chunk := (n + nt - 1) / nt
	var wg sync.WaitGroup
	for tid := 0; tid < nt; tid++ {
		lo := tid * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelForDynamic executes body over [0, n) in chunks claimed from a
// shared counter — `omp parallel for schedule(dynamic, chunk)`, which
// balances irregular iteration costs.
func (t *Team) ParallelForDynamic(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	nt := t.snapshot()
	var next int64
	var wg sync.WaitGroup
	wg.Add(nt)
	for tid := 0; tid < nt; tid++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Reduce runs body(tid, nthreads) on every member and combines the returned
// partials with combine — an `omp parallel reduction`.
func (t *Team) Reduce(body func(tid, nthreads int) float64, combine func(a, b float64) float64) float64 {
	n := t.snapshot()
	parts := make([]float64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for tid := 0; tid < n; tid++ {
		go func(tid int) {
			defer wg.Done()
			parts[tid] = body(tid, n)
		}(tid)
	}
	wg.Wait()
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = combine(acc, p)
	}
	return acc
}

// Barrier is a reusable cyclic barrier for nthreads participants, for
// wavefront codes that synchronise inside a parallel region.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

// NewBarrier creates a barrier for the given number of participants.
func NewBarrier(parties int) (*Barrier, error) {
	if parties < 1 {
		return nil, fmt.Errorf("omp: barrier parties = %d", parties)
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b, nil
}

// Wait blocks until all participants arrive, then releases them together.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
