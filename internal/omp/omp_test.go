package omp

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	team := NewTeam(4, false)
	const n = 1000
	var hits [n]int32
	team.ParallelFor(n, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	team := NewTeam(2, false)
	ran := false
	team.ParallelFor(0, func(int) { ran = true })
	if ran {
		t.Error("body ran for empty range")
	}
}

func TestParallelBlocksPartition(t *testing.T) {
	team := NewTeam(3, false)
	const n = 100
	var mu sync.Mutex
	covered := make([]bool, n)
	team.ParallelBlocks(n, func(lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Errorf("index %d covered twice", i)
			}
			covered[i] = true
		}
	})
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestParallelForDynamic(t *testing.T) {
	team := NewTeam(4, false)
	const n = 997 // prime, so chunks don't divide evenly
	var sum int64
	team.ParallelForDynamic(n, 16, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&sum, local)
	})
	want := int64(n*(n-1)) / 2
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestReduce(t *testing.T) {
	team := NewTeam(4, false)
	got := team.Reduce(func(tid, nt int) float64 {
		return float64(tid + 1)
	}, func(a, b float64) float64 { return a + b })
	if got != 1+2+3+4 {
		t.Errorf("Reduce = %g, want 10", got)
	}
}

func TestSetThreads(t *testing.T) {
	team := NewTeam(4, false)
	team.SetThreads(2)
	if team.Threads() != 2 {
		t.Errorf("Threads = %d", team.Threads())
	}
	count := 0
	var mu sync.Mutex
	team.ParallelRegion(func(tid, nt int) {
		if nt != 2 {
			t.Errorf("region sees %d threads", nt)
		}
		mu.Lock()
		count++
		mu.Unlock()
	})
	if count != 2 {
		t.Errorf("region ran %d members", count)
	}
	team.SetThreads(0)
	if team.Threads() != 1 {
		t.Errorf("SetThreads(0) gave %d", team.Threads())
	}
}

func TestParallelForMoreThreadsThanWork(t *testing.T) {
	team := NewTeam(8, false)
	var hits [3]int32
	team.ParallelFor(3, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d executed %d times", i, h)
		}
	}
}

func TestBarrier(t *testing.T) {
	const parties = 4
	b, err := NewBarrier(parties)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBarrier(0); err == nil {
		t.Error("zero-party barrier accepted")
	}
	const rounds = 20
	var phase int32
	errs := make(chan string, parties*rounds)
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				cur := atomic.LoadInt32(&phase)
				if int(cur) > r {
					errs <- "thread raced ahead of the barrier"
					return
				}
				b.Wait()
				atomic.StoreInt32(&phase, int32(r+1))
				b.Wait()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if phase != rounds {
		t.Errorf("completed %d rounds, want %d", phase, rounds)
	}
}

func TestNewTeamDefaults(t *testing.T) {
	team := NewTeam(0, false)
	if team.Threads() < 1 {
		t.Error("default team empty")
	}
}
