package wire

import (
	"errors"
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Emitter appends indented JSON to an internal buffer. The output format is
// pinned to the one the server has always produced: json.Encoder with
// SetIndent("", " ") (one-space indent unit), HTML escaping on, and a
// trailing newline appended by Finish.
//
// Usage is positional: BeginObject/EndObject and BeginArray/EndArray
// bracket containers, Key writes an object key, and the value methods
// (Str, Float, Int, Bool, Null) write one value either after a Key or as
// an array element. Emitters are not safe for concurrent use; get one from
// GetEmitter and return it with PutEmitter.
type Emitter struct {
	B []byte

	depth int
	// started bit d records whether the container open at depth d+1 has
	// emitted at least one element (controls commas and `{}`/`[]`
	// collapsing).
	started uint64
	// pendingKey is set between Key and the value it introduces: the value
	// attaches on the same line instead of opening a new element.
	pendingKey bool
	err        error
}

// ErrUnsupportedValue mirrors encoding/json's refusal to encode NaN and
// infinities. Like json.Encoder.Encode, an emitter that hits one produces
// no output at all (Finish returns the error and no bytes).
var ErrUnsupportedValue = errors.New("wire: unsupported float value (NaN or Inf)")

const maxEmitDepth = 64 // container bitmasks are uint64; far above any wire type

var emitterPool = sync.Pool{New: func() any { return &Emitter{B: make([]byte, 0, 4096)} }}

// GetEmitter returns a reset pooled emitter.
func GetEmitter() *Emitter {
	e := emitterPool.Get().(*Emitter)
	e.Reset()
	return e
}

// PutEmitter returns an emitter to the pool. Buffers that grew beyond 1 MiB
// (one oversized sweep response) are dropped rather than pinned forever.
func PutEmitter(e *Emitter) {
	if cap(e.B) > 1<<20 {
		return
	}
	emitterPool.Put(e)
}

// Reset clears the emitter for reuse, keeping the buffer's capacity.
func (e *Emitter) Reset() {
	e.B = e.B[:0]
	e.depth = 0
	e.started = 0
	e.pendingKey = false
	e.err = nil
}

// Finish appends the trailing newline and returns the encoded bytes. When
// any value failed to encode the whole output is withheld, matching
// json.Encoder.Encode's all-or-nothing behaviour.
func (e *Emitter) Finish() ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	e.B = append(e.B, '\n')
	return e.B, nil
}

func (e *Emitter) indent() {
	e.B = append(e.B, '\n')
	for i := 0; i < e.depth; i++ {
		e.B = append(e.B, ' ')
	}
}

// valuePreamble positions the writer for one value: nothing after a key,
// comma+newline+indent between array elements, nothing at the top level.
func (e *Emitter) valuePreamble() {
	if e.pendingKey {
		e.pendingKey = false
		return
	}
	if e.depth == 0 {
		return
	}
	bit := uint64(1) << (e.depth - 1)
	if e.started&bit != 0 {
		e.B = append(e.B, ',')
	}
	e.started |= bit
	e.indent()
}

// Key writes an object key (with separating comma and indentation) and
// primes the next value to attach after it.
func (e *Emitter) Key(name string) {
	if e.err != nil {
		return
	}
	bit := uint64(1) << (e.depth - 1)
	if e.started&bit != 0 {
		e.B = append(e.B, ',')
	}
	e.started |= bit
	e.indent()
	e.B = appendJSONString(e.B, name)
	e.B = append(e.B, ':', ' ')
	e.pendingKey = true
}

// BeginObject opens `{`.
func (e *Emitter) BeginObject() {
	if e.err != nil {
		return
	}
	if e.depth >= maxEmitDepth {
		e.err = errors.New("wire: emit depth exceeded")
		return
	}
	e.valuePreamble()
	e.B = append(e.B, '{')
	e.depth++
	e.started &^= uint64(1) << (e.depth - 1)
}

// EndObject closes `}`, collapsing empty objects to `{}` on one line.
func (e *Emitter) EndObject() {
	if e.err != nil {
		return
	}
	bit := uint64(1) << (e.depth - 1)
	e.depth--
	if e.started&bit != 0 {
		e.indent()
	}
	e.B = append(e.B, '}')
}

// BeginArray opens `[`.
func (e *Emitter) BeginArray() {
	if e.err != nil {
		return
	}
	if e.depth >= maxEmitDepth {
		e.err = errors.New("wire: emit depth exceeded")
		return
	}
	e.valuePreamble()
	e.B = append(e.B, '[')
	e.depth++
	e.started &^= uint64(1) << (e.depth - 1)
}

// EndArray closes `]`, collapsing empty arrays to `[]` on one line.
func (e *Emitter) EndArray() {
	if e.err != nil {
		return
	}
	bit := uint64(1) << (e.depth - 1)
	e.depth--
	if e.started&bit != 0 {
		e.indent()
	}
	e.B = append(e.B, ']')
}

// Str writes one string value.
func (e *Emitter) Str(s string) {
	if e.err != nil {
		return
	}
	e.valuePreamble()
	e.B = appendJSONString(e.B, s)
}

// StrBytes writes one string value from a byte slice without copying it
// to a string first. The bytes must not be mutated during the call.
func (e *Emitter) StrBytes(b []byte) {
	if e.err != nil {
		return
	}
	e.valuePreamble()
	e.B = appendJSONString(e.B, bytesToString(b))
}

// Float writes one float64 value with encoding/json's exact formatting.
// NaN and Inf poison the emitter (see ErrUnsupportedValue).
func (e *Emitter) Float(f float64) {
	if e.err != nil {
		return
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		e.err = ErrUnsupportedValue
		return
	}
	e.valuePreamble()
	e.B = appendJSONFloat(e.B, f)
}

// Int writes one integer value.
func (e *Emitter) Int(v int64) {
	if e.err != nil {
		return
	}
	e.valuePreamble()
	e.B = strconv.AppendInt(e.B, v, 10)
}

// Bool writes one boolean value.
func (e *Emitter) Bool(v bool) {
	if e.err != nil {
		return
	}
	e.valuePreamble()
	if v {
		e.B = append(e.B, "true"...)
	} else {
		e.B = append(e.B, "false"...)
	}
}

// Null writes a JSON null.
func (e *Emitter) Null() {
	if e.err != nil {
		return
	}
	e.valuePreamble()
	e.B = append(e.B, "null"...)
}

// appendJSONFloat is encoding/json's float formatter: shortest
// round-trip via strconv, fixed-point notation inside [1e-6, 1e21), and
// the e-0X → e-X exponent cleanup.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// htmlSafe marks the ASCII bytes encoding/json copies through verbatim
// with HTML escaping enabled: printable, and none of `"` `\` `<` `>` `&`.
var htmlSafe = func() (t [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		t[b] = b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
	}
	return
}()

// appendJSONString is encoding/json's string encoder with HTML escaping
// on: control characters and `"` `\` `<` `>` `&` escaped, invalid UTF-8
// replaced with U+FFFD, U+2028/U+2029 escaped for JS embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		n := len(s) - i
		if n > utf8.UTFMax {
			n = utf8.UTFMax
		}
		c, size := utf8.DecodeRuneInString(s[i : i+n])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}
