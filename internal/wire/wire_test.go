package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// stdlibJSON encodes v exactly the way the server always has: json.Encoder
// with SetIndent("", " ") and default HTML escaping, trailing newline.
func stdlibJSON(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		t.Fatalf("stdlib encode: %v", err)
	}
	return buf.Bytes()
}

var emitFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 1.5, -1.5, 0.1, 2.0 / 3.0,
	1e-6, 9.999999999999999e-7, 1e-7, 5e-324, math.SmallestNonzeroFloat64,
	1e20, 1e21, 1.0000000000000002e21, 1e22, -1e21,
	math.MaxFloat64, -math.MaxFloat64,
	3.141592653589793, 6.02214076e23, 1.602176634e-19,
	123456789.123456789, 0.30000000000000004,
}

func TestEmitFloatMatchesStdlib(t *testing.T) {
	for _, f := range emitFloats {
		e := GetEmitter()
		e.Float(f)
		got, err := e.Finish()
		if err != nil {
			t.Fatalf("Float(%v): %v", f, err)
		}
		want := stdlibJSON(t, f)
		if !bytes.Equal(got, want) {
			t.Errorf("Float(%v): got %q want %q", f, got, want)
		}
		PutEmitter(e)
	}
}

var emitStrings = []string{
	"", "plain", "with space", "quote\"back\\slash", "/slash",
	"<script>&amp;</script>", "tab\tnl\nret\rbell\x07null\x00",
	"\b\f", "unicode: ☃ 日本語", "combining: é vs é",
	"line sep   and   para", " ", " ",
	"invalid utf8: \xff\xfe", "\xc3", "truncated \xe2\x82", "\xf0\x9f",
	"high plane \U0001F600", "del \x7f", "ctl \x1f\x01",
	"mixed \xffvalid☃\xfe", strings.Repeat("a", 300), strings.Repeat("é", 150),
}

func TestEmitStringMatchesStdlib(t *testing.T) {
	for _, s := range emitStrings {
		e := GetEmitter()
		e.Str(s)
		got, err := e.Finish()
		if err != nil {
			t.Fatalf("Str(%q): %v", s, err)
		}
		want := stdlibJSON(t, s)
		if !bytes.Equal(got, want) {
			t.Errorf("Str(%q): got %q want %q", s, got, want)
		}
		PutEmitter(e)
	}
}

func TestEmitDocMatchesStdlib(t *testing.T) {
	type row struct {
		Config  string  `json:"config"`
		TimeSec float64 `json:"time_sec"`
		IPC     float64 `json:"ipc"`
	}
	type doc struct {
		Bench    string         `json:"bench"`
		Phases   []string       `json:"phases"`
		Rows     []row          `json:"rows"`
		Empty    []int          `json:"empty"`
		Nothing  map[string]int `json:"nothing"`
		Observed bool           `json:"observed"`
		Seed     int64          `json:"seed"`
		Null     *int           `json:"null"`
	}
	v := doc{
		Bench:   "art <&>  ",
		Phases:  []string{"p0", "p1"},
		Rows:    []row{{"8x1", 1.25, 0.5}, {"4x2", 3e-7, 1e21}},
		Empty:   []int{},
		Nothing: map[string]int{},
		Seed:    -42,
	}
	e := GetEmitter()
	e.BeginObject()
	e.Key("bench")
	e.Str(v.Bench)
	e.Key("phases")
	e.BeginArray()
	for _, p := range v.Phases {
		e.Str(p)
	}
	e.EndArray()
	e.Key("rows")
	e.BeginArray()
	for _, r := range v.Rows {
		e.BeginObject()
		e.Key("config")
		e.Str(r.Config)
		e.Key("time_sec")
		e.Float(r.TimeSec)
		e.Key("ipc")
		e.Float(r.IPC)
		e.EndObject()
	}
	e.EndArray()
	e.Key("empty")
	e.BeginArray()
	e.EndArray()
	e.Key("nothing")
	e.BeginObject()
	e.EndObject()
	e.Key("observed")
	e.Bool(v.Observed)
	e.Key("seed")
	e.Int(v.Seed)
	e.Key("null")
	e.Null()
	e.EndObject()
	got, err := e.Finish()
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	want := stdlibJSON(t, v)
	if !bytes.Equal(got, want) {
		t.Errorf("doc mismatch:\ngot  %q\nwant %q", got, want)
	}
	PutEmitter(e)
}

func TestEmitNaNWithholdsOutput(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		e := GetEmitter()
		e.BeginObject()
		e.Key("ok")
		e.Str("yes")
		e.Key("bad")
		e.Float(f)
		e.EndObject()
		got, err := e.Finish()
		if err == nil || got != nil {
			t.Errorf("Float(%v): want error and nil output, got %q err %v", f, got, err)
		}
		PutEmitter(e)
	}
}

func FuzzEmitString(f *testing.F) {
	for _, s := range emitStrings {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e := GetEmitter()
		defer PutEmitter(e)
		e.Str(s)
		got, err := e.Finish()
		if err != nil {
			t.Fatalf("Str(%q): %v", s, err)
		}
		if want := stdlibJSON(t, s); !bytes.Equal(got, want) {
			t.Errorf("Str(%q): got %q want %q", s, got, want)
		}
	})
}

func FuzzEmitFloat(f *testing.F) {
	for _, v := range emitFloats {
		f.Add(math.Float64bits(v))
	}
	f.Fuzz(func(t *testing.T, bits uint64) {
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		e := GetEmitter()
		defer PutEmitter(e)
		e.Float(v)
		got, err := e.Finish()
		if err != nil {
			t.Fatalf("Float(%v): %v", v, err)
		}
		if want := stdlibJSON(t, v); !bytes.Equal(got, want) {
			t.Errorf("Float(%v): got %q want %q", v, got, want)
		}
	})
}

// --- Scanner ---

func TestScanStringParity(t *testing.T) {
	// Raw JSON string tokens (with quotes) that stdlib accepts; the
	// scanner must accept them with the identical decoded value.
	inputs := []string{
		`""`, `"plain"`, `" spaced out "`,
		`"esc \" \\ \/ \b \f \n \r \t"`,
		`"Aé☃😀"`,
		`"𝄞"`,                  // surrogate pair
		`"\ud800"`, `"\udc00"`, // lone surrogates -> U+FFFD
		`"\ud800\ud800"`,          // high+high -> two U+FFFD
		`"\ud800x"`, `"\ud800\n"`, // lone high + trailing
		`"\u0000\u001f"`,           // escaped control chars are fine
		"\"raw \xff invalid\"",     // invalid UTF-8 -> U+FFFD per byte
		"\"\xc3\"", "\"\xe2\x82\"", // truncated sequences
		`"日本語 ☃"`, `"Kſ"`,
	}
	for _, in := range inputs {
		var want string
		if err := json.Unmarshal([]byte(in), &want); err != nil {
			t.Fatalf("stdlib rejects test input %q: %v", in, err)
		}
		s := GetScanner([]byte(in))
		got, err := s.Str()
		if err != nil {
			t.Errorf("Str(%q): scanner rejected, stdlib accepts", in)
			PutScanner(s)
			continue
		}
		if string(got) != want {
			t.Errorf("Str(%q): got %q want %q", in, got, want)
		}
		if s.Pos() != len(in) {
			t.Errorf("Str(%q): pos %d want %d", in, s.Pos(), len(in))
		}
		PutScanner(s)
	}
}

func TestScanStringRejects(t *testing.T) {
	// Everything stdlib rejects as a string token the scanner must too.
	inputs := []string{
		`"unterminated`, `"bad \' escape"`, `"bad \x41"`, `"\u12g4"`, `"\u12"`,
		"\"raw \n newline\"", "\"raw \x00 nul\"", "\"tab\there\"",
		`"trailing backslash\`, `'single'`, `no quote`, `"\"`,
	}
	for _, in := range inputs {
		var dst string
		if err := json.Unmarshal([]byte(in), &dst); err == nil {
			t.Fatalf("stdlib accepts %q; bad test row", in)
		}
		s := GetScanner([]byte(in))
		if _, err := s.Str(); err == nil {
			t.Errorf("Str(%q): scanner accepted, stdlib rejects", in)
		}
		PutScanner(s)
	}
}

func TestScanNumberParity(t *testing.T) {
	accept := []string{
		"0", "-0", "1", "-1", "42", "3.5", "-3.5", "0.001", "1e3", "1E3",
		"1e+3", "1e-3", "1.5e300", "5e-324", "1e-400", "123456789012345678",
		"0.30000000000000004", "1e21",
	}
	for _, in := range accept {
		var want float64
		if err := json.Unmarshal([]byte(in), &want); err != nil {
			// stdlib range-rejects some of these (1e-400 underflows on
			// some stdlib versions); scanner must then reject too.
			s := GetScanner([]byte(in))
			if _, err2 := s.Float(); err2 == nil {
				t.Errorf("Float(%q): scanner accepted, stdlib rejects (%v)", in, err)
			}
			PutScanner(s)
			continue
		}
		s := GetScanner([]byte(in))
		got, err := s.Float()
		if err != nil {
			t.Errorf("Float(%q): scanner rejected, stdlib accepts", in)
			PutScanner(s)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("Float(%q): got %v want %v", in, got, want)
		}
		PutScanner(s)
	}
	reject := []string{"", "-", "+1", "1.", ".5", "1e", "1e+", "01", "0x10", "1e309", "-1e309", "nan", "Infinity"}
	for _, in := range reject {
		s := GetScanner([]byte(in))
		got, err := s.Float()
		PutScanner(s)
		if err == nil {
			// The grammar reads a maximal prefix; "01" parses as 0 with
			// trailing garbage, exactly as a json.Decoder single read does.
			var want float64
			dec := json.NewDecoder(strings.NewReader(in))
			if derr := dec.Decode(&want); derr != nil {
				t.Errorf("Float(%q): scanner accepted %v, stdlib rejects (%v)", in, got, derr)
			} else if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("Float(%q): got %v stdlib %v", in, got, want)
			}
		}
	}
}

func TestScanInt(t *testing.T) {
	for in, want := range map[string]int64{"0": 0, "-0": 0, "42": 42, "-7": -7, "9223372036854775807": math.MaxInt64} {
		s := GetScanner([]byte(in))
		got, err := s.Int()
		if err != nil || got != want {
			t.Errorf("Int(%q): got %v err %v, want %v", in, got, err, want)
		}
		PutScanner(s)
	}
	for _, in := range []string{"1.5", "1.0", "1e2", "9223372036854775808", "-", ""} {
		s := GetScanner([]byte(in))
		if _, err := s.Int(); err == nil {
			t.Errorf("Int(%q): want reject", in)
		}
		PutScanner(s)
	}
}

// TestScanObjectWalk drives the scanner the way a codec does and checks the
// composite semantics: key folding, duplicate keys last-wins, null fields,
// whitespace tolerance, trailing bytes after the top value.
func TestScanObjectWalk(t *testing.T) {
	in := []byte(" \t{ \"RATES\" : { \"ipc\" : 1.5 , \"ipc\" : 2.5 , \"x\" : null } , \"phase\" : null }\ngarbage")
	s := GetScanner(in)
	rates := map[string]float64{}
	phase := "unset"
	isNull, err := s.BeginObjectOrNull()
	if err != nil || isNull {
		t.Fatalf("BeginObjectOrNull: %v %v", isNull, err)
	}
	for {
		key, ok, err := s.ObjKey()
		if err != nil {
			t.Fatalf("ObjKey: %v", err)
		}
		if !ok {
			break
		}
		switch {
		case FoldEq(key, "rates"):
			mNull, err := s.BeginObjectOrNull()
			if err != nil {
				t.Fatalf("rates: %v", err)
			}
			if mNull {
				continue
			}
			for {
				mk, mok, err := s.ObjKey()
				if err != nil {
					t.Fatalf("rates key: %v", err)
				}
				if !mok {
					break
				}
				name := string(mk)
				if s.TryNull() {
					rates[name] = 0
					continue
				}
				v, err := s.Float()
				if err != nil {
					t.Fatalf("rates val: %v", err)
				}
				rates[name] = v
			}
		case FoldEq(key, "phase"):
			if s.TryNull() {
				continue // stdlib: null into string is a no-op
			}
			b, err := s.Str()
			if err != nil {
				t.Fatalf("phase: %v", err)
			}
			phase = string(b)
		default:
			t.Fatalf("unknown key %q", key)
		}
	}
	if rates["ipc"] != 2.5 || rates["x"] != 0 || len(rates) != 2 {
		t.Errorf("rates = %v, want ipc:2.5 x:0", rates)
	}
	if phase != "unset" {
		t.Errorf("phase = %q, want untouched", phase)
	}
	if s.Pos() != len(in)-len("\ngarbage") {
		t.Errorf("pos = %d, want value end %d", s.Pos(), len(in)-len("\ngarbage"))
	}
	PutScanner(s)
}

func TestScanObjectRejects(t *testing.T) {
	walk := func(in string) error {
		s := GetScanner([]byte(in))
		defer PutScanner(s)
		isNull, err := s.BeginObjectOrNull()
		if err != nil || isNull {
			return err
		}
		for {
			_, ok, err := s.ObjKey()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if s.TryNull() {
				continue
			}
			if _, err := s.Float(); err != nil {
				return err
			}
		}
	}
	for _, in := range []string{
		"{", `{"a"`, `{"a":`, `{"a":1`, `{"a":1,`, `{"a":1,}`, `{"a":1 "b":2}`,
		`{a:1}`, `{"a";1}`, `{"a":01}`, "", "[1]", "true", `{"a":.5}`,
	} {
		if err := walk(in); err == nil {
			t.Errorf("walk(%q): want reject", in)
		}
	}
	// But a null top level and trailing garbage after a complete value are fine.
	for _, in := range []string{"null", "nullx", "{}", `{} extra`, `{"a":1} {"b":2}`} {
		if err := walk(in); err != nil {
			t.Errorf("walk(%q): %v, want accept", in, err)
		}
	}
}

func TestScanArrayWalk(t *testing.T) {
	s := GetScanner([]byte(` [ "a" , null , "b" ] `))
	isNull, err := s.BeginArrayOrNull()
	if err != nil || isNull {
		t.Fatalf("BeginArrayOrNull: %v %v", isNull, err)
	}
	var got []string
	for {
		ok, err := s.ArrayNext()
		if err != nil {
			t.Fatalf("ArrayNext: %v", err)
		}
		if !ok {
			break
		}
		if s.TryNull() {
			got = append(got, "") // stdlib appends the zero value
			continue
		}
		b, err := s.Str()
		if err != nil {
			t.Fatalf("elem: %v", err)
		}
		got = append(got, string(b))
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "" || got[2] != "b" {
		t.Errorf("got %q", got)
	}
	PutScanner(s)

	s = GetScanner([]byte("null"))
	if isNull, err := s.BeginArrayOrNull(); err != nil || !isNull {
		t.Errorf("null array: %v %v", isNull, err)
	}
	PutScanner(s)
	for _, in := range []string{"[", "[1", "[1,", "[1,]", "[1 2]", "{}"} {
		s := GetScanner([]byte(in))
		bad := false
		if isNull, err := s.BeginArrayOrNull(); err != nil || isNull {
			bad = true
		} else {
			for {
				ok, err := s.ArrayNext()
				if err != nil {
					bad = true
					break
				}
				if !ok {
					break
				}
				if _, err := s.Float(); err != nil {
					bad = true
					break
				}
			}
		}
		if !bad {
			t.Errorf("array walk(%q): want reject", in)
		}
		PutScanner(s)
	}
}

func TestFoldEq(t *testing.T) {
	yes := [][2]string{
		{"rates", "rates"}, {"RATES", "rates"}, {"Rates", "rates"},
		{"bank_version", "bank_version"}, {"BANK_VERSION", "bank_version"},
		{"ſeed", "seed"}, {"Kelvin", "kelvin"}, {"time_sec", "time_sec"},
	}
	for _, c := range yes {
		if !FoldEq([]byte(c[0]), c[1]) {
			t.Errorf("FoldEq(%q, %q) = false", c[0], c[1])
		}
	}
	no := [][2]string{
		{"rate", "rates"}, {"ratess", "rates"}, {"", "rates"}, {"rates ", "rates"},
		{"bank-version", "bank_version"}, {"ſ", "k"}, {"K", "s"},
		{"é", "e"}, {"ratés", "rates"},
	}
	for _, c := range no {
		if FoldEq([]byte(c[0]), c[1]) {
			t.Errorf("FoldEq(%q, %q) = true", c[0], c[1])
		}
	}
}

// FuzzScanString: whenever the scanner accepts an arbitrary input as a
// string, stdlib must accept it too, with the identical value and the
// identical number of bytes consumed.
func FuzzScanString(f *testing.F) {
	f.Add([]byte(`"seed"`))
	f.Add([]byte(`"𝄞 trailing"`))
	f.Add([]byte("\"\xff\xc3\x28\""))
	f.Add([]byte(`" <&>"`))
	f.Fuzz(func(t *testing.T, in []byte) {
		s := GetScanner(in)
		defer PutScanner(s)
		got, err := s.Str()
		if err != nil {
			return // conservative rejections are allowed; the server falls back
		}
		dec := json.NewDecoder(bytes.NewReader(in))
		var want string
		if derr := dec.Decode(&want); derr != nil {
			t.Fatalf("scanner accepted %q as %q, stdlib rejects: %v", in, got, derr)
		}
		if string(got) != want {
			t.Errorf("input %q: scanner %q stdlib %q", in, got, want)
		}
		if int64(s.Pos()) != dec.InputOffset() {
			t.Errorf("input %q: scanner consumed %d, stdlib %d", in, s.Pos(), dec.InputOffset())
		}
	})
}

// FuzzScanNumber: same one-way contract for numbers, on raw bytes so the
// fuzzer can explore malformed grammar freely.
func FuzzScanNumber(f *testing.F) {
	f.Add([]byte("1.25e-3 junk"))
	f.Add([]byte("-0.0"))
	f.Add([]byte("1e309"))
	f.Add([]byte("01"))
	f.Fuzz(func(t *testing.T, in []byte) {
		s := GetScanner(in)
		defer PutScanner(s)
		got, err := s.Float()
		if err != nil {
			return
		}
		dec := json.NewDecoder(bytes.NewReader(in))
		var want float64
		if derr := dec.Decode(&want); derr != nil {
			t.Fatalf("scanner accepted %q as %v, stdlib rejects: %v", in, got, derr)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("input %q: scanner %v stdlib %v", in, got, want)
		}
	})
}
