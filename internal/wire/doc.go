// Package wire is the hand-rolled JSON codec under the actord serving fast
// path. encoding/json is correct but pays reflection, per-call encoder
// state and interface boxing on every request; at serving rates those
// costs dominate the handler. This package replaces them with two small,
// allocation-free building blocks that pkg/actor composes into per-type
// codecs:
//
//   - Emitter: append-style JSON writing into a pooled buffer, producing
//     output byte-identical to a json.Encoder configured with
//     SetIndent("", " ") and default HTML escaping — the exact
//     configuration the server has always used — including Go's
//     shortest-round-trip float formatting and its exponent cleanup.
//   - Scanner: an iterative decoder over a fully-read body that accepts
//     exactly the inputs a json.Decoder with DisallowUnknownFields
//     accepts for the server's flat wire types (case-folded keys,
//     duplicate keys last-wins, null semantics, U+FFFD replacement of
//     invalid UTF-8, single-value reads with trailing bytes ignored).
//
// Byte-identity and acceptance parity are not aspirations, they are the
// contract: pkg/actor's property and fuzz tests compare every composed
// codec against encoding/json, and the serving handlers fall back to
// encoding/json whenever the Scanner rejects, so a codec disagreement can
// cost the fast path but can never change a served byte.
package wire
