package wire

import (
	"errors"
	"strconv"
	"sync"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"
)

// ErrReject is the single error every Scanner method returns on input it
// does not handle. It deliberately carries no detail: the serving handlers
// respond to it by re-decoding the same bytes with encoding/json, which
// either accepts (scanner was merely conservative) or produces the exact
// error text and status code the server has always returned. The scanner
// therefore only has to be right about the inputs it accepts, never about
// how it phrases a rejection.
var ErrReject = errors.New("wire: input rejected, fall back to encoding/json")

const maxScanDepth = 32 // wire types nest 4 deep; anything past this is garbage

// Scanner is a pull-based JSON reader over a fully-buffered request body.
// The caller drives it in document order: BeginObjectOrNull, then ObjKey
// until it reports the closing brace, with a value read (Str, Float, Int,
// TryNull, or a nested Begin...) after each key. It reads exactly one
// top-level value and ignores trailing bytes, like json.Decoder.Decode.
//
// Returned byte slices alias either the input buffer or the scanner's
// internal arena and are valid only until Reset. Scanners are not safe for
// concurrent use; get one from GetScanner and return it with PutScanner.
type Scanner struct {
	data []byte
	pos  int
	// arena holds unescaped string data. It only grows between resets, so
	// slices handed out earlier stay valid while later strings decode.
	arena   []byte
	depth   int
	started uint64 // bit d set once the container at depth d+1 has an element
}

var scannerPool = sync.Pool{New: func() any { return &Scanner{arena: make([]byte, 0, 512)} }}

// GetScanner returns a pooled scanner reset over data.
func GetScanner(data []byte) *Scanner {
	s := scannerPool.Get().(*Scanner)
	s.Reset(data)
	return s
}

// PutScanner returns a scanner to the pool, dropping ones whose arena grew
// past 1 MiB so a single pathological body can't pin memory forever.
func PutScanner(s *Scanner) {
	if cap(s.arena) > 1<<20 {
		return
	}
	s.data = nil
	scannerPool.Put(s)
}

// Reset points the scanner at a new input, invalidating all previously
// returned slices.
func (s *Scanner) Reset(data []byte) {
	s.data = data
	s.pos = 0
	s.arena = s.arena[:0]
	s.depth = 0
	s.started = 0
}

// Pos reports how many input bytes the scanner has consumed. After the
// top-level value closes this is the value's end offset, which the server
// compares against the request-body cap to reproduce MaxBytesReader's
// "the first value must complete within the limit" rule.
func (s *Scanner) Pos() int { return s.pos }

func (s *Scanner) skipWS() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

// TryNull consumes a leading null literal and reports whether it did.
// Like encoding/json's scanner it does not demand a boundary after the
// literal; whatever follows is judged by the enclosing container.
func (s *Scanner) TryNull() bool {
	s.skipWS()
	if len(s.data)-s.pos >= 4 && string(s.data[s.pos:s.pos+4]) == "null" {
		s.pos += 4
		return true
	}
	return false
}

// BeginObjectOrNull consumes `{` (returning false) or a null literal
// (returning true, matching encoding/json's treat-null-as-no-op rule for
// structs and maps).
func (s *Scanner) BeginObjectOrNull() (isNull bool, err error) {
	if s.TryNull() {
		return true, nil
	}
	if s.pos >= len(s.data) || s.data[s.pos] != '{' || s.depth >= maxScanDepth {
		return false, ErrReject
	}
	s.pos++
	s.depth++
	s.started &^= uint64(1) << (s.depth - 1)
	return false, nil
}

// ObjKey returns the next object key, or ok=false once it consumes the
// closing `}`. The key is unescaped; callers match it with FoldEq to get
// encoding/json's case-insensitive field binding.
func (s *Scanner) ObjKey() (key []byte, ok bool, err error) {
	s.skipWS()
	if s.pos >= len(s.data) {
		return nil, false, ErrReject
	}
	bit := uint64(1) << (s.depth - 1)
	if s.data[s.pos] == '}' {
		s.pos++
		s.depth--
		return nil, false, nil
	}
	if s.started&bit != 0 {
		if s.data[s.pos] != ',' {
			return nil, false, ErrReject
		}
		s.pos++
		s.skipWS()
	}
	s.started |= bit
	if s.pos >= len(s.data) || s.data[s.pos] != '"' {
		return nil, false, ErrReject
	}
	key, err = s.scanString()
	if err != nil {
		return nil, false, err
	}
	s.skipWS()
	if s.pos >= len(s.data) || s.data[s.pos] != ':' {
		return nil, false, ErrReject
	}
	s.pos++
	return key, true, nil
}

// BeginArrayOrNull consumes `[` (returning false) or a null literal
// (returning true; encoding/json leaves the destination slice nil).
func (s *Scanner) BeginArrayOrNull() (isNull bool, err error) {
	if s.TryNull() {
		return true, nil
	}
	if s.pos >= len(s.data) || s.data[s.pos] != '[' || s.depth >= maxScanDepth {
		return false, ErrReject
	}
	s.pos++
	s.depth++
	s.started &^= uint64(1) << (s.depth - 1)
	return false, nil
}

// ArrayNext reports whether another element follows, consuming the `,`
// separator or the closing `]` as appropriate. When it returns true the
// caller must read exactly one value.
func (s *Scanner) ArrayNext() (ok bool, err error) {
	s.skipWS()
	if s.pos >= len(s.data) {
		return false, ErrReject
	}
	bit := uint64(1) << (s.depth - 1)
	if s.data[s.pos] == ']' {
		s.pos++
		s.depth--
		return false, nil
	}
	if s.started&bit != 0 {
		if s.data[s.pos] != ',' {
			return false, ErrReject
		}
		s.pos++
	}
	s.started |= bit
	return true, nil
}

// Str reads one string value. The result aliases the input (no escapes)
// or the arena (escapes or invalid UTF-8, which is replaced with U+FFFD
// exactly as encoding/json does).
func (s *Scanner) Str() ([]byte, error) {
	s.skipWS()
	if s.pos >= len(s.data) || s.data[s.pos] != '"' {
		return nil, ErrReject
	}
	return s.scanString()
}

// Float reads one JSON number as a float64. Out-of-range values reject
// (encoding/json errors on them too; the fallback phrases it).
func (s *Scanner) Float() (float64, error) {
	s.skipWS()
	tok, err := s.numberToken()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(bytesToString(tok), 64)
	if err != nil {
		return 0, ErrReject
	}
	return f, nil
}

// Int reads one JSON number as an int64, rejecting fractional and
// exponent forms the way encoding/json does for integer fields.
func (s *Scanner) Int() (int64, error) {
	s.skipWS()
	tok, err := s.numberToken()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(bytesToString(tok), 10, 64)
	if err != nil {
		return 0, ErrReject
	}
	return v, nil
}

// numberToken scans one number per the JSON grammar and returns its bytes.
func (s *Scanner) numberToken() ([]byte, error) {
	d := s.data
	i := s.pos
	start := i
	if i < len(d) && d[i] == '-' {
		i++
	}
	if i >= len(d) {
		return nil, ErrReject
	}
	switch {
	case d[i] == '0':
		i++
	case '1' <= d[i] && d[i] <= '9':
		i++
		for i < len(d) && '0' <= d[i] && d[i] <= '9' {
			i++
		}
	default:
		return nil, ErrReject
	}
	if i < len(d) && d[i] == '.' {
		i++
		if i >= len(d) || d[i] < '0' || d[i] > '9' {
			return nil, ErrReject
		}
		for i < len(d) && '0' <= d[i] && d[i] <= '9' {
			i++
		}
	}
	if i < len(d) && (d[i] == 'e' || d[i] == 'E') {
		i++
		if i < len(d) && (d[i] == '+' || d[i] == '-') {
			i++
		}
		if i >= len(d) || d[i] < '0' || d[i] > '9' {
			return nil, ErrReject
		}
		for i < len(d) && '0' <= d[i] && d[i] <= '9' {
			i++
		}
	}
	s.pos = i
	return d[start:i], nil
}

// scanString decodes the string whose opening quote is at s.pos. The fast
// loop handles escape-free, valid-UTF-8 strings with a zero-copy view of
// the input; anything else drops to unescapeString.
func (s *Scanner) scanString() ([]byte, error) {
	s.pos++ // opening quote
	start := s.pos
	d := s.data
	for s.pos < len(d) {
		c := d[s.pos]
		switch {
		case c == '"':
			b := d[start:s.pos]
			s.pos++
			return b, nil
		case c == '\\' || c < 0x20:
			return s.unescapeString(start)
		case c < utf8.RuneSelf:
			s.pos++
		default:
			r, size := utf8.DecodeRune(d[s.pos:])
			if r == utf8.RuneError && size == 1 {
				return s.unescapeString(start)
			}
			s.pos += size
		}
	}
	return nil, ErrReject // unterminated
}

// unescapeString is encoding/json's string decoder: the standard escapes,
// \uXXXX with UTF-16 surrogate pairing (lone surrogates become U+FFFD),
// invalid raw UTF-8 replaced byte-by-byte with U+FFFD, and bare control
// characters rejected. Output goes to the arena.
func (s *Scanner) unescapeString(start int) ([]byte, error) {
	arenaStart := len(s.arena)
	d := s.data
	i := start
	for i < len(d) {
		c := d[i]
		switch {
		case c == '"':
			s.pos = i + 1
			return s.arena[arenaStart:len(s.arena):len(s.arena)], nil
		case c == '\\':
			if i+1 >= len(d) {
				return nil, ErrReject
			}
			esc := d[i+1]
			switch esc {
			case '"', '\\', '/':
				s.arena = append(s.arena, esc)
				i += 2
			case 'b':
				s.arena = append(s.arena, '\b')
				i += 2
			case 'f':
				s.arena = append(s.arena, '\f')
				i += 2
			case 'n':
				s.arena = append(s.arena, '\n')
				i += 2
			case 'r':
				s.arena = append(s.arena, '\r')
				i += 2
			case 't':
				s.arena = append(s.arena, '\t')
				i += 2
			case 'u':
				if i+6 > len(d) {
					return nil, ErrReject
				}
				rr := hex4(d[i+2 : i+6])
				if rr < 0 {
					return nil, ErrReject
				}
				i += 6
				if utf16.IsSurrogate(rr) {
					rr1 := rune(-1)
					if i+6 <= len(d) && d[i] == '\\' && d[i+1] == 'u' {
						rr1 = hex4(d[i+2 : i+6])
					}
					if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
						i += 6
						s.arena = utf8.AppendRune(s.arena, dec)
						continue
					}
					rr = unicode.ReplacementChar
				}
				s.arena = utf8.AppendRune(s.arena, rr)
			default:
				return nil, ErrReject
			}
		case c < 0x20:
			return nil, ErrReject
		case c < utf8.RuneSelf:
			s.arena = append(s.arena, c)
			i++
		default:
			r, size := utf8.DecodeRune(d[i:])
			if r == utf8.RuneError && size == 1 {
				s.arena = utf8.AppendRune(s.arena, utf8.RuneError)
				i++
			} else {
				s.arena = append(s.arena, d[i:i+size]...)
				i += size
			}
		}
	}
	return nil, ErrReject // unterminated
}

func hex4(b []byte) rune {
	var r rune
	for _, c := range b {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r<<4 | rune(c)
	}
	return r
}

// FoldEq reports whether key matches the lowercase-ASCII field name lower
// under encoding/json's field folding: ASCII case-insensitive, plus the
// two non-ASCII runes whose simple case-fold chain lands on an ASCII
// letter — U+017F LATIN SMALL LETTER LONG S (folds to s) and U+212A
// KELVIN SIGN (folds to k).
func FoldEq(key []byte, lower string) bool {
	i := 0
	for j := 0; j < len(lower); j++ {
		if i >= len(key) {
			return false
		}
		lb := lower[j]
		kb := key[i]
		if kb < utf8.RuneSelf {
			if kb == lb || ('a' <= lb && lb <= 'z' && kb == lb-('a'-'A')) {
				i++
				continue
			}
			return false
		}
		r, size := utf8.DecodeRune(key[i:])
		if (r == 'ſ' && lb == 's') || (r == 'K' && lb == 'k') {
			i += size
			continue
		}
		return false
	}
	return i == len(key)
}

// bytesToString gives strconv a string view of b without copying. b must
// not be mutated while the string is live; both call sites parse and drop
// the view immediately.
func bytesToString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
