// Package cache models shared last-level caches two ways: a fast analytic
// capacity-sharing model used inside the machine simulator's fixed-point
// CPI solver, and an executable set-associative cache used in tests to
// validate the analytic curve's shape on concrete reference streams.
//
// The analytic model captures the quad-core Xeon phenomenon at the heart of
// the paper: two threads sharing one 4 MB L2 ("tightly coupled") divide its
// effective capacity and can interfere destructively, while threads on
// different L2s ("loosely coupled") do not — the reason configuration 2b
// beats 2a by 2× on IS.
package cache

import (
	"fmt"
	"math"
)

// SharingModel computes per-thread L2 miss rates under capacity sharing.
type SharingModel struct {
	// CapacityBytes is the cache capacity shared by the group.
	CapacityBytes float64
	// LineBytes is the cache line size (64 on Core 2).
	LineBytes float64
}

// NewSharingModel returns a sharing model for a cache of the given capacity
// with 64-byte lines.
func NewSharingModel(capacityBytes float64) *SharingModel {
	return &SharingModel{CapacityBytes: capacityBytes, LineBytes: 64}
}

// EffectiveShare returns the cache capacity effectively available to one of
// nShare co-resident threads when a fraction sharing of their working sets
// overlaps. With full sharing every thread sees the whole cache; with no
// sharing capacity divides evenly.
func (m *SharingModel) EffectiveShare(nShare int, sharing float64) float64 {
	if nShare < 1 {
		nShare = 1
	}
	if sharing < 0 {
		sharing = 0
	} else if sharing > 1 {
		sharing = 1
	}
	// Distinct footprint in the cache scales as 1 + (n-1)(1-sharing);
	// each thread's useful share is capacity divided by that pressure.
	pressure := 1 + float64(nShare-1)*(1-sharing)
	return m.CapacityBytes / pressure
}

// MissRate returns the fraction of L2 accesses (i.e. L1 misses) that miss in
// the shared L2 for a thread whose working set is ws bytes, given its
// effective capacity share. cold is the compulsory floor; locExp shapes how
// quickly misses grow once the working set exceeds the share (the
// reuse-distance tail exponent).
//
// The curve is the classic power-law capacity model: hit probability for a
// working set of size ws in a cache of size c behaves like (c/ws)^locExp for
// ws > c and approaches 1 for ws ≤ c, blended smoothly near the knee.
func (m *SharingModel) MissRate(ws, share, cold, locExp float64) float64 {
	if ws <= 0 {
		return clamp01(cold)
	}
	if share <= 0 {
		return 1
	}
	ratio := ws / share
	var capMiss float64
	switch {
	case ratio <= 1:
		// Fits: only a gentle rise as occupancy approaches capacity,
		// modelling conflict misses near the knee.
		capMiss = 0.02 * math.Pow(ratio, 4)
	default:
		// Exceeds share: miss rate rises toward 1 with the locality
		// exponent controlling steepness.
		capMiss = 1 - math.Pow(1/ratio, locExp)*(1-0.02)
	}
	miss := cold + (1-cold)*clamp01(capMiss)
	return clamp01(miss)
}

// MissRateShared is the common composition: effective share for nShare
// threads with the given sharing factor, then the miss curve.
func (m *SharingModel) MissRateShared(ws float64, nShare int, sharing, cold, locExp float64) float64 {
	return m.MissRate(ws, m.EffectiveShare(nShare, sharing), cold, locExp)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// String describes the model.
func (m *SharingModel) String() string {
	return fmt.Sprintf("cache.SharingModel{%.0f KB, %g B lines}", m.CapacityBytes/1024, m.LineBytes)
}
