package cache

// This file implements an executable set-associative cache with true-LRU
// replacement. It is not on the simulator's hot path: it exists to validate
// the analytic SharingModel against concrete address streams (tests replay
// synthetic working-set streams through both and compare miss-rate shapes),
// and it backs the cache-behaviour demos in the examples.

import (
	"errors"
	"fmt"
)

// SetAssoc is a set-associative cache with LRU replacement.
type SetAssoc struct {
	sets       int
	ways       int
	lineBytes  int
	lineShift  uint
	setMask    uint64
	tags       []uint64 // sets*ways entries
	valid      []bool
	lastUse    []uint64 // per-way timestamp; smallest = LRU victim
	clock      uint64
	accesses   uint64
	misses     uint64
	evictions  uint64
	partitions map[int]struct{} // informational: distinct stream ids seen
}

// NewSetAssoc builds a cache of capacityBytes with the given associativity
// and line size. Capacity must be an exact multiple of ways × lineBytes and
// the resulting set count must be a power of two.
func NewSetAssoc(capacityBytes, ways, lineBytes int) (*SetAssoc, error) {
	if capacityBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, errors.New("cache: non-positive geometry")
	}
	if capacityBytes%(ways*lineBytes) != 0 {
		return nil, fmt.Errorf("cache: capacity %d not divisible by ways*line %d", capacityBytes, ways*lineBytes)
	}
	sets := capacityBytes / (ways * lineBytes)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", lineBytes)
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
	}
	c := &SetAssoc{
		sets:       sets,
		ways:       ways,
		lineBytes:  lineBytes,
		lineShift:  shift,
		setMask:    uint64(sets - 1),
		tags:       make([]uint64, sets*ways),
		valid:      make([]bool, sets*ways),
		lastUse:    make([]uint64, sets*ways),
		partitions: make(map[int]struct{}),
	}
	return c, nil
}

// Access references addr and returns true on hit. The address is a byte
// address; the line containing it is installed on miss.
func (c *SetAssoc) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(log2(c.sets))
	base := set * c.ways

	hitWay := -1
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			hitWay = w
			break
		}
	}
	c.clock++
	if hitWay >= 0 {
		c.lastUse[base+hitWay] = c.clock
		return true
	}
	c.misses++
	// Find victim: invalid way first, else least recently used.
	victim := -1
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		oldest := c.lastUse[base]
		victim = 0
		for w := 1; w < c.ways; w++ {
			if c.lastUse[base+w] < oldest {
				oldest = c.lastUse[base+w]
				victim = w
			}
		}
		c.evictions++
	}
	c.tags[base+victim] = tag
	c.valid[base+victim] = true
	c.lastUse[base+victim] = c.clock
	return false
}

// AccessStream references every address in addrs and returns the number of
// misses, tagging the stream with id for bookkeeping (used when multiple
// threads interleave on one shared cache).
func (c *SetAssoc) AccessStream(id int, addrs []uint64) (misses uint64) {
	c.partitions[id] = struct{}{}
	before := c.misses
	for _, a := range addrs {
		c.Access(a)
	}
	return c.misses - before
}

// Stats returns cumulative access, miss and eviction counts.
func (c *SetAssoc) Stats() (accesses, misses, evictions uint64) {
	return c.accesses, c.misses, c.evictions
}

// MissRate returns misses/accesses, or 0 before any access.
func (c *SetAssoc) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics.
func (c *SetAssoc) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lastUse[i] = 0
		c.tags[i] = 0
	}
	c.clock = 0
	c.accesses, c.misses, c.evictions = 0, 0, 0
	c.partitions = make(map[int]struct{})
}

// Geometry reports (sets, ways, lineBytes).
func (c *SetAssoc) Geometry() (sets, ways, lineBytes int) {
	return c.sets, c.ways, c.lineBytes
}

// CapacityBytes returns the total capacity.
func (c *SetAssoc) CapacityBytes() int { return c.sets * c.ways * c.lineBytes }

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
