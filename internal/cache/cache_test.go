package cache

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEffectiveShare(t *testing.T) {
	m := NewSharingModel(4 << 20)
	if got := m.EffectiveShare(1, 0); got != 4<<20 {
		t.Errorf("solo share = %g, want full capacity", got)
	}
	if got := m.EffectiveShare(2, 0); math.Abs(got-2<<20) > 1 {
		t.Errorf("2-way private share = %g, want half", got)
	}
	if got := m.EffectiveShare(2, 1); got != 4<<20 {
		t.Errorf("fully shared share = %g, want full capacity", got)
	}
	// Clamping.
	if got := m.EffectiveShare(0, -1); got != 4<<20 {
		t.Errorf("clamped share = %g, want full capacity", got)
	}
}

func TestMissRateBounds(t *testing.T) {
	m := NewSharingModel(4 << 20)
	f := func(wsKB uint32, nShare uint8, sharing, cold, locExp float64) bool {
		ws := float64(wsKB%20000) * 1024
		n := int(nShare%4) + 1
		sh := math.Mod(math.Abs(sharing), 1)
		cd := math.Mod(math.Abs(cold), 1)
		le := math.Mod(math.Abs(locExp), 2) + 0.1
		mr := m.MissRateShared(ws, n, sh, cd, le)
		return mr >= 0 && mr <= 1 && mr >= cd-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMissRateMonotoneInShare(t *testing.T) {
	m := NewSharingModel(4 << 20)
	ws := 3.0 * 1024 * 1024
	prev := 2.0
	for _, share := range []float64{512 << 10, 1 << 20, 2 << 20, 3 << 20, 4 << 20, 8 << 20} {
		mr := m.MissRate(ws, share, 0.05, 1)
		if mr > prev+1e-12 {
			t.Errorf("miss rate increased with larger share: %g → %g at %g", prev, mr, share)
		}
		prev = mr
	}
}

func TestMissRateMonotoneInCoResidents(t *testing.T) {
	m := NewSharingModel(4 << 20)
	ws := 2.5 * 1024 * 1024
	prev := -1.0
	for n := 1; n <= 4; n++ {
		mr := m.MissRateShared(ws, n, 0.1, 0.05, 1.2)
		if mr < prev-1e-12 {
			t.Errorf("miss rate decreased with more co-residents at n=%d: %g → %g", n, prev, mr)
		}
		prev = mr
	}
}

func TestMissRateFitsVsSpills(t *testing.T) {
	m := NewSharingModel(4 << 20)
	fits := m.MissRate(1<<20, 4<<20, 0.05, 1)
	spills := m.MissRate(12<<20, 4<<20, 0.05, 1)
	if fits >= spills {
		t.Errorf("fitting working set (%g) not below spilling one (%g)", fits, spills)
	}
	if spills < 0.5 {
		t.Errorf("3× oversubscribed working set only misses %g", spills)
	}
}

func TestMissRateDegenerate(t *testing.T) {
	m := NewSharingModel(4 << 20)
	if mr := m.MissRate(0, 4<<20, 0.07, 1); mr != 0.07 {
		t.Errorf("zero working set miss = %g, want cold rate", mr)
	}
	if mr := m.MissRate(1<<20, 0, 0.07, 1); mr != 1 {
		t.Errorf("zero share miss = %g, want 1", mr)
	}
}

func TestNewSetAssocGeometry(t *testing.T) {
	c, err := NewSetAssoc(64<<10, 8, 64)
	if err != nil {
		t.Fatalf("NewSetAssoc: %v", err)
	}
	sets, ways, line := c.Geometry()
	if sets != 128 || ways != 8 || line != 64 {
		t.Errorf("geometry = (%d, %d, %d), want (128, 8, 64)", sets, ways, line)
	}
	if c.CapacityBytes() != 64<<10 {
		t.Errorf("capacity = %d", c.CapacityBytes())
	}
	for _, bad := range [][3]int{{0, 8, 64}, {100, 8, 64}, {64 << 10, 8, 48}, {63 << 10, 8, 64}} {
		if _, err := NewSetAssoc(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("NewSetAssoc%v accepted invalid geometry", bad)
		}
	}
}

func TestSetAssocHitsAfterFill(t *testing.T) {
	c, _ := NewSetAssoc(8<<10, 2, 64)
	// Touch 64 distinct lines (half the cache): all misses.
	for i := 0; i < 64; i++ {
		if c.Access(uint64(i * 64)) {
			t.Fatalf("unexpected hit on first touch of line %d", i)
		}
	}
	// Re-touch: all hits.
	for i := 0; i < 64; i++ {
		if !c.Access(uint64(i * 64)) {
			t.Fatalf("unexpected miss on re-touch of line %d", i)
		}
	}
	acc, miss, _ := c.Stats()
	if acc != 128 || miss != 64 {
		t.Errorf("stats = (%d, %d), want (128, 64)", acc, miss)
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	// 2-way cache with 2 sets: lines mapping to set 0 are multiples of 2.
	c, _ := NewSetAssoc(256, 2, 64) // 2 sets × 2 ways × 64 B
	a, b, d := uint64(0), uint64(2*64), uint64(4*64)
	c.Access(a) // set 0
	c.Access(b) // set 0 — cache now holds {a, b}
	c.Access(a) // a is MRU
	c.Access(d) // evicts LRU = b
	if !c.Access(a) {
		t.Error("a should still hit (was MRU)")
	}
	if c.Access(b) {
		t.Error("b should have been evicted (was LRU)")
	}
}

func TestSetAssocWorkingSetSweepMatchesAnalyticShape(t *testing.T) {
	// Replay cyclic working-set streams through the executable cache and
	// check the analytic model's qualitative shape: near-zero misses while
	// the set fits, high misses at 2× capacity (cyclic LRU thrashing).
	capacity := 32 << 10
	c, _ := NewSetAssoc(capacity, 8, 64)
	run := func(wsBytes int) float64 {
		c.Reset()
		lines := wsBytes / 64
		const rounds = 12
		for r := 0; r < rounds; r++ {
			for i := 0; i < lines; i++ {
				c.Access(uint64(i * 64))
			}
		}
		// Ignore the cold first round.
		acc, miss, _ := c.Stats()
		cold := uint64(lines)
		return float64(miss-min64(miss, cold)) / float64(acc-cold)
	}
	small := run(capacity / 2)
	huge := run(capacity * 2)
	if small > 0.02 {
		t.Errorf("fitting stream misses %.3f, want ≈ 0", small)
	}
	if huge < 0.9 {
		t.Errorf("2× capacity cyclic stream misses %.3f, want ≈ 1 (LRU thrash)", huge)
	}
	am := NewSharingModel(float64(capacity))
	if amFit, amSpill := am.MissRate(float64(capacity/2), float64(capacity), 0, 1.0),
		am.MissRate(float64(capacity*2), float64(capacity), 0, 1.0); amFit >= amSpill {
		t.Errorf("analytic model shape inverted: fit %.3f ≥ spill %.3f", amFit, amSpill)
	}
}

func TestSetAssocSharedStreamsInterfere(t *testing.T) {
	capacity := 32 << 10
	c, _ := NewSetAssoc(capacity, 8, 64)
	// Two streams, each 60% of capacity: alone they nearly fit, together
	// they thrash.
	mkStream := func(base uint64, bytes int) []uint64 {
		lines := bytes / 64
		out := make([]uint64, 0, lines*6)
		for r := 0; r < 6; r++ {
			for i := 0; i < lines; i++ {
				out = append(out, base+uint64(i*64))
			}
		}
		return out
	}
	wsBytes := capacity * 6 / 10
	alone := mkStream(0, wsBytes)
	c.AccessStream(0, alone)
	aloneMiss := c.MissRate()

	c.Reset()
	s1 := mkStream(0, wsBytes)
	s2 := mkStream(1<<30, wsBytes)
	// Interleave in chunks to mimic concurrent execution.
	chunk := 64
	for off := 0; off < len(s1); off += chunk {
		end := off + chunk
		if end > len(s1) {
			end = len(s1)
		}
		c.AccessStream(1, s1[off:end])
		c.AccessStream(2, s2[off:end])
	}
	sharedMiss := c.MissRate()
	if sharedMiss <= aloneMiss {
		t.Errorf("shared streams miss %.3f ≤ alone %.3f; expected destructive interference", sharedMiss, aloneMiss)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
