package loadgen

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Seed:        7,
		Duration:    2 * time.Second,
		Rate:        500,
		Amp:         0.6,
		Period:      time.Second,
		TailAlpha:   1.5,
		Vectors:     16,
		PhaseChange: true,
		Events:      []string{"INST_RETIRED", "L2_MISSES"},
	}
}

// TestTraceDeterministic is the harness's core contract: the same Config
// yields the same trace, byte for byte, offset for offset.
func TestTraceDeterministic(t *testing.T) {
	a := Trace(testConfig())
	b := Trace(testConfig())
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || !bytes.Equal(a[i].Body, b[i].Body) {
			t.Fatalf("trace diverges at %d: (%v, %s) vs (%v, %s)", i, a[i].At, a[i].Body, b[i].At, b[i].Body)
		}
	}
	cfg := testConfig()
	cfg.Seed = 8
	c := Trace(cfg)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i].At != c[i].At {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}
}

func TestTraceShape(t *testing.T) {
	cfg := testConfig()
	trace := Trace(cfg)
	// Mean rate should land near Rate (bursts push it above; the diurnal
	// curve averages out over full periods). Very loose bounds — this is a
	// sanity check, not a statistics test.
	perSec := float64(len(trace)) / cfg.Duration.Seconds()
	if perSec < cfg.Rate/2 || perSec > cfg.Rate*8 {
		t.Errorf("trace rate %.0f req/s implausible for configured %.0f", perSec, cfg.Rate)
	}
	var prev time.Duration
	phases := map[string]bool{}
	for _, r := range trace {
		if r.At < prev {
			t.Fatal("offsets are not non-decreasing")
		}
		prev = r.At
		if r.At >= cfg.Duration {
			t.Fatalf("offset %v beyond duration %v", r.At, cfg.Duration)
		}
		if bytes.Contains(r.Body, []byte(`"steady"`)) {
			phases["steady"] = true
		}
		if bytes.Contains(r.Body, []byte(`"shifted"`)) {
			phases["shifted"] = true
		}
	}
	if !phases["steady"] || !phases["shifted"] {
		t.Errorf("phase change missing from trace: saw %v", phases)
	}
	// Zipf popularity: the most popular body should dominate a uniform
	// share by a wide margin.
	counts := map[string]int{}
	for _, r := range trace {
		counts[string(r.Body)]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < len(trace)/cfg.Vectors {
		t.Errorf("top body count %d does not exceed the uniform share %d", max, len(trace)/cfg.Vectors)
	}
}

// TestRunAgainstServer replays a short trace against a live httptest
// server and checks the accounting: everything dispatched, errors counted,
// latencies recorded.
func TestRunAgainstServer(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	cfg := testConfig()
	cfg.Duration = 300 * time.Millisecond
	cfg.Rate = 300
	trace := Trace(cfg)
	res, err := Run(context.Background(), ts.Client(), ts.URL, trace, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != len(trace) {
		t.Errorf("sent %d of %d", res.Sent, len(trace))
	}
	if res.Errors != 0 {
		t.Errorf("%d errors against an all-200 server", res.Errors)
	}
	if int(hits.Load()) != len(trace) {
		t.Errorf("server saw %d requests, trace has %d", hits.Load(), len(trace))
	}
	if res.Lat.Count() != uint64(len(trace)) {
		t.Errorf("histogram holds %d samples, want %d", res.Lat.Count(), len(trace))
	}
	if res.ReqPerSec() <= 0 {
		t.Error("zero throughput")
	}
	if p50, p99 := res.Lat.Quantile(0.50), res.Lat.Quantile(0.99); p50 > p99 {
		t.Errorf("p50 %d > p99 %d", p50, p99)
	}
}

func TestRunCountsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()
	cfg := testConfig()
	cfg.Duration = 100 * time.Millisecond
	cfg.Rate = 200
	trace := Trace(cfg)
	res, err := Run(context.Background(), ts.Client(), ts.URL, trace, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Sent {
		t.Errorf("errors %d != sent %d against an all-400 server", res.Errors, res.Sent)
	}
}

func TestCheckDetectsDivergence(t *testing.T) {
	n := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n++
		if n%2 == 0 {
			w.Write([]byte("B"))
		} else {
			w.Write([]byte("A"))
		}
	}))
	defer ts.Close()
	cfg := testConfig()
	cfg.Duration = 50 * time.Millisecond
	cfg.Rate = 100
	trace := Trace(cfg)
	if err := Check(context.Background(), ts.Client(), ts.URL, trace); err == nil {
		t.Fatal("Check passed against a server that alternates responses")
	}
	stable := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer stable.Close()
	if err := Check(context.Background(), stable.Client(), stable.URL, trace); err != nil {
		t.Fatalf("Check failed against a stable server: %v", err)
	}
}

// --- histogram ---

func TestHistExactLowValues(t *testing.T) {
	var h Hist
	for v := int64(0); v < 64; v++ {
		h.Add(v)
	}
	if h.Count() != 64 || h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	// Values below 2*subBuckets are exact: the p-quantile of 0..63 is
	// ceil(64p)-1.
	for _, p := range []float64{0.01, 0.25, 0.5, 0.99, 1.0} {
		want := int64(math.Ceil(64*p)) - 1
		if got := h.Quantile(p); got != want {
			t.Errorf("Quantile(%g) = %d, want %d", p, got, want)
		}
	}
}

func TestHistRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Hist
	var vals []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, like a latency distribution with a tail.
		v := int64(math.Exp(rng.Float64() * 14))
		vals = append(vals, v)
		h.Add(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(p*float64(len(vals)))) - 1
		exact := vals[rank]
		got := h.Quantile(p)
		if got < exact {
			t.Errorf("Quantile(%g) = %d below exact %d (upper bound violated)", p, got, exact)
		}
		if float64(got) > float64(exact)*(1+2.0/subBuckets)+1 {
			t.Errorf("Quantile(%g) = %d, exact %d: error beyond bucket resolution", p, got, exact)
		}
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, all Hist
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 20))
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge lost samples: %d/%d", a.Count(), all.Count())
	}
	for _, p := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(p) != all.Quantile(p) {
			t.Errorf("Quantile(%g): merged %d != direct %d", p, a.Quantile(p), all.Quantile(p))
		}
	}
}

func TestHistNegativeClamps(t *testing.T) {
	var h Hist
	h.Add(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Quantile(1) != 0 {
		t.Errorf("negative sample mishandled: count=%d min=%d q=%d", h.Count(), h.Min(), h.Quantile(1))
	}
}
