// Package loadgen is a deterministic open-loop load harness for the
// serving subsystem: it synthesizes a reproducible request trace shaped
// like real control-loop traffic — Poisson arrivals modulated by a
// diurnal curve, heavy-tailed bursts, a Zipf-popular rate-vector
// population, a mid-run phase change — and replays it against an actord
// endpoint over real HTTP, recording latency against each request's
// *intended* send time (open-loop, so a slow server cannot slow the
// arrival process and hide its own queueing delay — the coordinated
// omission mistake).
//
// Everything about a trace is a pure function of Config: the same seed
// yields the same request bytes in the same order at the same offsets, so
// a latency regression between two runs is attributable to the server, not
// the workload.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/greenhpc/actor/internal/parallel"
)

// Config describes one deterministic trace.
type Config struct {
	// Seed fixes every random draw in the trace.
	Seed int64
	// Duration is the trace's span: intended send times fall in [0, Duration).
	Duration time.Duration
	// Rate is the mean arrival rate in requests per second.
	Rate float64
	// Amp modulates Rate sinusoidally (the diurnal curve): instantaneous
	// rate is Rate·(1 + Amp·sin(2πt/Period)). 0 disables, 1 swings between
	// 0 and 2·Rate.
	Amp float64
	// Period is the diurnal period (default: Duration, one full cycle).
	Period time.Duration
	// TailAlpha is the Pareto shape of burst sizes: each arrival point
	// carries a burst of ⌈Pareto(α)⌉ back-to-back requests. Small α means
	// heavier tails; values ≤ 1 have unbounded mean. 0 disables bursts
	// (every arrival is one request).
	TailAlpha float64
	// Vectors is the size of the rate-vector population requests draw from
	// with Zipf popularity (s=1.1): a handful of vectors dominate — the
	// memo's hit case — while the tail keeps the miss path warm.
	Vectors int
	// PhaseChange relabels the second half of the trace with a different
	// phase string, forcing new memo keys mid-run like a program phase
	// transition does.
	PhaseChange bool
	// Events are the counter mnemonics of each request's rate vector
	// (typically the served bank's richest event set).
	Events []string
}

// Request is one entry of a trace: the pre-encoded /v1/predict body and
// the intended send offset from run start.
type Request struct {
	At   time.Duration
	Body []byte
}

// Trace synthesizes the full request schedule for cfg. Offsets are
// non-decreasing.
func Trace(cfg Config) []Request {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil
	}
	if cfg.Period <= 0 {
		cfg.Period = cfg.Duration
	}
	if cfg.Vectors <= 0 {
		cfg.Vectors = 1
	}

	bodies := vectorBodies(cfg)
	arrivals := parallel.Rand(cfg.Seed, "loadgen/arrivals")
	zipf := rand.NewZipf(parallel.Rand(cfg.Seed, "loadgen/popularity"), 1.1, 1, uint64(cfg.Vectors-1))

	var trace []Request
	// Thinning-free non-homogeneous Poisson: advance by an exponential gap
	// scaled to the instantaneous rate at the current offset. The diurnal
	// curve varies slowly relative to the gaps, so the local-rate
	// approximation is exact enough for a load shape (this is a harness,
	// not a queueing-theory instrument).
	t := time.Duration(0)
	for t < cfg.Duration {
		inst := cfg.Rate * (1 + cfg.Amp*math.Sin(2*math.Pi*float64(t)/float64(cfg.Period)))
		if inst < cfg.Rate*0.01 {
			inst = cfg.Rate * 0.01 // keep the trough from stalling the clock
		}
		gap := arrivals.ExpFloat64() / inst
		t += time.Duration(gap * float64(time.Second))
		if t >= cfg.Duration {
			break
		}
		burst := 1
		if cfg.TailAlpha > 0 {
			// Pareto(α) with x_m = 1, capped so one draw cannot swamp the run.
			burst = int(math.Ceil(math.Pow(1-arrivals.Float64(), -1/cfg.TailAlpha)))
			if burst > 64 {
				burst = 64
			}
		}
		phase := 0
		if cfg.PhaseChange && t >= cfg.Duration/2 {
			phase = 1
		}
		for i := 0; i < burst; i++ {
			v := int(zipf.Uint64())
			trace = append(trace, Request{At: t, Body: bodies[phase][v]})
		}
	}
	return trace
}

// vectorBodies pre-encodes the request population: Vectors distinct rate
// vectors × the (one or two) phase labels. Bodies are encoded by hand in
// fixed key order so the trace bytes are stable across Go versions.
func vectorBodies(cfg Config) [2][][]byte {
	phases := []string{"steady"}
	if cfg.PhaseChange {
		phases = append(phases, "shifted")
	}
	var out [2][][]byte
	for pi, phase := range phases {
		out[pi] = make([][]byte, cfg.Vectors)
		for v := 0; v < cfg.Vectors; v++ {
			rng := parallel.Rand(cfg.Seed, fmt.Sprintf("loadgen/vector/%d", v))
			var b bytes.Buffer
			fmt.Fprintf(&b, `{"phase":%q,"rates":{"IPC":%.6f`, phase, 0.2+3.0*rng.Float64())
			for _, ev := range cfg.Events {
				fmt.Fprintf(&b, `,%q:%.6f`, ev, rng.Float64()*0.1)
			}
			b.WriteString("}}")
			out[pi][v] = b.Bytes()
		}
	}
	if len(phases) == 1 {
		out[1] = out[0]
	}
	return out
}

// Result is one replay's outcome.
type Result struct {
	Sent    int           // requests dispatched
	Errors  int           // transport errors + non-200 statuses
	Elapsed time.Duration // wall time of the replay
	Lat     Hist          // latency vs intended send time, nanoseconds
}

// ReqPerSec is the achieved throughput: completed requests over elapsed
// wall time.
func (r *Result) ReqPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Sent-r.Errors) / r.Elapsed.Seconds()
}

// Run replays trace open-loop against url (the /v1/predict endpoint) with
// conns concurrent senders. The dispatcher releases each request at its
// intended offset regardless of how many are still in flight; when all
// senders are busy the request waits in queue with its latency clock
// already running — queueing delay charges to the server, never hides.
func Run(ctx context.Context, client *http.Client, url string, trace []Request, conns int) (*Result, error) {
	if conns < 1 {
		conns = 1
	}
	if len(trace) == 0 {
		return &Result{}, nil
	}
	queue := make(chan int, len(trace))
	res := &Result{}
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local Hist
			errs := 0
			for i := range queue {
				ok := post(ctx, client, url, trace[i].Body)
				lat := time.Since(start) - trace[i].At
				local.Add(int64(lat))
				if !ok {
					errs++
				}
			}
			mu.Lock()
			res.Lat.Merge(&local)
			res.Errors += errs
			mu.Unlock()
		}()
	}

	dispatched := 0
dispatch:
	for i := range trace {
		if wait := trace[i].At - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break dispatch
			}
		}
		if ctx.Err() != nil {
			break
		}
		queue <- i
		dispatched++
	}
	close(queue)
	wg.Wait()
	res.Sent = dispatched
	res.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil && dispatched == 0 {
		return res, err
	}
	return res, nil
}

func post(ctx context.Context, client *http.Client, url string, body []byte) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Check replays every distinct body of trace twice, sequentially, and
// fails unless both responses are 200 with byte-identical bodies — the
// serving determinism contract (and, with ACTOR_PREDICT_MEMO toggled
// between server runs, the memo's byte-identity check).
func Check(ctx context.Context, client *http.Client, url string, trace []Request) error {
	seen := make(map[string][]byte)
	order := make([]string, 0, len(trace))
	for _, r := range trace {
		k := string(r.Body)
		if _, ok := seen[k]; !ok {
			seen[k] = r.Body
			order = append(order, k)
		}
	}
	sort.Strings(order)
	for _, k := range order {
		body := seen[k]
		first, err := fetch(ctx, client, url, body)
		if err != nil {
			return err
		}
		second, err := fetch(ctx, client, url, body)
		if err != nil {
			return err
		}
		if !bytes.Equal(first, second) {
			return fmt.Errorf("loadgen: repeat response diverged for body %s", body)
		}
	}
	return nil
}

func fetch(ctx context.Context, client *http.Client, url string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: status %d for body %s: %s", resp.StatusCode, body, data)
	}
	return data, nil
}
