package loadgen

import "math/bits"

// Hist is an HDR-style latency histogram: one bucket per (log2 magnitude,
// linear sub-position) pair, so recording is O(1), the footprint is fixed,
// and any quantile is reported with bounded relative error instead of the
// unbounded error a fixed-width histogram gives on heavy tails.
//
// Values below subBuckets are exact; above that each power-of-two range is
// split into subBuckets linear sub-buckets, bounding the relative error of
// any reported quantile at 1/subBuckets (~3%). Values are int64
// nanoseconds; the layout covers the full positive range.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	min    int64
	max    int64
}

const (
	subBuckets  = 32 // per power-of-two range; bounds quantile error at ~3%
	subBits     = 5  // log2(subBuckets)
	histBuckets = 64 * subBuckets
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	// Normalize so v>>shift lands in [subBuckets, 2*subBuckets): the top
	// subBits+1 significant bits pick the bucket.
	shift := bits.Len64(uint64(v)) - (subBits + 1)
	return subBuckets*shift + int(v>>uint(shift))
}

// bucketHigh is the largest value mapping to bucket i — the conservative
// (upper-edge) representative Quantile reports.
func bucketHigh(i int) int64 {
	if i < 2*subBuckets {
		return int64(i) // first two groups are exact
	}
	shift := i/subBuckets - 1
	base := int64(subBuckets+i%subBuckets) << uint(shift)
	return base + (1 << uint(shift)) - 1
}

// Add records one value. Negative values clamp to zero (a latency sample
// can only go negative through clock steps; losing its sign is the least
// surprising treatment).
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.n++
}

// Merge folds o into h. Each runner goroutine records into a private Hist;
// the run merges them at the end, so recording needs no synchronization.
func (h *Hist) Merge(o *Hist) {
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.n }

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Min returns the smallest recorded value (0 when empty).
func (h *Hist) Min() int64 { return h.min }

// Quantile returns an upper bound for the p-quantile (0 < p <= 1) of the
// recorded values: the upper edge of the bucket holding the rank-⌈p·n⌉
// value, clamped to the observed maximum. Zero when empty.
func (h *Hist) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(p * float64(h.n))
	if float64(rank) < p*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketHigh(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
