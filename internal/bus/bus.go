// Package bus models the front-side bus connecting the quad-core package to
// memory: a single shared channel with a queueing-delay region at moderate
// load and a hard sustained-bandwidth wall at saturation.
//
// The FSB is the second shared bottleneck in the paper's platform (after the
// shared L2s): bandwidth-bound codes such as IS saturate it well before four
// cores, which is why their performance *drops* as threads are added — in a
// saturated regime execution time is proportional to total bytes moved, and
// destructive L2 sharing multiplies the bytes.
package bus

import (
	"errors"
	"math"
)

// Model describes a shared memory bus.
type Model struct {
	// PeakBandwidth is the theoretical peak in bytes per second
	// (1066 MT/s × 8 B ≈ 8.5 GB/s on the paper's platform).
	PeakBandwidth float64
	// SustainedFraction is the fraction of peak achievable by real access
	// streams (command overhead, bank conflicts, read/write turnaround).
	SustainedFraction float64
	// QueueGain scales the queueing-delay term: the latency inflation at
	// relative load ρ is 1 + QueueGain·ρ²/(1−ρ).
	QueueGain float64
	// RhoCap bounds the relative load used in the queueing term so the
	// latency factor stays finite; beyond it the hard bandwidth wall (see
	// MinTransferTime) governs, not latency.
	RhoCap float64
}

// New returns a bus model with the given peak bandwidth and default
// coefficients (70% sustained efficiency, moderate queueing).
func New(peakBandwidth float64) (*Model, error) {
	if peakBandwidth <= 0 {
		return nil, errors.New("bus: non-positive bandwidth")
	}
	return &Model{
		PeakBandwidth:     peakBandwidth,
		SustainedFraction: 0.70,
		QueueGain:         0.5,
		RhoCap:            0.90,
	}, nil
}

// SustainedBandwidth returns the deliverable bandwidth in bytes/sec.
func (m *Model) SustainedBandwidth() float64 {
	return m.PeakBandwidth * m.SustainedFraction
}

// RelativeLoad returns offered load as a fraction of sustained bandwidth,
// clamped to [0, RhoCap].
func (m *Model) RelativeLoad(offeredBytesPerSec float64) float64 {
	if offeredBytesPerSec <= 0 {
		return 0
	}
	rho := offeredBytesPerSec / m.SustainedBandwidth()
	if rho > m.RhoCap {
		rho = m.RhoCap
	}
	return rho
}

// LatencyFactor returns the multiplicative inflation of memory latency at
// the given offered load: 1 at zero load, rising as 1 + g·ρ²/(1−ρ). The ρ
// cap keeps it finite; saturation itself is modelled by MinTransferTime.
func (m *Model) LatencyFactor(offeredBytesPerSec float64) float64 {
	rho := m.RelativeLoad(offeredBytesPerSec)
	if rho <= 0 {
		return 1
	}
	return 1 + m.QueueGain*rho*rho/(1-rho)
}

// Utilization returns the delivered-bandwidth fraction of peak for an
// offered load, for power modelling and the BUS_DRDY occupancy event:
// min(offered, sustained)/peak.
func (m *Model) Utilization(offeredBytesPerSec float64) float64 {
	if offeredBytesPerSec <= 0 {
		return 0
	}
	d := math.Min(offeredBytesPerSec, m.SustainedBandwidth())
	return d / m.PeakBandwidth
}

// MinTransferTime returns the bandwidth wall: the minimum wall-clock time
// to move totalBytes over the bus. Execution can never complete faster than
// this, no matter how many cores are computing.
func (m *Model) MinTransferTime(totalBytes float64) float64 {
	if totalBytes <= 0 {
		return 0
	}
	return totalBytes / m.SustainedBandwidth()
}
