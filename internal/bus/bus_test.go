package bus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadBandwidth(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("New(-1) accepted")
	}
}

func TestLatencyFactorAtZeroLoad(t *testing.T) {
	m, _ := New(8.5e9)
	if got := m.LatencyFactor(0); got != 1 {
		t.Errorf("LatencyFactor(0) = %g, want 1", got)
	}
	if got := m.LatencyFactor(-5); got != 1 {
		t.Errorf("LatencyFactor(-5) = %g, want 1", got)
	}
}

func TestLatencyFactorMonotone(t *testing.T) {
	m, _ := New(8.5e9)
	prev := 0.0
	for load := 0.0; load <= 2*m.SustainedBandwidth(); load += m.SustainedBandwidth() / 20 {
		f := m.LatencyFactor(load)
		if f < prev-1e-12 {
			t.Fatalf("latency factor decreased at load %g: %g → %g", load, prev, f)
		}
		if f < 1 {
			t.Fatalf("latency factor below 1 at load %g: %g", load, f)
		}
		prev = f
	}
}

func TestLatencyFactorFiniteAtSaturation(t *testing.T) {
	m, _ := New(8.5e9)
	f := m.LatencyFactor(100 * m.PeakBandwidth)
	if math.IsInf(f, 0) || math.IsNaN(f) {
		t.Fatalf("latency factor not finite at saturation: %g", f)
	}
	// With the default rho cap 0.9 and gain 0.5: 1 + 0.5·0.81/0.1 = 5.05.
	if math.Abs(f-5.05) > 0.01 {
		t.Errorf("saturated latency factor = %g, want ≈ 5.05", f)
	}
}

func TestUtilizationBounds(t *testing.T) {
	m, _ := New(8.5e9)
	f := func(load float64) bool {
		u := m.Utilization(math.Abs(load) * 1e10)
		return u >= 0 && u <= m.SustainedFraction+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if u := m.Utilization(m.PeakBandwidth * 10); math.Abs(u-m.SustainedFraction) > 1e-12 {
		t.Errorf("saturated utilization = %g, want %g", u, m.SustainedFraction)
	}
}

func TestMinTransferTime(t *testing.T) {
	m, _ := New(10e9) // sustained = 7 GB/s
	if got := m.MinTransferTime(0); got != 0 {
		t.Errorf("MinTransferTime(0) = %g", got)
	}
	want := 7e9 / m.SustainedBandwidth() // = 1 second of traffic
	if got := m.MinTransferTime(7e9); math.Abs(got-want) > 1e-12 {
		t.Errorf("MinTransferTime(7e9) = %g, want %g", got, want)
	}
	// Doubling bytes doubles the wall.
	if a, b := m.MinTransferTime(1e9), m.MinTransferTime(2e9); math.Abs(b-2*a) > 1e-15 {
		t.Errorf("wall not linear in bytes: %g vs %g", a, b)
	}
}

func TestRelativeLoadCap(t *testing.T) {
	m, _ := New(8.5e9)
	if rho := m.RelativeLoad(100 * m.PeakBandwidth); rho != m.RhoCap {
		t.Errorf("relative load = %g, want cap %g", rho, m.RhoCap)
	}
	if rho := m.RelativeLoad(0); rho != 0 {
		t.Errorf("relative load at zero = %g", rho)
	}
}
