// Manycore: the paper predicts that scalability limits — and therefore the
// value of concurrency throttling — grow as core counts rise and the
// compute-to-cache ratio falls. This example synthesises 8-, 16- and
// 32-core machines, runs a bandwidth-bound and a compute-bound workload on
// every distinct placement, and shows the gap between "use all cores" and
// the best placement widening with scale — while the number of candidate
// configurations grows, which is the paper's argument for prediction over
// empirical search.
//
//	go run ./examples/manycore
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/report"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

func phases() []workload.PhaseProfile {
	return []workload.PhaseProfile{
		{
			Name: "stream", Fingerprint: "MANY/stream",
			Instructions: 5e8, BaseIPC: 1.0,
			MemRefsPerInstr: 0.55, LoadFraction: 0.6, L1MissRate: 0.4,
			WorkingSetBytes: 3 << 20, SharingFactor: 0.05, LocalityExp: 1.1,
			ColdMissRate: 0.3, MLP: 10, ParallelFraction: 0.995,
			SyncCycles: 5e5, BranchRate: 0.05, BranchMissRate: 0.01,
			TLBMissRate: 0.002, ChunkGranularity: 256, PrefetchFriendly: 0.8,
			StoreBandwidthBoost: 0.9,
		},
		{
			Name: "dense", Fingerprint: "MANY/dense",
			Instructions: 5e8, BaseIPC: 1.8,
			MemRefsPerInstr: 0.3, LoadFraction: 0.65, L1MissRate: 0.05,
			WorkingSetBytes: 1 << 20, SharingFactor: 0.3, LocalityExp: 1,
			ColdMissRate: 0.1, MLP: 2.5, ParallelFraction: 0.998,
			SyncCycles: 4e5, BranchRate: 0.08, BranchMissRate: 0.02,
			TLBMissRate: 0.0005, ChunkGranularity: 256, PrefetchFriendly: 0.5,
		},
	}
}

func main() {
	t := report.NewTable("throttling value vs core count",
		"cores", "phase", "configs", "all-cores (s)", "best (s)", "best placement", "gain")
	for _, cores := range []int{4, 8, 16, 32} {
		topo := topology.Manycore(cores, 2)
		m, err := machine.New(topo)
		if err != nil {
			log.Fatal(err)
		}
		placements := topology.EnumeratePlacements(topo)
		for _, p := range phases() {
			p := p
			all := placements[len(placements)-1] // all cores
			tAll := m.RunPhase(&p, 0, all).TimeSec
			bestT, bestName := tAll, all.Name
			for _, pl := range placements {
				tt := m.RunPhase(&p, 0, pl).TimeSec
				if tt < bestT {
					bestT, bestName = tt, pl.Name
				}
			}
			t.AddRow(
				fmt.Sprintf("%d", cores), p.Name,
				fmt.Sprintf("%d", len(placements)),
				fmt.Sprintf("%.3f", tAll),
				fmt.Sprintf("%.3f", bestT),
				bestName,
				fmt.Sprintf("%.1f%%", 100*(1-bestT/tAll)),
			)
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nNote how the candidate-configuration count grows with cores:")
	fmt.Println("empirical search must probe each one, while ACTOR predicts from")
	fmt.Println("one sampling period — the paper's scaling argument (Section IV-B).")
}
