// Quickstart: build the simulated quad-core Xeon platform, train a small
// ANN predictor bank on part of the NPB suite, and run a benchmark the
// models never saw under ACTOR's prediction-based concurrency throttling,
// comparing against the default run-on-all-cores strategy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
)

func main() {
	// 1. The platform: a quad-core Xeon QX6600 model, in pristine (oracle)
	//    and noisy (measurement) flavours, plus the wall-power model.
	truth, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		log.Fatal(err)
	}
	noisy := truth.WithNoise(noise.New(42).Fork("machine"), 0.02, 0.08)
	env := core.NewEnv(noisy, truth, power.Default())

	// 2. Offline training: collect counter samples from a few training
	//    applications and fit ANN ensembles predicting IPC per target
	//    configuration.
	collector := dataset.NewCollector(noisy, truth)
	collector.Repetitions = 3
	var samples []dataset.PhaseSample
	for _, name := range []string{"BT", "CG", "LU", "SP"} {
		b, err := npb.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		ss, err := collector.CollectBenchmark(b)
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, ss...)
	}
	cfg := ann.DefaultConfig()
	cfg.MaxEpochs = 150
	bank, err := core.TrainANNBank(samples, []int{12, 2}, []string{"1", "2a", "2b", "3"}, 5, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Online adaptation: run MG — which the models never saw — under
	//    the default 4-core strategy and under ACTOR prediction.
	mg, err := npb.ByName("MG")
	if err != nil {
		log.Fatal(err)
	}
	base, err := (&core.Static{Config: "4"}).Run(mg, env)
	if err != nil {
		log.Fatal(err)
	}
	adapted, err := (&core.Prediction{Bank: bank}).Run(mg, env)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MG on all 4 cores:  %6.2f s  %6.1f W  %8.0f J  ED2 %.0f\n",
		base.TimeSec, base.AvgPowerW, base.EnergyJ, base.ED2)
	fmt.Printf("MG under ACTOR:     %6.2f s  %6.1f W  %8.0f J  ED2 %.0f\n",
		adapted.TimeSec, adapted.AvgPowerW, adapted.EnergyJ, adapted.ED2)
	fmt.Printf("time saved: %.1f%%   energy saved: %.1f%%   ED2 saved: %.1f%%\n",
		100*(1-adapted.TimeSec/base.TimeSec),
		100*(1-adapted.EnergyJ/base.EnergyJ),
		100*(1-adapted.ED2/base.ED2))
	fmt.Println("per-phase configurations chosen:")
	for phase, cfgName := range adapted.PhaseConfigs {
		fmt.Printf("  %-10s → %s\n", phase, cfgName)
	}
}
