// Live: ACTOR's instrumentation API on real Go computation. Each NPB-style
// mini-kernel runs timesteps on the omp worker team; a LiveTuner wraps
// every timestep in Begin/End, probes each candidate thread count, and
// locks the kernel to the fastest — live concurrency throttling with
// wall-clock throughput as the fitness signal.
//
// (Go exposes no portable hardware counters, so the live path uses the
// empirical-search policy from the authors' prior work [17] instead of
// counter-driven ANN prediction; the full counter+ANN pipeline runs on the
// simulated platform — see examples/quickstart.)
//
//	go run ./examples/live
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/kernels"
	"github.com/greenhpc/actor/internal/omp"
)

func main() {
	maxThreads := runtime.NumCPU()
	if maxThreads > 8 {
		maxThreads = 8 // diminishing returns for the demo
	}
	fmt.Printf("machine has %d CPUs; probing 1..%d threads\n\n", runtime.NumCPU(), maxThreads)

	const timesteps = 24
	for _, k := range kernels.All(2) {
		team := omp.NewTeam(maxThreads, false)
		tuner, err := core.NewLiveTuner(core.DefaultCandidates(maxThreads), 2)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for it := 0; it < timesteps; it++ {
			threads := tuner.Begin()
			team.SetThreads(threads)
			k.Step(team)
			tuner.End()
		}
		elapsed := time.Since(start)

		fmt.Printf("%-6s locked to %d threads after %2d probes; %d timesteps in %7.1f ms (checksum %.4g)\n",
			k.Name(), tuner.Choice(), len(core.DefaultCandidates(maxThreads))*2,
			timesteps, float64(elapsed.Microseconds())/1000, k.Checksum())
	}

	fmt.Println("\nthroughput-bound kernels typically settle below the maximum thread")
	fmt.Println("count — the live analogue of the paper's concurrency throttling.")
}
