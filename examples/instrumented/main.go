// Instrumented: define a custom iterative application (not part of the NPB
// suite) as phase profiles, then let every ACTOR strategy loose on it —
// static, empirical search, oracle global/phase, and ANN prediction with a
// model trained on the NPB suite. This is the workflow a downstream user
// follows to study their own workload.
//
//	go run ./examples/instrumented
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/report"
	"github.com/greenhpc/actor/internal/topology"
	"github.com/greenhpc/actor/internal/workload"
)

// myApp is a made-up CFD-flavoured mini-app with one dense phase, one
// bandwidth-bound streaming phase and one reduction.
func myApp() *workload.Benchmark {
	b := &workload.Benchmark{
		Name:         "MYAPP",
		Iterations:   60,
		Idiosyncrasy: 0.03,
		Phases: []workload.PhaseProfile{
			{
				Name: "flux_kernel", Instructions: 7e8, BaseIPC: 1.7,
				MemRefsPerInstr: 0.3, LoadFraction: 0.65, L1MissRate: 0.06,
				WorkingSetBytes: 1.8 * 1024 * 1024, SharingFactor: 0.3, LocalityExp: 1,
				ColdMissRate: 0.15, MLP: 2.4, ParallelFraction: 0.995,
				SyncCycles: 4e5, BranchRate: 0.08, BranchMissRate: 0.02,
				TLBMissRate: 0.0005, ChunkGranularity: 64, PrefetchFriendly: 0.5,
			},
			{
				Name: "advect_stream", Instructions: 2.5e8, BaseIPC: 0.9,
				MemRefsPerInstr: 0.55, LoadFraction: 0.6, L1MissRate: 0.4,
				WorkingSetBytes: 3.4 * 1024 * 1024, SharingFactor: 0.05, LocalityExp: 1.1,
				ColdMissRate: 0.3, MLP: 10, ParallelFraction: 0.99,
				SyncCycles: 5e5, BranchRate: 0.05, BranchMissRate: 0.01,
				TLBMissRate: 0.002, ChunkGranularity: 64, PrefetchFriendly: 0.8,
				StoreBandwidthBoost: 0.9,
			},
			{
				Name: "norm_reduce", Instructions: 8e7, BaseIPC: 1.1,
				MemRefsPerInstr: 0.45, LoadFraction: 0.7, L1MissRate: 0.1,
				WorkingSetBytes: 1.2 * 1024 * 1024, SharingFactor: 0.15, LocalityExp: 1,
				ColdMissRate: 0.2, MLP: 3, ParallelFraction: 0.93,
				SyncCycles: 2e6, CriticalFraction: 0.02, BranchRate: 0.07,
				BranchMissRate: 0.02, TLBMissRate: 0.0005, ChunkGranularity: 64,
				PrefetchFriendly: 0.7,
			},
		},
	}
	for i := range b.Phases {
		b.Phases[i].Fingerprint = b.Name + "/" + b.Phases[i].Name
	}
	return b
}

func main() {
	truth, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		log.Fatal(err)
	}
	noisy := truth.WithNoise(noise.New(7).Fork("machine"), 0.02, 0.08)
	env := core.NewEnv(noisy, truth, power.Default())

	// Train the predictor on the NPB suite — MYAPP is unseen.
	collector := dataset.NewCollector(noisy, truth)
	collector.Repetitions = 3
	suite, err := collector.CollectSuite(npb.All())
	if err != nil {
		log.Fatal(err)
	}
	var samples []dataset.PhaseSample
	for _, name := range npb.Names() {
		samples = append(samples, suite[name]...)
	}
	cfg := ann.DefaultConfig()
	cfg.MaxEpochs = 150
	bank, err := core.TrainANNBank(samples, []int{12}, []string{"1", "2a", "2b", "3"}, 5, cfg)
	if err != nil {
		log.Fatal(err)
	}

	app := myApp()
	if err := app.Validate(); err != nil {
		log.Fatal(err)
	}
	strategies := []core.Strategy{
		&core.Static{Config: "4"},
		&core.Static{Config: "2b"},
		&core.Search{ProbesPerConfig: 1},
		core.OracleGlobal{},
		core.OraclePhase{},
		&core.Prediction{Bank: bank},
	}
	t := report.NewTable("MYAPP under every ACTOR strategy",
		"strategy", "time (s)", "power (W)", "energy (J)", "ED2", "configs")
	for _, st := range strategies {
		res, err := st.Run(app, env)
		if err != nil {
			log.Fatal(err)
		}
		cfgs := ""
		for _, ph := range app.PhaseNames() {
			if cfgs != "" {
				cfgs += ","
			}
			cfgs += res.PhaseConfigs[ph]
		}
		t.AddRow(res.Strategy,
			fmt.Sprintf("%.2f", res.TimeSec),
			fmt.Sprintf("%.1f", res.AvgPowerW),
			fmt.Sprintf("%.0f", res.EnergyJ),
			fmt.Sprintf("%.0f", res.ED2),
			cfgs)
	}
	t.Render(os.Stdout)
}
