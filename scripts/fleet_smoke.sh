#!/usr/bin/env bash
# fleet_smoke.sh — fleet scheduler determinism smoke (CI).
#
# Runs the seeded 100-job / 16-machine study through actorfleet's digest
# mode with the incremental scorer, the naive O(M) reference (via the
# ACTOR_FLEET_SCORER kill switch) and an explicit -scorer override, and
# asserts all three reproduce the pinned schedule digest with zero QoS
# violations. Any policy, float or ordering drift — or any divergence
# between the fast path and the reference — changes the digest and fails.
set -euo pipefail

cd "$(dirname "$0")/.."

FLEET="12*2x2,4*1x4+2x2:little"
ARGS=(-fleet "$FLEET" -jobs 100 -seed 42 -rate 2 -digest)

# Pinned digest for (fleet spec, stream seed 42, QoS 0.25). Re-pin only
# when the scheduling policy or the machine model changes intentionally.
WANT="digest=570c7ac66d750e18 violations=0"

fail=0
check() {
    local label="$1" got="$2"
    case "$got" in
        "$WANT"*) echo "ok   $label: $got" ;;
        *)        echo "FAIL $label: got '$got', want '$WANT …'"; fail=1 ;;
    esac
}

check "incremental"              "$(go run ./cmd/actorfleet "${ARGS[@]}")"
check "naive (env kill switch)"  "$(ACTOR_FLEET_SCORER=naive go run ./cmd/actorfleet "${ARGS[@]}")"
check "naive (-scorer flag)"     "$(go run ./cmd/actorfleet "${ARGS[@]}" -scorer naive)"

exit "$fail"
