#!/usr/bin/env bash
# End-to-end distributed-evaluation check (make dist-e2e; CI runs it too):
# build the binaries, train a fast bank, start 3 actord workers, then run
# actorctl twice — once in-process (the reference) and once distributed
# with fault injection turned on (drops, 5xxs, truncated bodies, one
# worker's transport killed mid-run) while a second worker process is
# kill -9ed under it — and assert the merged outputs are byte-identical.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
$GO build -o "$workdir/bin/" ./cmd/actor-train ./cmd/actord ./cmd/actorctl

echo "== training a fast MLR bank"
"$workdir/bin/actor-train" -fast -mlr -bank "$workdir/bank.json" >/dev/null

ports=(7741 7742 7743)
for port in "${ports[@]}"; do
  "$workdir/bin/actord" -bank "$workdir/bank.json" -addr "127.0.0.1:$port" 2>"$workdir/actord-$port.log" &
  pids+=($!)
done

echo "== waiting for workers to become ready"
for port in "${ports[@]}"; do
  ok=""
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$port/readyz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
  done
  if [ -z "$ok" ]; then
    echo "FAIL: worker :$port never became ready"
    cat "$workdir/actord-$port.log"
    exit 1
  fi
done

echo "== single-process reference run"
"$workdir/bin/actorctl" -bank "$workdir/bank.json" -local -q -out "$workdir/local.json"

echo "== distributed run under fault injection + worker kill"
workers="http://127.0.0.1:7741,http://127.0.0.1:7742,http://127.0.0.1:7743"
# The schedule injects drops/5xxs/truncations everywhere, kills worker
# :7742's transport after its 3rd data request, and delays ~40% of
# requests so the run lasts long enough to kill a real process under it.
ACTOR_FAULTS="drop=0.1,err500=0.1,truncate=0.1,delay=0.4,delayfor=150ms,seed=7,kill=http://127.0.0.1:7742@3" \
  "$workdir/bin/actorctl" -bank "$workdir/bank.json" -workers "$workers" \
  -hedge 100ms -q -out "$workdir/dist.json" 2>"$workdir/actorctl.log" &
ctl=$!
sleep 1
echo "== kill -9 worker :7743 mid-run"
kill -9 "${pids[2]}" 2>/dev/null || true
if ! wait "$ctl"; then
  echo "FAIL: actorctl exited non-zero"
  cat "$workdir/actorctl.log"
  exit 1
fi
cat "$workdir/actorctl.log"

echo "== comparing outputs"
if ! cmp -s "$workdir/local.json" "$workdir/dist.json"; then
  echo "FAIL: distributed output differs from the single-process run"
  diff "$workdir/local.json" "$workdir/dist.json" | head -40
  exit 1
fi
echo "PASS: distributed output is byte-identical to the single-process run"
