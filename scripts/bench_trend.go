// Command bench_trend prints the performance trajectory across the
// committed benchmark snapshots: for every benchmark present in any
// BENCH_<n>.json (written by scripts/bench.sh), it tabulates ns/op and
// allocs/op per snapshot plus the relative change from the first to the
// latest snapshot that has the benchmark.
//
// Usage: go run scripts/bench_trend.go   (or `make trend`)
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// snapshot is one BENCH_<n>.json: benchmark name → metric name → value.
type snapshot struct {
	num    int
	values map[string]map[string]float64
}

// gomaxprocsSuffix strips the -<N> GOMAXPROCS suffix Go appends to
// benchmark names, so snapshots taken at different core counts still line
// up by benchmark.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func load(path string) (map[string]map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]map[string]float64, len(raw))
	for name, msg := range raw {
		if name == "_meta" {
			continue
		}
		var metrics map[string]float64
		if err := json.Unmarshal(msg, &metrics); err != nil {
			return nil, fmt.Errorf("%s: benchmark %q: %w", path, name, err)
		}
		out[gomaxprocsSuffix.ReplaceAllString(name, "")] = metrics
	}
	return out, nil
}

var snapshotName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

func main() {
	// Glob rather than count up from 1: a pruned snapshot must not hide
	// everything after the gap.
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var snaps []snapshot
	for _, path := range paths {
		m := snapshotName.FindStringSubmatch(path)
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		values, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		snaps = append(snaps, snapshot{num: n, values: values})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].num < snaps[j].num })
	if len(snaps) == 0 {
		fmt.Fprintln(os.Stderr, "no BENCH_<n>.json snapshots found (run scripts/bench.sh)")
		os.Exit(1)
	}

	names := map[string]bool{}
	for _, s := range snaps {
		for name := range s.values {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, metric := range []string{"ns_per_op", "allocs_per_op"} {
		fmt.Printf("%s across snapshots:\n", metric)
		header := fmt.Sprintf("%-44s", "benchmark")
		for _, s := range snaps {
			header += fmt.Sprintf(" %14s", "BENCH_"+strconv.Itoa(s.num))
		}
		fmt.Println(header + "        Δ first→last")
		for _, name := range sorted {
			row := fmt.Sprintf("%-44s", name)
			var first, last float64
			haveFirst := false
			for _, s := range snaps {
				v, ok := s.values[name][metric]
				if !ok {
					row += fmt.Sprintf(" %14s", "-")
					continue
				}
				row += fmt.Sprintf(" %14.0f", v)
				if !haveFirst {
					first, haveFirst = v, true
				}
				last = v
			}
			if haveFirst && first > 0 {
				row += fmt.Sprintf("  %+9.1f%%", (last-first)/first*100)
			}
			fmt.Println(row)
		}
		fmt.Println()
	}
}
