// Command bench_trend prints the performance trajectory across the
// committed benchmark snapshots: for every benchmark present in any
// BENCH_<n>.json (written by scripts/bench.sh), it tabulates ns/op and
// allocs/op per snapshot plus the relative change from the first to the
// latest snapshot that has the benchmark.
//
// With -gate it additionally acts as the CI regression gate: the run fails
// (exit 1) when any benchmark's ns/op in the latest snapshot regressed by
// more than -max-regress percent against the previous snapshot. Benchmarks
// named in the -allow list (comma-separated, matched after stripping the
// -<GOMAXPROCS> suffix) are reported but never fail the gate — the escape
// hatch for intentional trade-offs.
//
// Usage:
//
//	go run scripts/bench_trend.go                  (or `make trend`)
//	go run scripts/bench_trend.go -gate            (or `make trend-gate`)
//	go run scripts/bench_trend.go -gate -max-regress 50 -allow BenchmarkFoo,BenchmarkBar
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// snapshot is one BENCH_<n>.json: benchmark name → metric name → value.
type snapshot struct {
	num    int
	values map[string]map[string]float64
}

// gomaxprocsSuffix strips the -<N> GOMAXPROCS suffix Go appends to
// benchmark names, so snapshots taken at different core counts still line
// up by benchmark.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func load(path string) (map[string]map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]map[string]float64, len(raw))
	for name, msg := range raw {
		if name == "_meta" {
			// The _meta block may carry a loadgen snapshot (written by
			// scripts/bench.sh via actorload): open-loop serving metrics.
			// Surface it as the _loadgen pseudo-benchmark so it rides the
			// same trend/gate machinery as real benchmarks.
			var meta struct {
				Loadgen map[string]float64 `json:"loadgen"`
			}
			if err := json.Unmarshal(msg, &meta); err == nil && len(meta.Loadgen) > 0 {
				out[loadgenName] = meta.Loadgen
			}
			continue
		}
		var metrics map[string]float64
		if err := json.Unmarshal(msg, &metrics); err != nil {
			return nil, fmt.Errorf("%s: benchmark %q: %w", path, name, err)
		}
		out[gomaxprocsSuffix.ReplaceAllString(name, "")] = metrics
	}
	return out, nil
}

// loadgenName is the pseudo-benchmark the _meta.loadgen snapshot appears
// under. Its metrics are gated by direction: req_per_s must not drop and
// p99_us must not rise beyond -max-load-regress percent.
const loadgenName = "_loadgen"

var snapshotName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

func loadSnapshots() []snapshot {
	// Glob rather than count up from 1: a pruned snapshot must not hide
	// everything after the gap.
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var snaps []snapshot
	for _, path := range paths {
		m := snapshotName.FindStringSubmatch(path)
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		values, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		snaps = append(snaps, snapshot{num: n, values: values})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].num < snaps[j].num })
	if len(snaps) == 0 {
		fmt.Fprintln(os.Stderr, "no BENCH_<n>.json snapshots found (run scripts/bench.sh)")
		os.Exit(1)
	}
	return snaps
}

func sortedNames(snaps []snapshot) []string {
	names := map[string]bool{}
	for _, s := range snaps {
		for name := range s.values {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	return sorted
}

func printTrend(snaps []snapshot, names []string) {
	// The _loadgen pseudo-benchmark has its own metric set; print it in a
	// dedicated block after the micro-benchmark tables.
	var loadSnaps []snapshot
	for _, s := range snaps {
		if _, ok := s.values[loadgenName]; ok {
			loadSnaps = append(loadSnaps, s)
		}
	}
	for _, metric := range []string{"ns_per_op", "allocs_per_op"} {
		fmt.Printf("%s across snapshots:\n", metric)
		header := fmt.Sprintf("%-44s", "benchmark")
		for _, s := range snaps {
			header += fmt.Sprintf(" %14s", "BENCH_"+strconv.Itoa(s.num))
		}
		fmt.Println(header + "        Δ first→last")
		for _, name := range names {
			if name == loadgenName {
				continue
			}
			row := fmt.Sprintf("%-44s", name)
			var first, last float64
			haveFirst := false
			for _, s := range snaps {
				v, ok := s.values[name][metric]
				if !ok {
					row += fmt.Sprintf(" %14s", "-")
					continue
				}
				row += fmt.Sprintf(" %14.0f", v)
				if !haveFirst {
					first, haveFirst = v, true
				}
				last = v
			}
			if haveFirst && first > 0 {
				row += fmt.Sprintf("  %+9.1f%%", (last-first)/first*100)
			}
			fmt.Println(row)
		}
		fmt.Println()
	}
	if len(loadSnaps) > 0 {
		fmt.Println("serving load (_meta.loadgen, via actorload) across snapshots:")
		header := fmt.Sprintf("%-44s", "metric")
		for _, s := range loadSnaps {
			header += fmt.Sprintf(" %14s", "BENCH_"+strconv.Itoa(s.num))
		}
		fmt.Println(header + "        Δ first→last")
		for _, metric := range []string{"req_per_s", "p50_us", "p99_us", "p999_us"} {
			row := fmt.Sprintf("%-44s", metric)
			var first, last float64
			haveFirst := false
			for _, s := range loadSnaps {
				v, ok := s.values[loadgenName][metric]
				if !ok {
					row += fmt.Sprintf(" %14s", "-")
					continue
				}
				row += fmt.Sprintf(" %14.0f", v)
				if !haveFirst {
					first, haveFirst = v, true
				}
				last = v
			}
			if haveFirst && first > 0 {
				row += fmt.Sprintf("  %+9.1f%%", (last-first)/first*100)
			}
			fmt.Println(row)
		}
		fmt.Println()
	}
}

// gate compares ns/op between the two most recent snapshots and returns
// false when any non-allowlisted benchmark regressed beyond maxRegressPct.
func gate(snaps []snapshot, names []string, maxRegressPct float64, allowed map[string]bool) bool {
	if len(snaps) < 2 {
		fmt.Println("trend gate: fewer than two snapshots, nothing to compare — pass")
		return true
	}
	prev, last := snaps[len(snaps)-2], snaps[len(snaps)-1]
	fmt.Printf("trend gate: BENCH_%d vs BENCH_%d, ns/op regression threshold %+.0f%%\n",
		last.num, prev.num, maxRegressPct)
	ok := true
	// Benchmarks present on only one side can't be compared, but each kind
	// is reported distinctly (informationally — neither fails the gate): a
	// "new" entry is expected when a PR adds benchmarks; a "removed" entry
	// makes a regression hidden behind a rename visible in the CI log
	// rather than silently passing.
	var added, removed, odd []string
	for _, name := range names {
		if name == loadgenName {
			continue // gated separately, by direction-aware metrics
		}
		was, okPrev := prev.values[name]["ns_per_op"]
		now, okLast := last.values[name]["ns_per_op"]
		switch {
		case okPrev && okLast && was > 0:
		case !okPrev && okLast:
			added = append(added, name)
			continue
		case okPrev && !okLast:
			removed = append(removed, name)
			continue
		default:
			// In neither compared snapshot (only older ones), or a
			// non-positive baseline.
			odd = append(odd, name)
			continue
		}
		change := (now - was) / was * 100
		if change <= maxRegressPct {
			continue
		}
		if allowed[name] {
			fmt.Printf("  ALLOWED %-44s %.0f → %.0f ns/op (%+.1f%%)\n", name, was, now, change)
			continue
		}
		fmt.Printf("  FAIL    %-44s %.0f → %.0f ns/op (%+.1f%%)\n", name, was, now, change)
		ok = false
	}
	if len(added) > 0 {
		fmt.Printf("  new in BENCH_%d (no baseline yet, informational): %s\n",
			last.num, strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		fmt.Printf("  removed in BENCH_%d (check for renames hiding regressions): %s\n",
			last.num, strings.Join(removed, ", "))
	}
	if len(odd) > 0 {
		fmt.Printf("  skipped (absent from both compared snapshots or zero baseline): %s\n",
			strings.Join(odd, ", "))
	}
	if ok {
		fmt.Println("trend gate: pass")
	} else {
		fmt.Println("trend gate: FAIL — regression beyond threshold (allowlist intentional slowdowns with -allow)")
	}
	return ok
}

// gateLoadgen compares the _loadgen pseudo-benchmark between the two most
// recent snapshots that carry one. Direction-aware: req_per_s regresses by
// dropping, the latency percentiles by rising. The tolerance is separate
// from -max-regress (and looser by default) because open-loop load numbers
// ride on runner scheduling noise that ns/op micro-benchmarks average out.
func gateLoadgen(snaps []snapshot, maxRegressPct float64) bool {
	var have []snapshot
	for _, s := range snaps {
		if _, ok := s.values[loadgenName]; ok {
			have = append(have, s)
		}
	}
	if len(have) < 2 {
		fmt.Println("load gate: fewer than two snapshots with loadgen metrics — pass")
		return true
	}
	prev, last := have[len(have)-2], have[len(have)-1]
	fmt.Printf("load gate: BENCH_%d vs BENCH_%d, regression threshold %+.0f%%\n",
		last.num, prev.num, maxRegressPct)
	ok := true
	check := func(metric string, higherIsBetter bool) {
		was, okPrev := prev.values[loadgenName][metric]
		now, okLast := last.values[loadgenName][metric]
		if !okPrev || !okLast || was <= 0 {
			return
		}
		change := (now - was) / was * 100
		regress := change
		if higherIsBetter {
			regress = -change
		}
		if regress <= maxRegressPct {
			return
		}
		fmt.Printf("  FAIL    %-20s %.0f → %.0f (%+.1f%%)\n", metric, was, now, change)
		ok = false
	}
	check("req_per_s", true)
	check("p99_us", false)
	if ok {
		fmt.Println("load gate: pass")
	}
	return ok
}

func main() {
	gateMode := flag.Bool("gate", false, "fail (exit 1) when ns/op regresses beyond -max-regress vs the previous snapshot")
	maxRegress := flag.Float64("max-regress", 30, "maximum tolerated ns/op regression in percent (gate mode)")
	maxLoadRegress := flag.Float64("max-load-regress", 100, "maximum tolerated _loadgen regression in percent: req_per_s dropping or p99_us rising (gate mode)")
	allowList := flag.String("allow", "", "comma-separated benchmark names exempt from the gate")
	flag.Parse()

	snaps := loadSnapshots()
	names := sortedNames(snaps)

	if !*gateMode {
		printTrend(snaps, names)
		return
	}
	allowed := map[string]bool{}
	for _, name := range strings.Split(*allowList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			allowed[name] = true
		}
	}
	pass := gate(snaps, names, *maxRegress, allowed)
	if !gateLoadgen(snaps, *maxLoadRegress) {
		pass = false
	}
	if !pass {
		os.Exit(1)
	}
}
