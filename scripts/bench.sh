#!/usr/bin/env bash
# bench.sh — run the benchmark suite with -benchmem and write a JSON
# snapshot so future PRs have a perf trajectory. Without an explicit
# outfile the snapshot is numbered after the highest existing BENCH_<n>.json
# (never overwriting a committed baseline); `go run scripts/bench_trend.go`
# (or `make trend`) reports deltas across all snapshots.
#
# Usage: scripts/bench.sh [outfile.json] [bench regexp] [benchtime]
set -euo pipefail

cd "$(dirname "$0")/.."
if [ $# -ge 1 ]; then
    OUT="$1"
else
    # Number after the highest existing snapshot (gaps in the sequence
    # must not cause an older number to be reused).
    max=0
    for f in BENCH_*.json; do
        [ -e "$f" ] || continue
        n="${f#BENCH_}"
        n="${n%.json}"
        case "$n" in *[!0-9]*) continue ;; esac
        [ "$n" -gt "$max" ] && max="$n"
    done
    OUT="BENCH_$((max + 1)).json"
fi
PATTERN="${2:-.}"
BENCHTIME="${3:-1s}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# SIMD dispatch metadata (GOAMD64 level, CPU features, bound kernel
# variants) for the snapshot's _meta block, so every snapshot records the
# kernel configuration that produced its numbers.
SIMD_META="$(go run ./scripts/simdinfo)" || SIMD_META="{}"
export SIMD_META

# Serving load snapshot: a short seeded actorload trace against an
# in-process actord (self-serve mode), so every snapshot carries gateable
# open-loop serving metrics (req_per_s, p50/p99/p999 latency) next to the
# micro-benchmarks. bench_trend surfaces these as the _loadgen
# pseudo-benchmark and -gate fails on regressions.
echo "running: actorload -selfserve -duration 2s -rate 2000 -seed 42" >&2
LOADGEN_META="$(go run ./cmd/actorload -selfserve -duration 2s -rate 2000 -seed 42 2>/dev/null)" || LOADGEN_META="{}"
export LOADGEN_META

echo "running: go test -run ^$ -bench '$PATTERN' -benchmem -benchtime $BENCHTIME ." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

# Convert `name  iters  123 ns/op  45 B/op  6 allocs/op  [extra unit]...`
# lines into a JSON object keyed by benchmark name.
awk '
BEGIN { print "{"; first = 1 }
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^cpu:/     { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        gsub(/[^A-Za-z0-9_.%\/-]/, "", unit)
        gsub(/\//, "_per_", unit)
        gsub(/[%.-]/, "_", unit)
        if (metrics != "") metrics = metrics ", "
        metrics = metrics "\"" unit "\": " val
    }
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iterations\": %s, %s}", name, iters, metrics
}
END {
    if (!first) printf ",\n"
    simd = ENVIRON["SIMD_META"]
    if (simd == "") simd = "{}"
    loadgen = ENVIRON["LOADGEN_META"]
    if (loadgen == "") loadgen = "{}"
    printf "  \"_meta\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"bench\": \"env GOMAXPROCS=%s\", \"simd\": %s, \"loadgen\": %s}\n", goos, goarch, cpu, ENVIRON["GOMAXPROCS"], simd, loadgen
    print "}"
}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
