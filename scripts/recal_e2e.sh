#!/usr/bin/env bash
# recal_e2e.sh — CI end-to-end check of online recalibration
# (make recal-e2e): train a fast MLR bank, start a real actord with the
# recalibration loop on a fast tick, and drive seeded drifted traffic at it
# (actorload's phase-flip trace relabels the second half "shifted", which
# the reference window never saw — the novel-phase detector's textbook
# trip; the per-phase error EWMA usually fires even earlier on the trace's
# random rate vectors). Asserts that a retrain attempt eventually promotes
# a new bank generation, that /v1/bank carries the generation + provenance
# chain with a drift trigger, and
# that forced rollbacks restore the original generation's /v1/bank body
# byte-identically.
#
# A retrain attempt may legitimately be *rejected* — on a stationary
# simulated platform a fresh campaign only beats the live bank at margin 0
# about half the time, and each rejection re-arms the detector against
# fresh traffic. The loop below just keeps the drifted traffic coming;
# every round reseeds the attempt chain, so promotion converges quickly.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

port=7753
base="http://127.0.0.1:$port"

gen_of() { # first "generation" field of stdin JSON (top-level in status)
  grep -m1 -o '"generation": *[0-9]*' | grep -o '[0-9]*$' || echo 0
}

echo "== building binaries"
$GO build -o "$workdir/bin/" ./cmd/actor-train ./cmd/actord ./cmd/actorload ./cmd/actorrecalctl

echo "== training a fast MLR bank"
"$workdir/bin/actor-train" -fast -mlr -bank "$workdir/bank.json" >/dev/null

echo "== starting actord -recal on :$port"
"$workdir/bin/actord" -bank "$workdir/bank.json" -addr "127.0.0.1:$port" \
  -recal -recal-interval 250ms 2>"$workdir/actord.log" &
pids+=($!)
ok=""
for _ in $(seq 1 100); do
  if curl -fsS "$base/readyz" >/dev/null 2>&1; then ok=1; break; fi
  sleep 0.1
done
if [ -z "$ok" ]; then
  echo "FAIL: actord never became ready"
  cat "$workdir/actord.log"
  exit 1
fi

curl -fsS "$base/v1/bank" >"$workdir/bank-gen0.json"
if grep -q '"generation"' "$workdir/bank-gen0.json"; then
  echo "FAIL: freshly trained bank already carries a generation"
  exit 1
fi

echo "== driving drifted traffic until a promotion lands"
gen=0
for round in $(seq 1 8); do
  "$workdir/bin/actorload" -addr "$base" -duration 3s -rate 800 -seed $((42 + round)) \
    -conns 4 >/dev/null
  sleep 1 # let the loop tick over the now-full windows
  gen=$("$workdir/bin/actorrecalctl" -addr "$base" status | gen_of)
  echo "   round $round: live generation $gen"
  if [ "$gen" -ge 1 ]; then break; fi
done
if [ "$gen" -lt 1 ]; then
  echo "FAIL: no promotion after 8 rounds of drifted traffic"
  "$workdir/bin/actorrecalctl" -addr "$base" status
  exit 1
fi

echo "== checking /v1/bank provenance"
curl -fsS "$base/v1/bank" >"$workdir/bank-promoted.json"
for field in '"generation"' '"provenance"' '"trigger": "drift:' '"candidate_err"'; do
  if ! grep -q "$field" "$workdir/bank-promoted.json"; then
    echo "FAIL: promoted /v1/bank lacks $field"
    cat "$workdir/bank-promoted.json"
    exit 1
  fi
done

echo "== rolling back to generation 0"
while [ "$gen" -gt 0 ]; do
  "$workdir/bin/actorrecalctl" -addr "$base" rollback >/dev/null
  gen=$("$workdir/bin/actorrecalctl" -addr "$base" status | gen_of)
done
curl -fsS "$base/v1/bank" >"$workdir/bank-restored.json"
if ! cmp -s "$workdir/bank-gen0.json" "$workdir/bank-restored.json"; then
  echo "FAIL: rolled-back /v1/bank is not byte-identical to the original"
  diff "$workdir/bank-gen0.json" "$workdir/bank-restored.json" | head
  exit 1
fi

echo "PASS: drift -> promotion with provenance, rollback byte-identical"
