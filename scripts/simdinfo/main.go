// Command simdinfo prints this machine's SIMD dispatch state — GOAMD64
// build level, detected CPU features and which kernel variants the process
// bound — as a single-line JSON object. scripts/bench.sh embeds it in the
// _meta block of every BENCH_<n>.json so a snapshot records not just the
// numbers but the kernel configuration that produced them.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/simd"
)

func main() {
	f := simd.Detect()
	out := map[string]any{
		"goamd64":      simd.GoAMD64(),
		"features":     f.String(),
		"simd_enabled": simd.Enabled(),
		"ann_kernel":   ann.KernelVariant(),
		"lane_kernel":  machine.LaneKernelVariant(),
	}
	if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
