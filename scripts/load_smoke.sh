#!/usr/bin/env bash
# load_smoke.sh — CI smoke test for the serving fast path under load
# (make load-smoke): build the binaries, train a fast bank, start a real
# actord process, and fire a short seeded actorload trace at it twice —
# once with the prediction memo disabled (ACTOR_PREDICT_MEMO=off) and once
# with it on. Each run asserts zero failed requests, non-trivial
# throughput, a (very generous, CI-runner-proof) p99 bound, and — via
# actorload -check — that replaying every distinct request returns
# byte-identical responses. The memo-off leg pins the wire codec's output
# on the uncached path; the memo-on leg pins that caching never changes a
# served byte.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
$GO build -o "$workdir/bin/" ./cmd/actor-train ./cmd/actord ./cmd/actorload

echo "== training a fast MLR bank"
"$workdir/bin/actor-train" -fast -mlr -bank "$workdir/bank.json" >/dev/null

run_leg() {
  local label="$1" port="$2" memo="$3"
  echo "== starting actord on :$port (ACTOR_PREDICT_MEMO=$memo)"
  ACTOR_PREDICT_MEMO="$memo" "$workdir/bin/actord" \
    -bank "$workdir/bank.json" -addr "127.0.0.1:$port" 2>"$workdir/actord-$port.log" &
  pids+=($!)
  local ok=""
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$port/readyz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
  done
  if [ -z "$ok" ]; then
    echo "FAIL: actord :$port never became ready"
    cat "$workdir/actord-$port.log"
    exit 1
  fi
  echo "== load smoke ($label)"
  # 2s seeded trace; the gates are deliberately loose — this asserts the
  # path works under concurrency, not a performance number (bench_trend
  # owns the numbers).
  "$workdir/bin/actorload" -addr "http://127.0.0.1:$port" \
    -duration 2s -rate 1000 -seed 42 -conns 8 -check \
    -min-rps 50 -p99-max 2s -json "$workdir/load-$label.json"
}

run_leg memo-off 7751 off
run_leg memo-on 7752 ""

echo "PASS: load smoke green with memo off and on (byte-identical replays)"
