package actor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/pkg/actor"
)

// This file pins the serving fast path (internal/wire codec + prediction
// memo) to the historical stdlib handlers, byte for byte. The reference
// handlers below are verbatim re-implementations of the pre-wire-codec
// server code — json.Decoder with DisallowUnknownFields over a
// MaxBytesReader, json.Encoder with SetIndent("", " ") — and the parity
// fuzzers assert the live server answers every request with the same
// status and body the reference does.

func refWriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func refWriteError(w http.ResponseWriter, code int, format string, args ...any) {
	refWriteJSON(w, code, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

func refBadPayloadStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

const refMaxBody = 1 << 20

func refPredictHandler(bank *actor.Bank) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			refWriteError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		var req actor.PredictRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, refMaxBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			refWriteError(w, refBadPayloadStatus(err), "bad payload: %v", err)
			return
		}
		if len(req.Rates) == 0 {
			refWriteError(w, http.StatusBadRequest, `bad payload: "rates" is required and must be non-empty`)
			return
		}
		ranked, err := bank.Predict(r.Context(), req.Rates)
		if err != nil {
			refWriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		refWriteJSON(w, http.StatusOK, actor.PredictResponse{
			Phase:       req.Phase,
			Best:        ranked[0].Config,
			Predictions: ranked,
		})
	}
}

func refSweepHandler(eng *actor.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			refWriteError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		var req actor.SweepRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, refMaxBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			refWriteError(w, refBadPayloadStatus(err), "bad payload: %v", err)
			return
		}
		if req.Bench == "" {
			refWriteError(w, http.StatusBadRequest, `bad payload: "bench" is required`)
			return
		}
		// The live server routes this through the dispatcher; with no
		// cancellation in play the observable result is one Sweep call.
		sweeps, err := eng.Sweep(context.Background(), req)
		if err != nil {
			refWriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		refWriteJSON(w, http.StatusOK, actor.SweepResponse{Sweeps: sweeps})
	}
}

func postBytes(h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// ratesAnomalies inspects a decoded predict body for the two spots where
// the historical handler's output is legitimately nondeterministic (map
// iteration order), so the parity fuzzer knows when a byte comparison is
// meaningful.
func ratesAnomalies(rates actor.Rates) (unknown int, dup bool) {
	seen := make(map[pmu.Event]int)
	for name := range rates {
		if name == "IPC" {
			seen[pmu.Instructions]++
			continue
		}
		e, ok := pmu.EventByName(name)
		if !ok {
			unknown++
			continue
		}
		seen[e]++
	}
	for _, n := range seen {
		if n > 1 {
			dup = true
		}
	}
	return unknown, dup
}

// FuzzPredictServedParity feeds arbitrary bodies to the live /v1/predict
// fast path and to the historical stdlib handler and demands identical
// statuses — and identical bytes whenever the historical handler itself was
// deterministic. This is the satellite contract: the wire decoder rejects
// exactly what encoding/json plus validation rejected, with the same status
// codes and error text.
func FuzzPredictServedParity(f *testing.F) {
	_, bank := servingFixture(f)
	srv := newTestServer(f)
	ref := refPredictHandler(bank)
	f.Add([]byte(`{"phase":"x_solve","rates":{"IPC":1.1,"INST_RETIRED":0.5}}`))
	f.Add([]byte(`{"PHASE":"p","RATES":{"IPC":2}}`))
	f.Add([]byte(`{"rates":{"IPC":1},"rates":{"IPC":3}}`))
	f.Add([]byte(`{"rates":{"IPC":null}}`))
	f.Add([]byte(`{"rates":null,"phase":null}`))
	f.Add([]byte(`{"rates":{"IPC":1e309}}`))
	f.Add([]byte(`{"rates":{"NOT_AN_EVENT":1}}`))
	f.Add([]byte(`{"rates":{"IPC":1,"IPC":2},"phase":"\u2028"}`))
	f.Add([]byte(`{"rates": nope}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{} trailing`))
	f.Add([]byte(`{"rate":{"IPC":1}}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<16 {
			return // oversize is pinned by TestServerPredictOversize
		}
		got := postBytes(srv, "/v1/predict", body)
		want := postBytes(ref, "/v1/predict", body)
		if got.Code != want.Code {
			t.Fatalf("status %d, historical handler gave %d for %q\nserved: %s\nref:    %s",
				got.Code, want.Code, body, got.Body, want.Body)
		}
		var req actor.PredictRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if dec.Decode(&req) == nil && len(req.Rates) > 0 {
			unknown, dup := ratesAnomalies(req.Rates)
			if unknown > 1 || (unknown == 1 && dup) {
				// Which unknown event the error names depends on map order.
				if !strings.Contains(got.Body.String(), "unknown event") {
					t.Fatalf("expected an unknown-event error, got %s", got.Body)
				}
				return
			}
			if unknown == 0 && dup {
				// Two mnemonics resolved to one event: the surviving value is
				// map-order-dependent even historically, so only the status is
				// comparable.
				return
			}
		}
		if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("served body differs from historical handler for %q:\nserved: %q\nref:    %q",
				body, got.Body, want.Body)
		}
	})
}

// FuzzSweepServedParity is the same contract for /v1/sweep.
func FuzzSweepServedParity(f *testing.F) {
	eng, _ := servingFixture(f)
	srv := newTestServer(f)
	ref := refSweepHandler(eng)
	f.Add([]byte(`{"bench":"SP"}`))
	f.Add([]byte(`{"bench":"SP","phases":["x_solve"]}`))
	f.Add([]byte(`{"BENCH":"CG","phases":[null]}`))
	f.Add([]byte(`{"bench":"NOPE"}`))
	f.Add([]byte(`{"bench":"SP","phases":["nope"]}`))
	f.Add([]byte(`{"phases":["a"],"phases":["b","c"]}`))
	f.Add([]byte(`{"bench":null}`))
	f.Add([]byte(`{"bench":"SP","extra":1}`))
	f.Add([]byte(`[1,2]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<16 {
			return
		}
		got := postBytes(srv, "/v1/sweep", body)
		want := postBytes(ref, "/v1/sweep", body)
		if got.Code != want.Code || !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("served sweep differs from historical handler for %q:\nserved: %d %q\nref:    %d %q",
				body, got.Code, got.Body, want.Code, want.Body)
		}
	})
}

// FuzzEvalDecodeParity pins the /v1/eval decoder's reject behaviour: any
// body encoding/json rejects must come back from the live server with the
// stdlib's exact error text and status. (Accepted bodies proceed to shard
// validation, which is shared code on both paths and covered by the dist
// and eval tests.)
func FuzzEvalDecodeParity(f *testing.F) {
	srv := newTestServer(f)
	f.Add([]byte(`{"seed":"not a number"}`))
	f.Add([]byte(`{"units":[{"bench":1}]}`))
	f.Add([]byte(`{"shard":{"index":1.5}}`))
	f.Add([]byte(`{"nope":1}`))
	f.Add([]byte(`{"units":[{"bench":"SP","phases":["x"]}],"seed":0}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<16 {
			return
		}
		var req actor.EvalRequest
		dec := json.NewDecoder(http.MaxBytesReader(httptest.NewRecorder(), io.NopCloser(bytes.NewReader(body)), refMaxBody))
		dec.DisallowUnknownFields()
		err := dec.Decode(&req)
		if err == nil {
			return
		}
		want := httptest.NewRecorder()
		refWriteError(want, refBadPayloadStatus(err), "bad payload: %v", err)
		got := postBytes(srv, "/v1/eval", body)
		if got.Code != want.Code || !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("served eval reject differs from stdlib for %q:\nserved: %d %q\nref:    %d %q",
				body, got.Code, got.Body, want.Code, want.Body)
		}
	})
}

// TestServerPredictMemoIdentity serves the same request set through a
// memo-enabled server (twice: miss then hit) and a memo-disabled server,
// and requires every response byte-identical — the acceptance criterion
// that the memo can never change served bytes.
func TestServerPredictMemoIdentity(t *testing.T) {
	eng, bank := servingFixture(t)
	srvOn, err := actor.NewServer(eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srvOn.Close()
	t.Setenv("ACTOR_PREDICT_MEMO", "off")
	srvOff, err := actor.NewServer(eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srvOff.Close()

	var bodies [][]byte
	for _, ipc := range []float64{0.25, 1.5, 1.5, 3.75} {
		b, _ := json.Marshal(actor.PredictRequest{Phase: "x_solve", Rates: testRates(bank, ipc)})
		bodies = append(bodies, b)
	}
	bodies = append(bodies, []byte(`{"rates":{"IPC":1.25}}`))

	for _, body := range bodies {
		first := postBytes(srvOn, "/v1/predict", body)
		second := postBytes(srvOn, "/v1/predict", body) // memo hit
		off := postBytes(srvOff, "/v1/predict", body)
		if first.Code != http.StatusOK {
			t.Fatalf("predict = %d: %s", first.Code, first.Body)
		}
		if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
			t.Errorf("memo hit served different bytes:\nmiss: %q\nhit:  %q", first.Body, second.Body)
		}
		if !bytes.Equal(first.Body.Bytes(), off.Body.Bytes()) {
			t.Errorf("memo-off server served different bytes:\non:  %q\noff: %q", first.Body, off.Body)
		}
	}
}

// TestServerBankContentLength checks the precomputed /v1/bank response: an
// explicit, correct Content-Length and a body byte-identical to the
// historical json.Encoder output.
func TestServerBankContentLength(t *testing.T) {
	srv := newTestServer(t)
	eng, bank := servingFixture(t)
	rec := do(t, srv, http.MethodGet, "/v1/bank", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("bank = %d: %s", rec.Code, rec.Body)
	}
	if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(rec.Body.Len()) {
		t.Errorf("Content-Length %q, body is %d bytes", cl, rec.Body.Len())
	}
	want := httptest.NewRecorder()
	refWriteJSON(want, http.StatusOK, actor.BankInfo{
		Meta:     bank.Meta(),
		Benches:  eng.BenchNames(),
		Topology: eng.TopologyDesc(),
	})
	if !bytes.Equal(rec.Body.Bytes(), want.Body.Bytes()) {
		t.Errorf("bank body differs from historical encoding:\nserved: %q\nref:    %q", rec.Body, want.Body)
	}
}

// TestServerPredictOversize pins the 1 MiB body cap: a request whose first
// JSON value needs more than the cap gets the historical 413, with the
// MaxBytesReader's exact error text.
func TestServerPredictOversize(t *testing.T) {
	_, bank := servingFixture(t)
	srv := newTestServer(t)
	ref := refPredictHandler(bank)
	huge := `{"rates":{"IPC":1},"phase":"` + strings.Repeat("a", refMaxBody) + `"}`
	got := postBytes(srv, "/v1/predict", []byte(huge))
	want := postBytes(ref, "/v1/predict", []byte(huge))
	if got.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize predict = %d, want 413 (%s)", got.Code, got.Body)
	}
	if got.Code != want.Code || !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Errorf("oversize response differs from historical handler:\nserved: %d %q\nref:    %d %q",
			got.Code, got.Body, want.Code, want.Body)
	}
	// A value that completes exactly within the cap is accepted even with
	// trailing bytes beyond it, like a buffered json.Decoder read.
	pad := refMaxBody - len(`{"rates":{"IPC":1}}`)
	okBody := `{"rates":{"IPC":1}}` + strings.Repeat(" ", pad) + "trailing"
	if rec := postBytes(srv, "/v1/predict", []byte(okBody)); rec.Code != http.StatusOK {
		t.Errorf("cap-sized predict = %d, want 200 (%s)", rec.Code, rec.Body)
	}
}
