package actor_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/greenhpc/actor/pkg/actor"
)

// The serving tests share one engine + MLR bank (collection dominates the
// cost; the model family is irrelevant to the HTTP layer).
var (
	srvOnce sync.Once
	srvEng  *actor.Engine
	srvBank *actor.Bank
	srvErr  error
)

func servingFixture(t testing.TB) (*actor.Engine, *actor.Bank) {
	t.Helper()
	srvOnce.Do(func() {
		srvEng, srvErr = actor.New(actor.WithFast(), actor.WithRepetitions(1), actor.WithMLR())
		if srvErr != nil {
			return
		}
		srvBank, srvErr = srvEng.Train(context.Background())
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvEng, srvBank
}

func newTestServer(t testing.TB) *actor.Server {
	t.Helper()
	eng, _ := servingFixture(t)
	srv, err := actor.NewServer(eng)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func do(t *testing.T, srv *actor.Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestServerHealthAndBank(t *testing.T) {
	srv := newTestServer(t)
	if rec := do(t, srv, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, srv, http.MethodGet, "/v1/bank", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("bank = %d: %s", rec.Code, rec.Body)
	}
	var info actor.BankInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Meta.Configs) == 0 || info.Meta.SampleConfig == "" || len(info.Benches) == 0 {
		t.Errorf("bank info incomplete: %+v", info)
	}
	if rec := do(t, srv, http.MethodPost, "/healthz", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", rec.Code)
	}
}

func TestServerPredict(t *testing.T) {
	srv := newTestServer(t)
	_, bank := servingFixture(t)
	rates := testRates(bank, 1.1)
	body, _ := json.Marshal(actor.PredictRequest{Phase: "x_solve", Rates: rates})
	rec := do(t, srv, http.MethodPost, "/v1/predict", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", rec.Code, rec.Body)
	}
	var resp actor.PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Phase != "x_solve" || resp.Best == "" {
		t.Errorf("incomplete response: %+v", resp)
	}
	// Every configuration of the space must appear exactly once: the
	// targets as predictions, the sampling configuration as observed.
	if want := len(bank.Meta().Configs); len(resp.Predictions) != want {
		t.Errorf("%d predictions, want %d", len(resp.Predictions), want)
	}
	if resp.Predictions[0].Config != resp.Best {
		t.Errorf("best %q is not the top-ranked entry %+v", resp.Best, resp.Predictions[0])
	}
}

// TestServedPredictionsMatchInProcess is the serving acceptance check: a
// bank saved, loaded and served by the HTTP layer must return predictions
// bit-identical to calling Predict in-process on the same inputs.
func TestServedPredictionsMatchInProcess(t *testing.T) {
	_, bank := servingFixture(t)
	data, err := bank.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := actor.DecodeBank(data)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := actor.ForBank(loaded)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := actor.NewServer(eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, ipc := range []float64{0.3, 1.1, 3.3} {
		rates := testRates(bank, ipc)
		want, err := bank.Predict(context.Background(), rates)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(actor.PredictRequest{Rates: rates})
		rec := do(t, srv, http.MethodPost, "/v1/predict", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("predict = %d: %s", rec.Code, rec.Body)
		}
		var resp actor.PredictResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Predictions, want) {
			t.Errorf("served predictions differ from in-process at IPC %g:\nserved:     %+v\nin-process: %+v",
				ipc, resp.Predictions, want)
		}
	}
}

func TestServerPredictBadPayloads(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		name, body, want string
	}{
		{"malformed JSON", `{"rates": nope}`, "bad payload"},
		{"missing rates", `{"phase":"x"}`, "rates"},
		{"unknown field", `{"rate":{"IPC":1}}`, "bad payload"},
		{"unknown event", `{"rates":{"IPC":1,"NOT_AN_EVENT":0.5}}`, "unknown event"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, srv, http.MethodPost, "/v1/predict", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400 (%s)", rec.Code, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), tc.want) {
				t.Errorf("error %s does not mention %q", rec.Body, tc.want)
			}
		})
	}
	if rec := do(t, srv, http.MethodGet, "/v1/predict", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict = %d, want 405", rec.Code)
	}
}

func TestServerSweep(t *testing.T) {
	srv := newTestServer(t)
	eng, _ := servingFixture(t)
	rec := do(t, srv, http.MethodPost, "/v1/sweep", `{"bench":"SP"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep = %d: %s", rec.Code, rec.Body)
	}
	var resp actor.SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want, err := eng.Sweep(context.Background(), actor.SweepRequest{Bench: "SP"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Sweeps, want) {
		t.Errorf("served sweep differs from in-process:\nserved:     %+v\nin-process: %+v", resp.Sweeps, want)
	}
	// Restricting to one phase returns exactly that phase.
	phase := want[0].Phase
	rec = do(t, srv, http.MethodPost, "/v1/sweep", `{"bench":"SP","phases":["`+phase+`"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("phase sweep = %d: %s", rec.Code, rec.Body)
	}
	var one actor.SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Sweeps) != 1 || one.Sweeps[0].Phase != phase {
		t.Errorf("phase-restricted sweep returned %+v", one.Sweeps)
	}
}

func TestServerSweepBadPayloads(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		name, body, want string
		code             int
	}{
		{"malformed JSON", `{`, "bad payload", http.StatusBadRequest},
		{"missing bench", `{}`, "bench", http.StatusBadRequest},
		{"unknown bench", `{"bench":"NOPE"}`, "unknown benchmark", http.StatusBadRequest},
		{"unknown phase", `{"bench":"SP","phases":["nope"]}`, "no phase", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, srv, http.MethodPost, "/v1/sweep", tc.body)
			if rec.Code != tc.code {
				t.Fatalf("code = %d, want %d (%s)", rec.Code, tc.code, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), tc.want) {
				t.Errorf("error %s does not mention %q", rec.Body, tc.want)
			}
		})
	}
}

// TestServerConcurrentPredictRace hammers /v1/predict and /v1/sweep from 8
// goroutines. Predictions share the bank's scratch pools; sweeps are
// micro-batched over the engine's shared sharded memo — run under -race
// this is the serving-path data-race check.
func TestServerConcurrentPredictRace(t *testing.T) {
	srv := newTestServer(t)
	eng, bank := servingFixture(t)
	wantSweep, err := eng.Sweep(context.Background(), actor.SweepRequest{Bench: "CG"})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 24
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rates := testRates(bank, 0.5+0.1*float64(g))
				body, _ := json.Marshal(actor.PredictRequest{Rates: rates})
				rec := do(t, srv, http.MethodPost, "/v1/predict", string(body))
				if rec.Code != http.StatusOK {
					errc <- errFromBody("predict", rec)
					return
				}
				if i%4 == 0 {
					rec = do(t, srv, http.MethodPost, "/v1/sweep", `{"bench":"CG"}`)
					if rec.Code != http.StatusOK {
						errc <- errFromBody("sweep", rec)
						return
					}
					var resp actor.SweepResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						errc <- err
						return
					}
					if !reflect.DeepEqual(resp.Sweeps, wantSweep) {
						errc <- errSweepMismatch
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

var errSweepMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent sweep response diverged from sequential" }

type httpError struct {
	op   string
	code int
	body string
}

func (e *httpError) Error() string {
	return e.op + ": status " + http.StatusText(e.code) + ": " + e.body
}

func errFromBody(op string, rec *httptest.ResponseRecorder) error {
	return &httpError{op: op, code: rec.Code, body: rec.Body.String()}
}
