package actor

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// TestRankPredictionsTieBreak pins the ranking's determinism: equal-IPC
// configurations order by name, so the served ranking is a pure function of
// the prediction set — identical across input permutations, runs and
// GOMAXPROCS settings. The serving memo depends on this: a cached response
// must be the response the miss path would produce every time.
func TestRankPredictionsTieBreak(t *testing.T) {
	base := []Prediction{
		{Config: "4x2", IPC: 2.5},
		{Config: "2x4", IPC: 2.5},
		{Config: "1x8", IPC: 2.5},
		{Config: "8x1", IPC: 2.5, Observed: true},
		{Config: "2x2", IPC: 1.5},
		{Config: "1x1", IPC: 1.5},
		{Config: "1x2", IPC: 3.5},
	}
	want := []Prediction{
		{Config: "1x2", IPC: 3.5},
		{Config: "1x8", IPC: 2.5},
		{Config: "2x4", IPC: 2.5},
		{Config: "4x2", IPC: 2.5},
		{Config: "8x1", IPC: 2.5, Observed: true},
		{Config: "1x1", IPC: 1.5},
		{Config: "2x2", IPC: 1.5},
	}
	rng := rand.New(rand.NewSource(1))
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for trial := 0; trial < 64; trial++ {
		runtime.GOMAXPROCS(1 + trial%4)
		got := append([]Prediction(nil), base...)
		rng.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })
		rankPredictions(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ranking depends on input order:\ngot:  %+v\nwant: %+v", trial, got, want)
		}
	}
}
