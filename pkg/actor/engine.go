package actor

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/exp"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/topology"
)

// Engine is the facade over one simulated platform: the machine pair
// (noisy + ground truth) with its shared sharded phase memo, the power
// model, the configuration space and the benchmark suite. Engines are safe
// for concurrent use; the expensive state (the memo) is shared and
// lock-free on the hot path.
type Engine struct {
	cfg   config
	suite *exp.Suite

	mu   sync.Mutex
	bank *Bank // attached by Train / LoadBank / AttachBank
}

// New builds an Engine from functional options. Without options it models
// the paper's quad-core Xeon under the paper-fidelity training options.
func New(opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	eopts := exp.DefaultOptions()
	if cfg.fast {
		eopts = exp.FastOptions()
	}
	eopts.Seed = cfg.seed
	if cfg.folds > 0 {
		eopts.Folds = cfg.folds
	}
	if cfg.reps > 0 {
		eopts.Repetitions = cfg.reps
	}
	if cfg.maxEpochs > 0 {
		eopts.ANN.MaxEpochs = cfg.maxEpochs
	}
	if cfg.topoDesc != "" {
		topo, err := topology.ParseDesc(cfg.topoDesc)
		if err != nil {
			return nil, err
		}
		eopts.Topology = topo
	}
	suite, err := exp.NewSuite(eopts)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, suite: suite}, nil
}

// ForBank builds an Engine on the bank's own platform (its topology
// descriptor and seed) and attaches the bank, so predictions and sweeps are
// served against the machine the bank was trained for. Extra options are
// applied on top.
func ForBank(b *Bank, opts ...Option) (*Engine, error) {
	base := []Option{WithSeed(b.meta.Seed)}
	if b.meta.Topology != "" {
		base = append(base, WithTopology(b.meta.Topology))
	}
	eng, err := New(append(base, opts...)...)
	if err != nil {
		return nil, err
	}
	if err := eng.AttachBank(b); err != nil {
		return nil, err
	}
	return eng, nil
}

// TopologyDesc returns the engine's topology descriptor ("" means the
// paper's quad-core Xeon).
func (e *Engine) TopologyDesc() string { return e.cfg.topoDesc }

// ConfigNames returns the engine's configuration space labels in canonical
// order (the last entry is the maximal-concurrency sampling configuration).
func (e *Engine) ConfigNames() []string { return e.suite.ConfigNames() }

// BenchNames returns the benchmark suite's workload names.
func (e *Engine) BenchNames() []string {
	out := make([]string, len(e.suite.Benches))
	for i, b := range e.suite.Benches {
		out[i] = b.Name
	}
	return out
}

// Bank returns the attached predictor bank, or nil when none is attached.
func (e *Engine) Bank() *Bank {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bank
}

// AttachBank makes b the engine's serving bank after checking it matches
// the engine's platform (same topology descriptor and configuration space).
func (e *Engine) AttachBank(b *Bank) error {
	if b == nil {
		return fmt.Errorf("actor: cannot attach a nil bank")
	}
	if b.meta.Topology != e.cfg.topoDesc {
		return fmt.Errorf("actor: bank was trained for topology %q, engine models %q",
			describeDesc(b.meta.Topology), describeDesc(e.cfg.topoDesc))
	}
	have := e.suite.ConfigNames()
	if len(b.meta.Configs) != len(have) {
		return fmt.Errorf("actor: bank has %d configurations, engine space has %d",
			len(b.meta.Configs), len(have))
	}
	for i, name := range b.meta.Configs {
		if have[i] != name {
			return fmt.Errorf("actor: bank configuration %d is %q, engine space has %q", i, name, have[i])
		}
	}
	e.mu.Lock()
	e.bank = b
	e.mu.Unlock()
	return nil
}

func describeDesc(desc string) string {
	if desc == "" {
		return "the paper's quad-core Xeon"
	}
	return desc
}

// Train runs the offline pipeline end to end: collect noisy counter samples
// for the whole benchmark suite at the sampling configuration, then train
// one predictor per feature-set size over every target configuration. The
// returned bank is also attached to the engine, ready for Predict and for
// serialization with Bank.Save.
func (e *Engine) Train(ctx context.Context) (*Bank, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	collector := dataset.NewCollector(e.suite.Noisy, e.suite.Truth)
	collector.Configs = e.suite.Configs
	collector.SampleConfig = e.suite.SampleConfig()
	collector.Repetitions = e.suite.Opts.Repetitions
	suiteSamples, err := collector.CollectSuite(e.suite.Benches)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var all []dataset.PhaseSample
	for _, b := range e.suite.Benches {
		all = append(all, suiteSamples[b.Name]...)
	}
	targets := e.suite.Targets()
	ecs := e.cfg.eventCounts
	if len(ecs) == 0 {
		ecs = []int{12, 4, 2}
	}
	var bank *core.Bank
	switch e.cfg.kind {
	case KindANN:
		cfg := e.suite.Opts.ANN
		cfg.Seed = parallel.SeedFor(e.cfg.seed, "suite-bank")
		bank, err = core.TrainANNBank(all, ecs, targets, e.suite.Opts.Folds, cfg)
	case KindMLR:
		bank, err = core.TrainMLRBank(all, ecs, targets, e.cfg.ridge)
	default:
		return nil, fmt.Errorf("actor: unknown model kind %q", e.cfg.kind)
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wrapped := e.wrapBank(bank)
	e.mu.Lock()
	e.bank = wrapped
	e.mu.Unlock()
	return wrapped, nil
}

// TrainLeaveOneOut trains one bank per benchmark under the paper's
// leave-one-out protocol (each bank never sees its own benchmark's data) —
// the evaluation-grade counterpart of Train, keyed by held-out benchmark.
// The protocol is ANN-only (the paper's Section IV-A methodology); engines
// built with WithMLR get a descriptive error instead of silently training
// the wrong model family.
func (e *Engine) TrainLeaveOneOut(ctx context.Context) (map[string]*Bank, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.cfg.kind != KindANN {
		return nil, fmt.Errorf("actor: leave-one-out training is ANN-only (engine was built with kind %q)", e.cfg.kind)
	}
	loo, err := e.suite.TrainLeaveOneOut()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]*Bank, len(loo.Banks))
	for name, bank := range loo.Banks {
		out[name] = e.wrapBank(bank)
	}
	return out, nil
}

// wrapBank attaches the engine's platform metadata to a trained core bank.
func (e *Engine) wrapBank(bank *core.Bank) *Bank {
	return newBank(bank, Meta{
		Version:      BankVersion,
		Kind:         e.cfg.kind,
		Topology:     e.cfg.topoDesc,
		TopologyName: e.suite.Truth.Topo.Name,
		Cores:        e.suite.Truth.Topo.NumCores,
		Seed:         e.cfg.seed,
		Folds:        e.suite.Opts.Folds,
		Configs:      e.suite.ConfigNames(),
		SampleConfig: e.suite.SampleConfig().Name,
	})
}

// Predict returns the attached bank's ranked configuration predictions for
// the observed rates. See Bank.Predict.
func (e *Engine) Predict(ctx context.Context, rates Rates) ([]Prediction, error) {
	b := e.Bank()
	if b == nil {
		return nil, fmt.Errorf("actor: no bank attached (Train, LoadBank or AttachBank first)")
	}
	return b.Predict(ctx, rates)
}

// BestConfig returns the single best configuration for the observed rates.
// See Bank.BestConfig.
func (e *Engine) BestConfig(ctx context.Context, rates Rates) (Prediction, error) {
	b := e.Bank()
	if b == nil {
		return Prediction{}, fmt.Errorf("actor: no bank attached (Train, LoadBank or AttachBank first)")
	}
	return b.BestConfig(ctx, rates)
}

// SweepRequest names the workload a Sweep evaluates: one benchmark, and
// optionally a subset of its phases (all phases when empty).
type SweepRequest struct {
	// Bench is the benchmark name (see BenchNames).
	Bench string `json:"bench"`
	// Phases restricts the sweep to the named phases; empty means every
	// phase of the benchmark.
	Phases []string `json:"phases,omitempty"`
}

// SweepRow is one placement's noiseless response for a phase.
type SweepRow struct {
	// Config is the placement name within the engine's space.
	Config string `json:"config"`
	// TimeSec is the modelled execution time of one phase execution.
	TimeSec float64 `json:"time_sec"`
	// AggIPC is the modelled aggregate instructions per cycle.
	AggIPC float64 `json:"ipc"`
}

// PhaseSweep is one phase evaluated across the whole configuration space.
type PhaseSweep struct {
	Bench string     `json:"bench"`
	Phase string     `json:"phase"`
	Rows  []SweepRow `json:"rows"`
}

// Sweep evaluates the requested phases across every placement of the
// engine's configuration space in one batched RunPhaseSweep call per phase
// on the ground-truth machine. Results are deterministic and served from
// the shared sharded memo when warm, so repeated sweeps of the same phase
// are allocation-free.
func (e *Engine) Sweep(ctx context.Context, req SweepRequest) ([]PhaseSweep, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := e.suite.Bench(req.Bench)
	if err != nil {
		return nil, err
	}
	phaseIdx := make([]int, 0, len(b.Phases))
	if len(req.Phases) == 0 {
		for pi := range b.Phases {
			phaseIdx = append(phaseIdx, pi)
		}
	} else {
		for _, name := range req.Phases {
			found := -1
			for pi := range b.Phases {
				if b.Phases[pi].Name == name {
					found = pi
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("actor: benchmark %s has no phase %q", b.Name, name)
			}
			phaseIdx = append(phaseIdx, found)
		}
	}
	cfgs := e.suite.Configs
	out := make([]PhaseSweep, 0, len(phaseIdx))
	results := make([]machine.Result, len(cfgs))
	for _, pi := range phaseIdx {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.suite.Truth.RunPhaseSweep(&b.Phases[pi], b.Idiosyncrasy, cfgs, results)
		rows := make([]SweepRow, len(cfgs))
		for ci := range cfgs {
			rows[ci] = SweepRow{
				Config:  cfgs[ci].Name,
				TimeSec: results[ci].TimeSec,
				AggIPC:  results[ci].AggIPC,
			}
		}
		out = append(out, PhaseSweep{Bench: b.Name, Phase: b.Phases[pi].Name, Rows: rows})
	}
	return out, nil
}

// RunStudy regenerates one study of the paper's evaluation (or "all" for
// the complete set), rendering results to w. Valid names are scalability,
// phases, power, accuracy, ranks, throttle, extensions, hetero, generalize,
// robustness and all; bench selects the benchmark for the "phases" study
// (ignored elsewhere, SP when empty).
func (e *Engine) RunStudy(ctx context.Context, w io.Writer, study, bench string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if bench == "" {
		bench = "SP"
	}
	s := e.suite
	train := func() (*exp.LOOModels, error) {
		// Progress to stderr: paper-fidelity training takes minutes and
		// the study output proper goes to w.
		fmt.Fprintln(os.Stderr, "training leave-one-out ANN ensembles...")
		return s.TrainLeaveOneOut()
	}
	run1 := func() error {
		r, err := s.Fig1ExecutionTimes()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}
	run2 := func() error {
		r, err := s.Fig2PhaseIPC(bench)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}
	run3 := func() error {
		r, err := s.Fig3PowerEnergy()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}
	run67 := func(loo *exp.LOOModels, show6, show7 bool) error {
		f6, f7, err := s.EvalPrediction(loo)
		if err != nil {
			return err
		}
		if show6 {
			f6.Render(w)
		}
		if show7 {
			f7.Render(w)
		}
		return nil
	}
	run8 := func(loo *exp.LOOModels) error {
		r, err := s.Fig8Throttling(loo)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}
	runExtensions := func() error {
		dv, err := s.DVFSStudy()
		if err != nil {
			return err
		}
		dv.Render(w)
		fs, err := s.FutureScaling()
		if err != nil {
			return err
		}
		fs.Render(w)
		cs, err := s.CoScheduling()
		if err != nil {
			return err
		}
		cs.Render(w)
		return nil
	}

	switch study {
	case "scalability":
		return run1()
	case "phases":
		return run2()
	case "power":
		return run3()
	case "accuracy":
		loo, err := train()
		if err != nil {
			return err
		}
		return run67(loo, true, false)
	case "ranks":
		loo, err := train()
		if err != nil {
			return err
		}
		return run67(loo, false, true)
	case "throttle":
		loo, err := train()
		if err != nil {
			return err
		}
		return run8(loo)
	case "extensions":
		return runExtensions()
	case "hetero":
		h, err := s.HeteroScaling(nil)
		if err != nil {
			return err
		}
		h.Render(w)
		return nil
	case "generalize":
		g, err := s.Generalize(12)
		if err != nil {
			return err
		}
		g.Render(w)
		return nil
	case "robustness":
		r, err := exp.Robustness(s.Opts, []int64{11, 22, 33, 44, 55})
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	case "all":
		for _, step := range []func() error{run1, run2, run3} {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := step(); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		loo, err := train()
		if err != nil {
			return err
		}
		if err := run67(loo, true, true); err != nil {
			return err
		}
		if err := run8(loo); err != nil {
			return err
		}
		return runExtensions()
	default:
		return fmt.Errorf("actor: unknown study %q (scalability, phases, power, accuracy, ranks, throttle, extensions, hetero, generalize, robustness, all)", study)
	}
}

// Calibrate prints the platform model's behaviour against every
// quantitative target quoted in the paper — the tuning harness behind
// cmd/calibrate.
func Calibrate(ctx context.Context, w io.Writer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return exp.RunCalibration(w)
}
