package actor

import (
	"encoding/json"
	"fmt"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/mlr"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/topology"
)

// The bank serialization format is a versioned, self-describing JSON
// envelope: a header (format magic, version, model kind), the topology
// descriptor the bank was trained for, the configuration space, and the
// model weights in their native flat form (one row-major slice per ANN
// layer; the coefficient vector of an MLR model). Floating-point values
// survive the trip exactly — encoding/json emits the shortest decimal that
// round-trips the float64 bit pattern — so a loaded bank's predictions are
// bit-identical to the bank that was saved.

const (
	// bankFormat is the magic the header must carry.
	bankFormat = "actor-bank"
	// BankVersion is the serialization format version this build reads and
	// writes. Readers reject newer versions with a descriptive error
	// instead of misinterpreting fields.
	BankVersion = 1
)

type bankFile struct {
	Format       string          `json:"format"`
	Version      int             `json:"version"`
	Kind         Kind            `json:"kind"`
	Topology     bankTopology    `json:"topology"`
	Seed         int64           `json:"seed"`
	Folds        int             `json:"folds,omitempty"`
	Configs      []string        `json:"configs"`
	SampleConfig string          `json:"sample_config"`
	Generation   int             `json:"generation,omitempty"`
	Provenance   *Provenance     `json:"provenance,omitempty"`
	Predictors   []bankPredictor `json:"predictors"`
}

type bankTopology struct {
	// Desc is the compact descriptor ("" = the paper's quad-core Xeon).
	Desc  string `json:"desc,omitempty"`
	Name  string `json:"name,omitempty"`
	Cores int    `json:"cores,omitempty"`
}

// bankPredictor holds one feature-set's models: exactly one of ANN or MLR
// is populated, mapping target configuration name to model.
type bankPredictor struct {
	Events []string                `json:"events"`
	ANN    map[string]bankEnsemble `json:"ann,omitempty"`
	MLR    map[string][]float64    `json:"mlr,omitempty"`
}

type bankEnsemble struct {
	Scaler      bankScaler `json:"scaler"`
	EstimateMSE float64    `json:"estimate_mse"`
	Nets        []bankNet  `json:"nets"`
}

type bankScaler struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
	YMin float64   `json:"ymin"`
	YMax float64   `json:"ymax"`
}

type bankNet struct {
	Sizes []int `json:"sizes"`
	// Weights is one flat row-major slice per layer: Sizes[l+1] rows of
	// (Sizes[l]+1) columns, last column the unit bias.
	Weights [][]float64 `json:"weights"`
}

// Encode serialises the bank into the versioned format.
func (b *Bank) Encode() ([]byte, error) {
	bf := bankFile{
		Format:  bankFormat,
		Version: BankVersion,
		Kind:    b.meta.Kind,
		Topology: bankTopology{
			Desc:  b.meta.Topology,
			Name:  b.meta.TopologyName,
			Cores: b.meta.Cores,
		},
		Seed:         b.meta.Seed,
		Folds:        b.meta.Folds,
		Configs:      b.meta.Configs,
		SampleConfig: b.meta.SampleConfig,
		Generation:   b.meta.Generation,
		Provenance:   b.meta.Provenance,
	}
	for _, p := range b.bank.Predictors() {
		bp := bankPredictor{}
		for _, e := range p.Events() {
			bp.Events = append(bp.Events, e.String())
		}
		switch pred := p.(type) {
		case *core.ANNPredictor:
			bp.ANN = make(map[string]bankEnsemble, len(pred.Targets()))
			for name, ens := range pred.Targets() {
				be := bankEnsemble{
					Scaler: bankScaler{
						Mean: ens.Scaler.Mean,
						Std:  ens.Scaler.Std,
						YMin: ens.Scaler.YMin,
						YMax: ens.Scaler.YMax,
					},
					EstimateMSE: ens.EstimateMSE,
				}
				for _, net := range ens.Nets {
					be.Nets = append(be.Nets, bankNet{Sizes: net.Sizes, Weights: net.FlatWeights()})
				}
				bp.ANN[name] = be
			}
		case *core.MLRPredictor:
			bp.MLR = make(map[string][]float64, len(pred.Targets()))
			for name, m := range pred.Targets() {
				bp.MLR[name] = m.Coef
			}
		default:
			return nil, fmt.Errorf("actor: cannot serialise predictor type %T", p)
		}
		bf.Predictors = append(bf.Predictors, bp)
	}
	return json.MarshalIndent(&bf, "", " ")
}

// DecodeBank parses data written by Encode, validating the header, the
// topology descriptor and every model's shape before constructing the live
// bank.
func DecodeBank(data []byte) (*Bank, error) {
	var bf bankFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("not a bank file: %w", err)
	}
	if bf.Format != bankFormat {
		return nil, fmt.Errorf("not an ACTOR bank (format %q, want %q)", bf.Format, bankFormat)
	}
	if bf.Version < 1 {
		return nil, fmt.Errorf("bank has no valid format version (got %d)", bf.Version)
	}
	if bf.Version > BankVersion {
		return nil, fmt.Errorf("bank format version %d is newer than the supported version %d; rebuild the bank or upgrade this binary", bf.Version, BankVersion)
	}
	if bf.Topology.Desc != "" {
		if _, err := topology.ParseDesc(bf.Topology.Desc); err != nil {
			return nil, fmt.Errorf("bank topology descriptor: %w", err)
		}
	}
	if len(bf.Configs) == 0 {
		return nil, fmt.Errorf("bank lists no configurations")
	}
	sampleOK := false
	for _, c := range bf.Configs {
		if c == bf.SampleConfig {
			sampleOK = true
			break
		}
	}
	if !sampleOK {
		return nil, fmt.Errorf("bank sampling configuration %q is not in its configuration space %v", bf.SampleConfig, bf.Configs)
	}
	if len(bf.Predictors) == 0 {
		return nil, fmt.Errorf("bank holds no predictors")
	}

	var preds []core.Predictor
	kind := bf.Kind
	for i, bp := range bf.Predictors {
		events := make([]pmu.Event, 0, len(bp.Events))
		for _, name := range bp.Events {
			e, ok := pmu.EventByName(name)
			if !ok {
				return nil, fmt.Errorf("predictor %d: unknown event %q", i, name)
			}
			events = append(events, e)
		}
		switch {
		case len(bp.ANN) > 0 && len(bp.MLR) > 0:
			return nil, fmt.Errorf("predictor %d carries both ANN and MLR models", i)
		case len(bp.ANN) > 0:
			if kind == "" {
				kind = KindANN
			}
			targets := make(map[string]*ann.Ensemble, len(bp.ANN))
			for name, be := range bp.ANN {
				ens := &ann.Ensemble{
					Scaler: &ann.Scaler{
						Mean: be.Scaler.Mean,
						Std:  be.Scaler.Std,
						YMin: be.Scaler.YMin,
						YMax: be.Scaler.YMax,
					},
					EstimateMSE: be.EstimateMSE,
				}
				if len(be.Nets) == 0 {
					return nil, fmt.Errorf("predictor %d target %q: ensemble has no member networks", i, name)
				}
				if len(be.Scaler.Mean) != len(be.Scaler.Std) {
					return nil, fmt.Errorf("predictor %d target %q: scaler mean/std length mismatch", i, name)
				}
				for ni, bn := range be.Nets {
					net, err := ann.NewNetworkFromFlat(bn.Sizes, bn.Weights)
					if err != nil {
						return nil, fmt.Errorf("predictor %d target %q net %d: %w", i, name, ni, err)
					}
					if net.InputDim() != len(be.Scaler.Mean) {
						return nil, fmt.Errorf("predictor %d target %q net %d: input dim %d does not match the scaler's %d features",
							i, name, ni, net.InputDim(), len(be.Scaler.Mean))
					}
					ens.Nets = append(ens.Nets, net)
				}
				targets[name] = ens
			}
			p, err := core.NewANNPredictor(events, targets)
			if err != nil {
				return nil, fmt.Errorf("predictor %d: %w", i, err)
			}
			preds = append(preds, p)
		case len(bp.MLR) > 0:
			if kind == "" {
				kind = KindMLR
			}
			targets := make(map[string]*mlr.Model, len(bp.MLR))
			for name, coef := range bp.MLR {
				m, err := mlr.NewModel(coef)
				if err != nil {
					return nil, fmt.Errorf("predictor %d target %q: %w", i, name, err)
				}
				targets[name] = m
			}
			p, err := core.NewMLRPredictor(events, targets)
			if err != nil {
				return nil, fmt.Errorf("predictor %d: %w", i, err)
			}
			preds = append(preds, p)
		default:
			return nil, fmt.Errorf("predictor %d holds no models", i)
		}
	}
	cb, err := core.NewBank(preds...)
	if err != nil {
		return nil, err
	}
	return newBank(cb, Meta{
		Version:      bf.Version,
		Kind:         kind,
		Topology:     bf.Topology.Desc,
		TopologyName: bf.Topology.Name,
		Cores:        bf.Topology.Cores,
		Seed:         bf.Seed,
		Folds:        bf.Folds,
		Configs:      bf.Configs,
		SampleConfig: bf.SampleConfig,
		Generation:   bf.Generation,
		Provenance:   bf.Provenance,
	}), nil
}
