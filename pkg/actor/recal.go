package actor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/noise"
	"github.com/greenhpc/actor/internal/parallel"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/recal"
)

// This file is the serving half of online recalibration: the Recalibrator
// ties internal/recal's traffic-facing machinery (observation store, drift
// detector, canary admission) to the things only pkg/actor can do — warm-
// start retraining off the live bank, holdout validation, and the atomic
// zero-downtime bank swap in Server.
//
// Determinism is the design invariant. A retrain's sample campaign is
// collected from the engine's simulated platform under a noise stream
// seeded purely by the (bank seed, generation, attempt) chain — never by
// traffic or wall clock — so the candidate bank's bytes, the holdout errors
// and therefore the promote/reject decision are byte-for-byte reproducible
// for a given live bank, at any GOMAXPROCS.

// recalBlend is the live/refit coefficient blend of MLR recalibration:
// new = blend*live + (1-blend)*refit. Averaging two independently noisy
// characterisation campaigns gives the blend a lower expected error than
// either endpoint on a stationary platform.
const recalBlend = 0.5

// maxRecalHistory bounds the prior generations retained for rollback:
// sustained drift can promote indefinitely, and each retained bank holds
// model weights plus an encoded /v1/bank body. Oldest generations are
// dropped first; rollback walks the chain newest-first, so the bound only
// limits how far back a rollback sequence can reach.
const maxRecalHistory = 32

// RecalConfig tunes the recalibration loop. Zero fields take defaults.
type RecalConfig struct {
	// Margin is the relative holdout improvement a candidate must clear:
	// it is promoted iff candidateErr <= liveErr*(1-Margin). 0 accepts any
	// candidate at least as good as the live bank.
	Margin float64
	// CanaryFrac, when > 0, holds a validated candidate in canary mode
	// first: that fraction of live predict traffic is shadow-scored on the
	// candidate, and promotion waits until CanaryMin requests scored with
	// zero failures. 0 promotes immediately.
	CanaryFrac float64
	// CanaryMin is the number of shadow-scored requests a canary needs
	// before auto-promotion. Default 64.
	CanaryMin uint64
	// Store and Drift configure the observation store and drift detector.
	Store recal.StoreConfig
	Drift recal.DriftConfig
}

func (c RecalConfig) withDefaults() RecalConfig {
	if c.Margin < 0 {
		c.Margin = 0
	}
	if c.CanaryFrac < 0 {
		c.CanaryFrac = 0
	}
	if c.CanaryFrac > 1 {
		c.CanaryFrac = 1
	}
	if c.CanaryMin == 0 {
		c.CanaryMin = 64
	}
	return c
}

// RecalOutcome is what one retrain attempt decided, returned by Trigger and
// POST /v1/recal/trigger.
type RecalOutcome struct {
	// Outcome is "promoted", "rejected" or "canary".
	Outcome string `json:"outcome"`
	// Generation is the candidate generation the attempt produced.
	Generation int `json:"generation"`
	// Trigger is what started the attempt.
	Trigger string `json:"trigger"`
	// CandidateErr and LiveErr are the holdout median relative errors the
	// decision compared.
	CandidateErr float64 `json:"candidate_err"`
	LiveErr      float64 `json:"live_err"`
}

// errRecalBusy is returned by Trigger when a retrain or canary is already
// in flight; the admin handler maps it to 409.
var errRecalBusy = errors.New("actor: recalibration busy")

// Recalibrator drives online recalibration for one Server: it ingests
// predict-path observations, watches for drift, retrains shadow candidates
// warm-started from the live bank, validates them on a held-out replay
// window, and promotes survivors through Server.SwapBank — optionally via
// a canary phase — with instant rollback to any retained prior generation.
type Recalibrator struct {
	srv *Server
	eng *Engine
	cfg RecalConfig

	store *recal.Store
	ctl   *recal.Controller

	// candidate is the validated bank shadow-scored during canary mode;
	// nil outside canary. Atomic because the predict hot path reads it.
	candidate atomic.Pointer[Bank]

	// mu serialises the control plane: Tick, Trigger, Promote, Rollback.
	mu      sync.Mutex
	attempt int // lifetime retrain attempts, part of the gen-seed chain
	history []*Bank
}

// EnableRecalibration switches the server's online recalibration loop on:
// predict traffic starts feeding the observation store and the /v1/recal/*
// admin routes come alive. Call once, before serving traffic; a second call
// fails. The caller drives the loop — periodically via Run, or manually via
// Tick/Trigger.
func (s *Server) EnableRecalibration(cfg RecalConfig) (*Recalibrator, error) {
	cfg = cfg.withDefaults()
	seed := s.Bank().Meta().Seed
	storeCfg := cfg.Store
	if storeCfg.Seed == 0 {
		storeCfg.Seed = parallel.SeedFor(seed, "recal/store")
	}
	r := &Recalibrator{
		srv:   s,
		eng:   s.eng,
		cfg:   cfg,
		store: recal.NewStore(storeCfg),
		ctl:   recal.NewController(parallel.SeedFor(seed, "recal/canary")),
	}
	if !s.recal.CompareAndSwap(nil, r) {
		return nil, fmt.Errorf("actor: recalibration already enabled")
	}
	return r, nil
}

// observe ingests one fast-path predict request: phase hash, rate vector,
// observed IPC and the prediction-error proxy. Allocation-free — it runs on
// the memo-hit path — and, when a canary is live and admission says so,
// shadow-scores the candidate on the same rates.
func (r *Recalibrator) observe(sc *predictScratch, phase []byte, obsErr float64) {
	var o recal.Obs
	o.Phase = recal.HashPhase(phase)
	o.Err = obsErr
	for i, id := range sc.ids {
		if int(id) < recal.MaxVals {
			o.Mask |= 1 << uint64(id)
			o.Vals[id] = sc.vals[i]
		}
		if id == pmu.Instructions {
			o.IPC, o.HasIPC = sc.vals[i], true
		}
	}
	seq := r.store.Observe(o)
	if r.ctl.CanaryAdmit(seq) {
		r.shadowScore(sc)
	}
}

// shadowScore runs the canary candidate on a live request's rates, off the
// response path: the client got the live bank's answer; this only tallies
// whether the candidate would have produced a sane one.
func (r *Recalibrator) shadowScore(sc *predictScratch) {
	cand := r.candidate.Load()
	if cand == nil {
		return
	}
	ranked, err := cand.predictPMU(sc.pmuRates())
	if err != nil || len(ranked) == 0 || math.IsNaN(ranked[0].IPC) || math.IsInf(ranked[0].IPC, 0) {
		r.ctl.Failed.Add(1)
	}
	r.ctl.Scored.Add(1)
}

// Tick runs one control-loop step: during a canary it checks completion or
// failure; when idle it evaluates drift and retrains on a trip. Retraining
// is synchronous within Tick (off the request path — Tick runs in the
// caller's goroutine, typically Run's).
func (r *Recalibrator) Tick(ctx context.Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.ctl.State() {
	case recal.StateCanary:
		scored, failed := r.ctl.Scored.Load(), r.ctl.Failed.Load()
		if failed > 0 {
			r.abortCanaryLocked(fmt.Sprintf("%d/%d shadow predictions failed", failed, scored))
			return
		}
		if scored >= r.cfg.CanaryMin {
			_ = r.promoteLocked()
		}
	case recal.StateIdle:
		if v := r.store.CheckDrift(r.cfg.Drift); v.Tripped {
			_, _ = r.retrainLocked(ctx, "drift:"+v.Reason)
		}
	}
}

// Run drives Tick on a fixed interval until ctx is cancelled.
func (r *Recalibrator) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Tick(ctx)
		}
	}
}

// Trigger forces a retrain attempt right now, regardless of drift. Returns
// errRecalBusy while a retrain or canary is already in flight.
func (r *Recalibrator) Trigger(ctx context.Context) (RecalOutcome, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.ctl.State(); st != recal.StateIdle {
		return RecalOutcome{}, fmt.Errorf("%w (%s)", errRecalBusy, st)
	}
	return r.retrainLocked(ctx, "manual")
}

// retrainLocked is one full shadow-retrain attempt: collect a fresh
// characterisation campaign under the generation seed, warm-start a
// candidate from the live bank, validate both on the held-out split, and
// promote, canary or reject. Caller holds r.mu and state is Idle.
func (r *Recalibrator) retrainLocked(ctx context.Context, trigger string) (RecalOutcome, error) {
	r.ctl.SetState(recal.StateTraining)
	out, err := r.runRetrain(ctx, trigger)
	if err != nil {
		// Infrastructure failure (not a rejection): record it, re-arm the
		// store so the detector measures against fresh traffic, back to idle.
		r.ctl.Record(recal.Event{
			Seq:        r.store.Total(),
			Generation: out.Generation,
			Kind:       "rejected",
			Trigger:    trigger,
			Detail:     err.Error(),
		})
		r.store.Reset()
		r.ctl.SetState(recal.StateIdle)
	}
	return out, err
}

func (r *Recalibrator) runRetrain(ctx context.Context, trigger string) (RecalOutcome, error) {
	live := r.srv.Bank()
	gen := live.meta.Generation + 1
	r.attempt++
	out := RecalOutcome{Generation: gen, Trigger: trigger}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	// The attempt counter joins the seed chain so a rejected candidate is
	// not deterministically re-derived (and re-rejected) forever: the next
	// attempt at the same generation sees a fresh campaign.
	genSeed := parallel.SeedFor(live.meta.Seed, fmt.Sprintf("recal/gen/%d/attempt/%d", gen, r.attempt))
	samples, err := r.collectSamples(genSeed)
	if err != nil {
		return out, err
	}
	// Deterministic holdout split: every fourth sample validates, the rest
	// train. Order is the collector's canonical (bench, phase, repetition)
	// order, so the split is identical across runs and GOMAXPROCS.
	var train, hold []dataset.PhaseSample
	for i := range samples {
		if i%4 == 3 {
			hold = append(hold, samples[i])
		} else {
			train = append(train, samples[i])
		}
	}
	targets := r.eng.suite.Targets()
	var cb *core.Bank
	switch live.meta.Kind {
	case KindANN:
		cfg := r.eng.suite.Opts.ANN
		cfg.Seed = genSeed
		if cfg.WarmStartEpochs == 0 {
			cfg.WarmStartEpochs = (cfg.MaxEpochs + 3) / 4
		}
		cb, err = core.FineTuneANNBank(live.bank, train, targets, cfg)
	case KindMLR:
		cb, err = core.RefitMLRBank(live.bank, train, targets, r.eng.cfg.ridge, recalBlend)
	default:
		err = fmt.Errorf("actor: cannot recalibrate bank kind %q", live.meta.Kind)
	}
	if err != nil {
		return out, err
	}

	out.CandidateErr = medianRelErr(cb.Predictors()[0], hold, targets)
	out.LiveErr = medianRelErr(live.preds[0], hold, targets)
	if !(out.CandidateErr <= out.LiveErr*(1-r.cfg.Margin)) {
		out.Outcome = "rejected"
		r.ctl.Record(recal.Event{
			Seq:          r.store.Total(),
			Generation:   gen,
			Kind:         "rejected",
			Trigger:      trigger,
			Detail:       fmt.Sprintf("candidate did not clear margin %v", r.cfg.Margin),
			CandidateErr: out.CandidateErr,
			LiveErr:      out.LiveErr,
		})
		r.store.Reset()
		r.ctl.SetState(recal.StateIdle)
		return out, nil
	}

	meta := live.meta
	meta.Generation = gen
	meta.Provenance = &Provenance{
		Parent:         live.meta.Generation,
		Trigger:        trigger,
		TrainSamples:   len(train),
		HoldoutSamples: len(hold),
		CandidateErr:   out.CandidateErr,
		LiveErr:        out.LiveErr,
		Margin:         r.cfg.Margin,
	}
	meta.EventSets = nil // newBank re-derives them from the predictors
	cand := newBank(cb, meta)

	if r.cfg.CanaryFrac > 0 {
		out.Outcome = "canary"
		r.candidate.Store(cand)
		r.ctl.BeginCanary(r.cfg.CanaryFrac)
		r.ctl.SetState(recal.StateCanary)
		r.ctl.Record(recal.Event{
			Seq:          r.store.Total(),
			Generation:   gen,
			Kind:         "canary-begin",
			Trigger:      trigger,
			CandidateErr: out.CandidateErr,
			LiveErr:      out.LiveErr,
		})
		return out, nil
	}
	out.Outcome = "promoted"
	return out, r.installLocked(cand)
}

// installLocked swaps cand in as the live bank, retains the previous bank
// for rollback, re-arms the observation store and records the promotion.
func (r *Recalibrator) installLocked(cand *Bank) error {
	prev := r.srv.Bank()
	if err := r.srv.SwapBank(cand); err != nil {
		r.ctl.Record(recal.Event{
			Seq:        r.store.Total(),
			Generation: cand.meta.Generation,
			Kind:       "rejected",
			Detail:     "swap failed: " + err.Error(),
		})
		r.candidate.Store(nil)
		r.ctl.EndCanary()
		r.ctl.SetState(recal.StateIdle)
		return err
	}
	r.history = append(r.history, prev)
	if len(r.history) > maxRecalHistory {
		copy(r.history, r.history[1:])
		r.history[len(r.history)-1] = nil
		r.history = r.history[:len(r.history)-1]
	}
	r.candidate.Store(nil)
	r.ctl.EndCanary()
	ev := recal.Event{
		Seq:        r.store.Total(),
		Generation: cand.meta.Generation,
		Kind:       "promoted",
	}
	if p := cand.meta.Provenance; p != nil {
		ev.Trigger = p.Trigger
		ev.CandidateErr = p.CandidateErr
		ev.LiveErr = p.LiveErr
	}
	r.ctl.Record(ev)
	r.store.Reset()
	r.ctl.SetState(recal.StateIdle)
	return nil
}

// Promote force-completes a canary, installing the candidate immediately.
func (r *Recalibrator) Promote() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoteLocked()
}

func (r *Recalibrator) promoteLocked() error {
	cand := r.candidate.Load()
	if cand == nil || r.ctl.State() != recal.StateCanary {
		return fmt.Errorf("actor: no canary candidate to promote")
	}
	return r.installLocked(cand)
}

// abortCanaryLocked discards the canary candidate without swapping.
func (r *Recalibrator) abortCanaryLocked(detail string) {
	cand := r.candidate.Load()
	gen := 0
	if cand != nil {
		gen = cand.meta.Generation
	}
	r.candidate.Store(nil)
	r.ctl.EndCanary()
	r.ctl.Record(recal.Event{
		Seq:        r.store.Total(),
		Generation: gen,
		Kind:       "canary-abort",
		Detail:     detail,
	})
	r.store.Reset()
	r.ctl.SetState(recal.StateIdle)
}

// Rollback restores the previous bank generation. During a canary it aborts
// the canary instead (nothing was swapped yet); otherwise it swaps the most
// recently retained generation back in — the restored /v1/bank body is
// byte-identical to what that generation served before, because bank
// encoding is a pure function of the bank.
func (r *Recalibrator) Rollback() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctl.State() == recal.StateCanary {
		r.abortCanaryLocked("rollback requested")
		return nil
	}
	if len(r.history) == 0 {
		return fmt.Errorf("actor: no previous bank generation to roll back to")
	}
	prev := r.history[len(r.history)-1]
	if err := r.srv.SwapBank(prev); err != nil {
		return err
	}
	r.history = r.history[:len(r.history)-1]
	r.store.Reset()
	r.ctl.Record(recal.Event{
		Seq:        r.store.Total(),
		Generation: prev.meta.Generation,
		Kind:       "rollback",
	})
	return nil
}

// Status snapshots the whole loop for GET /v1/recal/status.
func (r *Recalibrator) Status() recal.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.ctl.State()
	snap := recal.Snapshot{
		Enabled:    true,
		State:      st.String(),
		Generation: r.srv.Bank().meta.Generation,
		History:    len(r.history),
		Observed:   r.store.Total(),
		WindowSeq:  r.store.Seq(),
		Reservoir:  r.store.ReservoirLen(),
		Drift:      r.store.CheckDrift(r.cfg.Drift),
		Phases:     r.store.Phases(),
		Events:     r.ctl.Events(),
	}
	if st == recal.StateCanary {
		snap.Canary = recal.Canary{
			Frac:   r.cfg.CanaryFrac,
			Scored: r.ctl.Scored.Load(),
			Failed: r.ctl.Failed.Load(),
		}
	}
	return snap
}

// collectSamples runs a fresh characterisation campaign on the engine's
// platform, mirroring Engine.Train's collection exactly except for the
// noise stream: it forks from noise.New(genSeed), so the samples — and
// everything trained from them — are a pure function of the seed chain,
// independent of traffic, wall clock and GOMAXPROCS.
func (r *Recalibrator) collectSamples(genSeed int64) ([]dataset.PhaseSample, error) {
	e := r.eng
	collector := dataset.NewCollector(e.suite.Noisy, e.suite.Truth)
	collector.Configs = e.suite.Configs
	collector.SampleConfig = e.suite.SampleConfig()
	collector.Repetitions = e.suite.Opts.Repetitions
	collector.NoiseBase = noise.New(genSeed)
	suiteSamples, err := collector.CollectSuite(e.suite.Benches)
	if err != nil {
		return nil, err
	}
	var all []dataset.PhaseSample
	for _, b := range e.suite.Benches {
		all = append(all, suiteSamples[b.Name]...)
	}
	return all, nil
}

// medianRelErr scores one predictor on held-out samples: the median of
// |predicted - measured| / |measured| over every (sample, target) pair, in
// deterministic (sample, canonical target) order.
func medianRelErr(p core.Predictor, hold []dataset.PhaseSample, targets []string) float64 {
	errs := make([]float64, 0, len(hold)*len(targets))
	for i := range hold {
		byCfg, err := p.PredictIPC(hold[i].Rates)
		if err != nil {
			return math.Inf(1)
		}
		for _, t := range targets {
			m, ok := hold[i].MeasuredIPC[t]
			if !ok {
				continue
			}
			den := math.Abs(m)
			if den < 1e-9 {
				den = 1e-9
			}
			errs = append(errs, math.Abs(byCfg[t]-m)/den)
		}
	}
	if len(errs) == 0 {
		return math.Inf(1)
	}
	sort.Float64s(errs)
	mid := len(errs) / 2
	if len(errs)%2 == 1 {
		return errs[mid]
	}
	return (errs[mid-1] + errs[mid]) / 2
}

// --- admin endpoints ---

// writeJSONAdmin renders admin responses through encoding/json: these
// endpoints are control-plane, not hot-path, so the stdlib's indented
// encoding (matching the wire emitter's style) is plenty.
func writeJSONAdmin(w http.ResponseWriter, code int, v any) {
	body, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		w.Header()["Content-Type"] = headerJSONValue
		w.WriteHeader(code)
		return
	}
	writeBody(w, code, append(body, '\n'))
}

// recalEnabled loads the recalibrator or answers 503.
func (s *Server) recalEnabled(w http.ResponseWriter) *Recalibrator {
	rec := s.recal.Load()
	if rec == nil {
		writeError(w, http.StatusServiceUnavailable, "recalibration not enabled")
	}
	return rec
}

func (s *Server) handleRecalStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeBody(w, http.StatusMethodNotAllowed, errUseGETBody)
		return
	}
	rec := s.recalEnabled(w)
	if rec == nil {
		return
	}
	writeJSONAdmin(w, http.StatusOK, rec.Status())
}

func (s *Server) handleRecalTrigger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeBody(w, http.StatusMethodNotAllowed, errUsePOSTBody)
		return
	}
	rec := s.recalEnabled(w)
	if rec == nil {
		return
	}
	out, err := rec.Trigger(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errRecalBusy) {
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSONAdmin(w, http.StatusOK, out)
}

func (s *Server) handleRecalPromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeBody(w, http.StatusMethodNotAllowed, errUsePOSTBody)
		return
	}
	rec := s.recalEnabled(w)
	if rec == nil {
		return
	}
	if err := rec.Promote(); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSONAdmin(w, http.StatusOK, rec.Status())
}

func (s *Server) handleRecalRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeBody(w, http.StatusMethodNotAllowed, errUsePOSTBody)
		return
	}
	rec := s.recalEnabled(w)
	if rec == nil {
		return
	}
	if err := rec.Rollback(); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSONAdmin(w, http.StatusOK, rec.Status())
}
