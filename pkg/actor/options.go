package actor

// Kind selects the model family a bank is trained with.
type Kind string

const (
	// KindANN trains the paper's k-fold ANN ensembles (the default).
	KindANN Kind = "ann"
	// KindMLR trains the prior-work multiple-linear-regression baseline —
	// orders of magnitude cheaper to train, useful for smoke tests and as
	// the comparison model of the paper's ablation.
	KindMLR Kind = "mlr"
)

// config is the resolved option set an Engine is built from.
type config struct {
	seed        int64
	fast        bool
	topoDesc    string
	folds       int
	reps        int
	eventCounts []int
	kind        Kind
	ridge       float64
	maxEpochs   int
}

func defaultConfig() config {
	return config{
		seed:  42,
		kind:  KindANN,
		ridge: 1e-8,
	}
}

// Option customises an Engine; pass options to New.
type Option func(*config)

// WithTopology replaces the paper's quad-core Xeon with the machine
// described by a compact topology descriptor, e.g. "16x2" (a 32-core
// homogeneous part) or "16x4+32x2:little" (a 128-core big/little machine).
// The configuration space becomes the topology's canonical placement
// enumeration. The grammar is that of topology.ParseDesc:
// "count x groupSize [:class]" terms joined by "+", with an optional
// "@GHz" clock suffix.
func WithTopology(desc string) Option {
	return func(c *config) { c.topoDesc = desc }
}

// WithFast selects the reduced-fidelity training options (smaller ensembles,
// fewer sampling repetitions, tighter epoch budgets) — the same trade the
// test suite makes to keep the full pipeline runnable in seconds.
func WithFast() Option {
	return func(c *config) { c.fast = true }
}

// WithSeed sets the seed driving every stochastic component: measurement
// noise, fold shuffles and weight initialisation. The default is 42.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithFolds overrides the cross-validation ensemble size (10 by default,
// 5 with WithFast; the ANN trainer needs at least 3).
func WithFolds(k int) Option {
	return func(c *config) { c.folds = k }
}

// WithRepetitions overrides how many independent noisy sampling passes are
// collected per phase when building training data.
func WithRepetitions(n int) Option {
	return func(c *config) { c.reps = n }
}

// WithEventCounts sets the feature-set sizes the bank trains, richest
// first. The default {12, 4, 2} mirrors the paper: the full event set plus
// the reduced sets used when an application's iteration count leaves too
// small a sampling budget.
func WithEventCounts(counts ...int) Option {
	return func(c *config) { c.eventCounts = counts }
}

// WithKind selects the model family Train builds (KindANN by default).
func WithKind(k Kind) Option {
	return func(c *config) { c.kind = k }
}

// WithMLR is shorthand for WithKind(KindMLR).
func WithMLR() Option {
	return WithKind(KindMLR)
}

// WithMaxEpochs caps the ANN training epochs per member network — a fidelity
// knob below WithFast used by smoke tests and benchmarks.
func WithMaxEpochs(n int) Option {
	return func(c *config) { c.maxEpochs = n }
}
